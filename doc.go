// Package rofs is a from-scratch reproduction of Seltzer & Stonebraker,
// "Read Optimized File System Designs: A Performance Evaluation" (ICDE
// 1991): an event-driven simulator comparing multiblock disk-allocation
// policies — binary buddy, restricted buddy, and extent-based — against
// fixed-block baselines on a striped disk array.
//
// The library lives under internal/ (one package per subsystem; see
// DESIGN.md for the map), the executables under cmd/, runnable examples
// under examples/, and the benchmark harness that regenerates every table
// and figure of the paper in bench_test.go at this root.
package rofs
