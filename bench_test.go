// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus the §6 ablations. Each benchmark runs its
// experiment at the reduced BenchScale (2 drives, workloads divided by 32)
// and reports the headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation in shape-preserving miniature.
// Full-scale regeneration is `go run ./cmd/rofs-tables -exp all -scale
// full`; EXPERIMENTS.md records paper-vs-measured numbers for both.
package rofs_test

import (
	"context"
	"testing"

	"rofs/internal/alloc/extent"
	"rofs/internal/core"
	"rofs/internal/experiments"
	"rofs/internal/runner"
	"rofs/internal/sim"
	"rofs/internal/units"
)

func scale() experiments.Scale { return experiments.BenchScale() }

// bench runs specs on a fresh pool each call: no cross-iteration cache,
// so every iteration measures real simulation work, while batches still
// exercise the pool's bounded parallelism.
func bench(b *testing.B, specs ...runner.Spec) []runner.Result {
	b.Helper()
	res, err := runner.New(0).Run(context.Background(), specs)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// pooled hands an experiment a context and fresh pool per iteration.
func pooled() (context.Context, *runner.Pool) {
	return context.Background(), runner.New(0)
}

// BenchmarkTable1DiskModel measures the raw disk model: one sustained
// sequential scan, reported as a percentage of the analytic maximum the
// throughput normalization uses (Table 1's "maximum throughput" row).
func BenchmarkTable1DiskModel(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		wl, err := sc.Workload("SC")
		if err != nil {
			b.Fatal(err)
		}
		sp := sc.Spec(core.RBuddy(5, 1, true), wl, core.Sequential)
		sp.MaxSimMS = 60_000
		res := bench(b, sp)
		b.ReportMetric(res[0].Outcome.Perf.Percent, "seq-%max")
	}
}

// benchTable3 runs one Table 3 cell.
func benchTable3(b *testing.B, wlName string) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		wl, err := sc.Workload(wlName)
		if err != nil {
			b.Fatal(err)
		}
		res := bench(b,
			sc.Spec(core.Buddy(), wl, core.Allocation),
			sc.Spec(core.Buddy(), wl, core.Application),
			sc.Spec(core.Buddy(), wl, core.Sequential))
		b.ReportMetric(res[0].Outcome.Frag.InternalPct, "int-frag-%")
		b.ReportMetric(res[0].Outcome.Frag.ExternalPct, "ext-frag-%")
		b.ReportMetric(res[1].Outcome.Perf.Percent, "app-%max")
		b.ReportMetric(res[2].Outcome.Perf.Percent, "seq-%max")
	}
}

func BenchmarkTable3BuddySC(b *testing.B) { benchTable3(b, "SC") }
func BenchmarkTable3BuddyTP(b *testing.B) { benchTable3(b, "TP") }
func BenchmarkTable3BuddyTS(b *testing.B) { benchTable3(b, "TS") }

// BenchmarkFig1RestrictedBuddyFrag runs the full §4.2 fragmentation grid
// (16 configurations × 3 workloads) and reports the worst cells.
func BenchmarkFig1RestrictedBuddyFrag(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		ctx, pool := pooled()
		cells, err := experiments.Figure1(ctx, pool, sc)
		if err != nil {
			b.Fatal(err)
		}
		var worstInt, worstExt float64
		for _, c := range cells {
			if c.InternalPct > worstInt {
				worstInt = c.InternalPct
			}
			if c.ExternalPct > worstExt {
				worstExt = c.ExternalPct
			}
		}
		b.ReportMetric(worstInt, "worst-int-%")
		b.ReportMetric(worstExt, "worst-ext-%")
	}
}

// BenchmarkFig2RestrictedBuddyPerf runs the §4.2 throughput grid on the
// selected configuration's neighbourhood (5 sizes, both grow factors,
// clustered and not) across workloads, reporting the best sequential cell.
func BenchmarkFig2RestrictedBuddyPerf(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		var specs []runner.Spec
		for _, name := range []string{"SC", "TP", "TS"} {
			wl, err := sc.Workload(name)
			if err != nil {
				b.Fatal(err)
			}
			for _, clustered := range []bool{true, false} {
				specs = append(specs, sc.Spec(core.RBuddy(5, 1, clustered), wl, core.Sequential))
			}
		}
		var best float64
		for _, r := range bench(b, specs...) {
			if r.Outcome.Perf.Percent > best {
				best = r.Outcome.Perf.Percent
			}
		}
		b.ReportMetric(best, "best-seq-%max")
	}
}

// BenchmarkFig3GrowBreak exercises the Figure 3 walk-through.
func BenchmarkFig3GrowBreak(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx, pool := pooled()
		res, err := experiments.Figure3(ctx, pool)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res[0].GapKB), "g1-gap-KB")
		b.ReportMetric(float64(res[1].FileKB), "g2-cross-KB")
	}
}

// BenchmarkFig4ExtentFrag runs the §4.3 fragmentation grid (first/best
// fit × 1-5 ranges × 3 workloads).
func BenchmarkFig4ExtentFrag(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		ctx, pool := pooled()
		cells, err := experiments.Figure4(ctx, pool, sc)
		if err != nil {
			b.Fatal(err)
		}
		var worstInt, worstExt float64
		for _, c := range cells {
			if c.InternalPct > worstInt {
				worstInt = c.InternalPct
			}
			if c.ExternalPct > worstExt {
				worstExt = c.ExternalPct
			}
		}
		b.ReportMetric(worstInt, "worst-int-%")
		b.ReportMetric(worstExt, "worst-ext-%")
	}
}

// BenchmarkFig5ExtentPerf compares first fit against best fit on the
// 3-range configuration (the §4.3 selection) sequentially.
func BenchmarkFig5ExtentPerf(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		fits := []extent.Fit{extent.FirstFit, extent.BestFit}
		var specs []runner.Spec
		for _, fit := range fits {
			wl, err := sc.Workload("TP")
			if err != nil {
				b.Fatal(err)
			}
			ranges, err := sc.ExtentRanges("TP", 3)
			if err != nil {
				b.Fatal(err)
			}
			specs = append(specs, sc.Spec(core.Extent(fit, ranges), wl, core.Sequential))
		}
		for i, r := range bench(b, specs...) {
			b.ReportMetric(r.Outcome.Perf.Percent, fits[i].String()+"-seq-%max")
		}
	}
}

// BenchmarkTable4ExtentsPerFile reports the Table 4 averages for the 1-
// and 3-range TP configurations (the paper's extremes).
func BenchmarkTable4ExtentsPerFile(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		var specs []runner.Spec
		for _, n := range []int{1, 3} {
			wl, err := sc.Workload("TP")
			if err != nil {
				b.Fatal(err)
			}
			ranges, err := sc.ExtentRanges("TP", n)
			if err != nil {
				b.Fatal(err)
			}
			specs = append(specs, sc.Spec(core.Extent(extent.FirstFit, ranges), wl, core.Allocation))
		}
		res := bench(b, specs...)
		b.ReportMetric(res[0].Outcome.Frag.ExtentsPerFile, "tp-1r-extents/file")
		b.ReportMetric(res[1].Outcome.Frag.ExtentsPerFile, "tp-3r-extents/file")
	}
}

// BenchmarkFig6Comparison runs the §5 four-policy comparison and reports
// the multiblock-vs-fixed sequential gap on SC — the paper's headline.
func BenchmarkFig6Comparison(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		ctx, pool := pooled()
		cells, err := experiments.Figure6(ctx, pool, sc)
		if err != nil {
			b.Fatal(err)
		}
		var multi, fixed float64
		for _, c := range cells {
			if c.Workload != "SC" {
				continue
			}
			if c.Policy == "fixed-16K" {
				fixed = c.SeqPct
			} else if c.SeqPct > multi {
				multi = c.SeqPct
			}
		}
		b.ReportMetric(multi, "sc-multiblock-seq-%")
		b.ReportMetric(fixed, "sc-fixed-seq-%")
		b.ReportMetric(multi/fixed, "speedup-x")
	}
}

// BenchmarkAblationRAID5 reports the TP small-write penalty under RAID-5
// (§6: "the impact of a RAID ... will reduce the small write
// performance").
func BenchmarkAblationRAID5(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		ctx, pool := pooled()
		cells, err := experiments.AblationRAID(ctx, pool, sc, "TP")
		if err != nil {
			b.Fatal(err)
		}
		var striped, raid float64
		for _, c := range cells {
			switch c.Layout.String() {
			case "striped":
				striped = c.AppPct
			case "raid5":
				raid = c.AppPct
			}
		}
		b.ReportMetric(striped, "striped-app-%")
		b.ReportMetric(raid, "raid5-app-%")
	}
}

// BenchmarkAblationStripeUnit reports SC sequential throughput at the
// smallest and largest swept stripe units.
func BenchmarkAblationStripeUnit(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		ctx, pool := pooled()
		cells, err := experiments.AblationStripeUnit(ctx, pool, sc, "SC")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cells[0].SeqPct, "stripe-8K-seq-%")
		b.ReportMetric(cells[len(cells)-1].SeqPct, "stripe-384K-seq-%")
	}
}

// BenchmarkAblationFileMix reports restricted buddy internal fragmentation
// at 10% and 70% large-file space share.
func BenchmarkAblationFileMix(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		ctx, pool := pooled()
		cells, err := experiments.AblationFileMix(ctx, pool, sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Policy != "rbuddy-5-g1-clus" {
				continue
			}
			switch c.LargeShare {
			case 0.1:
				b.ReportMetric(c.InternalPct, "mix10-int-%")
			case 0.7:
				b.ReportMetric(c.InternalPct, "mix70-int-%")
			}
		}
	}
}

// BenchmarkAblationClustering reports the clustered-vs-unclustered TS
// sequential delta (§4.2's Figure 2f discussion).
func BenchmarkAblationClustering(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		ctx, pool := pooled()
		cells, err := experiments.AblationClustering(ctx, pool, sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.GrowFactor != 1 {
				continue
			}
			if c.Clustered {
				b.ReportMetric(c.SeqPct, "clustered-seq-%")
			} else {
				b.ReportMetric(c.SeqPct, "unclustered-seq-%")
			}
		}
	}
}

// BenchmarkAblationScheduler reports the SSTF-vs-FCFS application
// throughput gap on TP (ablation A5).
func BenchmarkAblationScheduler(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		ctx, pool := pooled()
		cells, err := experiments.AblationScheduler(ctx, pool, sc, "TP")
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			b.ReportMetric(c.AppPct, c.Scheduler.String()+"-app-%")
		}
	}
}

// BenchmarkAblationRealloc reports buddy internal fragmentation before and
// after Koch's nightly reallocator (ablation A6).
func BenchmarkAblationRealloc(b *testing.B) {
	sc := scale()
	for i := 0; i < b.N; i++ {
		ctx, pool := pooled()
		cells, err := experiments.AblationRealloc(ctx, pool, sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Workload == "TS" {
				b.ReportMetric(c.InternalBefore, "ts-int-before-%")
				b.ReportMetric(c.After, "ts-int-after-%")
			}
		}
	}
}

// BenchmarkEngineThroughput measures the raw event engine, the substrate
// everything runs on.
func BenchmarkEngineThroughput(b *testing.B) {
	var eng sim.Engine
	var fire sim.Handler
	remaining := b.N
	fire = func(now float64) {
		remaining--
		if remaining > 0 {
			eng.After(1, fire)
		}
	}
	b.ReportAllocs()
	eng.At(0, fire)
	eng.Run(1e18)
	if units.KB != 1024 {
		b.Fatal("unreachable")
	}
}
