package ckpt

import (
	"os"
	"strings"
	"testing"
)

func sample() State {
	st := State{
		Schema:  Schema,
		SpecKey: "app|{Kind:ext}|seed=42",
		Label:   "test-run",
		Seq:     3,
		SimMS:   30000,
		Events:  123456,
		Instances: []InstanceState{
			{Index: 0, Seed: 42, Draws: 999, Ops: 500, AllocFails: 2, Utilization: 0.9123, Files: 70},
		},
	}
	st.Seal()
	return st
}

func TestSealDeterministic(t *testing.T) {
	a, b := sample(), sample()
	if a.Digest == "" || a.Digest != b.Digest {
		t.Fatalf("digests %q vs %q", a.Digest, b.Digest)
	}
	b.Instances[0].Draws++
	b.Seal()
	if a.Digest == b.Digest {
		t.Fatalf("digest ignored a fingerprint field")
	}
}

func TestVerify(t *testing.T) {
	a, b := sample(), sample()
	if err := Verify(a, b); err != nil {
		t.Fatalf("identical states failed verification: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*State)
		want   string
	}{
		{"spec key", func(s *State) { s.SpecKey = "other" }, "spec key"},
		{"seq", func(s *State) { s.Seq = 4 }, "seq"},
		{"sim time", func(s *State) { s.SimMS = 40000 }, "time"},
		{"events", func(s *State) { s.Events++ }, "events"},
		{"draws", func(s *State) { s.Instances[0].Draws++ }, "instance 0"},
		{"ops", func(s *State) { s.Instances[0].Ops++ }, "instance 0"},
		{"coord", func(s *State) { s.Coord = &CoordState{Arrivals: 1} }, "coordinator"},
	}
	for _, tc := range cases {
		bad := sample()
		tc.mutate(&bad)
		bad.Seal()
		err := Verify(bad, a)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Verify = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestManagerRoundTrip(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	m.OnEvent = func(e Event) { events = append(events, e) }
	st := sample()
	if err := m.Save(st); err != nil {
		t.Fatalf("Save: %v", err)
	}
	h, err := m.Arm(10000, st.SpecKey, st.Label)
	if err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if h.Resume == nil || h.Resume.Digest != st.Digest || h.Resume.Seq != st.Seq {
		t.Fatalf("Arm did not load the saved checkpoint: %+v", h.Resume)
	}
	if h.Sink == nil || h.EveryMS != 10000 {
		t.Fatalf("hook misconfigured: %+v", h)
	}
	if len(events) != 2 || events[0].Kind != "checkpoint" || events[1].Kind != "restore" {
		t.Fatalf("events = %+v", events)
	}
	if err := m.Clear(st.SpecKey); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	if h, err := m.Arm(10000, st.SpecKey, st.Label); err != nil || h.Resume != nil {
		t.Fatalf("after Clear: hook %+v, err %v", h, err)
	}
	if err := m.Clear(st.SpecKey); err != nil {
		t.Fatalf("Clear of missing checkpoint: %v", err)
	}
}

func TestLoadRejectsTampering(t *testing.T) {
	m, _ := NewManager(t.TempDir())
	st := sample()
	if err := m.Save(st); err != nil {
		t.Fatal(err)
	}
	path := m.Path(st.SpecKey)
	data, _ := os.ReadFile(path)
	tampered := strings.Replace(string(data), `"seq": 3`, `"seq": 4`, 1)
	if tampered == string(data) {
		t.Fatalf("seq field not found in %s", data)
	}
	os.WriteFile(path, []byte(tampered), 0o644)
	if _, err := Load(path); err == nil {
		t.Fatalf("Load accepted a tampered checkpoint")
	}
	if _, err := m.Arm(10000, st.SpecKey, st.Label); err == nil {
		t.Fatalf("Arm accepted a tampered checkpoint")
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/x.ckpt.json"
	os.WriteFile(path, []byte(`{"schema":"rofs-ckpt/v999"}`), 0o644)
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("Load = %v, want schema error", err)
	}
}
