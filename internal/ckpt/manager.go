package ckpt

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"
)

// Event reports one manager operation for observability (the service
// feeds these into its duration histograms).
type Event struct {
	// Kind is "checkpoint" (a boundary state written) or "restore" (a
	// saved state loaded and armed for resume).
	Kind  string
	DurMS float64
	Err   error
}

// Manager persists checkpoints as one JSON file per run key under a
// directory. Writes are atomic (temp file + rename + directory sync) so
// a kill mid-checkpoint leaves the previous boundary intact, never a
// torn file.
type Manager struct {
	dir string
	// OnEvent, when set, observes every save/load. Must be safe for
	// concurrent use; called synchronously.
	OnEvent func(Event)
}

// NewManager creates dir if needed and returns a manager over it.
func NewManager(dir string) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return &Manager{dir: dir}, nil
}

// Dir returns the manager's directory.
func (m *Manager) Dir() string { return m.dir }

// Path maps a run key to its checkpoint file. Keys are arbitrary
// strings (spec keys contain '|' and '{'), so the file name is the
// key's FNV-64a hash.
func (m *Manager) Path(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return filepath.Join(m.dir, fmt.Sprintf("%016x.ckpt.json", h.Sum64()))
}

// emit reports an event to the observer, if any.
func (m *Manager) emit(kind string, start time.Time, err error) {
	if m.OnEvent != nil {
		m.OnEvent(Event{Kind: kind, DurMS: float64(time.Since(start)) / 1e6, Err: err})
	}
}

// Save atomically writes st to the file for its spec key.
func (m *Manager) Save(st State) error {
	start := time.Now()
	err := m.save(st)
	m.emit("checkpoint", start, err)
	return err
}

func (m *Manager) save(st State) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("ckpt: encode: %w", err)
	}
	path := m.Path(st.SpecKey)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ckpt: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ckpt: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: rename: %w", err)
	}
	if d, err := os.Open(m.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Load reads and validates a checkpoint file: schema check, digest
// recomputation. Any mismatch is an error — a checkpoint that cannot be
// trusted must not seed a resume.
func Load(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("ckpt: decode %s: %w", path, err)
	}
	if st.Schema != Schema {
		return nil, fmt.Errorf("ckpt: %s: unknown schema %q (want %q)", path, st.Schema, Schema)
	}
	saved := st.Digest
	st.Seal()
	if st.Digest != saved {
		return nil, fmt.Errorf("ckpt: %s: digest mismatch (file corrupt or hand-edited)", path)
	}
	return &st, nil
}

// Arm builds the Hook for a run: Sink saves every boundary under key,
// and if a valid checkpoint for key already exists it becomes the
// Resume target (the prior run was drained or killed; this one replays
// and verifies). An unreadable or mismatched existing file is an error
// — the caller decides whether to clear it.
func (m *Manager) Arm(everyMS float64, key, label string) (*Hook, error) {
	h := &Hook{EveryMS: everyMS, Key: key, Label: label, Sink: m.Save}
	path := m.Path(key)
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return h, nil
		}
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	start := time.Now()
	st, err := Load(path)
	if err == nil && st.SpecKey != key {
		err = fmt.Errorf("ckpt: %s holds checkpoint for %q, not %q (hash collision?)", path, st.SpecKey, key)
	}
	m.emit("restore", start, err)
	if err != nil {
		return nil, err
	}
	h.Resume = st
	return h, nil
}

// Clear removes the checkpoint for key (called when its run completes:
// the result is now in the store or the response, and a later identical
// submission must not replay a stale boundary).
func (m *Manager) Clear(key string) error {
	err := os.Remove(m.Path(key))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}
