// Package ckpt provides deterministic checkpoint/resume for long
// simulations.
//
// A checkpoint is not a byte image of the engine: the event heap holds
// live closures and math/rand sources are not serializable, so a dumped
// heap could never be restored without perturbing the very determinism
// the simulator guarantees. Instead the package leans on that
// determinism directly — verified replay. At every quantized boundary
// (k × EveryMS of simulated time, reusing the sync-window grid of the
// cluster runtime) the run records a compact fingerprint of its state:
// simulated time, events fired, per-instance RNG stream positions
// (draw counts), operation counts, allocation failures, file-system
// occupancy, and admission-coordinator counters, sealed with a digest.
// Resuming replays the run from t=0 with the identical configuration
// and, on reaching the recorded boundary, verifies the replayed
// fingerprint field-by-field against the saved one before continuing to
// completion. The final result is byte-identical to an uninterrupted
// run by construction, and any configuration drift (different seed,
// workload, policy, binary behavior) is caught at the boundary instead
// of silently producing different numbers.
//
// The simulated prefix is re-executed, so resume does not save the
// prefix's wall time; what it buys is that a drained or killed long run
// completes with verified-identical results instead of being lost, and
// that the verification itself is a strong regression check on the
// engine's determinism.
package ckpt

import (
	"fmt"
	"hash/fnv"
	"strconv"
)

// Schema identifies the checkpoint format.
const Schema = "rofs-ckpt/v1"

// InstanceState fingerprints one simulated file server at a boundary.
type InstanceState struct {
	Index int   `json:"index"`
	Seed  int64 `json:"seed"`
	// Draws is the RNG stream position (primitive draws made so far).
	Draws uint64 `json:"draws"`
	// Ops and AllocFails are the instance's operation counters.
	Ops        int64 `json:"ops"`
	AllocFails int64 `json:"alloc_fails"`
	// Utilization and Files fingerprint the file-system state.
	Utilization float64 `json:"utilization"`
	Files       int64   `json:"files"`
}

// CoordState fingerprints a fleet's admission coordinator.
type CoordState struct {
	Arrivals int64 `json:"arrivals"`
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
}

// State is one checkpoint: the run's identity, the boundary it was
// taken at, and the deterministic fingerprint of everything that has
// happened up to it.
type State struct {
	Schema  string `json:"schema"`
	SpecKey string `json:"spec_key"`
	Label   string `json:"label,omitempty"`
	// Seq is the boundary ordinal (1 at SimMS = EveryMS).
	Seq int64 `json:"seq"`
	// SimMS is the quantized boundary's simulated time.
	SimMS float64 `json:"sim_ms"`
	// Events is the total events fired across all engines.
	Events    uint64          `json:"events"`
	Instances []InstanceState `json:"instances"`
	Coord     *CoordState     `json:"coord,omitempty"`
	// Digest seals the fields above (FNV-64a of the canonical
	// rendering); Load recomputes and rejects mismatches.
	Digest string `json:"digest"`
	// WallMS accumulates wall-clock time spent across the original run
	// and every resume — operational bookkeeping, excluded from the
	// digest.
	WallMS float64 `json:"wall_ms,omitempty"`
}

// canonical renders the digest-covered fields deterministically.
func (st *State) canonical() string {
	b := make([]byte, 0, 256)
	b = append(b, st.Schema...)
	b = append(b, '|')
	b = append(b, st.SpecKey...)
	b = append(b, '|')
	b = append(b, st.Label...)
	b = append(b, '|')
	b = strconv.AppendInt(b, st.Seq, 10)
	b = append(b, '|')
	b = strconv.AppendFloat(b, st.SimMS, 'g', -1, 64)
	b = append(b, '|')
	b = strconv.AppendUint(b, st.Events, 10)
	for _, in := range st.Instances {
		b = append(b, "|i:"...)
		b = strconv.AppendInt(b, int64(in.Index), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, in.Seed, 10)
		b = append(b, ',')
		b = strconv.AppendUint(b, in.Draws, 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, in.Ops, 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, in.AllocFails, 10)
		b = append(b, ',')
		b = strconv.AppendFloat(b, in.Utilization, 'g', -1, 64)
		b = append(b, ',')
		b = strconv.AppendInt(b, in.Files, 10)
	}
	if c := st.Coord; c != nil {
		b = append(b, "|c:"...)
		b = strconv.AppendInt(b, c.Arrivals, 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, c.Admitted, 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, c.Rejected, 10)
	}
	return string(b)
}

// Seal computes and stores the digest. Call after filling every
// fingerprint field.
func (st *State) Seal() {
	h := fnv.New64a()
	h.Write([]byte(st.canonical()))
	st.Digest = fmt.Sprintf("%016x", h.Sum64())
}

// Verify compares a replayed boundary state against a saved checkpoint
// field by field, returning a descriptive error on the first
// divergence. A divergence means the replay did not reproduce the
// original run — wrong seed, drifted configuration, or changed
// simulator behavior — and the resume must be abandoned.
func Verify(replay, saved State) error {
	if replay.SpecKey != saved.SpecKey {
		return fmt.Errorf("ckpt: spec key mismatch: replay %q, checkpoint %q", replay.SpecKey, saved.SpecKey)
	}
	if replay.Seq != saved.Seq {
		return fmt.Errorf("ckpt: boundary seq mismatch: replay %d, checkpoint %d", replay.Seq, saved.Seq)
	}
	if replay.SimMS != saved.SimMS {
		return fmt.Errorf("ckpt: boundary time mismatch: replay %g ms, checkpoint %g ms", replay.SimMS, saved.SimMS)
	}
	if replay.Events != saved.Events {
		return fmt.Errorf("ckpt: events fired mismatch at %g ms: replay %d, checkpoint %d", saved.SimMS, replay.Events, saved.Events)
	}
	if len(replay.Instances) != len(saved.Instances) {
		return fmt.Errorf("ckpt: instance count mismatch: replay %d, checkpoint %d", len(replay.Instances), len(saved.Instances))
	}
	for i := range saved.Instances {
		r, s := replay.Instances[i], saved.Instances[i]
		if r != s {
			return fmt.Errorf("ckpt: instance %d state mismatch at %g ms: replay %+v, checkpoint %+v", s.Index, saved.SimMS, r, s)
		}
	}
	switch {
	case (replay.Coord == nil) != (saved.Coord == nil):
		return fmt.Errorf("ckpt: coordinator presence mismatch")
	case replay.Coord != nil && *replay.Coord != *saved.Coord:
		return fmt.Errorf("ckpt: coordinator state mismatch at %g ms: replay %+v, checkpoint %+v", saved.SimMS, *replay.Coord, *saved.Coord)
	}
	if replay.Digest != saved.Digest {
		return fmt.Errorf("ckpt: digest mismatch at %g ms: replay %s, checkpoint %s", saved.SimMS, replay.Digest, saved.Digest)
	}
	return nil
}

// Hook arms checkpointing on a run. The core schedules a boundary event
// every EveryMS of simulated time; at each boundary it builds the
// State, verifies it against Resume when the boundary matches, and
// hands it to Sink.
//
// Arming the hook schedules engine events, so an armed run's event
// sequence differs from an unarmed one's (exactly like enabling
// metrics); the runner folds EveryMS into the cache key for that
// reason. A hook with a Sink but no Resume checkpoints; with Resume it
// verifies and then keeps checkpointing past the boundary.
type Hook struct {
	// EveryMS is the boundary grid in simulated milliseconds.
	EveryMS float64
	// Key and Label identify the run in saved states (the runner uses
	// Spec.Key() and Spec.Label()).
	Key   string
	Label string
	// Sink receives each sealed boundary state. Nil: boundaries still
	// fire (the event-sequence contract) but nothing is persisted.
	Sink func(State) error
	// Resume is the checkpoint this run must reproduce, or nil.
	Resume *State
}
