package units

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	if KB != 1024 || MB != 1024*1024 || GB != 1024*1024*1024 {
		t.Fatalf("binary constants wrong: KB=%d MB=%d GB=%d", KB, MB, GB)
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	cases := []struct {
		v    int64
		want bool
	}{
		{0, false}, {-1, false}, {-8, false},
		{1, true}, {2, true}, {3, false}, {4, true},
		{1023, false}, {1024, true}, {1025, false},
		{1 << 40, true}, {1<<40 + 1, false}, {1 << 62, true},
	}
	for _, c := range cases {
		if got := IsPowerOfTwo(c.v); got != c.want {
			t.Errorf("IsPowerOfTwo(%d) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := []struct{ v, want int64 }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8},
		{1000, 1024}, {1024, 1024}, {1025, 2048},
		{1<<40 - 1, 1 << 40}, {1 << 62, 1 << 62},
	}
	for _, c := range cases {
		if got := NextPowerOfTwo(c.v); got != c.want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestNextPowerOfTwoPanics(t *testing.T) {
	for _, v := range []int64{0, -1, 1<<62 + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NextPowerOfTwo(%d) did not panic", v)
				}
			}()
			NextPowerOfTwo(v)
		}()
	}
}

func TestPrevPowerOfTwo(t *testing.T) {
	cases := []struct{ v, want int64 }{
		{1, 1}, {2, 2}, {3, 2}, {4, 4}, {7, 4}, {8, 8},
		{1023, 512}, {1024, 1024}, {1<<62 + 5, 1 << 62},
	}
	for _, c := range cases {
		if got := PrevPowerOfTwo(c.v); got != c.want {
			t.Errorf("PrevPowerOfTwo(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLog2(t *testing.T) {
	for i := 0; i < 63; i++ {
		if got := Log2(int64(1) << i); got != i {
			t.Errorf("Log2(1<<%d) = %d", i, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Log2(3) did not panic")
		}
	}()
	Log2(3)
}

func TestRounding(t *testing.T) {
	cases := []struct{ v, align, up, down int64 }{
		{0, 4, 0, 0},
		{1, 4, 4, 0},
		{4, 4, 4, 4},
		{5, 4, 8, 4},
		{100, 24, 120, 96},
		{96, 24, 96, 96},
	}
	for _, c := range cases {
		if got := RoundUp(c.v, c.align); got != c.up {
			t.Errorf("RoundUp(%d, %d) = %d, want %d", c.v, c.align, got, c.up)
		}
		if got := RoundDown(c.v, c.align); got != c.down {
			t.Errorf("RoundDown(%d, %d) = %d, want %d", c.v, c.align, got, c.down)
		}
	}
}

func TestIsAligned(t *testing.T) {
	if !IsAligned(0, 8) || !IsAligned(16, 8) || IsAligned(12, 8) {
		t.Error("IsAligned basic cases failed")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8, 4, 2}, {9, 4, 3},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		v    int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{1024, "1K"},
		{8 * KB, "8K"},
		{24 * KB, "24K"},
		{1536, "1.5K"},
		{MB, "1M"},
		{16 * MB, "16M"},
		{GB, "1G"},
		{2*GB + 800*MB, "2.8G"},
	}
	for _, c := range cases {
		if got := Format(c.v); got != c.want {
			t.Errorf("Format(%d) = %q, want %q", c.v, got, c.want)
		}
	}
}

// Property: NextPowerOfTwo(v) is a power of two, >= v, and minimal.
func TestNextPowerOfTwoProperty(t *testing.T) {
	f := func(raw int64) bool {
		v := raw%(1<<50) + 1
		if v <= 0 {
			v = -v + 1
		}
		p := NextPowerOfTwo(v)
		return IsPowerOfTwo(p) && p >= v && (p == 1 || p/2 < v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RoundUp/RoundDown bracket v by less than one alignment unit.
func TestRoundingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := rng.Int63n(1 << 40)
		align := rng.Int63n(1<<20) + 1
		up, down := RoundUp(v, align), RoundDown(v, align)
		if down > v || v > up {
			t.Fatalf("bracket violated: %d <= %d <= %d (align %d)", down, v, up, align)
		}
		if up-down != 0 && up-down != align {
			t.Fatalf("gap %d not 0 or align %d", up-down, align)
		}
		if !IsAligned(up, align) || !IsAligned(down, align) {
			t.Fatalf("results not aligned: up=%d down=%d align=%d", up, down, align)
		}
	}
}
