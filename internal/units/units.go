// Package units provides byte-size constants and the small amount of
// integer bit math shared by every allocation policy: power-of-two
// rounding, alignment, and human-readable size formatting.
//
// All sizes in this repository are int64 byte counts unless a name says
// otherwise (disk "units", the allocators' minimum transfer granule, are
// also counted in int64 but converted explicitly at package boundaries).
package units

import (
	"fmt"
	"math/bits"
)

// Binary byte-size constants. The paper (and this codebase) use binary
// units throughout: the 24K track of Table 1 is 24576 bytes.
const (
	B  int64 = 1
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
)

// IsPowerOfTwo reports whether v is a positive power of two.
func IsPowerOfTwo(v int64) bool {
	return v > 0 && v&(v-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= v. It panics if v is
// not positive or the result would overflow int64.
func NextPowerOfTwo(v int64) int64 {
	if v <= 0 {
		panic(fmt.Sprintf("units: NextPowerOfTwo of non-positive %d", v))
	}
	if v > 1<<62 {
		panic(fmt.Sprintf("units: NextPowerOfTwo overflow for %d", v))
	}
	if IsPowerOfTwo(v) {
		return v
	}
	return 1 << (64 - bits.LeadingZeros64(uint64(v)))
}

// PrevPowerOfTwo returns the largest power of two <= v. It panics if v is
// not positive.
func PrevPowerOfTwo(v int64) int64 {
	if v <= 0 {
		panic(fmt.Sprintf("units: PrevPowerOfTwo of non-positive %d", v))
	}
	return 1 << (63 - bits.LeadingZeros64(uint64(v)))
}

// Log2 returns log2(v) for a power of two v, panicking otherwise. It is
// used by the buddy allocators to index free lists by size class.
func Log2(v int64) int {
	if !IsPowerOfTwo(v) {
		panic(fmt.Sprintf("units: Log2 of non-power-of-two %d", v))
	}
	return bits.TrailingZeros64(uint64(v))
}

// RoundUp rounds v up to the next multiple of align (align > 0).
func RoundUp(v, align int64) int64 {
	if align <= 0 {
		panic(fmt.Sprintf("units: RoundUp with non-positive alignment %d", align))
	}
	r := v % align
	if r == 0 {
		return v
	}
	return v + align - r
}

// RoundDown rounds v down to the previous multiple of align (align > 0).
func RoundDown(v, align int64) int64 {
	if align <= 0 {
		panic(fmt.Sprintf("units: RoundDown with non-positive alignment %d", align))
	}
	return v - v%align
}

// IsAligned reports whether v is a multiple of align.
func IsAligned(v, align int64) bool {
	if align <= 0 {
		panic(fmt.Sprintf("units: IsAligned with non-positive alignment %d", align))
	}
	return v%align == 0
}

// CeilDiv returns ceil(a/b) for b > 0.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic(fmt.Sprintf("units: CeilDiv with non-positive divisor %d", b))
	}
	return (a + b - 1) / b
}

// Format renders a byte count the way the paper does: "8K", "1M", "2.8G".
// Exact multiples print without a fraction; otherwise one decimal is kept.
func Format(v int64) string {
	format := func(val int64, unit int64, suffix string) string {
		if val%unit == 0 {
			return fmt.Sprintf("%d%s", val/unit, suffix)
		}
		return fmt.Sprintf("%.1f%s", float64(val)/float64(unit), suffix)
	}
	switch {
	case v >= GB || v <= -GB:
		return format(v, GB, "G")
	case v >= MB || v <= -MB:
		return format(v, MB, "M")
	case v >= KB || v <= -KB:
		return format(v, KB, "K")
	default:
		return fmt.Sprintf("%dB", v)
	}
}
