package stats

// ThroughputTracker measures data throughput over fixed simulated-time
// windows and detects the paper's stabilization condition: measurement is
// considered stable when the throughput of three consecutive windows,
// expressed as a percentage of the system's maximum bandwidth, agree within
// a tolerance (0.1 percentage points in the paper, §2.2).
//
// Time is in simulated milliseconds; bytes are attributed to the window in
// which the transfer *completes*, which is how an event-driven simulator
// naturally observes them.
type ThroughputTracker struct {
	windowMS   float64 // window length (10_000 ms in the paper)
	maxBytesMS float64 // maximum system bandwidth, bytes per ms
	tolerance  float64 // percentage points
	need       int     // consecutive agreeing windows required (3)

	startMS   float64 // measurement start time
	windowEnd float64 // end of the current window
	winBytes  int64   // bytes completed in the current window

	recent     []float64 // most recent window percentages (ring of size need)
	nWindows   int
	totalBytes int64
	stable     bool
	stablePct  float64
	started    bool
}

// NewThroughputTracker creates a tracker. maxBytesPerMS must be positive.
func NewThroughputTracker(windowMS, maxBytesPerMS, tolerancePct float64, needWindows int) *ThroughputTracker {
	if windowMS <= 0 || maxBytesPerMS <= 0 || needWindows < 2 {
		panic("stats: invalid throughput tracker parameters")
	}
	// The ring is appended to as windows actually elapse, so cap the
	// eager allocation: a huge needWindows (the "never stabilize, run to
	// the simulated-time cap" idiom) must not preallocate gigabytes.
	preallocate := needWindows
	if preallocate > 64 {
		preallocate = 64
	}
	return &ThroughputTracker{
		windowMS:   windowMS,
		maxBytesMS: maxBytesPerMS,
		tolerance:  tolerancePct,
		need:       needWindows,
		recent:     make([]float64, 0, preallocate),
	}
}

// Start begins measurement at the given simulated time. Transfers recorded
// before Start are ignored.
func (t *ThroughputTracker) Start(nowMS float64) {
	t.startMS = nowMS
	t.windowEnd = nowMS + t.windowMS
	t.winBytes = 0
	t.recent = t.recent[:0]
	t.nWindows = 0
	t.totalBytes = 0
	t.stable = false
	t.started = true
}

// Record attributes completed bytes at simulated time nowMS. Windows that
// elapsed with no traffic are closed as zero-throughput windows.
func (t *ThroughputTracker) Record(nowMS float64, bytes int64) {
	if !t.started {
		return
	}
	t.advance(nowMS)
	t.winBytes += bytes
	t.totalBytes += bytes
}

// Tick closes any windows that have fully elapsed by nowMS without traffic.
// Callers drive it from a periodic simulator event so stabilization can be
// observed even when the system is idle.
func (t *ThroughputTracker) Tick(nowMS float64) {
	if !t.started {
		return
	}
	t.advance(nowMS)
}

func (t *ThroughputTracker) advance(nowMS float64) {
	for nowMS >= t.windowEnd {
		pct := 100 * float64(t.winBytes) / (t.windowMS * t.maxBytesMS)
		t.closeWindow(pct)
		t.winBytes = 0
		t.windowEnd += t.windowMS
	}
}

func (t *ThroughputTracker) closeWindow(pct float64) {
	t.nWindows++
	if len(t.recent) == t.need {
		copy(t.recent, t.recent[1:])
		t.recent = t.recent[:t.need-1]
	}
	t.recent = append(t.recent, pct)
	if len(t.recent) < t.need || t.stable {
		return
	}
	lo, hi := t.recent[0], t.recent[0]
	for _, p := range t.recent[1:] {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if hi-lo <= t.tolerance {
		t.stable = true
		var sum float64
		for _, p := range t.recent {
			sum += p
		}
		t.stablePct = sum / float64(len(t.recent))
	}
}

// Stable reports whether the stabilization condition has been met.
func (t *ThroughputTracker) Stable() bool { return t.stable }

// StablePercent returns the mean percentage over the agreeing windows; it
// is only meaningful once Stable() is true.
func (t *ThroughputTracker) StablePercent() float64 { return t.stablePct }

// Windows returns the number of fully elapsed windows.
func (t *ThroughputTracker) Windows() int { return t.nWindows }

// OverallPercent returns throughput over the whole measurement interval as
// a percentage of maximum bandwidth — the fallback number reported when a
// run hits its simulated-time cap before stabilizing.
func (t *ThroughputTracker) OverallPercent(nowMS float64) float64 {
	elapsed := nowMS - t.startMS
	if elapsed <= 0 {
		return 0
	}
	return 100 * float64(t.totalBytes) / (elapsed * t.maxBytesMS)
}

// TotalBytes returns bytes recorded since Start.
func (t *ThroughputTracker) TotalBytes() int64 { return t.totalBytes }
