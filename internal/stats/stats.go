// Package stats provides the statistical estimators used by the simulator:
// streaming mean/variance (Welford), fixed-bucket histograms, and the
// windowed-throughput tracker that implements the paper's stabilization
// rule (three consecutive 10-second intervals within 0.1 percentage points
// of each other, §2.2/§3).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Welford accumulates a streaming mean and variance. The zero value is
// ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the estimator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation, or 0 with no observations.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 with no observations.
func (w *Welford) Max() float64 { return w.max }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge combines another estimator into this one (parallel Welford).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	mean := w.mean + delta*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n, w.mean, w.m2 = n, mean, m2
}

// tTable95 holds two-sided 95% Student-t critical values for small
// degrees of freedom; beyond the table the normal approximation (1.96)
// takes over.
var tTable95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the two-sided 95% confidence interval on
// the mean (Student-t for small samples). It returns 0 for fewer than two
// observations.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	df := int(w.n - 1)
	t := 1.96
	if df < len(tTable95) {
		t = tTable95[df]
	}
	return t * w.StdDev() / math.Sqrt(float64(w.n))
}

// Histogram counts observations into caller-defined bucket boundaries.
// An observation x lands in bucket i when bounds[i-1] <= x < bounds[i];
// values >= the last bound (including +Inf) land in the overflow bucket,
// and values below the first bound (including -Inf) land in bucket 0.
// NaN observations belong to no interval: they are counted separately
// (NaNs) and appear in neither the buckets nor Total.
type Histogram struct {
	bounds []float64
	counts []int64
	total  int64
	nans   int64
}

// NewHistogram builds a histogram with the given strictly increasing upper
// bounds. At least one bound is required — with zero bounds every
// observation would land in the overflow bucket and every quantile would
// be +Inf, which is always a caller bug.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram bounds not increasing at %d", i))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(bounds)+1)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		h.nans++
		return
	}
	i := sort.SearchFloat64s(h.bounds, x)
	// SearchFloat64s returns the first bound >= x; a value exactly on a
	// bound belongs to the next bucket (half-open intervals).
	if i < len(h.bounds) && h.bounds[i] == x {
		i++
	}
	h.counts[i]++
	h.total++
}

// Total returns the number of recorded non-NaN observations.
func (h *Histogram) Total() int64 { return h.total }

// NaNs returns the number of NaN observations dropped from the buckets.
func (h *Histogram) NaNs() int64 { return h.nans }

// Counts returns a copy of the per-bucket counts, the last entry being the
// overflow bucket.
func (h *Histogram) Counts() []int64 {
	c := make([]int64, len(h.counts))
	copy(c, h.counts)
	return c
}

// Merge folds another histogram's counts into this one. Both histograms
// must have been built with identical bucket bounds (fleet aggregation
// merges per-instance latency histograms that share latencyBounds).
func (h *Histogram) Merge(o *Histogram) {
	if len(h.bounds) != len(o.bounds) {
		panic("stats: merging histograms with different bucket counts")
	}
	for i, b := range h.bounds {
		if o.bounds[i] != b {
			panic("stats: merging histograms with different bounds")
		}
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.nans += o.nans
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) by
// walking the buckets; it returns +Inf when the quantile falls in the
// overflow bucket and 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i >= len(h.bounds) {
				return math.Inf(1)
			}
			return h.bounds[i]
		}
	}
	return math.Inf(1)
}

// String renders a compact one-line summary, mainly for debug logs.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hist(n=%d:", h.total)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if i < len(h.bounds) {
			fmt.Fprintf(&b, " <%g:%d", h.bounds[i], c)
		} else {
			fmt.Fprintf(&b, " >=%g:%d", h.bounds[len(h.bounds)-1], c)
		}
	}
	b.WriteString(")")
	return b.String()
}
