package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %g, want 5", got)
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if got := w.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %g, want %g", got, 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g", w.Min(), w.Max())
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatal("single observation stats wrong")
	}
	if w.Min() != 3.5 || w.Max() != 3.5 {
		t.Fatal("single observation min/max wrong")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var all, a, b Welford
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Fatalf("merged mean %g != %g", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Fatalf("merged variance %g != %g", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged min/max wrong")
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 {
		t.Fatal("merge with empty changed N")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 1 {
		t.Fatal("merge into empty did not copy")
	}
}

func TestCI95(t *testing.T) {
	var w Welford
	if w.CI95() != 0 {
		t.Fatal("empty CI not 0")
	}
	w.Add(5)
	if w.CI95() != 0 {
		t.Fatal("single-sample CI not 0")
	}
	// Five observations with sd 1: CI = t(4) * 1/sqrt(5) = 2.776*0.4472.
	w = Welford{}
	for _, x := range []float64{4, 4.5, 5, 5.5, 6} {
		w.Add(x)
	}
	want := 2.776 * w.StdDev() / math.Sqrt(5)
	if got := w.CI95(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CI95 = %g, want %g", got, want)
	}
	// Large n uses the normal critical value.
	big := Welford{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		big.Add(rng.NormFloat64())
	}
	want = 1.96 * big.StdDev() / math.Sqrt(1000)
	if got := big.CI95(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("large-n CI95 = %g, want %g", got, want)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, x := range []float64{0.5, 0.9, 1, 5, 50, 1000} {
		h.Add(x)
	}
	want := []int64{2, 2, 1, 1} // [<1, 1..10, 10..100, >=100]
	got := h.Counts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, got[i], want[i], want)
		}
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestHistogramBoundaryGoesUp(t *testing.T) {
	h := NewHistogram([]float64{10})
	h.Add(10)
	c := h.Counts()
	if c[0] != 0 || c[1] != 1 {
		t.Fatalf("value on boundary landed in %v, want overflow", c)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Add(float64(i%4) + 0.5) // 25 each in buckets <1, <2, <4, <4 ... values .5,1.5,2.5,3.5
	}
	if q := h.Quantile(0.2); q != 1 {
		t.Fatalf("Quantile(0.2) = %g, want 1", q)
	}
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("Quantile(0.5) = %g, want 2", q)
	}
	if q := h.Quantile(1.0); q != 4 {
		t.Fatalf("Quantile(1.0) = %g, want 4", q)
	}
	empty := NewHistogram([]float64{1})
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds did not panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestHistogramPanicsOnZeroBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bounds did not panic")
		}
	}()
	NewHistogram(nil)
}

func TestHistogramNaN(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Add(math.NaN())
	h.Add(5)
	h.Add(math.NaN())
	if h.NaNs() != 2 {
		t.Fatalf("NaNs = %d, want 2", h.NaNs())
	}
	if h.Total() != 1 {
		t.Fatalf("Total = %d, want 1 (NaNs excluded)", h.Total())
	}
	var sum int64
	for _, c := range h.Counts() {
		sum += c
	}
	if sum != 1 {
		t.Fatalf("bucket sum = %d, want 1", sum)
	}
	// NaNs do not disturb quantiles either.
	if q := h.Quantile(1.0); q != 10 {
		t.Fatalf("Quantile(1.0) = %g, want 10", q)
	}
}

func TestHistogramInfinities(t *testing.T) {
	h := NewHistogram([]float64{0, 100})
	h.Add(math.Inf(1))  // overflow bucket
	h.Add(math.Inf(-1)) // bucket 0
	c := h.Counts()
	if c[0] != 1 {
		t.Fatalf("-Inf landed in %v, want bucket 0", c)
	}
	if c[len(c)-1] != 1 {
		t.Fatalf("+Inf landed in %v, want overflow", c)
	}
	if h.Total() != 2 {
		t.Fatalf("Total = %d, want 2 (infinities count)", h.Total())
	}
	if q := h.Quantile(1.0); !math.IsInf(q, 1) {
		t.Fatalf("Quantile(1.0) = %g, want +Inf", q)
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	h.Add(-1e300) // far below the first bound
	h.Add(1e300)  // far above the last
	c := h.Counts()
	if c[0] != 1 || c[2] != 1 || c[1] != 0 {
		t.Fatalf("out-of-range counts = %v, want [1 0 1]", c)
	}
	// The below-range observation still bounds the low quantile by the
	// first bucket's upper edge.
	if q := h.Quantile(0.5); q != 10 {
		t.Fatalf("Quantile(0.5) = %g, want 10", q)
	}
}

func TestThroughputStabilization(t *testing.T) {
	// 10-second windows, max bandwidth 1000 bytes/ms, 0.1 pct tolerance.
	tr := NewThroughputTracker(10_000, 1000, 0.1, 3)
	tr.Start(0)
	// Three identical windows at 50% utilization: 5e6 bytes per window.
	for w := 0; w < 3; w++ {
		for i := 0; i < 10; i++ {
			tr.Record(float64(w*10_000+i*1000)+1, 500_000)
		}
	}
	tr.Tick(30_000)
	if !tr.Stable() {
		t.Fatal("did not stabilize after three equal windows")
	}
	if p := tr.StablePercent(); math.Abs(p-50) > 1e-9 {
		t.Fatalf("StablePercent = %g, want 50", p)
	}
	if tr.Windows() != 3 {
		t.Fatalf("Windows = %d, want 3", tr.Windows())
	}
}

func TestThroughputNotStableWhenVarying(t *testing.T) {
	tr := NewThroughputTracker(10_000, 1000, 0.1, 3)
	tr.Start(0)
	// Windows at 50%, 52%, 50%: spread 2 points > 0.1 tolerance.
	bytes := []int64{5_000_000, 5_200_000, 5_000_000}
	for w, b := range bytes {
		tr.Record(float64(w)*10_000+5, b)
	}
	tr.Tick(30_000)
	if tr.Stable() {
		t.Fatal("stabilized despite 2-point spread")
	}
	if tr.Windows() != 3 {
		t.Fatalf("Windows = %d, want 3", tr.Windows())
	}
}

func TestThroughputIdleWindowsCountAsZero(t *testing.T) {
	tr := NewThroughputTracker(10_000, 1000, 0.1, 3)
	tr.Start(0)
	tr.Tick(35_000) // three idle windows elapse
	if !tr.Stable() {
		t.Fatal("three idle windows should stabilize at zero")
	}
	if tr.StablePercent() != 0 {
		t.Fatalf("StablePercent = %g, want 0", tr.StablePercent())
	}
}

func TestThroughputOverallPercent(t *testing.T) {
	tr := NewThroughputTracker(10_000, 1000, 0.1, 3)
	tr.Start(100)
	tr.Record(5_100, 2_500_000)
	if p := tr.OverallPercent(5_100); math.Abs(p-50) > 1e-9 {
		t.Fatalf("OverallPercent = %g, want 50", p)
	}
	if tr.TotalBytes() != 2_500_000 {
		t.Fatalf("TotalBytes = %d", tr.TotalBytes())
	}
}

func TestThroughputIgnoresBeforeStart(t *testing.T) {
	tr := NewThroughputTracker(10_000, 1000, 0.1, 3)
	tr.Record(5, 1_000_000) // before Start: ignored
	tr.Start(0)
	if tr.TotalBytes() != 0 {
		t.Fatal("bytes recorded before Start were counted")
	}
}

func TestThroughputRestart(t *testing.T) {
	tr := NewThroughputTracker(10_000, 1000, 0.1, 3)
	tr.Start(0)
	tr.Record(5, 1_000_000)
	tr.Tick(40_000)
	tr.Start(40_000) // restart clears state
	if tr.TotalBytes() != 0 || tr.Windows() != 0 || tr.Stable() {
		t.Fatal("Start did not reset tracker")
	}
}
