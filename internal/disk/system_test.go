package disk

import (
	"math"
	"testing"

	"rofs/internal/sim"
	"rofs/internal/units"
)

// newSys builds a system over a fresh engine, failing the test on error.
func newSys(t *testing.T, cfg Config) (*System, *sim.Engine) {
	t.Helper()
	eng := &sim.Engine{}
	s, err := New(cfg, eng)
	if err != nil {
		t.Fatal(err)
	}
	return s, eng
}

// submitAndRun issues a synchronous request and returns its completion time.
func submitAndRun(t *testing.T, s *System, eng *sim.Engine, req *Request) float64 {
	t.Helper()
	var done float64 = -1
	req.Done = func(now float64) { done = now }
	s.Submit(req)
	eng.Run(math.Inf(1))
	if done < 0 {
		t.Fatal("request never completed")
	}
	return done
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NDisks = 0 },
		func(c *Config) { c.UnitBytes = 0 },
		func(c *Config) { c.StripeUnitBytes = 512 }, // < unit
		func(c *Config) { c.StripeUnitBytes = 1536 },
		func(c *Config) { c.Layout = Mirrored; c.NDisks = 7 },
		func(c *Config) { c.Layout = RAID5; c.NDisks = 1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d: bad config validated", i)
		}
	}
}

func TestCapacity(t *testing.T) {
	s, _ := newSys(t, DefaultConfig())
	want := 8 * WrenIV().Capacity()
	if s.CapacityBytes() != want {
		t.Fatalf("CapacityBytes = %d, want %d", s.CapacityBytes(), want)
	}
	if s.Units() != want/units.KB {
		t.Fatalf("Units = %d", s.Units())
	}
}

func TestLayoutCapacities(t *testing.T) {
	one := WrenIV().Capacity()
	for _, c := range []struct {
		layout Layout
		want   int64
	}{
		{Striped, 8 * one},
		{Mirrored, 4 * one},
		{RAID5, 7 * one},
	} {
		cfg := DefaultConfig()
		cfg.Layout = c.layout
		s, _ := newSys(t, cfg)
		if s.CapacityBytes() != c.want {
			t.Errorf("%v capacity = %d, want %d", c.layout, s.CapacityBytes(), c.want)
		}
	}
	cfg := DefaultConfig()
	cfg.Layout = ParityStriped
	s, _ := newSys(t, cfg)
	want := 7 * one // 7/8 of each disk, rounded to stripe units, times 8
	if got := s.CapacityBytes(); got > want || got < want-8*cfg.StripeUnitBytes {
		t.Errorf("parity-striped capacity = %d, want ≈%d", got, want)
	}
}

func TestSingleDiskSequentialCylinderRead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NDisks = 1
	s, eng := newSys(t, cfg)
	// One full cylinder from unit 0 at t=0: head starts at cylinder 0 and
	// angular position 0, so each of the 9 tracks costs exactly one
	// rotation with free head switches.
	cylUnits := WrenIV().CylinderBytes() / cfg.UnitBytes
	done := submitAndRun(t, s, eng, &Request{Runs: []Run{{0, cylUnits}}})
	want := 9 * 16.67
	if math.Abs(done-want) > 1e-6 {
		t.Fatalf("cylinder read took %g ms, want %g", done, want)
	}
}

func TestSingleDiskCylinderCrossingPenalty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NDisks = 1
	s, eng := newSys(t, cfg)
	// Two full cylinders: the crossing costs a single-track seek, and the
	// phase model then waits out the rest of that rotation.
	twoCyl := 2 * WrenIV().CylinderBytes() / cfg.UnitBytes
	done := submitAndRun(t, s, eng, &Request{Runs: []Run{{0, twoCyl}}})
	want := 18*16.67 + 16.67 // 18 track rotations + one lost rotation
	if math.Abs(done-want) > 1e-6 {
		t.Fatalf("two-cylinder read took %g ms, want %g", done, want)
	}
	stats := s.Stats()
	if stats[0].Seeks != 1 {
		t.Fatalf("seeks = %d, want 1", stats[0].Seeks)
	}
}

func TestSingleDiskSeekAndRotation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NDisks = 1
	s, eng := newSys(t, cfg)
	g := WrenIV()
	// Read 1 unit at the start of cylinder 100. Seek = ST + 100*SI; the
	// seek ends mid-rotation so we wait for offset 0 to come around.
	startUnit := 100 * g.CylinderBytes() / cfg.UnitBytes
	done := submitAndRun(t, s, eng, &Request{Runs: []Run{{startUnit, 1}}})
	seek := 5.5 + 100*0.032
	rotWait := 16.67 - math.Mod(seek, 16.67)
	transfer := float64(cfg.UnitBytes) / float64(g.BytesPerTrack) * 16.67
	want := seek + rotWait + transfer
	if math.Abs(done-want) > 1e-6 {
		t.Fatalf("random read took %g ms, want %g", done, want)
	}
}

func TestStripedParallelism(t *testing.T) {
	s, eng := newSys(t, DefaultConfig())
	// A full stripe row (8 × 24K) is one track on each of 8 drives: all
	// transfer in parallel, so the request takes ~one rotation, not eight.
	rowUnits := 8 * 24 * units.KB / s.UnitBytes()
	done := submitAndRun(t, s, eng, &Request{Runs: []Run{{0, rowUnits}}})
	if math.Abs(done-16.67) > 1e-6 {
		t.Fatalf("striped row read took %g ms, want one rotation", done)
	}
}

func TestStripedMappingBijection(t *testing.T) {
	cfg := Config{
		Geometry: Geometry{
			BytesPerTrack:     4 * units.KB,
			TracksPerCylinder: 2,
			Cylinders:         4,
			RotationMS:        10,
			SingleTrackSeekMS: 1,
		},
		NDisks:          4,
		Layout:          Striped,
		UnitBytes:       units.KB,
		StripeUnitBytes: 2 * units.KB,
	}
	s, _ := newSys(t, cfg)
	seen := map[[2]int64]bool{}
	var total int64
	for u := int64(0); u < s.Units(); u++ {
		segs := s.segments(&Request{Runs: []Run{{u, 1}}})
		if len(segs) != 1 {
			t.Fatalf("unit %d mapped to %d segments", u, len(segs))
		}
		sg := segs[0]
		if sg.seg.n != cfg.UnitBytes {
			t.Fatalf("unit %d mapped to %d bytes", u, sg.seg.n)
		}
		key := [2]int64{int64(sg.disk), sg.seg.start}
		if seen[key] {
			t.Fatalf("unit %d collides at disk %d offset %d", u, sg.disk, sg.seg.start)
		}
		if sg.seg.start+sg.seg.n > cfg.Geometry.Capacity() {
			t.Fatalf("unit %d maps beyond drive capacity", u)
		}
		seen[key] = true
		total++
	}
	if total*cfg.UnitBytes != s.CapacityBytes() {
		t.Fatalf("covered %d bytes of %d", total*cfg.UnitBytes, s.CapacityBytes())
	}
}

func TestStripedMergesPerDrive(t *testing.T) {
	s, _ := newSys(t, DefaultConfig())
	// 16 stripe units => 2 rows: each drive should get ONE merged segment
	// of two contiguous stripe units, not two separate ones.
	segs := s.segments(&Request{Runs: []Run{{0, 16 * 24 * units.KB / s.UnitBytes()}}})
	if len(segs) != 8 {
		t.Fatalf("got %d segments, want 8 merged", len(segs))
	}
	for _, sg := range segs {
		if sg.seg.n != 2*24*units.KB {
			t.Fatalf("segment on disk %d has %d bytes, want merged 48K", sg.disk, sg.seg.n)
		}
	}
}

func TestMirroredReadOneWriteBoth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Layout = Mirrored
	s, _ := newSys(t, cfg)
	one := 24 * units.KB / s.UnitBytes()
	reads := s.segments(&Request{Runs: []Run{{0, one}}})
	if len(reads) != 1 {
		t.Fatalf("mirrored read produced %d segments, want 1", len(reads))
	}
	writes := s.segments(&Request{Runs: []Run{{0, one}}, Write: true})
	if len(writes) != 2 {
		t.Fatalf("mirrored write produced %d segments, want 2", len(writes))
	}
	if writes[0].disk/2 != writes[1].disk/2 || writes[0].disk == writes[1].disk {
		t.Fatalf("mirrored write went to disks %d and %d, want a pair",
			writes[0].disk, writes[1].disk)
	}
	if writes[0].seg.start != writes[1].seg.start {
		t.Fatal("replicas at different offsets")
	}
}

func TestRAID5SmallWritePenalty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Layout = RAID5
	s, _ := newSys(t, cfg)
	one := 24 * units.KB / s.UnitBytes()
	segs := s.segments(&Request{Runs: []Run{{0, one}}, Write: true})
	if len(segs) != 2 {
		t.Fatalf("small RAID5 write produced %d segments, want data+parity", len(segs))
	}
	for _, sg := range segs {
		if sg.seg.extraRotations != 1 {
			t.Fatalf("small write segment missing read-modify-write rotation")
		}
		if !sg.seg.write {
			t.Fatal("segment not marked as write")
		}
	}
	if segs[0].disk == segs[1].disk {
		t.Fatal("data and parity on the same drive")
	}
}

func TestRAID5FullStripeWriteAvoidsRMW(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Layout = RAID5
	s, _ := newSys(t, cfg)
	rowUnits := 7 * 24 * units.KB / s.UnitBytes() // 7 data columns
	segs := s.segments(&Request{Runs: []Run{{0, rowUnits}}, Write: true})
	if len(segs) != 8 {
		t.Fatalf("full-stripe write produced %d segments, want 8", len(segs))
	}
	for _, sg := range segs {
		if sg.seg.extraRotations != 0 {
			t.Fatal("full-stripe write paid read-modify-write")
		}
	}
}

func TestRAID5ReadHasNoParityTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Layout = RAID5
	s, _ := newSys(t, cfg)
	segs := s.segments(&Request{Runs: []Run{{0, 7 * 24 * units.KB / s.UnitBytes()}}})
	if len(segs) != 7 {
		t.Fatalf("full-row read produced %d segments, want 7 data only", len(segs))
	}
}

func TestParityStripedFilesStayOnOneDrive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Layout = ParityStriped
	s, _ := newSys(t, cfg)
	// A 1M read at the start of the space touches only drive 0.
	segs := s.segments(&Request{Runs: []Run{{0, units.MB / s.UnitBytes()}}})
	for _, sg := range segs {
		if sg.disk != 0 {
			t.Fatalf("parity-striped read touched drive %d", sg.disk)
		}
	}
	// A small write adds parity traffic on a different drive.
	wsegs := s.segments(&Request{Runs: []Run{{0, 1}}, Write: true})
	if len(wsegs) != 2 {
		t.Fatalf("parity-striped write produced %d segments, want 2", len(wsegs))
	}
	if wsegs[0].disk == wsegs[1].disk {
		t.Fatal("parity landed on the data drive")
	}
}

func TestFCFSQueueing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NDisks = 1
	s, eng := newSys(t, cfg)
	var order []int
	mk := func(id int) *Request {
		return &Request{
			Runs: []Run{{0, 1}},
			Done: func(float64) { order = append(order, id) },
		}
	}
	s.Submit(mk(1))
	s.Submit(mk(2))
	s.Submit(mk(3))
	eng.Run(math.Inf(1))
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("completion order %v", order)
	}
	if s.Requests() != 3 {
		t.Fatalf("Requests = %d", s.Requests())
	}
}

func TestEmptyRequestCompletesImmediately(t *testing.T) {
	s, eng := newSys(t, DefaultConfig())
	called := false
	s.Submit(&Request{Done: func(float64) { called = true }})
	if !called {
		t.Fatal("empty request did not complete synchronously")
	}
	_ = eng
}

func TestOutOfRangePanics(t *testing.T) {
	s, _ := newSys(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range run did not panic")
		}
	}()
	s.Submit(&Request{Runs: []Run{{s.Units(), 1}}})
}

func TestTotalBytesAccounting(t *testing.T) {
	s, eng := newSys(t, DefaultConfig())
	n := 48 * units.KB / s.UnitBytes()
	submitAndRun(t, s, eng, &Request{Runs: []Run{{0, n}}})
	if s.TotalBytes() != 48*units.KB {
		t.Fatalf("TotalBytes = %d", s.TotalBytes())
	}
}

// TestSequentialApproachesSustainedBandwidth reads a long contiguous range
// and checks the observed rate lands on the model's sustained bandwidth —
// the denominator used for every reported percentage.
func TestSequentialApproachesSustainedBandwidth(t *testing.T) {
	s, eng := newSys(t, DefaultConfig())
	total := 256 * units.MB / s.UnitBytes()
	done := submitAndRun(t, s, eng, &Request{Runs: []Run{{0, total}}})
	rate := float64(256*units.MB) / done
	if pct := 100 * rate / s.MaxBandwidth(); pct < 97 || pct > 103 {
		t.Fatalf("sequential read ran at %.1f%% of sustained bandwidth", pct)
	}
}
