// Package disk models the storage substrate of the paper's simulator: a
// configurable disk drive (Table 1 geometry and timing) and a disk system
// that addresses an array of drives as a linear space of fixed-size disk
// units, in one of four layouts — plain striping (used for all of the
// paper's published results), mirroring, RAID-5 [PATT88], and parity
// striping [GRAY90] (§2.1).
//
// Timing follows the paper's model: an N-cylinder seek costs ST + N·SI
// milliseconds, rotation is phase-continuous (all spindles synchronized),
// transfers proceed track by track with free head switches within a
// cylinder and a single-track seek at each cylinder crossing.
package disk

import (
	"fmt"

	"rofs/internal/units"
)

// Geometry describes one drive's physical layout and timing. The field
// names mirror Table 1 of the paper.
type Geometry struct {
	BytesPerTrack     int64   // e.g. 24K
	TracksPerCylinder int     // number of platters/heads, e.g. 9
	Cylinders         int     // e.g. 1600
	RotationMS        float64 // single rotation time, e.g. 16.67
	SingleTrackSeekMS float64 // ST, e.g. 5.5
	SeekIncrementMS   float64 // SI, e.g. 0.0320
}

// WrenIV returns the simulated drive of Table 1: a CDC 5¼" Wren IV
// (94171-344) with 1600 cylinders (the paper rounds the real 1549 up).
func WrenIV() Geometry {
	return Geometry{
		BytesPerTrack:     24 * units.KB,
		TracksPerCylinder: 9,
		Cylinders:         1600,
		RotationMS:        16.67,
		SingleTrackSeekMS: 5.5,
		SeekIncrementMS:   0.0320,
	}
}

// Validate reports whether the geometry is self-consistent.
func (g Geometry) Validate() error {
	switch {
	case g.BytesPerTrack <= 0:
		return fmt.Errorf("disk: BytesPerTrack %d must be positive", g.BytesPerTrack)
	case g.TracksPerCylinder <= 0:
		return fmt.Errorf("disk: TracksPerCylinder %d must be positive", g.TracksPerCylinder)
	case g.Cylinders <= 0:
		return fmt.Errorf("disk: Cylinders %d must be positive", g.Cylinders)
	case g.RotationMS <= 0:
		return fmt.Errorf("disk: RotationMS %g must be positive", g.RotationMS)
	case g.SingleTrackSeekMS < 0 || g.SeekIncrementMS < 0:
		return fmt.Errorf("disk: negative seek parameters")
	}
	return nil
}

// Capacity returns the drive's capacity in bytes.
func (g Geometry) Capacity() int64 {
	return g.BytesPerTrack * int64(g.TracksPerCylinder) * int64(g.Cylinders)
}

// CylinderBytes returns the bytes stored in one cylinder.
func (g Geometry) CylinderBytes() int64 {
	return g.BytesPerTrack * int64(g.TracksPerCylinder)
}

// SeekMS returns the time to seek across n cylinders: 0 for n == 0,
// otherwise ST + n·SI (§2.1).
func (g Geometry) SeekMS(n int) float64 {
	if n < 0 {
		n = -n
	}
	if n == 0 {
		return 0
	}
	return g.SingleTrackSeekMS + float64(n)*g.SeekIncrementMS
}

// PeakBandwidth returns the head-limited transfer rate in bytes per
// millisecond: one track per rotation.
func (g Geometry) PeakBandwidth() float64 {
	return float64(g.BytesPerTrack) / g.RotationMS
}

// SustainedBandwidth returns the drive's long-run sequential rate in bytes
// per millisecond under this package's timing model: a cylinder costs one
// rotation per track plus, at the cylinder crossing, a single-track seek
// whose rotational realignment rounds it up to one extra full rotation.
func (g Geometry) SustainedBandwidth() float64 {
	perCylMS := float64(g.TracksPerCylinder)*g.RotationMS + g.RotationMS
	return float64(g.CylinderBytes()) / perCylMS
}

// locate translates a byte offset within the drive into cylinder, track
// within cylinder, and byte offset within track.
func (g Geometry) locate(byteOff int64) (cyl int, track int, inTrack int64) {
	t := byteOff / g.BytesPerTrack
	inTrack = byteOff % g.BytesPerTrack
	cyl = int(t) / g.TracksPerCylinder
	track = int(t) % g.TracksPerCylinder
	return cyl, track, inTrack
}
