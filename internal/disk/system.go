package disk

import (
	"fmt"

	"rofs/internal/metrics"
	"rofs/internal/sim"
	"rofs/internal/units"
)

// Layout selects how the array presents its drives as one linear address
// space (§2.1 of the paper).
type Layout int

const (
	// Striped spreads data round-robin across all drives in stripe-unit
	// chunks with no redundancy. All of the paper's published results use
	// this layout.
	Striped Layout = iota
	// Mirrored keeps every byte on two identical drives; reads go to the
	// less busy replica, writes to both.
	Mirrored
	// RAID5 rotates one parity stripe unit per row across the array
	// [PATT88]. Small writes pay read-modify-write on the data and parity
	// drives; full-stripe writes pay only the parity write.
	RAID5
	// ParityStriped stores parity across drives but allocates files to
	// single drives [GRAY90]: the linear space is the concatenation of the
	// drives' data regions rather than a round-robin interleave.
	ParityStriped
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case Striped:
		return "striped"
	case Mirrored:
		return "mirrored"
	case RAID5:
		return "raid5"
	case ParityStriped:
		return "parity-striped"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Scheduler selects the per-drive queue discipline.
type Scheduler int

const (
	// SSTF (shortest seek time first) serves the queued segment closest
	// to the head, ties broken in arrival order. With the paper's 20+
	// concurrent users the per-drive queues run deep, and seek-sorting is
	// what makes its application-throughput magnitudes reachable.
	SSTF Scheduler = iota
	// FCFS serves segments strictly in arrival order.
	FCFS
	// SCAN is the elevator (LOOK variant): the head sweeps in one
	// direction serving the nearest segment ahead of it, reversing when
	// nothing remains in that direction. Latency tails are fairer than
	// SSTF's at similar throughput.
	SCAN
)

// String implements fmt.Stringer.
func (s Scheduler) String() string {
	switch s {
	case FCFS:
		return "fcfs"
	case SCAN:
		return "scan"
	default:
		return "sstf"
	}
}

// Config describes a disk system. The zero value is not valid; use
// DefaultConfig for the paper's Table 1 array.
type Config struct {
	Geometry        Geometry
	NDisks          int
	Layout          Layout
	UnitBytes       int64 // disk unit: the minimum transfer granule (§2.1)
	StripeUnitBytes int64 // bytes per drive before allocation moves on
	Scheduler       Scheduler

	// Geometries, when non-empty, gives each drive its own geometry —
	// the paper's disk system "is designed to allow multiple
	// heterogeneous devices" (§2.1). Its length must equal NDisks; the
	// striped address space is bounded by the smallest drive (larger
	// drives' excess capacity is unaddressed). When empty, every drive
	// uses Geometry.
	Geometries []Geometry
}

// geometryOf returns drive i's geometry.
func (c Config) geometryOf(i int) Geometry {
	if len(c.Geometries) == c.NDisks {
		return c.Geometries[i]
	}
	return c.Geometry
}

// minCapacity returns the smallest drive capacity in the array.
func (c Config) minCapacity() int64 {
	min := c.geometryOf(0).Capacity()
	for i := 1; i < c.NDisks; i++ {
		if cap := c.geometryOf(i).Capacity(); cap < min {
			min = cap
		}
	}
	return min
}

// DefaultConfig returns the simulated configuration of Table 1: eight Wren
// IV drives (2.8 G total), 1K disk units, one-track (24K) stripe units,
// plain striping.
func DefaultConfig() Config {
	return Config{
		Geometry:        WrenIV(),
		NDisks:          8,
		Layout:          Striped,
		UnitBytes:       1 * units.KB,
		StripeUnitBytes: 24 * units.KB,
	}
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if len(c.Geometries) != 0 {
		if len(c.Geometries) != c.NDisks {
			return fmt.Errorf("disk: %d per-drive geometries for %d drives",
				len(c.Geometries), c.NDisks)
		}
		for i, g := range c.Geometries {
			if err := g.Validate(); err != nil {
				return fmt.Errorf("disk: drive %d: %w", i, err)
			}
		}
	}
	switch {
	case c.NDisks < 1:
		return fmt.Errorf("disk: NDisks %d must be >= 1", c.NDisks)
	case c.UnitBytes <= 0:
		return fmt.Errorf("disk: UnitBytes %d must be positive", c.UnitBytes)
	case c.StripeUnitBytes < c.UnitBytes:
		return fmt.Errorf("disk: stripe unit %d smaller than disk unit %d",
			c.StripeUnitBytes, c.UnitBytes)
	case c.StripeUnitBytes%c.UnitBytes != 0:
		return fmt.Errorf("disk: stripe unit %d not a multiple of disk unit %d",
			c.StripeUnitBytes, c.UnitBytes)
	}
	switch c.Layout {
	case Mirrored:
		if c.NDisks%2 != 0 {
			return fmt.Errorf("disk: mirrored layout needs an even disk count, got %d", c.NDisks)
		}
	case RAID5, ParityStriped:
		if c.NDisks < 2 {
			return fmt.Errorf("disk: %v layout needs >= 2 disks, got %d", c.Layout, c.NDisks)
		}
	}
	return nil
}

// Run is a contiguous range of the linear address space, in disk units.
type Run struct {
	Start int64 // first disk unit
	Len   int64 // number of disk units
}

// Request is one logical I/O: a set of runs read or written together. The
// request completes — and Done fires — when the last per-drive segment
// finishes.
type Request struct {
	Runs  []Run
	Write bool
	Done  func(now float64)
	// Fail fires instead of Done when any of the request's segments failed
	// — a transient media error or a mid-run drive failure. Only possible
	// on a system armed with ArmFaults; with Fail nil a failed request
	// falls back to Done (the caller cannot distinguish, but the operation
	// stream continues).
	Fail func(now float64)
	// Internal marks background maintenance I/O (compaction merges, like
	// the rebuild engine's reconstruction reads): it competes through the
	// per-drive queues and busy time as usual but is excluded from the
	// system's throughput and latency accounting, and — being assumed
	// verified — never draws transient errors.
	Internal bool
}

// Bytes returns the request's total payload given the system's unit size.
func (r *Request) bytes(unitBytes int64) int64 {
	var n int64
	for _, run := range r.Runs {
		n += run.Len
	}
	return n * unitBytes
}

// System is an array of drives addressed as a linear space of disk units.
// It is single-goroutine like the simulator that owns it.
type System struct {
	cfg    Config
	eng    *sim.Engine
	drives []*drive

	dataBytes   int64 // user-visible capacity in bytes
	perDiskData int64 // ParityStriped: data bytes per drive

	totalBytes int64 // payload bytes completed
	requests   int64

	trace     SegmentTrace
	spanTrace SpanTrace

	// Metrics handles (nil when metrics are disabled; see SetMetrics).
	mRequests      *metrics.Counter
	mBytes         *metrics.Counter
	mSegments      *metrics.Counter
	mLatency       *metrics.Hist
	mQueueWait     *metrics.Hist
	mTransient     *metrics.Counter
	mDriveFailures *metrics.Counter
	mRebuildBytes  *metrics.Counter

	failed int // index of the failed drive, or -1

	// flt is the armed fault machinery (fault.go), nil on a healthy
	// system; usablePerDrive is the addressable byte span of each drive,
	// the space a rebuild reconstructs.
	flt            *faultState
	usablePerDrive int64

	// Request decomposition and completion recycle through these buffers:
	// segScratch and lastSeg are the per-Submit working set (the disk
	// system is single-goroutine like the simulator that owns it), and
	// segFree/pendFree are free lists refilled by the completion path, so
	// steady-state request traffic allocates nothing.
	segScratch []placed
	lastSeg    []int32 // per-drive index of its latest segment in segScratch, -1 none
	segFree    []*segment
	pendFree   []*pending
}

// pending tracks one in-flight request's completion: segments left to
// finish, the payload to credit, the submission time (for request latency),
// and the caller's Done. failed marks a request poisoned by a transient
// error or drive failure (it completes on the fail path and credits
// nothing); internal marks rebuild I/O, which skips request accounting
// entirely.
type pending struct {
	remaining int
	payload   int64
	submitMS  float64
	done      func(now float64)
	fail      func(now float64)
	failed    bool
	internal  bool
}

// SegmentTrace observes every segment as a drive begins servicing it.
type SegmentTrace func(nowMS float64, disk int, startByte, nBytes int64, write bool, serviceMS float64)

// SetTrace installs a segment observer (nil disables tracing).
func (s *System) SetTrace(fn SegmentTrace) { s.trace = fn }

// Span is one segment's full lifecycle: when it joined the drive's queue,
// when service began, and the service time broken into the paper's §2.1
// cost components. WaitMS + SeekMS + RotMS + XferMS is the segment's total
// time in the disk system, and SeekMS + RotMS + XferMS == ServiceMS.
type Span struct {
	Disk      int
	Start     int64 // byte offset within the drive
	N         int64 // byte length
	Write     bool
	EnqueueMS float64 // absolute simulated time the segment was enqueued
	StartMS   float64 // absolute simulated time service began
	WaitMS    float64 // queueing delay: StartMS - EnqueueMS
	SeekMS    float64 // head movement
	RotMS     float64 // rotational waits, incl. read-modify-write rotations
	XferMS    float64 // media transfer
	ServiceMS float64 // SeekMS + RotMS + XferMS
}

// SpanTrace observes every segment's lifecycle span as service begins.
type SpanTrace func(sp Span)

// SetSpanTrace installs a span observer (nil disables span tracing). It is
// independent of SetTrace; installing both fires both per segment.
func (s *System) SetSpanTrace(fn SpanTrace) { s.spanTrace = fn }

// latencyBoundsMS buckets request and queue-wait latencies: sub-millisecond
// cache-adjacent hits up through multi-second saturation tails.
var latencyBoundsMS = []float64{
	0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000,
}

// SetMetrics attaches metrics handles to the system. A nil registry (the
// default) leaves all handles nil, and the instrumentation points reduce
// to nil checks.
func (s *System) SetMetrics(reg *metrics.Registry) {
	s.mRequests = reg.Counter("disk.requests")
	s.mBytes = reg.Counter("disk.bytes")
	s.mSegments = reg.Counter("disk.segments")
	s.mLatency = reg.Histogram("disk.request_latency_ms", latencyBoundsMS)
	s.mQueueWait = reg.Histogram("disk.queue_wait_ms", latencyBoundsMS)
	s.mTransient = reg.Counter("disk.transient_errors")
	s.mDriveFailures = reg.Counter("disk.drive_failures")
	s.mRebuildBytes = reg.Counter("disk.rebuild_bytes")
}

// New builds a disk system attached to the given engine.
func New(cfg Config, eng *sim.Engine) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if eng == nil {
		return nil, fmt.Errorf("disk: nil engine")
	}
	s := &System{cfg: cfg, eng: eng, failed: -1, lastSeg: make([]int32, cfg.NDisks)}
	for i := 0; i < cfg.NDisks; i++ {
		d := &drive{id: i, geom: cfg.geometryOf(i)}
		// One completion continuation per drive for its lifetime; the
		// segment being serviced rides in d.cur rather than a per-service
		// closure environment.
		d.onDone = func(now float64) { s.complete(d, now) }
		s.drives = append(s.drives, d)
	}
	// Only whole stripe units are addressable on each drive, and a
	// heterogeneous array is bounded by its smallest drive; a trailing
	// partial stripe unit is unusable (otherwise the last stripe row
	// would map past the end of the platter).
	usable := units.RoundDown(cfg.minCapacity(), cfg.StripeUnitBytes)
	if usable == 0 {
		return nil, fmt.Errorf("disk: stripe unit %d larger than a drive", cfg.StripeUnitBytes)
	}
	s.usablePerDrive = usable
	switch cfg.Layout {
	case Striped:
		s.dataBytes = usable * int64(cfg.NDisks)
	case Mirrored:
		s.dataBytes = usable * int64(cfg.NDisks) / 2
	case RAID5:
		s.dataBytes = usable * int64(cfg.NDisks-1)
	case ParityStriped:
		s.perDiskData = units.RoundDown(usable*int64(cfg.NDisks-1)/int64(cfg.NDisks), cfg.StripeUnitBytes)
		s.dataBytes = s.perDiskData * int64(cfg.NDisks)
	default:
		return nil, fmt.Errorf("disk: unknown layout %v", cfg.Layout)
	}
	s.dataBytes = units.RoundDown(s.dataBytes, cfg.UnitBytes)
	return s, nil
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// UnitBytes returns the disk unit size in bytes.
func (s *System) UnitBytes() int64 { return s.cfg.UnitBytes }

// Units returns the user-visible capacity in disk units.
func (s *System) Units() int64 { return s.dataBytes / s.cfg.UnitBytes }

// CapacityBytes returns the user-visible capacity in bytes.
func (s *System) CapacityBytes() int64 { return s.dataBytes }

// dataDisks returns how many drives' worth of *read* bandwidth the layout
// exposes — the denominator of every throughput percentage. Mirrored
// reads are served by both replicas, so the full array counts even though
// capacity is halved.
func (s *System) dataDisks() int {
	switch s.cfg.Layout {
	case RAID5, ParityStriped:
		return s.cfg.NDisks - 1
	default:
		return s.cfg.NDisks
	}
}

// MaxBandwidth returns the maximum sustained sequential bandwidth of the
// system in bytes per millisecond — the denominator for every throughput
// percentage the harness reports (§3: "expressed as a percent of the
// sustained sequential performance the disk system is capable of
// providing"). For heterogeneous arrays it sums the drives' individual
// sustained rates, scaled by the fraction of drives carrying data.
func (s *System) MaxBandwidth() float64 {
	var sum float64
	for i := 0; i < s.cfg.NDisks; i++ {
		sum += s.cfg.geometryOf(i).SustainedBandwidth()
	}
	return sum * float64(s.dataDisks()) / float64(s.cfg.NDisks)
}

// TotalBytes returns the payload bytes of all completed requests.
func (s *System) TotalBytes() int64 { return s.totalBytes }

// Requests returns the number of completed requests.
func (s *System) Requests() int64 { return s.requests }

// DriveStats summarizes one drive's activity. BusyMS always equals
// SeekMS + RotMS + TransferMS.
type DriveStats struct {
	BusyMS       float64
	SeekMS       float64
	RotMS        float64
	TransferMS   float64
	Seeks        int64
	BytesRead    int64
	BytesWritten int64
	QueueLen     int // queued segments, incl. the one in service
}

// Stats returns per-drive activity summaries.
func (s *System) Stats() []DriveStats {
	return s.StatsInto(make([]DriveStats, len(s.drives)))
}

// StatsInto fills out (growing it as needed) with per-drive activity
// summaries and returns it — the allocation-free form used by the metrics
// samplers, which run once per sampling interval.
func (s *System) StatsInto(out []DriveStats) []DriveStats {
	if cap(out) < len(s.drives) {
		out = make([]DriveStats, len(s.drives))
	}
	out = out[:len(s.drives)]
	for i, d := range s.drives {
		depth := len(d.queue)
		if d.busy {
			depth++
		}
		out[i] = DriveStats{
			BusyMS:       d.busyMS,
			SeekMS:       d.seekMS,
			RotMS:        d.rotMS,
			TransferMS:   d.xferMS,
			Seeks:        d.seeks,
			BytesRead:    d.bytesRead,
			BytesWritten: d.bytesWrit,
			QueueLen:     depth,
		}
	}
	return out
}

// FailDrive marks one drive failed and runs the array in degraded mode —
// RAID-5 only: reads that would hit the failed drive are reconstructed by
// reading the same span from every surviving drive, and writes to it
// update parity alone (the data is implicit in the surviving row). Pass
// -1 to restore the drive.
func (s *System) FailDrive(i int) error {
	if i >= 0 && s.cfg.Layout != RAID5 {
		return fmt.Errorf("disk: degraded mode requires RAID5, not %v", s.cfg.Layout)
	}
	if i >= s.cfg.NDisks {
		return fmt.Errorf("disk: no drive %d in a %d-drive array", i, s.cfg.NDisks)
	}
	s.failed = i
	return nil
}

// degrade rewrites a segment list for a failed drive: reads become
// reconstruction fan-outs, writes to the failed drive are dropped (their
// parity counterparts, already in the list, absorb them). Replaced
// segments return to the free list.
func (s *System) degrade(segs []placed) []placed {
	out := segs[:0]
	var fanout []placed
	for _, sg := range segs {
		if sg.disk != s.failed {
			out = append(out, sg)
			continue
		}
		src := sg.seg
		if !src.write {
			for d := 0; d < s.cfg.NDisks; d++ {
				if d == s.failed {
					continue
				}
				fanout = append(fanout, placed{d, s.newSegment(src.start, src.n, false, 0)})
			}
		}
		s.releaseSegment(src)
	}
	out = append(out, fanout...)
	s.segScratch = out
	return out
}

// Submit enqueues a request. Done fires at the simulated completion time;
// a request with no runs completes immediately (synchronously). Submit
// consumes the Request during the call — neither it nor its run slice is
// retained, so callers may reuse both as soon as Submit returns.
func (s *System) Submit(req *Request) {
	for _, r := range req.Runs {
		if r.Len <= 0 || r.Start < 0 || r.Start+r.Len > s.Units() {
			panic(fmt.Sprintf("disk: run [%d,+%d) outside capacity %d units",
				r.Start, r.Len, s.Units()))
		}
	}
	payload := req.bytes(s.cfg.UnitBytes)
	segs := s.segments(req)
	if s.failed >= 0 {
		segs = s.degrade(segs)
	}
	if len(segs) == 0 {
		if !req.Internal {
			s.totalBytes += payload
			s.requests++
			s.mRequests.Inc()
			s.mBytes.Add(payload)
			s.mLatency.Observe(0)
		}
		if req.Done != nil {
			req.Done(s.eng.Now())
		}
		return
	}
	p := s.newPending(len(segs), payload, req.Done)
	p.fail = req.Fail
	p.internal = req.Internal
	p.submitMS = s.eng.Now()
	for _, sg := range segs {
		sg.seg.req = p
		s.enqueue(sg.disk, sg.seg)
	}
}

// placed pairs a segment with its target drive while a request is being
// decomposed.
type placed struct {
	disk int
	seg  *segment
}

// newSegment takes a segment from the free list, or allocates one. The
// completion path refills the list, so steady-state traffic cycles a small
// stable set of segments.
func (s *System) newSegment(start, n int64, write bool, extraRot int) *segment {
	if k := len(s.segFree); k > 0 {
		seg := s.segFree[k-1]
		s.segFree = s.segFree[:k-1]
		*seg = segment{start: start, n: n, write: write, extraRotations: extraRot}
		return seg
	}
	return &segment{start: start, n: n, write: write, extraRotations: extraRot}
}

// releaseSegment returns a segment to the free list.
func (s *System) releaseSegment(seg *segment) {
	seg.req = nil
	s.segFree = append(s.segFree, seg)
}

// newPending takes a completion record from the free list, or allocates.
func (s *System) newPending(remaining int, payload int64, done func(now float64)) *pending {
	if k := len(s.pendFree); k > 0 {
		p := s.pendFree[k-1]
		s.pendFree = s.pendFree[:k-1]
		*p = pending{remaining: remaining, payload: payload, done: done}
		return p
	}
	return &pending{remaining: remaining, payload: payload, done: done}
}

// releasePending returns a completion record to the free list.
func (s *System) releasePending(p *pending) {
	p.done = nil
	p.fail = nil
	s.pendFree = append(s.pendFree, p)
}

// segments decomposes a request into per-drive segments according to the
// layout, merging adjacent pieces that land contiguously on one drive.
// The result aliases the per-Submit scratch buffer.
func (s *System) segments(req *Request) []placed {
	s.segScratch = s.segScratch[:0]
	// lastSeg tracks each drive's most recent segment so round-robin
	// pieces that land byte-contiguously on one drive (successive stripe
	// rows of the same column) merge into a single long transfer.
	for i := range s.lastSeg {
		s.lastSeg[i] = -1
	}
	for _, run := range req.Runs {
		b0 := run.Start * s.cfg.UnitBytes
		b1 := b0 + run.Len*s.cfg.UnitBytes
		switch s.cfg.Layout {
		case Striped:
			s.placeStriped(b0, b1, req.Write)
		case Mirrored:
			s.placeMirrored(b0, b1, req.Write)
		case RAID5:
			s.placeRAID5(b0, b1, req.Write)
		case ParityStriped:
			s.placeParityStriped(b0, b1, req.Write)
		}
	}
	return s.segScratch
}

// addSeg appends one placed piece to the in-progress decomposition,
// merging it into the drive's previous segment when byte-contiguous.
func (s *System) addSeg(disk int, start, n int64, write bool, extraRot int) {
	if n <= 0 {
		return
	}
	if i := s.lastSeg[disk]; i >= 0 {
		p := s.segScratch[i]
		if p.seg.write == write && p.seg.extraRotations == extraRot &&
			p.seg.start+p.seg.n == start {
			p.seg.n += n
			return
		}
	}
	s.segScratch = append(s.segScratch, placed{disk, s.newSegment(start, n, write, extraRot)})
	s.lastSeg[disk] = int32(len(s.segScratch) - 1)
}

// placeStriped maps logical bytes [b0,b1) round-robin across all drives.
// Pieces of one run that land on the same drive are byte-contiguous there
// (successive rows of the same column), so merging recovers one long
// segment per drive.
func (s *System) placeStriped(b0, b1 int64, write bool) {
	su := s.cfg.StripeUnitBytes
	n := int64(s.cfg.NDisks)
	for b := b0; b < b1; {
		idx := b / su
		off := b % su
		chunk := su - off
		if chunk > b1-b {
			chunk = b1 - b
		}
		disk := int(idx % n)
		local := (idx/n)*su + off
		s.addSeg(disk, local, chunk, write, 0)
		b += chunk
	}
}

// placeMirrored stripes across drive pairs. Reads go to the replica with
// the shorter queue (primary on ties); writes go to both replicas.
func (s *System) placeMirrored(b0, b1 int64, write bool) {
	su := s.cfg.StripeUnitBytes
	pairs := int64(s.cfg.NDisks / 2)
	for b := b0; b < b1; {
		idx := b / su
		off := b % su
		chunk := su - off
		if chunk > b1-b {
			chunk = b1 - b
		}
		pair := int(idx % pairs)
		local := (idx/pairs)*su + off
		primary, secondary := 2*pair, 2*pair+1
		if write {
			s.addSeg(primary, local, chunk, true, 0)
			s.addSeg(secondary, local, chunk, true, 0)
		} else {
			disk := primary
			if s.queueDepth(secondary) < s.queueDepth(primary) {
				disk = secondary
			}
			s.addSeg(disk, local, chunk, false, 0)
		}
		b += chunk
	}
}

// placeRAID5 maps logical stripe units across N-1 data columns per row with
// the parity column rotating by row. Small writes pay a read-modify-write
// rotation on both the data and parity drives; a fully covered row is a
// full-stripe write and pays only the parity write.
func (s *System) placeRAID5(b0, b1 int64, write bool) {
	su := s.cfg.StripeUnitBytes
	n := int64(s.cfg.NDisks)
	dataCols := n - 1
	rowBytes := su * dataCols
	for b := b0; b < b1; {
		row := b / rowBytes
		inRow := b % rowBytes
		chunk := rowBytes - inRow
		if chunk > b1-b {
			chunk = b1 - b
		}
		parityDisk := int(row % n)
		fullStripe := write && inRow == 0 && chunk == rowBytes
		extra := 0
		if write && !fullStripe {
			extra = 1
		}
		// Data pieces within this row.
		for p := inRow; p < inRow+chunk; {
			col := p / su
			off := p % su
			piece := su - off
			if piece > inRow+chunk-p {
				piece = inRow + chunk - p
			}
			disk := int(col)
			if disk >= parityDisk {
				disk++
			}
			s.addSeg(disk, row*su+off, piece, write, extra)
			p += piece
		}
		if write {
			// Parity covers the written byte span within the stripe unit.
			off := inRow % su
			span := chunk
			if span > su-off {
				// Multiple columns written: parity unit is touched across
				// the union of their offsets; the whole unit is updated.
				off, span = 0, su
			}
			s.addSeg(parityDisk, row*su+off, span, true, extra)
		}
		b += chunk
	}
}

// placeParityStriped concatenates the drives' data regions: files live on
// single drives [GRAY90]. Writes pay read-modify-write plus a parity
// update on a rotating partner drive's parity region.
func (s *System) placeParityStriped(b0, b1 int64, write bool) {
	su := s.cfg.StripeUnitBytes
	n := s.cfg.NDisks
	parityBytes := s.cfg.minCapacity() - s.perDiskData
	for b := b0; b < b1; {
		disk := int(b / s.perDiskData)
		local := b % s.perDiskData
		chunk := s.perDiskData - local
		if chunk > b1-b {
			chunk = b1 - b
		}
		// Keep parity bookkeeping per stripe unit.
		if rem := su - local%su; chunk > rem {
			chunk = rem
		}
		extra := 0
		if write {
			extra = 1
		}
		s.addSeg(disk, local, chunk, write, extra)
		if write && parityBytes > 0 {
			row := local / su
			pdisk := int((int64(disk) + 1 + row%int64(n-1)) % int64(n))
			poff := s.perDiskData + (row*su)%parityBytes
			span := chunk
			if cap := s.cfg.geometryOf(pdisk).Capacity(); poff+span > cap {
				span = cap - poff
			}
			s.addSeg(pdisk, poff, span, true, extra)
		}
		b += chunk
	}
}

func (s *System) queueDepth(disk int) int {
	d := s.drives[disk]
	depth := len(d.queue)
	if d.busy {
		depth++
	}
	return depth
}

// enqueue appends a segment to a drive's queue, starting it immediately
// if the drive is idle.
func (s *System) enqueue(disk int, seg *segment) {
	seg.enqueueMS = s.eng.Now()
	d := s.drives[disk]
	if d.busy {
		d.queue = append(d.queue, seg)
		return
	}
	s.start(d, seg)
}

// next pops the drive's next segment under the configured discipline.
func (s *System) next(d *drive) *segment {
	idx := 0
	switch {
	case s.cfg.Scheduler == SSTF && len(d.queue) > 1:
		best := -1
		for i, seg := range d.queue {
			cyl, _, _ := d.geom.locate(seg.start)
			dist := cyl - d.headCyl
			if dist < 0 {
				dist = -dist
			}
			if best < 0 || dist < best {
				best, idx = dist, i
			}
		}
	case s.cfg.Scheduler == SCAN && len(d.queue) > 1:
		idx = s.scanPick(d)
	}
	seg := d.queue[idx]
	d.queue = append(d.queue[:idx], d.queue[idx+1:]...)
	return seg
}

// scanPick implements the LOOK elevator: the nearest segment at or beyond
// the head in the sweep direction; if none, reverse and pick the nearest
// the other way.
func (s *System) scanPick(d *drive) int {
	pick := func(up bool) (int, bool) {
		best, idx := -1, -1
		for i, seg := range d.queue {
			cyl, _, _ := d.geom.locate(seg.start)
			dist := cyl - d.headCyl
			if !up {
				dist = -dist
			}
			if dist < 0 {
				continue
			}
			if best < 0 || dist < best {
				best, idx = dist, i
			}
		}
		return idx, idx >= 0
	}
	if idx, ok := pick(d.sweepUp); ok {
		return idx
	}
	d.sweepUp = !d.sweepUp
	if idx, ok := pick(d.sweepUp); ok {
		return idx
	}
	return 0
}

func (s *System) start(d *drive, seg *segment) {
	d.busy = true
	d.cur = seg
	now := s.eng.Now()
	svc := d.serviceMS(now, seg)
	s.mSegments.Inc()
	s.mQueueWait.Observe(now - seg.enqueueMS)
	if s.trace != nil {
		s.trace(now, d.id, seg.start, seg.n, seg.write, svc)
	}
	if s.spanTrace != nil {
		s.spanTrace(Span{
			Disk:      d.id,
			Start:     seg.start,
			N:         seg.n,
			Write:     seg.write,
			EnqueueMS: seg.enqueueMS,
			StartMS:   now,
			WaitMS:    now - seg.enqueueMS,
			SeekMS:    d.lastBD.seekMS,
			RotMS:     d.lastBD.rotMS,
			XferMS:    d.lastBD.xferMS,
			ServiceMS: svc,
		})
	}
	s.eng.After(svc, d.onDone)
}

// complete finishes the drive's in-flight segment: credit the request
// (firing its Done when this was the last segment), recycle the segment
// and completion record, then start the drive's next queued segment. The
// Done callback runs before the next segment is picked, exactly as the
// per-service closure used to do — it may submit new requests that join
// this drive's queue in time to be scheduled.
func (s *System) complete(d *drive, now float64) {
	seg := d.cur
	d.cur = nil
	p := seg.req
	if s.flt != nil {
		// The fault paths: a segment serviced by a drive that failed
		// mid-service poisons its request, and a foreground segment draws
		// a transient-error outcome from the dedicated fault RNG. Rebuild
		// I/O (internal) is assumed verified and never glitches.
		if seg.diskFailed {
			p.failed = true
		} else if !p.internal && s.flt.cfg.TransientProb > 0 &&
			s.flt.cfg.RNG.Float64() < s.flt.cfg.TransientProb {
			p.failed = true
			s.flt.transientErrors++
			s.mTransient.Inc()
		}
	}
	s.releaseSegment(seg)
	s.segmentDone(p, now)
	if len(d.queue) > 0 {
		s.start(d, s.next(d))
	} else {
		d.busy = false
	}
}

// segmentDone retires one of a pending request's segments, completing the
// request when it was the last: internal (rebuild) requests just fire
// their continuation, failed requests fire the fail path and credit
// nothing, healthy requests credit throughput and latency as always.
func (s *System) segmentDone(p *pending, now float64) {
	p.remaining--
	if p.remaining != 0 {
		return
	}
	if p.internal {
		done := p.done
		s.releasePending(p)
		if done != nil {
			done(now)
		}
		return
	}
	if p.failed {
		fail, done := p.fail, p.done
		s.releasePending(p)
		switch {
		case fail != nil:
			fail(now)
		case done != nil:
			done(now)
		}
		return
	}
	s.totalBytes += p.payload
	s.requests++
	s.mRequests.Inc()
	s.mBytes.Add(p.payload)
	s.mLatency.Observe(now - p.submitMS)
	done := p.done
	s.releasePending(p)
	if done != nil {
		done(now)
	}
}
