package disk

import (
	"math"
	"testing"

	"rofs/internal/units"
)

// smallWren returns a Wren IV with fewer cylinders — the "smaller, older
// drive" of a heterogeneous array.
func smallWren(cyls int) Geometry {
	g := WrenIV()
	g.Cylinders = cyls
	return g
}

func TestHeterogeneousValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NDisks = 2
	cfg.Geometries = []Geometry{WrenIV()} // wrong length
	if cfg.Validate() == nil {
		t.Error("geometry count mismatch accepted")
	}
	cfg.Geometries = []Geometry{WrenIV(), {}}
	if cfg.Validate() == nil {
		t.Error("invalid per-drive geometry accepted")
	}
	cfg.Geometries = []Geometry{WrenIV(), smallWren(800)}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid heterogeneous config rejected: %v", err)
	}
}

func TestHeterogeneousCapacityBoundedBySmallest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NDisks = 2
	cfg.Geometries = []Geometry{WrenIV(), smallWren(800)}
	s, _ := newSys(t, cfg)
	want := 2 * smallWren(800).Capacity()
	if s.CapacityBytes() != want {
		t.Fatalf("capacity = %d, want 2 × smaller drive = %d", s.CapacityBytes(), want)
	}
}

func TestHeterogeneousSeeksUsePerDriveGeometry(t *testing.T) {
	// Two drives with very different seek costs: a request landing on the
	// slow drive must take longer than the same-shaped request on the
	// fast one.
	fast := WrenIV()
	slow := WrenIV()
	slow.SingleTrackSeekMS = 50
	cfg := DefaultConfig()
	cfg.NDisks = 2
	cfg.Geometries = []Geometry{fast, slow}
	s, eng := newSys(t, cfg)

	cylUnits := WrenIV().CylinderBytes() / cfg.UnitBytes
	// Unit addresses mapping to cylinder 100 of drive 0 and drive 1: the
	// striped space interleaves 24K stripe units, so drive d holds stripe
	// unit indices ≡ d (mod 2).
	suUnits := cfg.StripeUnitBytes / cfg.UnitBytes
	addrOn := func(d int64, localCyl int64) int64 {
		localSU := localCyl * cylUnits / suUnits // stripe units into the drive
		return (localSU*2 + d) * suUnits         // back to linear space
	}
	read := func(addr int64) float64 {
		var done float64
		s.Submit(&Request{Runs: []Run{{addr, 1}}, Done: func(now float64) { done = now }})
		start := eng.Now()
		eng.Run(math.Inf(1))
		return done - start
	}
	tFast := read(addrOn(0, 100))
	tSlow := read(addrOn(1, 100))
	if tSlow <= tFast+40 {
		t.Fatalf("slow drive seek not reflected: fast=%.2f slow=%.2f", tFast, tSlow)
	}
}

func TestHeterogeneousBandwidthSums(t *testing.T) {
	fast := WrenIV()
	slow := WrenIV()
	slow.RotationMS = 33.34 // half the transfer rate
	cfg := DefaultConfig()
	cfg.NDisks = 2
	cfg.Geometries = []Geometry{fast, slow}
	s, _ := newSys(t, cfg)
	want := fast.SustainedBandwidth() + slow.SustainedBandwidth()
	if got := s.MaxBandwidth(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MaxBandwidth = %g, want %g", got, want)
	}
}

func TestHeterogeneousMappingStaysInBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NDisks = 3
	cfg.Geometries = []Geometry{WrenIV(), smallWren(400), WrenIV()}
	s, eng := newSys(t, cfg)
	// Read the very last addressable units — must not panic and must
	// complete.
	n := 48 * units.KB / cfg.UnitBytes
	var done bool
	s.Submit(&Request{
		Runs: []Run{{s.Units() - n, n}},
		Done: func(float64) { done = true },
	})
	eng.Run(math.Inf(1))
	if !done {
		t.Fatal("tail read never completed")
	}
}
