package disk

import (
	"testing"

	"rofs/internal/sim"
	"rofs/internal/units"
)

// raid5TestConfig is a small RAID5 array for fault tests.
func raid5TestConfig(ndisks int) Config {
	g := WrenIV()
	g.Cylinders = 50
	return Config{
		Geometry:        g,
		NDisks:          ndisks,
		Layout:          RAID5,
		UnitBytes:       1 * units.KB,
		StripeUnitBytes: 24 * units.KB,
	}
}

// TestRebuildCompletesWithoutTraffic drives a failure + hot-spare rebuild
// on an idle array: the rebuild must reconstruct every usable byte of the
// failed drive and heal the array.
func TestRebuildCompletesWithoutTraffic(t *testing.T) {
	eng := &sim.Engine{}
	s, err := New(raid5TestConfig(4), eng)
	if err != nil {
		t.Fatal(err)
	}
	var events []FaultEvent
	if err := s.ArmFaults(FaultConfig{
		Rebuild:    true,
		ChunkBytes: 256 * units.KB,
		OnEvent:    func(ev FaultEvent) { events = append(events, ev) },
	}); err != nil {
		t.Fatal(err)
	}
	eng.At(1000, func(now float64) {
		if err := s.FailDriveNow(1, now); err != nil {
			t.Errorf("FailDriveNow: %v", err)
		}
	})
	eng.Run(10 * 60 * 60 * 1000) // 10 simulated hours: plenty
	if s.Degraded() {
		st := s.FaultStats(eng.Now())
		t.Fatalf("array still degraded after idle rebuild: rebuilt %d bytes of %d, events %v",
			st.RebuildBytes, s.usablePerDrive, events)
	}
	st := s.FaultStats(eng.Now())
	if st.RebuildBytes != s.usablePerDrive {
		t.Errorf("rebuilt %d bytes, want the full per-drive span %d", st.RebuildBytes, s.usablePerDrive)
	}
	if len(events) != 3 {
		t.Fatalf("want drive-failed, rebuild-started, rebuild-done, got %v", events)
	}
	for i, want := range []FaultEventKind{EventDriveFailed, EventRebuildStarted, EventRebuildDone} {
		if events[i].Kind != want {
			t.Errorf("event %d = %v, want %v", i, events[i].Kind, want)
		}
	}
	if st.DegradedMS <= 0 {
		t.Errorf("degraded time %g, want > 0", st.DegradedMS)
	}
}

// TestRebuildThrottle checks that a pause between chunks slows the rebuild
// down.
func TestRebuildThrottle(t *testing.T) {
	run := func(pauseMS float64) float64 {
		eng := &sim.Engine{}
		s, err := New(raid5TestConfig(4), eng)
		if err != nil {
			t.Fatal(err)
		}
		var doneMS float64
		if err := s.ArmFaults(FaultConfig{
			Rebuild:    true,
			ChunkBytes: 512 * units.KB,
			PauseMS:    pauseMS,
			OnEvent: func(ev FaultEvent) {
				if ev.Kind == EventRebuildDone {
					doneMS = ev.TimeMS
				}
			},
		}); err != nil {
			t.Fatal(err)
		}
		eng.At(0, func(now float64) { s.FailDriveNow(0, now) })
		eng.Run(100 * 60 * 60 * 1000)
		if doneMS == 0 {
			t.Fatal("rebuild never completed")
		}
		return doneMS
	}
	fast, slow := run(0), run(50)
	if slow <= fast {
		t.Errorf("throttled rebuild finished at %g ms, unthrottled at %g ms; want slower", slow, fast)
	}
}

// TestMidRunFailureFailsQueuedRequests fails a drive while requests are
// queued on it: every affected request must complete via its Fail path,
// and no throughput is credited for failed requests.
func TestMidRunFailureFailsQueuedRequests(t *testing.T) {
	eng := &sim.Engine{}
	s, err := New(raid5TestConfig(4), eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ArmFaults(FaultConfig{}); err != nil {
		t.Fatal(err)
	}
	var done, failed int
	// Saturate the array with small scattered reads so some land queued
	// on drive 0, then fail it almost immediately.
	for i := 0; i < 64; i++ {
		req := &Request{
			Runs:  []Run{{Start: int64(i) * 64, Len: 8}},
			Done:  func(float64) { done++ },
			Fail:  func(float64) { failed++ },
			Write: false,
		}
		s.Submit(req)
	}
	eng.At(0.1, func(now float64) { s.FailDriveNow(0, now) })
	eng.Run(60 * 1000)
	if done+failed != 64 {
		t.Fatalf("done %d + failed %d != 64 submitted", done, failed)
	}
	if failed == 0 {
		t.Error("no request failed despite a mid-run drive failure")
	}
	if s.Requests() != int64(done) {
		t.Errorf("Requests() = %d, want %d (failed requests must not be credited)", s.Requests(), done)
	}
}

// TestTransientErrorsAreDeterministic runs the same seeded transient-error
// traffic twice and expects identical outcomes.
func TestTransientErrorsAreDeterministic(t *testing.T) {
	run := func() (int, int, int64) {
		eng := &sim.Engine{}
		s, err := New(raid5TestConfig(4), eng)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.ArmFaults(FaultConfig{RNG: sim.NewRNG(7), TransientProb: 0.2}); err != nil {
			t.Fatal(err)
		}
		var done, failed int
		for i := 0; i < 128; i++ {
			s.Submit(&Request{
				Runs: []Run{{Start: int64(i) * 32, Len: 16}},
				Done: func(float64) { done++ },
				Fail: func(float64) { failed++ },
			})
		}
		eng.Run(60 * 1000)
		return done, failed, s.FaultStats(eng.Now()).TransientErrors
	}
	d1, f1, t1 := run()
	d2, f2, t2 := run()
	if d1 != d2 || f1 != f2 || t1 != t2 {
		t.Errorf("seeded runs diverged: (%d,%d,%d) vs (%d,%d,%d)", d1, f1, t1, d2, f2, t2)
	}
	if f1 == 0 || t1 == 0 {
		t.Errorf("no transient errors at probability 0.2: failed=%d errors=%d", f1, t1)
	}
}

// TestFailDriveNowRequiresRAID5 checks layout validation.
func TestFailDriveNowRequiresRAID5(t *testing.T) {
	eng := &sim.Engine{}
	cfg := raid5TestConfig(4)
	cfg.Layout = Striped
	s, err := New(cfg, eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ArmFaults(FaultConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDriveNow(0, 0); err == nil {
		t.Error("FailDriveNow on a striped array should fail")
	}
}
