package disk

import (
	"fmt"

	"rofs/internal/sim"
)

// This file is the mechanism half of the fault model: transient-error
// completion paths, mid-run drive failure, and the hot-spare rebuild
// engine. The policy half — when drives fail, how failures are logged and
// reported — lives in internal/fault, which arms this file through
// ArmFaults and drives it through FailDriveNow. With no FaultConfig armed
// every hook below reduces to a nil check on System.flt, so the healthy
// hot path is unchanged.

// FaultEventKind labels a FaultEvent.
type FaultEventKind uint8

const (
	// EventDriveFailed fires when a drive fails mid-run (FailDriveNow).
	EventDriveFailed FaultEventKind = iota
	// EventRebuildStarted fires when the hot spare swaps in and background
	// reconstruction begins.
	EventRebuildStarted
	// EventRebuildDone fires when the last chunk lands on the spare and
	// the array leaves degraded mode.
	EventRebuildDone
)

// String implements fmt.Stringer.
func (k FaultEventKind) String() string {
	switch k {
	case EventDriveFailed:
		return "drive-failed"
	case EventRebuildStarted:
		return "rebuild-started"
	case EventRebuildDone:
		return "rebuild-done"
	default:
		return fmt.Sprintf("FaultEventKind(%d)", int(k))
	}
}

// FaultEvent is one state transition of the fault machinery, delivered to
// FaultConfig.OnEvent as it happens in simulated time.
type FaultEvent struct {
	Kind   FaultEventKind
	TimeMS float64
	Drive  int
}

// FaultConfig arms the disk system's fault mechanisms.
type FaultConfig struct {
	// RNG draws transient-error outcomes; required when TransientProb > 0.
	// It must be dedicated to the fault model — sharing the workload's RNG
	// would perturb the workload's draw sequence.
	RNG *sim.RNG
	// TransientProb is the per-segment probability that a serviced
	// foreground segment completes with a transient error, failing its
	// request.
	TransientProb float64
	// Rebuild enables the hot spare: SpareDelayMS after FailDriveNow,
	// background reconstruction reads every chunk of the failed drive's
	// span from the survivors and writes it to the spare, chunk by chunk,
	// through the normal per-drive queues.
	Rebuild      bool
	SpareDelayMS float64
	// ChunkBytes is the reconstruction granularity (default: one stripe
	// unit).
	ChunkBytes int64
	// PauseMS throttles the rebuild rate: the gap between one chunk
	// completing and the next being issued.
	PauseMS float64
	// OnEvent observes fault state transitions (nil: no observer).
	OnEvent func(ev FaultEvent)
}

// faultState is the armed fault machinery's runtime state.
type faultState struct {
	cfg FaultConfig

	transientErrors int64
	driveFailures   int64
	rebuildSegments int64
	rebuildBytes    int64

	rebuilding bool
	rebuildPos int64 // next byte offset within the per-drive span

	degradedSince float64 // valid while the array is degraded
	degradedMS    float64 // closed degraded intervals
}

// FaultStats snapshots the fault machinery's counters.
type FaultStats struct {
	DriveFailures   int64
	TransientErrors int64
	RebuildSegments int64
	RebuildBytes    int64
	Rebuilding      bool
	Degraded        bool
	// DegradedMS is the total simulated time spent degraded, including
	// the still-open interval up to now.
	DegradedMS float64
}

// ArmFaults installs the fault mechanisms. It must be called before the
// simulation starts; a system never armed carries zero overhead.
func (s *System) ArmFaults(cfg FaultConfig) error {
	if cfg.TransientProb < 0 || cfg.TransientProb > 1 {
		return fmt.Errorf("disk: transient probability %g outside [0, 1]", cfg.TransientProb)
	}
	if cfg.TransientProb > 0 && cfg.RNG == nil {
		return fmt.Errorf("disk: transient errors need a dedicated RNG")
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = s.cfg.StripeUnitBytes
	}
	s.flt = &faultState{cfg: cfg}
	return nil
}

// FaultsArmed reports whether ArmFaults has been called.
func (s *System) FaultsArmed() bool { return s.flt != nil }

// Degraded reports whether a drive is currently failed.
func (s *System) Degraded() bool { return s.failed >= 0 }

// Rebuilding reports whether background reconstruction is in progress.
func (s *System) Rebuilding() bool { return s.flt != nil && s.flt.rebuilding }

// FaultStats snapshots the fault counters as of simulated time now.
func (s *System) FaultStats(now float64) FaultStats {
	if s.flt == nil {
		return FaultStats{}
	}
	st := FaultStats{
		DriveFailures:   s.flt.driveFailures,
		TransientErrors: s.flt.transientErrors,
		RebuildSegments: s.flt.rebuildSegments,
		RebuildBytes:    s.flt.rebuildBytes,
		Rebuilding:      s.flt.rebuilding,
		Degraded:        s.failed >= 0,
		DegradedMS:      s.flt.degradedMS,
	}
	if s.failed >= 0 {
		st.DegradedMS += now - s.flt.degradedSince
	}
	return st
}

// After schedules fn after delayMS of simulated time — engine access for
// layers above that hold no engine reference (the fs retry backoff).
func (s *System) After(delayMS float64, fn sim.Handler) { s.eng.After(delayMS, fn) }

// event delivers a fault state transition to the armed observer.
func (s *System) event(kind FaultEventKind, now float64, drv int) {
	if s.flt.cfg.OnEvent != nil {
		s.flt.cfg.OnEvent(FaultEvent{Kind: kind, TimeMS: now, Drive: drv})
	}
}

// FailDriveNow fails drive i at simulated time now, mid-run: queued
// segments on the drive fail immediately (their requests complete on the
// failure path), the in-flight segment fails on completion, subsequent
// submissions run degraded, and — when the armed FaultConfig enables
// rebuild — the hot spare swaps in after the configured delay. RAID5 only;
// a second failure while already degraded is ignored (the model has one
// spare slot). The system must have been armed with ArmFaults.
func (s *System) FailDriveNow(i int, now float64) error {
	if s.flt == nil {
		return fmt.Errorf("disk: FailDriveNow without ArmFaults")
	}
	if s.cfg.Layout != RAID5 {
		return fmt.Errorf("disk: drive failure requires RAID5, not %v", s.cfg.Layout)
	}
	if i < 0 || i >= s.cfg.NDisks {
		return fmt.Errorf("disk: no drive %d in a %d-drive array", i, s.cfg.NDisks)
	}
	if s.failed >= 0 {
		return nil
	}
	s.failed = i
	s.flt.driveFailures++
	s.mDriveFailures.Inc()
	s.flt.degradedSince = now
	s.event(EventDriveFailed, now, i)

	// Fail everything queued on the dead drive now; the in-flight segment
	// (if any) fails when its service completes.
	d := s.drives[i]
	q := d.queue
	d.queue = d.queue[:0]
	for _, seg := range q {
		p := seg.req
		p.failed = true
		s.releaseSegment(seg)
		s.segmentDone(p, now)
	}
	if d.busy {
		d.cur.diskFailed = true
	}

	if s.flt.cfg.Rebuild {
		s.eng.After(s.flt.cfg.SpareDelayMS, func(now float64) { s.startRebuild(now) })
	}
	return nil
}

// startRebuild begins background reconstruction onto the hot spare, which
// takes over the failed drive's slot (its queue was flushed at failure
// time).
func (s *System) startRebuild(now float64) {
	if s.failed < 0 || s.flt.rebuilding {
		return
	}
	s.flt.rebuilding = true
	s.flt.rebuildPos = 0
	s.event(EventRebuildStarted, now, s.failed)
	s.issueRebuildChunk(now)
}

// issueRebuildChunk reconstructs the next chunk: read its span from every
// surviving drive (one internal request through the normal queues), then
// write it to the spare, then advance — pausing PauseMS between chunks
// when the rebuild rate is throttled.
func (s *System) issueRebuildChunk(now float64) {
	if s.failed < 0 {
		return
	}
	pos := s.flt.rebuildPos
	if pos >= s.usablePerDrive {
		s.finishRebuild(now)
		return
	}
	chunk := s.flt.cfg.ChunkBytes
	if chunk > s.usablePerDrive-pos {
		chunk = s.usablePerDrive - pos
	}
	p := s.newPending(s.cfg.NDisks-1, 0, func(now float64) { s.rebuildReadsDone(pos, chunk, now) })
	p.internal = true
	p.submitMS = now
	for d := 0; d < s.cfg.NDisks; d++ {
		if d == s.failed {
			continue
		}
		seg := s.newSegment(pos, chunk, false, 0)
		seg.req = p
		s.flt.rebuildSegments++
		s.enqueue(d, seg)
	}
}

// rebuildReadsDone writes the reconstructed chunk to the spare.
func (s *System) rebuildReadsDone(pos, chunk int64, now float64) {
	if s.failed < 0 {
		return
	}
	p := s.newPending(1, 0, func(now float64) { s.rebuildWriteDone(chunk, now) })
	p.internal = true
	p.submitMS = now
	seg := s.newSegment(pos, chunk, true, 0)
	seg.req = p
	s.flt.rebuildSegments++
	s.enqueue(s.failed, seg)
}

// rebuildWriteDone advances past the landed chunk.
func (s *System) rebuildWriteDone(chunk int64, now float64) {
	s.flt.rebuildBytes += chunk
	s.mRebuildBytes.Add(chunk)
	s.flt.rebuildPos += chunk
	if s.flt.rebuildPos >= s.usablePerDrive {
		s.finishRebuild(now)
		return
	}
	if s.flt.cfg.PauseMS > 0 {
		s.eng.After(s.flt.cfg.PauseMS, func(now float64) { s.issueRebuildChunk(now) })
	} else {
		s.issueRebuildChunk(now)
	}
}

// finishRebuild heals the array: the spare holds a full reconstruction
// and the drive slot returns to service.
func (s *System) finishRebuild(now float64) {
	drv := s.failed
	s.failed = -1
	s.flt.rebuilding = false
	s.flt.degradedMS += now - s.flt.degradedSince
	s.event(EventRebuildDone, now, drv)
}
