package disk

import (
	"math"
	"testing"

	"rofs/internal/units"
)

func TestWrenIVMatchesTable1(t *testing.T) {
	g := WrenIV()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.BytesPerTrack != 24*units.KB {
		t.Errorf("BytesPerTrack = %d", g.BytesPerTrack)
	}
	if g.TracksPerCylinder != 9 || g.Cylinders != 1600 {
		t.Errorf("geometry = %d platters, %d cylinders", g.TracksPerCylinder, g.Cylinders)
	}
	if g.RotationMS != 16.67 || g.SingleTrackSeekMS != 5.5 || g.SeekIncrementMS != 0.0320 {
		t.Errorf("timing = %v", g)
	}
	// One drive: 24K * 9 * 1600 = 337.5M; eight drives ≈ the paper's 2.8 G.
	if got := g.Capacity(); got != 337*units.MB+512*units.KB {
		t.Errorf("Capacity = %s", units.Format(got))
	}
	total := 8 * g.Capacity()
	if total < 2700*units.MB || total > 2800*units.MB {
		t.Errorf("8-drive capacity = %s, want ≈2.8G", units.Format(total))
	}
}

func TestSeekMS(t *testing.T) {
	g := WrenIV()
	if got := g.SeekMS(0); got != 0 {
		t.Errorf("SeekMS(0) = %g", got)
	}
	if got := g.SeekMS(1); math.Abs(got-5.532) > 1e-9 {
		t.Errorf("SeekMS(1) = %g, want ST+SI = 5.532", got)
	}
	if got := g.SeekMS(100); math.Abs(got-(5.5+100*0.032)) > 1e-9 {
		t.Errorf("SeekMS(100) = %g", got)
	}
	if g.SeekMS(-10) != g.SeekMS(10) {
		t.Error("SeekMS not symmetric in distance")
	}
}

func TestBandwidths(t *testing.T) {
	g := WrenIV()
	peak := g.PeakBandwidth()
	sustained := g.SustainedBandwidth()
	// Peak: one 24K track per 16.67 ms rotation ≈ 1474 bytes/ms.
	if math.Abs(peak-float64(24*units.KB)/16.67) > 1e-9 {
		t.Errorf("PeakBandwidth = %g", peak)
	}
	// Sustained pays one extra rotation per cylinder: 9/10 of peak.
	if math.Abs(sustained-peak*9.0/10.0) > 1e-9 {
		t.Errorf("SustainedBandwidth = %g, want %g", sustained, peak*0.9)
	}
	// Eight drives land near the paper's 10.8 M/s figure.
	sys := 8 * sustained * 1000 // bytes/sec
	if sys < 10.0e6 || sys > 11.5e6 {
		t.Errorf("system sustained = %.2f M/s, want ≈10.8", sys/1e6)
	}
}

func TestLocate(t *testing.T) {
	g := WrenIV()
	cases := []struct {
		off     int64
		cyl, tr int
		inTrack int64
	}{
		{0, 0, 0, 0},
		{100, 0, 0, 100},
		{24 * units.KB, 0, 1, 0},
		{9 * 24 * units.KB, 1, 0, 0},
		{9*24*units.KB + 24*units.KB + 5, 1, 1, 5},
	}
	for _, c := range cases {
		cyl, tr, in := g.locate(c.off)
		if cyl != c.cyl || tr != c.tr || in != c.inTrack {
			t.Errorf("locate(%d) = (%d,%d,%d), want (%d,%d,%d)",
				c.off, cyl, tr, in, c.cyl, c.tr, c.inTrack)
		}
	}
}

func TestGeometryValidate(t *testing.T) {
	bad := []Geometry{
		{},
		{BytesPerTrack: 1024, TracksPerCylinder: 0, Cylinders: 10, RotationMS: 10},
		{BytesPerTrack: 1024, TracksPerCylinder: 2, Cylinders: 0, RotationMS: 10},
		{BytesPerTrack: 1024, TracksPerCylinder: 2, Cylinders: 10, RotationMS: 0},
		{BytesPerTrack: 1024, TracksPerCylinder: 2, Cylinders: 10, RotationMS: 10, SingleTrackSeekMS: -1},
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Errorf("case %d: bad geometry validated", i)
		}
	}
}
