package disk

import (
	"math"
	"testing"

	"rofs/internal/units"
)

func TestSSTFServesNearestFirst(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NDisks = 1
	cfg.Scheduler = SSTF
	s, eng := newSys(t, cfg)
	g := cfg.Geometry
	cylUnits := g.CylinderBytes() / cfg.UnitBytes

	var order []int
	mk := func(id int, cyl int64) *Request {
		return &Request{
			Runs: []Run{{cyl * cylUnits, 1}},
			Done: func(float64) { order = append(order, id) },
		}
	}
	// While the drive is busy with the first request (cyl 0), queue a far
	// request, then a near one: SSTF serves the near one first.
	s.Submit(mk(1, 0))
	s.Submit(mk(2, 1200))
	s.Submit(mk(3, 10))
	eng.Run(math.Inf(1))
	if len(order) != 3 || order[0] != 1 || order[1] != 3 || order[2] != 2 {
		t.Fatalf("SSTF order %v, want [1 3 2]", order)
	}
}

func TestFCFSPreservesArrivalOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NDisks = 1
	cfg.Scheduler = FCFS
	s, eng := newSys(t, cfg)
	g := cfg.Geometry
	cylUnits := g.CylinderBytes() / cfg.UnitBytes

	var order []int
	mk := func(id int, cyl int64) *Request {
		return &Request{
			Runs: []Run{{cyl * cylUnits, 1}},
			Done: func(float64) { order = append(order, id) },
		}
	}
	s.Submit(mk(1, 0))
	s.Submit(mk(2, 1200))
	s.Submit(mk(3, 10))
	eng.Run(math.Inf(1))
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("FCFS order %v, want [1 2 3]", order)
	}
}

func TestSSTFTiesBreakFIFO(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NDisks = 1
	s, eng := newSys(t, cfg) // default scheduler is SSTF
	var order []int
	mk := func(id int) *Request {
		return &Request{
			Runs: []Run{{0, 1}},
			Done: func(float64) { order = append(order, id) },
		}
	}
	s.Submit(mk(1))
	s.Submit(mk(2))
	s.Submit(mk(3))
	eng.Run(math.Inf(1))
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("tie order %v", order)
	}
}

func TestSCANSweepsInOneDirection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NDisks = 1
	cfg.Scheduler = SCAN
	s, eng := newSys(t, cfg)
	cylUnits := cfg.Geometry.CylinderBytes() / cfg.UnitBytes
	var order []int
	mk := func(id int, cyl int64) *Request {
		return &Request{
			Runs: []Run{{cyl * cylUnits, 1}},
			Done: func(float64) { order = append(order, id) },
		}
	}
	// Busy at cyl 0; queue 800, 400, 1200, 100: the upward sweep serves
	// 100, 400, 800, 1200 in cylinder order.
	s.Submit(mk(0, 0))
	s.Submit(mk(1, 800))
	s.Submit(mk(2, 400))
	s.Submit(mk(3, 1200))
	s.Submit(mk(4, 100))
	eng.Run(math.Inf(1))
	want := []int{0, 4, 2, 1, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("SCAN order %v, want %v", order, want)
		}
	}
}

func TestSCANReversesWhenExhausted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NDisks = 1
	cfg.Scheduler = SCAN
	s, eng := newSys(t, cfg)
	cylUnits := cfg.Geometry.CylinderBytes() / cfg.UnitBytes
	var order []int
	mk := func(id int, cyl int64) *Request {
		return &Request{
			Runs: []Run{{cyl * cylUnits, 1}},
			Done: func(float64) { order = append(order, id) },
		}
	}
	// Start at cyl 500 (first request seeks there), then only lower
	// cylinders remain: the elevator must reverse and serve 300, 100.
	s.Submit(mk(0, 500))
	s.Submit(mk(1, 300))
	s.Submit(mk(2, 100))
	eng.Run(math.Inf(1))
	want := []int{0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("SCAN reverse order %v, want %v", order, want)
		}
	}
}

func TestSSTFReducesTotalServiceTime(t *testing.T) {
	// A batch of scattered requests completes sooner under SSTF than FCFS.
	run := func(sched Scheduler) float64 {
		cfg := DefaultConfig()
		cfg.NDisks = 1
		cfg.Scheduler = sched
		s, eng := newSys(t, cfg)
		cylUnits := cfg.Geometry.CylinderBytes() / cfg.UnitBytes
		var last float64
		for _, cyl := range []int64{0, 1500, 100, 1400, 200, 1300, 300} {
			s.Submit(&Request{
				Runs: []Run{{cyl * cylUnits, 8 * units.KB / cfg.UnitBytes}},
				Done: func(now float64) { last = now },
			})
		}
		eng.Run(math.Inf(1))
		return last
	}
	fcfs, sstf := run(FCFS), run(SSTF)
	if sstf >= fcfs {
		t.Fatalf("SSTF batch (%.1f ms) not faster than FCFS (%.1f ms)", sstf, fcfs)
	}
}
