package disk

import (
	"fmt"
	"math"

	"rofs/internal/sim"
)

// drive is one spindle: geometry, current head position, and a FCFS queue
// of segments. The rotational phase is a pure function of absolute
// simulated time (all spindles are synchronized and never slip), so the
// drive itself only needs to remember where its head is.
type drive struct {
	id      int
	geom    Geometry
	headCyl int
	sweepUp bool // SCAN: current elevator direction

	busy  bool
	cur   *segment // in-flight segment, nil when idle
	queue []*segment

	// onDone is the drive's single cached completion handler (built once in
	// New): firing a service completion schedules no per-service closure.
	onDone sim.Handler

	// Statistics. busyMS is always the sum of the three phase components
	// (seek + rotational wait + transfer, with read-modify-write rotations
	// counted as rotational wait).
	busyMS    float64
	seekMS    float64
	rotMS     float64
	xferMS    float64
	seeks     int64
	bytesRead int64
	bytesWrit int64

	// lastBD is the phase breakdown of the most recent serviceMS call,
	// read by the span trace before the next segment starts.
	lastBD breakdown
}

// breakdown decomposes one segment's service time into the paper's §2.1
// cost components.
type breakdown struct {
	seekMS float64 // head movement (initial seek + cylinder crossings)
	rotMS  float64 // rotational waits, incl. read-modify-write rotations
	xferMS float64 // media transfer
}

// segment is one contiguous byte range on one drive, the unit of queueing.
type segment struct {
	start int64 // byte offset within the drive
	n     int64 // byte length
	write bool
	// extraRotations models read-modify-write penalties (RAID-5 and parity
	// striping small writes): the block must come around again before the
	// write-back pass.
	extraRotations int
	enqueueMS      float64  // when the segment joined its drive's queue
	req            *pending // the request this segment is part of
	// diskFailed marks the in-flight segment of a drive that failed
	// mid-service (FailDriveNow): its request completes on the failure
	// path. A per-segment flag rather than a live check against the failed
	// drive index, so rebuild writes to the spare in the same slot are
	// unaffected.
	diskFailed bool
}

// rotPos returns the angular position of the platter at absolute time t,
// expressed as a byte offset within a track [0, BytesPerTrack).
func (d *drive) rotPos(t float64) float64 {
	frac := math.Mod(t/d.geom.RotationMS, 1)
	if frac < 0 {
		frac += 1
	}
	return frac * float64(d.geom.BytesPerTrack)
}

// rotWaitMS returns the time until the platter rotates to byte offset
// target (within a track) starting from absolute time t. Waits within a
// nanosecond of a full rotation are floating-point wrap artifacts (the
// head is already on the sector) and snap to zero.
func (d *drive) rotWaitMS(t float64, target int64) float64 {
	cur := d.rotPos(t)
	delta := float64(target) - cur
	if delta < 0 {
		delta += float64(d.geom.BytesPerTrack)
	}
	wait := delta / float64(d.geom.BytesPerTrack) * d.geom.RotationMS
	if d.geom.RotationMS-wait < 1e-9 {
		wait = 0
	}
	return wait
}

// serviceMS computes the total service time for seg starting at absolute
// time start, updating the head position. It walks the transfer track by
// track: head switches within a cylinder are free; a cylinder crossing
// costs a single-track seek (and whatever rotational realignment falls out
// of the phase model).
func (d *drive) serviceMS(start float64, seg *segment) float64 {
	g := d.geom
	if seg.start < 0 || seg.n <= 0 || seg.start+seg.n > g.Capacity() {
		panic(fmt.Sprintf("disk: segment [%d,+%d) outside drive capacity %d",
			seg.start, seg.n, g.Capacity()))
	}
	t := start
	var bd breakdown
	cyl, _, _ := g.locate(seg.start)
	if cyl != d.headCyl {
		s := g.SeekMS(cyl - d.headCyl)
		t += s
		bd.seekMS += s
		d.headCyl = cyl
		d.seeks++
	}
	pos := seg.start
	remaining := seg.n
	for remaining > 0 {
		inTrack := pos % g.BytesPerTrack
		chunk := g.BytesPerTrack - inTrack
		if chunk > remaining {
			chunk = remaining
		}
		rot := d.rotWaitMS(t, inTrack)
		t += rot
		bd.rotMS += rot
		xfer := float64(chunk) / float64(g.BytesPerTrack) * g.RotationMS
		t += xfer
		bd.xferMS += xfer
		pos += chunk
		remaining -= chunk
		if remaining > 0 {
			nextCyl, _, _ := g.locate(pos)
			if nextCyl != d.headCyl {
				s := g.SeekMS(nextCyl - d.headCyl)
				t += s
				bd.seekMS += s
				d.headCyl = nextCyl
				d.seeks++
			}
		}
	}
	if seg.extraRotations > 0 {
		extra := float64(seg.extraRotations) * g.RotationMS
		t += extra
		bd.rotMS += extra
	}
	if seg.write {
		d.bytesWrit += seg.n
	} else {
		d.bytesRead += seg.n
	}
	d.lastBD = bd
	d.seekMS += bd.seekMS
	d.rotMS += bd.rotMS
	d.xferMS += bd.xferMS
	d.busyMS += t - start
	return t - start
}
