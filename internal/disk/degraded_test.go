package disk

import (
	"math"
	"testing"

	"rofs/internal/units"
)

func raid5Sys(t *testing.T) (*System, interface{ Run(float64) float64 }) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Layout = RAID5
	s, eng := newSys(t, cfg)
	return s, eng
}

func TestFailDriveValidation(t *testing.T) {
	s, _ := newSys(t, DefaultConfig()) // striped
	if err := s.FailDrive(0); err == nil {
		t.Error("degraded mode accepted on a striped array")
	}
	r, _ := raid5Sys(t)
	if err := r.FailDrive(99); err == nil {
		t.Error("nonexistent drive accepted")
	}
	if err := r.FailDrive(0); err != nil {
		t.Errorf("valid failure rejected: %v", err)
	}
	if err := r.FailDrive(-1); err != nil {
		t.Errorf("restore rejected: %v", err)
	}
}

func TestDegradedReadReconstructs(t *testing.T) {
	s, _ := raid5Sys(t)
	su := 24 * units.KB / s.UnitBytes()
	// Stripe unit 0 lives on a data drive; find it, fail it, and check the
	// read fans out to the seven survivors.
	segs := s.segments(&Request{Runs: []Run{{0, su}}})
	if len(segs) != 1 {
		t.Fatalf("baseline read has %d segments", len(segs))
	}
	target := segs[0].disk
	if err := s.FailDrive(target); err != nil {
		t.Fatal(err)
	}
	degraded := s.degrade(s.segments(&Request{Runs: []Run{{0, su}}}))
	if len(degraded) != s.cfg.NDisks-1 {
		t.Fatalf("degraded read has %d segments, want %d", len(degraded), s.cfg.NDisks-1)
	}
	for _, sg := range degraded {
		if sg.disk == target {
			t.Fatal("reconstruction read touched the failed drive")
		}
		if sg.seg.n != segs[0].seg.n {
			t.Fatal("reconstruction segment length mismatch")
		}
	}
}

func TestDegradedWriteDropsFailedSegment(t *testing.T) {
	s, _ := raid5Sys(t)
	su := 24 * units.KB / s.UnitBytes()
	segs := s.segments(&Request{Runs: []Run{{0, su}}, Write: true})
	if len(segs) != 2 { // data + parity
		t.Fatalf("baseline write has %d segments", len(segs))
	}
	dataDisk := segs[0].disk
	if err := s.FailDrive(dataDisk); err != nil {
		t.Fatal(err)
	}
	degraded := s.degrade(s.segments(&Request{Runs: []Run{{0, su}}, Write: true}))
	if len(degraded) != 1 {
		t.Fatalf("degraded write has %d segments, want parity only", len(degraded))
	}
	if degraded[0].disk == dataDisk || !degraded[0].seg.write {
		t.Fatalf("degraded write segment wrong: %+v", degraded[0])
	}
}

func TestDegradedRequestsComplete(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Layout = RAID5
	s, eng := newSys(t, cfg)
	if err := s.FailDrive(2); err != nil {
		t.Fatal(err)
	}
	done := 0
	n := units.MB / s.UnitBytes()
	s.Submit(&Request{Runs: []Run{{0, n}}, Done: func(float64) { done++ }})
	s.Submit(&Request{Runs: []Run{{n, n}}, Write: true, Done: func(float64) { done++ }})
	eng.Run(math.Inf(1))
	if done != 2 {
		t.Fatalf("degraded requests completed: %d of 2", done)
	}
}

func TestDegradedSequentialIsSlower(t *testing.T) {
	read := func(fail bool) float64 {
		cfg := DefaultConfig()
		cfg.Layout = RAID5
		s, eng := newSys(t, cfg)
		if fail {
			if err := s.FailDrive(0); err != nil {
				t.Fatal(err)
			}
		}
		var doneAt float64
		s.Submit(&Request{
			Runs: []Run{{0, 64 * units.MB / s.UnitBytes()}},
			Done: func(now float64) { doneAt = now },
		})
		eng.Run(math.Inf(1))
		return doneAt
	}
	healthy, degraded := read(false), read(true)
	if degraded <= healthy {
		t.Fatalf("degraded read (%.1f ms) not slower than healthy (%.1f ms)",
			degraded, healthy)
	}
}
