package experiments

import (
	"context"
	"reflect"
	"testing"

	"rofs/internal/fault"
	"rofs/internal/runner"
)

// TestFaultTableShape runs the fault comparison at bench scale: every
// Figure 6 policy appears, faults cost throughput, and the default
// scenario's rebuild completes.
func TestFaultTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in short mode")
	}
	cells, err := FaultTable(context.Background(), testPool, BenchScale(), "TP", fault.Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want one per Figure 6 policy", len(cells))
	}
	for _, c := range cells {
		if c.HealthyPct <= 0 || c.FaultedPct <= 0 {
			t.Errorf("%s: non-positive throughput %+v", c.Policy, c)
		}
		// A failure plus a full rebuild competing for the array must cost
		// throughput relative to the healthy run.
		if c.FaultedPct >= c.HealthyPct {
			t.Errorf("%s: faulted %.2f%% >= healthy %.2f%%", c.Policy, c.FaultedPct, c.HealthyPct)
		}
		if c.DriveFailures != 1 {
			t.Errorf("%s: %d drive failures, want 1", c.Policy, c.DriveFailures)
		}
		if !c.RebuildDone {
			t.Errorf("%s: rebuild did not complete under the default scenario", c.Policy)
		}
		if c.DegradedMS <= 0 {
			t.Errorf("%s: no degraded time recorded", c.Policy)
		}
	}
}

// TestFaultDeterminismAcrossPolicies is the cross-policy determinism
// check: the same seed and fault scenario replayed from scratch (fresh
// pools, so nothing is served from cache) must reproduce every policy's
// throughput and recovery counters exactly.
func TestFaultDeterminismAcrossPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in short mode")
	}
	scenario := fault.Scenario{
		FailAtMS:          15_000,
		FailDrive:         2,
		TransientProb:     0.002,
		Rebuild:           true,
		RebuildChunkBytes: 4 << 20,
		Seed:              9,
	}
	run := func() []FaultCell {
		cells, err := FaultTable(context.Background(), runner.New(0), BenchScale(), "TS", scenario)
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Errorf("replayed fault runs diverged:\n first: %+v\nsecond: %+v", first, second)
	}
}
