// Package experiments defines every table and figure of the paper's
// evaluation as a runnable experiment, shared by the cmd/rofs-tables CLI
// and the repository's benchmark harness. Each function returns structured
// rows; rendering lives with the callers.
//
// Experiments run at a Scale: FullScale reproduces the paper's
// configuration (8 × Wren IV, 2.8 G, full workloads); BenchScale is a
// shape-preserving reduction (2 drives, workloads divided) that runs in
// milliseconds-to-seconds per experiment for tests and `go test -bench`.
package experiments

import (
	"fmt"

	"rofs/internal/alloc/extent"
	"rofs/internal/core"
	"rofs/internal/disk"
	"rofs/internal/units"
	"rofs/internal/workload"
)

// Scale fixes the disk system and workload reduction for a batch of
// experiments.
type Scale struct {
	Name string
	Disk disk.Config
	// Div divides the TS file count and the TP/SC file sizes (and the
	// TP/SC extent ranges to match).
	Div int64
	// MaxSimMS caps each throughput run.
	MaxSimMS float64
	Seed     int64
}

// FullScale returns the paper's configuration.
func FullScale() Scale {
	return Scale{Name: "full", Disk: disk.DefaultConfig(), Div: 1, MaxSimMS: 300_000, Seed: 42}
}

// BenchScale returns the reduced configuration: two drives of 200
// cylinders (≈86M) with the workloads divided by 32.
func BenchScale() Scale {
	cfg := disk.DefaultConfig()
	cfg.NDisks = 2
	cfg.Geometry.Cylinders = 200
	return Scale{Name: "bench", Disk: cfg, Div: 32, MaxSimMS: 120_000, Seed: 42}
}

// Workload returns a workload scaled per the Scale's divisor: TS divides
// file counts (its files are inherently small), TP and SC divide file
// sizes (their file counts are inherently small).
func (sc Scale) Workload(name string) (workload.Workload, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return w, err
	}
	if sc.Div <= 1 {
		return w, nil
	}
	if w.Name == "TS" {
		return w.Scale(sc.Div, 1), nil
	}
	return w.Scale(1, sc.Div), nil
}

// ExtentRanges returns the paper's extent-size ranges for the workload,
// divided to match the scaled file sizes.
func (sc Scale) ExtentRanges(name string, n int) ([]int64, error) {
	r, err := workload.ExtentRanges(name, n)
	if err != nil {
		return nil, err
	}
	if sc.Div <= 1 || name == "TS" || name == "ts" {
		return r, nil
	}
	out := make([]int64, len(r))
	for i := range r {
		out[i] = r[i] / sc.Div
		if out[i] < units.KB {
			out[i] = units.KB
		}
	}
	return out, nil
}

// Config assembles a core.Config for one run.
func (sc Scale) Config(p core.PolicySpec, wl workload.Workload) core.Config {
	return core.Config{
		Disk:     sc.Disk,
		Policy:   p,
		Workload: wl,
		Seed:     sc.Seed,
		MaxSimMS: sc.MaxSimMS,
	}
}

// --- Table 3: buddy allocation results ---

// Table3Row mirrors one row of the paper's Table 3.
type Table3Row struct {
	Workload    string
	InternalPct float64 // % of allocated space
	ExternalPct float64 // % of total space
	AppPct      float64 // % of max throughput
	SeqPct      float64
}

// Table3 runs the buddy policy's allocation, application, and sequential
// tests on SC, TP, and TS (§4.1).
func Table3(sc Scale) ([]Table3Row, error) {
	var rows []Table3Row
	for _, name := range []string{"SC", "TP", "TS"} {
		wl, err := sc.Workload(name)
		if err != nil {
			return nil, err
		}
		cfg := sc.Config(core.Buddy(), wl)
		frag, err := core.RunAllocation(cfg)
		if err != nil {
			return nil, fmt.Errorf("table3 %s alloc: %w", name, err)
		}
		app, err := core.RunApplication(cfg)
		if err != nil {
			return nil, fmt.Errorf("table3 %s app: %w", name, err)
		}
		seq, err := core.RunSequential(cfg)
		if err != nil {
			return nil, fmt.Errorf("table3 %s seq: %w", name, err)
		}
		rows = append(rows, Table3Row{
			Workload:    name,
			InternalPct: frag.InternalPct,
			ExternalPct: frag.ExternalPct,
			AppPct:      app.Percent,
			SeqPct:      seq.Percent,
		})
	}
	return rows, nil
}

// --- Figures 1 and 2: the restricted buddy grid ---

// RBuddyConfigs enumerates the §4.2 evaluation grid: block-size counts
// {2,3,4,5} × grow factor {1,2} × {clustered, unclustered}.
func RBuddyConfigs() []core.PolicySpec {
	var out []core.PolicySpec
	for _, n := range []int{2, 3, 4, 5} {
		for _, clustered := range []bool{true, false} {
			for _, g := range []int64{1, 2} {
				out = append(out, core.RBuddy(n, g, clustered))
			}
		}
	}
	return out
}

// FragCell is one bar of a fragmentation figure (Figures 1 and 4).
type FragCell struct {
	Policy      string
	Workload    string
	InternalPct float64
	ExternalPct float64
	// ExtentsPerFile is filled by the extent-policy runs (Table 4).
	ExtentsPerFile float64
}

// PerfCell is one bar of a performance figure (Figures 2, 5, and 6).
type PerfCell struct {
	Policy    string
	Workload  string
	AppPct    float64
	SeqPct    float64
	AppStable bool
	SeqStable bool
}

// Figure1 runs the allocation test for every restricted buddy
// configuration on each workload.
func Figure1(sc Scale) ([]FragCell, error) {
	return fragGrid(sc, RBuddyConfigs(), nil)
}

// Figure2 runs the application and sequential tests for every restricted
// buddy configuration on each workload.
func Figure2(sc Scale) ([]PerfCell, error) {
	return perfGrid(sc, RBuddyConfigs(), nil)
}

// extentConfigs returns the §4.3 grid for one workload: fits × range
// counts, with ranges matched to the workload.
func (sc Scale) extentConfigs(wlName string) ([]core.PolicySpec, error) {
	var out []core.PolicySpec
	for _, fit := range []extent.Fit{extent.FirstFit, extent.BestFit} {
		for n := 1; n <= 5; n++ {
			ranges, err := sc.ExtentRanges(wlName, n)
			if err != nil {
				return nil, err
			}
			out = append(out, core.Extent(fit, ranges))
		}
	}
	return out, nil
}

// Figure4 runs the allocation test over the extent grid (fragmentation);
// its cells also carry the Table 4 extents-per-file averages.
func Figure4(sc Scale) ([]FragCell, error) {
	return fragGrid(sc, nil, sc.extentConfigs)
}

// Figure5 runs the throughput tests over the extent grid.
func Figure5(sc Scale) ([]PerfCell, error) {
	return perfGrid(sc, nil, sc.extentConfigs)
}

// Table4Row is one row of Table 4: average extents per file for each
// extent-range count, under first fit (the configuration §4.3 selects).
type Table4Row struct {
	Ranges         int
	Workload       string
	ExtentsPerFile float64
}

// Table4 computes the average number of extents per file after the
// allocation test, for 1-5 extent ranges on each workload.
func Table4(sc Scale) ([]Table4Row, error) {
	var rows []Table4Row
	for n := 1; n <= 5; n++ {
		for _, name := range []string{"SC", "TP", "TS"} {
			wl, err := sc.Workload(name)
			if err != nil {
				return nil, err
			}
			ranges, err := sc.ExtentRanges(name, n)
			if err != nil {
				return nil, err
			}
			frag, err := core.RunAllocation(sc.Config(core.Extent(extent.FirstFit, ranges), wl))
			if err != nil {
				return nil, fmt.Errorf("table4 %s %dr: %w", name, n, err)
			}
			rows = append(rows, Table4Row{Ranges: n, Workload: name, ExtentsPerFile: frag.ExtentsPerFile})
		}
	}
	return rows, nil
}

// fragGrid runs allocation tests for a set of policies (fixed list or
// per-workload generator) across the three workloads.
func fragGrid(sc Scale, specs []core.PolicySpec, gen func(string) ([]core.PolicySpec, error)) ([]FragCell, error) {
	var cells []FragCell
	for _, name := range []string{"SC", "TP", "TS"} {
		wl, err := sc.Workload(name)
		if err != nil {
			return nil, err
		}
		ps := specs
		if gen != nil {
			if ps, err = gen(name); err != nil {
				return nil, err
			}
		}
		for _, p := range ps {
			frag, err := core.RunAllocation(sc.Config(p, wl))
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", p.Name(), name, err)
			}
			cells = append(cells, FragCell{
				Policy:         p.Name(),
				Workload:       name,
				InternalPct:    frag.InternalPct,
				ExternalPct:    frag.ExternalPct,
				ExtentsPerFile: frag.ExtentsPerFile,
			})
		}
	}
	return cells, nil
}

// perfGrid runs application + sequential tests for a set of policies
// across the three workloads.
func perfGrid(sc Scale, specs []core.PolicySpec, gen func(string) ([]core.PolicySpec, error)) ([]PerfCell, error) {
	var cells []PerfCell
	for _, name := range []string{"SC", "TP", "TS"} {
		wl, err := sc.Workload(name)
		if err != nil {
			return nil, err
		}
		ps := specs
		if gen != nil {
			if ps, err = gen(name); err != nil {
				return nil, err
			}
		}
		for _, p := range ps {
			cfg := sc.Config(p, wl)
			app, err := core.RunApplication(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s on %s app: %w", p.Name(), name, err)
			}
			seq, err := core.RunSequential(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s on %s seq: %w", p.Name(), name, err)
			}
			cells = append(cells, PerfCell{
				Policy:    p.Name(),
				Workload:  name,
				AppPct:    app.Percent,
				SeqPct:    seq.Percent,
				AppStable: app.Stable,
				SeqStable: seq.Stable,
			})
		}
	}
	return cells, nil
}

// Figure6Policies returns the §5 comparison set for a workload: the buddy
// system, the selected restricted buddy configuration (5 sizes, grow 1,
// clustered), the selected extent configuration (first fit, 3 ranges),
// and the fixed-block baseline (4K for TS, 16K for TP and SC).
func (sc Scale) Figure6Policies(wlName string) ([]core.PolicySpec, error) {
	ranges, err := sc.ExtentRanges(wlName, 3)
	if err != nil {
		return nil, err
	}
	fixedBytes := int64(16 * units.KB)
	if wlName == "TS" || wlName == "ts" {
		fixedBytes = 4 * units.KB
	}
	return []core.PolicySpec{
		core.Buddy(),
		core.RBuddy(5, 1, true),
		core.Extent(extent.FirstFit, ranges),
		core.Fixed(fixedBytes),
	}, nil
}

// Figure6 runs the §5 comparison: sequential (6a) and application (6b)
// performance of the four allocation methods on each workload.
func Figure6(sc Scale) ([]PerfCell, error) {
	return perfGrid(sc, nil, sc.Figure6Policies)
}
