// Package experiments defines every table and figure of the paper's
// evaluation as a runnable experiment, shared by the cmd/rofs-tables CLI
// and the repository's benchmark harness. Each function returns structured
// rows; rendering lives with the callers.
//
// Experiments run at a Scale: FullScale reproduces the paper's
// configuration (8 × Wren IV, 2.8 G, full workloads); BenchScale is a
// shape-preserving reduction (2 drives, workloads divided) that runs in
// milliseconds-to-seconds per experiment for tests and `go test -bench`.
//
// Each experiment declares its runs as runner.Specs and assembles its
// rows from the pooled results, so a shared runner.Pool executes a whole
// evaluation concurrently and deduplicates configurations that appear in
// more than one table.
package experiments

import (
	"context"
	"fmt"

	"rofs/internal/alloc/extent"
	"rofs/internal/core"
	"rofs/internal/disk"
	"rofs/internal/runner"
	"rofs/internal/units"
	"rofs/internal/workload"
)

// Scale fixes the disk system and workload reduction for a batch of
// experiments.
type Scale struct {
	Name string
	Disk disk.Config
	// Div divides the TS file count and the TP/SC file sizes (and the
	// TP/SC extent ranges to match).
	Div int64
	// MaxSimMS caps each throughput run.
	MaxSimMS float64
	Seed     int64
}

// FullScale returns the paper's configuration.
func FullScale() Scale {
	return Scale{Name: "full", Disk: disk.DefaultConfig(), Div: 1, MaxSimMS: 300_000, Seed: 42}
}

// BenchScale returns the reduced configuration: two drives of 200
// cylinders (≈86M) with the workloads divided by 32.
func BenchScale() Scale {
	cfg := disk.DefaultConfig()
	cfg.NDisks = 2
	cfg.Geometry.Cylinders = 200
	return Scale{Name: "bench", Disk: cfg, Div: 32, MaxSimMS: 120_000, Seed: 42}
}

// Workload returns a workload scaled per the Scale's divisor: TS divides
// file counts (its files are inherently small), TP and SC divide file
// sizes (their file counts are inherently small).
func (sc Scale) Workload(name string) (workload.Workload, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return w, err
	}
	if sc.Div <= 1 {
		return w, nil
	}
	if w.Name == "TS" {
		return w.Scale(sc.Div, 1), nil
	}
	return w.Scale(1, sc.Div), nil
}

// ExtentRanges returns the paper's extent-size ranges for the workload,
// divided to match the scaled file sizes.
func (sc Scale) ExtentRanges(name string, n int) ([]int64, error) {
	r, err := workload.ExtentRanges(name, n)
	if err != nil {
		return nil, err
	}
	if sc.Div <= 1 || name == "TS" || name == "ts" {
		return r, nil
	}
	out := make([]int64, len(r))
	for i := range r {
		out[i] = r[i] / sc.Div
		if out[i] < units.KB {
			out[i] = units.KB
		}
	}
	return out, nil
}

// Spec declares one run at this scale — the experiments' currency: every
// table and figure reduces to a slice of these handed to a runner.Pool.
func (sc Scale) Spec(p core.PolicySpec, wl workload.Workload, kind core.TestKind) runner.Spec {
	return runner.Spec{
		Disk:     sc.Disk,
		Policy:   p,
		Workload: wl,
		Kind:     kind,
		Seed:     sc.Seed,
		MaxSimMS: sc.MaxSimMS,
	}
}

// Config assembles a core.Config for one run. Direct callers (examples,
// rofsim) use it; the declarative path goes through Spec.
func (sc Scale) Config(p core.PolicySpec, wl workload.Workload) core.Config {
	return sc.Spec(p, wl, core.Allocation).Config()
}

// runAll executes specs through the pool and returns their outcomes in
// submission order, failing on the first error. A nil pool runs on a
// private default-sized one; a nil ctx means no cancellation.
func runAll(ctx context.Context, p *runner.Pool, specs []runner.Spec) ([]core.Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p == nil {
		p = runner.New(0)
	}
	results, err := p.Run(ctx, specs)
	if err != nil {
		return nil, err
	}
	outs := make([]core.Outcome, len(results))
	for i := range results {
		outs[i] = results[i].Outcome
	}
	return outs, nil
}

// --- Table 3: buddy allocation results ---

// Table3Row mirrors one row of the paper's Table 3.
type Table3Row struct {
	Workload    string
	InternalPct float64 // % of allocated space
	ExternalPct float64 // % of total space
	AppPct      float64 // % of max throughput
	SeqPct      float64
}

// table3Kinds are the three runs behind each Table 3 row.
var table3Kinds = []core.TestKind{core.Allocation, core.Application, core.Sequential}

// Table3Specs declares the buddy policy's allocation, application, and
// sequential runs on SC, TP, and TS — three consecutive Specs per
// workload, in table3Kinds order.
func Table3Specs(sc Scale) ([]runner.Spec, error) {
	var specs []runner.Spec
	for _, name := range []string{"SC", "TP", "TS"} {
		wl, err := sc.Workload(name)
		if err != nil {
			return nil, err
		}
		for _, kind := range table3Kinds {
			specs = append(specs, sc.Spec(core.Buddy(), wl, kind))
		}
	}
	return specs, nil
}

// Table3 runs the buddy policy's allocation, application, and sequential
// tests on SC, TP, and TS (§4.1).
func Table3(ctx context.Context, p *runner.Pool, sc Scale) ([]Table3Row, error) {
	specs, err := Table3Specs(sc)
	if err != nil {
		return nil, err
	}
	outs, err := runAll(ctx, p, specs)
	if err != nil {
		return nil, fmt.Errorf("table3: %w", err)
	}
	var rows []Table3Row
	for i := 0; i < len(outs); i += len(table3Kinds) {
		frag, app, seq := outs[i].Frag, outs[i+1].Perf, outs[i+2].Perf
		rows = append(rows, Table3Row{
			Workload:    specs[i].Workload.Name,
			InternalPct: frag.InternalPct,
			ExternalPct: frag.ExternalPct,
			AppPct:      app.Percent,
			SeqPct:      seq.Percent,
		})
	}
	return rows, nil
}

// --- Figures 1 and 2: the restricted buddy grid ---

// RBuddyConfigs enumerates the §4.2 evaluation grid: block-size counts
// {2,3,4,5} × grow factor {1,2} × {clustered, unclustered}.
func RBuddyConfigs() []core.PolicySpec {
	var out []core.PolicySpec
	for _, n := range []int{2, 3, 4, 5} {
		for _, clustered := range []bool{true, false} {
			for _, g := range []float64{1, 2} {
				out = append(out, core.RBuddy(n, g, clustered))
			}
		}
	}
	return out
}

// FragCell is one bar of a fragmentation figure (Figures 1 and 4).
type FragCell struct {
	Policy      string
	Workload    string
	InternalPct float64
	ExternalPct float64
	// ExtentsPerFile is filled by the extent-policy runs (Table 4).
	ExtentsPerFile float64
}

// PerfCell is one bar of a performance figure (Figures 2, 5, and 6).
type PerfCell struct {
	Policy    string
	Workload  string
	AppPct    float64
	SeqPct    float64
	AppStable bool
	SeqStable bool
}

// Figure1 runs the allocation test for every restricted buddy
// configuration on each workload.
func Figure1(ctx context.Context, p *runner.Pool, sc Scale) ([]FragCell, error) {
	return fragGrid(ctx, p, sc, RBuddyConfigs(), nil)
}

// Figure2 runs the application and sequential tests for every restricted
// buddy configuration on each workload.
func Figure2(ctx context.Context, p *runner.Pool, sc Scale) ([]PerfCell, error) {
	return perfGrid(ctx, p, sc, RBuddyConfigs(), nil)
}

// extentConfigs returns the §4.3 grid for one workload: fits × range
// counts, with ranges matched to the workload.
func (sc Scale) extentConfigs(wlName string) ([]core.PolicySpec, error) {
	var out []core.PolicySpec
	for _, fit := range []extent.Fit{extent.FirstFit, extent.BestFit} {
		for n := 1; n <= 5; n++ {
			ranges, err := sc.ExtentRanges(wlName, n)
			if err != nil {
				return nil, err
			}
			out = append(out, core.Extent(fit, ranges))
		}
	}
	return out, nil
}

// Figure4 runs the allocation test over the extent grid (fragmentation);
// its cells also carry the Table 4 extents-per-file averages.
func Figure4(ctx context.Context, p *runner.Pool, sc Scale) ([]FragCell, error) {
	return fragGrid(ctx, p, sc, nil, sc.extentConfigs)
}

// Figure5 runs the throughput tests over the extent grid.
func Figure5(ctx context.Context, p *runner.Pool, sc Scale) ([]PerfCell, error) {
	return perfGrid(ctx, p, sc, nil, sc.extentConfigs)
}

// Table4Row is one row of Table 4: average extents per file for each
// extent-range count, under first fit (the configuration §4.3 selects).
type Table4Row struct {
	Ranges         int
	Workload       string
	ExtentsPerFile float64
}

// Table4 computes the average number of extents per file after the
// allocation test, for 1-5 extent ranges on each workload. Its runs are
// the first-fit half of the Figure 4 grid, so a shared pool simulates
// them only once across both.
func Table4(ctx context.Context, p *runner.Pool, sc Scale) ([]Table4Row, error) {
	type cell struct {
		ranges int
		wl     string
	}
	var specs []runner.Spec
	var cells []cell
	for n := 1; n <= 5; n++ {
		for _, name := range []string{"SC", "TP", "TS"} {
			wl, err := sc.Workload(name)
			if err != nil {
				return nil, err
			}
			ranges, err := sc.ExtentRanges(name, n)
			if err != nil {
				return nil, err
			}
			specs = append(specs, sc.Spec(core.Extent(extent.FirstFit, ranges), wl, core.Allocation))
			cells = append(cells, cell{n, name})
		}
	}
	outs, err := runAll(ctx, p, specs)
	if err != nil {
		return nil, fmt.Errorf("table4: %w", err)
	}
	rows := make([]Table4Row, len(outs))
	for i, out := range outs {
		rows[i] = Table4Row{
			Ranges:         cells[i].ranges,
			Workload:       cells[i].wl,
			ExtentsPerFile: out.Frag.ExtentsPerFile,
		}
	}
	return rows, nil
}

// gridSpecs declares one Spec of the given kind per (workload, policy)
// pair, policies coming from the fixed list or the per-workload generator.
func gridSpecs(sc Scale, kind core.TestKind, specs []core.PolicySpec,
	gen func(string) ([]core.PolicySpec, error)) ([]runner.Spec, error) {
	var out []runner.Spec
	for _, name := range []string{"SC", "TP", "TS"} {
		wl, err := sc.Workload(name)
		if err != nil {
			return nil, err
		}
		ps := specs
		if gen != nil {
			if ps, err = gen(name); err != nil {
				return nil, err
			}
		}
		for _, p := range ps {
			out = append(out, sc.Spec(p, wl, kind))
		}
	}
	return out, nil
}

// fragGrid runs allocation tests for a set of policies (fixed list or
// per-workload generator) across the three workloads.
func fragGrid(ctx context.Context, pool *runner.Pool, sc Scale, specs []core.PolicySpec,
	gen func(string) ([]core.PolicySpec, error)) ([]FragCell, error) {
	rs, err := gridSpecs(sc, core.Allocation, specs, gen)
	if err != nil {
		return nil, err
	}
	outs, err := runAll(ctx, pool, rs)
	if err != nil {
		return nil, err
	}
	cells := make([]FragCell, len(outs))
	for i, out := range outs {
		cells[i] = FragCell{
			Policy:         rs[i].Policy.Name(),
			Workload:       rs[i].Workload.Name,
			InternalPct:    out.Frag.InternalPct,
			ExternalPct:    out.Frag.ExternalPct,
			ExtentsPerFile: out.Frag.ExtentsPerFile,
		}
	}
	return cells, nil
}

// perfGrid runs application + sequential tests for a set of policies
// across the three workloads.
func perfGrid(ctx context.Context, pool *runner.Pool, sc Scale, specs []core.PolicySpec,
	gen func(string) ([]core.PolicySpec, error)) ([]PerfCell, error) {
	apps, err := gridSpecs(sc, core.Application, specs, gen)
	if err != nil {
		return nil, err
	}
	seqs, err := gridSpecs(sc, core.Sequential, specs, gen)
	if err != nil {
		return nil, err
	}
	outs, err := runAll(ctx, pool, append(append([]runner.Spec{}, apps...), seqs...))
	if err != nil {
		return nil, err
	}
	cells := make([]PerfCell, len(apps))
	for i := range apps {
		app, seq := outs[i].Perf, outs[len(apps)+i].Perf
		cells[i] = PerfCell{
			Policy:    apps[i].Policy.Name(),
			Workload:  apps[i].Workload.Name,
			AppPct:    app.Percent,
			SeqPct:    seq.Percent,
			AppStable: app.Stable,
			SeqStable: seq.Stable,
		}
	}
	return cells, nil
}

// Figure6Policies returns the §5 comparison set for a workload: the buddy
// system, the selected restricted buddy configuration (5 sizes, grow 1,
// clustered), the selected extent configuration (first fit, 3 ranges),
// and the fixed-block baseline (4K for TS, 16K for TP and SC).
func (sc Scale) Figure6Policies(wlName string) ([]core.PolicySpec, error) {
	ranges, err := sc.ExtentRanges(wlName, 3)
	if err != nil {
		return nil, err
	}
	fixedBytes := int64(16 * units.KB)
	if wlName == "TS" || wlName == "ts" {
		fixedBytes = 4 * units.KB
	}
	return []core.PolicySpec{
		core.Buddy(),
		core.RBuddy(5, 1, true),
		core.Extent(extent.FirstFit, ranges),
		core.Fixed(fixedBytes),
	}, nil
}

// Figure6 runs the §5 comparison: sequential (6a) and application (6b)
// performance of the four allocation methods on each workload.
func Figure6(ctx context.Context, p *runner.Pool, sc Scale) ([]PerfCell, error) {
	return perfGrid(ctx, p, sc, nil, sc.Figure6Policies)
}
