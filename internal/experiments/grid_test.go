package experiments

import (
	"context"
	"strings"
	"testing"
)

// The grid tests run the complete evaluation at bench scale — they are the
// repository's integration tests, asserting the paper's qualitative
// results end to end. They are skipped under -short.

func TestFigure2Grid(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in short mode")
	}
	cells, err := Figure2(context.Background(), testPool, BenchScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 48 {
		t.Fatalf("got %d cells, want 48", len(cells))
	}
	// Index by workload and policy for the shape assertions.
	get := func(wl, policy string) PerfCell {
		for _, c := range cells {
			if c.Workload == wl && c.Policy == policy {
				return c
			}
		}
		t.Fatalf("missing cell %s/%s", wl, policy)
		return PerfCell{}
	}
	// §4.2: large-file workloads run fast sequentially under every
	// configuration.
	for _, wl := range []string{"SC", "TP"} {
		for _, p := range []string{"rbuddy-2-g1-clus", "rbuddy-5-g1-clus"} {
			if c := get(wl, p); c.SeqPct < 60 {
				t.Errorf("%s %s sequential %.1f%%; expected high", wl, p, c.SeqPct)
			}
		}
	}
	// TS stays far below the large-file workloads under every config.
	for _, c := range cells {
		if c.Workload != "TS" {
			continue
		}
		if c.SeqPct > get("SC", c.Policy).SeqPct {
			t.Errorf("TS %s sequential %.1f%% above SC", c.Policy, c.SeqPct)
		}
	}
	// All percentages sane.
	for _, c := range cells {
		if c.AppPct <= 0 || c.AppPct > 115 || c.SeqPct <= 0 || c.SeqPct > 115 {
			t.Errorf("out-of-range cell %+v", c)
		}
	}
}

func TestFigure4And5Extent(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in short mode")
	}
	sc := BenchScale()
	frag, err := Figure4(context.Background(), testPool, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(frag) != 30 { // 2 fits × 5 ranges × 3 workloads
		t.Fatalf("figure 4: %d cells, want 30", len(frag))
	}
	// The paper's headline: neither internal nor external fragmentation
	// surpasses ~5% for the extent policies.
	for _, c := range frag {
		if c.InternalPct > 8 || c.ExternalPct > 8 {
			t.Errorf("extent fragmentation out of regime: %+v", c)
		}
	}
	// Best fit consistently yields less (or equal) total fragmentation on
	// average — the §4.3 observation.
	var firstTotal, bestTotal float64
	for _, c := range frag {
		if strings.Contains(c.Policy, "best") {
			bestTotal += c.InternalPct + c.ExternalPct
		} else {
			firstTotal += c.InternalPct + c.ExternalPct
		}
	}
	t.Logf("total frag: first-fit %.1f, best-fit %.1f", firstTotal, bestTotal)

	perf, err := Figure5(context.Background(), testPool, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(perf) != 30 {
		t.Fatalf("figure 5: %d cells, want 30", len(perf))
	}
	// Throughput "fairly insensitive to the selection of best fit or
	// first fit" (§4.3): compare pairwise, tolerate noise.
	for _, c := range perf {
		if !strings.Contains(c.Policy, "first") {
			continue
		}
		counterpart := strings.Replace(c.Policy, "first-fit", "best-fit", 1)
		for _, d := range perf {
			if d.Workload == c.Workload && d.Policy == counterpart {
				if diff := c.SeqPct - d.SeqPct; diff > 25 || diff < -25 {
					t.Errorf("fit sensitivity too large: %s vs %s on %s: %.1f vs %.1f",
						c.Policy, d.Policy, c.Workload, c.SeqPct, d.SeqPct)
				}
			}
		}
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in short mode")
	}
	rows, err := Table4(context.Background(), testPool, BenchScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("got %d rows, want 15", len(rows))
	}
	get := func(n int, wl string) float64 {
		for _, r := range rows {
			if r.Ranges == n && r.Workload == wl {
				return r.ExtentsPerFile
			}
		}
		t.Fatalf("missing row %d/%s", n, wl)
		return 0
	}
	for _, r := range rows {
		t.Logf("%d ranges %s: %.1f extents/file", r.Ranges, r.Workload, r.ExtentsPerFile)
	}
	// Table 4's signature shape: the single-range configurations force
	// hundreds of extents per large file; adding a large range collapses
	// the count by an order of magnitude.
	if get(1, "TP") < 5*get(2, "TP") {
		t.Errorf("TP 1-range (%.0f) should dwarf 2-range (%.0f)", get(1, "TP"), get(2, "TP"))
	}
	if get(1, "SC") < 2*get(3, "SC") {
		t.Errorf("SC 1-range (%.0f) should dwarf 3-range (%.0f)", get(1, "SC"), get(3, "SC"))
	}
	// TS files are small: extent counts stay single-digit-ish everywhere.
	for n := 1; n <= 5; n++ {
		if get(n, "TS") > 30 {
			t.Errorf("TS %d-range extents/file %.1f implausibly high", n, get(n, "TS"))
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in short mode")
	}
	cells, err := Figure6(context.Background(), testPool, BenchScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 {
		t.Fatalf("got %d cells, want 12", len(cells))
	}
	get := func(wl, prefix string) PerfCell {
		for _, c := range cells {
			if c.Workload == wl && strings.HasPrefix(c.Policy, prefix) {
				return c
			}
		}
		t.Fatalf("missing %s/%s*", wl, prefix)
		return PerfCell{}
	}
	// Figure 6a: every multiblock policy beats fixed block sequentially on
	// the large-file workloads. (SSTF scheduling narrows the gap at the
	// tiny bench scale — the elevator re-sorts the baseline's per-block
	// requests — so the bench assertion is 1.25×; the full-scale gap in
	// EXPERIMENTS.md is far wider.)
	for _, wl := range []string{"SC", "TP"} {
		fixed := get(wl, "fixed").SeqPct
		for _, p := range []string{"buddy", "rbuddy", "extent"} {
			if m := get(wl, p).SeqPct; m < 1.25*fixed {
				t.Errorf("%s: %s sequential %.1f%% not well above fixed %.1f%%", wl, p, m, fixed)
			}
		}
	}
	// Figure 6b: TP application throughput is limited by the random reads
	// and writes for every policy — they cluster together.
	var lo, hi float64 = 1e9, 0
	for _, p := range []string{"buddy", "rbuddy", "extent", "fixed"} {
		v := get("TP", p).AppPct
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 2.5*lo {
		t.Errorf("TP application spread too wide: %.1f .. %.1f", lo, hi)
	}
}

func TestAblationRAIDShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in short mode")
	}
	cells, err := AblationRAID(context.Background(), testPool, BenchScale(), "TP")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("got %d layout variants", len(cells))
	}
	var striped, raid5, degraded float64
	for _, c := range cells {
		switch c.Name() {
		case "striped":
			striped = c.AppPct
		case "raid5":
			raid5 = c.AppPct
		case "raid5-degraded":
			degraded = c.AppPct
		}
		t.Logf("%s: app=%.1f seq=%.1f", c.Name(), c.AppPct, c.SeqPct)
	}
	// §6: RAID reduces small-write performance; a failed drive makes it
	// worse still.
	if raid5 >= striped {
		t.Errorf("RAID-5 app %.1f%% should be below striped %.1f%%", raid5, striped)
	}
	if degraded > raid5*1.1 {
		t.Errorf("degraded RAID-5 app %.1f%% above healthy %.1f%%", degraded, raid5)
	}
}

func TestAblationReallocRecoversKochFragmentation(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in short mode")
	}
	cells, err := AblationRealloc(context.Background(), testPool, BenchScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells", len(cells))
	}
	for _, c := range cells {
		t.Logf("%s: int %.1f%% -> %.1f%%, compacted %d failed %d",
			c.Workload, c.InternalBefore, c.After, c.Compacted, c.Failed)
		// Koch: under 4% internal fragmentation once the rearranger runs.
		if c.After > 4 {
			t.Errorf("%s: post-reallocation internal frag %.1f%% above Koch's 4%%", c.Workload, c.After)
		}
		if c.After >= c.InternalBefore && c.InternalBefore > 4 {
			t.Errorf("%s: reallocator did not help (%.1f%% -> %.1f%%)",
				c.Workload, c.InternalBefore, c.After)
		}
		if c.Compacted == 0 {
			t.Errorf("%s: nothing compacted", c.Workload)
		}
	}
}

func TestAblationSkewHelpsLocality(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in short mode")
	}
	cells, err := AblationSkew(context.Background(), testPool, BenchScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells", len(cells))
	}
	for _, c := range cells {
		t.Logf("skew=%.1f: app=%.1f%% lat=%.1fms", c.HotSkew, c.AppPct, c.MeanLatencyMS)
		if c.AppPct <= 0 {
			t.Errorf("skew %.1f produced no throughput", c.HotSkew)
		}
	}
	// Strong skew should not hurt: hot files buy seek locality.
	if cells[2].AppPct < cells[0].AppPct*0.9 {
		t.Errorf("heavy skew %.1f%% well below uniform %.1f%%", cells[2].AppPct, cells[0].AppPct)
	}
}

func TestAblationStripeAndClustering(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in short mode")
	}
	sc := BenchScale()
	stripes, err := AblationStripeUnit(context.Background(), testPool, sc, "SC")
	if err != nil {
		t.Fatal(err)
	}
	if len(stripes) != 4 {
		t.Fatalf("got %d stripe cells", len(stripes))
	}
	for _, c := range stripes {
		if c.SeqPct < 40 {
			t.Errorf("SC sequential collapsed at stripe %d: %.1f%%", c.StripeBytes, c.SeqPct)
		}
	}
	scheds, err := AblationScheduler(context.Background(), testPool, sc, "TP")
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds) != 3 {
		t.Fatalf("got %d scheduler cells", len(scheds))
	}
	sstf, fcfs := scheds[0], scheds[2]
	if sstf.AppPct < fcfs.AppPct {
		t.Errorf("SSTF app %.1f%% below FCFS %.1f%%", sstf.AppPct, fcfs.AppPct)
	}
	for _, c := range scheds {
		if c.MeanLatencyMS <= 0 || c.P95LatencyMS < c.MeanLatencyMS {
			t.Errorf("implausible latency for %v: mean=%.1f p95=%.1f",
				c.Scheduler, c.MeanLatencyMS, c.P95LatencyMS)
		}
		t.Logf("%v: app=%.1f%% lat mean=%.1fms p95<=%.0fms",
			c.Scheduler, c.AppPct, c.MeanLatencyMS, c.P95LatencyMS)
	}
	clusters, err := AblationClustering(context.Background(), testPool, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 4 {
		t.Fatalf("got %d cluster cells", len(clusters))
	}
	for _, c := range clusters {
		if c.SeqPct <= 0 || c.InternalPct < 0 {
			t.Errorf("bad cluster cell %+v", c)
		}
		t.Logf("clustered=%v g=%g: seq=%.1f int=%.1f", c.Clustered, c.GrowFactor, c.SeqPct, c.InternalPct)
	}
}
