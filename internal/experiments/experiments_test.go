package experiments

import (
	"context"
	"strings"
	"testing"

	"rofs/internal/disk"
	"rofs/internal/runner"
	"rofs/internal/units"
)

// testPool is shared across the package's tests so configurations that
// recur between experiments (e.g. the Table 4 / Figure 4 first-fit runs)
// simulate once per `go test` process.
var testPool = runner.New(0)

func TestScaleWorkloadSelection(t *testing.T) {
	sc := BenchScale()
	ts, err := sc.Workload("TS")
	if err != nil {
		t.Fatal(err)
	}
	full, _ := FullScale().Workload("TS")
	// TS scales counts, not sizes.
	if ts.Types[0].Files >= full.Types[0].Files {
		t.Error("bench TS did not scale file counts")
	}
	if ts.Types[0].InitialBytes != full.Types[0].InitialBytes {
		t.Error("bench TS scaled sizes; should scale counts only")
	}
	tp, _ := sc.Workload("TP")
	fullTP, _ := FullScale().Workload("TP")
	// TP scales sizes, not counts.
	if tp.Types[0].Files != fullTP.Types[0].Files {
		t.Error("bench TP scaled counts; should scale sizes only")
	}
	if tp.Types[0].InitialBytes >= fullTP.Types[0].InitialBytes {
		t.Error("bench TP did not scale sizes")
	}
	if _, err := sc.Workload("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestScaleExtentRanges(t *testing.T) {
	sc := BenchScale()
	tsRanges, err := sc.ExtentRanges("TS", 3)
	if err != nil {
		t.Fatal(err)
	}
	fullTS, _ := FullScale().ExtentRanges("TS", 3)
	for i := range tsRanges {
		if tsRanges[i] != fullTS[i] {
			t.Error("TS ranges should not scale")
		}
	}
	tpRanges, _ := sc.ExtentRanges("TP", 3)
	fullTP, _ := FullScale().ExtentRanges("TP", 3)
	if tpRanges[2] != fullTP[2]/32 {
		t.Errorf("TP range not scaled: %d vs %d", tpRanges[2], fullTP[2])
	}
}

func TestTable3ShapeMatchesPaper(t *testing.T) {
	rows, err := Table3(context.Background(), testPool, BenchScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byWL := map[string]Table3Row{}
	for _, r := range rows {
		byWL[r.Workload] = r
		t.Logf("%s: int=%.1f ext=%.1f app=%.1f seq=%.1f",
			r.Workload, r.InternalPct, r.ExternalPct, r.AppPct, r.SeqPct)
	}
	// Paper Table 3 orderings: SC suffers the worst external fragmentation
	// (failed doubling requests with plenty free); SC/TP sequential
	// throughput is high; TS throughput is the lowest.
	if byWL["SC"].ExternalPct <= byWL["TS"].ExternalPct {
		t.Error("SC external frag should exceed TS under buddy")
	}
	if byWL["SC"].SeqPct < 70 || byWL["TP"].SeqPct < 70 {
		t.Error("SC/TP sequential should be high under buddy")
	}
	if byWL["TS"].SeqPct >= byWL["SC"].SeqPct {
		t.Error("TS sequential should be far below SC")
	}
	if byWL["TS"].AppPct >= byWL["SC"].AppPct {
		t.Error("TS application should be far below SC")
	}
}

func TestFigure3GrowBreak(t *testing.T) {
	res, err := Figure3(context.Background(), testPool)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	g1, g2 := res[0], res[1]
	// "Any file over 72K requires a 64K block" (g=1) vs 144K (g=2).
	if g1.FileKB != 72+64 {
		t.Errorf("g=1 crossed at %dK allocation, want 136K (72K + the 64K block)", g1.FileKB)
	}
	if g2.FileKB != 144+64 {
		t.Errorf("g=2 crossed at %dK allocation, want 208K", g2.FileKB)
	}
	// Both pay the discontinuity on a fresh disk.
	if !g1.Discontiguous || g1.GapKB != 128-72 {
		t.Errorf("g=1 gap = %dK discontiguous=%v, want 56K gap", g1.GapKB, g1.Discontiguous)
	}
	if !g2.Discontiguous {
		t.Error("g=2 crossing should still be discontiguous on this layout")
	}
}

func TestFigure6SelectsPaperPolicies(t *testing.T) {
	sc := BenchScale()
	ps, err := sc.Figure6Policies("TS")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 4 {
		t.Fatalf("got %d policies", len(ps))
	}
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name()
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"buddy", "rbuddy-5-g1-clus", "extent-first-fit-3r", "fixed-4K"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %s in %v", want, names)
		}
	}
	ps, _ = sc.Figure6Policies("TP")
	if ps[3].Name() != "fixed-16K" {
		t.Errorf("TP baseline = %s, want fixed-16K", ps[3].Name())
	}
}

func TestRBuddyConfigsGrid(t *testing.T) {
	cfgs := RBuddyConfigs()
	if len(cfgs) != 16 {
		t.Fatalf("grid has %d configs, want 16", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if seen[c.Name()] {
			t.Errorf("duplicate config %s", c.Name())
		}
		seen[c.Name()] = true
	}
}

func TestBenchScaleDiskIsSmall(t *testing.T) {
	sc := BenchScale()
	if sc.Disk.NDisks != 2 {
		t.Error("bench scale should use 2 drives")
	}
	if sc.Disk.Geometry.Capacity() >= disk.WrenIV().Capacity() {
		t.Error("bench drive should be smaller than a full Wren IV")
	}
}

func TestAblationFileMixShape(t *testing.T) {
	cells, err := AblationFileMix(context.Background(), testPool, BenchScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 { // 4 shares × 2 policies
		t.Fatalf("got %d cells", len(cells))
	}
	// Restricted buddy internal fragmentation grows with the large-file
	// share (more files parked in half-used 64K blocks).
	var rlow, rhigh float64
	for _, c := range cells {
		if strings.HasPrefix(c.Policy, "rbuddy") {
			if c.LargeShare == 0.1 {
				rlow = c.InternalPct
			}
			if c.LargeShare == 0.7 {
				rhigh = c.InternalPct
			}
		}
		t.Logf("share=%.0f%% %s: int=%.1f ext=%.1f", c.LargeShare*100, c.Policy, c.InternalPct, c.ExternalPct)
	}
	if rhigh <= rlow {
		t.Errorf("rbuddy internal frag should grow with large share: %.1f vs %.1f", rlow, rhigh)
	}
}

func TestFigure1GridSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in short mode")
	}
	sc := BenchScale()
	cells, err := Figure1(context.Background(), testPool, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 48 { // 16 configs × 3 workloads
		t.Fatalf("got %d cells", len(cells))
	}
	worst, worstTS := 0.0, 0.0
	for _, c := range cells {
		if c.InternalPct > worst {
			worst = c.InternalPct
		}
		if c.Workload == "TS" && c.InternalPct > worstTS {
			worstTS = c.InternalPct
		}
		if c.InternalPct < 0 || c.ExternalPct < 0 {
			t.Fatalf("negative fragmentation: %+v", c)
		}
	}
	t.Logf("worst restricted buddy internal frag: %.1f%% overall, %.1f%% on TS", worst, worstTS)
	// The paper's headline ("even the worst fragmentation is under 6%")
	// holds for TS in our runs; SC/TP run hotter because our level-block
	// rule keeps a half-used 16M block on every ~100M file (see
	// EXPERIMENTS.md on the Figure 3 / Figure 1 tension in the paper).
	if worstTS > 10 {
		t.Errorf("worst TS restricted buddy fragmentation %.1f%% is out of the paper's regime", worstTS)
	}
	if worst > 30 {
		t.Errorf("worst-case fragmentation %.1f%% is far out of regime", worst)
	}
}

func TestUnitsSanity(t *testing.T) {
	if units.KB != 1024 {
		t.Fatal("units drifted")
	}
}
