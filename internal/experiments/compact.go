package experiments

import (
	"context"
	"fmt"

	"rofs/internal/core"
	"rofs/internal/runner"
	"rofs/internal/workload"
)

// The compaction experiment prices the log-structured overlay: the TP
// application test runs bare, then with a size-tiered merge engine, then
// with a leveled one, all under the restricted buddy policy. The segment
// stream and merge I/O go through the same per-drive queues as the
// workload, so the throughput and latency deltas are the cost of the
// write-optimized design's background work on a read-optimized system.

// CompactRow reports one overlay variant.
type CompactRow struct {
	// Overlay is "off", "tiered", or "leveled".
	Overlay       string
	Percent       float64
	MeanLatencyMS float64
	P95LatencyMS  float64
	// Compaction is nil for the bare run.
	Compaction *core.CompactionReport
}

// CompactionSpecs declares the three TP application runs: bare, tiered,
// leveled.
func CompactionSpecs(sc Scale) ([]runner.Spec, []string, error) {
	wl, err := sc.Workload("TP")
	if err != nil {
		return nil, nil, err
	}
	overlays := []string{"off", workload.CompactTiered, workload.CompactLeveled}
	specs := make([]runner.Spec, 0, len(overlays))
	for _, ov := range overlays {
		w := wl
		if ov != "off" {
			w.Compact = &workload.Compaction{Policy: ov}
		}
		specs = append(specs, sc.Spec(core.RBuddy(5, 1, true), w, core.Application))
	}
	return specs, overlays, nil
}

// CompactionTable runs the overlay comparison.
func CompactionTable(ctx context.Context, p *runner.Pool, sc Scale) ([]CompactRow, error) {
	specs, overlays, err := CompactionSpecs(sc)
	if err != nil {
		return nil, err
	}
	outs, err := runAll(ctx, p, specs)
	if err != nil {
		return nil, fmt.Errorf("compaction: %w", err)
	}
	rows := make([]CompactRow, len(outs))
	for i, out := range outs {
		rows[i] = CompactRow{
			Overlay:       overlays[i],
			Percent:       out.Perf.Percent,
			MeanLatencyMS: out.Perf.MeanLatencyMS,
			P95LatencyMS:  out.Perf.P95LatencyMS,
			Compaction:    out.Perf.Compaction,
		}
	}
	return rows, nil
}
