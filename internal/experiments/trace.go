package experiments

import (
	"context"
	"fmt"

	"rofs/internal/core"
	"rofs/internal/runner"
	"rofs/internal/workload"
)

// The trace experiment replays one open-loop arrival trace — imported from
// a blktrace-style file or synthesized — against the §5 comparison set on
// the TP workload, so the same timestamped request stream is offered to
// every allocator and the differences are pure policy.

// TraceRow reports one allocator's replay of the trace.
type TraceRow struct {
	Policy string
	// Ops is the number of completed operations (trace arrivals plus the
	// drain of in-flight work).
	Ops int64
	// Percent is throughput as a percent of the disk system's maximum
	// sustained bandwidth.
	Percent       float64
	MeanLatencyMS float64
	P95LatencyMS  float64
}

// DemoTrace synthesizes a small deterministic trace covering all four
// operations — the built-in input when no -arrival-trace file is given.
func DemoTrace() *workload.Arrivals {
	const n = 4000
	pattern := []string{"read", "write", "read", "extend", "read", "write", "read", "dealloc"}
	ops := make([]workload.TraceOp, n)
	for i := range ops {
		ops[i] = workload.TraceOp{
			AtMS:   float64(i) * 5,
			Op:     pattern[i%len(pattern)],
			Client: i % 64,
		}
	}
	return &workload.Arrivals{Mode: workload.ArrivalsTrace, Trace: ops}
}

// TraceSpecs declares one application-test replay of the trace per §5
// policy on the TP workload.
func TraceSpecs(sc Scale, a *workload.Arrivals) ([]runner.Spec, error) {
	if a == nil {
		a = DemoTrace()
	}
	wl, err := sc.Workload("TP")
	if err != nil {
		return nil, err
	}
	policies, err := sc.Figure6Policies("TP")
	if err != nil {
		return nil, err
	}
	wl.Arrivals = a
	specs := make([]runner.Spec, 0, len(policies))
	for _, p := range policies {
		specs = append(specs, sc.Spec(p, wl, core.Application))
	}
	return specs, nil
}

// TraceTable replays the trace (nil: DemoTrace) across the §5 policies.
func TraceTable(ctx context.Context, p *runner.Pool, sc Scale, a *workload.Arrivals) ([]TraceRow, error) {
	specs, err := TraceSpecs(sc, a)
	if err != nil {
		return nil, err
	}
	outs, err := runAll(ctx, p, specs)
	if err != nil {
		return nil, fmt.Errorf("trace replay: %w", err)
	}
	rows := make([]TraceRow, len(outs))
	for i, out := range outs {
		rows[i] = TraceRow{
			Policy:        specs[i].Policy.Name(),
			Ops:           out.Perf.Ops,
			Percent:       out.Perf.Percent,
			MeanLatencyMS: out.Perf.MeanLatencyMS,
			P95LatencyMS:  out.Perf.P95LatencyMS,
		}
	}
	return rows, nil
}
