package experiments

import (
	"context"
	"fmt"

	"rofs/internal/core"
	"rofs/internal/runner"
	"rofs/internal/workload"
)

// The aging experiment runs the §5 comparison set through days of
// simulated create/grow/truncate/delete churn on the TS workload — the one
// whose small, short-lived files exercise free-space decay — and reports
// the free-space shape over simulated time (Sears & van Ingen's
// fragmentation-over-age methodology). The churn is space-only (no disk
// timing), so the horizon is bounded by an operation budget, not by event
// cost: think times are dilated by a fixed deterministic factor so the
// expected operation count over the multi-day horizon stays near the
// budget while the churn's mix and relative rates are preserved.

// agingHorizon returns the simulated-time horizon and operation budget for
// a scale: three days of churn at full scale, one day at bench scale.
func agingHorizon(sc Scale) (horizonMS, opsBudget float64) {
	const dayMS = 24 * 3600 * 1000
	if sc.Name == "full" {
		return 3 * dayMS, 2_000_000
	}
	return 1 * dayMS, 150_000
}

// agingDilate returns a deep copy of the workload with think times (and
// the start-stagger horizon) multiplied so the expected closed-loop
// operation count over horizonMS is at most opsBudget. The factor is pure
// arithmetic on the workload parameters, so it folds into the runner.Spec
// cache key through the Types values.
func agingDilate(wl workload.Workload, horizonMS, opsBudget float64) workload.Workload {
	out := workload.Workload{Name: wl.Name, Types: make([]workload.FileType, len(wl.Types))}
	copy(out.Types, wl.Types)
	var perMS float64
	for i := range out.Types {
		if out.Types[i].ProcessTimeMS > 0 {
			perMS += float64(out.Types[i].Users) / out.Types[i].ProcessTimeMS
		}
	}
	factor := perMS * horizonMS / opsBudget
	if factor < 1 {
		factor = 1
	}
	for i := range out.Types {
		out.Types[i].ProcessTimeMS *= factor
		out.Types[i].HitFreqMS *= factor
	}
	return out
}

// AgingRow is one allocator's aging run: the sampled free-space decay
// timeline over the churn horizon.
type AgingRow struct {
	Policy string
	Result core.AgingResult
}

// AgingSpecs declares one aging run per §5 policy on the dilated TS
// workload.
func AgingSpecs(sc Scale) ([]runner.Spec, error) {
	wl, err := sc.Workload("TS")
	if err != nil {
		return nil, err
	}
	policies, err := sc.Figure6Policies("TS")
	if err != nil {
		return nil, err
	}
	horizon, budget := agingHorizon(sc)
	aged := agingDilate(wl, horizon, budget)
	specs := make([]runner.Spec, 0, len(policies))
	for _, p := range policies {
		sp := sc.Spec(p, aged, core.Aging)
		sp.MaxSimMS = horizon
		specs = append(specs, sp)
	}
	return specs, nil
}

// AgingTable runs the aging experiment: per-allocator free-space decay
// over days of simulated churn.
func AgingTable(ctx context.Context, p *runner.Pool, sc Scale) ([]AgingRow, error) {
	specs, err := AgingSpecs(sc)
	if err != nil {
		return nil, err
	}
	outs, err := runAll(ctx, p, specs)
	if err != nil {
		return nil, fmt.Errorf("aging: %w", err)
	}
	rows := make([]AgingRow, len(outs))
	for i, out := range outs {
		rows[i] = AgingRow{Policy: specs[i].Policy.Name(), Result: out.Aging}
	}
	return rows, nil
}
