package experiments

import (
	"context"
	"fmt"

	"rofs/internal/alloc/extent"
	"rofs/internal/core"
	"rofs/internal/disk"
	"rofs/internal/runner"
	"rofs/internal/units"
	"rofs/internal/workload"
)

// The ablations implement the further-work questions the paper's §6
// raises: the impact of RAID on small writes, sensitivity to the stripe
// unit, varying file-size mixes, and an isolated clustering/grow-factor
// study. Like the tables and figures, each declares its runs as Specs
// and assembles cells from the pooled outcomes.

// LayoutCell reports one disk-system layout's throughput (ablation A1).
type LayoutCell struct {
	Layout   disk.Layout
	Degraded bool
	Workload string
	AppPct   float64
	SeqPct   float64
}

// Name renders the layout, marking degraded mode.
func (c LayoutCell) Name() string {
	if c.Degraded {
		return c.Layout.String() + "-degraded"
	}
	return c.Layout.String()
}

// AblationRAID compares plain striping against RAID-5, mirroring, and
// parity striping under the restricted buddy policy. The paper predicts
// "the impact of a RAID in the underlying disk system will reduce the
// small write performance" — visible in the TP application numbers, which
// are dominated by 8K random writes paying read-modify-write.
//
// Redundant layouts shrink the data capacity, so the workload is divided
// by the capacity ratio (and the fill phase restores the 90% measurement
// band); at least four drives are used so RAID-5 is non-degenerate.
func AblationRAID(ctx context.Context, pool *runner.Pool, sc Scale, wlName string) ([]LayoutCell, error) {
	type variant struct {
		layout   disk.Layout
		degraded bool
	}
	variants := []variant{
		{disk.Striped, false},
		{disk.RAID5, false},
		{disk.RAID5, true},
		{disk.Mirrored, false},
		{disk.ParityStriped, false},
	}
	var specs []runner.Spec
	for _, v := range variants {
		dcfg := sc.Disk
		dcfg.Layout = v.layout
		if dcfg.NDisks < 4 {
			dcfg.NDisks = 4
		}
		wl, err := sc.Workload(wlName)
		if err != nil {
			return nil, err
		}
		// Capacity relative to the plain-striped baseline at the bench's
		// original drive count, as an integer divisor for the workload.
		baseCap := sc.Disk.Geometry.Capacity() * int64(sc.Disk.NDisks)
		layoutCap := dcfg.Geometry.Capacity() * int64(dcfg.NDisks)
		switch v.layout {
		case disk.Mirrored:
			layoutCap /= 2
		case disk.RAID5, disk.ParityStriped:
			layoutCap = layoutCap * int64(dcfg.NDisks-1) / int64(dcfg.NDisks)
		}
		if div := (baseCap + layoutCap - 1) / layoutCap; div > 1 {
			if wl.Name == "TS" {
				wl = wl.Scale(div, 1)
			} else {
				wl = wl.Scale(1, div)
			}
		}
		for _, kind := range []core.TestKind{core.Application, core.Sequential} {
			sp := sc.Spec(core.RBuddy(5, 1, true), wl, kind)
			sp.Disk = dcfg
			sp.Degraded = v.degraded
			specs = append(specs, sp)
		}
	}
	outs, err := runAll(ctx, pool, specs)
	if err != nil {
		return nil, fmt.Errorf("raid ablation: %w", err)
	}
	cells := make([]LayoutCell, len(variants))
	for i, v := range variants {
		cells[i] = LayoutCell{
			Layout: v.layout, Degraded: v.degraded, Workload: specs[2*i].Workload.Name,
			AppPct: outs[2*i].Perf.Percent, SeqPct: outs[2*i+1].Perf.Percent,
		}
	}
	return cells, nil
}

// StripeCell reports throughput at one stripe-unit size (ablation A2).
type StripeCell struct {
	StripeBytes int64
	Workload    string
	AppPct      float64
	SeqPct      float64
}

// AblationStripeUnit sweeps the stripe unit ("the different policies may
// show different sensitivities to the stripe size parameter", §6).
func AblationStripeUnit(ctx context.Context, pool *runner.Pool, sc Scale, wlName string) ([]StripeCell, error) {
	wl, err := sc.Workload(wlName)
	if err != nil {
		return nil, err
	}
	stripes := []int64{8 * units.KB, 24 * units.KB, 96 * units.KB, 384 * units.KB}
	var specs []runner.Spec
	for _, su := range stripes {
		dcfg := sc.Disk
		dcfg.StripeUnitBytes = su
		for _, kind := range []core.TestKind{core.Application, core.Sequential} {
			sp := sc.Spec(core.RBuddy(5, 1, true), wl, kind)
			sp.Disk = dcfg
			specs = append(specs, sp)
		}
	}
	outs, err := runAll(ctx, pool, specs)
	if err != nil {
		return nil, fmt.Errorf("stripe ablation: %w", err)
	}
	cells := make([]StripeCell, len(stripes))
	for i, su := range stripes {
		cells[i] = StripeCell{
			StripeBytes: su, Workload: wl.Name,
			AppPct: outs[2*i].Perf.Percent, SeqPct: outs[2*i+1].Perf.Percent,
		}
	}
	return cells, nil
}

// MixCell reports fragmentation for one large:small space ratio (A3).
type MixCell struct {
	LargeShare  float64 // fraction of initial space in large files
	Policy      string
	InternalPct float64
	ExternalPct float64
}

// AblationFileMix varies the proportion of large and small files in a
// TS-like workload ("varying the file distributions so that the
// proportion of large and small files is not constant may affect
// fragmentation results", §6) and measures restricted buddy and extent
// fragmentation.
func AblationFileMix(ctx context.Context, pool *runner.Pool, sc Scale) ([]MixCell, error) {
	base, err := sc.Workload("TS")
	if err != nil {
		return nil, err
	}
	small, large := base.Types[0], base.Types[1]
	totalSmall := int64(small.Files) * small.InitialBytes
	totalLarge := int64(large.Files) * large.InitialBytes
	total := totalSmall + totalLarge
	ranges, err := sc.ExtentRanges("TS", 3)
	if err != nil {
		return nil, err
	}
	var specs []runner.Spec
	var cells []MixCell
	for _, share := range []float64{0.1, 0.3, 0.5, 0.7} {
		wl := workload.Workload{Name: fmt.Sprintf("TS-mix%.0f", share*100), Types: []workload.FileType{small, large}}
		wl.Types[0].Files = int(float64(total) * (1 - share) / float64(small.InitialBytes))
		wl.Types[1].Files = int(float64(total) * share / float64(large.InitialBytes))
		if wl.Types[0].Files < 1 {
			wl.Types[0].Files = 1
		}
		if wl.Types[1].Files < 1 {
			wl.Types[1].Files = 1
		}
		for _, p := range []core.PolicySpec{core.RBuddy(5, 1, true), core.Extent(extent.FirstFit, ranges)} {
			specs = append(specs, sc.Spec(p, wl, core.Allocation))
			cells = append(cells, MixCell{LargeShare: share, Policy: p.Name()})
		}
	}
	outs, err := runAll(ctx, pool, specs)
	if err != nil {
		return nil, fmt.Errorf("mix ablation: %w", err)
	}
	for i, out := range outs {
		cells[i].InternalPct = out.Frag.InternalPct
		cells[i].ExternalPct = out.Frag.ExternalPct
	}
	return cells, nil
}

// SchedulerCell reports throughput and operation latency under one queue
// discipline (A5).
type SchedulerCell struct {
	Scheduler     disk.Scheduler
	Workload      string
	AppPct        float64
	SeqPct        float64
	MeanLatencyMS float64
	P95LatencyMS  float64
}

// AblationScheduler compares SSTF, SCAN, and FCFS drive scheduling — the
// lever behind the application-throughput magnitudes with 20+ concurrent
// users (deep per-drive queues make seek-sorting decisive), and a
// throughput-vs-tail-latency trade the latency columns expose.
func AblationScheduler(ctx context.Context, pool *runner.Pool, sc Scale, wlName string) ([]SchedulerCell, error) {
	wl, err := sc.Workload(wlName)
	if err != nil {
		return nil, err
	}
	scheds := []disk.Scheduler{disk.SSTF, disk.SCAN, disk.FCFS}
	var specs []runner.Spec
	for _, sched := range scheds {
		dcfg := sc.Disk
		dcfg.Scheduler = sched
		for _, kind := range []core.TestKind{core.Application, core.Sequential} {
			sp := sc.Spec(core.RBuddy(5, 1, true), wl, kind)
			sp.Disk = dcfg
			specs = append(specs, sp)
		}
	}
	outs, err := runAll(ctx, pool, specs)
	if err != nil {
		return nil, fmt.Errorf("scheduler ablation: %w", err)
	}
	cells := make([]SchedulerCell, len(scheds))
	for i, sched := range scheds {
		app := outs[2*i].Perf
		cells[i] = SchedulerCell{
			Scheduler:     sched,
			Workload:      wl.Name,
			AppPct:        app.Percent,
			SeqPct:        outs[2*i+1].Perf.Percent,
			MeanLatencyMS: app.MeanLatencyMS,
			P95LatencyMS:  app.P95LatencyMS,
		}
	}
	return cells, nil
}

// ReallocCell reports fragmentation before and after Koch's reallocator
// (A6) on a filled buddy disk.
type ReallocCell struct {
	Workload              string
	InternalBefore, After float64
	ExternalBefore        float64
	ExternalAfter         float64
	Compacted, Failed     int
}

// AblationRealloc runs the allocation test under the buddy policy and then
// the nightly reallocator the paper excluded (§4.1): Koch reported most
// files in three extents with under 4% internal fragmentation once the
// rearranger ran.
func AblationRealloc(ctx context.Context, pool *runner.Pool, sc Scale) ([]ReallocCell, error) {
	names := []string{"SC", "TP", "TS"}
	var specs []runner.Spec
	for _, name := range names {
		wl, err := sc.Workload(name)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sc.Spec(core.Buddy(), wl, core.AllocationRealloc))
	}
	outs, err := runAll(ctx, pool, specs)
	if err != nil {
		return nil, fmt.Errorf("realloc ablation: %w", err)
	}
	cells := make([]ReallocCell, len(names))
	for i, name := range names {
		res := outs[i].Realloc
		cells[i] = ReallocCell{
			Workload:       name,
			InternalBefore: res.Before.InternalPct,
			After:          res.After.InternalPct,
			ExternalBefore: res.Before.ExternalPct,
			ExternalAfter:  res.After.ExternalPct,
			Compacted:      res.Compacted,
			Failed:         res.Failed,
		}
	}
	return cells, nil
}

// MetaCell reports a policy's metadata footprint after the allocation
// test (the [STON81] comparison the paper's introduction cites).
type MetaCell struct {
	Policy        string
	Workload      string
	Files         int
	Descriptors   int64
	MetaBytes     int64
	MetaPctOfData float64
}

// MetadataTable compares the §5 policy set's metadata burden on each
// workload: fixed-block systems need a pointer per block, the multiblock
// policies a handful of descriptors per file.
func MetadataTable(ctx context.Context, pool *runner.Pool, sc Scale) ([]MetaCell, error) {
	var specs []runner.Spec
	for _, name := range []string{"SC", "TP", "TS"} {
		wl, err := sc.Workload(name)
		if err != nil {
			return nil, err
		}
		ps, err := sc.Figure6Policies(name)
		if err != nil {
			return nil, err
		}
		for _, p := range ps {
			specs = append(specs, sc.Spec(p, wl, core.Allocation))
		}
	}
	outs, err := runAll(ctx, pool, specs)
	if err != nil {
		return nil, fmt.Errorf("metadata table: %w", err)
	}
	cells := make([]MetaCell, len(outs))
	for i, out := range outs {
		cells[i] = MetaCell{
			Policy:        specs[i].Policy.Name(),
			Workload:      specs[i].Workload.Name,
			Files:         out.Frag.Meta.Files,
			Descriptors:   out.Frag.Meta.Descriptors,
			MetaBytes:     out.Frag.Meta.MetaBytes,
			MetaPctOfData: out.Frag.Meta.MetaPctOfData,
		}
	}
	return cells, nil
}

// SkewCell reports throughput at one hot-file skew (A7).
type SkewCell struct {
	HotSkew       float64
	AppPct        float64
	MeanLatencyMS float64
}

// AblationSkew runs TP with the relations' per-request file choice skewed
// Zipf(s) — "applying the allocation policies to genuine workloads" (§6):
// real databases hammer a few hot relations, which buys seek locality the
// paper's uniform model cannot see.
func AblationSkew(ctx context.Context, pool *runner.Pool, sc Scale) ([]SkewCell, error) {
	skews := []float64{0, 1.5, 3}
	var specs []runner.Spec
	for _, skew := range skews {
		wl, err := sc.Workload("TP")
		if err != nil {
			return nil, err
		}
		wl.Types[0].HotSkew = skew
		specs = append(specs, sc.Spec(core.RBuddy(5, 1, true), wl, core.Application))
	}
	outs, err := runAll(ctx, pool, specs)
	if err != nil {
		return nil, fmt.Errorf("skew ablation: %w", err)
	}
	cells := make([]SkewCell, len(skews))
	for i, skew := range skews {
		cells[i] = SkewCell{HotSkew: skew, AppPct: outs[i].Perf.Percent, MeanLatencyMS: outs[i].Perf.MeanLatencyMS}
	}
	return cells, nil
}

// FreeListCell reports one fixed-block free-list discipline (A8).
type FreeListCell struct {
	Policy string
	SeqPct float64
	AppPct float64
}

// AblationFreeList contrasts the V7-style LIFO free list against an
// address-ordered one on the aged TS workload — isolating how much of the
// fixed-block baseline's penalty is free-list aging versus block-at-a-time
// transfer.
func AblationFreeList(ctx context.Context, pool *runner.Pool, sc Scale) ([]FreeListCell, error) {
	wl, err := sc.Workload("TS")
	if err != nil {
		return nil, err
	}
	policies := []core.PolicySpec{
		core.Fixed(4 * units.KB),
		core.FixedOrdered(4 * units.KB),
	}
	var specs []runner.Spec
	for _, p := range policies {
		specs = append(specs,
			sc.Spec(p, wl, core.Sequential),
			sc.Spec(p, wl, core.Application))
	}
	outs, err := runAll(ctx, pool, specs)
	if err != nil {
		return nil, fmt.Errorf("free-list ablation: %w", err)
	}
	cells := make([]FreeListCell, len(policies))
	for i, p := range policies {
		cells[i] = FreeListCell{Policy: p.Name(), SeqPct: outs[2*i].Perf.Percent, AppPct: outs[2*i+1].Perf.Percent}
	}
	return cells, nil
}

// ClusterCell isolates the clustering and grow-factor effects on the TS
// workload (§4.2's discussion): 5-size restricted buddy, the four
// combinations, sequential throughput and internal fragmentation.
type ClusterCell struct {
	Clustered   bool
	GrowFactor  float64
	SeqPct      float64
	InternalPct float64
}

// AblationClustering runs the four {clustered}×{g} combinations on TS.
func AblationClustering(ctx context.Context, pool *runner.Pool, sc Scale) ([]ClusterCell, error) {
	wl, err := sc.Workload("TS")
	if err != nil {
		return nil, err
	}
	var specs []runner.Spec
	var cells []ClusterCell
	for _, clustered := range []bool{true, false} {
		for _, g := range []float64{1, 2} {
			p := core.RBuddy(5, g, clustered)
			specs = append(specs,
				sc.Spec(p, wl, core.Sequential),
				sc.Spec(p, wl, core.Allocation))
			cells = append(cells, ClusterCell{Clustered: clustered, GrowFactor: g})
		}
	}
	outs, err := runAll(ctx, pool, specs)
	if err != nil {
		return nil, fmt.Errorf("clustering ablation: %w", err)
	}
	for i := range cells {
		cells[i].SeqPct = outs[2*i].Perf.Percent
		cells[i].InternalPct = outs[2*i+1].Frag.InternalPct
	}
	return cells, nil
}
