package experiments

import (
	"fmt"

	"rofs/internal/alloc/extent"
	"rofs/internal/core"
	"rofs/internal/disk"
	"rofs/internal/units"
	"rofs/internal/workload"
)

// The ablations implement the further-work questions the paper's §6
// raises: the impact of RAID on small writes, sensitivity to the stripe
// unit, varying file-size mixes, and an isolated clustering/grow-factor
// study.

// LayoutCell reports one disk-system layout's throughput (ablation A1).
type LayoutCell struct {
	Layout   disk.Layout
	Degraded bool
	Workload string
	AppPct   float64
	SeqPct   float64
}

// Name renders the layout, marking degraded mode.
func (c LayoutCell) Name() string {
	if c.Degraded {
		return c.Layout.String() + "-degraded"
	}
	return c.Layout.String()
}

// AblationRAID compares plain striping against RAID-5, mirroring, and
// parity striping under the restricted buddy policy. The paper predicts
// "the impact of a RAID in the underlying disk system will reduce the
// small write performance" — visible in the TP application numbers, which
// are dominated by 8K random writes paying read-modify-write.
//
// Redundant layouts shrink the data capacity, so the workload is divided
// by the capacity ratio (and the fill phase restores the 90% measurement
// band); at least four drives are used so RAID-5 is non-degenerate.
func AblationRAID(sc Scale, wlName string) ([]LayoutCell, error) {
	type variant struct {
		layout   disk.Layout
		degraded bool
	}
	variants := []variant{
		{disk.Striped, false},
		{disk.RAID5, false},
		{disk.RAID5, true},
		{disk.Mirrored, false},
		{disk.ParityStriped, false},
	}
	var cells []LayoutCell
	for _, v := range variants {
		layout := v.layout
		dcfg := sc.Disk
		dcfg.Layout = layout
		if dcfg.NDisks < 4 {
			dcfg.NDisks = 4
		}
		wl, err := sc.Workload(wlName)
		if err != nil {
			return nil, err
		}
		// Capacity relative to the plain-striped baseline at the bench's
		// original drive count, as an integer divisor for the workload.
		baseCap := sc.Disk.Geometry.Capacity() * int64(sc.Disk.NDisks)
		layoutCap := dcfg.Geometry.Capacity() * int64(dcfg.NDisks)
		switch layout {
		case disk.Mirrored:
			layoutCap /= 2
		case disk.RAID5, disk.ParityStriped:
			layoutCap = layoutCap * int64(dcfg.NDisks-1) / int64(dcfg.NDisks)
		}
		if div := (baseCap + layoutCap - 1) / layoutCap; div > 1 {
			if wl.Name == "TS" {
				wl = wl.Scale(div, 1)
			} else {
				wl = wl.Scale(1, div)
			}
		}
		cfg := sc.Config(core.RBuddy(5, 1, true), wl)
		cfg.Disk = dcfg
		cfg.Degraded = v.degraded
		app, err := core.RunApplication(cfg)
		if err != nil {
			return nil, fmt.Errorf("raid ablation %v app: %w", layout, err)
		}
		seq, err := core.RunSequential(cfg)
		if err != nil {
			return nil, fmt.Errorf("raid ablation %v seq: %w", layout, err)
		}
		cells = append(cells, LayoutCell{
			Layout: layout, Degraded: v.degraded, Workload: wl.Name,
			AppPct: app.Percent, SeqPct: seq.Percent,
		})
	}
	return cells, nil
}

// StripeCell reports throughput at one stripe-unit size (ablation A2).
type StripeCell struct {
	StripeBytes int64
	Workload    string
	AppPct      float64
	SeqPct      float64
}

// AblationStripeUnit sweeps the stripe unit ("the different policies may
// show different sensitivities to the stripe size parameter", §6).
func AblationStripeUnit(sc Scale, wlName string) ([]StripeCell, error) {
	wl, err := sc.Workload(wlName)
	if err != nil {
		return nil, err
	}
	var cells []StripeCell
	for _, su := range []int64{8 * units.KB, 24 * units.KB, 96 * units.KB, 384 * units.KB} {
		dcfg := sc.Disk
		dcfg.StripeUnitBytes = su
		cfg := sc.Config(core.RBuddy(5, 1, true), wl)
		cfg.Disk = dcfg
		app, err := core.RunApplication(cfg)
		if err != nil {
			return nil, fmt.Errorf("stripe %s app: %w", units.Format(su), err)
		}
		seq, err := core.RunSequential(cfg)
		if err != nil {
			return nil, fmt.Errorf("stripe %s seq: %w", units.Format(su), err)
		}
		cells = append(cells, StripeCell{StripeBytes: su, Workload: wl.Name, AppPct: app.Percent, SeqPct: seq.Percent})
	}
	return cells, nil
}

// MixCell reports fragmentation for one large:small space ratio (A3).
type MixCell struct {
	LargeShare  float64 // fraction of initial space in large files
	Policy      string
	InternalPct float64
	ExternalPct float64
}

// AblationFileMix varies the proportion of large and small files in a
// TS-like workload ("varying the file distributions so that the
// proportion of large and small files is not constant may affect
// fragmentation results", §6) and measures restricted buddy and extent
// fragmentation.
func AblationFileMix(sc Scale) ([]MixCell, error) {
	base, err := sc.Workload("TS")
	if err != nil {
		return nil, err
	}
	small, large := base.Types[0], base.Types[1]
	totalSmall := int64(small.Files) * small.InitialBytes
	totalLarge := int64(large.Files) * large.InitialBytes
	total := totalSmall + totalLarge
	ranges, err := sc.ExtentRanges("TS", 3)
	if err != nil {
		return nil, err
	}
	var cells []MixCell
	for _, share := range []float64{0.1, 0.3, 0.5, 0.7} {
		wl := workload.Workload{Name: fmt.Sprintf("TS-mix%.0f", share*100), Types: []workload.FileType{small, large}}
		wl.Types[0].Files = int(float64(total) * (1 - share) / float64(small.InitialBytes))
		wl.Types[1].Files = int(float64(total) * share / float64(large.InitialBytes))
		if wl.Types[0].Files < 1 {
			wl.Types[0].Files = 1
		}
		if wl.Types[1].Files < 1 {
			wl.Types[1].Files = 1
		}
		for _, p := range []core.PolicySpec{core.RBuddy(5, 1, true), core.Extent(extent.FirstFit, ranges)} {
			frag, err := core.RunAllocation(sc.Config(p, wl))
			if err != nil {
				return nil, fmt.Errorf("mix %.0f%% %s: %w", share*100, p.Name(), err)
			}
			cells = append(cells, MixCell{
				LargeShare:  share,
				Policy:      p.Name(),
				InternalPct: frag.InternalPct,
				ExternalPct: frag.ExternalPct,
			})
		}
	}
	return cells, nil
}

// SchedulerCell reports throughput and operation latency under one queue
// discipline (A5).
type SchedulerCell struct {
	Scheduler     disk.Scheduler
	Workload      string
	AppPct        float64
	SeqPct        float64
	MeanLatencyMS float64
	P95LatencyMS  float64
}

// AblationScheduler compares SSTF, SCAN, and FCFS drive scheduling — the
// lever behind the application-throughput magnitudes with 20+ concurrent
// users (deep per-drive queues make seek-sorting decisive), and a
// throughput-vs-tail-latency trade the latency columns expose.
func AblationScheduler(sc Scale, wlName string) ([]SchedulerCell, error) {
	wl, err := sc.Workload(wlName)
	if err != nil {
		return nil, err
	}
	var cells []SchedulerCell
	for _, sched := range []disk.Scheduler{disk.SSTF, disk.SCAN, disk.FCFS} {
		dcfg := sc.Disk
		dcfg.Scheduler = sched
		cfg := sc.Config(core.RBuddy(5, 1, true), wl)
		cfg.Disk = dcfg
		app, err := core.RunApplication(cfg)
		if err != nil {
			return nil, fmt.Errorf("scheduler %v app: %w", sched, err)
		}
		seq, err := core.RunSequential(cfg)
		if err != nil {
			return nil, fmt.Errorf("scheduler %v seq: %w", sched, err)
		}
		cells = append(cells, SchedulerCell{
			Scheduler:     sched,
			Workload:      wl.Name,
			AppPct:        app.Percent,
			SeqPct:        seq.Percent,
			MeanLatencyMS: app.MeanLatencyMS,
			P95LatencyMS:  app.P95LatencyMS,
		})
	}
	return cells, nil
}

// ReallocCell reports fragmentation before and after Koch's reallocator
// (A6) on a filled buddy disk.
type ReallocCell struct {
	Workload              string
	InternalBefore, After float64
	ExternalBefore        float64
	ExternalAfter         float64
	Compacted, Failed     int
}

// AblationRealloc runs the allocation test under the buddy policy and then
// the nightly reallocator the paper excluded (§4.1): Koch reported most
// files in three extents with under 4% internal fragmentation once the
// rearranger ran.
func AblationRealloc(sc Scale) ([]ReallocCell, error) {
	var cells []ReallocCell
	for _, name := range []string{"SC", "TP", "TS"} {
		wl, err := sc.Workload(name)
		if err != nil {
			return nil, err
		}
		res, err := core.RunAllocationWithReallocation(sc.Config(core.Buddy(), wl))
		if err != nil {
			return nil, fmt.Errorf("realloc %s: %w", name, err)
		}
		cells = append(cells, ReallocCell{
			Workload:       name,
			InternalBefore: res.Before.InternalPct,
			After:          res.After.InternalPct,
			ExternalBefore: res.Before.ExternalPct,
			ExternalAfter:  res.After.ExternalPct,
			Compacted:      res.Compacted,
			Failed:         res.Failed,
		})
	}
	return cells, nil
}

// MetaCell reports a policy's metadata footprint after the allocation
// test (the [STON81] comparison the paper's introduction cites).
type MetaCell struct {
	Policy        string
	Workload      string
	Files         int
	Descriptors   int64
	MetaBytes     int64
	MetaPctOfData float64
}

// MetadataTable compares the §5 policy set's metadata burden on each
// workload: fixed-block systems need a pointer per block, the multiblock
// policies a handful of descriptors per file.
func MetadataTable(sc Scale) ([]MetaCell, error) {
	var cells []MetaCell
	for _, name := range []string{"SC", "TP", "TS"} {
		wl, err := sc.Workload(name)
		if err != nil {
			return nil, err
		}
		specs, err := sc.Figure6Policies(name)
		if err != nil {
			return nil, err
		}
		for _, p := range specs {
			frag, err := core.RunAllocation(sc.Config(p, wl))
			if err != nil {
				return nil, fmt.Errorf("meta %s %s: %w", name, p.Name(), err)
			}
			cells = append(cells, MetaCell{
				Policy:        p.Name(),
				Workload:      name,
				Files:         frag.Meta.Files,
				Descriptors:   frag.Meta.Descriptors,
				MetaBytes:     frag.Meta.MetaBytes,
				MetaPctOfData: frag.Meta.MetaPctOfData,
			})
		}
	}
	return cells, nil
}

// SkewCell reports throughput at one hot-file skew (A7).
type SkewCell struct {
	HotSkew       float64
	AppPct        float64
	MeanLatencyMS float64
}

// AblationSkew runs TP with the relations' per-request file choice skewed
// Zipf(s) — "applying the allocation policies to genuine workloads" (§6):
// real databases hammer a few hot relations, which buys seek locality the
// paper's uniform model cannot see.
func AblationSkew(sc Scale) ([]SkewCell, error) {
	var cells []SkewCell
	for _, skew := range []float64{0, 1.5, 3} {
		wl, err := sc.Workload("TP")
		if err != nil {
			return nil, err
		}
		wl.Types[0].HotSkew = skew
		app, err := core.RunApplication(sc.Config(core.RBuddy(5, 1, true), wl))
		if err != nil {
			return nil, fmt.Errorf("skew %g: %w", skew, err)
		}
		cells = append(cells, SkewCell{HotSkew: skew, AppPct: app.Percent, MeanLatencyMS: app.MeanLatencyMS})
	}
	return cells, nil
}

// AgingCell reports one fixed-block free-list discipline (A8).
type AgingCell struct {
	Policy string
	SeqPct float64
	AppPct float64
}

// AblationAging contrasts the V7-style LIFO free list against an
// address-ordered one on the aged TS workload — isolating how much of the
// fixed-block baseline's penalty is free-list aging versus block-at-a-time
// transfer.
func AblationAging(sc Scale) ([]AgingCell, error) {
	wl, err := sc.Workload("TS")
	if err != nil {
		return nil, err
	}
	var cells []AgingCell
	for _, spec := range []core.PolicySpec{
		core.Fixed(4 * units.KB),
		core.FixedOrdered(4 * units.KB),
	} {
		cfg := sc.Config(spec, wl)
		seq, err := core.RunSequential(cfg)
		if err != nil {
			return nil, fmt.Errorf("aging %s seq: %w", spec.Name(), err)
		}
		app, err := core.RunApplication(cfg)
		if err != nil {
			return nil, fmt.Errorf("aging %s app: %w", spec.Name(), err)
		}
		cells = append(cells, AgingCell{Policy: spec.Name(), SeqPct: seq.Percent, AppPct: app.Percent})
	}
	return cells, nil
}

// AblationClustering isolates the clustering and grow-factor effects on
// the TS workload (§4.2's discussion): 5-size restricted buddy, the four
// combinations, sequential throughput and internal fragmentation.
type ClusterCell struct {
	Clustered   bool
	GrowFactor  int64
	SeqPct      float64
	InternalPct float64
}

// AblationClustering runs the four {clustered}×{g} combinations on TS.
func AblationClustering(sc Scale) ([]ClusterCell, error) {
	wl, err := sc.Workload("TS")
	if err != nil {
		return nil, err
	}
	var cells []ClusterCell
	for _, clustered := range []bool{true, false} {
		for _, g := range []int64{1, 2} {
			p := core.RBuddy(5, g, clustered)
			cfg := sc.Config(p, wl)
			seq, err := core.RunSequential(cfg)
			if err != nil {
				return nil, fmt.Errorf("clustering seq: %w", err)
			}
			frag, err := core.RunAllocation(cfg)
			if err != nil {
				return nil, fmt.Errorf("clustering alloc: %w", err)
			}
			cells = append(cells, ClusterCell{
				Clustered:   clustered,
				GrowFactor:  g,
				SeqPct:      seq.Percent,
				InternalPct: frag.InternalPct,
			})
		}
	}
	return cells, nil
}
