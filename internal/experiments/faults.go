package experiments

import (
	"context"
	"fmt"

	"rofs/internal/core"
	"rofs/internal/disk"
	"rofs/internal/fault"
	"rofs/internal/runner"
	"rofs/internal/units"
)

// FaultCell compares one allocation policy's application throughput on a
// healthy RAID-5 array against the same run under a fault scenario, with
// the faulted run's recovery story alongside.
type FaultCell struct {
	Workload string
	Policy   string

	HealthyPct float64
	FaultedPct float64

	// From the faulted run's fault report.
	DriveFailures   int64
	TransientErrors int64
	Retries         int64
	PermanentErrors int64
	DegradedMS      float64
	RebuildDone     bool
	RebuildBytes    int64
}

// DefaultFaultScenario is the canonical scenario FaultTable (and the
// rofs-tables `faults` experiment) uses when the caller does not supply
// one: drive 1 fails a sixth of the way into the run, a hot spare
// rebuilds in 4M chunks, and a light transient-error rate exercises the
// retry path throughout.
func DefaultFaultScenario(sc Scale) fault.Scenario {
	return fault.Scenario{
		FailAtMS:          sc.MaxSimMS / 6,
		FailDrive:         1,
		TransientProb:     0.001,
		Rebuild:           true,
		RebuildChunkBytes: 4 * units.MB,
	}
}

// FaultTable runs the §5 policy comparison (Figure 6's four allocation
// methods) on a RAID-5 array twice per policy — once healthy, once under
// the given fault scenario — and reports the throughput cost of the
// failure/rebuild window next to the recovery counters. A zero scenario
// selects DefaultFaultScenario.
//
// The array follows the RAID ablation's conventions: at least four
// drives so RAID-5 is non-degenerate, with the workload divided by the
// capacity ratio against the plain-striped baseline.
func FaultTable(ctx context.Context, pool *runner.Pool, sc Scale, wlName string, faults fault.Scenario) ([]FaultCell, error) {
	if !faults.Enabled() {
		faults = DefaultFaultScenario(sc)
	}
	if err := faults.Validate(); err != nil {
		return nil, fmt.Errorf("fault table: %w", err)
	}

	dcfg := sc.Disk
	dcfg.Layout = disk.RAID5
	if dcfg.NDisks < 4 {
		dcfg.NDisks = 4
	}
	wl, err := sc.Workload(wlName)
	if err != nil {
		return nil, err
	}
	baseCap := sc.Disk.Geometry.Capacity() * int64(sc.Disk.NDisks)
	layoutCap := dcfg.Geometry.Capacity() * int64(dcfg.NDisks)
	layoutCap = layoutCap * int64(dcfg.NDisks-1) / int64(dcfg.NDisks)
	if div := (baseCap + layoutCap - 1) / layoutCap; div > 1 {
		if wl.Name == "TS" {
			wl = wl.Scale(div, 1)
		} else {
			wl = wl.Scale(1, div)
		}
	}

	policies, err := sc.Figure6Policies(wlName)
	if err != nil {
		return nil, err
	}
	var specs []runner.Spec
	for _, policy := range policies {
		healthy := sc.Spec(policy, wl, core.Application)
		healthy.Disk = dcfg
		faulted := healthy
		faulted.Faults = faults
		specs = append(specs, healthy, faulted)
	}
	outs, err := runAll(ctx, pool, specs)
	if err != nil {
		return nil, fmt.Errorf("fault table: %w", err)
	}
	cells := make([]FaultCell, len(policies))
	for i, policy := range policies {
		healthy, faulted := outs[2*i].Perf, outs[2*i+1].Perf
		cell := FaultCell{
			Workload:   wl.Name,
			Policy:     policy.Name(),
			HealthyPct: healthy.Percent,
			FaultedPct: faulted.Percent,
		}
		if fr := faulted.Faults; fr != nil {
			cell.DriveFailures = fr.DriveFailures
			cell.TransientErrors = fr.TransientErrors
			cell.Retries = fr.Retries
			cell.PermanentErrors = fr.PermanentErrors
			cell.DegradedMS = fr.DegradedMS
			cell.RebuildDone = fr.Rebuilds > 0
			cell.RebuildBytes = fr.RebuildBytes
		}
		cells[i] = cell
	}
	return cells, nil
}
