package experiments

import (
	"context"
	"fmt"

	"rofs/internal/cluster"
	"rofs/internal/core"
	"rofs/internal/runner"
	"rofs/internal/workload"
)

// FleetCell reports one fleet configuration under open-loop TP load. The
// offered rate scales with the fleet (RatePerSec per instance), so the
// scaling rows ask the question a capacity planner would: does doubling
// the fleet hold per-instance throughput and latency?
type FleetCell struct {
	Instances     int
	Routing       string
	Admission     string
	RatePerSec    float64
	Percent       float64
	MeanLatencyMS float64
	P95LatencyMS  float64
	RejectPct     float64
	UtilSkew      float64
}

// fleetVariant is one row's shape; rate is the total offered rate.
type fleetVariant struct {
	cc   cluster.Config
	rate float64
}

// FleetTable runs the cluster-mode evaluation: a scaling column (N=1,2,4
// under proportional load, round-robin) and a routing/admission comparison
// at N=4 — the fleet counterpart of the paper's single-array tables.
func FleetTable(ctx context.Context, pool *runner.Pool, sc Scale) ([]FleetCell, error) {
	wl, err := sc.Workload("TP")
	if err != nil {
		return nil, err
	}
	const perInstanceRate = 100
	variants := []fleetVariant{
		// Scaling: proportional offered load, round-robin routing.
		{cluster.Config{Instances: 1}, perInstanceRate},
		{cluster.Config{Instances: 2}, 2 * perInstanceRate},
		{cluster.Config{Instances: 4}, 4 * perInstanceRate},
		// Routing comparison at N=4 under the same load.
		{cluster.Config{Instances: 4, Routing: cluster.RouteLeastLoaded, SnapshotMS: 250}, 4 * perInstanceRate},
		{cluster.Config{Instances: 4, Routing: cluster.RouteAffinity}, 4 * perInstanceRate},
		// Overload with admission control: double the load, shed the excess.
		{cluster.Config{Instances: 4, Admission: cluster.AdmitQueue, QueueCap: 64}, 8 * perInstanceRate},
	}
	specs := make([]runner.Spec, 0, len(variants))
	for _, v := range variants {
		w := wl
		w.Arrivals = &workload.Arrivals{RatePerSec: v.rate}
		sp := sc.Spec(core.RBuddy(5, 1, true), w, core.Application)
		sp.Cluster = v.cc
		specs = append(specs, sp)
	}
	outs, err := runAll(ctx, pool, specs)
	if err != nil {
		return nil, fmt.Errorf("fleet table: %w", err)
	}
	cells := make([]FleetCell, len(variants))
	for i, v := range variants {
		perf := outs[i].Perf
		c := FleetCell{
			Instances:     v.cc.Instances,
			Routing:       v.cc.EffectiveRouting(),
			Admission:     v.cc.Admission,
			RatePerSec:    v.rate,
			Percent:       perf.Percent,
			MeanLatencyMS: perf.MeanLatencyMS,
			P95LatencyMS:  perf.P95LatencyMS,
			UtilSkew:      1,
		}
		if cr := perf.Cluster; cr != nil {
			c.RejectPct = cr.RejectPct
			c.UtilSkew = cr.UtilSkew
		}
		if c.Admission == "" {
			c.Admission = "none"
		}
		cells[i] = c
	}
	return cells, nil
}
