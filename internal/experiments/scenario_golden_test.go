package experiments

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rofs/internal/cluster"
	"rofs/internal/core"
	"rofs/internal/runner"
	"rofs/internal/workload"
)

// Goldens for the scenario layer: the aging fragmentation timeline and
// the seeded compaction workload. Each renderer takes a fresh pool so
// the jobs / parallelism comparisons below exercise real re-execution —
// a shared pool would answer the second run from its cache and prove
// nothing.

// renderAgingGolden renders the full aging timeline — every sample of
// every policy at full float64 precision — from a fresh pool with the
// given worker count.
func renderAgingGolden(t *testing.T, jobs int) []byte {
	t.Helper()
	rows, err := AgingTable(context.Background(), runner.New(jobs), BenchScale())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, r := range rows {
		fmt.Fprintf(&buf, "# %s: %d ops, %d alloc fails, %d samples\n",
			r.Policy, r.Result.Ops, r.Result.AllocFails, len(r.Result.Samples))
		for _, s := range r.Result.Samples {
			fmt.Fprintf(&buf, "%s t=%.17g util=%.17g int=%.17g ext=%.17g frags=%d largest=%d files=%d mean=%.17g ops=%d fails=%d\n",
				r.Policy, s.SimMS, s.Utilization, s.InternalPct, s.ExternalPct,
				s.FreeFragments, s.LargestFreeUnits, s.Files, s.MeanFileBytes,
				s.Ops, s.AllocFails)
		}
	}
	return buf.Bytes()
}

// TestAgingGolden pins the aging fragmentation timeline byte-for-byte at
// bench scale, and proves the pool's -jobs knob is an execution detail:
// a serial pool and an 8-worker pool render identical bytes.
func TestAgingGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day aging simulation; skipped in -short")
	}
	got := renderAgingGolden(t, 1)
	path := filepath.Join("testdata", "aging_bench_seed42.golden")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden (run with -update to create): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("aging timeline diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
		}
	}
	if par := renderAgingGolden(t, 8); !bytes.Equal(got, par) {
		t.Fatalf("aging timeline differs between jobs=1 and jobs=8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", got, par)
	}
}

// renderCompactionGolden renders the compaction comparison (bare, tiered,
// leveled) plus a two-instance fleet run of the tiered overlay, from a
// fresh pool with the given worker count and fleet parallelism.
func renderCompactionGolden(t *testing.T, jobs, par int) []byte {
	t.Helper()
	ctx := context.Background()
	pool := runner.New(jobs)
	sc := BenchScale()
	var buf bytes.Buffer
	rows, err := CompactionTable(ctx, pool, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		fmt.Fprintf(&buf, "%s pct=%.17g mean=%.17g p95=%.17g", r.Overlay,
			r.Percent, r.MeanLatencyMS, r.P95LatencyMS)
		if c := r.Compaction; c != nil {
			fmt.Fprintf(&buf, " segs=%d merges=%d flush=%d mread=%d mwrite=%d amp=%.17g live=%v",
				c.Segments, c.Merges, c.FlushBytes, c.MergeReadBytes, c.MergeWriteBytes,
				c.WriteAmp, c.Live)
		}
		buf.WriteByte('\n')
	}

	// A compacting fleet: the overlay's merge engine runs inside each
	// instance, and the Parallelism knob must not leak into the results.
	wl, err := sc.Workload("TP")
	if err != nil {
		t.Fatal(err)
	}
	wl.Arrivals = &workload.Arrivals{RatePerSec: 100}
	wl.Compact = &workload.Compaction{Policy: workload.CompactTiered}
	sp := sc.Spec(core.RBuddy(5, 1, true), wl, core.Application)
	sp.Cluster = cluster.Config{Instances: 2, Parallelism: par}
	outs, err := runAll(ctx, pool, []runner.Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	perf := outs[0].Perf
	fmt.Fprintf(&buf, "fleet pct=%.17g mean=%.17g p95=%.17g", perf.Percent,
		perf.MeanLatencyMS, perf.P95LatencyMS)
	if c := perf.Compaction; c != nil {
		fmt.Fprintf(&buf, " segs=%d merges=%d amp=%.17g live=%v",
			c.Segments, c.Merges, c.WriteAmp, c.Live)
	}
	buf.WriteByte('\n')
	return buf.Bytes()
}

// TestCompactionGolden pins the seeded compaction workload byte-for-byte
// and proves both execution knobs are invisible to the results: pool
// -jobs (1 vs 8) and fleet -par (serial vs 4 workers).
func TestCompactionGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("compaction simulations; skipped in -short")
	}
	got := renderCompactionGolden(t, 1, 1)
	path := filepath.Join("testdata", "compact_bench_seed42.golden")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden (run with -update to create): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("compaction results diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
		}
	}
	if par := renderCompactionGolden(t, 8, 4); !bytes.Equal(got, par) {
		t.Fatalf("compaction results differ between jobs=1/par=1 and jobs=8/par=4:\n--- serial ---\n%s\n--- parallel ---\n%s", got, par)
	}
}
