package experiments

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rofs/internal/report"
	"rofs/internal/runner"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current simulator output")

// renderTable3Golden produces the golden artifact: the rendered table (what
// rofs-tables prints) plus every row at full float64 precision, so any
// behavioral drift in the simulator — however far below the table's one-
// decimal rounding — changes the bytes.
func renderTable3Golden(t *testing.T) []byte {
	t.Helper()
	rows, err := Table3(context.Background(), runner.New(0), BenchScale())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tbl := report.NewTable("Table 3: Results for Buddy Allocation",
		"Workload", "Internal%", "External%", "Application%", "Sequential%")
	for _, r := range rows {
		tbl.AddRow(r.Workload, r.InternalPct, r.ExternalPct, r.AppPct, r.SeqPct)
	}
	tbl.Render(&buf)
	buf.WriteString("\n# full-precision rows\n")
	for _, r := range rows {
		fmt.Fprintf(&buf, "%s int=%.17g ext=%.17g app=%.17g seq=%.17g\n",
			r.Workload, r.InternalPct, r.ExternalPct, r.AppPct, r.SeqPct)
	}
	return buf.Bytes()
}

// TestTable3Golden proves the simulation's Table 3 output is byte-identical
// to the checked-in golden file (bench scale, seed 42). The golden was
// captured before the allocation-free engine/session rework landed, so a
// pass here is the determinism gate for that refactor: same events, same
// RNG draw order, same numbers to the last bit.
func TestTable3Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 3 simulation; skipped in -short")
	}
	got := renderTable3Golden(t)
	path := filepath.Join("testdata", "table3_bench_seed42.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Table 3 output diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
