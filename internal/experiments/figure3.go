package experiments

import (
	"context"
	"fmt"

	"rofs/internal/alloc"
	"rofs/internal/alloc/rbuddy"
	"rofs/internal/runner"
)

// Fig3Result demonstrates the Figure 3 interaction between contiguous
// allocation and the grow factor: when a growing file's block size
// increases, the next aligned block of the new size is not contiguous
// with the blocks already allocated, so the file pays a seek.
type Fig3Result struct {
	GrowFactor float64
	// FileKB is the file size at which the 64K block is first required
	// (72K under g=1, 144K under g=2, in the paper's example).
	FileKB int64
	// Extents is the file's physical layout just after crossing.
	Extents []alloc.Extent
	// Discontiguous reports whether the crossing produced a layout break.
	Discontiguous bool
	// GapKB is the skipped hole between the small-block run and the first
	// 64K block.
	GapKB int64
}

// Figure3 reproduces the paper's Figure 3 walk-through on a fresh
// single-region disk with block sizes {1K, 8K, 64K}, for grow factors 1
// and 2. The walk-throughs are pure allocator exercises, not simulation
// Specs, so they run through the pool's generic Do.
func Figure3(ctx context.Context, p *runner.Pool) ([]Fig3Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p == nil {
		p = runner.New(0)
	}
	growFactors := []float64{1, 2}
	out := make([]Fig3Result, len(growFactors))
	err := p.Do(ctx, len(growFactors), func(i int) error {
		g := growFactors[i]
		p, err := rbuddy.New(rbuddy.Config{
			TotalUnits: 1024, // 1M in 1K units
			SizesUnits: []int64{1, 8, 64},
			GrowFactor: g,
		})
		if err != nil {
			return err
		}
		f := p.NewFile(0)
		// Grow one unit at a time until the first 64-unit block appears.
		crossed := false
		for i := 0; i < 1024 && !crossed; i++ {
			added, err := f.Grow(1)
			if err != nil {
				return fmt.Errorf("figure3 g=%g: %w", g, err)
			}
			for _, e := range added {
				if e.Len == 64 {
					crossed = true
				}
			}
		}
		if !crossed {
			return fmt.Errorf("figure3 g=%g: never reached a 64K block", g)
		}
		ext := append([]alloc.Extent(nil), f.Extents()...)
		res := Fig3Result{GrowFactor: g, FileKB: f.AllocatedUnits(), Extents: ext}
		if len(ext) > 1 {
			res.Discontiguous = true
			res.GapKB = ext[len(ext)-1].Start - ext[len(ext)-2].End()
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
