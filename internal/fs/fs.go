// Package fs is the file-system layer of the simulator: it binds an
// allocation policy to a disk system, presents files with byte-granular
// read / write / extend / truncate / delete operations, maps logical file
// offsets through the policy's extent lists to disk-unit runs, and keeps
// the space accounting (used vs. allocated bytes) that the fragmentation
// metrics of §3 are computed from.
//
// Operations that move data are asynchronous: they complete through a
// callback at the simulated completion time. A FileSystem built without a
// disk system (allocation tests, §3) completes every operation
// immediately — allocation tests measure space, not time.
package fs

import (
	"fmt"

	"rofs/internal/alloc"
	"rofs/internal/disk"
	"rofs/internal/metrics"
	"rofs/internal/units"
)

// FileSystem binds a policy to an optional disk system.
type FileSystem struct {
	policy    alloc.Policy
	dsys      *disk.System // nil for allocation-only tests
	unitBytes int64

	files     map[int64]*File
	nextID    int64
	usedBytes int64 // sum of file lengths

	// runScratch and req are the reusable buffers behind every data
	// operation: the disk system consumes a request's runs synchronously
	// during Submit and retains neither the slice nor the Request, and
	// simulations are single-goroutine, so one buffer per file system
	// makes the per-request offset-to-run mapping allocation-free.
	runScratch []disk.Run
	req        disk.Request

	// retry is the armed retry machinery (retry.go), nil on a file system
	// that never retries — the allocation-free fast path.
	retry *retryState

	// Metrics handles (nil when metrics are disabled; see SetMetrics).
	mCreates    *metrics.Counter
	mDeletes    *metrics.Counter
	mGrows      *metrics.Counter
	mTruncates  *metrics.Counter
	mRunLen     *metrics.Hist
	mRetries    *metrics.Counter
	mPermanent  *metrics.Counter
	mRetryDelay *metrics.Hist
}

// runLenBoundsUnits buckets the run lengths data operations touch, in disk
// units: with 1K units the bounds span 1K single-unit transfers up through
// 16M fully contiguous sweeps.
var runLenBoundsUnits = []float64{
	1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 16384,
}

// SetMetrics attaches metrics handles to the file system. A nil registry
// (the default) leaves all handles nil, and every instrumentation point
// reduces to a nil check.
func (fs *FileSystem) SetMetrics(reg *metrics.Registry) {
	fs.mCreates = reg.Counter("fs.creates")
	fs.mDeletes = reg.Counter("fs.deletes")
	fs.mGrows = reg.Counter("fs.grows")
	fs.mTruncates = reg.Counter("fs.truncates")
	fs.mRunLen = reg.Histogram("fs.run_len_units", runLenBoundsUnits)
	fs.mRetries = reg.Counter("fs.retries")
	fs.mPermanent = reg.Counter("fs.permanent_errors")
	fs.mRetryDelay = reg.Histogram("fs.retry_delay_ms", retryDelayBoundsMS)
}

// New creates a file system. dsys may be nil; unitBytes must match the
// disk system's unit size when one is supplied.
func New(policy alloc.Policy, dsys *disk.System, unitBytes int64) (*FileSystem, error) {
	if policy == nil {
		return nil, fmt.Errorf("fs: nil policy")
	}
	if unitBytes <= 0 {
		return nil, fmt.Errorf("fs: unitBytes %d must be positive", unitBytes)
	}
	if dsys != nil {
		if dsys.UnitBytes() != unitBytes {
			return nil, fmt.Errorf("fs: unitBytes %d != disk unit %d", unitBytes, dsys.UnitBytes())
		}
		if policy.TotalUnits() > dsys.Units() {
			return nil, fmt.Errorf("fs: policy manages %d units but disk has %d",
				policy.TotalUnits(), dsys.Units())
		}
	}
	return &FileSystem{
		policy:    policy,
		dsys:      dsys,
		unitBytes: unitBytes,
		files:     make(map[int64]*File),
	}, nil
}

// Policy returns the allocation policy.
func (fs *FileSystem) Policy() alloc.Policy { return fs.policy }

// UnitBytes returns the disk-unit size in bytes.
func (fs *FileSystem) UnitBytes() int64 { return fs.unitBytes }

// CapacityBytes returns the policy-managed capacity in bytes.
func (fs *FileSystem) CapacityBytes() int64 {
	return fs.policy.TotalUnits() * fs.unitBytes
}

// AllocatedBytes returns the space currently allocated to files.
func (fs *FileSystem) AllocatedBytes() int64 {
	return (fs.policy.TotalUnits() - fs.policy.FreeUnits()) * fs.unitBytes
}

// UsedBytes returns the sum of file lengths.
func (fs *FileSystem) UsedBytes() int64 { return fs.usedBytes }

// Utilization returns allocated/capacity in [0,1] — the quantity the
// paper's N/M utilization bounds constrain (§2.2).
func (fs *FileSystem) Utilization() float64 {
	return float64(fs.AllocatedBytes()) / float64(fs.CapacityBytes())
}

// InternalFragPct returns allocated-but-unused space as a percentage of
// allocated space (§3).
func (fs *FileSystem) InternalFragPct() float64 {
	allocated := fs.AllocatedBytes()
	if allocated == 0 {
		return 0
	}
	return 100 * float64(allocated-fs.usedBytes) / float64(allocated)
}

// ExternalFragPct returns free space as a percentage of total space —
// meaningful at the moment an allocation request fails (§3).
func (fs *FileSystem) ExternalFragPct() float64 {
	return 100 * float64(fs.policy.FreeUnits()) / float64(fs.policy.TotalUnits())
}

// Files returns the number of live files.
func (fs *FileSystem) Files() int { return len(fs.files) }

// File is an open file: a length in bytes plus the policy's allocation
// handle.
type File struct {
	fs       *FileSystem
	id       int64
	fa       alloc.File
	length   int64 // bytes used
	sizeHint int64 // AllocationSize in units, for recreation after delete
	cursor   int64 // sequential access position (maintained by callers)
}

// Create makes an empty file. sizeHintBytes is the file type's
// AllocationSize parameter (Table 2), which the extent policy uses to
// choose the file's extent-size range.
func (fs *FileSystem) Create(sizeHintBytes int64) *File {
	hintUnits := units.CeilDiv(sizeHintBytes, fs.unitBytes)
	f := &File{
		fs:       fs,
		id:       fs.nextID,
		fa:       fs.policy.NewFile(hintUnits),
		sizeHint: hintUnits,
	}
	fs.nextID++
	fs.files[f.id] = f
	fs.mCreates.Inc()
	return f
}

// Length returns the file's length in bytes.
func (f *File) Length() int64 { return f.length }

// AllocatedBytes returns the file's allocated space in bytes.
func (f *File) AllocatedBytes() int64 {
	return f.fa.AllocatedUnits() * f.fs.unitBytes
}

// Alloc exposes the policy's allocation handle (for policy-specific
// metrics such as Table 4's extents per file).
func (f *File) Alloc() alloc.File { return f.fa }

// Cursor returns the sequential-access cursor.
func (f *File) Cursor() int64 { return f.cursor }

// SetCursor stores the sequential-access cursor.
func (f *File) SetCursor(c int64) { f.cursor = c }

// runs maps the byte range [off, off+n) of the file to disk-unit runs by
// walking the extent list. The range must lie within the file's length.
// The returned slice aliases the file system's scratch buffer and is only
// valid until the next data operation.
func (f *File) runs(off, n int64) []disk.Run {
	if n <= 0 {
		return nil
	}
	if off < 0 || off+n > f.length {
		panic(fmt.Sprintf("fs: range [%d,+%d) outside file length %d", off, n, f.length))
	}
	ub := f.fs.unitBytes
	startUnit := off / ub
	endUnit := units.CeilDiv(off+n, ub)
	out := f.fs.runScratch[:0]
	var pos int64 // logical unit position at the start of the current extent
	for _, e := range f.fa.Extents() {
		if pos >= endUnit {
			break
		}
		lo, hi := pos, pos+e.Len
		if hi <= startUnit {
			pos = hi
			continue
		}
		s, t := startUnit, endUnit
		if lo > s {
			s = lo
		}
		if hi < t {
			t = hi
		}
		if t > s {
			run := disk.Run{Start: e.Start + (s - lo), Len: t - s}
			if last := len(out) - 1; last >= 0 && out[last].Start+out[last].Len == run.Start {
				out[last].Len += run.Len
			} else {
				out = append(out, run)
			}
		}
		pos = hi
	}
	f.fs.runScratch = out
	return out
}

// complete invokes done now (no disk) or after the disk request finishes.
func (f *File) submit(runs []disk.Run, write bool, done func(now float64)) {
	if f.fs.dsys == nil || len(runs) == 0 {
		if done != nil {
			done(0)
		}
		return
	}
	if f.fs.mRunLen != nil {
		for _, r := range runs {
			f.fs.mRunLen.Observe(float64(r.Len))
		}
	}
	// With retries armed the runs must outlive this call (a failed
	// request is resent after the scratch buffer has been reused), so the
	// submission goes through a retry record holding its own copy.
	if f.fs.retry != nil {
		op := f.fs.newRetryOp(runs, write, done)
		op.send()
		return
	}
	// Submit consumes the request before invoking any completion, so the
	// shared Request (and the runs scratch it points at) is free for
	// reuse — including by operations issued from inside done — the
	// moment Submit returns or calls back.
	req := &f.fs.req
	req.Runs, req.Write, req.Done = runs, write, done
	f.fs.dsys.Submit(req)
	req.Runs, req.Done = nil, nil
}

// Read reads n bytes at off, clipped to the file. done receives the
// simulated completion time.
func (f *File) Read(off, n int64, done func(now float64)) {
	off, n = f.clip(off, n)
	f.submit(f.runs(off, n), false, done)
}

// Write overwrites n bytes at off, clipped to the file (in-place update;
// writes never extend — extension is the Extend operation).
func (f *File) Write(off, n int64, done func(now float64)) {
	off, n = f.clip(off, n)
	f.submit(f.runs(off, n), true, done)
}

// clip bounds [off, off+n) to the file's current length.
func (f *File) clip(off, n int64) (int64, int64) {
	if off < 0 {
		off = 0
	}
	if off > f.length {
		off = f.length
	}
	if off+n > f.length {
		n = f.length - off
	}
	return off, n
}

// Extend grows the file by n bytes — allocating if the new length exceeds
// the allocation — and writes the new bytes. It returns alloc.ErrNoSpace
// (before any disk traffic) when the policy cannot satisfy the growth.
func (f *File) Extend(n int64, done func(now float64)) error {
	if n <= 0 {
		if done != nil {
			done(0)
		}
		return nil
	}
	newLen := f.length + n
	if needBytes := newLen - f.AllocatedBytes(); needBytes > 0 {
		needUnits := units.CeilDiv(needBytes, f.fs.unitBytes)
		if _, err := f.fa.Grow(needUnits); err != nil {
			return err
		}
		f.fs.mGrows.Inc()
	}
	off := f.length
	f.length = newLen
	f.fs.usedBytes += n
	f.submit(f.runs(off, n), true, done)
	return nil
}

// Allocate grows the file's length by n bytes without disk traffic — used
// by initialization ("the files are created", §2.2) and fill phases.
func (f *File) Allocate(n int64) error {
	if n <= 0 {
		return nil
	}
	newLen := f.length + n
	if needBytes := newLen - f.AllocatedBytes(); needBytes > 0 {
		needUnits := units.CeilDiv(needBytes, f.fs.unitBytes)
		if _, err := f.fa.Grow(needUnits); err != nil {
			return err
		}
		f.fs.mGrows.Inc()
	}
	f.fs.usedBytes += n
	f.length = newLen
	return nil
}

// Truncate removes the last n bytes (clipped at zero length), releasing
// whatever whole allocation granules the policy can free. No disk traffic.
func (f *File) Truncate(n int64) {
	if n <= 0 {
		return
	}
	if n > f.length {
		n = f.length
	}
	f.length -= n
	f.fs.usedBytes -= n
	f.fa.TruncateTo(units.CeilDiv(f.length, f.fs.unitBytes))
	f.fs.mTruncates.Inc()
	if f.cursor > f.length {
		f.cursor = 0
	}
}

// Delete frees the file's space and removes it from the file table.
func (f *File) Delete() {
	f.fs.usedBytes -= f.length
	f.length = 0
	f.cursor = 0
	f.fa.TruncateTo(0)
	delete(f.fs.files, f.id)
	f.fs.mDeletes.Inc()
}

// Recreate frees the file's space and gives it a fresh, empty allocation
// handle — the paper's small files are "periodically deleted and
// recreated" (§2.2), keeping the population constant.
func (f *File) Recreate() {
	f.fs.usedBytes -= f.length
	f.length = 0
	f.cursor = 0
	f.fa.TruncateTo(0)
	f.fa = f.fs.policy.NewFile(f.sizeHint)
	f.fs.mDeletes.Inc()
	f.fs.mCreates.Inc()
}

// ReadChunked reads [off, off+n) as a pipeline of chunk-sized requests,
// each issued when the previous completes — the read-ahead streaming that
// keeps whole-file transfers (the sequential test of §3) flowing without
// one monolithic request. done fires when the last chunk completes.
func (f *File) ReadChunked(off, n, chunkBytes int64, done func(now float64)) {
	f.chunked(off, n, chunkBytes, false, done)
}

// WriteChunked is the write-behind counterpart of ReadChunked.
func (f *File) WriteChunked(off, n, chunkBytes int64, done func(now float64)) {
	f.chunked(off, n, chunkBytes, true, done)
}

func (f *File) chunked(off, n, chunkBytes int64, write bool, done func(now float64)) {
	if chunkBytes <= 0 {
		panic("fs: non-positive chunk size")
	}
	off, n = f.clip(off, n)
	if n == 0 || f.fs.dsys == nil {
		if done != nil {
			done(0)
		}
		return
	}
	var issue func(pos int64, now float64)
	issue = func(pos int64, _ float64) {
		chunk := chunkBytes
		if pos+chunk > off+n {
			chunk = off + n - pos
		}
		next := done
		if pos+chunk < off+n {
			nextPos := pos + chunk
			next = func(now float64) { issue(nextPos, now) }
		}
		f.submit(f.runs(pos, chunk), write, next)
	}
	issue(off, 0)
}
