package fs

import "rofs/internal/units"

// MetaModel describes a classic on-disk metadata encoding: a fixed-size
// inode with a few direct descriptor slots, overflowing into indirect
// blocks of descriptors. It quantifies [STON81]'s criticism — which the
// paper's introduction cites — that fixed-block systems dedicate
// "excessive amounts of meta data" (one pointer per block) where extent
// systems describe the same file in a handful of descriptors.
type MetaModel struct {
	InodeBytes         int64 // fixed per-file cost
	DirectSlots        int64 // descriptors stored inside the inode
	DescriptorBytes    int64 // bytes per descriptor
	IndirectBlockBytes int64 // size of each overflow block of descriptors
}

// DefaultMetaModel returns a 1980s-plausible encoding: 128-byte inodes
// with 12 direct slots, 12-byte (address, length) descriptors, and 4K
// indirect blocks.
func DefaultMetaModel() MetaModel {
	return MetaModel{
		InodeBytes:         128,
		DirectSlots:        12,
		DescriptorBytes:    12,
		IndirectBlockBytes: 4 * units.KB,
	}
}

// MetaStats aggregates a file system's metadata footprint under a model.
type MetaStats struct {
	Files       int
	Descriptors int64 // total layout descriptors across all files
	MetaBytes   int64 // inodes + indirect blocks
	// MetaPctOfData is metadata as a percentage of allocated data bytes.
	MetaPctOfData float64
}

// FileMetaBytes returns the metadata cost of one file holding n layout
// descriptors: the inode plus however many whole indirect blocks the
// overflow needs.
func (m MetaModel) FileMetaBytes(n int64) int64 {
	bytes := m.InodeBytes
	if n > m.DirectSlots {
		overflow := (n - m.DirectSlots) * m.DescriptorBytes
		blocks := units.CeilDiv(overflow, m.IndirectBlockBytes)
		bytes += blocks * m.IndirectBlockBytes
	}
	return bytes
}

// MetaStats computes the metadata footprint of every live file. Files
// whose policy does not report descriptor counts are charged one
// descriptor per (merged) extent.
func (fs *FileSystem) MetaStats(m MetaModel) MetaStats {
	var out MetaStats
	type counter interface{ DescriptorCount() int }
	for _, f := range fs.files {
		var n int64
		if c, ok := f.fa.(counter); ok {
			n = int64(c.DescriptorCount())
		} else {
			n = int64(len(f.fa.Extents()))
		}
		out.Files++
		out.Descriptors += n
		out.MetaBytes += m.FileMetaBytes(n)
	}
	if alloc := fs.AllocatedBytes(); alloc > 0 {
		out.MetaPctOfData = 100 * float64(out.MetaBytes) / float64(alloc)
	}
	return out
}
