package fs

import (
	"math/rand"
	"strings"
	"testing"

	"rofs/internal/alloc"
	"rofs/internal/units"
)

// badFile is a corrupt alloc.File for failure-injection: it lets tests
// hand the file system impossible extent lists.
type badFile struct {
	extents   []alloc.Extent
	allocated int64
}

func (b *badFile) Extents() []alloc.Extent            { return b.extents }
func (b *badFile) AllocatedUnits() int64              { return b.allocated }
func (b *badFile) Grow(int64) ([]alloc.Extent, error) { return nil, alloc.ErrNoSpace }
func (b *badFile) TruncateTo(int64)                   {}

func TestCheckCleanSystem(t *testing.T) {
	fsys := newFS(t, 10000, 4)
	rng := rand.New(rand.NewSource(4))
	var files []*File
	for i := 0; i < 50; i++ {
		f := fsys.Create(0)
		if err := f.Allocate(rng.Int63n(50*units.KB) + 1); err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	for i := 0; i < 200; i++ {
		f := files[rng.Intn(len(files))]
		switch rng.Intn(3) {
		case 0:
			f.Allocate(rng.Int63n(8*units.KB) + 1)
		case 1:
			f.Truncate(rng.Int63n(8*units.KB) + 1)
		case 2:
			f.Recreate()
			f.Allocate(rng.Int63n(20*units.KB) + 1)
		}
	}
	if err := fsys.Check(); err != nil {
		t.Fatalf("clean system failed fsck: %v", err)
	}
}

func TestCheckDetectsOverlap(t *testing.T) {
	fsys := newFS(t, 1000, 4)
	a := fsys.Create(0)
	a.Allocate(8 * units.KB)
	// Inject a corrupt file whose extents overlap a's allocation.
	fsys.files[999] = &File{fs: fsys, id: 999, fa: &badFile{
		extents:   []alloc.Extent{{Start: 2, Len: 4}},
		allocated: 4,
	}}
	defer delete(fsys.files, 999)
	err := fsys.Check()
	if err == nil {
		t.Fatal("fsck missed a cross-file overlap")
	}
	// Either the overlap or the space-leak invariant may fire first; both
	// indicate the corruption.
	if !strings.Contains(err.Error(), "overlap") && !strings.Contains(err.Error(), "leak") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCheckDetectsLengthBeyondAllocation(t *testing.T) {
	fsys := newFS(t, 1000, 4)
	f := fsys.Create(0)
	f.Allocate(4 * units.KB)
	f.length = 100 * units.KB // corrupt directly
	defer func() { f.length = 4 * units.KB }()
	if err := fsys.Check(); err == nil {
		t.Fatal("fsck missed length > allocation")
	}
}

func TestCheckDetectsAccountingDrift(t *testing.T) {
	fsys := newFS(t, 1000, 4)
	f := fsys.Create(0)
	f.Allocate(4 * units.KB)
	fsys.usedBytes += 12345 // corrupt the counter
	if err := fsys.Check(); err == nil {
		t.Fatal("fsck missed used-bytes drift")
	}
	fsys.usedBytes -= 12345
	if err := fsys.Check(); err != nil {
		t.Fatalf("repaired system still failing: %v", err)
	}
}

func TestCheckDetectsBadExtentSum(t *testing.T) {
	fsys := newFS(t, 1000, 4)
	fsys.files[7] = &File{fs: fsys, id: 7, fa: &badFile{
		extents:   []alloc.Extent{{Start: 500, Len: 4}},
		allocated: 8, // lies about its total
	}}
	if err := fsys.Check(); err == nil {
		t.Fatal("fsck missed extent-sum mismatch")
	}
}

func TestMetaModel(t *testing.T) {
	m := DefaultMetaModel()
	// Few descriptors: inode only.
	if got := m.FileMetaBytes(3); got != m.InodeBytes {
		t.Fatalf("FileMetaBytes(3) = %d, want inode only", got)
	}
	if got := m.FileMetaBytes(12); got != m.InodeBytes {
		t.Fatalf("FileMetaBytes(12) = %d, want inode only", got)
	}
	// One descriptor over the direct slots: one indirect block.
	if got := m.FileMetaBytes(13); got != m.InodeBytes+m.IndirectBlockBytes {
		t.Fatalf("FileMetaBytes(13) = %d", got)
	}
	// A 210M fixed-16K file: 13440 pointers, ~39 indirect 4K blocks.
	n := int64(13440)
	want := m.InodeBytes + units.CeilDiv((n-12)*m.DescriptorBytes, m.IndirectBlockBytes)*m.IndirectBlockBytes
	if got := m.FileMetaBytes(n); got != want {
		t.Fatalf("FileMetaBytes(%d) = %d, want %d", n, got, want)
	}
}

func TestMetaStatsComparesPolicies(t *testing.T) {
	// The same 1M of files costs far more metadata under 4K fixed blocks
	// than under a policy reporting few descriptors.
	fixedFS := newFS(t, 10000, 4)
	for i := 0; i < 10; i++ {
		f := fixedFS.Create(0)
		f.Allocate(100 * units.KB) // 25 blocks each: indirect overflow
	}
	stats := fixedFS.MetaStats(DefaultMetaModel())
	if stats.Files != 10 || stats.Descriptors != 250 {
		t.Fatalf("fixed meta stats: %+v", stats)
	}
	if stats.MetaBytes <= 10*DefaultMetaModel().InodeBytes {
		t.Fatal("fixed-block files should overflow into indirect blocks")
	}
	if stats.MetaPctOfData <= 0 {
		t.Fatal("MetaPctOfData not computed")
	}
}
