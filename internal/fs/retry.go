package fs

import (
	"fmt"

	"rofs/internal/disk"
	"rofs/internal/stats"
)

// This file is the file system's half of the fault model: bounded
// retry-with-backoff, in simulated time, for requests the disk system
// fails with a transient error or a drive failure. Arming it changes the
// submit path — every data operation's runs are copied into a retry
// record so the operation can be resent after the shared scratch buffer
// has been reused — so an unarmed file system keeps the allocation-free
// fast path exactly as it was.

// retryDelayBoundsMS buckets the delay from a request's first failure to
// its eventual completion: the base backoff is a handful of simulated
// milliseconds, doubling per attempt, plus queueing on the resend.
var retryDelayBoundsMS = []float64{
	1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
}

// retryState is the armed retry machinery.
type retryState struct {
	max         int     // attempts after the first submission
	backoffMS   float64 // base backoff, doubling per attempt
	onPermanent func(now float64)

	retries   int64
	permanent int64
	delays    *stats.Histogram // first-failure → completion, ms

	free []*retryOp
}

// RetryStats snapshots the retry machinery's counters.
type RetryStats struct {
	Retries         int64
	PermanentErrors int64
	// RetryDelays buckets the simulated time from a request's first
	// failure to its eventual completion (success or permanent failure).
	// Nil when retries were never armed.
	RetryDelays *stats.Histogram
}

// retryOp is one retryable submission: the runs copied out of the scratch
// buffer, the attempt count, and the caller's completion. The closures are
// built once per op and recycled with it.
type retryOp struct {
	fs          *FileSystem
	runs        []disk.Run
	write       bool
	attempts    int
	firstFailMS float64
	done        func(now float64)

	doneFn   func(now float64)
	failFn   func(now float64)
	resendFn func(now float64)
}

// ArmRetries installs bounded retry-with-backoff: a failed request is
// resent after backoffMS of simulated time, doubling per attempt, up to
// maxRetries resends; past the bound the failure is permanent and
// onPermanent fires (the operation still completes, so the user stream
// continues — a permanent error is an observable, not a deadlock).
// Requires a disk system; must be called before the simulation starts.
func (fs *FileSystem) ArmRetries(maxRetries int, backoffMS float64, onPermanent func(now float64)) error {
	if fs.dsys == nil {
		return fmt.Errorf("fs: retries need a disk system")
	}
	if maxRetries < 0 {
		return fmt.Errorf("fs: maxRetries %d must be >= 0", maxRetries)
	}
	if backoffMS <= 0 {
		return fmt.Errorf("fs: backoffMS %g must be positive", backoffMS)
	}
	fs.retry = &retryState{
		max:         maxRetries,
		backoffMS:   backoffMS,
		onPermanent: onPermanent,
		delays:      stats.NewHistogram(retryDelayBoundsMS),
	}
	return nil
}

// RetryStats snapshots the retry counters; zero when never armed.
func (fs *FileSystem) RetryStats() RetryStats {
	if fs.retry == nil {
		return RetryStats{}
	}
	return RetryStats{
		Retries:         fs.retry.retries,
		PermanentErrors: fs.retry.permanent,
		RetryDelays:     fs.retry.delays,
	}
}

// newRetryOp takes an op from the free list (rebinding its state) or
// builds one with its closure set.
func (fs *FileSystem) newRetryOp(runs []disk.Run, write bool, done func(now float64)) *retryOp {
	r := fs.retry
	var op *retryOp
	if k := len(r.free); k > 0 {
		op = r.free[k-1]
		r.free = r.free[:k-1]
	} else {
		op = &retryOp{fs: fs}
		op.doneFn = op.complete
		op.failFn = op.fail
		op.resendFn = op.resend
	}
	op.runs = append(op.runs[:0], runs...)
	op.write = write
	op.attempts = 0
	op.firstFailMS = -1
	op.done = done
	return op
}

// release returns the op to the free list, keeping its runs capacity.
func (op *retryOp) release() {
	op.done = nil
	op.fs.retry.free = append(op.fs.retry.free, op)
}

// send submits the op's runs to the disk system.
func (op *retryOp) send() {
	req := &op.fs.req
	req.Runs, req.Write, req.Done, req.Fail = op.runs, op.write, op.doneFn, op.failFn
	op.fs.dsys.Submit(req)
	req.Runs, req.Done, req.Fail = nil, nil, nil
}

// complete finishes the op: record the retry delay if it ever failed,
// recycle, and hand completion to the caller.
func (op *retryOp) complete(now float64) {
	if op.firstFailMS >= 0 {
		op.fs.retry.delays.Add(now - op.firstFailMS)
		op.fs.mRetryDelay.Observe(now - op.firstFailMS)
	}
	done := op.done
	op.release()
	if done != nil {
		done(now)
	}
}

// fail handles one failed submission: resend after the backoff, or give
// up past the retry bound.
func (op *retryOp) fail(now float64) {
	r := op.fs.retry
	if op.firstFailMS < 0 {
		op.firstFailMS = now
	}
	if op.attempts >= r.max {
		r.permanent++
		op.fs.mPermanent.Inc()
		if r.onPermanent != nil {
			r.onPermanent(now)
		}
		op.complete(now)
		return
	}
	op.attempts++
	r.retries++
	op.fs.mRetries.Inc()
	backoff := r.backoffMS * float64(int64(1)<<uint(op.attempts-1))
	op.fs.dsys.After(backoff, op.resendFn)
}

// resend is the backoff timer's continuation.
func (op *retryOp) resend(now float64) { op.send() }
