package fs

import (
	"math"
	"testing"

	"rofs/internal/units"
)

func TestWriteChunked(t *testing.T) {
	fsys, eng, dsys := newDiskFS(t)
	f := fsys.Create(0)
	f.Allocate(8 * units.MB)
	var done float64 = -1
	f.WriteChunked(0, 8*units.MB, units.MB, func(now float64) { done = now })
	eng.Run(math.Inf(1))
	if done <= 0 {
		t.Fatal("chunked write never completed")
	}
	if dsys.TotalBytes() != 8*units.MB {
		t.Fatalf("moved %d bytes", dsys.TotalBytes())
	}
	stats := dsys.Stats()
	var written int64
	for _, s := range stats {
		written += s.BytesWritten
		if s.BytesRead != 0 {
			t.Fatal("chunked write performed reads")
		}
	}
	if written != 8*units.MB {
		t.Fatalf("drives wrote %d bytes", written)
	}
}

func TestChunkedPanicsOnBadChunk(t *testing.T) {
	fsys, _, _ := newDiskFS(t)
	f := fsys.Create(0)
	f.Allocate(units.MB)
	defer func() {
		if recover() == nil {
			t.Fatal("zero chunk size did not panic")
		}
	}()
	f.ReadChunked(0, units.MB, 0, nil)
}

func TestChunkedWithoutDiskCompletesImmediately(t *testing.T) {
	fsys := newFS(t, 1000, 4)
	f := fsys.Create(0)
	f.Allocate(100 * units.KB)
	called := false
	f.ReadChunked(0, 100*units.KB, units.KB, func(float64) { called = true })
	if !called {
		t.Fatal("diskless chunked read did not complete synchronously")
	}
}

func TestExtendWithNilDone(t *testing.T) {
	fsys := newFS(t, 1000, 4)
	f := fsys.Create(0)
	if err := f.Extend(units.KB, nil); err != nil {
		t.Fatal(err)
	}
	if f.Length() != units.KB {
		t.Fatalf("Length = %d", f.Length())
	}
	if err := f.Extend(0, nil); err != nil {
		t.Fatal("zero extend errored")
	}
}

func TestWriteZeroAndNegative(t *testing.T) {
	fsys, eng, dsys := newDiskFS(t)
	f := fsys.Create(0)
	f.Allocate(10 * units.KB)
	calls := 0
	f.Write(5*units.KB, 0, func(float64) { calls++ })
	f.Write(-100, 2*units.KB, func(float64) { calls++ }) // off clips to 0
	f.Read(20*units.KB, units.KB, func(float64) { calls++ })
	eng.Run(math.Inf(1))
	if calls != 3 {
		t.Fatalf("completions = %d, want 3", calls)
	}
	if dsys.TotalBytes() != 2*units.KB {
		t.Fatalf("moved %d bytes, want only the clipped write", dsys.TotalBytes())
	}
}

func TestTruncateZeroAndNegative(t *testing.T) {
	fsys := newFS(t, 1000, 4)
	f := fsys.Create(0)
	f.Allocate(8 * units.KB)
	f.Truncate(0)
	f.Truncate(-5)
	if f.Length() != 8*units.KB {
		t.Fatal("no-op truncate changed length")
	}
}

func TestUtilizationAndFragOnEmpty(t *testing.T) {
	fsys := newFS(t, 1000, 4)
	if fsys.InternalFragPct() != 0 {
		t.Fatal("empty fs internal frag nonzero")
	}
	if fsys.ExternalFragPct() != 100 {
		t.Fatal("empty fs external frag should be 100% free")
	}
	if fsys.Utilization() != 0 {
		t.Fatal("empty fs utilization nonzero")
	}
}

func TestRunsPanicsOutsideLength(t *testing.T) {
	fsys := newFS(t, 1000, 4)
	f := fsys.Create(0)
	f.Allocate(4 * units.KB)
	defer func() {
		if recover() == nil {
			t.Fatal("runs outside file length did not panic")
		}
	}()
	f.runs(2*units.KB, 4*units.KB)
}
