package fs

import (
	"fmt"
	"sort"

	"rofs/internal/alloc"
)

// Check is the simulator's fsck: it cross-validates the file system
// against its allocation policy and reports the first inconsistency —
// overlapping allocations between files, extents outside the volume,
// length exceeding allocation, or the policy's free count disagreeing
// with the sum of file allocations. The experiment harness and the
// failure-injection tests run it after aging runs to catch allocator
// bookkeeping bugs that individual operations would not surface.
func (fs *FileSystem) Check() error {
	total := fs.policy.TotalUnits()
	var allocated int64
	var all []alloc.Extent
	var used int64
	for id, f := range fs.files {
		ext := f.fa.Extents()
		if err := alloc.Validate(ext, total); err != nil {
			return fmt.Errorf("fs: file %d: %w", id, err)
		}
		if got := alloc.Sum(ext); got != f.fa.AllocatedUnits() {
			return fmt.Errorf("fs: file %d: extents sum to %d units but AllocatedUnits is %d",
				id, got, f.fa.AllocatedUnits())
		}
		if f.length > f.AllocatedBytes() {
			return fmt.Errorf("fs: file %d: length %d exceeds allocation %d",
				id, f.length, f.AllocatedBytes())
		}
		if f.length < 0 {
			return fmt.Errorf("fs: file %d: negative length %d", id, f.length)
		}
		allocated += f.fa.AllocatedUnits()
		used += f.length
		all = append(all, ext...)
	}
	if used != fs.usedBytes {
		return fmt.Errorf("fs: used-bytes accounting drifted: files sum to %d, counter says %d",
			used, fs.usedBytes)
	}
	if free := fs.policy.FreeUnits(); allocated+free != total {
		return fmt.Errorf("fs: space leak: %d allocated + %d free != %d total",
			allocated, free, total)
	}
	// Cross-file overlap: sort by start and compare neighbours — the
	// O(n²) alloc.Validate is fine per file but not across hundreds of
	// thousands.
	sort.Slice(all, func(i, j int) bool { return all[i].Start < all[j].Start })
	for i := 1; i < len(all); i++ {
		if all[i].Start < all[i-1].End() {
			return fmt.Errorf("fs: files overlap at units [%d,%d)", all[i].Start, all[i-1].End())
		}
	}
	return nil
}
