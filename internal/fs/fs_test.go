package fs

import (
	"math"
	"testing"

	"rofs/internal/alloc"
	"rofs/internal/alloc/fixed"
	"rofs/internal/alloc/rbuddy"
	"rofs/internal/disk"
	"rofs/internal/sim"
	"rofs/internal/units"
)

// newFS builds a file system over a fixed-block policy with no disk.
func newFS(t *testing.T, totalUnits, blockUnits int64) *FileSystem {
	t.Helper()
	p, err := fixed.New(fixed.Config{TotalUnits: totalUnits, BlockUnits: blockUnits})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(p, nil, units.KB)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// newDiskFS builds a file system over an rbuddy policy on the default
// 8-drive array.
func newDiskFS(t *testing.T) (*FileSystem, *sim.Engine, *disk.System) {
	t.Helper()
	eng := &sim.Engine{}
	dsys, err := disk.New(disk.DefaultConfig(), eng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := rbuddy.New(rbuddy.Config{
		TotalUnits:  dsys.Units(),
		SizesUnits:  []int64{1, 8, 64, 1024, 16384},
		GrowFactor:  1,
		Clustered:   true,
		RegionUnits: 32 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(p, dsys, dsys.UnitBytes())
	if err != nil {
		t.Fatal(err)
	}
	return f, eng, dsys
}

func TestNewValidation(t *testing.T) {
	p, _ := fixed.New(fixed.Config{TotalUnits: 100, BlockUnits: 4})
	if _, err := New(nil, nil, 1024); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := New(p, nil, 0); err == nil {
		t.Error("zero unit accepted")
	}
	eng := &sim.Engine{}
	dsys, _ := disk.New(disk.DefaultConfig(), eng)
	if _, err := New(p, dsys, 512); err == nil {
		t.Error("mismatched unit size accepted")
	}
}

func TestAllocateAndAccounting(t *testing.T) {
	fsys := newFS(t, 1000, 4)
	f := fsys.Create(4 * units.KB)
	if err := f.Allocate(10 * units.KB); err != nil {
		t.Fatal(err)
	}
	if f.Length() != 10*units.KB {
		t.Fatalf("Length = %d", f.Length())
	}
	// 10K in 4K blocks: 12K allocated.
	if f.AllocatedBytes() != 12*units.KB {
		t.Fatalf("AllocatedBytes = %d", f.AllocatedBytes())
	}
	if fsys.UsedBytes() != 10*units.KB || fsys.AllocatedBytes() != 12*units.KB {
		t.Fatalf("fs accounting: used=%d allocated=%d", fsys.UsedBytes(), fsys.AllocatedBytes())
	}
	wantFrag := 100 * float64(2) / float64(12)
	if got := fsys.InternalFragPct(); math.Abs(got-wantFrag) > 1e-9 {
		t.Fatalf("InternalFragPct = %g, want %g", got, wantFrag)
	}
	wantUtil := 12.0 / 1000.0
	if got := fsys.Utilization(); math.Abs(got-wantUtil) > 1e-9 {
		t.Fatalf("Utilization = %g, want %g", got, wantUtil)
	}
}

func TestTruncateAndDelete(t *testing.T) {
	fsys := newFS(t, 1000, 4)
	f := fsys.Create(0)
	f.Allocate(20 * units.KB)
	f.Truncate(5 * units.KB) // length 15K -> 16K allocated
	if f.Length() != 15*units.KB || f.AllocatedBytes() != 16*units.KB {
		t.Fatalf("after truncate: len=%d alloc=%d", f.Length(), f.AllocatedBytes())
	}
	f.Truncate(100 * units.KB) // over-truncate clips to zero
	if f.Length() != 0 || f.AllocatedBytes() != 0 {
		t.Fatalf("over-truncate: len=%d alloc=%d", f.Length(), f.AllocatedBytes())
	}
	f.Allocate(4 * units.KB)
	f.Delete()
	if fsys.Files() != 0 || fsys.UsedBytes() != 0 || fsys.AllocatedBytes() != 0 {
		t.Fatal("delete did not release everything")
	}
}

func TestRecreateKeepsFileLive(t *testing.T) {
	fsys := newFS(t, 1000, 4)
	f := fsys.Create(8 * units.KB)
	f.Allocate(8 * units.KB)
	f.Recreate()
	if fsys.Files() != 1 {
		t.Fatal("recreate removed the file from the table")
	}
	if f.Length() != 0 || f.AllocatedBytes() != 0 {
		t.Fatal("recreate did not clear the allocation")
	}
	if err := f.Allocate(4 * units.KB); err != nil {
		t.Fatal(err)
	}
}

func TestRunsMapping(t *testing.T) {
	fsys := newFS(t, 1000, 4)
	f := fsys.Create(0)
	f.Allocate(16 * units.KB) // 4 blocks, contiguous on a fresh disk
	runs := f.runs(0, 16*units.KB)
	if len(runs) != 1 || runs[0] != (disk.Run{Start: 0, Len: 16}) {
		t.Fatalf("runs = %v", runs)
	}
	// Interior range: bytes 5K..11K => units 5..11.
	runs = f.runs(5*units.KB, 6*units.KB)
	if len(runs) != 1 || runs[0] != (disk.Run{Start: 5, Len: 6}) {
		t.Fatalf("interior runs = %v", runs)
	}
	// Unaligned range rounds out to unit boundaries.
	runs = f.runs(1536, 1024) // bytes [1536, 2560) => units 1..3
	if len(runs) != 1 || runs[0] != (disk.Run{Start: 1, Len: 2}) {
		t.Fatalf("unaligned runs = %v", runs)
	}
}

func TestRunsAcrossDiscontiguousExtents(t *testing.T) {
	fsys := newFS(t, 1000, 4)
	a := fsys.Create(0)
	a.Allocate(4 * units.KB)
	b := fsys.Create(0)
	b.Allocate(4 * units.KB)
	a.Truncate(4 * units.KB)
	// c's two blocks: the LIFO free list hands back a's block (units 0-3)
	// then the next fresh block — discontiguous.
	c := fsys.Create(0)
	c.Allocate(8 * units.KB)
	runs := c.runs(0, 8*units.KB)
	if len(runs) != 2 {
		t.Fatalf("runs = %v, want 2 discontiguous", runs)
	}
	if runs[0].Len+runs[1].Len != 8 {
		t.Fatalf("runs don't cover 8 units: %v", runs)
	}
}

func TestReadWriteThroughDisk(t *testing.T) {
	fsys, eng, dsys := newDiskFS(t)
	f := fsys.Create(0)
	if err := f.Allocate(units.MB); err != nil {
		t.Fatal(err)
	}
	var readDone, writeDone float64 = -1, -1
	f.Read(0, units.MB, func(now float64) { readDone = now })
	eng.Run(math.Inf(1))
	f.Write(0, 256*units.KB, func(now float64) { writeDone = now })
	eng.Run(math.Inf(1))
	if readDone <= 0 || writeDone <= readDone {
		t.Fatalf("completions: read=%g write=%g", readDone, writeDone)
	}
	if dsys.TotalBytes() != units.MB+256*units.KB {
		t.Fatalf("disk bytes = %d", dsys.TotalBytes())
	}
}

func TestReadClipsToLength(t *testing.T) {
	fsys, eng, dsys := newDiskFS(t)
	f := fsys.Create(0)
	f.Allocate(10 * units.KB)
	f.Read(8*units.KB, 100*units.KB, func(float64) {})
	eng.Run(math.Inf(1))
	if dsys.TotalBytes() != 2*units.KB {
		t.Fatalf("clipped read moved %d bytes, want 2K", dsys.TotalBytes())
	}
}

func TestExtendWritesNewBytes(t *testing.T) {
	fsys, eng, dsys := newDiskFS(t)
	f := fsys.Create(0)
	f.Allocate(64 * units.KB)
	if err := f.Extend(8*units.KB, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run(math.Inf(1))
	if f.Length() != 72*units.KB {
		t.Fatalf("Length = %d", f.Length())
	}
	if dsys.TotalBytes() != 8*units.KB {
		t.Fatalf("extend wrote %d bytes, want 8K", dsys.TotalBytes())
	}
}

func TestExtendNoSpace(t *testing.T) {
	fsys := newFS(t, 100, 4)
	f := fsys.Create(0)
	if err := f.Allocate(100 * units.KB); err != nil {
		t.Fatal(err)
	}
	g := fsys.Create(0)
	if err := g.Extend(units.KB, nil); err != alloc.ErrNoSpace {
		t.Fatalf("Extend on full system = %v", err)
	}
	if g.Length() != 0 {
		t.Fatal("failed extend changed length")
	}
}

func TestChunkedReadMatchesWholeRead(t *testing.T) {
	// A chunked whole-file read must move the same bytes and take roughly
	// the same simulated time as one monolithic request.
	run := func(chunk int64) (float64, int64) {
		fsys, eng, dsys := newDiskFS(t)
		f := fsys.Create(0)
		f.Allocate(16 * units.MB)
		var done float64
		if chunk == 0 {
			f.Read(0, 16*units.MB, func(now float64) { done = now })
		} else {
			f.ReadChunked(0, 16*units.MB, chunk, func(now float64) { done = now })
		}
		eng.Run(math.Inf(1))
		return done, dsys.TotalBytes()
	}
	tWhole, bWhole := run(0)
	tChunked, bChunked := run(2 * units.MB)
	if bWhole != 16*units.MB || bChunked != 16*units.MB {
		t.Fatalf("bytes: whole=%d chunked=%d", bWhole, bChunked)
	}
	if tChunked < tWhole || tChunked > tWhole*1.1 {
		t.Fatalf("chunked read took %.1f ms vs whole %.1f ms", tChunked, tWhole)
	}
}

func TestChunkedZeroLength(t *testing.T) {
	fsys, _, _ := newDiskFS(t)
	f := fsys.Create(0)
	called := false
	f.ReadChunked(0, 0, units.MB, func(float64) { called = true })
	if !called {
		t.Fatal("zero-length chunked read never completed")
	}
}

func TestCursor(t *testing.T) {
	fsys := newFS(t, 1000, 4)
	f := fsys.Create(0)
	f.Allocate(20 * units.KB)
	f.SetCursor(16 * units.KB)
	f.Truncate(10 * units.KB) // cursor (16K) now beyond length (10K): resets
	if f.Cursor() != 0 {
		t.Fatalf("cursor = %d after truncate", f.Cursor())
	}
}
