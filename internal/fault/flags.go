package fault

import "flag"

// Flags binds a fault scenario's knobs to a flag set — the one vocabulary
// shared by rofsim, rofs-sweep, rofs-tables, and rofs-client, so a
// scenario reproduces verbatim across front ends.
type Flags struct {
	preFail    *bool
	failAt     *float64
	mttf       *float64
	drive      *int
	transient  *float64
	rebuild    *bool
	spareDelay *float64
	chunk      *int64
	pause      *float64
	retries    *int
	backoff    *float64
	seed       *int64
}

// AddFlags registers the fault-scenario flags on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	return &Flags{
		preFail:    fs.Bool("pre-fail", false, "fault: start with -fail-drive already failed (raid5 only)"),
		failAt:     fs.Float64("fail-at", 0, "fault: fail a drive at this simulated time (ms, 0: never)"),
		mttf:       fs.Float64("mttf", 0, "fault: mean time to drive failure, exponential arrivals (ms, 0: never)"),
		drive:      fs.Int("fail-drive", 0, "fault: which drive fails (raid5 only)"),
		transient:  fs.Float64("transient", 0, "fault: per-segment transient error probability [0,1]"),
		rebuild:    fs.Bool("rebuild", false, "fault: hot-spare rebuild after a drive failure"),
		spareDelay: fs.Float64("spare-delay", 0, "fault: hot-spare swap-in delay (ms)"),
		chunk:      fs.Int64("rebuild-chunk", 0, "fault: rebuild chunk size (bytes, 0: one stripe unit)"),
		pause:      fs.Float64("rebuild-pause", 0, "fault: throttle pause between rebuild chunks (ms)"),
		retries:    fs.Int("fault-retries", 0, "fault: max retries of a failed request (0: default 4)"),
		backoff:    fs.Float64("fault-backoff", 0, "fault: base retry backoff, doubling per attempt (ms, 0: default 5)"),
		seed:       fs.Int64("fault-seed", 0, "fault: RNG offset from the run seed (0: run seed alone)"),
	}
}

// Scenario assembles the parsed flags into a Scenario. Call after the
// flag set has been parsed; validate with Scenario.Validate.
func (f *Flags) Scenario() Scenario {
	return Scenario{
		PreFail:           *f.preFail,
		FailAtMS:          *f.failAt,
		MTTFMS:            *f.mttf,
		FailDrive:         *f.drive,
		TransientProb:     *f.transient,
		Rebuild:           *f.rebuild,
		SpareDelayMS:      *f.spareDelay,
		RebuildChunkBytes: *f.chunk,
		RebuildPauseMS:    *f.pause,
		MaxRetries:        *f.retries,
		RetryBackoffMS:    *f.backoff,
		Seed:              *f.seed,
	}
}
