package fault

import (
	"flag"
	"testing"
)

func TestScenarioEnabled(t *testing.T) {
	cases := []struct {
		sc   Scenario
		want bool
	}{
		{Scenario{}, false},
		{Scenario{FailAtMS: 1000}, true},
		{Scenario{MTTFMS: 50000}, true},
		{Scenario{TransientProb: 0.01}, true},
		{Scenario{MaxRetries: 3, RetryBackoffMS: 10}, false}, // retry knobs alone inject nothing
	}
	for _, c := range cases {
		if got := c.sc.Enabled(); got != c.want {
			t.Errorf("Enabled(%+v) = %t, want %t", c.sc, got, c.want)
		}
	}
}

func TestScenarioValidate(t *testing.T) {
	good := []Scenario{
		{},
		{FailAtMS: 1000, FailDrive: 2, Rebuild: true, SpareDelayMS: 50},
		{MTTFMS: 60000, TransientProb: 0.5, MaxRetries: 10},
	}
	for _, sc := range good {
		if err := sc.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", sc, err)
		}
	}
	bad := []Scenario{
		{FailAtMS: -1},
		{MTTFMS: -1},
		{FailDrive: -1},
		{TransientProb: 1.5},
		{TransientProb: -0.1},
		{FailAtMS: 1, SpareDelayMS: -1},
		{FailAtMS: 1, RebuildChunkBytes: -1},
		{FailAtMS: 1, RebuildPauseMS: -1},
		{FailAtMS: 1, MaxRetries: -1},
		{FailAtMS: 1, RetryBackoffMS: -1},
		{Rebuild: true, TransientProb: 0.1}, // rebuild without a drive failure
	}
	for _, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", sc)
		}
	}
}

func TestScenarioKey(t *testing.T) {
	if k := (Scenario{}).Key(); k != "" {
		t.Errorf("disabled scenario key %q, want empty", k)
	}
	a := Scenario{FailAtMS: 1000, Rebuild: true}
	b := a
	b.RebuildPauseMS = 50
	if a.Key() == b.Key() {
		t.Error("scenarios differing in pause share a key")
	}
	if a.Key() != a.Key() {
		t.Error("key not deterministic")
	}
}

func TestWithDefaults(t *testing.T) {
	sc := Scenario{TransientProb: 0.1}.withDefaults()
	if sc.MaxRetries != 4 || sc.RetryBackoffMS != 5 {
		t.Errorf("defaults not applied: retries=%d backoff=%g", sc.MaxRetries, sc.RetryBackoffMS)
	}
	sc = Scenario{TransientProb: 0.1, MaxRetries: 7, RetryBackoffMS: 2}.withDefaults()
	if sc.MaxRetries != 7 || sc.RetryBackoffMS != 2 {
		t.Errorf("explicit knobs overwritten: retries=%d backoff=%g", sc.MaxRetries, sc.RetryBackoffMS)
	}
	if got := (Scenario{}).withDefaults(); got != (Scenario{}) {
		t.Errorf("disabled scenario gained defaults: %+v", got)
	}
}

// TestFlagsRoundTrip parses a full flag line and expects the assembled
// scenario to carry every knob.
func TestFlagsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	err := fs.Parse([]string{
		"-fail-at", "20000", "-fail-drive", "1", "-transient", "0.001",
		"-rebuild", "-spare-delay", "100", "-rebuild-chunk", "4194304",
		"-rebuild-pause", "10", "-fault-retries", "6", "-fault-backoff", "2.5",
		"-fault-seed", "99",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Scenario{
		FailAtMS: 20000, FailDrive: 1, TransientProb: 0.001,
		Rebuild: true, SpareDelayMS: 100, RebuildChunkBytes: 4194304,
		RebuildPauseMS: 10, MaxRetries: 6, RetryBackoffMS: 2.5, Seed: 99,
	}
	if got := f.Scenario(); got != want {
		t.Errorf("flags round trip:\n got %+v\nwant %+v", got, want)
	}
	if err := f.Scenario().Validate(); err != nil {
		t.Errorf("parsed scenario invalid: %v", err)
	}
}
