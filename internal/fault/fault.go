// Package fault is the disk array's stochastic fault model: a
// deterministic, seeded injector that schedules failure events in
// simulated time — whole-drive failures with fixed-time or exponential
// arrivals, transient media errors with a per-segment error probability,
// and hot-spare rebuild whose background reconstruction I/O competes with
// foreground traffic through the existing per-drive queues.
//
// The paper evaluates allocation policies on a healthy array; this package
// extends the evaluation to the degraded, rebuilding, and retrying states
// real arrays spend part of their life in (the availability and recovery
// tradeoffs of the RAID literature the paper builds on [PATT88]).
//
// The split of responsibilities mirrors the rest of the simulator:
//
//   - Scenario (this file) is pure declarative data — the knobs a
//     runner.Spec, service RunRequest, or CLI flag set carries.
//   - disk.System owns the mechanism: transient-error completion paths,
//     mid-run drive failure, and the throttled rebuild engine.
//   - fs.FileSystem owns bounded retry-with-backoff for failed requests
//     and surfaces permanent failures upward.
//   - Injector (injector.go) owns the policy: it arms the layers, draws
//     the failure arrivals from a dedicated RNG (so the workload's draw
//     sequence is untouched), records the fault event log, and assembles
//     the end-of-run Report.
//
// A zero Scenario is disabled: every hook in the disk and file-system hot
// paths reduces to a nil check, so a fault-off run fires a byte-identical
// event sequence to a build without this package.
package fault

import (
	"fmt"
	"strings"
)

// Scenario declares one run's fault model. The zero value is disabled.
// All times are simulated milliseconds; all sizes are bytes.
type Scenario struct {
	// FailAtMS schedules a whole-drive failure at a fixed simulated time
	// (0: no fixed-time failure).
	FailAtMS float64 `json:"fail_at_ms,omitempty"`
	// MTTFMS schedules whole-drive failures with exponentially distributed
	// arrivals of this mean (0: no stochastic failures). After a completed
	// rebuild the next arrival is drawn again, so long runs can fail and
	// recover repeatedly.
	MTTFMS float64 `json:"mttf_ms,omitempty"`
	// FailDrive selects the drive that fails (default 0). Drive failures
	// require the RAID5 layout — the only layout with a degraded mode.
	FailDrive int `json:"fail_drive,omitempty"`
	// PreFail fails FailDrive before the run begins: the whole run executes
	// in degraded mode (reads reconstruct from the survivors, writes update
	// parity alone). It subsumes the legacy core.Config.Degraded flag, which
	// remains as a documented alias for PreFail with FailDrive 0. PreFail
	// alone does not arm the injector or the retry machinery — it is a
	// static initial condition, not an event.
	PreFail bool `json:"pre_fail,omitempty"`

	// TransientProb is the per-segment probability that a serviced segment
	// completes with a transient media error (0: none). Failed requests
	// are retried by the file system under the retry knobs below.
	TransientProb float64 `json:"transient_prob,omitempty"`

	// Rebuild enables the hot spare: SpareDelayMS after a drive failure a
	// spare swaps in and background reconstruction begins, reading every
	// chunk from the surviving drives and writing it to the spare through
	// the normal per-drive queues. The array leaves degraded mode when the
	// last chunk lands.
	Rebuild bool `json:"rebuild,omitempty"`
	// SpareDelayMS is the hot-spare swap-in delay (default 0: immediate).
	SpareDelayMS float64 `json:"spare_delay_ms,omitempty"`
	// RebuildChunkBytes is the reconstruction granularity (default: one
	// stripe unit).
	RebuildChunkBytes int64 `json:"rebuild_chunk_bytes,omitempty"`
	// RebuildPauseMS throttles the rebuild rate: the pause between one
	// chunk completing and the next being issued (default 0: rebuild at
	// full speed, bounded only by queue competition).
	RebuildPauseMS float64 `json:"rebuild_pause_ms,omitempty"`

	// MaxRetries bounds the file system's retries of a failed request
	// (default 4 when the scenario is enabled). Past the bound the failure
	// is permanent and surfaces to the harness.
	MaxRetries int `json:"max_retries,omitempty"`
	// RetryBackoffMS is the base retry backoff, doubling per attempt
	// (default 5 ms of simulated time).
	RetryBackoffMS float64 `json:"retry_backoff_ms,omitempty"`

	// Seed offsets the dedicated fault RNG from the run seed, so fault
	// arrivals can be varied independently of the workload (0: derived
	// from the run seed alone).
	Seed int64 `json:"seed,omitempty"`
}

// Enabled reports whether the scenario injects any fault at all. A
// disabled scenario leaves every layer's fault hooks unarmed.
func (s Scenario) Enabled() bool {
	return s.FailAtMS > 0 || s.MTTFMS > 0 || s.TransientProb > 0
}

// FailsDrive reports whether the scenario includes whole-drive failures
// (which require the RAID5 layout).
func (s Scenario) FailsDrive() bool { return s.FailAtMS > 0 || s.MTTFMS > 0 }

// Validate checks the scenario for internal consistency.
func (s Scenario) Validate() error {
	switch {
	case s.FailAtMS < 0:
		return fmt.Errorf("fault: FailAtMS %g must be >= 0", s.FailAtMS)
	case s.MTTFMS < 0:
		return fmt.Errorf("fault: MTTFMS %g must be >= 0", s.MTTFMS)
	case s.FailDrive < 0:
		return fmt.Errorf("fault: FailDrive %d must be >= 0", s.FailDrive)
	case s.TransientProb < 0 || s.TransientProb > 1:
		return fmt.Errorf("fault: TransientProb %g outside [0, 1]", s.TransientProb)
	case s.SpareDelayMS < 0:
		return fmt.Errorf("fault: SpareDelayMS %g must be >= 0", s.SpareDelayMS)
	case s.RebuildChunkBytes < 0:
		return fmt.Errorf("fault: RebuildChunkBytes %d must be >= 0", s.RebuildChunkBytes)
	case s.RebuildPauseMS < 0:
		return fmt.Errorf("fault: RebuildPauseMS %g must be >= 0", s.RebuildPauseMS)
	case s.MaxRetries < 0:
		return fmt.Errorf("fault: MaxRetries %d must be >= 0", s.MaxRetries)
	case s.RetryBackoffMS < 0:
		return fmt.Errorf("fault: RetryBackoffMS %g must be >= 0", s.RetryBackoffMS)
	case s.Rebuild && !s.FailsDrive():
		return fmt.Errorf("fault: Rebuild needs a drive failure (FailAtMS or MTTFMS)")
	case s.PreFail && s.FailsDrive():
		return fmt.Errorf("fault: PreFail starts the run with FailDrive dead; combining it with scheduled drive failures (FailAtMS/MTTFMS) would fail a second drive, which RAID5 cannot survive")
	}
	return nil
}

// withDefaults returns the scenario with the retry knobs defaulted — the
// values an enabled scenario runs with when the caller left them zero.
func (s Scenario) withDefaults() Scenario {
	if !s.Enabled() {
		return s
	}
	if s.MaxRetries == 0 {
		s.MaxRetries = 4
	}
	if s.RetryBackoffMS == 0 {
		s.RetryBackoffMS = 5
	}
	return s
}

// Key renders the scenario's canonical identity for runner.Spec cache
// keys. Scenarios that neither inject events nor pre-fail a drive render
// empty, so fault-free Specs keep the key encoding they had before this
// package existed; the prefail term appends only when set, preserving
// pre-PreFail keys the same way.
func (s Scenario) Key() string {
	if !s.Enabled() && !s.PreFail {
		return ""
	}
	key := fmt.Sprintf("failat=%g|mttf=%g|drive=%d|tp=%g|rebuild=%t|spare=%g|chunk=%d|pause=%g|retries=%d|backoff=%g|fseed=%d",
		s.FailAtMS, s.MTTFMS, s.FailDrive, s.TransientProb, s.Rebuild,
		s.SpareDelayMS, s.RebuildChunkBytes, s.RebuildPauseMS,
		s.MaxRetries, s.RetryBackoffMS, s.Seed)
	if s.PreFail {
		key += "|prefail=true"
	}
	return key
}

// String summarizes the scenario for progress lines and reports.
func (s Scenario) String() string {
	if !s.Enabled() && !s.PreFail {
		return "none"
	}
	var parts []string
	if s.PreFail {
		parts = append(parts, fmt.Sprintf("prefail d%d", s.FailDrive))
	}
	if s.FailAtMS > 0 {
		parts = append(parts, fmt.Sprintf("fail d%d@%gms", s.FailDrive, s.FailAtMS))
	}
	if s.MTTFMS > 0 {
		parts = append(parts, fmt.Sprintf("mttf %gms", s.MTTFMS))
	}
	if s.TransientProb > 0 {
		parts = append(parts, fmt.Sprintf("transient %g", s.TransientProb))
	}
	if s.Rebuild {
		parts = append(parts, "rebuild")
	}
	return strings.Join(parts, " ")
}
