package fault

import (
	"fmt"

	"rofs/internal/disk"
	"rofs/internal/fs"
	"rofs/internal/sim"
)

// faultSeedOffset separates the fault RNG's stream from the workload RNG
// when the scenario's own Seed is zero: the two generators must never
// share a sequence, or enabling faults would change which failures the
// workload itself draws.
const faultSeedOffset = 0x0FA17

// Event is one entry of the injector's fault timeline, in simulated-time
// order.
type Event struct {
	Kind   string  `json:"kind"` // drive-failed | rebuild-started | rebuild-done
	TimeMS float64 `json:"time_ms"`
	Drive  int     `json:"drive"`
}

// Injector arms a run's fault scenario against its disk system and file
// system, schedules the drive-failure arrivals from a dedicated RNG, and
// assembles the end-of-run Report. Build it after the layers exist and
// before the simulation starts; it is single-goroutine like everything
// it touches.
type Injector struct {
	sc   Scenario
	dsys *disk.System
	fsys *fs.FileSystem
	rng  *sim.RNG

	events      []Event
	firstFailMS float64
	lastFailMS  float64
	rebuilds    int64
	rebuildMS   float64 // sum over completed failure→rebuilt cycles
}

// NewInjector validates the scenario against the run's layers, arms them,
// and schedules the initial failure arrivals (the engine is assumed to be
// at time zero). runSeed is the run's main seed; the dedicated fault RNG
// derives from runSeed + Scenario.Seed so fault arrivals can be varied
// independently of the workload.
func NewInjector(sc Scenario, runSeed int64, dsys *disk.System, fsys *fs.FileSystem) (*Injector, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if !sc.Enabled() {
		return nil, fmt.Errorf("fault: scenario is disabled")
	}
	if dsys == nil || fsys == nil {
		return nil, fmt.Errorf("fault: injector needs a disk system and a file system")
	}
	sc = sc.withDefaults()
	if sc.FailsDrive() {
		if dsys.Config().Layout != disk.RAID5 {
			return nil, fmt.Errorf("fault: drive failure requires the raid5 layout, not %v", dsys.Config().Layout)
		}
		if sc.FailDrive >= dsys.Config().NDisks {
			return nil, fmt.Errorf("fault: no drive %d in a %d-drive array", sc.FailDrive, dsys.Config().NDisks)
		}
	}
	inj := &Injector{
		sc:          sc,
		dsys:        dsys,
		fsys:        fsys,
		rng:         sim.NewRNG(runSeed + sc.Seed + faultSeedOffset),
		firstFailMS: -1,
	}
	if err := dsys.ArmFaults(disk.FaultConfig{
		RNG:           inj.rng,
		TransientProb: sc.TransientProb,
		Rebuild:       sc.Rebuild,
		SpareDelayMS:  sc.SpareDelayMS,
		ChunkBytes:    sc.RebuildChunkBytes,
		PauseMS:       sc.RebuildPauseMS,
		OnEvent:       inj.onEvent,
	}); err != nil {
		return nil, err
	}
	if err := fsys.ArmRetries(sc.MaxRetries, sc.RetryBackoffMS, nil); err != nil {
		return nil, err
	}
	if sc.FailAtMS > 0 {
		dsys.After(sc.FailAtMS, inj.fail)
	}
	if sc.MTTFMS > 0 {
		dsys.After(inj.rng.Exp(sc.MTTFMS), inj.fail)
	}
	return inj, nil
}

// Scenario returns the armed scenario with its defaults applied.
func (inj *Injector) Scenario() Scenario { return inj.sc }

// fail is the drive-failure arrival: fail the scenario's drive now. A
// second arrival while the array is already degraded is a no-op (one
// spare slot); with MTTF arrivals the next draw is scheduled from the
// rebuild-done event instead, so the arrival process restarts after
// recovery.
func (inj *Injector) fail(now float64) {
	// The layout and drive index were validated at construction; the only
	// remaining "error" is an already-degraded array, which FailDriveNow
	// reports as success.
	_ = inj.dsys.FailDriveNow(inj.sc.FailDrive, now)
}

// onEvent records the disk system's fault transitions and keeps the
// failure/recovery cycle bookkeeping.
func (inj *Injector) onEvent(ev disk.FaultEvent) {
	inj.events = append(inj.events, Event{Kind: ev.Kind.String(), TimeMS: ev.TimeMS, Drive: ev.Drive})
	switch ev.Kind {
	case disk.EventDriveFailed:
		if inj.firstFailMS < 0 {
			inj.firstFailMS = ev.TimeMS
		}
		inj.lastFailMS = ev.TimeMS
	case disk.EventRebuildDone:
		inj.rebuilds++
		inj.rebuildMS += ev.TimeMS - inj.lastFailMS
		if inj.sc.MTTFMS > 0 {
			inj.dsys.After(inj.rng.Exp(inj.sc.MTTFMS), inj.fail)
		}
	}
}

// Report assembles the run's fault report as of simulated time now
// (normally the run's end time).
func (inj *Injector) Report(now float64) *Report {
	ds := inj.dsys.FaultStats(now)
	rs := inj.fsys.RetryStats()
	r := &Report{
		Scenario:        inj.sc,
		DriveFailures:   ds.DriveFailures,
		TransientErrors: ds.TransientErrors,
		DegradedMS:      ds.DegradedMS,
		DegradedAtEnd:   ds.Degraded,
		Rebuilds:        inj.rebuilds,
		RebuildMS:       inj.rebuildMS,
		RebuildBytes:    ds.RebuildBytes,
		RebuildSegments: ds.RebuildSegments,
		Retries:         rs.Retries,
		PermanentErrors: rs.PermanentErrors,
		Events:          inj.events,
	}
	if inj.firstFailMS >= 0 {
		r.FirstFailureMS = inj.firstFailMS
	}
	if h := rs.RetryDelays; h != nil && h.Total() > 0 {
		r.RetriedOps = h.Total()
		r.RetryP50MS = h.Quantile(0.50)
		r.RetryP95MS = h.Quantile(0.95)
	}
	return r
}

// Report is a run's fault outcome: what failed, how long the array ran
// degraded, how the rebuild went, and what the retry path absorbed. Times
// are simulated milliseconds.
type Report struct {
	Scenario Scenario `json:"scenario"`

	DriveFailures  int64   `json:"drive_failures"`
	FirstFailureMS float64 `json:"first_failure_ms,omitempty"`
	// DegradedMS is the total simulated time the array spent degraded;
	// DegradedAtEnd reports whether the run ended still degraded (no
	// rebuild, or rebuild unfinished at the simulated-time cap).
	DegradedMS    float64 `json:"degraded_ms"`
	DegradedAtEnd bool    `json:"degraded_at_end,omitempty"`

	// Rebuilds counts completed failure→rebuilt cycles; RebuildMS sums
	// their failure-to-healed times (the time-to-rebuild).
	Rebuilds        int64   `json:"rebuilds"`
	RebuildMS       float64 `json:"rebuild_ms"`
	RebuildBytes    int64   `json:"rebuild_bytes"`
	RebuildSegments int64   `json:"rebuild_segments"`

	TransientErrors int64 `json:"transient_errors"`
	Retries         int64 `json:"retries"`
	PermanentErrors int64 `json:"permanent_errors"`
	// RetriedOps is the number of requests that failed at least once;
	// RetryP50MS/RetryP95MS bucket their first-failure → completion
	// delays.
	RetriedOps int64   `json:"retried_ops,omitempty"`
	RetryP50MS float64 `json:"retry_p50_ms,omitempty"`
	RetryP95MS float64 `json:"retry_p95_ms,omitempty"`

	Events []Event `json:"events,omitempty"`
}
