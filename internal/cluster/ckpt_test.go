package cluster_test

import (
	"reflect"
	"strings"
	"testing"

	"rofs/internal/ckpt"
	"rofs/internal/cluster"
	"rofs/internal/core"
)

// armed attaches a 5-second checkpoint grid to cfg, collecting boundary
// states into *states and resuming from resume.
func armed(cfg core.Config, states *[]ckpt.State, resume *ckpt.State) core.Config {
	cfg.Checkpoint = &ckpt.Hook{
		EveryMS: 5_000,
		Key:     "cluster-ckpt-test",
		Sink: func(st ckpt.State) error {
			if states != nil {
				*states = append(*states, st)
			}
			return nil
		},
		Resume: resume,
	}
	return cfg
}

// TestFleetResumeEqualsUninterrupted is the fleet acceptance property:
// an N=4 closed-loop fleet resumed from a window boundary finishes
// byte-identical to the uninterrupted armed fleet run.
func TestFleetResumeEqualsUninterrupted(t *testing.T) {
	cc := cluster.Config{Instances: 4}
	var states []ckpt.State
	base, err := cluster.Run(armed(benchCfg(t), &states, nil), cc, core.Application)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) < 2 {
		t.Fatalf("fleet produced %d checkpoints (ended at %g ms)", len(states), base.Stats.SimMS)
	}
	for _, st := range states {
		if st.SimMS != float64(st.Seq)*5_000 {
			t.Fatalf("boundary off the grid: seq %d at %g ms", st.Seq, st.SimMS)
		}
		if len(st.Instances) != 4 {
			t.Fatalf("checkpoint holds %d instances, want 4", len(st.Instances))
		}
	}

	resume := states[len(states)/2]
	resumed, err := cluster.Run(armed(benchCfg(t), nil, &resume), cc, core.Application)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Perf, resumed.Perf) {
		t.Errorf("resumed fleet PerfResult differs:\nbase:    %+v\nresumed: %+v", base.Perf, resumed.Perf)
	}
	if base.Stats != resumed.Stats {
		t.Errorf("fleet run stats differ: base %+v resumed %+v", base.Stats, resumed.Stats)
	}

	// A different fleet shape must fail verification, not fabricate
	// results.
	_, err = cluster.Run(armed(benchCfg(t), nil, &resume), cluster.Config{Instances: 2}, core.Application)
	if err == nil || !strings.Contains(err.Error(), "verification failed") {
		t.Fatalf("fleet-shape drift: err = %v, want verification failure", err)
	}
}

// TestFleetOpenLoopCheckpoint: open-loop fleets fold the admission
// coordinator's counters into the fingerprint and resume identically.
func TestFleetOpenLoopCheckpoint(t *testing.T) {
	cc := cluster.Config{Instances: 2, Admission: cluster.AdmitTokenBucket, TokenCapacity: 50, TokenRefillPerSec: 200}
	cfg := openLoop(benchCfg(t), 100)
	var states []ckpt.State
	base, err := cluster.Run(armed(cfg, &states, nil), cc, core.Application)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 {
		t.Fatalf("no checkpoints (ended at %g ms)", base.Stats.SimMS)
	}
	last := states[len(states)-1]
	if last.Coord == nil || last.Coord.Arrivals == 0 {
		t.Fatalf("open-loop checkpoint missing coordinator state: %+v", last.Coord)
	}
	resume := states[len(states)/2]
	resumed, err := cluster.Run(armed(openLoop(benchCfg(t), 100), nil, &resume), cc, core.Application)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Perf, resumed.Perf) || base.Stats != resumed.Stats {
		t.Fatalf("open-loop resume differs:\nbase:    %+v %+v\nresumed: %+v %+v",
			base.Perf, base.Stats, resumed.Perf, resumed.Stats)
	}
}
