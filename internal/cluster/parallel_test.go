package cluster_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"rofs/internal/cluster"
	"rofs/internal/core"
	"rofs/internal/metrics"
)

// marshalOutcome renders everything a fleet run reports — perf result,
// cluster report, and run stats — for byte-level comparison across
// execution modes.
func marshalOutcome(t *testing.T, out core.Outcome) []byte {
	t.Helper()
	b, err := json.MarshalIndent(struct {
		Perf  core.PerfResult
		Stats core.RunStats
	}{out.Perf, out.Stats}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// goldenFleet is the N=4 routed open-loop configuration pinned by
// testdata/fleet_n4_tp_seed42.golden.
func goldenFleet() cluster.Config {
	return cluster.Config{
		Instances:         4,
		Routing:           cluster.RouteLeastLoaded,
		SnapshotMS:        250,
		Admission:         cluster.AdmitTokenBucket,
		TokenCapacity:     32,
		TokenRefillPerSec: 300,
	}
}

// The routed open-loop fleet golden must reproduce byte-identically at
// every Parallelism value: worker count is an execution knob, never a
// model knob.
func TestParallelReproducesFleetGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "fleet_n4_tp_seed42.golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 2, 4, 16} {
		cc := goldenFleet()
		cc.Parallelism = par
		out, err := cluster.Run(openLoop(benchCfg(t), 400), cc, core.Application)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		got, err := json.MarshalIndent(out.Perf, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, '\n')
		if !bytes.Equal(got, want) {
			t.Errorf("par=%d: fleet report deviates from the golden", par)
		}
	}
}

// A closed-loop N=4 fleet (the embarrassingly-parallel tier: per-instance
// engines run to their own stops with no windows at all) must produce the
// identical outcome serial and parallel.
func TestParallelMatchesSerialClosedLoop(t *testing.T) {
	run := func(par int) []byte {
		cc := cluster.Config{Instances: 4, Admission: cluster.AdmitQueue, QueueCap: 1 << 20, Parallelism: par}
		out, err := cluster.Run(benchCfg(t), cc, core.Application)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return marshalOutcome(t, out)
	}
	serial := run(0)
	for _, par := range []int{2, 4} {
		if got := run(par); !bytes.Equal(got, serial) {
			t.Errorf("par=%d closed-loop outcome deviates from serial:\nserial: %s\npar:    %s", par, serial, got)
		}
	}
}

// With metrics on, fleets take the windowed tier (samples are barriers);
// report and full rofs-metrics/v1 bundle must match serial byte for byte,
// open- and closed-loop.
func TestParallelMatchesSerialMetricsBundle(t *testing.T) {
	for _, tc := range []struct {
		name string
		open bool
	}{{"open", true}, {"closed", false}} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(par int) ([]byte, []byte) {
				cfg := benchCfg(t)
				if tc.open {
					cfg = openLoop(cfg, 400)
				}
				cfg.Metrics = metrics.New(1000)
				cc := goldenFleet()
				cc.Parallelism = par
				out, err := cluster.Run(cfg, cc, core.Application)
				if err != nil {
					t.Fatalf("par=%d: %v", par, err)
				}
				var bundle bytes.Buffer
				if err := out.Metrics.Write(&bundle, metrics.JSON); err != nil {
					t.Fatal(err)
				}
				return marshalOutcome(t, out), bundle.Bytes()
			}
			serialOut, serialBundle := run(1)
			parOut, parBundle := run(4)
			if !bytes.Equal(parOut, serialOut) {
				t.Errorf("parallel outcome deviates from serial")
			}
			if !bytes.Equal(parBundle, serialBundle) {
				t.Errorf("parallel metrics bundle deviates from serial (%d vs %d bytes)",
					len(parBundle), len(serialBundle))
			}
		})
	}
}

// Extra synchronization barriers must be invisible to a fleet whose only
// mid-run coupling reads sit on the snapshot grid: the least-loaded
// staleness clock is defined in simulated time (multiples of SnapshotMS),
// not in window counts, so shrinking the lookahead window below the
// snapshot interval changes nothing.
func TestSnapshotGridIndependentOfWindowing(t *testing.T) {
	run := func(syncMS float64, par int) []byte {
		cc := goldenFleet()
		cc.SyncMS = syncMS
		cc.Parallelism = par
		out, err := cluster.Run(openLoop(benchCfg(t), 400), cc, core.Application)
		if err != nil {
			t.Fatalf("sync=%g par=%d: %v", syncMS, par, err)
		}
		return marshalOutcome(t, out)
	}
	base := run(0, 0)
	for _, tc := range []struct {
		syncMS float64
		par    int
	}{{50, 0}, {50, 4}, {125, 2}} {
		if got := run(tc.syncMS, tc.par); !bytes.Equal(got, base) {
			t.Errorf("sync=%g par=%d: snapshot-routed fleet result changed with the window grid",
				tc.syncMS, tc.par)
		}
	}
}

// Property: merged fleet stats are a function of the configuration alone,
// independent of worker count — checked across random Parallelism values
// on an open-loop bounded-queue fleet (the config whose coupling is the
// most window-sensitive).
func TestFleetStatsWorkerCountProperty(t *testing.T) {
	cfg := openLoop(benchCfg(t), 300)
	cfg.MaxSimMS = 10_000
	cc := cluster.Config{Instances: 3, Admission: cluster.AdmitQueue, QueueCap: 48}
	ref, err := cluster.Run(cfg, cc, core.Application)
	if err != nil {
		t.Fatal(err)
	}
	want := marshalOutcome(t, ref)
	prop := func(par uint8) bool {
		c := cc
		c.Parallelism = int(par % 9)
		out, err := cluster.Run(cfg, c, core.Application)
		if err != nil {
			return false
		}
		return bytes.Equal(marshalOutcome(t, out), want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 16}); err != nil {
		t.Error(err)
	}
}
