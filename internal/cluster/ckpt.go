package cluster

import (
	"fmt"

	"rofs/internal/ckpt"
)

// Fleet checkpointing rides the conservative-lookahead window machinery:
// the checkpoint grid joins the boundary union in runWindowed, and at
// each of its boundaries the coordinator — which owns every instance and
// the admission state at a barrier — fingerprints the whole fleet in one
// State: total events fired across all engines, per-instance RNG
// positions and counters in index order, and the coordinator's
// admission counters for open-loop fleets. Verification and persistence
// then follow exactly the plain-run semantics in core/ckpt.go.

// ckptHook returns the fleet's armed checkpoint hook, or nil.
func (d *Deployment) ckptHook() *ckpt.Hook {
	if h := d.cfg.Checkpoint; h != nil && h.EveryMS > 0 {
		return h
	}
	return nil
}

// ckptBoundary fingerprints the fleet at boundary time t1, verifies
// against the resume target when this is its boundary, and persists the
// state. A failed verification is fatal: the replay diverged from the
// original run and continuing would fabricate results.
func (d *Deployment) ckptBoundary(t1 float64, open bool) error {
	h := d.ckptHook()
	d.ckptSeq++
	st := ckpt.State{
		Schema:  ckpt.Schema,
		SpecKey: h.Key,
		Label:   h.Label,
		Seq:     d.ckptSeq,
		SimMS:   t1,
		Events:  d.totalFired(),
	}
	for _, in := range d.insts {
		st.Instances = append(st.Instances, in.CheckpointState())
	}
	if open {
		st.Coord = &ckpt.CoordState{Arrivals: d.arrivals, Admitted: d.admitted, Rejected: d.rejected}
	}
	st.Seal()
	if r := h.Resume; r != nil && st.Seq == r.Seq {
		if err := ckpt.Verify(st, *r); err != nil {
			return fmt.Errorf("cluster: resume verification failed: %w", err)
		}
		d.ckptVerified = true
	}
	if h.Sink != nil {
		if err := h.Sink(st); err != nil && d.ckptErr == nil {
			// Lost persistence does not invalidate the simulation; note it
			// so the caller knows resume coverage stopped here.
			d.ckptErr = fmt.Errorf("cluster: checkpoint at %g ms not persisted: %w", t1, err)
		}
	}
	return nil
}

// ckptFinish folds checkpoint-layer failures into the finished run, the
// fleet counterpart of Instance.ckptFinish.
func (d *Deployment) ckptFinish(end float64) error {
	if d.ckptErr != nil {
		return d.ckptErr
	}
	h := d.ckptHook()
	if h != nil && h.Resume != nil && !d.ckptVerified && !d.anyCanceled() {
		return fmt.Errorf("cluster: run ended at %g ms without reaching the resume checkpoint (seq %d at %g ms) — checkpoint grid or config drifted",
			end, h.Resume.Seq, h.Resume.SimMS)
	}
	return nil
}
