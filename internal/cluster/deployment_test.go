package cluster_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rofs/internal/alloc/extent"
	"rofs/internal/cluster"
	"rofs/internal/core"
	"rofs/internal/experiments"
	"rofs/internal/metrics"
	"rofs/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// benchCfg returns a bench-scale TP application config (the workload whose
// random 8K reads exercise routing most evenly).
func benchCfg(t *testing.T) core.Config {
	t.Helper()
	sc := experiments.BenchScale()
	wl, err := sc.Workload("TP")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sc.Config(core.Extent(extent.BestFit, []int64{16 * 1024, 512 * 1024, 16 * 1024 * 1024}), wl)
	cfg.MaxSimMS = 30_000
	return cfg
}

// openLoop attaches a Poisson arrival block to the config's workload.
func openLoop(cfg core.Config, rate float64) core.Config {
	cfg.Workload.Arrivals = &workload.Arrivals{RatePerSec: rate}
	return cfg
}

// An N=1 closed-loop cluster run must reproduce the plain core run
// byte-identically: same Outcome, same metrics bundle.
func TestSingleInstanceMatchesPlainRun(t *testing.T) {
	cfg := benchCfg(t)

	plainCfg := cfg
	plainCfg.Metrics = metrics.New(1000)
	plain, err := core.Run(plainCfg, core.Application)
	if err != nil {
		t.Fatal(err)
	}

	clCfg := cfg
	clCfg.Metrics = metrics.New(1000)
	cl, err := cluster.Run(clCfg, cluster.Config{Instances: 1}, core.Application)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.Perf, cl.Perf) {
		t.Errorf("perf results differ:\nplain:   %+v\ncluster: %+v", plain.Perf, cl.Perf)
	}
	if plain.Stats != cl.Stats {
		t.Errorf("run stats differ: plain %+v cluster %+v", plain.Stats, cl.Stats)
	}
	var pb, cb bytes.Buffer
	if err := plain.Metrics.Write(&pb, metrics.JSON); err != nil {
		t.Fatal(err)
	}
	if err := cl.Metrics.Write(&cb, metrics.JSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb.Bytes(), cb.Bytes()) {
		t.Errorf("metrics bundles differ: plain %d bytes, cluster %d bytes", pb.Len(), cb.Len())
	}
}

// A multi-instance fleet must be deterministic per seed: the golden pins
// the full report of an N=4 least-loaded token-bucket run, byte for byte.
//
// The golden was regenerated once when fleets moved from one shared
// engine to per-instance engines (see parallel.go): completion times are
// quantized, and cross-instance ties in the central latency merge now
// break by instance index — a canonical order — where the shared engine
// broke them by event sequence number, an artifact of interleaved
// scheduling history. Only MeanLatencyMS moved, in the 13th significant
// digit; every count, routing decision, and per-instance figure is
// unchanged. parallel_test.go pins that the golden is reproduced
// byte-identically at every Parallelism value.
func TestFleetDeterminismGolden(t *testing.T) {
	cfg := openLoop(benchCfg(t), 400)
	cc := cluster.Config{
		Instances:         4,
		Routing:           cluster.RouteLeastLoaded,
		SnapshotMS:        250,
		Admission:         cluster.AdmitTokenBucket,
		TokenCapacity:     32,
		TokenRefillPerSec: 300,
	}
	run := func() []byte {
		out, err := cluster.Run(cfg, cc, core.Application)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(out.Perf, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return append(b, '\n')
	}
	first := run()
	if again := run(); !bytes.Equal(first, again) {
		t.Fatal("two same-seed fleet runs produced different reports")
	}

	golden := filepath.Join("testdata", "fleet_n4_tp_seed42.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, first, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(first, want) {
		t.Errorf("fleet report deviates from golden %s (re-run with -update if the change is intentional)\ngot:\n%s", golden, first)
	}
}

// A closed-loop fleet runs N independent user populations on one clock:
// every member must complete work and the report must carry all members.
func TestClosedLoopFleet(t *testing.T) {
	cfg := benchCfg(t)
	out, err := cluster.Run(cfg, cluster.Config{Instances: 2}, core.Application)
	if err != nil {
		t.Fatal(err)
	}
	rep := out.Perf.Cluster
	if rep == nil {
		t.Fatal("fleet run produced no cluster report")
	}
	if len(rep.PerInstance) != 2 {
		t.Fatalf("report has %d instances, want 2", len(rep.PerInstance))
	}
	for _, ip := range rep.PerInstance {
		if ip.Ops == 0 {
			t.Errorf("instance %d completed no operations", ip.Index)
		}
	}
	if rep.Arrivals != 0 {
		t.Errorf("closed-loop fleet counted %d arrivals, want 0 (nothing is routed)", rep.Arrivals)
	}
	if out.Perf.Ops != rep.PerInstance[0].Ops+rep.PerInstance[1].Ops {
		t.Error("fleet ops do not sum the members")
	}
}

// Past the admission cap the reject rate must be nonzero, and admitted +
// rejected must account for every arrival.
func TestAdmissionRejectsPastCap(t *testing.T) {
	cfg := openLoop(benchCfg(t), 2000) // far beyond two bench drives
	cfg.MaxSimMS = 10_000
	out, err := cluster.Run(cfg, cluster.Config{
		Instances: 2,
		Admission: cluster.AdmitQueue,
		QueueCap:  8,
	}, core.Application)
	if err != nil {
		t.Fatal(err)
	}
	rep := out.Perf.Cluster
	if rep == nil {
		t.Fatal("no cluster report")
	}
	if rep.Rejected == 0 {
		t.Fatal("overloaded bounded queue rejected nothing")
	}
	if rep.Admitted+rep.Rejected != rep.Arrivals {
		t.Fatalf("admitted %d + rejected %d != arrivals %d", rep.Admitted, rep.Rejected, rep.Arrivals)
	}
	if rep.RejectPct <= 0 {
		t.Fatalf("RejectPct = %g, want > 0", rep.RejectPct)
	}
}

// Affinity routing keys on the client: with one client, everything lands
// on one member.
func TestAffinityPinsClient(t *testing.T) {
	cfg := benchCfg(t)
	cfg.Workload.Arrivals = &workload.Arrivals{RatePerSec: 100, Clients: 1}
	cfg.MaxSimMS = 10_000
	out, err := cluster.Run(cfg, cluster.Config{Instances: 4, Routing: cluster.RouteAffinity}, core.Application)
	if err != nil {
		t.Fatal(err)
	}
	rep := out.Perf.Cluster
	nonEmpty := 0
	for _, ip := range rep.PerInstance {
		if ip.Routed > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("one client spread across %d instances, want 1", nonEmpty)
	}
}

// Fleets are restricted to the application test.
func TestFleetRejectsOtherKinds(t *testing.T) {
	cfg := benchCfg(t)
	for _, kind := range []core.TestKind{core.Allocation, core.Sequential, core.AllocationRealloc} {
		if _, err := cluster.Run(cfg, cluster.Config{Instances: 2}, kind); err == nil {
			t.Errorf("kind %s: fleet run accepted, want error", kind)
		}
	}
}
