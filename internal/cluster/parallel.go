package cluster

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"rofs/internal/core"
	"rofs/internal/sim"
)

// This file is the fleet execution layer: per-instance engines advanced by
// a pool of worker goroutines, in two tiers.
//
// Tier 1 — embarrassingly parallel (runIndependent). A closed-loop fleet
// with metrics off has no cross-instance coupling whatsoever: each member
// serves its own user population from its own RNG stream on its own
// engine. Every engine runs to its own stop, and a single barrier merges
// the results in instance-index order.
//
// Tier 2 — conservative lookahead (runWindowed). Open-loop fleets couple
// through the coordinator (admission occupancy, routing load view, central
// latency), and metrics-on fleets couple through the shared registry. All
// engines advance in bounded simulated-time windows; the coordinator owns
// the simulated interval (t, t1] exclusively at the boundary t1 and
// exchanges everything there: the window's arrivals are admitted, routed,
// and enqueued into the target engines before the window runs; the
// window's completions are applied afterwards in merged (time, instance)
// order. The lookahead is the coupling grid itself — the router snapshot
// interval when one is configured, else Config.SyncMS, else
// defaultSyncMS — so serial and parallel schedules observe identical
// snapshots and identical admission state by construction. Worker count
// can therefore never change results, only wall-clock time.
//
// Determinism contract, in PR-6 shared-engine terms: token-bucket
// admission and snapshot-interval least-loaded routing see exactly the
// serial shared-engine schedule (refill is a pure function of arrival
// times; snapshots are only read at grid points, and every grid point is
// a barrier). Two couplings are deliberately window-quantized: bounded-
// queue releases and *fresh* (SnapshotMS=0) least-loaded counts become
// visible at the next boundary rather than mid-window. Both remain
// deterministic and identical at every worker count; SyncMS pins the
// observation grid, which is why it is part of Config.Key while
// Parallelism is not. Cross-instance ties in the completion merge (disk
// times are quantized, so ties are real) break by instance index — a
// canonical order — where the shared engine broke them by event sequence
// number, an artifact of interleaved scheduling history; the fleet golden
// was regenerated once for that switch (MeanLatencyMS, 13th digit).

// defaultSyncMS is the open-loop lookahead window when neither the router
// snapshot interval nor Config.SyncMS defines a coupling grid.
const defaultSyncMS = 100

// forEach runs fn(i) once per instance — inline when serial, else on
// min(Parallelism, N) workers claiming indices from a shared counter.
// Each instance is touched by exactly one worker, and the WaitGroup
// barrier hands ownership back to the coordinator, so instance and
// per-index state need no locks.
func (d *Deployment) forEach(fn func(i int)) {
	if d.par <= 1 {
		for i := range d.insts {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(d.par)
	for w := 0; w < d.par; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(d.insts) {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// prime fans the allocation-only initialization phase across the workers.
// Priming advances no simulated time and is instance-local; errors are
// reported in instance order whatever order the workers finish in.
func (d *Deployment) prime() error {
	errs := make([]error, len(d.insts))
	d.forEach(func(i int) { errs[i] = d.insts[i].PrimeThroughput() })
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("cluster: instance %d: %w", i, err)
		}
	}
	return nil
}

// runIndependent is tier 1: every closed-loop member runs to its own
// stabilization (or the horizon), then the early stoppers resume to the
// fleet-wide end so their users keep issuing operations until the whole
// fleet stops — exactly the shared-engine schedule, where the engine only
// stopped at the last member's stabilization tick.
func (d *Deployment) runIndependent() (float64, error) {
	horizon := d.insts[0].MaxSimMS()
	for i, in := range d.insts {
		i := i
		in.SetOnStable(func() {
			d.stableAt[i] = d.engs[i].Now()
			d.engs[i].Stop()
		})
		in.ScheduleUsers()
	}
	d.forEach(func(i int) { d.engs[i].Run(horizon) })
	if d.anyCanceled() {
		end := 0.0
		for _, e := range d.engs {
			end = math.Max(end, e.Now())
		}
		return end, nil
	}

	end := horizon
	if d.allStable() {
		end = 0
		for i := range d.stableAt {
			end = math.Max(end, d.stableAt[i])
		}
	}
	// Members that stabilized before the fleet end stopped their tick
	// chain but not their users; run them forward to the common end. The
	// member(s) that defined the end stay put: in the shared engine,
	// nothing after the final stabilization tick fired.
	d.forEach(func(i int) {
		if t := d.stableAt[i]; !math.IsNaN(t) && t < end {
			d.engs[i].RunUntil(end)
		}
	})
	return end, nil
}

// runWindowed is tier 2: the conservative-lookahead loop. Per window —
//
//  1. the control-plane engine fires the window's arrivals (open-loop),
//     admitting, routing, and enqueuing pooled dispatch events into the
//     target instance engines at the exact arrival times;
//  2. every instance engine advances to the boundary (in parallel);
//  3. the barrier applies buffered completions in merged (time, instance)
//     order — live counts, admission releases, central latency — then
//     refreshes the router snapshot and samples metrics if their grids
//     land on this boundary, and evaluates the stop conditions.
//
// Window boundaries are the union of the coupling grids (snapshot,
// metrics interval, lookahead, horizon), each kept as its own running
// accumulator so boundary times are bit-identical to the self-
// rescheduling engine ticks the shared-engine fleet used.
func (d *Deployment) runWindowed(open bool) (float64, error) {
	horizon := d.insts[0].MaxSimMS()
	n := len(d.insts)
	for i, in := range d.insts {
		i := i
		in.SetOnStable(func() { d.stableAt[i] = d.engs[i].Now() })
	}

	ll, _ := d.router.(*leastLoaded)
	snapW := 0.0
	if open && ll != nil && d.cc.SnapshotMS > 0 {
		snapW = d.cc.SnapshotMS
	}
	sampleW := 0.0
	if d.reg != nil {
		sampleW = d.reg.IntervalMS()
	}
	ckptW := 0.0
	if h := d.ckptHook(); h != nil {
		ckptW = h.EveryMS
	}
	syncW := 0.0
	if open {
		switch {
		case d.cc.SyncMS > 0:
			syncW = d.cc.SyncMS
		case snapW > 0:
			// The router's snapshot interval is the natural lookahead: the
			// only mid-run coupling reads happen on its grid anyway.
			syncW = snapW
		default:
			syncW = defaultSyncMS
		}
	}

	if open {
		d.comps = make([][]completion, n)
		d.heads = make([]int, n)
		d.freeDisp = make([][]*dispatchEv, n)
		d.spentDisp = make([][]*dispatchEv, n)
		for i, in := range d.insts {
			i := i
			in.SetOnOpDone(func(_ *core.Instance, now, lat float64) {
				d.comps[i] = append(d.comps[i], completion{at: now, lat: lat})
			})
		}
		// The arrival source lives on its own control-plane engine so the
		// coordinator can replay each window's arrivals before the
		// instance engines run it. Seed and salt match the shared-engine
		// fleet, so the arrival sequence is unchanged.
		d.ctl = &sim.Engine{}
		src, err := core.NewArrivalSource(d.ctl, d.cfg.Seed, &d.cfg.Workload, d.onArrival)
		if err != nil {
			return 0, err
		}
		d.src = src
		src.Start(0)
	} else {
		for _, in := range d.insts {
			in.ScheduleUsers()
		}
	}

	nextSnap, nextSample, nextSync, nextCkpt := math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)
	if snapW > 0 {
		nextSnap = snapW
	}
	if sampleW > 0 {
		nextSample = sampleW
	}
	if syncW > 0 {
		nextSync = syncW
	}
	if ckptW > 0 {
		nextCkpt = ckptW
	}

	end := horizon
	for t := 0.0; t < horizon; {
		t1 := math.Min(horizon, math.Min(math.Min(nextSync, nextCkpt), math.Min(nextSnap, nextSample)))
		if open {
			d.ctl.RunUntil(t1)
		}
		d.forEach(func(i int) { d.engs[i].RunUntil(t1) })
		if open {
			d.applyCompletions()
			d.recycleDispatch()
		}
		if t1 == nextSnap {
			ll.refresh()
			nextSnap += snapW
		}
		if t1 == nextSample {
			d.reg.Sample(t1)
			nextSample += sampleW
		}
		if t1 == nextCkpt {
			if err := d.ckptBoundary(t1, open); err != nil {
				return t1, err
			}
			nextCkpt += ckptW
		}
		if t1 == nextSync {
			nextSync += syncW
		}
		t = t1
		switch {
		case d.anyCanceled(), d.allStable(),
			open && d.src.Exhausted() && d.totalLive() == 0:
			// Fleet stops quantize to the window boundary: the members
			// already ran through t1, so that is the fleet's common end.
			end = t1
			t = horizon
		}
	}
	return end, nil
}

// applyCompletions drains the per-instance completion buffers in merged
// global order — ascending completion time, ties by instance index — so
// the coordinator's occupancy, live counts, and central latency
// accumulation replay the serial schedule exactly, independent of which
// worker ran which instance.
func (d *Deployment) applyCompletions() {
	comps, heads := d.comps, d.heads
	for {
		best := -1
		for i := range comps {
			if heads[i] >= len(comps[i]) {
				continue
			}
			if best < 0 || comps[i][heads[i]].at < comps[best][heads[best]].at {
				best = i
			}
		}
		if best < 0 {
			break
		}
		c := comps[best][heads[best]]
		heads[best]++
		d.live[best]--
		d.admit.Release(c.at)
		d.latency.Add(c.lat)
		d.latencyH.Add(c.lat)
	}
	for i := range comps {
		comps[i] = comps[i][:0]
		heads[i] = 0
	}
}

// dispatchEv is a pooled cross-engine hop: the coordinator fills it with
// an admitted arrival and schedules it into the target instance's engine
// at the arrival time; the instance fires it and parks it on its spent
// list, which the coordinator folds back into the free list at the next
// barrier. Steady state allocates nothing — the pools grow to the peak
// per-window arrival count and stay there.
type dispatchEv struct {
	a    core.Arrival
	fire sim.Handler
}

// dispatch enqueues an admitted arrival into instance i's engine through
// the pool. Coordinator-only.
func (d *Deployment) dispatch(i int, now float64, a core.Arrival) {
	var ev *dispatchEv
	if n := len(d.freeDisp[i]); n > 0 {
		ev = d.freeDisp[i][n-1]
		d.freeDisp[i] = d.freeDisp[i][:n-1]
	} else {
		ev = &dispatchEv{}
		in := d.insts[i]
		ev.fire = func(at float64) {
			in.Dispatch(at, ev.a)
			// Instance-goroutine-owned during the window; harvested at the
			// barrier.
			d.spentDisp[i] = append(d.spentDisp[i], ev)
		}
	}
	ev.a = a
	d.engs[i].At(now, ev.fire)
}

// recycleDispatch returns the window's fired dispatch events to the free
// lists. Runs at the barrier, after the workers have parked.
func (d *Deployment) recycleDispatch() {
	for i := range d.spentDisp {
		d.freeDisp[i] = append(d.freeDisp[i], d.spentDisp[i]...)
		d.spentDisp[i] = d.spentDisp[i][:0]
	}
}
