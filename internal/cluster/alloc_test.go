package cluster_test

import (
	"runtime"
	"testing"

	"rofs/internal/cluster"
	"rofs/internal/core"
)

// fleetAllocStats runs one metrics-off fleet to a 120s horizon and
// returns the heap allocations and engine events the run cost.
func fleetAllocStats(t *testing.T, cc cluster.Config, open bool) (uint64, uint64) {
	t.Helper()
	cfg := benchCfg(t)
	if open {
		cfg = openLoop(cfg, 400)
	}
	cfg.MaxSimMS = 120_000
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	out, err := cluster.Run(cfg, cc, core.Application)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, out.Stats.Events
}

// TestParallelPathAllocOverhead extends the repo's allocation budget to
// the parallel fleet executor: with metrics off, fanning the instance
// engines across workers must not add per-event allocations over the
// serial schedule.
//
// The measurement exploits byte identity. A serial (par=0) and a
// parallel (par=4) run of the same configuration execute the exact same
// operation sequence, so the model's own allocations — allocation-policy
// free-list nodes, userOp pool growth, segment buffers — are identical
// and cancel in the difference; what remains is purely the executor's
// overhead (worker goroutine fan-out per window, dispatch/completion
// pool growth). That overhead must amortize to well under 0.05
// allocs/event; a per-event allocation on the parallel hot path (a
// closure or buffer grown per dispatch instead of pooled) would show up
// at ≥1 and fail loudly. Merge-time work (latency histogram merges,
// report assembly) is identical on both sides and cancels too.
func TestParallelPathAllocOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run fleet measurement in short mode")
	}
	const tol = 0.05
	cases := []struct {
		name   string
		serial cluster.Config
		open   bool
	}{
		// Independent tier: closed-loop fleet, engines run to the horizon
		// with no windows at all — overhead is one goroutine per worker
		// per phase, nothing per event.
		{"closed", cluster.Config{Instances: 4}, false},
		// Windowed tier: open-loop with admission; the conservative-
		// lookahead executor spawns workers per sync window, a cost that
		// scales with window count, not event count.
		{"open", cluster.Config{Instances: 4, Admission: cluster.AdmitTokenBucket,
			TokenCapacity: 32, TokenRefillPerSec: 300, SyncMS: 500}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			par := tc.serial
			par.Parallelism = 4
			aSerial, eSerial := fleetAllocStats(t, tc.serial, tc.open)
			aPar, ePar := fleetAllocStats(t, par, tc.open)
			if eSerial != ePar {
				t.Fatalf("schedules diverged: serial fired %d events, parallel %d", eSerial, ePar)
			}
			// Signed: the parallel run can come in a hair under serial on
			// runtime background noise when the true overhead is zero.
			overhead := int64(aPar) - int64(aSerial)
			if overhead < 0 {
				overhead = 0
			}
			perEvent := float64(overhead) / float64(ePar)
			t.Logf("executor overhead %.4f allocs/event (%d allocs over %d events)",
				perEvent, overhead, ePar)
			if perEvent > tol {
				t.Errorf("parallel path allocates: %.4f allocs/event over serial exceeds %.2f", perEvent, tol)
			}
		})
	}
}
