package cluster

import (
	"rofs/internal/core"
)

// RoutingPolicy picks the instance an admitted arrival is dispatched to.
// Implementations are deterministic: same arrival sequence and load
// history, same routing decisions. The load view is the router's own —
// the least-loaded policy reads a snapshot refreshed on its configured
// interval, not the instantaneous truth.
type RoutingPolicy interface {
	// Route returns the target instance index for the arrival at now.
	Route(now float64, a core.Arrival) int
	// Name returns the policy's configuration name.
	Name() string
}

// roundRobin cycles through the fleet in index order — the fairness
// baseline every routing comparison starts from.
type roundRobin struct {
	n    int
	next int
}

func newRoundRobin(n int) *roundRobin { return &roundRobin{n: n} }

func (r *roundRobin) Name() string { return RouteRoundRobin }

func (r *roundRobin) Route(_ float64, _ core.Arrival) int {
	i := r.next
	r.next++
	if r.next == r.n {
		r.next = 0
	}
	return i
}

// leastLoaded routes to the instance with the fewest in-flight operations
// in its load snapshot, breaking ties by lowest index. With SnapshotMS of
// zero the snapshot is the live count (an ideal, instantly-consistent
// balancer, observed at window-boundary freshness — see below); with a
// positive interval the router herds arrivals between refreshes toward a
// member whose queue may already have filled — the stale-snapshot
// pathology real balancers exhibit.
//
// Staleness clock semantics: the snapshot's staleness is defined in
// simulated time, at multiples of SnapshotMS from the start of
// measurement. The Deployment refreshes the snapshot at exactly those
// grid points, which are always window barriers of the conservative-
// lookahead executor (parallel.go), and a refresh copies the live counts
// as of that same simulated instant: dispatches at or before the grid
// point minus completions applied through it. Serial and parallel
// schedules therefore observe identical snapshots — the refresh times and
// the copied values are functions of the configuration and the simulated
// clock, never of worker count or wall-clock interleaving
// (TestSnapshotGridIndependentOfWindowing pins this). In fresh mode the
// live counts themselves carry window-boundary freshness: completions
// decrement them at the barrier that applies them.
type leastLoaded struct {
	live []int // deployment-maintained true in-flight counts
	snap []int // the router's view
	// fresh reads live directly instead of snap (SnapshotMS == 0).
	fresh bool
}

func newLeastLoaded(live []int, fresh bool) *leastLoaded {
	l := &leastLoaded{live: live, fresh: fresh}
	if !fresh {
		l.snap = make([]int, len(live))
		copy(l.snap, live)
	}
	return l
}

func (l *leastLoaded) Name() string { return RouteLeastLoaded }

// refresh copies the live counts into the router's snapshot.
func (l *leastLoaded) refresh() {
	if !l.fresh {
		copy(l.snap, l.live)
	}
}

func (l *leastLoaded) Route(_ float64, _ core.Arrival) int {
	view := l.live
	if !l.fresh {
		view = l.snap
	}
	best := 0
	for i := 1; i < len(view); i++ {
		if view[i] < view[best] {
			best = i
		}
	}
	return best
}

// affinity hashes the arrival's client key to an instance, so one
// client's operations always land on the same member — the prefix-cache /
// session-affinity routing of serving systems, here standing in for
// client-local working sets.
type affinity struct {
	n int
}

func newAffinity(n int) *affinity { return &affinity{n: n} }

func (a *affinity) Name() string { return RouteAffinity }

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-mixed integer hash, so consecutive client keys spread across the
// fleet instead of striping.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (a *affinity) Route(_ float64, ar core.Arrival) int {
	return int(splitmix64(uint64(ar.Client)) % uint64(a.n))
}
