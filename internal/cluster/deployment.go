package cluster

import (
	"fmt"
	"math"
	"strconv"

	"rofs/internal/core"
	"rofs/internal/fault"
	"rofs/internal/metrics"
	"rofs/internal/sim"
	"rofs/internal/stats"
)

// Run executes the configured run, plain or fleet. It is the cluster-aware
// counterpart of core.Run and the single entry point the runner dispatches
// through:
//
//   - cluster mode off: exactly core.Run.
//   - a fleet of one with no admission policy: delegated verbatim to
//     core.Run, so an N=1 cluster run reproduces the equivalent plain run
//     byte-identically — report and metrics bundle (the check_cluster.sh
//     gate).
//   - a real fleet: N instances, each on its own engine, closed-loop (each
//     member serves its own user population) or open-loop (a central
//     arrival process routed through admission and routing policies), with
//     Config.Parallelism worker goroutines advancing the engines (see
//     parallel.go). The schedule is fixed by the configuration: every
//     Parallelism value yields byte-identical results.
func Run(cfg core.Config, cc Config, kind core.TestKind) (core.Outcome, error) {
	if err := cc.Validate(); err != nil {
		return core.Outcome{}, err
	}
	if !cc.Enabled() || (cc.Instances == 1 && cc.Admission == "") {
		return core.Run(cfg, kind)
	}
	if kind != core.Application {
		return core.Outcome{}, fmt.Errorf("cluster: fleets run the application test only, not %s (allocation measures space on one array; the sequential test's whole-file phases are single-server)", kind)
	}
	d, err := newDeployment(cfg, cc)
	if err != nil {
		return core.Outcome{}, err
	}
	return d.run()
}

// completion is one buffered open-loop op completion: an instance records
// it on its own goroutine during a window; the coordinator applies it at
// the barrier in global (time, instance) order.
type completion struct {
	at  float64 // completion time (simulated ms)
	lat float64 // operation latency (ms)
}

// Deployment is one live fleet: N core.Instances on N per-instance
// engines, a control-plane engine for the arrival source, the router's
// load view, the admission policy's occupancy, and the fleet-level
// accounting. Coordinator state (live counts, admission, latency,
// counters) is touched only between windows; instance state only by the
// one worker that owns the instance during a window.
type Deployment struct {
	cfg core.Config
	cc  Config

	insts []*core.Instance
	engs  []*sim.Engine // engs[i] drives insts[i] and nothing else
	ctl   *sim.Engine   // control plane: the arrival source (open-loop only)

	live   []int   // true per-instance in-flight counts (router ground truth)
	routed []int64 // arrivals routed per instance

	router RoutingPolicy
	admit  AdmissionPolicy
	src    *core.ArrivalSource // nil for closed-loop fleets

	arrivals, admitted, rejected int64
	latency                      stats.Welford
	latencyH                     *stats.Histogram

	// stableAt[i] is the simulated time instance i's throughput
	// stabilized, NaN until then. Written by the instance's worker inside
	// a window, read by the coordinator at barriers.
	stableAt []float64

	par int // resolved worker count (>= 1)

	// Windowed open-loop state: per-instance completion buffers, their
	// merge cursors, and the pooled dispatch events (see parallel.go).
	comps     [][]completion
	heads     []int
	freeDisp  [][]*dispatchEv
	spentDisp [][]*dispatchEv

	// Metrics handles (nil when metrics are off).
	reg              *metrics.Registry
	mArr, mAdm, mRej *metrics.Counter

	// Checkpoint state: like Metrics, the hook belongs to the fleet —
	// members run with their hooks nil'd and the Deployment fingerprints
	// the whole fleet at boundaries on the window grid (see parallel.go).
	ckptSeq      int64
	ckptErr      error
	ckptVerified bool
}

// newDeployment builds the fleet: each member gets the same configuration
// with its own engine and RNG stream (Seed + index·stride), metrics and
// tracing detached (instance 0 keeps the trace writer), and the fault
// scenario only on the targeted member.
func newDeployment(cfg core.Config, cc Config) (*Deployment, error) {
	d := &Deployment{
		cfg:      cfg,
		cc:       cc,
		live:     make([]int, cc.Instances),
		routed:   make([]int64, cc.Instances),
		stableAt: make([]float64, cc.Instances),
		latencyH: core.NewLatencyHistogram(),
		reg:      cfg.Metrics,
		par:      1,
	}
	if cc.Parallelism > 1 {
		d.par = cc.Parallelism
		if d.par > cc.Instances {
			d.par = cc.Instances
		}
	}
	for i := 0; i < cc.Instances; i++ {
		d.stableAt[i] = math.NaN()
		icfg := cfg
		// The fleet's registry belongs to the Deployment: per-instance
		// registries would collide on series names, so members run
		// metrics-off and the cluster.* series sample them from outside.
		// Checkpointing follows the same split — the Deployment
		// fingerprints the fleet at window boundaries.
		icfg.Metrics = nil
		icfg.Checkpoint = nil
		if i != 0 {
			// One event trace per run: instance 0's. N interleaved traces
			// in one stream would be unparseable.
			icfg.TraceWriter = nil
		}
		if i != cc.FaultInstance {
			icfg.Degraded = false
			icfg.Faults = fault.Scenario{}
		}
		eng := &sim.Engine{}
		in, err := core.NewInstance(icfg, core.Application, eng, i)
		if err != nil {
			return nil, fmt.Errorf("cluster: instance %d: %w", i, err)
		}
		d.engs = append(d.engs, eng)
		d.insts = append(d.insts, in)
	}
	switch cc.EffectiveRouting() {
	case RouteRoundRobin:
		d.router = newRoundRobin(cc.Instances)
	case RouteLeastLoaded:
		d.router = newLeastLoaded(d.live, cc.SnapshotMS <= 0)
	case RouteAffinity:
		d.router = newAffinity(cc.Instances)
	}
	d.admit = newAdmission(cc)
	return d, nil
}

// run primes every member, starts measurement, drives the load through
// the mode-appropriate executor, and assembles the fleet outcome.
func (d *Deployment) run() (core.Outcome, error) {
	out := core.Outcome{Kind: core.Application}
	open := d.cfg.Workload.Arrivals != nil

	// Priming advances no simulated time (allocation-only traffic) and is
	// instance-local, so it fans out across the workers; errors surface in
	// instance order regardless of completion order.
	if err := d.prime(); err != nil {
		return out, err
	}
	for _, in := range d.insts {
		in.StartMeasurement()
	}
	d.wireMetrics()

	// Two execution tiers (see parallel.go): closed-loop metrics-off
	// unarmed fleets have no cross-instance coupling at all and run each
	// engine to its own stop; everything else — including checkpoint-
	// armed fleets, whose boundary fingerprints are a fleet-wide
	// coupling — advances in conservative-lookahead windows, exchanging
	// routed arrivals, completions, load snapshots, metrics samples, and
	// checkpoint states at the barriers.
	var end float64
	var err error
	if !open && d.reg == nil && d.ckptHook() == nil {
		end, err = d.runIndependent()
	} else {
		end, err = d.runWindowed(open)
	}
	if err != nil {
		return out, err
	}
	if err := d.ckptFinish(end); err != nil {
		return out, err
	}

	perf, report, err := d.results(end)
	if err != nil {
		return out, err
	}
	perf.Cluster = report
	out.Perf = perf
	out.Stats = core.RunStats{SimMS: end, Events: d.totalFired()}
	d.finalizeMetrics(end, report)
	out.Metrics = d.cfg.Metrics
	if d.anyCanceled() {
		return out, core.ErrCanceled
	}
	return out, nil
}

// onArrival is the open-loop sink: admission, routing, dispatch. It runs
// on the control-plane engine strictly before the window it admits into,
// so every instance sees its routed arrivals already queued when its
// worker picks it up.
func (d *Deployment) onArrival(now float64, a core.Arrival) {
	d.arrivals++
	if d.mArr != nil {
		d.mArr.Inc()
	}
	if !d.admit.Admit(now) {
		d.rejected++
		if d.mRej != nil {
			d.mRej.Inc()
		}
		return
	}
	d.admitted++
	if d.mAdm != nil {
		d.mAdm.Inc()
	}
	i := d.router.Route(now, a)
	d.live[i]++
	d.routed[i]++
	d.dispatch(i, now, a)
}

func (d *Deployment) totalLive() int {
	t := 0
	for _, v := range d.live {
		t += v
	}
	return t
}

func (d *Deployment) totalFired() uint64 {
	var t uint64
	for _, e := range d.engs {
		t += e.Fired()
	}
	if d.ctl != nil {
		t += d.ctl.Fired()
	}
	return t
}

func (d *Deployment) totalPending() int {
	t := 0
	for _, e := range d.engs {
		t += e.Pending()
	}
	if d.ctl != nil {
		t += d.ctl.Pending()
	}
	return t
}

func (d *Deployment) maxHeap() int {
	t := 0
	for _, e := range d.engs {
		t += e.MaxPending()
	}
	if d.ctl != nil {
		t += d.ctl.MaxPending()
	}
	return t
}

func (d *Deployment) allStable() bool {
	for i := range d.stableAt {
		if math.IsNaN(d.stableAt[i]) {
			return false
		}
	}
	return true
}

func (d *Deployment) anyCanceled() bool {
	for _, in := range d.insts {
		if in.Canceled() {
			return true
		}
	}
	return false
}

// results merges the members into the fleet PerfResult and ClusterReport,
// always in instance-index order — the merge is the same whatever worker
// count ran the engines.
func (d *Deployment) results(end float64) (core.PerfResult, *core.ClusterReport, error) {
	res := core.PerfResult{Policy: d.cfg.Policy.Name(), Workload: d.cfg.Workload.Name}
	rep := &core.ClusterReport{
		Instances: d.cc.Instances,
		Routing:   d.router.Name(),
		Admission: d.admit.Name(),
		Arrivals:  d.arrivals,
		Admitted:  d.admitted,
		Rejected:  d.rejected,
	}
	if d.arrivals > 0 {
		rep.RejectPct = 100 * float64(d.rejected) / float64(d.arrivals)
	}

	var lat stats.Welford
	latH := core.NewLatencyHistogram()
	var maxOps int64
	stable := true
	for i, in := range d.insts {
		ir, err := in.Result(end)
		if err != nil {
			return res, rep, fmt.Errorf("cluster: instance %d: %w", i, err)
		}
		ip := core.InstancePerf{
			Index:         i,
			Routed:        d.routed[i],
			Ops:           ir.Ops,
			Percent:       ir.Percent,
			Stable:        ir.Stable,
			MeanLatencyMS: ir.MeanLatencyMS,
			P95LatencyMS:  ir.P95LatencyMS,
			Utilization:   ir.FinalUtilization,
			Faulted:       i == d.cc.FaultInstance && ir.Faults != nil,
		}
		rep.PerInstance = append(rep.PerInstance, ip)
		if ir.Faults != nil {
			res.Faults = ir.Faults
		}
		if ir.Compaction != nil {
			if res.Compaction == nil {
				res.Compaction = &core.CompactionReport{}
			}
			res.Compaction.Merge(ir.Compaction)
		}
		// Fleet throughput is the mean of per-member percents: members run
		// identical arrays, so this is fleet bytes over fleet capacity.
		res.Percent += ir.Percent / float64(d.cc.Instances)
		res.Bytes += ir.Bytes
		res.Ops += ir.Ops
		res.AllocFails += ir.AllocFails
		res.FinalUtilization += ir.FinalUtilization / float64(d.cc.Instances)
		if ir.Windows > res.Windows {
			res.Windows = ir.Windows
		}
		stable = stable && ir.Stable
		if ir.Ops > maxOps {
			maxOps = ir.Ops
		}
		in.MergeLatency(&lat, latH)
	}
	if res.Ops > 0 {
		rep.UtilSkew = float64(maxOps) * float64(d.cc.Instances) / float64(res.Ops)
	}
	res.Stable = stable
	res.SimMS = end
	if d.src != nil {
		// Open-loop fleets report the centrally observed latency — the
		// client's view across routing and admission.
		res.MeanLatencyMS = d.latency.Mean()
		res.P95LatencyMS = d.latencyH.Quantile(0.95)
	} else {
		res.MeanLatencyMS = lat.Mean()
		res.P95LatencyMS = latH.Quantile(0.95)
	}
	return res, rep, nil
}

// wireMetrics registers the cluster.* series on the run's registry (the
// members run metrics-off; the fleet's registry samples them from
// outside). Sampling happens at window barriers on the registry's
// interval grid — see runWindowed — never from inside an instance engine,
// so the sampled values are the same whatever worker count ran the
// window.
func (d *Deployment) wireMetrics() {
	reg := d.reg
	if reg == nil {
		return
	}
	reg.SetLabel("policy", d.cfg.Policy.Name())
	reg.SetLabel("workload", d.cfg.Workload.Name)
	reg.SetLabel("test", "app")
	reg.SetLabel("seed", strconv.FormatInt(d.cfg.Seed, 10))
	reg.SetLabel("cluster", strconv.Itoa(d.cc.Instances))
	reg.SetLabel("routing", d.router.Name())
	if d.admit.Name() != "" {
		reg.SetLabel("admission", d.admit.Name())
	}

	d.mArr = reg.Counter("cluster.arrivals")
	d.mAdm = reg.Counter("cluster.admitted")
	d.mRej = reg.Counter("cluster.rejected")

	reg.TimelineFunc("cluster.inflight", func() float64 { return float64(d.totalLive()) })
	reg.TimelineFunc("sim.events", func() float64 { return float64(d.totalFired()) })
	reg.TimelineFunc("sim.heap_depth", func() float64 { return float64(d.totalPending()) })
	for i, in := range d.insts {
		i, in := i, in
		p := "cluster.inst." + strconv.Itoa(i) + "."
		reg.TimelineFunc(p+"inflight", func() float64 { return float64(d.live[i]) })
		reg.TimelineFunc(p+"utilization", in.Utilization)
		reg.TimelineFunc(p+"ops", func() float64 { return float64(in.Ops()) })
	}
}

// finalizeMetrics records the end-of-run fleet gauges and closes the
// timelines. sim.events_fired sums every engine (instances plus control
// plane); sim.heap_max sums the per-engine high-water marks — an upper
// bound on the fleet's instantaneous total, reported in place of the
// single shared heap the fleet no longer has.
func (d *Deployment) finalizeMetrics(end float64, rep *core.ClusterReport) {
	reg := d.reg
	if reg == nil {
		return
	}
	reg.Gauge("sim.events_fired").Set(float64(d.totalFired()))
	reg.Gauge("sim.heap_max").Set(float64(d.maxHeap()))
	reg.Gauge("sim.end_ms").Set(end)
	reg.Gauge("cluster.instances").Set(float64(rep.Instances))
	reg.Gauge("cluster.reject_pct").Set(rep.RejectPct)
	reg.Gauge("cluster.util_skew").Set(rep.UtilSkew)
	for _, ip := range rep.PerInstance {
		p := "cluster.inst." + strconv.Itoa(ip.Index) + "."
		reg.Gauge(p + "ops_total").Set(float64(ip.Ops))
		reg.Gauge(p + "throughput_pct").Set(ip.Percent)
		reg.Gauge(p + "final_utilization").Set(ip.Utilization)
		reg.Gauge(p + "routed").Set(float64(ip.Routed))
	}
	reg.Sample(end)
}
