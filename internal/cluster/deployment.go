package cluster

import (
	"fmt"
	"strconv"

	"rofs/internal/core"
	"rofs/internal/fault"
	"rofs/internal/metrics"
	"rofs/internal/sim"
	"rofs/internal/stats"
)

// Run executes the configured run, plain or fleet. It is the cluster-aware
// counterpart of core.Run and the single entry point the runner dispatches
// through:
//
//   - cluster mode off: exactly core.Run.
//   - a fleet of one with no admission policy: delegated verbatim to
//     core.Run, so an N=1 cluster run reproduces the equivalent plain run
//     byte-identically — report and metrics bundle (the check_cluster.sh
//     gate).
//   - a real fleet: N instances in one engine, closed-loop (each member
//     serves its own user population) or open-loop (a central arrival
//     process routed through admission and routing policies).
func Run(cfg core.Config, cc Config, kind core.TestKind) (core.Outcome, error) {
	if err := cc.Validate(); err != nil {
		return core.Outcome{}, err
	}
	if !cc.Enabled() || (cc.Instances == 1 && cc.Admission == "") {
		return core.Run(cfg, kind)
	}
	if kind != core.Application {
		return core.Outcome{}, fmt.Errorf("cluster: fleets run the application test only, not %s (allocation measures space on one array; the sequential test's whole-file phases are single-server)", kind)
	}
	d, err := newDeployment(cfg, cc)
	if err != nil {
		return core.Outcome{}, err
	}
	return d.run()
}

// Deployment is one live fleet: N core.Instances in a shared engine, the
// router's load view, the admission policy's occupancy, and the
// fleet-level accounting.
type Deployment struct {
	cfg core.Config
	cc  Config
	eng *sim.Engine

	insts  []*core.Instance
	live   []int   // true per-instance in-flight counts (router ground truth)
	routed []int64 // arrivals routed per instance

	router RoutingPolicy
	admit  AdmissionPolicy
	src    *core.ArrivalSource // nil for closed-loop fleets

	arrivals, admitted, rejected int64
	latency                      stats.Welford
	latencyH                     *stats.Histogram
	stableCount                  int

	// Metrics handles (nil when metrics are off).
	reg              *metrics.Registry
	mArr, mAdm, mRej *metrics.Counter
}

// newDeployment builds the fleet: each member gets the same configuration
// with its own RNG stream (Seed + index·stride), metrics and tracing
// detached (instance 0 keeps the trace writer), and the fault scenario
// only on the targeted member.
func newDeployment(cfg core.Config, cc Config) (*Deployment, error) {
	d := &Deployment{
		cfg:      cfg,
		cc:       cc,
		eng:      &sim.Engine{},
		live:     make([]int, cc.Instances),
		routed:   make([]int64, cc.Instances),
		latencyH: core.NewLatencyHistogram(),
		reg:      cfg.Metrics,
	}
	for i := 0; i < cc.Instances; i++ {
		icfg := cfg
		// The fleet's registry belongs to the Deployment: per-instance
		// registries would collide on series names, so members run
		// metrics-off and the cluster.* series sample them from outside.
		icfg.Metrics = nil
		if i != 0 {
			// One event trace per run: instance 0's. N interleaved traces
			// in one stream would be unparseable.
			icfg.TraceWriter = nil
		}
		if i != cc.FaultInstance {
			icfg.Degraded = false
			icfg.Faults = fault.Scenario{}
		}
		in, err := core.NewInstance(icfg, core.Application, d.eng, i)
		if err != nil {
			return nil, fmt.Errorf("cluster: instance %d: %w", i, err)
		}
		d.insts = append(d.insts, in)
	}
	switch cc.EffectiveRouting() {
	case RouteRoundRobin:
		d.router = newRoundRobin(cc.Instances)
	case RouteLeastLoaded:
		d.router = newLeastLoaded(d.live, cc.SnapshotMS <= 0)
	case RouteAffinity:
		d.router = newAffinity(cc.Instances)
	}
	d.admit = newAdmission(cc)
	return d, nil
}

// run primes every member, starts measurement, drives the load, and
// assembles the fleet outcome.
func (d *Deployment) run() (core.Outcome, error) {
	out := core.Outcome{Kind: core.Application}
	open := d.cfg.Workload.Arrivals != nil

	// Priming advances no simulated time (allocation-only traffic), so the
	// sequential loop is deterministic and every member starts at t=0.
	for i, in := range d.insts {
		if err := in.PrimeThroughput(); err != nil {
			return out, fmt.Errorf("cluster: instance %d: %w", i, err)
		}
	}
	for _, in := range d.insts {
		in.StartMeasurement()
		in.SetOnStable(d.onStable)
	}
	if open {
		// Central open-loop source → admission → routing → member. The
		// source draws from instance 0's seed stream offset, so a fleet
		// and a plain open-loop run see the same arrival sequence.
		src, err := core.NewArrivalSource(d.eng, d.cfg.Seed, &d.cfg.Workload, d.onArrival)
		if err != nil {
			return out, err
		}
		d.src = src
		for _, in := range d.insts {
			in.SetOnOpDone(d.onOpDone)
		}
		src.Start(d.eng.Now())
	} else {
		// Closed-loop fleet: every member serves its own user population,
		// N paper-model servers sharing one clock.
		for _, in := range d.insts {
			in.ScheduleUsers()
		}
	}
	d.startSnapshotTick()
	d.wireMetrics()

	end := d.eng.Run(d.eng.Now() + d.insts[0].MaxSimMS())

	perf, report, err := d.results(end)
	if err != nil {
		return out, err
	}
	perf.Cluster = report
	out.Perf = perf
	out.Stats = core.RunStats{SimMS: end, Events: d.eng.Fired()}
	d.finalizeMetrics(end, report)
	out.Metrics = d.cfg.Metrics
	for _, in := range d.insts {
		if in.Canceled() {
			return out, core.ErrCanceled
		}
	}
	return out, nil
}

// onArrival is the open-loop sink: admission, routing, dispatch.
func (d *Deployment) onArrival(now float64, a core.Arrival) {
	d.arrivals++
	if d.mArr != nil {
		d.mArr.Inc()
	}
	if !d.admit.Admit(now) {
		d.rejected++
		if d.mRej != nil {
			d.mRej.Inc()
		}
		return
	}
	d.admitted++
	if d.mAdm != nil {
		d.mAdm.Inc()
	}
	i := d.router.Route(now, a)
	d.live[i]++
	d.routed[i]++
	d.insts[i].Dispatch(now, a)
}

// onOpDone drains one admitted operation: load accounting, latency, and
// the trace-exhaustion stop.
func (d *Deployment) onOpDone(in *core.Instance, now, latencyMS float64) {
	d.live[in.Index()]--
	d.admit.Release(now)
	d.latency.Add(latencyMS)
	d.latencyH.Add(latencyMS)
	if d.src.Exhausted() && d.totalLive() == 0 {
		d.eng.Stop()
	}
}

// onStable counts stabilized members; the engine stops when the whole
// fleet is stable (a plain run stops at its single instance's
// stabilization — same rule, N=1).
func (d *Deployment) onStable() {
	d.stableCount++
	if d.stableCount == len(d.insts) {
		d.eng.Stop()
	}
}

func (d *Deployment) totalLive() int {
	t := 0
	for _, v := range d.live {
		t += v
	}
	return t
}

// startSnapshotTick schedules the least-loaded router's snapshot refresh
// at the configured staleness interval.
func (d *Deployment) startSnapshotTick() {
	ll, ok := d.router.(*leastLoaded)
	if !ok || d.cc.SnapshotMS <= 0 {
		return
	}
	var tick sim.Handler
	tick = func(now float64) {
		ll.refresh()
		d.eng.After(d.cc.SnapshotMS, tick)
	}
	d.eng.After(d.cc.SnapshotMS, tick)
}

// results merges the members into the fleet PerfResult and ClusterReport.
func (d *Deployment) results(end float64) (core.PerfResult, *core.ClusterReport, error) {
	res := core.PerfResult{Policy: d.cfg.Policy.Name(), Workload: d.cfg.Workload.Name}
	rep := &core.ClusterReport{
		Instances: d.cc.Instances,
		Routing:   d.router.Name(),
		Admission: d.admit.Name(),
		Arrivals:  d.arrivals,
		Admitted:  d.admitted,
		Rejected:  d.rejected,
	}
	if d.arrivals > 0 {
		rep.RejectPct = 100 * float64(d.rejected) / float64(d.arrivals)
	}

	var lat stats.Welford
	latH := core.NewLatencyHistogram()
	var maxOps int64
	stable := true
	for i, in := range d.insts {
		ir, err := in.Result(end)
		if err != nil {
			return res, rep, fmt.Errorf("cluster: instance %d: %w", i, err)
		}
		ip := core.InstancePerf{
			Index:         i,
			Routed:        d.routed[i],
			Ops:           ir.Ops,
			Percent:       ir.Percent,
			Stable:        ir.Stable,
			MeanLatencyMS: ir.MeanLatencyMS,
			P95LatencyMS:  ir.P95LatencyMS,
			Utilization:   ir.FinalUtilization,
			Faulted:       i == d.cc.FaultInstance && ir.Faults != nil,
		}
		rep.PerInstance = append(rep.PerInstance, ip)
		if ir.Faults != nil {
			res.Faults = ir.Faults
		}
		// Fleet throughput is the mean of per-member percents: members run
		// identical arrays, so this is fleet bytes over fleet capacity.
		res.Percent += ir.Percent / float64(d.cc.Instances)
		res.Bytes += ir.Bytes
		res.Ops += ir.Ops
		res.AllocFails += ir.AllocFails
		res.FinalUtilization += ir.FinalUtilization / float64(d.cc.Instances)
		if ir.Windows > res.Windows {
			res.Windows = ir.Windows
		}
		stable = stable && ir.Stable
		if ir.Ops > maxOps {
			maxOps = ir.Ops
		}
		in.MergeLatency(&lat, latH)
	}
	if res.Ops > 0 {
		rep.UtilSkew = float64(maxOps) * float64(d.cc.Instances) / float64(res.Ops)
	}
	res.Stable = stable
	res.SimMS = end
	if d.src != nil {
		// Open-loop fleets report the centrally observed latency — the
		// client's view across routing and admission.
		res.MeanLatencyMS = d.latency.Mean()
		res.P95LatencyMS = d.latencyH.Quantile(0.95)
	} else {
		res.MeanLatencyMS = lat.Mean()
		res.P95LatencyMS = latH.Quantile(0.95)
	}
	return res, rep, nil
}

// wireMetrics registers the cluster.* series on the run's registry and
// schedules the sampling tick (the members run metrics-off; the fleet's
// registry samples them from outside).
func (d *Deployment) wireMetrics() {
	reg := d.reg
	if reg == nil {
		return
	}
	reg.SetLabel("policy", d.cfg.Policy.Name())
	reg.SetLabel("workload", d.cfg.Workload.Name)
	reg.SetLabel("test", "app")
	reg.SetLabel("seed", strconv.FormatInt(d.cfg.Seed, 10))
	reg.SetLabel("cluster", strconv.Itoa(d.cc.Instances))
	reg.SetLabel("routing", d.router.Name())
	if d.admit.Name() != "" {
		reg.SetLabel("admission", d.admit.Name())
	}

	d.mArr = reg.Counter("cluster.arrivals")
	d.mAdm = reg.Counter("cluster.admitted")
	d.mRej = reg.Counter("cluster.rejected")

	reg.TimelineFunc("cluster.inflight", func() float64 { return float64(d.totalLive()) })
	reg.TimelineFunc("sim.events", func() float64 { return float64(d.eng.Fired()) })
	reg.TimelineFunc("sim.heap_depth", func() float64 { return float64(d.eng.Pending()) })
	for i, in := range d.insts {
		i, in := i, in
		p := "cluster.inst." + strconv.Itoa(i) + "."
		reg.TimelineFunc(p+"inflight", func() float64 { return float64(d.live[i]) })
		reg.TimelineFunc(p+"utilization", in.Utilization)
		reg.TimelineFunc(p+"ops", func() float64 { return float64(in.Ops()) })
	}

	interval := reg.IntervalMS()
	var tick sim.Handler
	tick = func(now float64) {
		reg.Sample(now)
		d.eng.After(interval, tick)
	}
	d.eng.After(interval, tick)
}

// finalizeMetrics records the end-of-run fleet gauges and closes the
// timelines.
func (d *Deployment) finalizeMetrics(end float64, rep *core.ClusterReport) {
	reg := d.reg
	if reg == nil {
		return
	}
	reg.Gauge("sim.events_fired").Set(float64(d.eng.Fired()))
	reg.Gauge("sim.heap_max").Set(float64(d.eng.MaxPending()))
	reg.Gauge("sim.end_ms").Set(end)
	reg.Gauge("cluster.instances").Set(float64(rep.Instances))
	reg.Gauge("cluster.reject_pct").Set(rep.RejectPct)
	reg.Gauge("cluster.util_skew").Set(rep.UtilSkew)
	for _, ip := range rep.PerInstance {
		p := "cluster.inst." + strconv.Itoa(ip.Index) + "."
		reg.Gauge(p + "ops_total").Set(float64(ip.Ops))
		reg.Gauge(p + "throughput_pct").Set(ip.Percent)
		reg.Gauge(p + "final_utilization").Set(ip.Utilization)
		reg.Gauge(p + "routed").Set(float64(ip.Routed))
	}
	reg.Sample(end)
}
