package cluster

// AdmissionPolicy decides, per arrival, whether the fleet accepts the
// operation at all. Rejected arrivals complete immediately without
// touching any instance — the shed load an overloaded service refuses at
// the front door. Release is called once per admitted operation when it
// completes, for policies that track occupancy.
type AdmissionPolicy interface {
	// Admit reports whether the arrival at now is accepted.
	Admit(now float64) bool
	// Release returns capacity consumed by an admitted operation.
	Release(now float64)
	// Name returns the policy's configuration name.
	Name() string
}

// admitAll is the default: every arrival is accepted.
type admitAll struct{}

func (admitAll) Admit(float64) bool { return true }
func (admitAll) Release(float64)    {}
func (admitAll) Name() string       { return "" }

// tokenBucket admits while tokens last: capacity tokens at most, refilled
// continuously at refillPerMS. Refill is computed lazily from the
// simulated clock — no engine events, exact arithmetic, deterministic.
// Bursts up to the capacity pass; sustained load beyond the refill rate
// is shed at exactly the excess rate.
type tokenBucket struct {
	capacity    float64
	refillPerMS float64
	tokens      float64
	lastMS      float64
}

func newTokenBucket(capacity, refillPerSec float64) *tokenBucket {
	return &tokenBucket{capacity: capacity, refillPerMS: refillPerSec / 1000, tokens: capacity}
}

func (t *tokenBucket) Name() string { return AdmitTokenBucket }

func (t *tokenBucket) Admit(now float64) bool {
	t.tokens += (now - t.lastMS) * t.refillPerMS
	if t.tokens > t.capacity {
		t.tokens = t.capacity
	}
	t.lastMS = now
	if t.tokens < 1 {
		return false
	}
	t.tokens--
	return true
}

func (t *tokenBucket) Release(float64) {}

// boundedQueue admits while fleet-wide in-flight occupancy is below cap
// and rejects beyond it — a bounded queue whose overflow policy is reject,
// not wait, so latency of admitted operations stays bounded while the
// reject rate absorbs the overload.
type boundedQueue struct {
	cap      int
	inFlight int
}

func newBoundedQueue(cap int) *boundedQueue { return &boundedQueue{cap: cap} }

func (q *boundedQueue) Name() string { return AdmitQueue }

func (q *boundedQueue) Admit(float64) bool {
	if q.inFlight >= q.cap {
		return false
	}
	q.inFlight++
	return true
}

func (q *boundedQueue) Release(float64) {
	q.inFlight--
}

// newAdmission builds the configured admission policy.
func newAdmission(c Config) AdmissionPolicy {
	switch c.Admission {
	case AdmitTokenBucket:
		return newTokenBucket(c.TokenCapacity, c.TokenRefillPerSec)
	case AdmitQueue:
		return newBoundedQueue(c.QueueCap)
	default:
		return admitAll{}
	}
}
