// Package cluster scales the simulator from one file server to a fleet: a
// Deployment instantiates N independent core.Instances (each its own disk
// array, allocator, and file system, with an RNG stream derived from the
// run seed and the instance index) inside one sim.Engine, and routes an
// open-loop arrival stream through pluggable admission and routing
// policies. The model follows the deployment layer of LLM inference
// simulators — a DeploymentConfig with NumInstances, an AdmissionPolicy,
// a RoutingPolicy, and a snapshot-refresh interval that makes the
// router's view of instance load deliberately stale — transplanted onto
// the paper's read-optimized file servers.
//
// Everything stays deterministic: one engine, one clock, per-instance RNG
// streams, and policies that break ties by lowest index. Two runs with
// the same seed and configuration produce byte-identical reports, the
// same contract every other layer of this repository holds.
package cluster

import (
	"fmt"
)

// Routing policy names.
const (
	// RouteRoundRobin cycles arrivals across instances in index order.
	RouteRoundRobin = "rr"
	// RouteLeastLoaded sends each arrival to the instance with the fewest
	// in-flight operations in the router's (possibly stale) load snapshot.
	RouteLeastLoaded = "least"
	// RouteAffinity hashes the arrival's client key to an instance, so a
	// client's operations always land on the same member.
	RouteAffinity = "affinity"
)

// Admission policy names (empty admits everything).
const (
	// AdmitTokenBucket refills TokenRefillPerSec tokens per second up to
	// TokenCapacity; an arrival without a token is rejected.
	AdmitTokenBucket = "token"
	// AdmitQueue bounds total in-flight operations at QueueCap; arrivals
	// beyond capacity are rejected (reject-beyond-capacity, not waiting).
	AdmitQueue = "queue"
)

// Config declares a fleet run. The zero value is disabled (plain
// single-instance semantics everywhere).
type Config struct {
	// Instances is the fleet size (0: cluster mode off; 1: a fleet of one,
	// which for closed-loop workloads delegates to the plain core run and
	// reproduces it byte-identically).
	Instances int `json:"instances"`

	// Routing selects the routing policy ("" = rr). Only open-loop fleets
	// route; closed-loop fleets pin each user population to its instance.
	Routing string `json:"routing,omitempty"`
	// SnapshotMS is the refresh interval of the least-loaded router's load
	// snapshot (0: always fresh). A nonzero value models the stale view a
	// real load balancer polls, and lets experiments measure how staleness
	// degrades balance.
	SnapshotMS float64 `json:"snapshot_ms,omitempty"`

	// Admission selects the admission policy ("" = admit everything).
	Admission string `json:"admission,omitempty"`
	// TokenCapacity and TokenRefillPerSec parameterize the token bucket.
	TokenCapacity     float64 `json:"token_capacity,omitempty"`
	TokenRefillPerSec float64 `json:"token_refill_per_s,omitempty"`
	// QueueCap bounds fleet-wide in-flight operations for AdmitQueue.
	QueueCap int `json:"queue_cap,omitempty"`

	// FaultInstance selects which member a fault scenario targets
	// (default 0). The other members run fault-free.
	FaultInstance int `json:"fault_instance,omitempty"`

	// Parallelism is the number of worker goroutines that advance the
	// fleet's per-instance engines inside each synchronization window
	// (0 or 1: serial; capped at the fleet size). It is an execution knob,
	// not a model knob: the schedule — window boundaries, routing,
	// admission, merge order — is fixed by the configuration alone, so any
	// Parallelism value produces byte-identical results. For that reason
	// it is deliberately excluded from Key: a cached serial result answers
	// a parallel request and vice versa.
	Parallelism int `json:"par,omitempty"`

	// SyncMS overrides the conservative-lookahead window for open-loop
	// fleets whose coupling grid would otherwise default to 100 ms (see
	// Deployment). It is a model knob — bounded-queue releases and fresh
	// least-loaded counts are observed at window boundaries — so unlike
	// Parallelism it participates in Key when set.
	SyncMS float64 `json:"sync_ms,omitempty"`
}

// Enabled reports whether the run is a cluster run at all.
func (c Config) Enabled() bool { return c.Instances > 0 }

// EffectiveRouting resolves the default routing policy name.
func (c Config) EffectiveRouting() string {
	if c.Routing == "" {
		return RouteRoundRobin
	}
	return c.Routing
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	switch {
	case c.Instances < 1:
		return fmt.Errorf("cluster: Instances %d must be >= 1", c.Instances)
	case c.SnapshotMS < 0:
		return fmt.Errorf("cluster: SnapshotMS %g must be >= 0", c.SnapshotMS)
	case c.FaultInstance < 0 || c.FaultInstance >= c.Instances:
		return fmt.Errorf("cluster: FaultInstance %d outside fleet [0, %d)", c.FaultInstance, c.Instances)
	case c.Parallelism < 0:
		return fmt.Errorf("cluster: Parallelism %d must be >= 0", c.Parallelism)
	case c.SyncMS < 0:
		return fmt.Errorf("cluster: SyncMS %g must be >= 0", c.SyncMS)
	}
	switch c.EffectiveRouting() {
	case RouteRoundRobin, RouteLeastLoaded, RouteAffinity:
	default:
		return fmt.Errorf("cluster: unknown routing policy %q (want rr, least, or affinity)", c.Routing)
	}
	switch c.Admission {
	case "":
	case AdmitTokenBucket:
		if c.TokenCapacity <= 0 || c.TokenRefillPerSec <= 0 {
			return fmt.Errorf("cluster: token-bucket admission needs TokenCapacity and TokenRefillPerSec > 0")
		}
	case AdmitQueue:
		if c.QueueCap <= 0 {
			return fmt.Errorf("cluster: queue admission needs QueueCap > 0")
		}
	default:
		return fmt.Errorf("cluster: unknown admission policy %q (want token or queue)", c.Admission)
	}
	return nil
}

// Key renders the configuration's canonical identity for runner.Spec
// cache keys. Disabled configs render empty, so non-cluster Specs keep
// the key encoding they had before this package existed; likewise SyncMS
// appends only when set, so pre-existing fleet keys are stable.
// Parallelism never appears: the schedule is identical at every worker
// count, so serial and parallel runs share one cache entry.
func (c Config) Key() string {
	if !c.Enabled() {
		return ""
	}
	k := fmt.Sprintf("n=%d|route=%s|snap=%g|admit=%s|tokcap=%g|tokrate=%g|qcap=%d|finst=%d",
		c.Instances, c.EffectiveRouting(), c.SnapshotMS, c.Admission,
		c.TokenCapacity, c.TokenRefillPerSec, c.QueueCap, c.FaultInstance)
	if c.SyncMS > 0 {
		k += fmt.Sprintf("|sync=%g", c.SyncMS)
	}
	return k
}

// String summarizes the configuration for progress lines and reports.
func (c Config) String() string {
	if !c.Enabled() {
		return "off"
	}
	s := fmt.Sprintf("n=%d %s", c.Instances, c.EffectiveRouting())
	if c.SnapshotMS > 0 {
		s += fmt.Sprintf(" snap=%gms", c.SnapshotMS)
	}
	if c.Admission != "" {
		s += " " + c.Admission
	}
	return s
}
