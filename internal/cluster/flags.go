package cluster

import (
	"flag"
	"fmt"

	"rofs/internal/workload"
)

// Flags binds the cluster knobs to a flag set — the one vocabulary shared
// by rofsim, rofs-sweep, and rofs-tables, so a fleet configuration
// reproduces verbatim across front ends.
type Flags struct {
	instances  *int
	routing    *string
	snapshotMS *float64
	admission  *string
	tokenCap   *float64
	tokenRate  *float64
	queueCap   *int
	faultInst  *int
	par        *int
	syncMS     *float64

	rate      *float64
	clients   *int
	traceFile *string

	compact        *string
	compactSegment *int64
	compactFlush   *float64
	compactFanout  *int
}

// AddFlags registers the cluster and open-loop arrival flags on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	return &Flags{
		instances:  fs.Int("instances", 0, "cluster: fleet size (0: plain single run)"),
		routing:    fs.String("routing", "", "cluster: rr | least | affinity (default rr)"),
		snapshotMS: fs.Float64("snapshot-ms", 0, "cluster: least-loaded snapshot staleness (ms, 0: fresh)"),
		admission:  fs.String("admission", "", "cluster: token | queue (default admit-all)"),
		tokenCap:   fs.Float64("token-capacity", 0, "cluster: token-bucket burst capacity"),
		tokenRate:  fs.Float64("token-refill", 0, "cluster: token-bucket refill rate (tokens/s)"),
		queueCap:   fs.Int("queue-cap", 0, "cluster: bounded-queue in-flight capacity"),
		faultInst:  fs.Int("fault-instance", 0, "cluster: instance the fault scenario targets"),
		par:        fs.Int("par", 0, "cluster: worker goroutines advancing instance engines (0/1: serial; results are byte-identical at any value)"),
		syncMS:     fs.Float64("sync-ms", 0, "cluster: open-loop lookahead window override (ms, 0: snapshot/metrics grid or 100)"),
		rate:       fs.Float64("rate", 0, "open-loop Poisson arrival rate (ops/s, 0: closed-loop)"),
		clients:    fs.Int("arrival-clients", 0, "open-loop client-key population (0: default 256)"),
		traceFile:  fs.String("arrival-trace", "", "open-loop trace file to replay (see EXPERIMENTS.md for the grammar)"),

		compact:        fs.String("compact", "", "log-structured overlay merge policy: tiered | leveled (app test only; empty: off)"),
		compactSegment: fs.Int64("compact-segment", 0, "compaction: log segment bytes (0: default 512K)"),
		compactFlush:   fs.Float64("compact-flush-ms", 0, "compaction: foreground segment flush cadence (simulated ms, 0: default 250)"),
		compactFanout:  fs.Int("compact-fanout", 0, "compaction: merge width / level ratio (0: default 4)"),
	}
}

// Config assembles the parsed flags into a cluster Config. Call after the
// flag set has been parsed; validate with Config.Validate.
func (f *Flags) Config() Config {
	return Config{
		Instances:         *f.instances,
		Routing:           *f.routing,
		SnapshotMS:        *f.snapshotMS,
		Admission:         *f.admission,
		TokenCapacity:     *f.tokenCap,
		TokenRefillPerSec: *f.tokenRate,
		QueueCap:          *f.queueCap,
		FaultInstance:     *f.faultInst,
		Parallelism:       *f.par,
		SyncMS:            *f.syncMS,
	}
}

// Arrivals returns the open-loop arrival process the flags declare —
// Poisson at -rate, or a replayed -arrival-trace file (loaded here) — or
// nil when neither is set (closed-loop user sessions).
func (f *Flags) Arrivals() (*workload.Arrivals, error) {
	if *f.traceFile != "" {
		if *f.rate > 0 {
			return nil, fmt.Errorf("-rate and -arrival-trace are mutually exclusive")
		}
		a, err := workload.LoadTraceFile(*f.traceFile)
		if err != nil {
			return nil, err
		}
		a.Clients = *f.clients
		return a, nil
	}
	if *f.rate <= 0 {
		return nil, nil
	}
	return &workload.Arrivals{RatePerSec: *f.rate, Clients: *f.clients}, nil
}

// Compaction returns the log-structured overlay the flags declare, or nil
// when -compact is unset.
func (f *Flags) Compaction() *workload.Compaction {
	if *f.compact == "" {
		return nil
	}
	return &workload.Compaction{
		Policy:       *f.compact,
		SegmentBytes: *f.compactSegment,
		FlushEveryMS: *f.compactFlush,
		Fanout:       *f.compactFanout,
	}
}
