package cluster

import (
	"testing"

	"rofs/internal/core"
)

// Round-robin must distribute any arrival count evenly: fairness is the
// policy's entire contract.
func TestRoundRobinFairness(t *testing.T) {
	r := newRoundRobin(4)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[r.Route(0, core.Arrival{})]++
	}
	for i, c := range counts {
		if c != 1000 {
			t.Errorf("instance %d got %d arrivals, want 1000", i, c)
		}
	}
}

// Fresh least-loaded reads the live counts directly and breaks ties by
// lowest index.
func TestLeastLoadedFresh(t *testing.T) {
	live := []int{3, 1, 2}
	l := newLeastLoaded(live, true)
	if got := l.Route(0, core.Arrival{}); got != 1 {
		t.Fatalf("Route = %d, want 1 (fewest in flight)", got)
	}
	live[1] = 5
	if got := l.Route(0, core.Arrival{}); got != 2 {
		t.Fatalf("Route = %d, want 2 after load shift", got)
	}
	live[0], live[1], live[2] = 7, 7, 7
	if got := l.Route(0, core.Arrival{}); got != 0 {
		t.Fatalf("Route = %d, want 0 on ties (lowest index)", got)
	}
}

// A stale snapshot keeps routing to the member that *was* least loaded
// until refresh — the herding pathology the SnapshotMS knob exists to
// measure.
func TestLeastLoadedStaleSnapshot(t *testing.T) {
	live := []int{5, 0, 5}
	l := newLeastLoaded(live, false)
	for i := 0; i < 3; i++ {
		if got := l.Route(0, core.Arrival{}); got != 1 {
			t.Fatalf("pre-refresh Route = %d, want 1 (snapshot view)", got)
		}
		live[1] += 10 // the real queue fills, the snapshot doesn't see it
	}
	l.refresh()
	if got := l.Route(0, core.Arrival{}); got == 1 {
		t.Fatalf("post-refresh Route = 1, but instance 1 now carries %d in flight", live[1])
	}
}

// Affinity must be a pure function of the client key and spread distinct
// clients across the fleet.
func TestAffinityDeterministicSpread(t *testing.T) {
	a := newAffinity(4)
	counts := make([]int, 4)
	for c := 0; c < 256; c++ {
		i := a.Route(0, core.Arrival{Client: c})
		if again := a.Route(1e6, core.Arrival{Client: c}); again != i {
			t.Fatalf("client %d moved from instance %d to %d", c, i, again)
		}
		counts[i]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("instance %d received no clients — hash does not spread", i)
		}
	}
}

// Token bucket burst math: a full bucket admits exactly its capacity in a
// burst, then exactly the refill arithmetic afterwards.
func TestTokenBucketBurst(t *testing.T) {
	b := newTokenBucket(10, 100) // capacity 10, 100 tokens/s = 0.1/ms
	admitted := 0
	for i := 0; i < 15; i++ {
		if b.Admit(0) {
			admitted++
		}
	}
	if admitted != 10 {
		t.Fatalf("burst admitted %d, want exactly the capacity 10", admitted)
	}
	// 50 ms later: 5 tokens refilled, not one more.
	admitted = 0
	for i := 0; i < 10; i++ {
		if b.Admit(50) {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("after 50ms admitted %d, want 5 (0.1 tokens/ms refill)", admitted)
	}
	// A long idle period refills to capacity, never beyond.
	admitted = 0
	for i := 0; i < 20; i++ {
		if b.Admit(1e6) {
			admitted++
		}
	}
	if admitted != 10 {
		t.Fatalf("after long idle admitted %d, want the capacity 10", admitted)
	}
}

// Bounded queue: admit to capacity, reject beyond, admit again after
// release.
func TestBoundedQueueRejectBeyondCap(t *testing.T) {
	q := newBoundedQueue(3)
	for i := 0; i < 3; i++ {
		if !q.Admit(0) {
			t.Fatalf("admission %d rejected below capacity", i)
		}
	}
	if q.Admit(0) {
		t.Fatal("admitted beyond capacity")
	}
	q.Release(0)
	if !q.Admit(0) {
		t.Fatal("rejected after a release freed capacity")
	}
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{},
		{Instances: 1},
		{Instances: 4, Routing: RouteLeastLoaded, SnapshotMS: 500},
		{Instances: 2, Admission: AdmitTokenBucket, TokenCapacity: 5, TokenRefillPerSec: 10},
		{Instances: 2, Admission: AdmitQueue, QueueCap: 8, FaultInstance: 1},
		{Instances: 4, Parallelism: 8, SyncMS: 50},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("config %d: unexpected error %v", i, err)
		}
	}
	bad := []Config{
		{Instances: 2, Routing: "random"},
		{Instances: 2, Admission: "lottery"},
		{Instances: 2, Admission: AdmitTokenBucket},
		{Instances: 2, Admission: AdmitQueue},
		{Instances: 2, FaultInstance: 2},
		{Instances: 2, SnapshotMS: -1},
		{Instances: 2, Parallelism: -1},
		{Instances: 2, SyncMS: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d (%+v): error expected, got nil", i, c)
		}
	}
}

func TestConfigKeyStability(t *testing.T) {
	if k := (Config{}).Key(); k != "" {
		t.Fatalf("disabled config must render an empty key, got %q", k)
	}
	a := Config{Instances: 4, Routing: RouteLeastLoaded, SnapshotMS: 250}
	if a.Key() != a.Key() {
		t.Fatal("Key not deterministic")
	}
	b := a
	b.SnapshotMS = 500
	if a.Key() == b.Key() {
		t.Fatal("distinct configs share a key")
	}
	// Parallelism is an execution knob producing byte-identical results,
	// so serial and parallel runs must share one cache entry.
	p := a
	p.Parallelism = 8
	if p.Key() != a.Key() {
		t.Fatalf("Parallelism leaked into the key: %q vs %q", p.Key(), a.Key())
	}
	// SyncMS pins the coupling observation grid (a model knob) — it must
	// key, but only when set, so pre-existing fleet keys are stable.
	s := a
	s.SyncMS = 50
	if s.Key() == a.Key() {
		t.Fatal("SyncMS must participate in the key when set")
	}
}
