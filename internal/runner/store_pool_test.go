package runner

import (
	"context"
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"rofs/internal/ckpt"
	"rofs/internal/core"
	"rofs/internal/store"
)

// openStore opens a disk store under a test temp dir.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{NoSync: true, NoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestPoolDiskReadThrough is the tentpole property at the pool level: a
// second pool over the same store directory — a restarted process —
// serves a previously simulated Spec from disk, byte-identically.
func TestPoolDiskReadThrough(t *testing.T) {
	dir := t.TempDir()
	sp := testSpec(t, 11)

	first := New(2)
	first.Store = openStore(t, dir)
	res1, err := first.Run(context.Background(), []Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	if res1[0].Cached || res1[0].DiskHit {
		t.Fatalf("cold run reported cached=%t diskHit=%t", res1[0].Cached, res1[0].DiskHit)
	}
	first.Store.Close()

	// "Restart": a fresh pool (empty memory cache) over the same dir.
	second := New(2)
	second.Store = openStore(t, dir)
	res2, err := second.Run(context.Background(), []Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	if !res2[0].DiskHit {
		t.Fatal("restarted pool re-simulated instead of reading the store")
	}
	if res2[0].Cached {
		t.Error("disk hit misreported as a memory hit")
	}
	if !reflect.DeepEqual(res1[0].Outcome.Frag, res2[0].Outcome.Frag) {
		t.Errorf("disk-served FragResult differs:\nlive: %+v\ndisk: %+v", res1[0].Outcome.Frag, res2[0].Outcome.Frag)
	}
	if res1[0].Outcome.Stats != res2[0].Outcome.Stats {
		t.Errorf("disk-served RunStats differ: %+v vs %+v", res1[0].Outcome.Stats, res2[0].Outcome.Stats)
	}
	if res1[0].Wall != res2[0].Wall {
		t.Errorf("disk hit lost the original wall time: %v vs %v", res1[0].Wall, res2[0].Wall)
	}
	// The disk hit now lives in the memory cache: a repeat is a plain hit.
	res3, err := second.Run(context.Background(), []Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	if !res3[0].Cached || res3[0].DiskHit {
		t.Errorf("repeat after disk hit: cached=%t diskHit=%t, want memory hit", res3[0].Cached, res3[0].DiskHit)
	}
	st := second.Stats()
	if st.DiskHits != 1 || st.Simulated != 0 {
		t.Errorf("restarted pool stats: %d disk hits, %d simulated; want 1 and 0", st.DiskHits, st.Simulated)
	}
}

// TestPoolDiskHitCarriesMetrics: a stored run's rofs-metrics/v1 bundle
// comes back verbatim on Result.MetricsJSON, and the metrics interval
// partitions the store key (different interval: no hit).
func TestPoolDiskHitCarriesMetrics(t *testing.T) {
	dir := t.TempDir()
	sp := testSpec(t, 12)

	first := New(1)
	first.MetricsIntervalMS = 1_000
	first.Store = openStore(t, dir)
	res1, err := first.Run(context.Background(), []Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	if res1[0].Outcome.Metrics == nil {
		t.Fatal("instrumented run produced no registry")
	}
	first.Store.Close()

	second := New(1)
	second.MetricsIntervalMS = 1_000
	second.Store = openStore(t, dir)
	res2, err := second.Run(context.Background(), []Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	if !res2[0].DiskHit {
		t.Fatal("same-interval pool missed the store")
	}
	if len(res2[0].MetricsJSON) == 0 {
		t.Fatal("disk hit carries no metrics bundle")
	}
	if !json.Valid(res2[0].MetricsJSON) {
		t.Error("stored metrics bundle is not valid JSON")
	}
	second.Store.Close()

	// A pool without the interval keys differently: it must simulate.
	third := New(1)
	third.Store = openStore(t, dir)
	res3, err := third.Run(context.Background(), []Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	if res3[0].DiskHit {
		t.Error("different metrics interval shared a stored result")
	}
}

// TestPoolCacheEntriesBound: the in-memory cache drops least recently
// used completed entries beyond CacheEntries, the gauges track the
// footprint, and an evicted Spec falls back to the disk store.
func TestPoolCacheEntriesBound(t *testing.T) {
	p := New(1)
	p.CacheEntries = 2
	p.Store = openStore(t, t.TempDir())

	specs := []Spec{testSpec(t, 1), testSpec(t, 2), testSpec(t, 3), testSpec(t, 4)}
	if _, err := p.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.CacheEntries != 2 {
		t.Errorf("cache holds %d entries, want 2", st.CacheEntries)
	}
	if st.CacheEvictions != 2 {
		t.Errorf("%d evictions, want 2", st.CacheEvictions)
	}
	if st.CacheBytes <= 0 {
		t.Errorf("CacheBytes = %d, want > 0", st.CacheBytes)
	}

	// Seeds 1 and 2 were evicted from memory; the store still has them.
	res, err := p.Run(context.Background(), []Spec{specs[0]})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].DiskHit {
		t.Error("evicted spec did not read through to the store")
	}
	if res[0].Cached {
		t.Error("evicted spec reported a memory hit")
	}
	// Seed 4 is the most recently used: still a memory hit.
	res, err = p.Run(context.Background(), []Spec{specs[3]})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Cached || res[0].DiskHit {
		t.Errorf("MRU spec: cached=%t diskHit=%t, want memory hit", res[0].Cached, res[0].DiskHit)
	}
}

// TestPoolCacheUnbounded: zero CacheEntries keeps the pre-bound
// behavior — nothing evicts.
func TestPoolCacheUnbounded(t *testing.T) {
	p := New(1)
	specs := []Spec{testSpec(t, 1), testSpec(t, 2), testSpec(t, 3)}
	if _, err := p.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.CacheEvictions != 0 || st.CacheEntries != 3 {
		t.Errorf("unbounded cache: %d entries, %d evictions; want 3 and 0", st.CacheEntries, st.CacheEvictions)
	}
}

// ckptSpec returns a fast application run armed with a checkpoint grid.
func ckptSpec(t testing.TB, seed int64) Spec {
	sp := testSpec(t, seed)
	sp.Kind = core.Application
	sp.MaxSimMS = 60_000
	sp.CheckpointEveryMS = 10_000
	return sp
}

// TestPoolCheckpointLifecycle: an armed Spec through a pool with a
// manager persists boundaries during the run and clears its checkpoint
// on completion; resubmission after a simulated crash resumes from the
// saved state and finishes identically.
func TestPoolCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	mgr, err := ckpt.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	sp := ckptSpec(t, 21)

	p := New(1)
	p.Ckpt = mgr
	base, err := p.Run(context.Background(), []Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	// Completion clears the spent checkpoint.
	if _, err := os.Stat(mgr.Path(sp.Key())); !os.IsNotExist(err) {
		t.Errorf("checkpoint file survived a completed run (stat err: %v)", err)
	}

	// Simulate a crash mid-run: run the same armed config directly (no
	// pool, no Clear), leaving the last boundary's file behind.
	cfg := sp.Config()
	cfg.Checkpoint = &ckpt.Hook{EveryMS: sp.CheckpointEveryMS, Key: sp.Key(), Label: sp.Label(), Sink: mgr.Save}
	if _, err := core.Run(cfg, sp.Kind); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(mgr.Path(sp.Key())); err != nil {
		t.Fatalf("no checkpoint left to resume from: %v", err)
	}

	// A fresh pool resumes from it, verifies, matches, and clears.
	p2 := New(1)
	p2.Ckpt = mgr
	resumed, err := p2.Run(context.Background(), []Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base[0].Outcome.Perf, resumed[0].Outcome.Perf) {
		t.Errorf("resumed PerfResult differs:\nbase:    %+v\nresumed: %+v", base[0].Outcome.Perf, resumed[0].Outcome.Perf)
	}
	if base[0].Outcome.Stats != resumed[0].Outcome.Stats {
		t.Errorf("resumed stats differ: %+v vs %+v", base[0].Outcome.Stats, resumed[0].Outcome.Stats)
	}
	if _, err := os.Stat(mgr.Path(sp.Key())); !os.IsNotExist(err) {
		t.Errorf("checkpoint not cleared after resumed completion (stat err: %v)", err)
	}
}

// TestPoolArmedWithoutManager: CheckpointEveryMS without a Ckpt manager
// still runs (boundary events fire, nothing persists) and produces the
// same result as a managed armed run — the key contract.
func TestPoolArmedWithoutManager(t *testing.T) {
	sp := ckptSpec(t, 22)
	bare := New(1)
	res1, err := bare.Run(context.Background(), []Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := ckpt.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	managed := New(1)
	managed.Ckpt = mgr
	res2, err := managed.Run(context.Background(), []Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1[0].Outcome.Perf, res2[0].Outcome.Perf) || res1[0].Outcome.Stats != res2[0].Outcome.Stats {
		t.Errorf("managed and unmanaged armed runs differ:\nbare:    %+v %+v\nmanaged: %+v %+v",
			res1[0].Outcome.Perf, res1[0].Outcome.Stats, res2[0].Outcome.Perf, res2[0].Outcome.Stats)
	}
}

// TestPoolCorruptCheckpointRecovers: a tampered checkpoint file cannot
// seed a resume; the pool clears it and runs from scratch.
func TestPoolCorruptCheckpointRecovers(t *testing.T) {
	mgr, err := ckpt.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sp := ckptSpec(t, 23)
	if err := os.WriteFile(mgr.Path(sp.Key()), []byte("{ not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := New(1)
	p.Ckpt = mgr
	res, err := p.Run(context.Background(), []Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[0].Outcome.Perf.SimMS == 0 {
		t.Errorf("run after corrupt checkpoint: err=%v perf=%+v", res[0].Err, res[0].Outcome.Perf)
	}
	if _, err := os.Stat(mgr.Path(sp.Key())); !os.IsNotExist(err) {
		t.Errorf("corrupt checkpoint not cleared (stat err: %v)", err)
	}
}
