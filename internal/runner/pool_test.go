package runner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"rofs/internal/core"
	"rofs/internal/disk"
	"rofs/internal/workload"
)

// testSpec returns a small, fast allocation run; vary seed to get
// distinct keys.
func testSpec(t testing.TB, seed int64) Spec {
	t.Helper()
	dcfg := disk.DefaultConfig()
	dcfg.NDisks = 2
	dcfg.Geometry.Cylinders = 120
	wl, err := workload.ByName("TS")
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Disk:     dcfg,
		Policy:   core.RBuddy(5, 1, true),
		Workload: wl.Scale(64, 1),
		Kind:     core.Allocation,
		Seed:     seed,
		MaxSimMS: 60_000,
	}
}

func TestSpecKeyIdentity(t *testing.T) {
	a, b := testSpec(t, 1), testSpec(t, 1)
	if a.Key() != b.Key() {
		t.Error("equal specs have different keys")
	}
	b.Name = "renamed"
	if a.Key() != b.Key() {
		t.Error("Name leaked into the key; it is presentation-only")
	}
	for name, mutate := range map[string]func(*Spec){
		"seed":   func(s *Spec) { s.Seed = 2 },
		"kind":   func(s *Spec) { s.Kind = core.Application },
		"policy": func(s *Spec) { s.Policy = core.RBuddy(5, 1.5, true) },
		"max":    func(s *Spec) { s.MaxSimMS = 30_000 },
		"stable": func(s *Spec) { s.StableWindows = 8 },
		"deg":    func(s *Spec) { s.Degraded = true },
		"disk":   func(s *Spec) { s.Disk.NDisks = 3 },
		"ckpt":   func(s *Spec) { s.CheckpointEveryMS = 10_000 },
	} {
		c := testSpec(t, 1)
		mutate(&c)
		if c.Key() == a.Key() {
			t.Errorf("mutating %s did not change the key", name)
		}
	}
}

func TestPoolCachesEqualSpecs(t *testing.T) {
	p := New(4)
	sp := testSpec(t, 1)
	// The same configuration three times in one batch: one simulation,
	// identical outcomes.
	res, err := p.Run(context.Background(), []Spec{sp, sp, sp})
	if err != nil {
		t.Fatal(err)
	}
	simulated, cached := 0, 0
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("run %d: %v", i, r.Err)
		}
		if r.Cached {
			cached++
		} else {
			simulated++
		}
		if got, want := fmt.Sprintf("%#v", r.Outcome), fmt.Sprintf("%#v", res[0].Outcome); got != want {
			t.Errorf("run %d outcome diverged from its duplicate", i)
		}
	}
	if simulated != 1 || cached != 2 {
		t.Errorf("simulated %d, cached %d; want 1 and 2", simulated, cached)
	}
	// A later batch through the same pool is served entirely from cache.
	res2, err := p.Run(context.Background(), []Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	if !res2[0].Cached {
		t.Error("second batch re-simulated a cached configuration")
	}
	if got, want := fmt.Sprintf("%#v", res2[0].Outcome), fmt.Sprintf("%#v", res[0].Outcome); got != want {
		t.Error("cached outcome differs from the original")
	}
}

func TestPoolResultsInSubmissionOrder(t *testing.T) {
	specs := []Spec{testSpec(t, 3), testSpec(t, 1), testSpec(t, 2)}
	res, err := New(3).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if res[i].Spec.Seed != specs[i].Seed {
			t.Errorf("result %d carries seed %d, want %d", i, res[i].Spec.Seed, specs[i].Seed)
		}
	}
}

func TestPoolPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := New(2).Run(ctx, []Spec{testSpec(t, 1), testSpec(t, 2)})
	if err == nil {
		t.Fatal("canceled context produced no error")
	}
	for i, r := range res {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("run %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

func TestPoolCancelMidFlightEvictsCache(t *testing.T) {
	p := New(1)
	sp := testSpec(t, 7)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	res, _ := p.Run(ctx, []Spec{sp})
	if res[0].Err == nil {
		t.Skip("simulation finished inside the timeout; nothing to evict")
	}
	if !errors.Is(res[0].Err, core.ErrCanceled) && !errors.Is(res[0].Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want a cancellation", res[0].Err)
	}
	// The canceled run must not poison the cache: a batch with a live
	// context simulates afresh and succeeds.
	res2, err := p.Run(context.Background(), []Spec{sp})
	if err != nil {
		t.Fatalf("rerun after cancellation: %v", err)
	}
	if res2[0].Cached {
		t.Error("canceled result was served from the cache")
	}
}

func TestPoolCapturesPanics(t *testing.T) {
	// A NaN horizon makes the engine panic (see sim.Engine.Run); the pool
	// must turn that into a failed Result, not a crashed process, and the
	// healthy spec in the same batch must still complete.
	bad := testSpec(t, 1)
	bad.Kind = core.Application
	bad.MaxSimMS = math.NaN()
	good := testSpec(t, 1)
	res, err := New(2).Run(context.Background(), []Spec{good, bad})
	if err == nil {
		t.Fatal("panicking simulation reported no error")
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Errorf("error does not mention the panic: %v", err)
	}
	if res[0].Err != nil {
		t.Errorf("healthy spec failed alongside the panicking one: %v", res[0].Err)
	}
	if res[1].Err == nil || !strings.Contains(res[1].Err.Error(), "panic") {
		t.Errorf("panicking spec's result: %v", res[1].Err)
	}
}

func TestDoCapturesPanicsAndOrdersErrors(t *testing.T) {
	p := New(4)
	err := p.Do(context.Background(), 8, func(i int) error {
		switch i {
		case 3:
			return fmt.Errorf("boom-%d", i)
		case 5:
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom-3") {
		t.Errorf("Do returned %v, want the first error by index", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Do(ctx, 2, func(int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("Do on canceled ctx = %v", err)
	}
}
