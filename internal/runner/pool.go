package runner

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"rofs/internal/ckpt"
	"rofs/internal/cluster"
	"rofs/internal/core"
	"rofs/internal/metrics"
	"rofs/internal/store"
)

// Result is the outcome of one submitted Spec.
type Result struct {
	Spec    Spec
	Outcome core.Outcome
	// Err is non-nil when the run failed, panicked (the panic message and
	// stack are folded into the error), or was canceled.
	Err error
	// Wall is the real time the simulation took; for cached results it is
	// the original run's wall time.
	Wall time.Duration
	// Cached reports that the result was served from the pool's cache
	// rather than simulated by this submission.
	Cached bool
	// Coalesced refines Cached: the submission arrived while an equal
	// Spec was still simulating and waited for that run's result
	// (single-flight duplicate) rather than finding a completed entry.
	Coalesced bool
	// Followers counts the submissions that coalesced onto this result's
	// cache entry up to the moment the result was produced — for the run
	// that populated the entry, the duplicates its simulation also served.
	Followers int64
	// DiskHit reports that the result was read from the pool's disk
	// store (a prior process computed it) rather than simulated or found
	// in memory.
	DiskHit bool
	// MetricsJSON is the run's canonical rofs-metrics/v1 bundle bytes
	// when the result came through the disk store (the live registry
	// belongs to the process that simulated). Nil for freshly simulated
	// results, whose bundle lives on Outcome.Metrics.
	MetricsJSON []byte
}

// Pool executes Specs on a bounded set of workers. The zero value is
// ready to use; New sets the worker count explicitly. A Pool's cache
// lives as long as the Pool, so batches submitted through the same Pool
// share results across Run calls.
type Pool struct {
	// Jobs is the maximum number of concurrently running simulations.
	// Zero or negative means runtime.GOMAXPROCS(0).
	Jobs int

	// OnResult, when set, observes every finished run (including cached
	// and failed ones) with its submission index. Calls are serialized
	// but may arrive in any index order.
	OnResult func(index int, r Result)

	// MetricsIntervalMS, when positive, gives every simulated run a fresh
	// metrics registry sampling at that interval; the registry comes back
	// on Result.Outcome.Metrics. It is a pool-wide setting (constant for
	// the process), so the result cache stays keyed by Spec alone — a
	// cached Result carries the registry of the run that populated it.
	MetricsIntervalMS float64

	// Metrics holds optional pool-level observability handles; nil handles
	// drop their updates, so the zero value costs nothing. Set it (or call
	// Instrument) before the first Run.
	Metrics Metrics

	// Store, when set, is the disk tier beneath the in-memory cache:
	// misses read through to it, simulated results write through, so a
	// restarted process serves previously computed Specs byte-identically
	// without recomputation. The store key folds in MetricsIntervalMS
	// (the interval shapes the run's event sequence and bundle) but not
	// the store's own path or budget — those are operational, not part of
	// the Spec's identity.
	Store *store.Store

	// CacheEntries bounds the in-memory result cache: beyond this many
	// completed entries the least recently used are dropped (in-flight
	// entries are never evicted). Zero or negative means unbounded — the
	// pre-bound behavior.
	CacheEntries int

	// Ckpt, when set, persists checkpoint states for Specs that arm
	// CheckpointEveryMS, and resumes from an existing state on
	// resubmission after a drain or crash (see internal/ckpt). Nil: armed
	// Specs still run their boundary events (the key contract) but
	// nothing is persisted.
	Ckpt *ckpt.Manager

	mu         sync.Mutex
	cache      map[string]*cacheEntry
	lru        *list.List // completed entries, front = most recently used
	cacheBytes int64      // sum of completed entries' envelope sizes

	// statsMu guards stats and the Metrics handles (registry handles are
	// not safe for concurrent update on their own).
	statsMu sync.Mutex
	stats   Stats
}

// Metrics is the pool's set of nil-safe observability handles, typically
// obtained from one metrics.Registry via Instrument. Gauges track the
// instantaneous queue depth (accepted by Run, no worker yet) and in-flight
// count (worker occupied, including cache waits); counters accumulate
// lifetime submitted / cached / failed totals.
type Metrics struct {
	QueueDepth *metrics.Gauge
	InFlight   *metrics.Gauge
	Submitted  *metrics.Counter
	Cached     *metrics.Counter
	Coalesced  *metrics.Counter
	Failed     *metrics.Counter
	// Disk-tier and cache-bound instrumentation.
	DiskHits       *metrics.Counter
	CacheEvictions *metrics.Counter
	CacheEntries   *metrics.Gauge
	CacheBytes     *metrics.Gauge
}

// Stats is a point-in-time snapshot of the pool's lifetime activity.
type Stats struct {
	// Submitted counts every Spec handed to Run; Simulated the ones that
	// actually ran a simulation; Cached the ones served from the pool's
	// result cache; Coalesced the subset of Cached that waited on an
	// in-flight duplicate; Failed the ones whose Result carried an error.
	Submitted, Simulated, Cached, Coalesced, Failed int64
	// DiskHits counts submissions served from the disk store;
	// StoreErrors the stored payloads that failed to decode (the run
	// re-simulated). CacheEvictions counts completed entries dropped by
	// the CacheEntries bound; CacheEntries and CacheBytes are the
	// instantaneous in-memory cache footprint (completed entries and
	// their envelope sizes).
	DiskHits, StoreErrors    int64
	CacheEvictions           int64
	CacheEntries, CacheBytes int64
	// QueueDepth and InFlight are the instantaneous values; the Peak
	// variants their lifetime maxima — the saturation signal.
	QueueDepth, InFlight         int64
	PeakQueueDepth, PeakInFlight int64
	// Runtime is a Go-runtime snapshot taken at Stats() time — the
	// process-level saturation companion to the pool's own gauges.
	Runtime RuntimeStats
}

// RuntimeStats captures the Go runtime signals served alongside pool
// saturation: goroutine count, heap occupancy, and cumulative GC work.
type RuntimeStats struct {
	Goroutines     int
	HeapAllocBytes uint64
	HeapSysBytes   uint64
	NumGC          uint32
	GCPauseTotalMS float64
}

// readRuntime snapshots the live runtime.
func readRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		NumGC:          ms.NumGC,
		GCPauseTotalMS: float64(ms.PauseTotalNs) / 1e6,
	}
}

// Instrument registers the pool's gauges and counters (pool.queue_depth,
// pool.in_flight, pool.runs_submitted, pool.runs_cached, pool.runs_failed)
// on reg. A nil registry installs nil (dropping) handles.
func (p *Pool) Instrument(reg *metrics.Registry) {
	p.Metrics = Metrics{
		QueueDepth:     reg.Gauge("pool.queue_depth"),
		InFlight:       reg.Gauge("pool.in_flight"),
		Submitted:      reg.Counter("pool.runs_submitted"),
		Cached:         reg.Counter("pool.runs_cached"),
		Coalesced:      reg.Counter("pool.runs_coalesced"),
		Failed:         reg.Counter("pool.runs_failed"),
		DiskHits:       reg.Counter("pool.runs_disk_hit"),
		CacheEvictions: reg.Counter("pool.cache_evictions"),
		CacheEntries:   reg.Gauge("pool.cache_entries"),
		CacheBytes:     reg.Gauge("pool.cache_bytes"),
	}
}

// Stats returns a snapshot of the pool's counters and gauges, with the
// Go runtime read at call time.
func (p *Pool) Stats() Stats {
	p.statsMu.Lock()
	st := p.stats
	p.statsMu.Unlock()
	st.Runtime = readRuntime()
	return st
}

// noteCacheLocked refreshes the cache-footprint stats and gauges from
// the live structures. Caller holds p.mu (the canonical lock order is
// mu before statsMu; nothing takes them the other way).
func (p *Pool) noteCacheLocked() {
	entries := int64(0)
	if p.lru != nil {
		entries = int64(p.lru.Len())
	}
	p.statsMu.Lock()
	p.stats.CacheEntries = entries
	p.stats.CacheBytes = p.cacheBytes
	p.Metrics.CacheEntries.Set(float64(entries))
	p.Metrics.CacheBytes.Set(float64(p.cacheBytes))
	p.statsMu.Unlock()
}

// enqueue records n Specs accepted by Run.
func (p *Pool) enqueue(n int) {
	p.statsMu.Lock()
	p.stats.Submitted += int64(n)
	p.stats.QueueDepth += int64(n)
	if p.stats.QueueDepth > p.stats.PeakQueueDepth {
		p.stats.PeakQueueDepth = p.stats.QueueDepth
	}
	p.Metrics.Submitted.Add(int64(n))
	p.Metrics.QueueDepth.Set(float64(p.stats.QueueDepth))
	p.statsMu.Unlock()
}

// dequeue moves one Spec from the queue to in-flight.
func (p *Pool) dequeue() {
	p.statsMu.Lock()
	p.stats.QueueDepth--
	p.stats.InFlight++
	if p.stats.InFlight > p.stats.PeakInFlight {
		p.stats.PeakInFlight = p.stats.InFlight
	}
	p.Metrics.QueueDepth.Set(float64(p.stats.QueueDepth))
	p.Metrics.InFlight.Set(float64(p.stats.InFlight))
	p.statsMu.Unlock()
}

// finish retires one in-flight Spec with its disposition.
func (p *Pool) finish(r Result, simulated bool) {
	p.statsMu.Lock()
	p.stats.InFlight--
	if simulated {
		p.stats.Simulated++
	}
	if r.Cached {
		p.stats.Cached++
		p.Metrics.Cached.Inc()
	}
	if r.Coalesced {
		p.stats.Coalesced++
		p.Metrics.Coalesced.Inc()
	}
	if r.DiskHit {
		p.stats.DiskHits++
		p.Metrics.DiskHits.Inc()
	}
	if r.Err != nil {
		p.stats.Failed++
		p.Metrics.Failed.Inc()
	}
	p.Metrics.InFlight.Set(float64(p.stats.InFlight))
	p.statsMu.Unlock()
}

// cacheEntry is one key's slot: done closes when the owning run
// finishes. followers counts submissions that coalesced while the run
// was still in flight (guarded by the pool's mu). Completed entries
// join the LRU list (elem non-nil) and become evictable under the
// CacheEntries bound; in-flight entries are not listed and never evict.
type cacheEntry struct {
	key       string
	done      chan struct{}
	outcome   core.Outcome
	err       error
	wall      time.Duration
	followers int64
	diskHit   bool   // populated from the disk store, not a simulation
	metrics   []byte // raw bundle bytes for disk-populated entries
	bytes     int64  // envelope size, the entry's CacheBytes share
	elem      *list.Element
}

// New returns a Pool running at most jobs simulations at once (0: one per
// available CPU).
func New(jobs int) *Pool { return &Pool{Jobs: jobs} }

// jobs resolves the effective worker count.
func (p *Pool) jobs() int {
	if p.Jobs > 0 {
		return p.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes the Specs and returns one Result per Spec, ordered by
// submission index regardless of completion order. The first failure (in
// submission order) is also returned as the error, labeled with its Spec;
// the remaining results are still valid. Canceling ctx stops runs between
// operations (in-flight simulations poll Config.Cancel) and fails
// not-yet-started ones with ctx's error.
func (p *Pool) Run(ctx context.Context, specs []Spec) ([]Result, error) {
	results := make([]Result, len(specs))
	p.enqueue(len(specs))
	workers := p.jobs()
	if workers > len(specs) {
		workers = len(specs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	var cbMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = p.one(ctx, specs[i])
				if cb := p.OnResult; cb != nil {
					cbMu.Lock()
					cb(i, results[i])
					cbMu.Unlock()
				}
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i := range results {
		if err := results[i].Err; err != nil {
			return results, fmt.Errorf("%s: %w", results[i].Spec.Label(), err)
		}
	}
	return results, nil
}

// storeKey maps a Spec key to its disk-store key. The pool-wide metrics
// interval joins it because the interval shapes the run's event
// sequence and its bundle: two processes serving different intervals
// must not share stored results.
func (p *Pool) storeKey(key string) string {
	if p.MetricsIntervalMS > 0 {
		return key + fmt.Sprintf("|mi=%g", p.MetricsIntervalMS)
	}
	return key
}

// completeLocked adds a finished entry to the LRU list and enforces the
// CacheEntries bound. Caller holds p.mu.
func (p *Pool) completeLocked(e *cacheEntry) {
	e.elem = p.lru.PushFront(e)
	p.cacheBytes += e.bytes
	if p.CacheEntries > 0 {
		for p.lru.Len() > p.CacheEntries {
			v := p.lru.Back().Value.(*cacheEntry)
			if v == e {
				break // a bound of 1 keeps at least the newest entry
			}
			p.dropEntryLocked(v)
			p.statsMu.Lock()
			p.stats.CacheEvictions++
			p.Metrics.CacheEvictions.Inc()
			p.statsMu.Unlock()
		}
	}
	p.noteCacheLocked()
}

// dropEntryLocked removes a completed entry from the cache and the LRU
// list. Caller holds p.mu.
func (p *Pool) dropEntryLocked(e *cacheEntry) {
	delete(p.cache, e.key)
	p.lru.Remove(e.elem)
	p.cacheBytes -= e.bytes
}

// one resolves a single Spec: from the in-memory cache when an equal
// Spec already ran (or is running) in this process, from the disk store
// when a prior process computed it, otherwise by simulating. It owns the
// Spec's queue→in-flight→finished stats transitions.
func (p *Pool) one(ctx context.Context, sp Spec) (res Result) {
	p.dequeue()
	simulated := false
	defer func() { p.finish(res, simulated) }()
	res = Result{Spec: sp}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	key := sp.Key()
	p.mu.Lock()
	if p.cache == nil {
		p.cache = make(map[string]*cacheEntry)
		p.lru = list.New()
	}
	if e, ok := p.cache[key]; ok {
		// A completed entry is a plain cache hit; an in-flight one makes
		// this submission a coalesced follower of the running simulation.
		select {
		case <-e.done:
			p.lru.MoveToFront(e.elem)
		default:
			res.Coalesced = true
			e.followers++
		}
		p.mu.Unlock()
		select {
		case <-e.done:
			res.Outcome, res.Err, res.Wall, res.Cached = e.outcome, e.err, e.wall, true
			res.MetricsJSON = e.metrics
			p.mu.Lock()
			res.Followers = e.followers
			p.mu.Unlock()
		case <-ctx.Done():
			res.Err = ctx.Err()
		}
		return res
	}
	e := &cacheEntry{key: key, done: make(chan struct{})}
	p.cache[key] = e
	p.mu.Unlock()

	// Disk read-through. The in-flight entry is already in the map, so
	// concurrent duplicates coalesce onto the disk read as they would
	// onto a simulation.
	if p.Store != nil {
		if payload, ok := p.Store.Get(p.storeKey(key)); ok {
			out, wall, mjson, derr := decodeStored(sp, payload)
			if derr == nil {
				p.mu.Lock()
				e.outcome, e.wall = out, wall
				e.diskHit, e.metrics = true, mjson
				e.bytes = int64(len(payload))
				res.Followers = e.followers
				p.completeLocked(e)
				p.mu.Unlock()
				close(e.done)
				res.Outcome, res.Wall = out, wall
				res.DiskHit, res.MetricsJSON = true, mjson
				return res
			}
			// Undecodable payload (schema drift, kind collision): note it
			// and re-simulate; the write-through refreshes the record.
			p.statsMu.Lock()
			p.stats.StoreErrors++
			p.statsMu.Unlock()
		}
	}

	simulated = true
	start := time.Now()
	out, err := p.simulate(ctx, sp)
	wall := time.Since(start)
	canceled := err != nil && (errors.Is(err, core.ErrCanceled) || errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded))

	// Encode the envelope once: it is both the write-through payload and
	// the entry's byte footprint. Encoding failures degrade to a served
	// but unstored result.
	var envelope []byte
	if err == nil {
		var eerr error
		if envelope, eerr = encodeStored(out, wall); eerr != nil {
			p.statsMu.Lock()
			p.stats.StoreErrors++
			p.statsMu.Unlock()
		}
	}
	if p.Store != nil && envelope != nil && !canceled {
		if perr := p.Store.Put(p.storeKey(key), envelope); perr != nil {
			p.statsMu.Lock()
			p.stats.StoreErrors++
			p.statsMu.Unlock()
		}
	}

	p.mu.Lock()
	e.outcome, e.err, e.wall = out, err, wall
	e.bytes = int64(len(envelope))
	res.Followers = e.followers
	if canceled {
		// A canceled run is not a result: drop it so a later batch with a
		// live context simulates afresh.
		delete(p.cache, key)
	} else {
		p.completeLocked(e)
	}
	p.mu.Unlock()
	close(e.done)
	res.Outcome, res.Err, res.Wall = out, err, wall
	return res
}

// simulate performs the Spec's run, converting a panicking simulation
// into a failed Result instead of a crashed process.
func (p *Pool) simulate(ctx context.Context, sp Spec) (out core.Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: panic: %v\n%s", r, debug.Stack())
		}
	}()
	cfg := sp.Config()
	cfg.Cancel = ctx.Done()
	if p.MetricsIntervalMS > 0 {
		cfg.Metrics = metrics.New(p.MetricsIntervalMS)
	}
	if sp.CheckpointEveryMS > 0 {
		cfg.Checkpoint = p.armCkpt(sp)
	}
	if sp.Cluster.Enabled() {
		out, err = cluster.Run(cfg, sp.Cluster, sp.Kind)
	} else {
		out, err = core.Run(cfg, sp.Kind)
	}
	if err == nil && p.Ckpt != nil && sp.CheckpointEveryMS > 0 {
		// The run completed: its checkpoint is spent. Clearing keeps the
		// directory from accumulating states for finished Specs.
		p.Ckpt.Clear(sp.Key())
	}
	return out, err
}

// armCkpt builds the checkpoint hook for an armed Spec. With a manager
// it persists boundary states and resumes from any existing state; with
// no manager the boundary events still fire (the armed key names the
// armed event sequence) but nothing is written.
func (p *Pool) armCkpt(sp Spec) *ckpt.Hook {
	key, label := sp.Key(), sp.Label()
	if p.Ckpt == nil {
		return &ckpt.Hook{EveryMS: sp.CheckpointEveryMS, Key: key, Label: label}
	}
	h, err := p.Ckpt.Arm(sp.CheckpointEveryMS, key, label)
	if err != nil {
		// An unreadable prior checkpoint cannot seed a resume: clear it
		// and run (and re-checkpoint) from scratch.
		p.Ckpt.Clear(key)
		return &ckpt.Hook{EveryMS: sp.CheckpointEveryMS, Key: key, Label: label, Sink: p.Ckpt.Save}
	}
	return h
}

// Do runs fn(i) for every i in [0, n) on at most Jobs workers and returns
// the first error by index — the escape hatch for experiment steps that
// are not Spec-shaped (analytic walk-throughs, custom measurements) but
// should still share the pool's bounded parallelism. Panics in fn are
// captured like panicking simulations. Already-canceled contexts fail
// remaining iterations with ctx's error; fn itself is responsible for
// observing ctx mid-iteration.
func (p *Pool) Do(ctx context.Context, n int, fn func(i int) error) error {
	errs := make([]error, n)
	workers := p.jobs()
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = protect(ctx, i, fn)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// protect invokes fn(i) with ctx and panic guards.
func protect(ctx context.Context, i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: panic: %v\n%s", r, debug.Stack())
		}
	}()
	if err := ctx.Err(); err != nil {
		return err
	}
	return fn(i)
}
