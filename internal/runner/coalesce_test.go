package runner

import (
	"context"
	"sync"
	"testing"
)

// TestCoalescedFollowerAccounting pins the Coalesced/Followers contract:
// a submission that waits on an in-flight duplicate is marked Coalesced,
// a submission served from a completed entry is Cached but not
// Coalesced, and the populating run reports how many followers its
// simulation also served.
func TestCoalescedFollowerAccounting(t *testing.T) {
	p := New(2)
	sp := testSpec(t, 31)

	var wg sync.WaitGroup
	results := make([]Result, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := p.Run(context.Background(), []Spec{sp})
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			results[i] = res[0]
		}(i)
	}
	wg.Wait()

	var leader, follower *Result
	for i := range results {
		if results[i].Cached {
			follower = &results[i]
		} else {
			leader = &results[i]
		}
	}
	// The two goroutines may serialize entirely (leader finishes before
	// the follower looks up the cache): then the follower is Cached but
	// not Coalesced and Stats.Coalesced may be 0. When they did overlap,
	// the accounting must agree on both sides.
	if leader == nil || follower == nil {
		t.Fatalf("want one simulated and one cached result, got %+v", results)
	}
	if leader.Coalesced {
		t.Error("the simulating run must not be marked Coalesced")
	}
	st := p.Stats()
	if follower.Coalesced {
		if st.Coalesced != 1 {
			t.Errorf("Stats.Coalesced = %d, want 1", st.Coalesced)
		}
		if leader.Followers != 1 && follower.Followers != 1 {
			t.Errorf("neither side reports the follower: leader %d, follower %d",
				leader.Followers, follower.Followers)
		}
	} else if st.Coalesced != 0 {
		t.Errorf("Stats.Coalesced = %d with no coalesced result", st.Coalesced)
	}

	// A fresh submission after completion is a plain cache hit.
	res, err := p.Run(context.Background(), []Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Cached || res[0].Coalesced {
		t.Errorf("post-completion duplicate: cached=%t coalesced=%t, want cached only",
			res[0].Cached, res[0].Coalesced)
	}
}

// TestTraceIDExcludedFromKey: trace correlation must never split the
// cache — Specs differing only in TraceID share one key and one result.
func TestTraceIDExcludedFromKey(t *testing.T) {
	a := testSpec(t, 7)
	b := a
	b.TraceID = "0123456789abcdef"
	if a.Key() != b.Key() {
		t.Errorf("TraceID changed the spec key:\n%s\n%s", a.Key(), b.Key())
	}

	p := New(1)
	if _, err := p.Run(context.Background(), []Spec{a}); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background(), []Spec{b})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Cached {
		t.Error("traced duplicate of an untraced run was re-simulated")
	}
	if res[0].Spec.TraceID != b.TraceID {
		t.Errorf("result lost its submission's TraceID: %q", res[0].Spec.TraceID)
	}
}

// TestStatsRuntimeSnapshot: Stats() carries a live runtime snapshot.
func TestStatsRuntimeSnapshot(t *testing.T) {
	p := New(1)
	st := p.Stats()
	if st.Runtime.Goroutines < 1 {
		t.Errorf("Runtime.Goroutines = %d, want >= 1", st.Runtime.Goroutines)
	}
	if st.Runtime.HeapAllocBytes == 0 || st.Runtime.HeapSysBytes == 0 {
		t.Errorf("Runtime heap stats empty: %+v", st.Runtime)
	}
}
