// Package runner turns the repository's simulations into declarative
// work: a Spec names one run (policy × workload × test × scale × seed)
// and a Pool executes a batch of Specs on a bounded set of workers.
//
// Every core session owns its engine, RNG, disk system, and file-system
// state, so runs share nothing and parallel execution is bit-for-bit
// identical to serial execution for a fixed seed — the pool's contract,
// proved by the determinism test. Identical Specs (by canonical key) are
// simulated once per process and served from the pool's cache after
// that, so configurations shared between tables cost one simulation.
package runner

import (
	"fmt"

	"rofs/internal/cluster"
	"rofs/internal/core"
	"rofs/internal/disk"
	"rofs/internal/fault"
	"rofs/internal/workload"
)

// Spec declares one simulation run. It carries everything a core.Config
// needs; construction of the Config happens behind Config(), so callers
// only ever describe runs, never assemble them.
type Spec struct {
	// Name optionally overrides the derived Label in progress output. It
	// is not part of the canonical key.
	Name string

	// TraceID carries the request trace that submitted this Spec (see
	// internal/obs) so the serving layer can correlate a run with its
	// access-log record. Like Name it is presentation-only: excluded from
	// the canonical key, so traced and untraced submissions of the same
	// simulation share one cache entry.
	TraceID string

	Disk     disk.Config
	Policy   core.PolicySpec
	Workload workload.Workload
	Kind     core.TestKind
	Seed     int64

	// MaxSimMS caps throughput runs (0: the core default).
	MaxSimMS float64
	// StableWindows overrides how many consecutive in-tolerance windows
	// count as a stabilized throughput run (0: the core default of 3).
	StableWindows int
	// Degraded fails drive 0 before the run (RAID-5 only). It is the
	// legacy alias for Faults.PreFail with FailDrive 0.
	Degraded bool
	// Faults declares the run's fault scenario (zero: no faults).
	Faults fault.Scenario
	// Cluster, when enabled, runs the Spec as an N-instance fleet through
	// the cluster Deployment (zero: plain single-instance run).
	// Cluster.Parallelism additionally fans the fleet's per-instance
	// engines across worker goroutines *inside* the one runner job — it
	// composes with the Pool's own jobs-level parallelism, and because a
	// fleet's schedule is fixed by the configuration alone, the result
	// (and the cache entry under Key, which excludes Parallelism) is
	// byte-identical at every combination of jobs and Parallelism.
	Cluster cluster.Config

	// CheckpointEveryMS, when positive, arms verified checkpoint/resume
	// on the run with boundaries every so many simulated milliseconds
	// (see internal/ckpt). The boundary events join the run's event
	// sequence — an armed run is a distinct deterministic variant of the
	// spec, so the grid is part of the canonical key. Where checkpoints
	// are persisted (the Pool's Ckpt manager directory) is operational
	// and excluded, like the result store's path and size.
	CheckpointEveryMS float64
}

// Config assembles the core.Config the Spec declares.
func (s Spec) Config() core.Config {
	return core.Config{
		Disk:          s.Disk,
		Policy:        s.Policy,
		Workload:      s.Workload,
		Seed:          s.Seed,
		MaxSimMS:      s.MaxSimMS,
		StableWindows: s.StableWindows,
		Degraded:      s.Degraded,
		Faults:        s.Faults,
	}
}

// Key returns the Spec's canonical identity: two Specs with equal keys
// describe the same simulation and may share one result. Every field
// that influences the run is folded in; Name is presentation-only and
// excluded. The encodings are plain-value struct dumps, deterministic
// because the underlying configurations hold no maps or pointers.
func (s Spec) Key() string {
	// Workload renders through KeyString, which matches the historical
	// two-field %+v dump byte-for-byte and appends an arrivals term only
	// when an open-loop process is configured — a raw %+v would render the
	// Arrivals pointer as an address and break key determinism.
	key := fmt.Sprintf("%s|%+v|%+v|%s|seed=%d|max=%g|sw=%d|deg=%t",
		s.Kind, s.Policy, s.Disk, s.Workload.KeyString(), s.Seed, s.MaxSimMS, s.StableWindows, s.Degraded)
	// The fault term is appended only for enabled scenarios, so fault-free
	// Specs keep the key encoding they had before faults existed (pinned
	// by the spec-key golden test).
	if fk := s.Faults.Key(); fk != "" {
		key += "|faults{" + fk + "}"
	}
	// Likewise the cluster term exists only for fleet runs.
	if ck := s.Cluster.Key(); ck != "" {
		key += "|cluster{" + ck + "}"
	}
	// And the checkpoint term only for armed runs, whose boundary events
	// make them distinct deterministic variants.
	if s.CheckpointEveryMS > 0 {
		key += fmt.Sprintf("|ckpt=%g", s.CheckpointEveryMS)
	}
	return key
}

// Label returns the short human-readable name progress lines use:
// Name when set, else policy/workload/test.
func (s Spec) Label() string {
	if s.Name != "" {
		return s.Name
	}
	return fmt.Sprintf("%s/%s/%s", s.Policy.Name(), s.Workload.Name, s.Kind)
}
