package runner

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rofs/internal/metrics"
)

func TestSanitizeLabel(t *testing.T) {
	for in, want := range map[string]string{
		"rbuddy-5-g1-clus/TS/alloc": "rbuddy-5-g1-clus-TS-alloc",
		"seed=3 rbuddy/TS/app":      "seed-3-rbuddy-TS-app",
		"///":                       "run",
		"":                          "run",
		"plain_name.v1":             "plain_name.v1",
	} {
		if got := SanitizeLabel(in); got != want {
			t.Errorf("SanitizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSaveMetricsNilRegistryWritesNothing(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "never-created")
	path, err := SaveMetrics(dir, metrics.JSON, "label", nil)
	if err != nil || path != "" {
		t.Fatalf("SaveMetrics(nil) = %q, %v", path, err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("nil registry still created the directory")
	}
}

func TestPoolMetricsEndToEnd(t *testing.T) {
	p := New(2)
	p.MetricsIntervalMS = 1000
	specs := []Spec{testSpec(t, 1), testSpec(t, 2), testSpec(t, 1)}
	results, err := p.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for i, r := range results {
		reg := r.Outcome.Metrics
		if reg == nil {
			t.Fatalf("result %d has no metrics registry", i)
		}
		if reg.Counter("alloc.allocs").Value() == 0 {
			t.Fatalf("result %d registry is empty", i)
		}
		path, err := SaveMetrics(dir, metrics.JSON, r.Spec.Label(), reg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), metrics.SchemaV1) {
			t.Fatalf("%s missing schema tag", path)
		}
	}
	// The cached third result carries the registry of the run that
	// populated it.
	if !results[2].Cached || results[2].Outcome.Metrics != results[0].Outcome.Metrics {
		t.Fatal("cached result did not reuse the original run's registry")
	}
}
