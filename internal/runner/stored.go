package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"rofs/internal/core"
	"rofs/internal/metrics"
)

// storedSchema identifies the result-store envelope format.
const storedSchema = "rofs-store/v1"

// storedResult is the disk envelope for one completed run: the outcome's
// tagged-union payload, the engine stats, the original wall time, and
// the run's canonical rofs-metrics/v1 bundle bytes. The bundle is kept
// as raw JSON exactly as the registry rendered it, so a disk hit serves
// byte-identical metrics without a live registry.
type storedResult struct {
	Schema  string              `json:"schema"`
	Kind    string              `json:"kind"`
	Frag    *core.FragResult    `json:"frag,omitempty"`
	Perf    *core.PerfResult    `json:"perf,omitempty"`
	Realloc *core.ReallocResult `json:"realloc,omitempty"`
	Aging   *core.AgingResult   `json:"aging,omitempty"`
	Stats   core.RunStats       `json:"stats"`
	WallNS  int64               `json:"wall_ns"`
	Metrics json.RawMessage     `json:"metrics,omitempty"`
}

// encodeStored renders a finished outcome as the store envelope.
func encodeStored(out core.Outcome, wall time.Duration) ([]byte, error) {
	env := storedResult{
		Schema: storedSchema,
		Kind:   out.Kind.String(),
		Stats:  out.Stats,
		WallNS: int64(wall),
	}
	switch out.Kind {
	case core.Allocation:
		f := out.Frag
		env.Frag = &f
	case core.Application, core.Sequential:
		p := out.Perf
		env.Perf = &p
	case core.AllocationRealloc:
		r := out.Realloc
		env.Realloc = &r
	case core.Aging:
		a := out.Aging
		env.Aging = &a
	default:
		return nil, fmt.Errorf("runner: cannot store outcome of kind %v", out.Kind)
	}
	if out.Metrics != nil {
		var buf bytes.Buffer
		if err := out.Metrics.Write(&buf, metrics.JSON); err != nil {
			return nil, fmt.Errorf("runner: encode metrics bundle: %w", err)
		}
		env.Metrics = buf.Bytes()
	}
	return json.Marshal(env)
}

// decodeStored parses a store envelope back into the outcome for sp,
// returning the rebuilt outcome, the original run's wall time, and the
// raw metrics bundle (nil when the run had metrics off).
func decodeStored(sp Spec, payload []byte) (core.Outcome, time.Duration, []byte, error) {
	var env storedResult
	if err := json.Unmarshal(payload, &env); err != nil {
		return core.Outcome{}, 0, nil, fmt.Errorf("runner: decode stored result: %w", err)
	}
	if env.Schema != storedSchema {
		return core.Outcome{}, 0, nil, fmt.Errorf("runner: stored result schema %q, want %q", env.Schema, storedSchema)
	}
	if env.Kind != sp.Kind.String() {
		return core.Outcome{}, 0, nil, fmt.Errorf("runner: stored result kind %q, spec wants %q", env.Kind, sp.Kind)
	}
	out := core.Outcome{Kind: sp.Kind, Stats: env.Stats}
	switch sp.Kind {
	case core.Allocation:
		if env.Frag == nil {
			return out, 0, nil, fmt.Errorf("runner: stored %s result missing frag payload", env.Kind)
		}
		out.Frag = *env.Frag
	case core.Application, core.Sequential:
		if env.Perf == nil {
			return out, 0, nil, fmt.Errorf("runner: stored %s result missing perf payload", env.Kind)
		}
		out.Perf = *env.Perf
	case core.AllocationRealloc:
		if env.Realloc == nil {
			return out, 0, nil, fmt.Errorf("runner: stored %s result missing realloc payload", env.Kind)
		}
		out.Realloc = *env.Realloc
	case core.Aging:
		if env.Aging == nil {
			return out, 0, nil, fmt.Errorf("runner: stored %s result missing aging payload", env.Kind)
		}
		out.Aging = *env.Aging
	}
	return out, time.Duration(env.WallNS), []byte(env.Metrics), nil
}
