package runner

import (
	"os"
	"path/filepath"
	"strings"

	"rofs/internal/metrics"
)

// SaveMetrics writes one run's registry into dir (created on demand) as
// <sanitized label><format ext> and returns the path. A nil registry —
// metrics disabled, or a failed run — writes nothing and returns "".
func SaveMetrics(dir string, f metrics.Format, label string, reg *metrics.Registry) (string, error) {
	if reg == nil {
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, SanitizeLabel(label)+f.Ext())
	if err := reg.WriteFile(path, f); err != nil {
		return "", err
	}
	return path, nil
}

// SanitizeLabel maps a spec label ("rbuddy-5-g1-clus/TS/app", or a free-
// form sweep name with spaces and '=') to a filename-safe slug.
func SanitizeLabel(label string) string {
	var b strings.Builder
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.' || r == '_' || r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	s := strings.Trim(b.String(), "-")
	if s == "" {
		s = "run"
	}
	return s
}
