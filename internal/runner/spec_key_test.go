package runner

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rofs/internal/alloc/extent"
	"rofs/internal/core"
	"rofs/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current key encoding")

// TestSpecKeyGolden pins the canonical key encoding. The pool's result
// cache, the service layer's request coalescing, and saved metrics
// bundles all assume that a given configuration keys identically across
// processes and releases — so any change to the encoding must be a
// conscious one (rerun with -update and review the diff).
func TestSpecKeyGolden(t *testing.T) {
	specs := []Spec{
		testSpec(t, 42),
		testSpec(t, 42),
		testSpec(t, 42),
		testSpec(t, 42),
		testSpec(t, 42),
	}
	specs[1].Policy = core.Buddy()
	specs[1].Kind = core.Application
	specs[2].Policy = core.Extent(extent.BestFit, []int64{4096, 65536, 1 << 20})
	specs[3].Policy = core.Fixed(4096)
	specs[3].Kind = core.Sequential
	specs[3].MaxSimMS = 30_000
	// An armed run is a distinct deterministic variant: the checkpoint
	// grid appends a |ckpt= term (and only then).
	specs[4].Kind = core.Application
	specs[4].CheckpointEveryMS = 10_000

	// The scenario layer's variants, each appending its own term (and only
	// when armed): the aging kind, an inline arrival trace, and the
	// log-structured compaction overlay.
	aging := testSpec(t, 42)
	aging.Kind = core.Aging
	traced := testSpec(t, 42)
	traced.Kind = core.Application
	traced.Workload.Arrivals = &workload.Arrivals{Trace: []workload.TraceOp{
		{AtMS: 0, Op: "read"},
		{AtMS: 500, Op: "write", Client: 3},
		{AtMS: 1000, Op: "dealloc"},
	}}
	compacted := testSpec(t, 42)
	compacted.Kind = core.Application
	compacted.Workload.Compact = &workload.Compaction{Policy: workload.CompactLeveled, Fanout: 8}
	specs = append(specs, aging, traced, compacted)

	var b strings.Builder
	for _, sp := range specs {
		b.WriteString(sp.Key())
		b.WriteString("\n")
	}
	got := b.String()

	path := filepath.Join("testdata", "spec_key.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("Spec.Key encoding changed — cached results and coalescing keys no longer match older runs.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
