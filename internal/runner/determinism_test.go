// The determinism test lives in an external test package so it can drive
// the real experiment grids through the pool without an import cycle
// (experiments imports runner).
package runner_test

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"rofs/internal/cluster"
	"rofs/internal/core"
	"rofs/internal/experiments"
	"rofs/internal/runner"
	"rofs/internal/workload"
)

// TestPoolParallelismIsDeterministic is the pool's core contract: because
// every core session owns its engine, RNG, disk system, and file-system
// state, running the BenchScale Table 3 grid on eight workers produces
// byte-identical outcomes to running it serially.
func TestPoolParallelismIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in short mode")
	}
	specs, err := experiments.Table3Specs(experiments.BenchScale())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := runner.New(1).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runner.New(8).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s := fmt.Sprintf("%#v", serial[i].Outcome)
		p := fmt.Sprintf("%#v", parallel[i].Outcome)
		if s != p {
			t.Errorf("%s: jobs=8 outcome diverged from jobs=1:\nserial:   %s\nparallel: %s",
				serial[i].Spec.Label(), s, p)
		}
	}
}

// TestTable3AssemblesFromPooledResults checks the experiments layer on
// top of the pool: the assembled rows match the raw pooled outcomes.
func TestTable3AssemblesFromPooledResults(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in short mode")
	}
	pool := runner.New(0)
	rows, err := experiments.Table3(context.Background(), pool, experiments.BenchScale())
	if err != nil {
		t.Fatal(err)
	}
	specs, err := experiments.Table3Specs(experiments.BenchScale())
	if err != nil {
		t.Fatal(err)
	}
	// Same pool: every spec is already cached from the Table3 call.
	res, err := pool.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if !r.Cached {
			t.Errorf("%s re-simulated; Table3 should have populated the cache", r.Spec.Label())
		}
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Row 0 assembles from the first workload's three runs.
	if rows[0].InternalPct != res[0].Outcome.Frag.InternalPct {
		t.Error("row 0 fragmentation does not match its pooled outcome")
	}
	if rows[0].AppPct != res[1].Outcome.Perf.Percent {
		t.Error("row 0 application throughput does not match its pooled outcome")
	}
	if rows[0].SeqPct != res[2].Outcome.Perf.Percent {
		t.Error("row 0 sequential throughput does not match its pooled outcome")
	}
}

// TestFleetParallelismComposesWithPool extends the determinism contract
// to intra-run parallelism: a fleet Spec with Cluster.Parallelism set
// runs its instance engines on worker goroutines *inside* one pool job,
// and the outcome must be byte-identical across every combination of
// pool jobs and fleet workers. Because Parallelism is excluded from
// Spec.Key, the serial and parallel Specs must also share one cache
// identity.
func TestFleetParallelismComposesWithPool(t *testing.T) {
	sc := experiments.BenchScale()
	wl, err := sc.Workload("TP")
	if err != nil {
		t.Fatal(err)
	}
	wl.Arrivals = &workload.Arrivals{RatePerSec: 300}
	base := sc.Spec(core.Buddy(), wl, core.Application)
	base.MaxSimMS = 10_000
	base.Cluster = cluster.Config{Instances: 4, Routing: cluster.RouteLeastLoaded, SnapshotMS: 250}

	par := base
	par.Cluster.Parallelism = 4
	if par.Key() != base.Key() {
		t.Fatalf("Parallelism changed the Spec key:\n%s\n%s", par.Key(), base.Key())
	}

	// Fresh pools per run: equal keys would otherwise serve the second
	// run from the first run's cache and prove nothing.
	serial, err := runner.New(1).Run(context.Background(), []runner.Spec{base})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runner.New(8).Run(context.Background(), []runner.Spec{par})
	if err != nil {
		t.Fatal(err)
	}
	// JSON rather than %#v: the fleet outcome carries a *ClusterReport,
	// which a verb dump renders as a pointer address.
	s, err := json.Marshal(struct {
		Perf  core.PerfResult
		Stats core.RunStats
	}{serial[0].Outcome.Perf, serial[0].Outcome.Stats})
	if err != nil {
		t.Fatal(err)
	}
	p, err := json.Marshal(struct {
		Perf  core.PerfResult
		Stats core.RunStats
	}{parallel[0].Outcome.Perf, parallel[0].Outcome.Stats})
	if err != nil {
		t.Fatal(err)
	}
	if string(s) != string(p) {
		t.Errorf("jobs=8 + par=4 fleet outcome diverged from jobs=1 serial:\nserial:   %s\nparallel: %s", s, p)
	}
}
