package runner

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"rofs/internal/metrics"
)

// TestPoolSingleFlightAcrossRuns proves the cache is single-flight under
// concurrency: two identical Specs submitted through two concurrent Run
// calls simulate once, and the loser is served the winner's result as
// Cached. This is the property the service layer leans on when duplicate
// HTTP submissions coalesce.
func TestPoolSingleFlightAcrossRuns(t *testing.T) {
	p := New(2)
	sp := testSpec(t, 11)

	var wg sync.WaitGroup
	start := make(chan struct{})
	results := make([]Result, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			res, err := p.Run(context.Background(), []Spec{sp})
			results[i], errs[i] = res[0], err
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("Run %d: %v", i, errs[i])
		}
		if results[i].Err != nil {
			t.Fatalf("result %d: %v", i, results[i].Err)
		}
	}
	st := p.Stats()
	if st.Submitted != 2 || st.Simulated != 1 || st.Cached != 1 {
		t.Errorf("stats = %+v; want 2 submitted, 1 simulated, 1 cached", st)
	}
	if results[0].Cached == results[1].Cached {
		t.Errorf("exactly one of the two runs must be cached; got %t and %t",
			results[0].Cached, results[1].Cached)
	}
	if a, b := fmt.Sprintf("%#v", results[0].Outcome), fmt.Sprintf("%#v", results[1].Outcome); a != b {
		t.Error("coalesced runs returned different outcomes")
	}
}

// TestPoolStatsAndInstrument checks the saturation accounting: gauges
// return to zero once a batch drains, peaks record the high-water marks,
// and Instrument mirrors the counters onto a metrics registry.
func TestPoolStatsAndInstrument(t *testing.T) {
	p := New(2)
	reg := metrics.New(metrics.DefaultIntervalMS)
	p.Instrument(reg)

	specs := []Spec{testSpec(t, 1), testSpec(t, 1), testSpec(t, 2)}
	if _, err := p.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}

	st := p.Stats()
	if st.QueueDepth != 0 || st.InFlight != 0 {
		t.Errorf("gauges did not drain: queue=%d in-flight=%d", st.QueueDepth, st.InFlight)
	}
	if st.Submitted != 3 || st.Simulated != 2 || st.Cached != 1 || st.Failed != 0 {
		t.Errorf("stats = %+v; want 3 submitted, 2 simulated, 1 cached, 0 failed", st)
	}
	if st.PeakQueueDepth < 1 || st.PeakInFlight < 1 {
		t.Errorf("peaks not recorded: %+v", st)
	}

	// Registry handles are interned by name, so fetching them again reads
	// the same counters Instrument installed.
	if got := reg.Counter("pool.runs_submitted").Value(); got != 3 {
		t.Errorf("pool.runs_submitted = %d; want 3", got)
	}
	if got := reg.Counter("pool.runs_cached").Value(); got != 1 {
		t.Errorf("pool.runs_cached = %d; want 1", got)
	}
	if got := reg.Gauge("pool.in_flight").Value(); got != 0 {
		t.Errorf("pool.in_flight gauge = %g; want 0 after drain", got)
	}
}

// TestPoolNilMetricsHandles proves the zero-valued Metrics field is safe:
// an uninstrumented pool must not panic while updating its handles.
func TestPoolNilMetricsHandles(t *testing.T) {
	p := New(1)
	if _, err := p.Run(context.Background(), []Spec{testSpec(t, 1)}); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Submitted != 1 {
		t.Errorf("stats = %+v; want 1 submitted", st)
	}
}
