package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Compaction policy, after the merge-compaction framing of Mathieu et
// al.: the log is a sequence of sorted-by-time segments; periodically a
// set of victims is merged into the head of the log, paying write work
// now to reclaim dead space. We use the simplest profitable policy —
// trigger when at least half the store's footprint is dead (and above a
// small floor, so tiny stores never churn), pick every sealed segment
// whose own dead ratio clears a quarter, copy its live records verbatim
// to the active segment, and delete it. Record bytes never change, so
// checksums survive the copy and a crash mid-compaction at worst leaves
// both copies (the scan's supersede rule keeps the newer one).

// compactMinDeadBytes is the floor below which compaction never runs.
const compactMinDeadBytes = 64 << 10

// kickCompactLocked nudges the compaction goroutine when the dead ratio
// warrants a pass. Caller holds s.mu.
func (s *Store) kickCompactLocked() {
	if s.opts.NoCompact || s.closed {
		return
	}
	if s.deadBytes < compactMinDeadBytes || s.deadBytes < s.liveBytes {
		return
	}
	select {
	case s.compactCh <- struct{}{}:
	default:
	}
}

// compactLoop is the background goroutine: wait for a kick, run one
// compaction pass, repeat until Close.
func (s *Store) compactLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.compactCh:
			s.Compact()
		}
	}
}

// Compact runs one merge-compaction pass synchronously (the background
// goroutine calls it on demand; tests call it directly). It returns the
// number of segments reclaimed.
func (s *Store) Compact() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	victims := s.pickVictimsLocked()
	if len(victims) == 0 {
		return 0
	}
	reclaimed := 0
	for _, seg := range victims {
		if err := s.mergeSegmentLocked(seg); err != nil {
			// A failed merge leaves the victim intact and indexed; stop the
			// pass and let a later kick retry.
			s.stats.PutErrors++
			break
		}
		reclaimed++
	}
	if reclaimed > 0 {
		s.stats.Compactions++
		if !s.opts.NoSync {
			if s.active != nil && s.active.f != nil {
				s.active.f.Sync()
			}
			syncDir(s.dir)
		}
	}
	return reclaimed
}

// pickVictimsLocked selects the sealed segments worth merging: fully
// dead ones always, partially dead ones once a quarter of their bytes
// are dead. Ordered by id so merged records keep their relative age.
func (s *Store) pickVictimsLocked() []*segment {
	var victims []*segment
	for id, seg := range s.segs {
		if seg == s.active || seg.f == nil {
			continue
		}
		dead := seg.size - seg.live
		if seg.size > 0 && (seg.live == 0 || dead*4 >= seg.size) {
			victims = append(victims, s.segs[id])
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	return victims
}

// mergeSegmentLocked copies seg's live records to the active segment,
// repoints their index entries, and deletes seg.
func (s *Store) mergeSegmentLocked(seg *segment) error {
	// Collect seg's live entries in file order so the copy preserves
	// their relative ages.
	var live []*entry
	for _, e := range s.index {
		if e.seg == seg.id {
			live = append(live, e)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].off < live[j].off })
	dead := seg.size - seg.live // the store-level dead bytes this merge reclaims
	for _, e := range live {
		rec := make([]byte, e.size)
		if _, err := seg.f.ReadAt(rec, e.off); err != nil {
			return fmt.Errorf("store: compact read %s@%d: %w", segName(seg.id), e.off, err)
		}
		dst, off, err := s.copyRecordLocked(seg, rec)
		if err != nil {
			return err
		}
		seg.live -= e.size
		e.seg, e.off = dst.id, off
		dst.live += e.size
		dst.size += e.size
	}
	// The file now holds only dead bytes (the originals of the moved
	// records plus the previously dead ones); only the latter were in the
	// store-level dead count, so that is what removal reclaims.
	s.deadBytes -= dead
	seg.f.Close()
	seg.f = nil
	delete(s.segs, seg.id)
	if err := os.Remove(filepath.Join(s.dir, segName(seg.id))); err != nil {
		return fmt.Errorf("store: compact remove: %w", err)
	}
	return nil
}

// copyRecordLocked appends one verbatim record to the active segment
// (rotating when full, and never into the segment being merged) and
// returns its new location.
func (s *Store) copyRecordLocked(merging *segment, rec []byte) (*segment, int64, error) {
	if s.active == nil || s.active == merging ||
		(s.active.size > 0 && s.active.size+int64(len(rec)) > s.opts.SegmentBytes) {
		if err := s.rotateLocked(); err != nil {
			return nil, 0, err
		}
	}
	dst := s.active
	off := dst.size
	if _, err := dst.f.WriteAt(rec, off); err != nil {
		return nil, 0, fmt.Errorf("store: compact write: %w", err)
	}
	return dst, off, nil
}
