package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// seedStore writes n records into dir and closes the store, returning
// the payloads so the caller can verify recovery.
func seedStore(t *testing.T, dir string, n int) map[string][]byte {
	t.Helper()
	s := open(t, dir, Options{})
	payloads := map[string][]byte{}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("crash-%02d", i)
		val := noise(int64(100+i), 300)
		payloads[key] = val
		if err := s.Put(key, val); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return payloads
}

func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", segs, err)
	}
	return segs[0]
}

// TestTruncatedTailQuarantined simulates a kill mid-write: the last
// record is half-written. Open must detect the torn tail via the
// checksum, quarantine it, and serve everything before the tear.
func TestTruncatedTailQuarantined(t *testing.T) {
	dir := t.TempDir()
	payloads := seedStore(t, dir, 5)
	seg := onlySegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-way through the final record.
	if err := os.WriteFile(seg, data[:len(data)-40], 0o644); err != nil {
		t.Fatal(err)
	}

	s := open(t, dir, Options{})
	defer s.Close()
	st := s.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1 (%+v)", st.Quarantined, st)
	}
	if st.Records != 4 {
		t.Fatalf("records = %d, want 4 (lost only the torn tail)", st.Records)
	}
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("crash-%02d", i)
		got, ok := s.Get(key)
		if !ok || !bytes.Equal(got, payloads[key]) {
			t.Fatalf("Get(%s) after recovery = %v", key, ok)
		}
	}
	if _, ok := s.Get("crash-04"); ok {
		t.Fatalf("torn record served")
	}
	// The damaged bytes land in a sidecar and the segment shrinks back to
	// its last good record.
	side := seg + ".quarantined"
	if fi, err := os.Stat(side); err != nil || fi.Size() == 0 {
		t.Fatalf("quarantine sidecar missing or empty: %v", err)
	}
	// The store must stay writable past the tear.
	if err := s.Put("after-crash", []byte("ok")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	if got, ok := s.Get("after-crash"); !ok || string(got) != "ok" {
		t.Fatalf("Get after recovery put: %v", ok)
	}
}

// TestCorruptRecordQuarantined flips payload bytes inside a middle
// record: the checksum catches it, and the scan quarantines from the
// damage onward (records before it survive).
func TestCorruptRecordQuarantined(t *testing.T) {
	dir := t.TempDir()
	payloads := seedStore(t, dir, 5)
	seg := onlySegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Find the third record's offset by walking headers, then corrupt its
	// payload region without touching its header lengths.
	off := 0
	for i := 0; i < 2; i++ {
		keyLen, payloadLen, err := parseHeader(data[off:])
		if err != nil {
			t.Fatalf("parseHeader: %v", err)
		}
		off += recordHeaderSize + keyLen + payloadLen
	}
	for i := 0; i < 8; i++ {
		data[off+recordHeaderSize+10+i] ^= 0xff
	}
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s := open(t, dir, Options{})
	defer s.Close()
	st := s.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Quarantined)
	}
	if st.Records != 2 {
		t.Fatalf("records = %d, want the 2 before the corruption", st.Records)
	}
	for i := 0; i < 2; i++ {
		key := fmt.Sprintf("crash-%02d", i)
		got, ok := s.Get(key)
		if !ok || !bytes.Equal(got, payloads[key]) {
			t.Fatalf("Get(%s) = %v", key, ok)
		}
	}
	if err := s.Put("recovered", []byte("v")); err != nil {
		t.Fatalf("Put after quarantine: %v", err)
	}
}

// TestGarbageSegment feeds a segment of pure garbage: everything is
// quarantined and the store opens empty but writable.
func TestGarbageSegment(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(0)), noise(7, 2048), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, Options{})
	defer s.Close()
	if st := s.Stats(); st.Records != 0 || st.Quarantined != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
}

// TestBadCRCOnRead covers corruption that appears after open (bit rot):
// Get verifies the checksum on every read and degrades to a miss.
func TestBadCRCOnRead(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	defer s.Close()
	if err := s.Put("k", noise(9, 200)); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte behind the store's back.
	seg := onlySegment(t, dir)
	f, err := os.OpenFile(seg, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xAA}, recordHeaderSize+5); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, ok := s.Get("k"); ok {
		t.Fatalf("Get served a record with a bad checksum")
	}
	st := s.Stats()
	if st.GetErrors != 1 || st.Records != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// FuzzScanSegment throws arbitrary bytes at the open-time segment scan:
// it must never panic, and whatever it indexes must read back.
func FuzzScanSegment(f *testing.F) {
	// Valid single record.
	rec, err := encodeRecord("fuzz-key", []byte("fuzz-payload"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rec)
	// Valid record followed by a torn tail.
	torn := append(append([]byte(nil), rec...), rec[:len(rec)/2]...)
	f.Add(torn)
	// Record with a corrupted checksum.
	bad := append([]byte(nil), rec...)
	bad[6] ^= 0xff
	f.Add(bad)
	// Header claiming a huge payload.
	huge := append([]byte(nil), rec[:recordHeaderSize]...)
	binary.LittleEndian.PutUint32(huge[16:20], maxPayloadLen)
	f.Add(huge)
	f.Add([]byte{})
	f.Add([]byte(recordMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), data, 0o644); err != nil {
			t.Skip()
		}
		s, err := Open(dir, Options{NoSync: true, NoCompact: true})
		if err != nil {
			return // IO-level failure is acceptable; panics are not
		}
		defer s.Close()
		// Every indexed record must decode cleanly.
		s.mu.Lock()
		keys := make([]string, 0, len(s.index))
		for k := range s.index {
			keys = append(keys, k)
		}
		s.mu.Unlock()
		for _, k := range keys {
			if _, ok := s.Get(k); !ok {
				t.Fatalf("indexed key %q did not read back", k)
			}
		}
	})
}
