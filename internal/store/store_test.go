package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// noise returns n bytes of incompressible data (gzip would otherwise
// collapse repetitive test payloads to a few dozen bytes, defeating the
// size-pressure tests). Deterministic per seed.
func noise(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	opts.NoSync = true // tests hammer tiny records; durability is covered separately
	opts.NoCompact = true
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	if err := s.Put("alpha", []byte("payload-a")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get("alpha")
	if !ok || string(got) != "payload-a" {
		t.Fatalf("Get = %q, %v; want payload-a, true", got, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatalf("Get(missing) hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Records != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReopenServesIdenticalBytes(t *testing.T) {
	dir := t.TempDir()
	payloads := map[string][]byte{}
	s := open(t, dir, Options{})
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("key-%02d", i)
		val := bytes.Repeat([]byte{byte(i)}, 100+i*37)
		payloads[key] = val
		if err := s.Put(key, val); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s = open(t, dir, Options{})
	defer s.Close()
	for key, want := range payloads {
		got, ok := s.Get(key)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("after reopen, Get(%s) = %d bytes, %v; want %d bytes", key, len(got), ok, len(want))
		}
	}
}

func TestSupersede(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := s.Put("k", []byte(fmt.Sprintf("version-%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if got, _ := s.Get("k"); string(got) != "version-2" {
		t.Fatalf("Get = %q, want version-2", got)
	}
	if st := s.Stats(); st.Records != 1 || st.DeadBytes == 0 {
		t.Fatalf("stats after supersede = %+v", st)
	}
	s.Close()
	// The scan must also keep only the newest version.
	s = open(t, dir, Options{})
	defer s.Close()
	if got, _ := s.Get("k"); string(got) != "version-2" {
		t.Fatalf("after reopen, Get = %q, want version-2", got)
	}
}

func TestLRUEvictionByBudget(t *testing.T) {
	// Each record is ~header+key+gzip(1KiB) ≈ 1.1 KiB; a 4 KiB budget
	// holds about three.
	s := open(t, t.TempDir(), Options{MaxBytes: 4 << 10})
	defer s.Close()
	val := noise(1, 1<<10)
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), val); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under budget pressure: %+v", st)
	}
	if st.LiveBytes > 4<<10 {
		t.Fatalf("live bytes %d over budget", st.LiveBytes)
	}
	if _, ok := s.Get("k0"); ok {
		t.Fatalf("oldest key survived eviction")
	}
	if _, ok := s.Get("k7"); !ok {
		t.Fatalf("newest key evicted")
	}
}

func TestGetRefreshesLRU(t *testing.T) {
	s := open(t, t.TempDir(), Options{MaxBytes: 4 << 10})
	defer s.Close()
	val := noise(2, 1<<10)
	for i := 0; i < 3; i++ {
		s.Put(fmt.Sprintf("k%d", i), val)
	}
	s.Get("k0") // touch the oldest
	for i := 3; i < 5; i++ {
		s.Put(fmt.Sprintf("k%d", i), val)
	}
	if _, ok := s.Get("k0"); !ok {
		t.Fatalf("recently used key evicted before stale ones")
	}
	if _, ok := s.Get("k1"); ok {
		t.Fatalf("stale key survived")
	}
}

func TestBudgetEnforcedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	val := noise(3, 1<<10)
	for i := 0; i < 8; i++ {
		s.Put(fmt.Sprintf("k%d", i), val)
	}
	s.Close()
	s = open(t, dir, Options{MaxBytes: 4 << 10})
	defer s.Close()
	st := s.Stats()
	if st.LiveBytes > 4<<10 {
		t.Fatalf("open did not trim to budget: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("open trimmed without counting evictions: %+v", st)
	}
	if _, ok := s.Get("k7"); !ok {
		t.Fatalf("newest record trimmed at open")
	}
}

func TestCompactionReclaimsDeadSegments(t *testing.T) {
	dir := t.TempDir()
	// Small segments so supersedes spread across many files.
	s := open(t, dir, Options{SegmentBytes: 2 << 10})
	val := noise(4, 512)
	for round := 0; round < 6; round++ {
		for i := 0; i < 4; i++ {
			if err := s.Put(fmt.Sprintf("k%d", i), val); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
	}
	before := s.Stats()
	if before.DeadBytes == 0 {
		t.Fatalf("expected dead bytes before compaction: %+v", before)
	}
	if n := s.Compact(); n == 0 {
		t.Fatalf("Compact reclaimed nothing: %+v", before)
	}
	after := s.Stats()
	if after.DeadBytes >= before.DeadBytes {
		t.Fatalf("dead bytes did not shrink: %d -> %d", before.DeadBytes, after.DeadBytes)
	}
	if after.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", after.Compactions)
	}
	// Every key must still read back, and survive a reopen of the
	// compacted layout.
	for i := 0; i < 4; i++ {
		if got, ok := s.Get(fmt.Sprintf("k%d", i)); !ok || !bytes.Equal(got, val) {
			t.Fatalf("post-compaction Get(k%d) = %d bytes, %v", i, len(got), ok)
		}
	}
	s.Close()
	s = open(t, dir, Options{})
	defer s.Close()
	for i := 0; i < 4; i++ {
		if got, ok := s.Get(fmt.Sprintf("k%d", i)); !ok || !bytes.Equal(got, val) {
			t.Fatalf("post-reopen Get(k%d) = %d bytes, %v", i, len(got), ok)
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 1 << 10})
	val := noise(5, 400)
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i), val)
	}
	if st := s.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", st.Segments)
	}
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) < 2 {
		t.Fatalf("expected multiple segment files, got %v", segs)
	}
}

func TestKeyLimits(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	if err := s.Put("", []byte("v")); err == nil {
		t.Fatalf("empty key accepted")
	}
	long := string(bytes.Repeat([]byte("k"), maxKeyLen+1))
	if err := s.Put(long, []byte("v")); err == nil {
		t.Fatalf("oversized key accepted")
	}
	if st := s.Stats(); st.PutErrors != 2 {
		t.Fatalf("put errors = %d, want 2", st.PutErrors)
	}
}

func TestClosedStore(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	s.Put("k", []byte("v"))
	s.Close()
	if _, ok := s.Get("k"); ok {
		t.Fatalf("Get succeeded on closed store")
	}
	if err := s.Put("k2", []byte("v")); err == nil {
		t.Fatalf("Put succeeded on closed store")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestEmptyDirAndRecordEncoding(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	if st := s.Stats(); st.Records != 0 || st.LiveBytes != 0 {
		t.Fatalf("fresh store not empty: %+v", st)
	}
	rec, err := encodeRecord("k", []byte("hello"))
	if err != nil {
		t.Fatalf("encodeRecord: %v", err)
	}
	key, payload, err := decodeRecord(rec)
	if err != nil || key != "k" || string(payload) != "hello" {
		t.Fatalf("decodeRecord = %q, %q, %v", key, payload, err)
	}
}

func TestOpenCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "store")
	s, err := Open(dir, Options{NoSync: true, NoCompact: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("dir not created: %v", err)
	}
}
