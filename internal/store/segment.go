package store

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Record layout (little-endian), append-only:
//
//	 0.. 4  magic "RFS1"
//	 4.. 8  CRC32-C over bytes [8, end) of the record
//	 8      format version (1)
//	 9      flags (bit 0: payload is gzip-compressed)
//	10..12  reserved (zero)
//	12..16  key length
//	16..20  payload length (stored, i.e. post-compression)
//	20..    key bytes, then payload bytes
//
// The checksum covers the version, flags, lengths, key, and payload, so
// a torn write anywhere in the record — header included — fails
// verification. Compaction copies whole records verbatim; the checksum
// stays valid because the covered bytes never change.
const (
	recordMagic      = "RFS1"
	recordVersion    = 1
	recordHeaderSize = 20

	flagGzip = 1 << 0

	maxKeyLen     = 1 << 16
	maxPayloadLen = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errCorrupt wraps every record-level integrity failure so scan and read
// paths can classify damage uniformly.
var errCorrupt = errors.New("store: corrupt record")

// encodeRecord renders one key/payload pair as a checksummed record,
// compressing the payload.
func encodeRecord(key string, payload []byte) ([]byte, error) {
	if len(key) == 0 || len(key) > maxKeyLen {
		return nil, fmt.Errorf("store: key length %d out of range (1..%d)", len(key), maxKeyLen)
	}
	var comp bytes.Buffer
	zw := gzip.NewWriter(&comp)
	if _, err := zw.Write(payload); err != nil {
		return nil, fmt.Errorf("store: compress: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("store: compress: %w", err)
	}
	if comp.Len() > maxPayloadLen {
		return nil, fmt.Errorf("store: payload %d bytes exceeds the %d-byte record limit", comp.Len(), maxPayloadLen)
	}
	rec := make([]byte, recordHeaderSize+len(key)+comp.Len())
	copy(rec[0:4], recordMagic)
	rec[8] = recordVersion
	rec[9] = flagGzip
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[16:20], uint32(comp.Len()))
	copy(rec[recordHeaderSize:], key)
	copy(rec[recordHeaderSize+len(key):], comp.Bytes())
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(rec[8:], castagnoli))
	return rec, nil
}

// parseHeader validates a record header in buf and returns the key and
// stored-payload lengths. buf must hold at least recordHeaderSize bytes.
func parseHeader(buf []byte) (keyLen, payloadLen int, err error) {
	if string(buf[0:4]) != recordMagic {
		return 0, 0, fmt.Errorf("%w: bad magic", errCorrupt)
	}
	if buf[8] != recordVersion {
		return 0, 0, fmt.Errorf("%w: unknown version %d", errCorrupt, buf[8])
	}
	keyLen = int(binary.LittleEndian.Uint32(buf[12:16]))
	payloadLen = int(binary.LittleEndian.Uint32(buf[16:20]))
	if keyLen == 0 || keyLen > maxKeyLen || payloadLen < 0 || payloadLen > maxPayloadLen {
		return 0, 0, fmt.Errorf("%w: implausible lengths key=%d payload=%d", errCorrupt, keyLen, payloadLen)
	}
	return keyLen, payloadLen, nil
}

// decodeRecord verifies the checksum of one complete record and returns
// its key and decompressed payload.
func decodeRecord(rec []byte) (key string, payload []byte, err error) {
	keyLen, payloadLen, err := parseHeader(rec)
	if err != nil {
		return "", nil, err
	}
	if len(rec) != recordHeaderSize+keyLen+payloadLen {
		return "", nil, fmt.Errorf("%w: record size mismatch", errCorrupt)
	}
	if got := crc32.Checksum(rec[8:], castagnoli); got != binary.LittleEndian.Uint32(rec[4:8]) {
		return "", nil, fmt.Errorf("%w: checksum mismatch", errCorrupt)
	}
	key = string(rec[recordHeaderSize : recordHeaderSize+keyLen])
	stored := rec[recordHeaderSize+keyLen:]
	if rec[9]&flagGzip == 0 {
		return key, append([]byte(nil), stored...), nil
	}
	zr, err := gzip.NewReader(bytes.NewReader(stored))
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	payload, err = io.ReadAll(io.LimitReader(zr, maxPayloadLen+1))
	if cerr := zr.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	return key, payload, nil
}

// readRecord reads and decodes e's record from its segment, verifying
// the checksum end to end. Caller holds s.mu.
func (s *Store) readRecord(e *entry) ([]byte, error) {
	seg, ok := s.segs[e.seg]
	if !ok || seg.f == nil {
		return nil, fmt.Errorf("store: segment %d gone", e.seg)
	}
	rec := make([]byte, e.size)
	if _, err := seg.f.ReadAt(rec, e.off); err != nil {
		return nil, fmt.Errorf("store: read %s@%d: %w", segName(e.seg), e.off, err)
	}
	key, payload, err := decodeRecord(rec)
	if err != nil {
		return nil, err
	}
	if key != e.key {
		return nil, fmt.Errorf("%w: key mismatch at %s@%d", errCorrupt, segName(e.seg), e.off)
	}
	return payload, nil
}

// scanSegment replays one segment into the index. The first integrity
// failure — bad magic, implausible lengths, checksum mismatch, or a
// record extending past the end of the file — quarantines the rest of
// the segment: the damaged bytes are copied to a .quarantined sidecar,
// the segment is truncated back to its last good record, and the scan
// moves on. A kill mid-write therefore costs at most the torn tail.
func (s *Store) scanSegment(id int) error {
	path := filepath.Join(s.dir, segName(id))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: scan %s: %w", segName(id), err)
	}
	seg := &segment{id: id, f: f}
	s.segs[id] = seg

	off := 0
	for off < len(data) {
		rest := data[off:]
		var keyLen, payloadLen int
		var herr error
		if len(rest) < recordHeaderSize {
			herr = fmt.Errorf("%w: truncated header", errCorrupt)
		} else {
			keyLen, payloadLen, herr = parseHeader(rest)
		}
		recLen := recordHeaderSize + keyLen + payloadLen
		if herr == nil && recLen > len(rest) {
			herr = fmt.Errorf("%w: truncated record", errCorrupt)
		}
		var key string
		if herr == nil {
			key, _, herr = decodeRecord(rest[:recLen])
		}
		if herr != nil {
			if qerr := s.quarantineTail(seg, data, off); qerr != nil {
				return qerr
			}
			break
		}
		if old, ok := s.index[key]; ok {
			s.dropLocked(old)
		}
		e := &entry{key: key, seg: id, off: int64(off), size: int64(recLen)}
		e.elem = s.lru.PushFront(e)
		s.index[key] = e
		seg.live += int64(recLen)
		s.liveBytes += int64(recLen)
		off += recLen
	}
	// Dead bytes (superseded records) were counted by dropLocked as the
	// scan discovered newer versions; only the segment size remains.
	seg.size = int64(off)
	return nil
}

// quarantineTail copies data[off:] to the segment's .quarantined sidecar
// and truncates the segment file back to off.
func (s *Store) quarantineTail(seg *segment, data []byte, off int) error {
	side := filepath.Join(s.dir, segName(seg.id)+".quarantined")
	if err := os.WriteFile(side, data[off:], 0o644); err != nil {
		return fmt.Errorf("store: quarantine %s: %w", segName(seg.id), err)
	}
	if err := seg.f.Truncate(int64(off)); err != nil {
		return fmt.Errorf("store: truncate %s: %w", segName(seg.id), err)
	}
	if !s.opts.NoSync {
		seg.f.Sync()
		syncDir(s.dir)
	}
	s.stats.Quarantined++
	return nil
}
