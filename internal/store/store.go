// Package store is a crash-safe, disk-backed result store: an append-only
// sequence of log segments holding gzipped payloads keyed by arbitrary
// strings (the runner uses Spec cache keys), with per-record CRC32-C
// checksums, an in-memory index rebuilt by scanning the segments on open,
// LRU eviction against a byte budget, and background merge compaction
// that rewrites live records and drops evicted or superseded ones
// (a simplified form of the merge policies in Mathieu et al., "Bigtable
// Merge Compaction").
//
// Crash safety is structural: records are appended and fsynced, never
// updated in place, so the only damage a crash can leave is a truncated
// or torn tail. Open detects it by checksum, copies the damaged bytes to
// a .quarantined sidecar, truncates the segment back to its last good
// record, and keeps serving everything before the tear.
package store

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Options tunes a Store. The zero value is usable: unbounded budget,
// 4 MiB segments, fsync on every put, compaction enabled.
type Options struct {
	// MaxBytes is the live-record byte budget; once exceeded the least
	// recently used entries are evicted until the store fits. Zero or
	// negative means unbounded.
	MaxBytes int64
	// SegmentBytes is the rotation threshold for the active segment
	// (default 4 MiB). Smaller segments compact at finer grain.
	SegmentBytes int64
	// NoSync skips the per-put fsync. Tests and throwaway caches only:
	// a crash may then lose acknowledged puts (never corrupt the store).
	NoSync bool
	// NoCompact disables the background compaction goroutine, leaving
	// dead bytes in place until the next Open (tests use this to inspect
	// segment layouts deterministically).
	NoCompact bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SegmentBytes < recordHeaderSize+1 {
		o.SegmentBytes = recordHeaderSize + 1
	}
	return o
}

// Stats is a point-in-time snapshot of the store's state and lifetime
// activity.
type Stats struct {
	// Records and Segments describe the live index; LiveBytes counts the
	// on-disk footprint of indexed records, DeadBytes the footprint of
	// superseded and evicted ones awaiting compaction.
	Records, Segments    int64
	LiveBytes, DeadBytes int64
	// Lifetime counters.
	Hits, Misses, Puts   int64
	Evictions            int64
	Compactions          int64
	Quarantined          int64 // damaged tails quarantined by Open
	GetErrors, PutErrors int64
}

// entry locates one live record.
type entry struct {
	key  string
	seg  int
	off  int64
	size int64 // full record footprint on disk
	elem *list.Element
}

// segment is one log file's bookkeeping.
type segment struct {
	id   int
	f    *os.File
	size int64
	live int64 // bytes of records still in the index
}

// Store is the disk-backed key→payload store. All methods are safe for
// concurrent use; one mutex serializes index and file access (the store
// sits behind a result cache, so its operation rate is low and bounded
// by simulation cost, not request rate).
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	index     map[string]*entry
	lru       *list.List // front = most recently used
	segs      map[int]*segment
	active    *segment
	nextSeg   int
	liveBytes int64
	deadBytes int64
	stats     Stats

	compactCh chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
	closed    bool
}

// Open scans dir's segments, rebuilds the index (later records supersede
// earlier ones), quarantines damaged tails, enforces the byte budget,
// and starts the compaction goroutine. The directory is created if
// missing.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		index:     make(map[string]*entry),
		lru:       list.New(),
		segs:      make(map[int]*segment),
		compactCh: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	if err := s.scanDir(); err != nil {
		s.closeFiles()
		return nil, err
	}
	// Enforce the budget against whatever the scan found: a shrunken
	// -store-max-bytes (or a store grown by a crash-interrupted
	// compaction) trims here, oldest-scanned first.
	s.evictOverBudgetLocked()
	if !opts.NoCompact {
		s.wg.Add(1)
		go s.compactLoop()
		s.kickCompactLocked()
	}
	return s, nil
}

// Get returns the payload stored under key. IO or integrity errors on a
// hit degrade to a miss (the caller recomputes) after dropping the bad
// entry and counting a GetError.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	e, ok := s.index[key]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	payload, err := s.readRecord(e)
	if err != nil {
		s.stats.GetErrors++
		s.stats.Misses++
		s.dropLocked(e)
		s.kickCompactLocked()
		return nil, false
	}
	s.stats.Hits++
	s.lru.MoveToFront(e.elem)
	return payload, true
}

// Put stores payload under key, superseding any previous record. The
// record is fsynced before Put returns (unless Options.NoSync).
func (s *Store) Put(key string, payload []byte) error {
	rec, err := encodeRecord(key, payload)
	if err != nil {
		s.mu.Lock()
		s.stats.PutErrors++
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if err := s.appendLocked(key, rec); err != nil {
		s.stats.PutErrors++
		return err
	}
	s.stats.Puts++
	s.evictOverBudgetLocked()
	s.kickCompactLocked()
	return nil
}

// appendLocked writes one encoded record to the active segment (rotating
// first if it would overflow) and indexes it.
func (s *Store) appendLocked(key string, rec []byte) error {
	if s.active == nil || s.active.size+int64(len(rec)) > s.opts.SegmentBytes && s.active.size > 0 {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	seg := s.active
	if _, err := seg.f.WriteAt(rec, seg.size); err != nil {
		return fmt.Errorf("store: append %s: %w", seg.f.Name(), err)
	}
	if !s.opts.NoSync {
		if err := seg.f.Sync(); err != nil {
			return fmt.Errorf("store: sync %s: %w", seg.f.Name(), err)
		}
	}
	if old, ok := s.index[key]; ok {
		s.dropLocked(old)
	}
	e := &entry{key: key, seg: seg.id, off: seg.size, size: int64(len(rec))}
	e.elem = s.lru.PushFront(e)
	s.index[key] = e
	seg.size += int64(len(rec))
	seg.live += int64(len(rec))
	s.liveBytes += int64(len(rec))
	return nil
}

// rotateLocked seals the active segment and opens a fresh one.
func (s *Store) rotateLocked() error {
	id := s.nextSeg
	s.nextSeg++
	path := filepath.Join(s.dir, segName(id))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.segs[id] = &segment{id: id, f: f}
	s.active = s.segs[id]
	if !s.opts.NoSync {
		syncDir(s.dir)
	}
	return nil
}

// dropLocked removes e from the index, moving its bytes to the dead set.
func (s *Store) dropLocked(e *entry) {
	delete(s.index, e.key)
	s.lru.Remove(e.elem)
	s.liveBytes -= e.size
	s.deadBytes += e.size
	if seg, ok := s.segs[e.seg]; ok {
		seg.live -= e.size
	}
}

// evictOverBudgetLocked trims least-recently-used entries until the live
// footprint fits MaxBytes. The most recent entry always survives, so a
// single oversized record does not evict itself on arrival.
func (s *Store) evictOverBudgetLocked() {
	if s.opts.MaxBytes <= 0 {
		return
	}
	for s.liveBytes > s.opts.MaxBytes && s.lru.Len() > 1 {
		e := s.lru.Back().Value.(*entry)
		s.dropLocked(e)
		s.stats.Evictions++
	}
}

// Stats returns a snapshot of the store's counters and sizes.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Records = int64(len(s.index))
	st.Segments = int64(len(s.segs))
	st.LiveBytes = s.liveBytes
	st.DeadBytes = s.deadBytes
	return st
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close stops compaction, syncs, and closes every segment. The store is
// unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeFiles()
}

func (s *Store) closeFiles() error {
	var first error
	for _, seg := range s.segs {
		if seg.f == nil {
			continue
		}
		if !s.opts.NoSync {
			if err := seg.f.Sync(); err != nil && first == nil {
				first = err
			}
		}
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
		seg.f = nil
	}
	return first
}

// segName renders segment id's file name; the zero-padded id keeps
// lexical and numeric order identical.
func segName(id int) string { return fmt.Sprintf("seg-%08d.log", id) }

// syncDir fsyncs a directory so renames and creates within it are
// durable. Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// scanDir rebuilds the index from the segments on disk, in segment order
// so later records supersede earlier ones, then reopens the highest
// segment for appending (or creates the first one).
func (s *Store) scanDir() error {
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*.log"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var ids []int
	for _, name := range names {
		var id int
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%d.log", &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := s.scanSegment(id); err != nil {
			return err
		}
		s.nextSeg = id + 1
	}
	// Append into the last segment if it has room, else start fresh.
	if n := len(ids); n > 0 {
		last := s.segs[ids[n-1]]
		if last.size < s.opts.SegmentBytes {
			s.active = last
		}
	}
	if s.active == nil {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}
