package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"rofs/internal/ckpt"
	"rofs/internal/core"
	"rofs/internal/metrics"
	"rofs/internal/obs"
	"rofs/internal/runner"
	"rofs/internal/store"
)

// Options configures a Server. The zero value serves with sensible
// defaults (GOMAXPROCS workers, a 16-deep admission queue, per-run
// metrics at the default sampling interval).
type Options struct {
	// Jobs is the maximum number of simulations running at once (the
	// worker-slot count). Zero means runtime.GOMAXPROCS(0).
	Jobs int
	// QueueDepth is the maximum number of admitted runs waiting for a
	// worker slot. A submission arriving with the queue full is rejected
	// with 503 + Retry-After rather than queued unboundedly. Zero means
	// 16; negative means no waiting room (reject unless a slot is free).
	QueueDepth int
	// RunTimeout bounds each run's wall time unless the request carries
	// its own timeout_ms. Zero means no default deadline.
	RunTimeout time.Duration
	// MetricsIntervalMS is the per-run registry sampling interval handed
	// to the pool: zero means metrics.DefaultIntervalMS, negative
	// disables per-run metrics (runs return no bundle).
	MetricsIntervalMS float64
	// Heartbeat is the SSE status-event cadence while a run is queued or
	// running. Zero means one second.
	Heartbeat time.Duration
	// RetryAfter is the hint returned with 503 responses. Zero means one
	// second.
	RetryAfter time.Duration
	// AccessLog receives one structured JSON record per finished HTTP
	// request (see obs.AccessRecord). Nil disables access logging; trace
	// IDs are still minted and echoed either way.
	AccessLog io.Writer
	// Store is the disk result tier handed to the pool: previously
	// computed Specs are served from it across server restarts (the
	// warm-restart byte-identity contract). Nil disables the tier. The
	// server does not close the store; the owner that opened it does.
	Store *store.Store
	// CacheEntries bounds the pool's in-memory result cache (see
	// runner.Pool.CacheEntries). Zero means unbounded.
	CacheEntries int
	// Ckpt persists checkpoint states for runs that arm
	// checkpoint_every_ms, and resumes them on resubmission after a drain
	// or crash. Nil rejects such requests with 400 — a client asking for
	// durability the server cannot provide should hear about it.
	Ckpt *ckpt.Manager
}

func (o Options) withDefaults() Options {
	if o.Jobs <= 0 {
		o.Jobs = runtime.GOMAXPROCS(0)
	}
	switch {
	case o.QueueDepth == 0:
		o.QueueDepth = 16
	case o.QueueDepth < 0:
		o.QueueDepth = 0
	}
	if o.MetricsIntervalMS == 0 {
		o.MetricsIntervalMS = metrics.DefaultIntervalMS
	}
	if o.MetricsIntervalMS < 0 {
		o.MetricsIntervalMS = 0
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// Server owns the admission queue, the run store, and the pool that
// executes simulations. Create with New, mount Handler on an
// http.Server, and Drain on shutdown.
type Server struct {
	opts   Options
	pool   *runner.Pool
	obs    *serverMetrics
	access *obs.AccessLogger

	// slots is the worker-slot semaphore: holding a token is the right
	// to occupy one pool worker.
	slots chan struct{}

	// baseCtx parents every run's context; baseCancel is the drain
	// deadline's hard stop.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	runs     map[string]*run
	order    []string // submission order, for GET /v1/runs
	queued   int      // admitted, waiting for a slot
	seq      int
	draining bool
}

// New returns a ready Server. The pool (and its Spec.Key() result cache)
// lives as long as the Server, so identical Specs submitted over the
// API's lifetime simulate once.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		pool:       runner.New(opts.Jobs),
		obs:        newServerMetrics(),
		access:     obs.NewAccessLogger(opts.AccessLog),
		slots:      make(chan struct{}, opts.Jobs),
		baseCtx:    ctx,
		baseCancel: cancel,
		runs:       make(map[string]*run),
	}
	s.pool.MetricsIntervalMS = opts.MetricsIntervalMS
	s.pool.Store = opts.Store
	s.pool.CacheEntries = opts.CacheEntries
	s.pool.Ckpt = opts.Ckpt
	if opts.Ckpt != nil {
		opts.Ckpt.OnEvent = s.obs.observeCkpt
	}
	return s
}

// Handler returns the server's routing table, wrapped in the trace
// middleware (trace-ID minting, X-Rofs-Trace-Id echo, one access record
// per request).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.instrument("submit", s.handleSubmit))
	mux.HandleFunc("GET /v1/runs", s.instrument("list", s.handleList))
	mux.HandleFunc("GET /v1/runs/{id}", s.instrument("status", s.handleGet))
	mux.HandleFunc("DELETE /v1/runs/{id}", s.instrument("cancel", s.handleCancel))
	mux.HandleFunc("POST /v1/runs/{id}/cancel", s.instrument("cancel", s.handleCancel))
	mux.HandleFunc("GET /v1/runs/{id}/events", s.route("events", s.handleEvents)) // long-lived: not latency-instrumented
	mux.HandleFunc("GET /metrics", s.route("metrics", s.handleMetrics))
	mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.route("readyz", s.handleReadyz))
	return s.trace(mux)
}

// instrument wraps a handler with a per-route request counter and
// latency histogram, and tags the access record with the route name.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	h = s.route(route, h)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.obs.observeRequest(route, time.Since(start))
	}
}

// handleSubmit is POST /v1/runs: validate, admit (or 503), and either
// return the run's handle immediately or — with ?wait=1 — block until
// the result, canceling the simulation if the waiting client disconnects.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	arrived := time.Now()
	ri := infoFrom(r.Context())
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		ri.Update(func(rec *obs.AccessRecord) { rec.Outcome = "invalid" })
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	sp, err := req.Spec()
	if err != nil {
		ri.Update(func(rec *obs.AccessRecord) { rec.Outcome = "invalid" })
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	sp.TraceID = obs.TraceIDFrom(r.Context())
	if sp.CheckpointEveryMS > 0 && s.opts.Ckpt == nil {
		ri.Update(func(rec *obs.AccessRecord) { rec.Outcome = "invalid" })
		s.writeError(w, http.StatusBadRequest,
			errors.New("checkpoint_every_ms requires a server started with a checkpoint directory (-ckpt-dir)"))
		return
	}

	timeout := s.opts.RunTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS * float64(time.Millisecond))
	}

	rn, err := s.admit(sp, timeout)
	admitMS := obs.Since(arrived)
	s.obs.observePhase(phaseAdmit, admitMS)
	if err != nil {
		ri.Update(func(rec *obs.AccessRecord) {
			rec.Spec = sp.Label()
			rec.SpecKey = sp.Key()
			rec.AdmitMS = admitMS
			rec.Outcome = "rejected"
		})
		w.Header().Set("Retry-After", strconv.Itoa(int((s.opts.RetryAfter+time.Second-1)/time.Second)))
		s.writeError(w, http.StatusServiceUnavailable, err)
		s.obs.countRejected()
		return
	}
	ri.Update(func(rec *obs.AccessRecord) {
		rec.RunID = rn.id
		rec.Spec = sp.Label()
		rec.SpecKey = sp.Key()
		rec.AdmitMS = admitMS
		rec.Outcome = "accepted"
	})

	if r.URL.Query().Get("wait") == "1" {
		s.waitAndRespond(w, r, rn)
		return
	}
	s.writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID:        rn.id,
		StatusURL: "/v1/runs/" + rn.id,
		EventsURL: "/v1/runs/" + rn.id + "/events",
	})
}

// admit applies the bounded admission policy and, on acceptance, starts
// the run's executor goroutine.
func (s *Server) admit(sp runner.Spec, timeout time.Duration) (*run, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errors.New("server is draining; not admitting new runs")
	}
	if s.queued >= s.opts.QueueDepth {
		queued := s.queued
		s.mu.Unlock()
		return nil, fmt.Errorf("admission queue full (%d runs waiting); retry later", queued)
	}
	s.seq++
	id := fmt.Sprintf("run-%06d", s.seq)
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, timeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	rn := &run{
		id:     id,
		spec:   sp,
		state:  StateQueued,
		seq:    s.seq,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	s.runs[id] = rn
	s.order = append(s.order, id)
	s.queued++
	queued := s.queued
	s.wg.Add(1)
	s.mu.Unlock()
	s.obs.setQueueDepth(queued)
	s.obs.countAdmitted()
	go s.execute(rn, ctx)
	return rn, nil
}

// execute runs one admitted run to a terminal state: wait for a worker
// slot (or cancellation), simulate through the pool — which serves
// cache hits for Specs already run and coalesces concurrent duplicates —
// and publish the result.
func (s *Server) execute(rn *run, ctx context.Context) {
	defer s.wg.Done()
	queuedAt := time.Now()
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		// Canceled (or timed out, or drain deadline) while still queued.
		s.leaveQueue(rn)
		s.finalize(rn, runner.Result{Spec: rn.spec, Err: ctx.Err()})
		return
	}
	s.obs.addInFlight(1)
	defer func() {
		s.obs.addInFlight(-1)
		<-s.slots
	}()
	s.leaveQueue(rn)
	queueWait := time.Since(queuedAt)
	s.obs.observeQueueWait(queueWait)
	s.obs.observePhase(phaseQueue, float64(queueWait)/float64(time.Millisecond))

	s.mu.Lock()
	rn.state = StateRunning
	rn.started = time.Now()
	rn.queueWait = queueWait
	s.mu.Unlock()

	runStart := time.Now()
	results, _ := s.pool.Run(ctx, []runner.Spec{rn.spec})
	runWall := time.Since(runStart)
	s.obs.observePhase(phaseRun, float64(runWall)/float64(time.Millisecond))
	s.mu.Lock()
	rn.runWall = runWall
	s.mu.Unlock()
	s.finalize(rn, results[0])
}

// leaveQueue retires the run's queue slot (idempotent via state check).
func (s *Server) leaveQueue(rn *run) {
	s.mu.Lock()
	if rn.state == StateQueued {
		s.queued--
		s.obs.setQueueDepth(s.queued)
	}
	s.mu.Unlock()
}

// finalize records the terminal state and wakes every waiter.
func (s *Server) finalize(rn *run, res runner.Result) {
	state := StateDone
	var result *RunResult
	var errMsg string
	var encodeMS float64
	switch {
	case res.Err != nil && isCancellation(res.Err):
		state, errMsg = StateCanceled, res.Err.Error()
	case res.Err != nil:
		state, errMsg = StateFailed, res.Err.Error()
	default:
		var err error
		encStart := time.Now()
		if result, err = newRunResult(res); err != nil {
			state, errMsg = StateFailed, err.Error()
		}
		encodeMS = obs.Since(encStart)
		s.obs.observePhase(phaseEncode, encodeMS)
	}
	s.mu.Lock()
	rn.state, rn.err, rn.result = state, errMsg, result
	rn.encodeMS = encodeMS
	rn.cached, rn.coalesced, rn.followers = res.Cached, res.Coalesced, res.Followers
	rn.diskHit, rn.disposition = res.DiskHit, disposition(res)
	s.mu.Unlock()
	s.obs.countFinished(state, res)
	close(rn.done)
}

// isCancellation classifies errors that mean "stopped on purpose" rather
// than "the simulation is broken".
func isCancellation(err error) bool {
	return errors.Is(err, core.ErrCanceled) || errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// waitAndRespond blocks a ?wait=1 submission until its run finishes. The
// waiting client's disconnect cancels the run — a synchronous submitter
// owns its simulation — and the response is the run's final status.
func (s *Server) waitAndRespond(w http.ResponseWriter, r *http.Request, rn *run) {
	select {
	case <-rn.done:
	case <-r.Context().Done():
		rn.cancel()
		<-rn.done
	}
	s.mu.Lock()
	queueMS := float64(rn.queueWait) / float64(time.Millisecond)
	runMS := float64(rn.runWall) / float64(time.Millisecond)
	encodeMS := rn.encodeMS
	cached, coalesced, followers := rn.cached, rn.coalesced, rn.followers
	diskHit, disp := rn.diskHit, rn.disposition
	state := rn.state
	s.mu.Unlock()
	infoFrom(r.Context()).Update(func(rec *obs.AccessRecord) {
		rec.QueueMS = queueMS
		rec.RunMS = runMS
		rec.EncodeMS = encodeMS
		rec.Cached, rec.Coalesced, rec.Followers = cached, coalesced, followers
		rec.DiskHit, rec.Disposition = diskHit, disp
		rec.Outcome = state
	})
	s.writeJSON(w, http.StatusOK, s.snapshot(rn))
}

// lookup resolves {id}; a miss writes the 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*run, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	rn, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no run %q", id))
		return nil, false
	}
	return rn, true
}

// snapshot renders a run's status document under the lock.
func (s *Server) snapshot(rn *run) RunStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return rn.status(s.queuePositionLocked(rn))
}

// queuePositionLocked counts queued runs admitted before rn, plus one.
func (s *Server) queuePositionLocked(rn *run) int {
	if rn.state != StateQueued {
		return 0
	}
	pos := 1
	for _, id := range s.order {
		other := s.runs[id]
		if other.state == StateQueued && other.seq < rn.seq {
			pos++
		}
	}
	return pos
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rn, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.writeJSON(w, http.StatusOK, s.snapshot(rn))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]RunStatus, 0, len(s.order))
	for _, id := range s.order {
		rn := s.runs[id]
		out = append(out, rn.status(s.queuePositionLocked(rn)))
	}
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rn, ok := s.lookup(w, r)
	if !ok {
		return
	}
	rn.cancel()
	s.writeJSON(w, http.StatusAccepted, s.snapshot(rn))
}

// handleEvents is the SSE stream: an immediate status event, heartbeat
// status events while the run is queued or running, and a final result
// (or error) event carrying the same document the status endpoint
// serves — including the rofs-metrics/v1 bundle. A watcher disconnecting
// does not cancel the run; only the ?wait=1 submitter owns it.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	rn, ok := s.lookup(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	if err := writeSSE(w, flusher, "status", s.snapshot(rn)); err != nil {
		return
	}
	ticker := time.NewTicker(s.opts.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-rn.done:
			st := s.snapshot(rn)
			event := "result"
			if st.State != StateDone {
				event = "error"
			}
			writeSSE(w, flusher, event, st)
			return
		case <-ticker.C:
			if err := writeSSE(w, flusher, "status", s.snapshot(rn)); err != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleMetrics serves the server-level registry (request counters and
// latency histograms, queue-depth and in-flight gauges, pool saturation,
// disk-store activity) in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var ss *store.Stats
	if s.opts.Store != nil {
		st := s.opts.Store.Stats()
		ss = &st
	}
	s.obs.write(w, s.pool.Stats(), ss)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports admission readiness: 503 once draining starts, so
// load balancers stop routing before the listener goes away.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// Drain stops admission and waits for in-flight and queued runs to
// finish. If ctx expires first, every remaining run is canceled (their
// simulations stop at the next Config.Cancel poll) and Drain waits for
// them to unwind before returning ctx's error.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Close cancels everything immediately — the test-and-error-path
// companion to Drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.baseCancel()
	s.wg.Wait()
}

// Pool exposes the server's pool for instrumentation summaries (the
// stats endpoint and shutdown logs read it).
func (s *Server) Pool() *runner.Pool { return s.pool }

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, errorJSON{Error: err.Error()})
}
