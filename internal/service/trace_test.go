package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rofs/internal/obs"
)

// syncBuf is a concurrency-safe access-log sink: the middleware writes
// records from handler goroutines while tests read.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for _, ln := range strings.Split(b.buf.String(), "\n") {
		if strings.TrimSpace(ln) != "" {
			out = append(out, ln)
		}
	}
	return out
}

// accessRecords polls the log until at least n records parse, returning
// them decoded (the middleware writes the record after the handler
// returns, so the response can arrive before the line does).
func accessRecords(t *testing.T, buf *syncBuf, n int) []map[string]any {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		lines := buf.lines()
		if len(lines) >= n {
			out := make([]map[string]any, 0, len(lines))
			for _, ln := range lines {
				var rec map[string]any
				if err := json.Unmarshal([]byte(ln), &rec); err != nil {
					t.Fatalf("access log line is not JSON: %v\n%s", err, ln)
				}
				out = append(out, rec)
			}
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("access log has %d records, want >= %d:\n%s",
				len(lines), n, strings.Join(lines, "\n"))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTraceRoundTripAndAccessLog pins the tracing contract end to end:
// a caller-supplied X-Rofs-Trace-Id is adopted and echoed on the status
// document; a missing one is minted; and each request produces exactly
// one structured access record carrying the trace, the run lifecycle
// spans, and the outcome.
func TestTraceRoundTripAndAccessLog(t *testing.T) {
	buf := &syncBuf{}
	_, c := newTestServer(t, Options{Jobs: 2, AccessLog: buf})

	// Caller-supplied trace, propagated via the client context.
	mine := obs.TraceIDFromUint64(0xfeedface)
	ctx := obs.WithTraceID(context.Background(), mine)
	st, err := c.SubmitWait(ctx, shortReq())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %q, want done", st.State)
	}
	if st.TraceID != mine {
		t.Errorf("status trace = %q, want the submitted %q", st.TraceID, mine)
	}

	// No trace supplied: the server mints a well-formed one.
	req := shortReq()
	req.Seed = 43
	st2, err := c.SubmitWait(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.ValidTraceID(st2.TraceID) {
		t.Errorf("minted trace %q is not a valid trace ID", st2.TraceID)
	}
	if st2.TraceID == mine {
		t.Error("minted trace collided with the supplied one")
	}

	recs := accessRecords(t, buf, 2)
	perTrace := make(map[string]int)
	for _, rec := range recs {
		trace, _ := rec["trace"].(string)
		perTrace[trace]++
		if rec["msg"] != "access" {
			t.Errorf("record msg = %v, want access", rec["msg"])
		}
	}
	for _, want := range []string{mine, st2.TraceID} {
		if perTrace[want] != 1 {
			t.Errorf("trace %s has %d access records, want exactly 1", want, perTrace[want])
		}
	}

	// The ?wait=1 record carries the full lifecycle.
	var submitRec map[string]any
	for _, rec := range recs {
		if rec["trace"] == mine {
			submitRec = rec
		}
	}
	if submitRec == nil {
		t.Fatal("no access record for the traced submission")
	}
	for _, key := range []string{"route", "status", "dur_ms", "run", "spec", "spec_key",
		"queue_ms", "run_ms", "encode_ms", "cached", "coalesced", "outcome"} {
		if _, ok := submitRec[key]; !ok {
			t.Errorf("submit access record missing %q: %v", key, submitRec)
		}
	}
	if submitRec["route"] != "submit" || submitRec["outcome"] != StateDone {
		t.Errorf("submit record route/outcome = %v/%v, want submit/done",
			submitRec["route"], submitRec["outcome"])
	}
}

// TestMetricsExpositionWellFormed drives a few requests (including a
// rejection) and then validates the whole /metrics exposition: every
// line parses, every sample belongs to a declared TYPE family, histogram
// buckets are cumulative and consistent, and the new phase, coalesce,
// and Go-runtime series are present with sane values.
func TestMetricsExpositionWellFormed(t *testing.T) {
	_, c := newTestServer(t, Options{Jobs: 1, QueueDepth: 1})
	ctx := context.Background()

	if _, err := c.SubmitWait(ctx, shortReq()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitWait(ctx, shortReq()); err != nil { // cache hit
		t.Fatal(err)
	}

	// Overload: slot held, queue full, so a third submission is rejected.
	hold, err := c.Submit(ctx, longReq(9))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, hold.ID, StateRunning)
	filler, err := c.Submit(ctx, longReq(10))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, filler.ID, StateQueued)
	if _, err := c.Submit(ctx, longReq(11)); err == nil {
		t.Fatal("expected a 503 with the queue full")
	}
	for _, id := range []string{hold.ID, filler.ID} {
		if _, err := c.Cancel(ctx, id); err != nil {
			t.Fatal(err)
		}
		waitForState(t, c, id, StateCanceled)
	}

	body, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := obs.ParseProm(strings.NewReader(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	if err := sc.CheckHistograms(); err != nil {
		t.Errorf("histogram invariants: %v", err)
	}

	// Every sample must belong to a TYPE-declared family.
	for _, smp := range sc.Samples {
		family := smp.Name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(smp.Name, suffix); base != smp.Name {
				if _, ok := sc.Types[base]; ok {
					family = base
					break
				}
			}
		}
		if _, ok := sc.Types[family]; !ok {
			t.Errorf("sample %s has no TYPE declaration", smp.Name)
		}
		if smp.Labels["component"] != "rofs-server" {
			t.Errorf("sample %s lacks the component label: %v", smp.Name, smp.Labels)
		}
	}

	// Phase histograms observed the lifecycle.
	for _, name := range []string{
		"rofs_service_phase_ms_admit",
		"rofs_service_phase_ms_queue",
		"rofs_service_phase_ms_run",
		"rofs_service_phase_ms_encode",
	} {
		if sc.Types[name] != "histogram" {
			t.Errorf("%s: TYPE = %q, want histogram", name, sc.Types[name])
			continue
		}
		if v, ok := sc.Value(name + "_count"); !ok || v < 1 {
			t.Errorf("%s_count = %v (present %t), want >= 1", name, v, ok)
		}
	}

	// Go runtime gauges carry live values.
	if v, _ := sc.Value("rofs_go_goroutines"); v < 1 {
		t.Errorf("rofs_go_goroutines = %v, want >= 1", v)
	}
	if v, _ := sc.Value("rofs_go_heap_alloc_bytes"); v <= 0 {
		t.Errorf("rofs_go_heap_alloc_bytes = %v, want > 0", v)
	}
	if _, ok := sc.Value("rofs_go_gc_pause_ms_count"); !ok {
		t.Error("rofs_go_gc_pause_ms histogram missing")
	}

	// Disposition counters line up with what the test drove.
	for name, want := range map[string]float64{
		"rofs_service_runs_done":     2,
		"rofs_service_runs_cached":   1,
		"rofs_service_runs_rejected": 1,
		"rofs_service_runs_canceled": 2,
	} {
		if v, _ := sc.Value(name); v != want {
			t.Errorf("%s = %v, want %v", name, v, want)
		}
	}
	if _, ok := sc.Value("rofs_service_runs_coalesced"); !ok {
		t.Error("rofs_service_runs_coalesced missing")
	}
	if _, ok := sc.Value("rofs_pool_runs_coalesced"); !ok {
		t.Error("rofs_pool_runs_coalesced missing")
	}
}

// TestSSESlowConsumerNoGoroutineLeak opens event streams that stop
// reading, then tears the connections down and checks the handler
// goroutines unwind — a slow or dead SSE consumer must not pin server
// goroutines past its connection.
func TestSSESlowConsumerNoGoroutineLeak(t *testing.T) {
	_, c := newTestServer(t, Options{Jobs: 1, Heartbeat: 2 * time.Millisecond})
	sub, err := c.Submit(context.Background(), longReq(77))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, sub.ID, StateRunning)

	base := runtime.NumGoroutine()

	transport := &http.Transport{}
	client := &http.Client{Transport: transport}
	const streams = 8
	cancels := make([]context.CancelFunc, 0, streams)
	for i := 0; i < streams; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels = append(cancels, cancel)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			c.BaseURL+"/v1/runs/"+sub.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		// Read just the first event, then stop consuming: heartbeats pile
		// into the unread connection from here on.
		one := make([]byte, 64)
		if _, err := resp.Body.Read(one); err != nil {
			t.Fatalf("stream %d: first read: %v", i, err)
		}
	}

	// Let heartbeats accumulate against the stalled consumers.
	time.Sleep(50 * time.Millisecond)
	if g := runtime.NumGoroutine(); g < base {
		t.Fatalf("goroutines fell below baseline while streams open: %d < %d", g, base)
	}

	for _, cancel := range cancels {
		cancel()
	}
	transport.CloseIdleConnections()

	// The SSE handlers must notice the disconnects and return.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not unwind: baseline %d, now %d", base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	if _, err := c.Cancel(context.Background(), sub.ID); err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, sub.ID, StateCanceled)
}

// TestSubmitRetryHonorsRetryAfter: a 503-rejected submission is retried
// after the server's Retry-After hint, and succeeds once capacity frees
// up; with capacity still held, retries exhaust and surface the 503.
func TestSubmitRetryHonorsRetryAfter(t *testing.T) {
	_, c := newTestServer(t, Options{Jobs: 1, QueueDepth: 1, RetryAfter: time.Second})
	ctx := context.Background()

	hold, err := c.Submit(ctx, longReq(21))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, hold.ID, StateRunning)
	filler, err := c.Submit(ctx, longReq(22))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, filler.ID, StateQueued)

	// Exhausted retries surface the APIError (two attempts, both 503).
	start := time.Now()
	_, err = c.SubmitRetry(ctx, shortReq(), 1)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want a 503 APIError", err)
	}
	if waited := time.Since(start); waited < time.Second {
		t.Errorf("retry waited %v, want at least the 1s Retry-After", waited)
	}
	if apiErr.TraceID == "" {
		t.Error("503 APIError carries no trace ID")
	}

	// Free capacity mid-retry: the resubmission goes through.
	go func() {
		time.Sleep(300 * time.Millisecond)
		c.Cancel(ctx, hold.ID)
		c.Cancel(ctx, filler.ID)
	}()
	st, err := c.SubmitWaitRetry(ctx, shortReq(), 3)
	if err != nil {
		t.Fatalf("retry after capacity freed: %v", err)
	}
	if st.State != StateDone {
		t.Errorf("state = %q, want done", st.State)
	}
}

// TestRetryDelayParsing covers the Retry-After fallback paths.
func TestRetryDelayParsing(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"2", 2 * time.Second},
		{" 1 ", time.Second},
		{"0", 0},
		{"", 750 * time.Millisecond},
		{"soon", 750 * time.Millisecond},
		{"-3", 750 * time.Millisecond},
	}
	for _, tc := range cases {
		e := &APIError{Code: 503, RetryAfter: tc.header}
		if got := e.RetryDelay(750 * time.Millisecond); got != tc.want {
			t.Errorf("RetryDelay(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
	if (&APIError{Code: 503}).Retryable() != true {
		t.Error("503 not retryable")
	}
	if (&APIError{Code: 400}).Retryable() {
		t.Error("400 retryable")
	}
}
