package service

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzRunRequest hardens the POST /v1/runs decode path against arbitrary
// bodies: decoding mirrors handleSubmit (strict fields, then Spec-level
// validation), must never panic, and anything accepted must yield a Spec
// whose canonical key is stable and whose Config validates.
func FuzzRunRequest(f *testing.F) {
	f.Add(`{"policy":"buddy","workload":"TS","test":"app"}`)
	f.Add(`{"policy":"rbuddy","workload":"SC","test":"seq","sizes":5,"grow":1.5,"clustered":false}`)
	f.Add(`{"policy":"extent","workload":"TP","test":"alloc","fit":"best","ranges":4,"scale":"full"}`)
	f.Add(`{"policy":"fixed","workload":"TS","test":"app","block_bytes":16384,"seed":7}`)
	f.Add(`{"policy":"buddy","workload":"TS","test":"app","disks":4,"layout":"raid5","degraded":true}`)
	f.Add(`{"policy":"buddy","workload":"TS","test":"app","disks":4,"layout":"raid5",` +
		`"faults":{"fail_at_ms":3000,"fail_drive":1,"transient_prob":0.001,"rebuild":true,"rebuild_chunk_bytes":4194304}}`)
	f.Add(`{"policy":"buddy","workload":"TS","test":"app","faults":{"transient_prob":2}}`)
	f.Add(`{"policy":"buddy","workload":"TS","test":"app","faults":{"mttf_ms":-1}}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(`{"policy":"buddy","workload":"TS","test":"app","blocksize":17}`)
	f.Fuzz(func(t *testing.T, body string) {
		var req RunRequest
		dec := json.NewDecoder(strings.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return
		}
		sp, err := req.Spec()
		if err != nil {
			return
		}
		// Accepted requests must build a deterministic, valid Spec.
		if sp.Key() != sp.Key() {
			t.Fatal("spec key not stable")
		}
		if sp.Faults.Enabled() {
			if err := sp.Faults.Validate(); err != nil {
				t.Fatalf("accepted request carries an invalid fault scenario: %v", err)
			}
		}
		cfg := sp.Config()
		if cfg.Policy.Kind == "" || cfg.Workload.Name == "" {
			t.Fatalf("accepted request built an incomplete config: %+v", cfg)
		}
	})
}
