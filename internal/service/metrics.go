package service

import (
	"io"
	"sync"
	"time"

	"rofs/internal/metrics"
	"rofs/internal/runner"
)

// latencyBoundsMS are the wall-time histogram buckets (log-spaced, ms).
var latencyBoundsMS = []float64{
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10_000, 30_000, 60_000, 300_000,
}

// serverMetrics is the server-level observability registry: HTTP request
// counters and latency histograms, admission gauges, run-disposition
// counters, and a scrape-time mirror of the pool's saturation stats. The
// registry handles are not concurrency-safe on their own, so every
// update and the export itself go through one mutex.
type serverMetrics struct {
	mu  sync.Mutex
	reg *metrics.Registry

	queueDepth *metrics.Gauge
	inFlight   *metrics.Gauge
	inFlightN  int

	admitted, rejected *metrics.Counter
	done, failed       *metrics.Counter
	canceled, cached   *metrics.Counter

	queueWaitMS *metrics.Hist
	runWallMS   *metrics.Hist

	requests  map[string]*metrics.Counter
	latencies map[string]*metrics.Hist

	// Pool mirror: gauges copied and counters delta-advanced from
	// runner.Stats at scrape time, so the pool's own handles stay free
	// for single-threaded users and no lock is shared with the hot path.
	poolQueue, poolInFlight               *metrics.Gauge
	poolPeakQueue, poolPeakInFlight       *metrics.Gauge
	poolSubmitted, poolCached, poolFailed *metrics.Counter
	lastPool                              runner.Stats

	started time.Time
	uptime  *metrics.Gauge
}

func newServerMetrics() *serverMetrics {
	reg := metrics.New(metrics.DefaultIntervalMS)
	reg.SetLabel("component", "rofs-server")
	return &serverMetrics{
		reg:              reg,
		queueDepth:       reg.Gauge("service.queue_depth"),
		inFlight:         reg.Gauge("service.in_flight"),
		admitted:         reg.Counter("service.runs_admitted"),
		rejected:         reg.Counter("service.runs_rejected"),
		done:             reg.Counter("service.runs_done"),
		failed:           reg.Counter("service.runs_failed"),
		canceled:         reg.Counter("service.runs_canceled"),
		cached:           reg.Counter("service.runs_cached"),
		queueWaitMS:      reg.Histogram("service.queue_wait_ms", latencyBoundsMS),
		runWallMS:        reg.Histogram("service.run_wall_ms", latencyBoundsMS),
		requests:         make(map[string]*metrics.Counter),
		latencies:        make(map[string]*metrics.Hist),
		poolQueue:        reg.Gauge("pool.queue_depth"),
		poolInFlight:     reg.Gauge("pool.in_flight"),
		poolPeakQueue:    reg.Gauge("pool.peak_queue_depth"),
		poolPeakInFlight: reg.Gauge("pool.peak_in_flight"),
		poolSubmitted:    reg.Counter("pool.runs_submitted"),
		poolCached:       reg.Counter("pool.runs_cached"),
		poolFailed:       reg.Counter("pool.runs_failed"),
		started:          time.Now(),
		uptime:           reg.Gauge("service.uptime_seconds"),
	}
}

// observeRequest records one finished HTTP request on the route's
// counter and latency histogram (created on first use).
func (m *serverMetrics) observeRequest(route string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.requests[route]
	if !ok {
		c = m.reg.Counter("service.http_requests." + route)
		m.requests[route] = c
	}
	h, ok := m.latencies[route]
	if !ok {
		h = m.reg.Histogram("service.request_latency_ms."+route, latencyBoundsMS)
		m.latencies[route] = h
	}
	c.Inc()
	h.Observe(float64(d) / float64(time.Millisecond))
}

func (m *serverMetrics) setQueueDepth(n int) {
	m.mu.Lock()
	m.queueDepth.Set(float64(n))
	m.mu.Unlock()
}

func (m *serverMetrics) addInFlight(delta int) {
	m.mu.Lock()
	m.inFlightN += delta
	m.inFlight.Set(float64(m.inFlightN))
	m.mu.Unlock()
}

func (m *serverMetrics) observeQueueWait(d time.Duration) {
	m.mu.Lock()
	m.queueWaitMS.Observe(float64(d) / float64(time.Millisecond))
	m.mu.Unlock()
}

func (m *serverMetrics) countAdmitted() {
	m.mu.Lock()
	m.admitted.Inc()
	m.mu.Unlock()
}

func (m *serverMetrics) countRejected() {
	m.mu.Lock()
	m.rejected.Inc()
	m.mu.Unlock()
}

// countFinished records a run's terminal disposition.
func (m *serverMetrics) countFinished(state string, res runner.Result) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch state {
	case StateDone:
		m.done.Inc()
	case StateCanceled:
		m.canceled.Inc()
	default:
		m.failed.Inc()
	}
	if res.Cached {
		m.cached.Inc()
	}
	if res.Err == nil {
		m.runWallMS.Observe(res.Wall.Seconds() * 1000)
	}
}

// write syncs the pool mirror and uptime, then renders the registry in
// Prometheus text exposition format.
func (m *serverMetrics) write(w io.Writer, ps runner.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.poolQueue.Set(float64(ps.QueueDepth))
	m.poolInFlight.Set(float64(ps.InFlight))
	m.poolPeakQueue.Set(float64(ps.PeakQueueDepth))
	m.poolPeakInFlight.Set(float64(ps.PeakInFlight))
	m.poolSubmitted.Add(ps.Submitted - m.lastPool.Submitted)
	m.poolCached.Add(ps.Cached - m.lastPool.Cached)
	m.poolFailed.Add(ps.Failed - m.lastPool.Failed)
	m.lastPool = ps
	m.uptime.Set(time.Since(m.started).Seconds())
	m.reg.Write(w, metrics.Prometheus)
}
