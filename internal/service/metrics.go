package service

import (
	"io"
	"runtime"
	"sync"
	"time"

	"rofs/internal/ckpt"
	"rofs/internal/metrics"
	"rofs/internal/runner"
	"rofs/internal/store"
)

// latencyBoundsMS are the wall-time histogram buckets (log-spaced, ms).
var latencyBoundsMS = []float64{
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10_000, 30_000, 60_000, 300_000,
}

// serverMetrics is the server-level observability registry: HTTP request
// counters and latency histograms, admission gauges, run-disposition
// counters, and a scrape-time mirror of the pool's saturation stats. The
// registry handles are not concurrency-safe on their own, so every
// update and the export itself go through one mutex.
type serverMetrics struct {
	mu  sync.Mutex
	reg *metrics.Registry

	queueDepth *metrics.Gauge
	inFlight   *metrics.Gauge
	inFlightN  int

	admitted, rejected *metrics.Counter
	done, failed       *metrics.Counter
	canceled, cached   *metrics.Counter
	coalesced          *metrics.Counter

	queueWaitMS *metrics.Hist
	runWallMS   *metrics.Hist
	phases      map[string]*metrics.Hist

	requests  map[string]*metrics.Counter
	latencies map[string]*metrics.Hist

	// Pool mirror: gauges copied and counters delta-advanced from
	// runner.Stats at scrape time, so the pool's own handles stay free
	// for single-threaded users and no lock is shared with the hot path.
	poolQueue, poolInFlight               *metrics.Gauge
	poolPeakQueue, poolPeakInFlight       *metrics.Gauge
	poolSubmitted, poolCached, poolFailed *metrics.Counter
	poolCoalesced                         *metrics.Counter
	poolDiskHits, poolStoreErrors         *metrics.Counter
	poolCacheEvictions                    *metrics.Counter
	poolCacheEntries, poolCacheBytes      *metrics.Gauge
	lastPool                              runner.Stats

	// Disk-store mirror, same delta pattern over store.Stats.
	storeHits, storeMisses    *metrics.Counter
	storePuts, storeEvictions *metrics.Counter
	storeCompactions          *metrics.Counter
	storeQuarantined          *metrics.Counter
	storeErrors               *metrics.Counter
	storeRecords, storeLive   *metrics.Gauge
	storeDead, storeSegs      *metrics.Gauge
	lastStore                 store.Stats

	// Checkpoint activity: per-operation duration histograms and error
	// counter, fed by the manager's OnEvent callback.
	ckptSaveMS, ckptRestoreMS *metrics.Hist
	ckptSaves, ckptRestores   *metrics.Counter
	ckptErrors                *metrics.Counter

	// Go runtime health, refreshed at scrape time from runner.Stats'
	// runtime snapshot plus a local ReadMemStats for the GC pause ring.
	goroutines *metrics.Gauge
	heapAlloc  *metrics.Gauge
	heapSys    *metrics.Gauge
	gcRuns     *metrics.Counter
	gcPauseMS  *metrics.Hist
	lastNumGC  uint32

	started time.Time
	uptime  *metrics.Gauge
}

// Server-side request phases, in lifecycle order: validate+admit, wait
// for a worker slot, simulate, encode the result. Each gets a latency
// histogram service.phase_ms.<phase>.
const (
	phaseAdmit  = "admit"
	phaseQueue  = "queue"
	phaseRun    = "run"
	phaseEncode = "encode"
)

// gcPauseBoundsMS are the GC pause histogram buckets (log-spaced, ms);
// pauses are far shorter than request latencies, so they get their own
// sub-millisecond scale.
var gcPauseBoundsMS = []float64{
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

func newServerMetrics() *serverMetrics {
	reg := metrics.New(metrics.DefaultIntervalMS)
	reg.SetLabel("component", "rofs-server")
	m := &serverMetrics{
		reg:                reg,
		queueDepth:         reg.Gauge("service.queue_depth"),
		inFlight:           reg.Gauge("service.in_flight"),
		admitted:           reg.Counter("service.runs_admitted"),
		rejected:           reg.Counter("service.runs_rejected"),
		done:               reg.Counter("service.runs_done"),
		failed:             reg.Counter("service.runs_failed"),
		canceled:           reg.Counter("service.runs_canceled"),
		cached:             reg.Counter("service.runs_cached"),
		coalesced:          reg.Counter("service.runs_coalesced"),
		queueWaitMS:        reg.Histogram("service.queue_wait_ms", latencyBoundsMS),
		runWallMS:          reg.Histogram("service.run_wall_ms", latencyBoundsMS),
		phases:             make(map[string]*metrics.Hist),
		requests:           make(map[string]*metrics.Counter),
		latencies:          make(map[string]*metrics.Hist),
		poolQueue:          reg.Gauge("pool.queue_depth"),
		poolInFlight:       reg.Gauge("pool.in_flight"),
		poolPeakQueue:      reg.Gauge("pool.peak_queue_depth"),
		poolPeakInFlight:   reg.Gauge("pool.peak_in_flight"),
		poolSubmitted:      reg.Counter("pool.runs_submitted"),
		poolCached:         reg.Counter("pool.runs_cached"),
		poolFailed:         reg.Counter("pool.runs_failed"),
		poolCoalesced:      reg.Counter("pool.runs_coalesced"),
		poolDiskHits:       reg.Counter("pool.runs_disk_hit"),
		poolStoreErrors:    reg.Counter("pool.store_errors"),
		poolCacheEvictions: reg.Counter("pool.cache_evictions"),
		poolCacheEntries:   reg.Gauge("pool.cache_entries"),
		poolCacheBytes:     reg.Gauge("pool.cache_bytes"),
		storeHits:          reg.Counter("store.hits"),
		storeMisses:        reg.Counter("store.misses"),
		storePuts:          reg.Counter("store.puts"),
		storeEvictions:     reg.Counter("store.evictions"),
		storeCompactions:   reg.Counter("store.compactions"),
		storeQuarantined:   reg.Counter("store.quarantined"),
		storeErrors:        reg.Counter("store.errors"),
		storeRecords:       reg.Gauge("store.records"),
		storeLive:          reg.Gauge("store.live_bytes"),
		storeDead:          reg.Gauge("store.dead_bytes"),
		storeSegs:          reg.Gauge("store.segments"),
		ckptSaveMS:         reg.Histogram("service.checkpoint_ms", latencyBoundsMS),
		ckptRestoreMS:      reg.Histogram("service.restore_ms", latencyBoundsMS),
		ckptSaves:          reg.Counter("service.checkpoints"),
		ckptRestores:       reg.Counter("service.restores"),
		ckptErrors:         reg.Counter("service.checkpoint_errors"),
		goroutines:         reg.Gauge("go.goroutines"),
		heapAlloc:          reg.Gauge("go.heap_alloc_bytes"),
		heapSys:            reg.Gauge("go.heap_sys_bytes"),
		gcRuns:             reg.Counter("go.gc_runs"),
		gcPauseMS:          reg.Histogram("go.gc_pause_ms", gcPauseBoundsMS),
		started:            time.Now(),
		uptime:             reg.Gauge("service.uptime_seconds"),
	}
	// Register the phase histograms eagerly so every scrape exposes all
	// four series (with zero counts) from the first request on.
	for _, ph := range []string{phaseAdmit, phaseQueue, phaseRun, phaseEncode} {
		m.phases[ph] = reg.Histogram("service.phase_ms."+ph, latencyBoundsMS)
	}
	// Seed lastNumGC so GCs that happened before the server existed are
	// not replayed into the pause histogram on the first scrape.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.lastNumGC = ms.NumGC
	return m
}

// observePhase records one server-side phase latency (milliseconds).
func (m *serverMetrics) observePhase(phase string, ms float64) {
	m.mu.Lock()
	if h, ok := m.phases[phase]; ok {
		h.Observe(ms)
	}
	m.mu.Unlock()
}

// observeRequest records one finished HTTP request on the route's
// counter and latency histogram (created on first use).
func (m *serverMetrics) observeRequest(route string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.requests[route]
	if !ok {
		c = m.reg.Counter("service.http_requests." + route)
		m.requests[route] = c
	}
	h, ok := m.latencies[route]
	if !ok {
		h = m.reg.Histogram("service.request_latency_ms."+route, latencyBoundsMS)
		m.latencies[route] = h
	}
	c.Inc()
	h.Observe(float64(d) / float64(time.Millisecond))
}

func (m *serverMetrics) setQueueDepth(n int) {
	m.mu.Lock()
	m.queueDepth.Set(float64(n))
	m.mu.Unlock()
}

func (m *serverMetrics) addInFlight(delta int) {
	m.mu.Lock()
	m.inFlightN += delta
	m.inFlight.Set(float64(m.inFlightN))
	m.mu.Unlock()
}

func (m *serverMetrics) observeQueueWait(d time.Duration) {
	m.mu.Lock()
	m.queueWaitMS.Observe(float64(d) / float64(time.Millisecond))
	m.mu.Unlock()
}

func (m *serverMetrics) countAdmitted() {
	m.mu.Lock()
	m.admitted.Inc()
	m.mu.Unlock()
}

func (m *serverMetrics) countRejected() {
	m.mu.Lock()
	m.rejected.Inc()
	m.mu.Unlock()
}

// countFinished records a run's terminal disposition.
func (m *serverMetrics) countFinished(state string, res runner.Result) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch state {
	case StateDone:
		m.done.Inc()
	case StateCanceled:
		m.canceled.Inc()
	default:
		m.failed.Inc()
	}
	if res.Cached {
		m.cached.Inc()
	}
	if res.Coalesced {
		m.coalesced.Inc()
	}
	if res.Err == nil {
		m.runWallMS.Observe(res.Wall.Seconds() * 1000)
	}
}

// observeCkpt records one checkpoint-manager operation (the manager's
// OnEvent callback).
func (m *serverMetrics) observeCkpt(ev ckpt.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch ev.Kind {
	case "checkpoint":
		m.ckptSaves.Inc()
		m.ckptSaveMS.Observe(ev.DurMS)
	case "restore":
		m.ckptRestores.Inc()
		m.ckptRestoreMS.Observe(ev.DurMS)
	}
	if ev.Err != nil {
		m.ckptErrors.Inc()
	}
}

// write syncs the pool and store mirrors and uptime, then renders the
// registry in Prometheus text exposition format. ss is nil when the
// server runs without a disk store.
func (m *serverMetrics) write(w io.Writer, ps runner.Stats, ss *store.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.poolQueue.Set(float64(ps.QueueDepth))
	m.poolInFlight.Set(float64(ps.InFlight))
	m.poolPeakQueue.Set(float64(ps.PeakQueueDepth))
	m.poolPeakInFlight.Set(float64(ps.PeakInFlight))
	m.poolCacheEntries.Set(float64(ps.CacheEntries))
	m.poolCacheBytes.Set(float64(ps.CacheBytes))
	m.poolSubmitted.Add(ps.Submitted - m.lastPool.Submitted)
	m.poolCached.Add(ps.Cached - m.lastPool.Cached)
	m.poolFailed.Add(ps.Failed - m.lastPool.Failed)
	m.poolCoalesced.Add(ps.Coalesced - m.lastPool.Coalesced)
	m.poolDiskHits.Add(ps.DiskHits - m.lastPool.DiskHits)
	m.poolStoreErrors.Add(ps.StoreErrors - m.lastPool.StoreErrors)
	m.poolCacheEvictions.Add(ps.CacheEvictions - m.lastPool.CacheEvictions)
	m.lastPool = ps
	if ss != nil {
		m.storeRecords.Set(float64(ss.Records))
		m.storeLive.Set(float64(ss.LiveBytes))
		m.storeDead.Set(float64(ss.DeadBytes))
		m.storeSegs.Set(float64(ss.Segments))
		m.storeHits.Add(ss.Hits - m.lastStore.Hits)
		m.storeMisses.Add(ss.Misses - m.lastStore.Misses)
		m.storePuts.Add(ss.Puts - m.lastStore.Puts)
		m.storeEvictions.Add(ss.Evictions - m.lastStore.Evictions)
		m.storeCompactions.Add(ss.Compactions - m.lastStore.Compactions)
		m.storeQuarantined.Add(ss.Quarantined - m.lastStore.Quarantined)
		m.storeErrors.Add((ss.GetErrors + ss.PutErrors) - (m.lastStore.GetErrors + m.lastStore.PutErrors))
		m.lastStore = *ss
	}
	m.goroutines.Set(float64(ps.Runtime.Goroutines))
	m.heapAlloc.Set(float64(ps.Runtime.HeapAllocBytes))
	m.heapSys.Set(float64(ps.Runtime.HeapSysBytes))
	m.syncGCPauses()
	m.uptime.Set(time.Since(m.started).Seconds())
	m.reg.Write(w, metrics.Prometheus)
}

// syncGCPauses advances the GC counter and pause histogram from the
// runtime's 256-entry pause ring. Cycles that fell off the ring between
// scrapes (never at realistic scrape intervals) are counted but their
// pauses skipped. Caller holds m.mu.
func (m *serverMetrics) syncGCPauses() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.NumGC <= m.lastNumGC {
		return
	}
	m.gcRuns.Add(int64(ms.NumGC - m.lastNumGC))
	for n := m.lastNumGC + 1; n <= ms.NumGC; n++ {
		if ms.NumGC-n >= uint32(len(ms.PauseNs)) {
			continue
		}
		pause := ms.PauseNs[(n+uint32(len(ms.PauseNs))-1)%uint32(len(ms.PauseNs))]
		m.gcPauseMS.Observe(float64(pause) / 1e6)
	}
	m.lastNumGC = ms.NumGC
}
