package service

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"

	"rofs/internal/cluster"
	"rofs/internal/metrics"
	"rofs/internal/runner"
	"rofs/internal/workload"
)

// clusterReq is shortReq as an open-loop two-instance fleet behind
// least-loaded routing and a bounded queue — every cluster knob the
// request schema exposes gets exercised in one run.
func clusterReq() RunRequest {
	req := shortReq()
	req.Arrivals = &workload.Arrivals{RatePerSec: 200}
	req.Cluster = &cluster.Config{
		Instances: 2,
		Routing:   cluster.RouteLeastLoaded,
		Admission: cluster.AdmitQueue,
		QueueCap:  64,
	}
	return req
}

// TestClusterRunOverHTTP extends the service's byte-identical contract to
// fleet runs: a cluster run served over HTTP matches a direct pool run of
// the same Spec — including the cluster report — and the report's
// admission accounting balances.
func TestClusterRunOverHTTP(t *testing.T) {
	_, c := newTestServer(t, Options{Jobs: 2})

	req := clusterReq()
	st, err := c.SubmitWait(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Result == nil || st.Result.Perf == nil {
		t.Fatalf("unexpected terminal status: %+v", st)
	}
	cr := st.Result.Perf.Cluster
	if cr == nil {
		t.Fatal("fleet run returned no cluster report")
	}
	if cr.Instances != 2 || len(cr.PerInstance) != 2 {
		t.Errorf("report has %d instances (%d per-instance rows), want 2",
			cr.Instances, len(cr.PerInstance))
	}
	if cr.Routing != cluster.RouteLeastLoaded || cr.Admission != cluster.AdmitQueue {
		t.Errorf("policies = %s/%s, want least/queue", cr.Routing, cr.Admission)
	}
	if cr.Arrivals <= 0 {
		t.Errorf("open-loop fleet recorded %d arrivals, want > 0", cr.Arrivals)
	}
	if cr.Admitted+cr.Rejected != cr.Arrivals {
		t.Errorf("admission does not balance: %d admitted + %d rejected != %d arrivals",
			cr.Admitted, cr.Rejected, cr.Arrivals)
	}

	sp, err := req.Spec()
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.New(1)
	pool.MetricsIntervalMS = metrics.DefaultIntervalMS
	res, err := pool.Run(context.Background(), []runner.Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := newRunResult(res[0])
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, st.Result.Perf), mustJSON(t, direct.Perf); got != want {
		t.Errorf("fleet perf result diverged:\nhttp:   %s\ndirect: %s", got, want)
	}
	if got, want := compactJSON(t, st.Result.Metrics), compactJSON(t, direct.Metrics); !bytes.Equal(got, want) {
		t.Errorf("fleet metrics bundles diverged:\nhttp:   %s\ndirect: %s", got, want)
	}
	// The rofs-metrics/v1 bundle must carry the cluster series.
	for _, series := range []string{"cluster.arrivals", "cluster.admitted"} {
		if !strings.Contains(string(st.Result.Metrics), series) {
			t.Errorf("metrics bundle missing %q", series)
		}
	}
}

// TestClusterRequestSpecKey pins that the cluster config and arrivals
// reach the Spec and its cache key — two fleets of different shapes must
// never coalesce on the pool cache.
func TestClusterRequestSpecKey(t *testing.T) {
	req := clusterReq()
	sp, err := req.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Cluster.Enabled() || sp.Cluster.Instances != 2 {
		t.Fatalf("spec did not pick up the cluster config: %+v", sp.Cluster)
	}
	if !strings.Contains(sp.Key(), "n=2|route=least") {
		t.Errorf("spec key %q does not encode the fleet", sp.Key())
	}
	other := clusterReq()
	other.Cluster.Instances = 4
	osp, err := other.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Key() == osp.Key() {
		t.Errorf("2- and 4-instance fleets share cache key %q", sp.Key())
	}
	plain := shortReq()
	psp, err := plain.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(psp.Key(), "cluster") || strings.Contains(psp.Key(), "arrive") {
		t.Errorf("plain request key %q grew cluster terms", psp.Key())
	}
}

// TestClusterRequestValidation covers the cluster-specific 400s: fleets
// and arrivals outside the app test, and invalid policy configurations.
func TestClusterRequestValidation(t *testing.T) {
	_, c := newTestServer(t, Options{Jobs: 1})
	for name, body := range map[string]string{
		"cluster-needs-app":  `{"policy":"buddy","workload":"TS","test":"seq","cluster":{"instances":2}}`,
		"arrivals-needs-app": `{"policy":"buddy","workload":"TS","test":"alloc","arrivals":{"rate_per_s":100}}`,
		"bad-routing":        `{"policy":"buddy","workload":"TS","test":"app","cluster":{"instances":2,"routing":"random"}}`,
		"token-needs-rate":   `{"policy":"buddy","workload":"TS","test":"app","cluster":{"instances":2,"admission":"token"}}`,
		"queue-needs-cap":    `{"policy":"buddy","workload":"TS","test":"app","cluster":{"instances":2,"admission":"queue"}}`,
		"fault-inst-range":   `{"policy":"buddy","workload":"TS","test":"app","cluster":{"instances":2,"fault_instance":5}}`,
		"bad-rate":           `{"policy":"buddy","workload":"TS","test":"app","arrivals":{"rate_per_s":-1}}`,
	} {
		resp, err := http.Post(c.BaseURL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}
