package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rofs/internal/metrics"
	"rofs/internal/runner"
)

// newTestServer spins up a Server behind an httptest listener and returns
// a Client pointed at it. Cleanup closes both (Close cancels any runs the
// test left behind, so a failing test cannot hang the suite).
func newTestServer(t *testing.T, opts Options) (*Server, *Client) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Close()
		ts.Close()
	})
	return s, &Client{BaseURL: ts.URL}
}

// shortReq is a fast cell: the TS application test, simulated-time capped
// low enough that a run takes well under a second.
func shortReq() RunRequest {
	return RunRequest{Policy: "buddy", Workload: "TS", Test: "app", MaxSimMS: 15_000}
}

// longReq is a run that effectively never finishes on its own — the prop
// for overload and cancellation tests: an unreachable stabilization
// criterion keeps the throughput phase from stopping early, and the
// simulated-time cap is ~12 virtual days. Distinct seeds keep distinct
// cache keys, so two long runs never coalesce.
func longReq(seed int64) RunRequest {
	return RunRequest{Policy: "buddy", Workload: "TS", Test: "app",
		MaxSimMS: 1e9, StableWindows: 1 << 30, Seed: seed}
}

// waitForState polls a run's status until it reaches want (fatal on
// timeout or on passing want by to a different terminal state).
func waitForState(t *testing.T, c *Client, id, want string) RunStatus {
	t.Helper()
	start := time.Now()
	deadline := start.Add(15 * time.Second)
	for {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if st.State == want {
			t.Logf("waitForState(%s, %s): %v", id, want, time.Since(start))
			return st
		}
		terminal := st.State == StateDone || st.State == StateFailed || st.State == StateCanceled
		if terminal || time.Now().After(deadline) {
			t.Fatalf("run %s is %q (err %q), want %q", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestResultMatchesDirectPoolRun is the service's core contract: a run
// served over HTTP returns exactly what a direct runner.Pool run of the
// same Spec produces — same perf numbers, same stats, and a byte-identical
// (modulo JSON whitespace, which the transport re-indents) metrics bundle.
func TestResultMatchesDirectPoolRun(t *testing.T) {
	_, c := newTestServer(t, Options{Jobs: 2})

	req := shortReq()
	st, err := c.SubmitWait(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Result == nil || st.Result.Perf == nil {
		t.Fatalf("unexpected terminal status: %+v", st)
	}

	// The same request, executed directly on a fresh pool configured like
	// the server, encoded through the same path.
	sp, err := req.Spec()
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.New(1)
	pool.MetricsIntervalMS = metrics.DefaultIntervalMS
	res, err := pool.Run(context.Background(), []runner.Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := newRunResult(res[0])
	if err != nil {
		t.Fatal(err)
	}

	if got, want := mustJSON(t, st.Result.Perf), mustJSON(t, direct.Perf); got != want {
		t.Errorf("perf result diverged:\nhttp:   %s\ndirect: %s", got, want)
	}
	if got, want := mustJSON(t, st.Result.Stats), mustJSON(t, direct.Stats); got != want {
		t.Errorf("run stats diverged:\nhttp:   %s\ndirect: %s", got, want)
	}
	if len(st.Result.Metrics) == 0 || len(direct.Metrics) == 0 {
		t.Fatal("metrics bundle missing on one side")
	}
	if !strings.Contains(string(st.Result.Metrics), metrics.SchemaV1) {
		t.Errorf("HTTP metrics bundle does not declare schema %s", metrics.SchemaV1)
	}
	if got, want := compactJSON(t, st.Result.Metrics), compactJSON(t, direct.Metrics); !bytes.Equal(got, want) {
		t.Errorf("metrics bundles diverged:\nhttp:   %s\ndirect: %s", got, want)
	}
}

// TestDuplicateSpecsHitCache proves request coalescing end to end: the
// second submission of an identical Spec is served from the pool cache
// (one simulation total) with an identical payload.
func TestDuplicateSpecsHitCache(t *testing.T) {
	s, c := newTestServer(t, Options{Jobs: 2})

	first, err := c.SubmitWait(context.Background(), shortReq())
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.SubmitWait(context.Background(), shortReq())
	if err != nil {
		t.Fatal(err)
	}
	if first.State != StateDone || second.State != StateDone {
		t.Fatalf("states: %q then %q, want done/done", first.State, second.State)
	}
	if first.Result.Cached {
		t.Error("first submission claims to be cached")
	}
	if !second.Result.Cached {
		t.Error("second identical submission was re-simulated")
	}
	if got, want := mustJSON(t, second.Result.Perf), mustJSON(t, first.Result.Perf); got != want {
		t.Errorf("cached result differs from the original:\n%s\n%s", got, want)
	}
	if st := s.Pool().Stats(); st.Simulated != 1 || st.Cached != 1 {
		t.Errorf("pool stats = %+v; want 1 simulated, 1 cached", st)
	}
}

// TestOverloadRejectsWith503 exercises the bounded admission queue: with
// one worker and a one-deep queue, the third concurrent submission is
// rejected with 503 + Retry-After, and canceling the slot-holder actually
// stops its (otherwise effectively infinite) simulation.
func TestOverloadRejectsWith503(t *testing.T) {
	_, c := newTestServer(t, Options{Jobs: 1, QueueDepth: 1, RetryAfter: 2 * time.Second, Heartbeat: 20 * time.Millisecond})
	ctx := context.Background()

	a, err := c.Submit(ctx, longReq(1))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, a.ID, StateRunning)

	b, err := c.Submit(ctx, longReq(2))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, b.ID, StateQueued)

	_, err = c.Submit(ctx, longReq(3))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusServiceUnavailable {
		t.Fatalf("third submission: err = %v, want a 503 APIError", err)
	}
	if apiErr.RetryAfter != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", apiErr.RetryAfter)
	}

	// Cancel the slot-holder: its simulation polls Config.Cancel, so the
	// run must reach the canceled state promptly instead of simulating its
	// ~12 days of virtual time.
	if _, err := c.Cancel(ctx, a.ID); err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, a.ID, StateCanceled)

	// With the slot free, the queued run is next; reject-then-retry works.
	waitForState(t, c, b.ID, StateRunning)
	if _, err := c.Cancel(ctx, b.ID); err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, b.ID, StateCanceled)

	// The rejection and dispositions land on /metrics.
	scrape, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		`rofs_service_runs_rejected{component="rofs-server"} 1`,
		`rofs_service_runs_canceled{component="rofs-server"} 2`,
		`rofs_service_runs_admitted{component="rofs-server"} 2`,
	} {
		if !strings.Contains(scrape, series) {
			t.Errorf("metrics scrape missing %q", series)
		}
	}
	if !strings.Contains(scrape, "rofs_pool_runs_submitted") {
		t.Error("metrics scrape missing the pool saturation mirror")
	}
}

// TestWaitDisconnectCancelsRun proves that a synchronous (?wait=1)
// submitter owns its simulation: dropping the connection cancels the run.
func TestWaitDisconnectCancelsRun(t *testing.T) {
	_, c := newTestServer(t, Options{Jobs: 1})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.SubmitWait(ctx, longReq(4))
		errc <- err
	}()

	// Wait for the run to appear and start, then hang up.
	var id string
	deadline := time.Now().Add(15 * time.Second)
	for id == "" {
		if time.Now().After(deadline) {
			t.Fatal("run never appeared in the list")
		}
		runs, err := c.List(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) > 0 {
			id = runs[0].ID
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitForState(t, c, id, StateRunning)
	cancel()
	if err := <-errc; err == nil {
		t.Error("SubmitWait returned no error after its context was canceled")
	}
	waitForState(t, c, id, StateCanceled)
}

// TestRequestTimeoutCancelsRun: a per-request timeout_ms bounds the run's
// wall time and classifies the stop as a cancellation, not a failure.
func TestRequestTimeoutCancelsRun(t *testing.T) {
	_, c := newTestServer(t, Options{Jobs: 1})
	req := longReq(5)
	req.TimeoutMS = 50
	st, err := c.SubmitWait(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Errorf("state = %q (err %q), want canceled", st.State, st.Error)
	}
}

// TestEventsStreamDeliversResult follows the SSE feed of a run: an
// immediate status event, then a terminal result event whose payload is
// the full status document including the rofs-metrics/v1 bundle.
func TestEventsStreamDeliversResult(t *testing.T) {
	_, c := newTestServer(t, Options{Jobs: 1, Heartbeat: 10 * time.Millisecond})
	sub, err := c.Submit(context.Background(), shortReq())
	if err != nil {
		t.Fatal(err)
	}

	var names []string
	var final RunStatus
	err = c.Stream(context.Background(), sub.ID, func(ev Event) bool {
		names = append(names, ev.Name)
		if ev.Name == "result" || ev.Name == "error" {
			if err := json.Unmarshal(ev.Data, &final); err != nil {
				t.Fatalf("terminal event does not decode: %v", err)
			}
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 || names[0] != "status" {
		t.Errorf("event names = %v; want an initial status event", names)
	}
	if got := names[len(names)-1]; got != "result" {
		t.Errorf("terminal event = %q, want result", got)
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("terminal payload: %+v", final)
	}
	if !strings.Contains(string(final.Result.Metrics), metrics.SchemaV1) {
		t.Errorf("streamed result's metrics bundle does not declare %s", metrics.SchemaV1)
	}
}

// TestDrainStopsAdmission: draining flips readyz to 503 and rejects new
// submissions while the server finishes (here: has no) outstanding work.
func TestDrainStopsAdmission(t *testing.T) {
	s, c := newTestServer(t, Options{Jobs: 1})
	if !c.Healthy(time.Second) {
		t.Fatal("server not healthy before drain")
	}
	resp, err := http.Get(c.BaseURL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain = %d", resp.StatusCode)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain with no runs: %v", err)
	}
	resp, err = http.Get(c.BaseURL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	_, err = c.Submit(context.Background(), shortReq())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusServiceUnavailable {
		t.Errorf("submission while draining: err = %v, want 503", err)
	}
	// Liveness is unaffected — only readiness reports the drain.
	if !c.Healthy(time.Second) {
		t.Error("healthz failed during drain")
	}
}

// TestBadRequestsRejected covers the validation surface: malformed JSON,
// unknown fields, and spec-level validation all 400 without admitting.
func TestBadRequestsRejected(t *testing.T) {
	s, c := newTestServer(t, Options{Jobs: 1})
	for name, body := range map[string]string{
		"malformed":     `{"policy": `,
		"unknown-field": `{"policy":"buddy","workload":"TS","test":"app","blocksize":17}`,
		"bad-policy":    `{"policy":"slab","workload":"TS","test":"app"}`,
		"bad-workload":  `{"policy":"buddy","workload":"XX","test":"app"}`,
		"bad-degraded":  `{"policy":"buddy","workload":"TS","test":"app","degraded":true}`,
	} {
		resp, err := http.Post(c.BaseURL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
	if runs, _ := c.List(context.Background()); len(runs) != 0 {
		t.Errorf("invalid submissions were admitted: %d runs", len(runs))
	}
	_ = s
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func compactJSON(t *testing.T, raw []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compact: %v", err)
	}
	return buf.Bytes()
}
