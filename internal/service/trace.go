package service

import (
	"context"
	"net/http"
	"time"

	"rofs/internal/obs"
)

// reqInfoKey carries the request's *obs.ReqInfo through the context so
// handlers (and the executor paths they block on) can enrich the access
// record the trace middleware emits when the request finishes.
type reqInfoKey struct{}

// infoFrom returns the request's access-record accumulator, or nil when
// the handler runs outside the trace middleware (obs.ReqInfo methods
// drop updates on a nil receiver, so callers never need to check).
func infoFrom(ctx context.Context) *obs.ReqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*obs.ReqInfo)
	return ri
}

// statusWriter captures the response status code for the access record.
// It forwards Flush so SSE streaming through the middleware keeps
// working.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// trace wraps the routing table with per-request tracing: every request
// gets a trace ID — adopted from a well-formed X-Rofs-Trace-Id request
// header so clients can correlate, minted otherwise — echoed on the
// response header and stored in the context, and when the handler
// returns, exactly one structured access record goes to the configured
// access log. With no access log the middleware still assigns IDs (the
// response header and RunStatus.TraceID remain useful) and skips only
// the record.
func (s *Server) trace(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(obs.TraceHeader)
		if !obs.ValidTraceID(id) {
			id = obs.RandomTraceID()
		}
		w.Header().Set(obs.TraceHeader, id)

		ri := obs.NewReqInfo(obs.AccessRecord{
			TraceID: id,
			Client:  r.RemoteAddr,
			Method:  r.Method,
			Path:    r.URL.Path,
		})
		ctx := obs.WithTraceID(r.Context(), id)
		ctx = context.WithValue(ctx, reqInfoKey{}, ri)
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r.WithContext(ctx))

		rec := ri.Snapshot()
		rec.Status = sw.status
		if rec.Status == 0 {
			// Handler wrote nothing (e.g. an SSE stream torn down before
			// headers); net/http would have sent 200.
			rec.Status = http.StatusOK
		}
		rec.DurMS = obs.Since(start)
		s.access.Log(rec)
	})
}

// route tags the request's access record with the route name. instrument
// composes it with latency accounting; long-lived or scrape routes use
// it directly.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		infoFrom(r.Context()).Update(func(rec *obs.AccessRecord) {
			rec.Route = name
		})
		h(w, r)
	}
}
