package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rofs/internal/obs"
)

// Client is the Go view of a rofs-server: cmd/rofs-client is a thin shell
// around it, and the end-to-end tests drive the server through it.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

// APIError is a non-2xx response, carrying the decoded error body, the
// response's trace ID (the key into the server's access log), and — for
// 503s — the server's Retry-After hint.
type APIError struct {
	Code       int
	Message    string
	RetryAfter string
	TraceID    string
}

func (e *APIError) Error() string {
	msg := fmt.Sprintf("server returned %d: %s", e.Code, e.Message)
	if e.RetryAfter != "" {
		msg += " (Retry-After: " + e.RetryAfter + "s)"
	}
	if e.TraceID != "" {
		msg += " [trace " + e.TraceID + "]"
	}
	return msg
}

// RetryDelay converts the Retry-After hint to a wait, falling back to
// fallback when the header is absent or malformed. Only delay-seconds
// form is produced by rofs-server; HTTP-date hints fall back too.
func (e *APIError) RetryDelay(fallback time.Duration) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(e.RetryAfter)); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return fallback
}

// Retryable reports whether the error is a 503 — the one status the
// server uses for transient overload, and therefore the only one worth
// retrying.
func (e *APIError) Retryable() bool { return e.Code == http.StatusServiceUnavailable }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out (skipped
// when out is nil). Non-2xx responses come back as *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.BaseURL, "/")+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate a caller-chosen trace ID so client and server logs share
	// one handle; without one the server mints its own.
	if id := obs.TraceIDFrom(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e errorJSON
		json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return &APIError{Code: resp.StatusCode, Message: e.Error,
			RetryAfter: resp.Header.Get("Retry-After"),
			TraceID:    resp.Header.Get(obs.TraceHeader)}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit enqueues a run asynchronously and returns its handle.
func (c *Client) Submit(ctx context.Context, req RunRequest) (SubmitResponse, error) {
	var out SubmitResponse
	err := c.do(ctx, http.MethodPost, "/v1/runs", &req, &out)
	return out, err
}

// SubmitWait submits with ?wait=1: the call blocks until the run
// finishes (canceling ctx cancels the simulation server-side) and
// returns the final status.
func (c *Client) SubmitWait(ctx context.Context, req RunRequest) (RunStatus, error) {
	var out RunStatus
	err := c.do(ctx, http.MethodPost, "/v1/runs?wait=1", &req, &out)
	return out, err
}

// SubmitRetry is Submit with 503 backoff: overload rejections wait out
// the server's Retry-After hint (fallback one second) and resubmit, up
// to retries additional attempts. Other errors return immediately.
func (c *Client) SubmitRetry(ctx context.Context, req RunRequest, retries int) (SubmitResponse, error) {
	var out SubmitResponse
	err := c.retry(ctx, retries, func() error {
		var err error
		out, err = c.Submit(ctx, req)
		return err
	})
	return out, err
}

// SubmitWaitRetry is SubmitWait with the same 503 backoff as
// SubmitRetry.
func (c *Client) SubmitWaitRetry(ctx context.Context, req RunRequest, retries int) (RunStatus, error) {
	var out RunStatus
	err := c.retry(ctx, retries, func() error {
		var err error
		out, err = c.SubmitWait(ctx, req)
		return err
	})
	return out, err
}

// retry runs attempt up to 1+retries times, sleeping the server's
// Retry-After between 503s; ctx cancellation cuts the wait short.
func (c *Client) retry(ctx context.Context, retries int, attempt func() error) error {
	for try := 0; ; try++ {
		err := attempt()
		var apiErr *APIError
		if err == nil || try >= retries || !errors.As(err, &apiErr) || !apiErr.Retryable() {
			return err
		}
		t := time.NewTimer(apiErr.RetryDelay(time.Second))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return err
		}
	}
}

// Status fetches one run's document.
func (c *Client) Status(ctx context.Context, id string) (RunStatus, error) {
	var out RunStatus
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+id, nil, &out)
	return out, err
}

// List fetches every run the server remembers, in submission order.
func (c *Client) List(ctx context.Context) ([]RunStatus, error) {
	var out []RunStatus
	err := c.do(ctx, http.MethodGet, "/v1/runs", nil, &out)
	return out, err
}

// Cancel asks the server to stop a run.
func (c *Client) Cancel(ctx context.Context, id string) (RunStatus, error) {
	var out RunStatus
	err := c.do(ctx, http.MethodDelete, "/v1/runs/"+id, nil, &out)
	return out, err
}

// Stream attaches to a run's SSE feed, invoking fn per event until the
// stream closes or fn returns false.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(c.BaseURL, "/")+"/v1/runs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorJSON
		json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e)
		return &APIError{Code: resp.StatusCode, Message: e.Error}
	}
	return ReadSSE(resp.Body, fn)
}

// Wait follows the run's event stream to its terminal status — the
// push-based alternative to polling Status. The returned status carries
// the result (and metrics bundle) for done runs.
func (c *Client) Wait(ctx context.Context, id string) (RunStatus, error) {
	var final RunStatus
	var got bool
	err := c.Stream(ctx, id, func(ev Event) bool {
		if ev.Name != "result" && ev.Name != "error" {
			return true
		}
		got = json.Unmarshal(ev.Data, &final) == nil
		return false
	})
	if err != nil {
		return final, err
	}
	if !got {
		return final, fmt.Errorf("event stream for %s ended without a terminal event", id)
	}
	return final, nil
}

// Metrics scrapes the server's /metrics endpoint.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(c.BaseURL, "/")+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("metrics scrape: %s", resp.Status)
	}
	return string(b), nil
}

// Healthy reports whether the server answers /healthz within timeout —
// the startup probe scripts and tests poll.
func (c *Client) Healthy(timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(c.BaseURL, "/")+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
