package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is the Go view of a rofs-server: cmd/rofs-client is a thin shell
// around it, and the end-to-end tests drive the server through it.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

// APIError is a non-2xx response, carrying the decoded error body and —
// for 503s — the server's Retry-After hint.
type APIError struct {
	Code       int
	Message    string
	RetryAfter string
}

func (e *APIError) Error() string {
	msg := fmt.Sprintf("server returned %d: %s", e.Code, e.Message)
	if e.RetryAfter != "" {
		msg += " (Retry-After: " + e.RetryAfter + "s)"
	}
	return msg
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out (skipped
// when out is nil). Non-2xx responses come back as *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.BaseURL, "/")+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e errorJSON
		json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return &APIError{Code: resp.StatusCode, Message: e.Error, RetryAfter: resp.Header.Get("Retry-After")}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit enqueues a run asynchronously and returns its handle.
func (c *Client) Submit(ctx context.Context, req RunRequest) (SubmitResponse, error) {
	var out SubmitResponse
	err := c.do(ctx, http.MethodPost, "/v1/runs", &req, &out)
	return out, err
}

// SubmitWait submits with ?wait=1: the call blocks until the run
// finishes (canceling ctx cancels the simulation server-side) and
// returns the final status.
func (c *Client) SubmitWait(ctx context.Context, req RunRequest) (RunStatus, error) {
	var out RunStatus
	err := c.do(ctx, http.MethodPost, "/v1/runs?wait=1", &req, &out)
	return out, err
}

// Status fetches one run's document.
func (c *Client) Status(ctx context.Context, id string) (RunStatus, error) {
	var out RunStatus
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+id, nil, &out)
	return out, err
}

// List fetches every run the server remembers, in submission order.
func (c *Client) List(ctx context.Context) ([]RunStatus, error) {
	var out []RunStatus
	err := c.do(ctx, http.MethodGet, "/v1/runs", nil, &out)
	return out, err
}

// Cancel asks the server to stop a run.
func (c *Client) Cancel(ctx context.Context, id string) (RunStatus, error) {
	var out RunStatus
	err := c.do(ctx, http.MethodDelete, "/v1/runs/"+id, nil, &out)
	return out, err
}

// Stream attaches to a run's SSE feed, invoking fn per event until the
// stream closes or fn returns false.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(c.BaseURL, "/")+"/v1/runs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorJSON
		json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e)
		return &APIError{Code: resp.StatusCode, Message: e.Error}
	}
	return ReadSSE(resp.Body, fn)
}

// Wait follows the run's event stream to its terminal status — the
// push-based alternative to polling Status. The returned status carries
// the result (and metrics bundle) for done runs.
func (c *Client) Wait(ctx context.Context, id string) (RunStatus, error) {
	var final RunStatus
	var got bool
	err := c.Stream(ctx, id, func(ev Event) bool {
		if ev.Name != "result" && ev.Name != "error" {
			return true
		}
		got = json.Unmarshal(ev.Data, &final) == nil
		return false
	})
	if err != nil {
		return final, err
	}
	if !got {
		return final, fmt.Errorf("event stream for %s ended without a terminal event", id)
	}
	return final, nil
}

// Metrics scrapes the server's /metrics endpoint.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(c.BaseURL, "/")+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("metrics scrape: %s", resp.Status)
	}
	return string(b), nil
}

// Healthy reports whether the server answers /healthz within timeout —
// the startup probe scripts and tests poll.
func (c *Client) Healthy(timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(c.BaseURL, "/")+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
