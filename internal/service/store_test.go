package service

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"rofs/internal/ckpt"
	"rofs/internal/store"
)

func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestWarmRestartServesFromStore is the serving-layer acceptance
// property: a server restarted over the same store directory serves an
// identical submission from disk — disk-hit disposition, no simulation,
// byte-identical result payload and metrics bundle.
func TestWarmRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()

	st1 := openTestStore(t, dir)
	s1, c1 := newTestServer(t, Options{Jobs: 2, Store: st1})
	first, err := c1.SubmitWait(context.Background(), shortReq())
	if err != nil {
		t.Fatal(err)
	}
	if first.State != StateDone || first.Result == nil {
		t.Fatalf("first run: %+v", first)
	}
	if first.Result.Disposition != "simulated" {
		t.Fatalf("cold run disposition %q, want simulated", first.Result.Disposition)
	}
	s1.Close()
	st1.Close()

	// "Restart": a new server process over the same directory.
	log := &syncBuf{}
	st2 := openTestStore(t, dir)
	defer st2.Close()
	_, c2 := newTestServer(t, Options{Jobs: 2, Store: st2, AccessLog: log})
	second, err := c2.SubmitWait(context.Background(), shortReq())
	if err != nil {
		t.Fatal(err)
	}
	if second.State != StateDone || second.Result == nil {
		t.Fatalf("second run: %+v", second)
	}
	if !second.Result.DiskHit || second.Result.Disposition != "disk-hit" {
		t.Fatalf("restarted server served disposition %q (disk_hit=%t), want disk-hit",
			second.Result.Disposition, second.Result.DiskHit)
	}
	if second.Result.Cached {
		t.Error("disk hit misreported as a memory hit")
	}

	// The deterministic payload is byte-identical across the restart.
	for name, pair := range map[string][2]any{
		"perf":  {first.Result.Perf, second.Result.Perf},
		"stats": {first.Result.Stats, second.Result.Stats},
	} {
		if got, want := mustJSON(t, pair[1]), mustJSON(t, pair[0]); got != want {
			t.Errorf("%s diverged across restart:\nfirst:  %s\nsecond: %s", name, want, got)
		}
	}
	if len(second.Result.Metrics) == 0 {
		t.Fatal("disk-served result carries no metrics bundle")
	}
	if !bytes.Equal(compactJSON(t, first.Result.Metrics), compactJSON(t, second.Result.Metrics)) {
		t.Error("metrics bundle diverged across restart")
	}

	// A repeat on the warm server is now a memory hit.
	third, err := c2.SubmitWait(context.Background(), shortReq())
	if err != nil {
		t.Fatal(err)
	}
	if third.Result == nil || third.Result.Disposition != "memory-hit" {
		t.Fatalf("repeat disposition: %+v", third.Result)
	}

	// The access log records the disk-hit disposition.
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(strings.Join(log.lines(), "\n"), `"disposition":"disk-hit"`) {
		if time.Now().After(deadline) {
			t.Fatalf("access log never recorded the disk hit:\n%s", strings.Join(log.lines(), "\n"))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMetricsExposeStoreActivity: /metrics reflects the disk tier.
func TestMetricsExposeStoreActivity(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	defer st.Close()
	s, c := newTestServer(t, Options{Jobs: 1, Store: st})
	if _, err := c.SubmitWait(context.Background(), shortReq()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ss := st.Stats()
	s.obs.write(&buf, s.pool.Stats(), &ss)
	text := buf.String()
	for series, want := range map[string]string{
		"store_puts":         "1",
		"store_records":      "1",
		"pool_runs_disk_hit": "0",
		"pool_cache_entries": "1",
	} {
		if got := promValue(text, series); got != want {
			t.Errorf("%s = %q, want %q\n%s", series, got, want, grepLines(text, series))
		}
	}
	for _, series := range []string{"store_live_bytes", "pool_cache_bytes"} {
		if got := promValue(text, series); got == "" || got == "0" {
			t.Errorf("%s = %q, want nonzero", series, got)
		}
	}
}

// promValue extracts one series' value from a text exposition (ignoring
// the label set between name and value).
func promValue(text, series string) string {
	series = "rofs_" + series
	for _, ln := range strings.Split(text, "\n") {
		if !strings.HasPrefix(ln, series) {
			continue
		}
		rest := ln[len(series):]
		if !strings.HasPrefix(rest, "{") && !strings.HasPrefix(rest, " ") {
			continue // a longer name sharing the prefix
		}
		if i := strings.LastIndexByte(rest, ' '); i >= 0 {
			return rest[i+1:]
		}
	}
	return ""
}

// TestCheckpointRequiresManager: arming checkpoint_every_ms against a
// server without a checkpoint directory is a 400, not a silent no-op.
func TestCheckpointRequiresManager(t *testing.T) {
	_, c := newTestServer(t, Options{Jobs: 1})
	req := shortReq()
	req.CheckpointEveryMS = 5_000
	_, err := c.SubmitWait(context.Background(), req)
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("err = %v, want a checkpoint-directory rejection", err)
	}
}

// TestCheckpointedRunOverHTTP: an armed run on a checkpoint-enabled
// server completes, reports checkpoint activity on /metrics, and leaves
// no stale state behind.
func TestCheckpointedRunOverHTTP(t *testing.T) {
	mgr, err := ckpt.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, c := newTestServer(t, Options{Jobs: 1, Ckpt: mgr})
	req := shortReq()
	req.CheckpointEveryMS = 5_000
	st, err := c.SubmitWait(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Result == nil || st.Result.Perf == nil {
		t.Fatalf("armed run: %+v", st)
	}
	var buf bytes.Buffer
	s.obs.write(&buf, s.pool.Stats(), nil)
	text := buf.String()
	if got := promValue(text, "service_checkpoints"); got == "" || got == "0" {
		t.Errorf("service_checkpoints = %q, want >= 1:\n%s", got, grepLines(text, "service_checkpoint"))
	}
	if got := promValue(text, "service_checkpoint_errors"); got != "0" {
		t.Errorf("service_checkpoint_errors = %q, want 0", got)
	}
}

// grepLines returns the lines of s containing sub, for focused failures.
func grepLines(s, sub string) string {
	var out []string
	for _, ln := range strings.Split(s, "\n") {
		if strings.Contains(ln, sub) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}
