package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// writeSSE emits one server-sent event with a JSON payload and flushes
// it down the wire. json.Marshal escapes newlines, so the payload always
// fits one data: line.
func writeSSE(w io.Writer, f http.Flusher, event string, data any) error {
	b, err := json.Marshal(data)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b); err != nil {
		return err
	}
	f.Flush()
	return nil
}

// Event is one decoded server-sent event, as produced by ReadSSE.
type Event struct {
	Name string
	Data []byte
}

// ReadSSE decodes a text/event-stream body, calling fn for each event
// until the stream ends, fn returns false, or a read fails. It exists
// for rofs-client and the end-to-end tests; it implements the subset of
// the SSE grammar the server emits (event: + single data: line).
func ReadSSE(r io.Reader, fn func(ev Event) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024) // metrics bundles are large
	var ev Event
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.Name != "" || len(ev.Data) > 0 {
				if !fn(ev) {
					return nil
				}
			}
			ev = Event{}
		case strings.HasPrefix(line, "event:"):
			ev.Name = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			ev.Data = append(ev.Data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		}
	}
	return sc.Err()
}
