package service

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"

	"rofs/internal/fault"
	"rofs/internal/metrics"
	"rofs/internal/runner"
)

// faultReq is shortReq on a four-drive RAID-5 array with a full fault
// scenario: a failure early in the run, transient errors, and a hot-spare
// rebuild in large chunks.
func faultReq() RunRequest {
	req := shortReq()
	req.Disks = 4
	req.Layout = "raid5"
	req.Faults = &fault.Scenario{
		FailAtMS:          3_000,
		FailDrive:         1,
		TransientProb:     0.001,
		Rebuild:           true,
		RebuildChunkBytes: 4 << 20,
	}
	return req
}

// TestFaultRunOverHTTP extends the service's byte-identical contract to
// fault scenarios: a faulted run served over HTTP matches a direct pool
// run of the same Spec — including the fault report — and the metrics
// bundle carries the fault series.
func TestFaultRunOverHTTP(t *testing.T) {
	_, c := newTestServer(t, Options{Jobs: 2})

	req := faultReq()
	st, err := c.SubmitWait(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Result == nil || st.Result.Perf == nil {
		t.Fatalf("unexpected terminal status: %+v", st)
	}
	fr := st.Result.Perf.Faults
	if fr == nil {
		t.Fatal("faulted run returned no fault report")
	}
	if fr.DriveFailures != 1 || fr.FirstFailureMS != 3_000 {
		t.Errorf("fault report: %d failures, first at %g ms; want 1 at 3000", fr.DriveFailures, fr.FirstFailureMS)
	}
	if fr.DegradedMS <= 0 {
		t.Errorf("no degraded time in report: %+v", fr)
	}

	sp, err := req.Spec()
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.New(1)
	pool.MetricsIntervalMS = metrics.DefaultIntervalMS
	res, err := pool.Run(context.Background(), []runner.Spec{sp})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := newRunResult(res[0])
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, st.Result.Perf), mustJSON(t, direct.Perf); got != want {
		t.Errorf("faulted perf result diverged:\nhttp:   %s\ndirect: %s", got, want)
	}
	if got, want := compactJSON(t, st.Result.Metrics), compactJSON(t, direct.Metrics); !bytes.Equal(got, want) {
		t.Errorf("faulted metrics bundles diverged:\nhttp:   %s\ndirect: %s", got, want)
	}
	// The rofs-metrics/v1 bundle must carry the fault series.
	for _, series := range []string{"fault.degraded", "fault.drive_failures", "fs.retries", "disk.transient_errors"} {
		if !strings.Contains(string(st.Result.Metrics), series) {
			t.Errorf("metrics bundle missing %q", series)
		}
	}
}

// TestFaultRequestValidation covers the fault-specific 400s: invalid
// scenarios and drive failures without RAID-5.
func TestFaultRequestValidation(t *testing.T) {
	_, c := newTestServer(t, Options{Jobs: 1})
	for name, body := range map[string]string{
		"bad-probability": `{"policy":"buddy","workload":"TS","test":"app","faults":{"transient_prob":2}}`,
		"needs-raid5":     `{"policy":"buddy","workload":"TS","test":"app","faults":{"fail_at_ms":1000}}`,
		"rebuild-no-fail": `{"policy":"buddy","workload":"TS","test":"app","layout":"raid5","disks":4,"faults":{"transient_prob":0.01,"rebuild":true}}`,
	} {
		resp, err := http.Post(c.BaseURL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}
