package service

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"rofs/internal/core"
	"rofs/internal/metrics"
	"rofs/internal/runner"
)

// run is one submitted simulation's server-side record. Mutable fields
// are guarded by the owning Server's mu; done closes exactly once when
// the run reaches a terminal state, which is how SSE streams and ?wait=1
// submissions learn the result without polling.
type run struct {
	id   string
	spec runner.Spec

	state   string
	err     string
	result  *RunResult
	seq     int // admission order, for queue positions
	started time.Time

	// Lifecycle spans and dispositions, filled as the run progresses and
	// read by the access-log record of the request that submitted it.
	queueWait   time.Duration // admission queue → worker slot
	runWall     time.Duration // worker slot → terminal state
	encodeMS    float64       // result encoding
	cached      bool
	coalesced   bool
	diskHit     bool
	disposition string
	followers   int64

	// cancel aborts the run's context: queued runs fail admission,
	// in-flight simulations stop at the next Config.Cancel poll.
	cancel context.CancelFunc
	done   chan struct{}
}

// status renders the run's public document. Caller holds s.mu.
func (r *run) status(queuePos int) RunStatus {
	st := RunStatus{ID: r.id, Label: r.spec.Label(), State: r.state,
		TraceID: r.spec.TraceID, Error: r.err}
	if r.state == StateQueued {
		st.Position = queuePos
	}
	if r.state == StateDone {
		st.Result = r.result
	}
	return st
}

// disposition names how a pool Result was served, for the access log
// and the result's serving metadata.
func disposition(res runner.Result) string {
	switch {
	case res.DiskHit:
		return "disk-hit"
	case res.Coalesced:
		return "coalesced"
	case res.Cached:
		return "memory-hit"
	default:
		return "simulated"
	}
}

// newRunResult converts a pool Result into the wire payload, rendering
// the metrics registry (if any) as its canonical JSON bundle. It is the
// single encoding path for HTTP responses, SSE events, and the
// byte-identical end-to-end test. Disk-served results carry the original
// run's bundle bytes verbatim on MetricsJSON — the registry belongs to
// the process that simulated — so live and disk paths encode identically.
func newRunResult(res runner.Result) (*RunResult, error) {
	out := &RunResult{
		Test:        res.Spec.Kind.String(),
		Stats:       res.Outcome.Stats,
		WallSeconds: res.Wall.Seconds(),
		Cached:      res.Cached,
		Coalesced:   res.Coalesced,
		DiskHit:     res.DiskHit,
		Disposition: disposition(res),
		Followers:   res.Followers,
	}
	switch res.Spec.Kind {
	case core.Allocation, core.AllocationRealloc:
		frag := res.Outcome.Frag
		out.Frag = &frag
	case core.Aging:
		aging := res.Outcome.Aging
		out.Aging = &aging
	default:
		perf := res.Outcome.Perf
		out.Perf = &perf
	}
	switch {
	case len(res.MetricsJSON) > 0:
		out.Metrics = res.MetricsJSON
	case res.Outcome.Metrics != nil:
		var buf bytes.Buffer
		if err := res.Outcome.Metrics.Write(&buf, metrics.JSON); err != nil {
			return nil, fmt.Errorf("encode metrics bundle: %w", err)
		}
		out.Metrics = buf.Bytes()
	}
	return out, nil
}
