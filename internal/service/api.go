// Package service turns the simulator into long-running infrastructure: a
// JSON-over-HTTP server that maps request bodies onto runner.Spec /
// runner.Pool. Submissions pass a bounded admission queue (overload is a
// 503 with Retry-After, never an unbounded backlog), per-request deadlines
// and client disconnects propagate to Config.Cancel, identical concurrent
// Specs coalesce on the pool's Spec.Key() cache, and results — including
// the final rofs-metrics/v1 bundle — stream back over SSE.
//
// Endpoints:
//
//	POST   /v1/runs              submit a run (?wait=1 blocks for the result)
//	GET    /v1/runs              list runs
//	GET    /v1/runs/{id}         one run's status + result
//	DELETE /v1/runs/{id}         cancel a run (also POST /v1/runs/{id}/cancel)
//	GET    /v1/runs/{id}/events  SSE: status heartbeats, then result/error
//	GET    /metrics              server + pool gauges, counters, histograms
//	GET    /healthz              process liveness
//	GET    /readyz               admission readiness (503 while draining)
package service

import (
	"encoding/json"
	"fmt"
	"strings"

	"rofs/internal/alloc/extent"
	"rofs/internal/cluster"
	"rofs/internal/core"
	"rofs/internal/disk"
	"rofs/internal/experiments"
	"rofs/internal/fault"
	"rofs/internal/runner"
	"rofs/internal/units"
	"rofs/internal/workload"
)

// RunRequest is the POST /v1/runs body. It speaks the same vocabulary as
// the CLIs (rofsim's flags, one field per knob); zero values take the
// CLI defaults. Sizes are bytes; the client translates "4K"-style flags.
type RunRequest struct {
	Policy   string `json:"policy"`          // buddy | rbuddy | extent | fixed
	Workload string `json:"workload"`        // TS | TP | SC
	Test     string `json:"test"`            // alloc | app | seq | aging
	Scale    string `json:"scale,omitempty"` // full | bench (default bench)
	Seed     int64  `json:"seed,omitempty"`  // default 42
	Name     string `json:"name,omitempty"`  // presentation-only label

	// rbuddy knobs (defaults: 5 sizes, grow 1, clustered).
	Sizes     int     `json:"sizes,omitempty"`
	Grow      float64 `json:"grow,omitempty"`
	Clustered *bool   `json:"clustered,omitempty"`

	// extent knobs (defaults: first fit, 3 ranges).
	Fit    string `json:"fit,omitempty"`
	Ranges int    `json:"ranges,omitempty"`

	// fixed knob (default 4K).
	BlockBytes int64 `json:"block_bytes,omitempty"`

	// Disk overrides.
	Disks       int    `json:"disks,omitempty"`
	Layout      string `json:"layout,omitempty"` // striped | mirrored | raid5 | parity
	StripeBytes int64  `json:"stripe_bytes,omitempty"`
	Degraded    bool   `json:"degraded,omitempty"`

	// Faults declares the run's fault scenario (see internal/fault); nil
	// or a zero scenario runs fault-free. Drive failures require the
	// raid5 layout.
	Faults *fault.Scenario `json:"faults,omitempty"`

	// Arrivals attaches an open-loop arrival process (Poisson rate or
	// timestamped trace, see internal/workload) to the workload; nil keeps
	// the closed-loop user sessions. Application test only.
	Arrivals *workload.Arrivals `json:"arrivals,omitempty"`

	// Compaction arms the log-structured overlay: foreground segment
	// flushes plus background merges through the same drive queues (see
	// workload.Compaction). Application test only.
	Compaction *workload.Compaction `json:"compaction,omitempty"`

	// Cluster runs the request as an N-instance fleet through the cluster
	// Deployment (see internal/cluster); nil or a zero config runs a plain
	// single-instance simulation. Application test only. The embedded
	// "par" (worker goroutines) and "sync_ms" (lookahead window override)
	// fields flow through with the rest of the config and are validated
	// here; "par" is an execution knob — any value returns byte-identical
	// results and shares one cache entry with the serial run.
	Cluster *cluster.Config `json:"cluster,omitempty"`

	// MaxSimMS overrides the scale's simulated-time cap.
	MaxSimMS float64 `json:"max_sim_ms,omitempty"`

	// StableWindows overrides the stabilization criterion for throughput
	// runs — consecutive in-tolerance windows before the run stops early
	// (default 3; raise it to force runs to the simulated-time cap).
	StableWindows int `json:"stable_windows,omitempty"`

	// TimeoutMS bounds the run's wall time; past it the simulation is
	// canceled and the run fails. Zero means the server's default.
	TimeoutMS float64 `json:"timeout_ms,omitempty"`

	// CheckpointEveryMS arms verified checkpoint/resume on the run (see
	// internal/ckpt): boundary states are persisted every so many
	// simulated milliseconds, and an identical resubmission after a drain
	// or crash resumes from the last saved boundary. The grid joins the
	// Spec's canonical key, so an armed run is a distinct deterministic
	// variant. App and seq tests only; requires a server started with a
	// checkpoint directory (400 otherwise).
	CheckpointEveryMS float64 `json:"checkpoint_every_ms,omitempty"`
}

// Spec validates the request and assembles the runner.Spec it declares,
// reusing the experiments.Scale plumbing so a request and the equivalent
// rofsim invocation build byte-identical configurations (and therefore
// identical Spec cache keys).
func (req *RunRequest) Spec() (runner.Spec, error) {
	var zero runner.Spec

	var sc experiments.Scale
	switch strings.ToLower(req.Scale) {
	case "", "bench":
		sc = experiments.BenchScale()
	case "full":
		sc = experiments.FullScale()
	default:
		return zero, fmt.Errorf("unknown scale %q (want full or bench)", req.Scale)
	}
	if req.Seed != 0 {
		sc.Seed = req.Seed
	}
	if req.MaxSimMS > 0 {
		sc.MaxSimMS = req.MaxSimMS
	}
	if req.Disks > 0 {
		sc.Disk.NDisks = req.Disks
	}
	switch strings.ToLower(req.Layout) {
	case "", "striped":
		sc.Disk.Layout = disk.Striped
	case "mirrored":
		sc.Disk.Layout = disk.Mirrored
	case "raid5":
		sc.Disk.Layout = disk.RAID5
	case "parity":
		sc.Disk.Layout = disk.ParityStriped
	default:
		return zero, fmt.Errorf("unknown layout %q (want striped, mirrored, raid5, or parity)", req.Layout)
	}
	if req.StripeBytes > 0 {
		sc.Disk.StripeUnitBytes = req.StripeBytes
	}
	if req.Degraded && sc.Disk.Layout != disk.RAID5 {
		return zero, fmt.Errorf("degraded mode requires the raid5 layout")
	}
	var faults fault.Scenario
	if req.Faults != nil {
		faults = *req.Faults
		if err := faults.Validate(); err != nil {
			return zero, err
		}
		if faults.FailsDrive() && sc.Disk.Layout != disk.RAID5 {
			return zero, fmt.Errorf("drive-failure faults require the raid5 layout")
		}
	}

	wl, err := sc.Workload(req.Workload)
	if err != nil {
		return zero, err
	}
	if req.Arrivals != nil {
		if req.Arrivals.TraceFile != "" {
			// The server never reads paths named by clients; rofs-client
			// -arrival-trace loads the file and inlines the operations.
			return zero, fmt.Errorf("arrivals trace_file is not accepted over HTTP; send the trace inline (rofs-client -arrival-trace does this)")
		}
		wl.Arrivals = req.Arrivals
		if err := wl.Validate(); err != nil {
			return zero, err
		}
		if req.Test != "app" {
			return zero, fmt.Errorf("open-loop arrivals require the app test, not %q", req.Test)
		}
	}
	if req.Compaction != nil {
		wl.Compact = req.Compaction
		if err := wl.Validate(); err != nil {
			return zero, err
		}
		if req.Test != "app" {
			return zero, fmt.Errorf("the compaction overlay requires the app test, not %q", req.Test)
		}
	}
	var cl cluster.Config
	if req.Cluster != nil {
		cl = *req.Cluster
		if err := cl.Validate(); err != nil {
			return zero, err
		}
		if cl.Enabled() && req.Test != "app" {
			return zero, fmt.Errorf("cluster mode requires the app test, not %q", req.Test)
		}
	}

	var kind core.TestKind
	switch req.Test {
	case "alloc":
		kind = core.Allocation
	case "app":
		kind = core.Application
	case "seq":
		kind = core.Sequential
	case "aging":
		kind = core.Aging
	default:
		return zero, fmt.Errorf("unknown test %q (want alloc, app, seq, or aging)", req.Test)
	}

	var policy core.PolicySpec
	switch req.Policy {
	case "buddy":
		policy = core.Buddy()
	case "rbuddy":
		sizes, grow, clustered := req.Sizes, req.Grow, true
		if sizes == 0 {
			sizes = 5
		}
		if sizes < 2 || sizes > 5 {
			return zero, fmt.Errorf("rbuddy wants 2-5 block sizes, got %d", sizes)
		}
		if grow == 0 {
			grow = 1
		}
		if req.Clustered != nil {
			clustered = *req.Clustered
		}
		policy = core.RBuddy(sizes, grow, clustered)
	case "extent":
		fit := extent.FirstFit
		switch strings.ToLower(req.Fit) {
		case "", "first":
		case "best":
			fit = extent.BestFit
		default:
			return zero, fmt.Errorf("unknown fit %q (want first or best)", req.Fit)
		}
		n := req.Ranges
		if n == 0 {
			n = 3
		}
		ranges, err := sc.ExtentRanges(wl.Name, n)
		if err != nil {
			return zero, err
		}
		policy = core.Extent(fit, ranges)
	case "fixed":
		block := req.BlockBytes
		if block == 0 {
			block = 4 * units.KB
		}
		policy = core.Fixed(block)
	default:
		return zero, fmt.Errorf("unknown policy %q (want buddy, rbuddy, extent, or fixed)", req.Policy)
	}

	if req.StableWindows < 0 {
		return zero, fmt.Errorf("stable_windows must be non-negative, got %d", req.StableWindows)
	}
	if req.CheckpointEveryMS < 0 {
		return zero, fmt.Errorf("checkpoint_every_ms must be non-negative, got %g", req.CheckpointEveryMS)
	}
	if req.CheckpointEveryMS > 0 && kind != core.Application && kind != core.Sequential {
		return zero, fmt.Errorf("checkpointing requires the app or seq test, not %q", req.Test)
	}
	sp := sc.Spec(policy, wl, kind)
	sp.Name = req.Name
	sp.StableWindows = req.StableWindows
	sp.Degraded = req.Degraded
	sp.Faults = faults
	sp.Cluster = cl
	sp.CheckpointEveryMS = req.CheckpointEveryMS
	return sp, nil
}

// Run states, in lifecycle order. Done, Failed, and Canceled are terminal.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// RunStatus is the GET /v1/runs/{id} document (and the list entries).
type RunStatus struct {
	ID    string `json:"id"`
	Label string `json:"label"`
	State string `json:"state"`
	// TraceID is the request trace that submitted the run — the handle
	// that links this document to the server's access-log record and the
	// X-Rofs-Trace-Id response header.
	TraceID string `json:"trace_id,omitempty"`
	// Error carries the failure or cancellation message in terminal
	// states.
	Error string `json:"error,omitempty"`
	// Result is present once State is done.
	Result *RunResult `json:"result,omitempty"`
	// Position is the run's place in the admission queue while queued
	// (1 = next to start).
	Position int `json:"position,omitempty"`
}

// RunResult is the deterministic payload of a finished run plus its
// serving metadata. Frag/Perf/Stats/Metrics depend only on the Spec (the
// byte-identical contract proved by the service's end-to-end test);
// WallSeconds and Cached describe how this particular submission was
// served.
type RunResult struct {
	Test string `json:"test"`
	// Exactly one of Frag, Perf, and Aging is set, selected by Test.
	Frag  *core.FragResult  `json:"frag,omitempty"`
	Perf  *core.PerfResult  `json:"perf,omitempty"`
	Aging *core.AgingResult `json:"aging,omitempty"`
	Stats core.RunStats     `json:"stats"`
	// Metrics is the run's rofs-metrics/v1 bundle (absent when the server
	// runs with per-run metrics disabled).
	Metrics json.RawMessage `json:"metrics,omitempty"`

	WallSeconds float64 `json:"wall_seconds"`
	Cached      bool    `json:"cached"`
	// Coalesced refines Cached: this submission arrived while an equal
	// Spec was still simulating and shared that run's result.
	Coalesced bool `json:"coalesced,omitempty"`
	// DiskHit reports the result came from the server's disk result store
	// — computed by a prior process, served without simulating.
	DiskHit bool `json:"disk_hit,omitempty"`
	// Disposition names how this submission was served: "simulated",
	// "memory-hit", "coalesced", or "disk-hit". Serving metadata, like
	// WallSeconds — not part of the deterministic payload.
	Disposition string `json:"disposition,omitempty"`
	// Followers counts duplicate submissions this run's result also
	// served (single-flight coalescing), as of when the result was
	// produced.
	Followers int64 `json:"followers,omitempty"`
}

// SubmitResponse is the POST /v1/runs (async) body.
type SubmitResponse struct {
	ID string `json:"id"`
	// StatusURL and EventsURL are the polling and streaming views.
	StatusURL string `json:"status_url"`
	EventsURL string `json:"events_url"`
}

// errorJSON is every non-2xx body.
type errorJSON struct {
	Error string `json:"error"`
}
