package extent

import (
	"testing"
	"testing/quick"

	"rofs/internal/alloc"
	"rofs/internal/sim"
)

// TestQuickExtentInvariants drives the extent allocator with arbitrary
// grow/truncate scripts via testing/quick and checks, after every
// operation: space conservation against the free map, no overlapping
// extents, and that truncation never cuts below its target (extents are
// the unit of deallocation, so it can only round up). Both fits run the
// same scripts.
func TestQuickExtentInvariants(t *testing.T) {
	const total = 1 << 14
	for _, fit := range []Fit{FirstFit, BestFit} {
		prop := func(script []uint16, seed int64) bool {
			p, err := New(Config{
				TotalUnits: total,
				Fit:        fit,
				RangeMeans: []int64{8, 64, 256},
				RNG:        sim.NewRNG(seed),
			})
			if err != nil {
				return false
			}
			var files []*file
			for _, op := range script {
				arg := int64(op&0x3FF) + 1
				switch {
				case op&0x8000 == 0 || len(files) == 0: // grow (new or existing)
					var f *file
					if len(files) > 0 && op&0x4000 != 0 {
						f = files[int(op>>8)%len(files)]
					} else {
						// The size hint selects the extent-size range.
						f = p.NewFile(arg * int64(op%3+1)).(*file)
						files = append(files, f)
					}
					if _, err := f.Grow(arg); err != nil && err != alloc.ErrNoSpace {
						return false
					}
				default: // truncate
					f := files[int(op>>8)%len(files)]
					before := f.AllocatedUnits()
					target := arg % (before + 1)
					f.TruncateTo(target)
					if got := f.AllocatedUnits(); got < target || got > before {
						return false
					}
				}
				var used int64
				for _, f := range files {
					used += f.AllocatedUnits()
				}
				if used+p.FreeUnits() != total {
					return false
				}
			}
			var all []alloc.Extent
			for _, f := range files {
				all = append(all, f.pieces...)
			}
			return alloc.Validate(all, total) == nil
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("%v fit: %v", fit, err)
		}
	}
}
