package extent

import (
	"math/rand"
	"testing"

	"rofs/internal/alloc"
	"rofs/internal/sim"
	"rofs/internal/units"
)

func newPolicy(t *testing.T, total int64, fit Fit, ranges ...int64) *Policy {
	t.Helper()
	p, err := New(Config{
		TotalUnits: total,
		Fit:        fit,
		RangeMeans: ranges,
		RNG:        sim.NewRNG(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	bad := []Config{
		{TotalUnits: 0, RangeMeans: []int64{4}, RNG: rng},
		{TotalUnits: 100, RangeMeans: nil, RNG: rng},
		{TotalUnits: 100, RangeMeans: []int64{8, 4}, RNG: rng},
		{TotalUnits: 100, RangeMeans: []int64{0}, RNG: rng},
		{TotalUnits: 100, RangeMeans: []int64{4}, RNG: nil},
		{TotalUnits: 100, RangeMeans: []int64{4}, DevFraction: 2, RNG: rng},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

func TestRangeSelectionRule(t *testing.T) {
	// Largest mean <= hint; smallest when none qualifies (DESIGN.md §4).
	p := newPolicy(t, 1<<30, FirstFit, 1, 4, 8, 1024)
	cases := []struct{ hint, want int64 }{
		{0, 1}, // below all ranges: smallest
		{1, 1},
		{3, 1},
		{4, 4},
		{7, 4},
		{16, 8},
		{1024, 1024},
		{1 << 20, 1024},
	}
	for _, c := range cases {
		if got := p.rangeFor(c.hint); got != c.want {
			t.Errorf("rangeFor(%d) = %d, want %d", c.hint, got, c.want)
		}
	}
}

func TestExtentSizesFollowRange(t *testing.T) {
	p := newPolicy(t, 1<<30, FirstFit, 512)
	f := p.NewFile(512).(*file)
	// The creating Grow is cut to fit; incremental growth draws whole
	// extents from the range — those are what we sample.
	if _, err := f.Grow(10); err != nil {
		t.Fatal(err)
	}
	var sum float64
	n := 0
	for i := 0; i < 200; i++ {
		added, err := f.Grow(1)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range added {
			sum += float64(e.Len)
			n++
			// ±5 sigma around the mean.
			if e.Len < 512-5*52 || e.Len > 512+5*52 {
				t.Fatalf("extent size %d wildly off the 512±51 range", e.Len)
			}
		}
	}
	mean := sum / float64(n)
	if mean < 490 || mean > 535 {
		t.Fatalf("mean extent size %g, want ≈512", mean)
	}
}

func TestFirstFitPrefersLowAddresses(t *testing.T) {
	p := newPolicy(t, 10000, FirstFit, 100)
	a := p.NewFile(100)
	if _, err := a.Grow(300); err != nil {
		t.Fatal(err)
	}
	b := p.NewFile(100)
	if _, err := b.Grow(300); err != nil {
		t.Fatal(err)
	}
	// Free the first file: its low addresses become the first fit again.
	a.TruncateTo(0)
	c := p.NewFile(100)
	added, err := c.Grow(100)
	if err != nil {
		t.Fatal(err)
	}
	if added[0].Start != 0 {
		t.Fatalf("first-fit reallocated at %d, want 0", added[0].Start)
	}
}

func TestBestFitPicksTightHole(t *testing.T) {
	p := newPolicy(t, 100000, BestFit, 10)
	// Carve the space into holes of decreasing tightness by hand.
	p.free.Alloc(0, 100000)
	p.free.Insert(500, 11)  // tight hole
	p.free.Insert(2000, 50) // loose hole
	f := p.NewFile(10).(*file)
	// Force a deterministic draw by using a tiny deviation policy: draw
	// sizes cluster at 10; the 11-unit hole is best fit for any <=11 draw.
	added, err := f.Grow(5)
	if err != nil {
		t.Fatal(err)
	}
	if added[0].Start != 500 {
		t.Fatalf("best-fit chose %d, want the tight hole at 500", added[0].Start)
	}
}

func TestGrowFailureRollsBack(t *testing.T) {
	p := newPolicy(t, 1000, FirstFit, 400)
	f := p.NewFile(400)
	// First extent (~400) fits; the request for ~1200 total cannot be
	// completed and must roll back fully.
	if _, err := f.Grow(1200); err != alloc.ErrNoSpace {
		t.Fatalf("Grow = %v, want ErrNoSpace", err)
	}
	if f.AllocatedUnits() != 0 || p.FreeUnits() != 1000 {
		t.Fatalf("rollback incomplete: allocated=%d free=%d",
			f.AllocatedUnits(), p.FreeUnits())
	}
	if p.FreeRuns() != 1 {
		t.Fatalf("rollback left %d free runs, want 1 coalesced", p.FreeRuns())
	}
}

func TestTruncateFreesWholeExtentsOnly(t *testing.T) {
	p := newPolicy(t, 100000, FirstFit, 1000)
	f := p.NewFile(1000).(*file)
	if _, err := f.Grow(3000); err != nil { // ~3 extents, last cut to fit
		t.Fatal(err)
	}
	total := f.AllocatedUnits()
	pieces := f.ExtentCount()
	// A trim smaller than the last extent frees nothing: extents are the
	// unit of deallocation.
	f.TruncateTo(total - 100)
	if f.AllocatedUnits() != total || f.ExtentCount() != pieces {
		t.Fatalf("sub-extent truncate freed space: %d -> %d", total, f.AllocatedUnits())
	}
	// Trimming past the last extent's start frees exactly that extent.
	lastLen := f.pieces[len(f.pieces)-1].Len
	f.TruncateTo(total - lastLen)
	if f.AllocatedUnits() != total-lastLen || f.ExtentCount() != pieces-1 {
		t.Fatalf("whole-extent truncate wrong: allocated=%d extents=%d",
			f.AllocatedUnits(), f.ExtentCount())
	}
	f.TruncateTo(0)
	if f.AllocatedUnits() != 0 || f.ExtentCount() != 0 {
		t.Fatal("TruncateTo(0) left allocation")
	}
	if p.FreeUnits() != 100000 || p.FreeRuns() != 1 {
		t.Fatalf("space not fully restored: free=%d runs=%d", p.FreeUnits(), p.FreeRuns())
	}
}

func TestSizedCreationCutsFinalExtent(t *testing.T) {
	p := newPolicy(t, 1<<20, FirstFit, 1000)
	f := p.NewFile(1000)
	if _, err := f.Grow(2500); err != nil { // creation: exact fit
		t.Fatal(err)
	}
	if f.AllocatedUnits() != 2500 {
		t.Fatalf("sized creation allocated %d, want exactly 2500", f.AllocatedUnits())
	}
	// Subsequent growth preallocates whole drawn extents.
	if _, err := f.Grow(1); err != nil {
		t.Fatal(err)
	}
	if f.AllocatedUnits() < 2500+800 { // a whole ~1000-unit extent
		t.Fatalf("incremental growth allocated only %d", f.AllocatedUnits()-2500)
	}
}

func TestExtentCountVsMergedView(t *testing.T) {
	p := newPolicy(t, 1<<20, FirstFit, 100)
	f := p.NewFile(100).(*file)
	for i := 0; i < 5; i++ {
		if _, err := f.Grow(1); err != nil {
			t.Fatal(err)
		}
	}
	// First-fit on an empty disk allocates back to back: one merged extent
	// for I/O, but five logical extents for Table 4.
	if f.ExtentCount() != 5 {
		t.Fatalf("ExtentCount = %d, want 5", f.ExtentCount())
	}
	if len(f.Extents()) != 1 {
		t.Fatalf("merged extents = %d, want 1 (back-to-back first fit)", len(f.Extents()))
	}
	if alloc.Sum(f.Extents()) != f.AllocatedUnits() {
		t.Fatal("merged view loses units")
	}
}

func TestRandomizedConservation(t *testing.T) {
	const total = 200000
	p := newPolicy(t, total, FirstFit, 64, 512)
	rng := rand.New(rand.NewSource(9))
	type entry struct{ f alloc.File }
	var files []entry
	for step := 0; step < 4000; step++ {
		switch rng.Intn(3) {
		case 0, 1:
			var f alloc.File
			if len(files) > 0 && rng.Intn(2) == 0 {
				f = files[rng.Intn(len(files))].f
			} else {
				hint := int64(64)
				if rng.Intn(2) == 0 {
					hint = 512
				}
				f = p.NewFile(hint)
				files = append(files, entry{f})
			}
			if _, err := f.Grow(int64(rng.Intn(400) + 1)); err != nil && err != alloc.ErrNoSpace {
				t.Fatal(err)
			}
		case 2:
			if len(files) > 0 {
				f := files[rng.Intn(len(files))].f
				f.TruncateTo(rng.Int63n(f.AllocatedUnits() + 1))
			}
		}
		if step%250 == 0 {
			var used int64
			var all []alloc.Extent
			for _, e := range files {
				used += e.f.AllocatedUnits()
				all = append(all, e.f.Extents()...)
			}
			if used+p.FreeUnits() != total {
				t.Fatalf("step %d: used %d + free %d != %d", step, used, p.FreeUnits(), total)
			}
			if err := alloc.Validate(all, total); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
}

func TestNameAndSizes(t *testing.T) {
	p := newPolicy(t, units.MB, BestFit, 4, 8, 16)
	if p.Name() != "extent(best-fit,3 ranges)" {
		t.Fatalf("Name = %q", p.Name())
	}
	if p.TotalUnits() != units.MB {
		t.Fatal("TotalUnits wrong")
	}
}
