// Package extent implements the extent-based allocation policy of §4.3,
// after the XPRS design [STON89]: every file has an extent size, each time
// the file grows past its allocation another extent-sized chunk is
// allocated, an extent "may begin at any address", and freed extents
// coalesce with free neighbours.
//
// The policy is parameterized by the fit discipline (first-fit or
// best-fit) and by a set of extent-size ranges, each a normal distribution
// with a standard deviation of 10% of its mean. A file draws its extents
// from the largest range mean <= its AllocationSize parameter (the
// smallest range when none qualifies) — the selection rule implied by
// Table 4's extents-per-file arithmetic (see DESIGN.md §4).
//
// As the paper does, no effort is made to place logically sequential
// extents contiguously: high bandwidth comes from choosing large extent
// sizes for large files.
package extent

import (
	"fmt"
	"sort"

	"rofs/internal/alloc"
	"rofs/internal/container/freelist"
	"rofs/internal/sim"
)

// Fit selects the free-run search discipline.
type Fit int

const (
	// FirstFit takes the lowest-addressed sufficient run. The paper finds
	// it performs slightly better "due to the slight clustering that
	// results from [the] tendency to allocate blocks toward the
	// 'beginning' of the disk system".
	FirstFit Fit = iota
	// BestFit takes the smallest sufficient run and consistently yields
	// less fragmentation in the paper's runs.
	BestFit
)

// String implements fmt.Stringer.
func (f Fit) String() string {
	if f == BestFit {
		return "best-fit"
	}
	return "first-fit"
}

// Config parameterizes the policy. Sizes are in disk units.
type Config struct {
	TotalUnits int64
	Fit        Fit
	// RangeMeans are the extent-size range means, ascending (e.g. the
	// paper's TP/SC 3-range configuration: 512K, 1M, 16M in units).
	RangeMeans []int64
	// DevFraction is the per-range standard deviation as a fraction of the
	// mean; the paper uses 0.10. Defaults to 0.10.
	DevFraction float64
	// RNG supplies the extent-size draws; required.
	RNG *sim.RNG
}

func (c *Config) validate() error {
	if c.TotalUnits <= 0 {
		return fmt.Errorf("extent: TotalUnits %d must be positive", c.TotalUnits)
	}
	if len(c.RangeMeans) == 0 {
		return fmt.Errorf("extent: no extent-size ranges")
	}
	if !sort.SliceIsSorted(c.RangeMeans, func(i, j int) bool { return c.RangeMeans[i] < c.RangeMeans[j] }) {
		return fmt.Errorf("extent: RangeMeans not ascending: %v", c.RangeMeans)
	}
	for _, m := range c.RangeMeans {
		if m <= 0 {
			return fmt.Errorf("extent: non-positive range mean %d", m)
		}
	}
	if c.DevFraction == 0 {
		c.DevFraction = 0.10
	}
	if c.DevFraction < 0 || c.DevFraction >= 1 {
		return fmt.Errorf("extent: DevFraction %g out of (0,1)", c.DevFraction)
	}
	if c.RNG == nil {
		return fmt.Errorf("extent: nil RNG")
	}
	return nil
}

// Policy is an extent-based allocator. Create with New.
type Policy struct {
	cfg   Config
	free  *freelist.T
	stats alloc.OpStats
}

// OpStats implements alloc.StatsReporter. Coalesces come from the free
// map, which merges adjacent runs as extents are freed.
func (p *Policy) OpStats() alloc.OpStats {
	st := p.stats
	st.Coalesces = p.free.Coalesces()
	return st
}

// New builds a policy with the whole space free.
func New(cfg Config) (*Policy, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Policy{cfg: cfg, free: freelist.New()}
	p.free.Insert(0, cfg.TotalUnits)
	return p, nil
}

// Name implements alloc.Policy.
func (p *Policy) Name() string {
	return fmt.Sprintf("extent(%s,%d ranges)", p.cfg.Fit, len(p.cfg.RangeMeans))
}

// TotalUnits implements alloc.Policy.
func (p *Policy) TotalUnits() int64 { return p.cfg.TotalUnits }

// FreeUnits implements alloc.Policy.
func (p *Policy) FreeUnits() int64 { return p.free.FreeUnits() }

// FreeRuns returns the number of maximal free runs (a fragmentation
// diagnostic).
func (p *Policy) FreeRuns() int { return p.free.Runs() }

// FreeSpaceStats implements alloc.FreeSpaceReporter: the free list's
// maximal runs are the fragments, its longest run the largest piece.
func (p *Policy) FreeSpaceStats() alloc.FreeSpaceStats {
	return alloc.FreeSpaceStats{
		Fragments:    int64(p.free.Runs()),
		LargestUnits: p.free.MaxRun(),
	}
}

// rangeFor returns the mean of the range a file with the given
// AllocationSize draws extents from: the largest mean <= hint, or the
// smallest range when none qualifies.
func (p *Policy) rangeFor(hint int64) int64 {
	chosen := p.cfg.RangeMeans[0]
	for _, m := range p.cfg.RangeMeans {
		if m <= hint {
			chosen = m
		}
	}
	return chosen
}

// NewFile implements alloc.Policy.
func (p *Policy) NewFile(sizeHint int64) alloc.File {
	return &file{p: p, rangeMean: p.rangeFor(sizeHint)}
}

// file is a per-file allocation handle.
type file struct {
	p         *Policy
	rangeMean int64
	// pieces are the extents exactly as allocated (Table 4 counts these);
	// merged is the physically coalesced view handed to the I/O path.
	pieces    []alloc.Extent
	merged    []alloc.Extent
	allocated int64
	stale     bool // merged needs rebuilding
}

func (f *file) Extents() []alloc.Extent {
	if f.stale {
		f.merged = f.merged[:0]
		for _, e := range f.pieces {
			f.merged = alloc.AppendExtent(f.merged, e)
		}
		f.stale = false
	}
	return f.merged
}

func (f *file) AllocatedUnits() int64 { return f.allocated }

// ExtentCount returns the number of extents as allocated (before physical
// merging) — the quantity Table 4 averages per file.
func (f *file) ExtentCount() int { return len(f.pieces) }

// DescriptorCount implements alloc.DescriptorCounter: one descriptor per
// as-allocated extent.
func (f *file) DescriptorCount() int { return len(f.pieces) }

// drawExtentUnits samples the file's extent size: N(mean, DevFraction·mean)
// truncated at one unit.
func (f *file) drawExtentUnits() int64 {
	mean := float64(f.rangeMean)
	return f.p.cfg.RNG.SizeNormal(mean, mean*f.p.cfg.DevFraction, 1)
}

// Grow implements alloc.File. Each iteration draws an extent size from the
// file's range and takes a sufficient free run under the configured fit;
// the request fails — and rolls back — if any drawn extent cannot be
// placed.
//
// When the file is being *created* (it had no allocation), the final
// extent is cut to the exact remaining need — the MVS-style sized
// allocation the paper's extent model descends from: at creation the size
// is known, so "there is little wasted space on the disk". Incremental
// growth of an existing file allocates whole drawn extents (the
// preallocation that gives extent systems their sequential bandwidth).
func (f *file) Grow(min int64) ([]alloc.Extent, error) {
	if min <= 0 {
		return nil, nil
	}
	sized := f.allocated == 0
	var added []alloc.Extent
	var got int64
	for got < min {
		size := f.drawExtentUnits()
		if sized && size > min-got {
			size = min - got
		}
		var run freelist.Run
		var ok bool
		if f.p.cfg.Fit == BestFit {
			run, ok = f.p.free.BestFit(size)
		} else {
			run, ok = f.p.free.FirstFit(size)
		}
		if !ok {
			for _, e := range added {
				f.p.free.Insert(e.Start, e.Len)
				f.p.stats.Frees++
			}
			return nil, alloc.ErrNoSpace
		}
		f.p.free.Alloc(run.Addr, size)
		f.p.stats.Allocs++
		added = append(added, alloc.Extent{Start: run.Addr, Len: size})
		got += size
	}
	f.pieces = append(f.pieces, added...)
	f.allocated += got
	f.stale = true
	return added, nil
}

// TruncateTo implements alloc.File. Extents are the unit of deallocation
// (as in MVS): only whole trailing extents wholly beyond the target are
// freed, so the holes truncation opens are extent-shaped and get recycled
// by later extent-sized requests — the effect behind the paper's low
// external fragmentation ("new extents are allocated to extents of the
// correct size", §4.3). A partially used final extent stays allocated.
func (f *file) TruncateTo(target int64) {
	if target < 0 {
		target = 0
	}
	for len(f.pieces) > 0 {
		last := f.pieces[len(f.pieces)-1]
		if f.allocated-last.Len < target {
			break
		}
		f.p.free.Insert(last.Start, last.Len)
		f.p.stats.Frees++
		f.allocated -= last.Len
		f.pieces = f.pieces[:len(f.pieces)-1]
	}
	f.stale = true
}
