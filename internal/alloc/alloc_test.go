package alloc

import "testing"

func TestExtentEndString(t *testing.T) {
	e := Extent{Start: 10, Len: 5}
	if e.End() != 15 {
		t.Fatalf("End = %d", e.End())
	}
	if e.String() != "[10,+5)" {
		t.Fatalf("String = %q", e.String())
	}
}

func TestAppendExtentMergesAdjacent(t *testing.T) {
	var list []Extent
	list = AppendExtent(list, Extent{0, 8})
	list = AppendExtent(list, Extent{8, 8}) // adjacent: merges
	list = AppendExtent(list, Extent{32, 8})
	list = AppendExtent(list, Extent{16, 8}) // physically adjacent to #1 but not last: no merge
	if len(list) != 3 {
		t.Fatalf("list = %v", list)
	}
	if list[0] != (Extent{0, 16}) {
		t.Fatalf("merged extent = %v", list[0])
	}
}

func TestValidate(t *testing.T) {
	ok := []Extent{{0, 8}, {16, 8}, {8, 8}}
	if err := Validate(ok, 100); err != nil {
		t.Fatalf("valid list rejected: %v", err)
	}
	cases := []struct {
		name string
		list []Extent
	}{
		{"zero length", []Extent{{0, 0}}},
		{"negative start", []Extent{{-1, 4}}},
		{"past end", []Extent{{96, 8}}},
		{"overlap", []Extent{{0, 10}, {5, 10}}},
		{"contained overlap", []Extent{{0, 20}, {5, 5}}},
	}
	for _, c := range cases {
		if err := Validate(c.list, 100); err == nil {
			t.Errorf("%s: invalid list accepted", c.name)
		}
	}
}

func TestSum(t *testing.T) {
	if Sum(nil) != 0 {
		t.Fatal("Sum(nil) != 0")
	}
	if Sum([]Extent{{0, 3}, {10, 7}}) != 10 {
		t.Fatal("Sum wrong")
	}
}
