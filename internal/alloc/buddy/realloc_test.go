package buddy

import (
	"math/rand"
	"testing"

	"rofs/internal/alloc"
)

func TestCompactSizes(t *testing.T) {
	cases := []struct {
		used, min, max int64
		pieces         int
		want           []int64
	}{
		{5, 1, 1024, 3, []int64{4, 1}},
		{8, 1, 1024, 3, []int64{8}},
		{100, 1, 1024, 3, []int64{64, 32, 4}},
		{100, 1, 1024, 2, []int64{64, 64}}, // 32+4 merge up
		{100, 1, 1024, 1, []int64{128}},    // everything merges
		{3000, 1, 1024, 3, []int64{1024, 1024, 1024}},
		{2500, 1, 1024, 3, []int64{1024, 1024, 512}},
		{7, 4, 1024, 3, []int64{8}}, // min extent rounds up
		{1, 1, 1024, 3, []int64{1}},
	}
	for _, c := range cases {
		got := compactSizes(c.used, c.min, c.max, c.pieces)
		if len(got) != len(c.want) {
			t.Errorf("compactSizes(%d,%d,%d,%d) = %v, want %v",
				c.used, c.min, c.max, c.pieces, got, c.want)
			continue
		}
		var sum int64
		for i := range got {
			sum += got[i]
			if got[i] != c.want[i] {
				t.Errorf("compactSizes(%d,...) = %v, want %v", c.used, got, c.want)
				break
			}
		}
		if sum < c.used {
			t.Errorf("compactSizes(%d,...) covers only %d", c.used, sum)
		}
	}
}

func TestCompactTightensDoubledFile(t *testing.T) {
	p := newPolicy(t, 1<<16)
	f := p.NewFile(0).(*file)
	// Doubling growth for a 70-unit file: 1+1+2+4+8+16+32+64 = 128 units.
	if _, err := f.Grow(70); err != nil {
		t.Fatal(err)
	}
	if f.AllocatedUnits() != 128 {
		t.Fatalf("allocated %d before compaction", f.AllocatedUnits())
	}
	if !f.Compact(70, 3) {
		t.Fatal("compaction failed on a mostly free disk")
	}
	// Target: 64+4+2 = 70 exactly.
	if f.AllocatedUnits() != 70 {
		t.Fatalf("allocated %d after compaction, want 70", f.AllocatedUnits())
	}
	if len(f.blocks) > 3 {
		t.Fatalf("%d blocks after compaction", len(f.blocks))
	}
	if err := alloc.Validate(f.Extents(), p.TotalUnits()); err != nil {
		t.Fatal(err)
	}
	if p.FreeUnits() != 1<<16-70 {
		t.Fatalf("free = %d", p.FreeUnits())
	}
}

func TestCompactNoopWhenAlreadyTight(t *testing.T) {
	p := newPolicy(t, 1<<16)
	f := p.NewFile(0).(*file)
	if _, err := f.Grow(64); err != nil { // ends as exactly covering blocks
		t.Fatal(err)
	}
	f.Compact(64, 3)
	before := append([]block(nil), f.blocks...)
	if !f.Compact(64, 3) {
		t.Fatal("idempotent compaction failed")
	}
	for i := range before {
		if f.blocks[i] != before[i] {
			t.Fatal("no-op compaction moved blocks")
		}
	}
}

func TestCompactZeroReleasesAll(t *testing.T) {
	p := newPolicy(t, 1024)
	f := p.NewFile(0).(*file)
	f.Grow(100)
	if !f.Compact(0, 3) {
		t.Fatal("Compact(0) failed")
	}
	if f.AllocatedUnits() != 0 || p.FreeUnits() != 1024 {
		t.Fatal("Compact(0) did not release everything")
	}
}

func TestCompactReusesOwnCoalescedSpace(t *testing.T) {
	// A file owning two buddy 1-blocks compacts into the 2-block its own
	// freed space coalesces into, even on an otherwise full disk.
	p := newPolicy(t, 4)
	a := p.NewFile(0).(*file)
	b := p.NewFile(0).(*file)
	if _, err := a.Grow(2); err != nil { // units 0,1 (buddies)
		t.Fatal(err)
	}
	if _, err := b.Grow(2); err != nil { // units 2,3
		t.Fatal(err)
	}
	if !a.Compact(2, 1) {
		t.Fatal("self-space compaction failed")
	}
	if a.AllocatedUnits() != 2 || len(a.blocks) != 1 || a.blocks[0].order != 1 {
		t.Fatalf("after compact: %d units in %d blocks", a.AllocatedUnits(), len(a.blocks))
	}
}

func TestCompactRollsBackWhenTargetImpossible(t *testing.T) {
	// Build a file whose two 1-blocks are NOT buddies (units 0 and 3),
	// with units 1 and 2 owned by other files: the 2-block target cannot
	// exist, so Compact must restore the original layout and return false.
	p := newPolicy(t, 4)
	a := p.NewFile(0).(*file) // unit 0
	b := p.NewFile(0).(*file) // unit 1
	c := p.NewFile(0).(*file) // unit 2
	d := p.NewFile(0).(*file) // unit 3
	for _, f := range []*file{a, b, c, d} {
		if _, err := f.Grow(1); err != nil {
			t.Fatal(err)
		}
	}
	d.TruncateTo(0) // unit 3 free
	if _, err := a.Grow(1); err != nil {
		t.Fatal(err) // doubling: one more 1-block -> unit 3
	}
	if a.blocks[1].addr != 3 {
		t.Fatalf("setup: second block at %d, want 3", a.blocks[1].addr)
	}
	free0 := p.FreeUnits()
	if a.Compact(2, 1) {
		t.Fatal("impossible compaction reported success")
	}
	if a.AllocatedUnits() != 2 || len(a.blocks) != 2 {
		t.Fatalf("rollback lost blocks: %d units in %d blocks",
			a.AllocatedUnits(), len(a.blocks))
	}
	if p.FreeUnits() != free0 {
		t.Fatalf("rollback leaked space: %d -> %d", free0, p.FreeUnits())
	}
	if err := alloc.Validate(a.Extents(), p.TotalUnits()); err != nil {
		t.Fatal(err)
	}
}

func TestCompactRandomizedConservation(t *testing.T) {
	const total = 1 << 14
	p := newPolicy(t, total)
	rng := rand.New(rand.NewSource(77))
	type entry struct {
		f    *file
		used int64
	}
	var files []entry
	for i := 0; i < 200; i++ {
		f := p.NewFile(0).(*file)
		used := rng.Int63n(200) + 1
		if _, err := f.Grow(used); err != nil {
			break
		}
		files = append(files, entry{f, used})
	}
	for step := 0; step < 500; step++ {
		e := files[rng.Intn(len(files))]
		e.f.Compact(e.used, rng.Intn(4)+1)
		if step%50 == 0 {
			var usedTotal int64
			var all []alloc.Extent
			for _, e := range files {
				usedTotal += e.f.AllocatedUnits()
				all = append(all, e.f.Extents()...)
			}
			if usedTotal+p.FreeUnits() != total {
				t.Fatalf("step %d: conservation violated", step)
			}
			if err := alloc.Validate(all, total); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			for _, e := range files {
				if e.f.AllocatedUnits() < e.used {
					t.Fatalf("step %d: compaction under-allocated %d < %d",
						step, e.f.AllocatedUnits(), e.used)
				}
			}
		}
	}
}
