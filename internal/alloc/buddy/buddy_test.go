package buddy

import (
	"math/rand"
	"testing"

	"rofs/internal/alloc"
	"rofs/internal/units"
)

func newPolicy(t *testing.T, total int64) *Policy {
	t.Helper()
	p, err := New(Config{TotalUnits: total})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{TotalUnits: 0}); err == nil {
		t.Error("zero total accepted")
	}
	if _, err := New(Config{TotalUnits: 100, MinExtentUnits: 3}); err == nil {
		t.Error("non-power-of-two min extent accepted")
	}
	if _, err := New(Config{TotalUnits: 100, MinExtentUnits: 8, MaxExtentUnits: 4}); err == nil {
		t.Error("min > max accepted")
	}
}

func TestInitialFreeEqualsTotal(t *testing.T) {
	for _, total := range []int64{64, 100, 1000, 2764800} {
		p := newPolicy(t, total)
		if p.FreeUnits() != total {
			t.Errorf("total %d: FreeUnits = %d", total, p.FreeUnits())
		}
		if p.TotalUnits() != total {
			t.Errorf("total %d: TotalUnits = %d", total, p.TotalUnits())
		}
	}
}

func TestDoublingGrowth(t *testing.T) {
	p := newPolicy(t, 1<<20)
	f := p.NewFile(0)
	// Grow by 1 unit repeatedly: extents should be 1,1,2,4,8,... and the
	// total allocation a power of two at each step.
	var sizes []int64
	for i := 0; i < 8; i++ {
		added, err := f.Grow(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(added) != 1 {
			t.Fatalf("step %d: %d extents added", i, len(added))
		}
		sizes = append(sizes, added[0].Len)
	}
	want := []int64{1, 1, 2, 4, 8, 16, 32, 64}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("extent sizes %v, want %v", sizes, want)
		}
	}
	if f.AllocatedUnits() != 128 {
		t.Fatalf("allocated %d, want 128", f.AllocatedUnits())
	}
}

func TestGrowCoversLargeRequest(t *testing.T) {
	p := newPolicy(t, 1<<20)
	f := p.NewFile(0)
	added, err := f.Grow(1000)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Sum(added) < 1000 {
		t.Fatalf("Grow(1000) added only %d units", alloc.Sum(added))
	}
	if f.AllocatedUnits() != alloc.Sum(added) {
		t.Fatal("allocated mismatch")
	}
	if err := alloc.Validate(f.Extents(), p.TotalUnits()); err != nil {
		t.Fatal(err)
	}
}

func TestMaxExtentCap(t *testing.T) {
	p, err := New(Config{TotalUnits: 1 << 16, MaxExtentUnits: 256})
	if err != nil {
		t.Fatal(err)
	}
	f := p.NewFile(0)
	added, err := f.Grow(2000)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range added {
		if e.Len > 256 {
			t.Fatalf("extent %v exceeds cap", e)
		}
	}
}

func TestGrowFailureIsAtomic(t *testing.T) {
	p := newPolicy(t, 64)
	f := p.NewFile(0)
	if _, err := f.Grow(40); err != nil { // allocates 1,1,2,4,8,16,32 = 64 units
		t.Fatal(err)
	}
	if p.FreeUnits() != 0 {
		t.Fatalf("free = %d after filling", p.FreeUnits())
	}
	g := p.NewFile(0)
	if _, err := g.Grow(1); err != alloc.ErrNoSpace {
		t.Fatalf("Grow on full disk = %v", err)
	}
	if g.AllocatedUnits() != 0 || len(g.Extents()) != 0 {
		t.Fatal("failed Grow left allocation behind")
	}
}

func TestStrictFailureWithFreeSpace(t *testing.T) {
	// The defining buddy behaviour (Table 3's external fragmentation): a
	// request for a large extent fails even though plenty of smaller free
	// space exists.
	p := newPolicy(t, 1024)
	// Allocate 512 one-unit files pinning alternate buddies.
	var files []alloc.File
	for i := 0; i < 1024; i++ {
		f := p.NewFile(0)
		if _, err := f.Grow(1); err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	for i := 0; i < 1024; i += 2 {
		files[i].TruncateTo(0)
	}
	if p.FreeUnits() != 512 {
		t.Fatalf("free = %d", p.FreeUnits())
	}
	big := p.NewFile(0)
	// A file grown past 1 unit wants a 2-unit extent; none can exist.
	if _, err := big.Grow(3); err != alloc.ErrNoSpace {
		t.Fatalf("expected ErrNoSpace with 50%% free, got %v", err)
	}
}

func TestTruncateFreesWholeBlocksOnly(t *testing.T) {
	p := newPolicy(t, 1<<16)
	f := p.NewFile(0)
	if _, err := f.Grow(16); err != nil { // 1+1+2+4+8 = 16
		t.Fatal(err)
	}
	free0 := p.FreeUnits()
	f.TruncateTo(9) // the trailing 8-block is partially used: must stay
	if f.AllocatedUnits() != 16 {
		t.Fatalf("allocated = %d, want 16 (partial block kept)", f.AllocatedUnits())
	}
	f.TruncateTo(8) // now the 8-block is wholly beyond: freed
	if f.AllocatedUnits() != 8 {
		t.Fatalf("allocated = %d, want 8", f.AllocatedUnits())
	}
	if p.FreeUnits() != free0+8 {
		t.Fatalf("free = %d, want %d", p.FreeUnits(), free0+8)
	}
}

func TestReleaseCoalescesFully(t *testing.T) {
	p := newPolicy(t, 4096)
	var files []alloc.File
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		f := p.NewFile(0)
		if _, err := f.Grow(int64(rng.Intn(100) + 1)); err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	for _, f := range files {
		f.TruncateTo(0)
	}
	if p.FreeUnits() != 4096 {
		t.Fatalf("free = %d after releasing everything", p.FreeUnits())
	}
	// Coalescing must have restored the single maximal block: a file can
	// again get the biggest allowed extent in one piece.
	f := p.NewFile(0)
	if _, err := f.Grow(4096); err != nil {
		t.Fatalf("full-space allocation after coalescing failed: %v", err)
	}
}

func TestNonPowerOfTwoSpace(t *testing.T) {
	// 2764800 units = the paper's 2.7G at 1K units; not a power of two.
	p := newPolicy(t, 2764800)
	f := p.NewFile(0)
	if _, err := f.Grow(100000); err != nil {
		t.Fatal(err)
	}
	if err := alloc.Validate(f.Extents(), p.TotalUnits()); err != nil {
		t.Fatal(err)
	}
	for _, e := range f.Extents() {
		if e.End() > 2764800 {
			t.Fatalf("extent %v beyond usable space", e)
		}
	}
}

// TestRandomizedInvariants drives random grow/truncate traffic and checks
// conservation of space, alignment, and non-overlap throughout.
func TestRandomizedInvariants(t *testing.T) {
	const total = 1 << 15
	p := newPolicy(t, total)
	rng := rand.New(rand.NewSource(11))
	var files []alloc.File
	for step := 0; step < 3000; step++ {
		switch rng.Intn(3) {
		case 0, 1:
			var f alloc.File
			if len(files) > 0 && rng.Intn(2) == 0 {
				f = files[rng.Intn(len(files))]
			} else {
				f = p.NewFile(0)
				files = append(files, f)
			}
			_, err := f.Grow(int64(rng.Intn(64) + 1))
			if err != nil && err != alloc.ErrNoSpace {
				t.Fatal(err)
			}
		case 2:
			if len(files) > 0 {
				f := files[rng.Intn(len(files))]
				f.TruncateTo(rng.Int63n(f.AllocatedUnits() + 1))
			}
		}
		if step%200 == 0 {
			var used int64
			var all []alloc.Extent
			for _, f := range files {
				used += f.AllocatedUnits()
				all = append(all, f.Extents()...)
			}
			if used+p.FreeUnits() != total {
				t.Fatalf("step %d: used %d + free %d != total %d",
					step, used, p.FreeUnits(), total)
			}
			if err := alloc.Validate(all, total); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
}

func TestBlockAlignment(t *testing.T) {
	p := newPolicy(t, 1<<16)
	f := p.NewFile(0).(*file)
	if _, err := f.Grow(500); err != nil {
		t.Fatal(err)
	}
	for _, b := range f.blocks {
		size := int64(1) << b.order
		if !units.IsAligned(b.addr, size) {
			t.Fatalf("block at %d size %d misaligned", b.addr, size)
		}
	}
}
