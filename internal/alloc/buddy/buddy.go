// Package buddy implements the binary buddy allocation policy of §4.1,
// after Koch's DTSS file system [KOCH87]: a file is a sequence of extents
// whose sizes are powers of two, and "each time a new extent is required,
// the extent size is chosen to double the current size of the file". The
// paper simulates only the allocation and deallocation algorithm — not
// Koch's nightly reallocator — and so does this package.
//
// Free space is the classic binary buddy structure: per-order free sets,
// splitting larger blocks on demand and coalescing buddy pairs on free.
// A request for an extent of size s fails outright when no free block of
// size >= s exists — the policy never composes an extent from smaller
// blocks, which is exactly why the paper observes substantial *external*
// fragmentation for this policy (Table 3): the disk can be 13% free and
// still unable to produce the next doubling extent.
package buddy

import (
	"fmt"

	"rofs/internal/alloc"
	"rofs/internal/container/rbtree"
	"rofs/internal/units"
)

// Config parameterizes the policy. All sizes are in disk units.
type Config struct {
	// TotalUnits is the size of the managed space.
	TotalUnits int64
	// MinExtentUnits is the first extent allocated to a new file (a power
	// of two, >= 1). Defaults to 1.
	MinExtentUnits int64
	// MaxExtentUnits caps the doubling (a power of two). The paper notes
	// large files end up in 64M blocks (§5); with 1K units that is 65536.
	// Defaults to 64K units (64M).
	MaxExtentUnits int64
}

func (c *Config) setDefaults() error {
	if c.TotalUnits <= 0 {
		return fmt.Errorf("buddy: TotalUnits %d must be positive", c.TotalUnits)
	}
	if c.MinExtentUnits == 0 {
		c.MinExtentUnits = 1
	}
	if c.MaxExtentUnits == 0 {
		c.MaxExtentUnits = 64 * 1024
	}
	if !units.IsPowerOfTwo(c.MinExtentUnits) || !units.IsPowerOfTwo(c.MaxExtentUnits) {
		return fmt.Errorf("buddy: extent bounds %d/%d must be powers of two",
			c.MinExtentUnits, c.MaxExtentUnits)
	}
	if c.MinExtentUnits > c.MaxExtentUnits {
		return fmt.Errorf("buddy: MinExtentUnits %d > MaxExtentUnits %d",
			c.MinExtentUnits, c.MaxExtentUnits)
	}
	if c.MaxExtentUnits > c.TotalUnits {
		c.MaxExtentUnits = units.PrevPowerOfTwo(c.TotalUnits)
	}
	return nil
}

// Policy is a binary buddy allocator. Create with New.
type Policy struct {
	cfg      Config
	maxOrder int
	// orders[o] holds the start addresses of free blocks of size 1<<o.
	// Address-ordered so allocation is deterministic (lowest address
	// first).
	orders []*rbtree.Tree[int64, struct{}]
	free   int64
	stats  alloc.OpStats
}

// OpStats implements alloc.StatsReporter.
func (p *Policy) OpStats() alloc.OpStats { return p.stats }

// New builds a policy over a space of cfg.TotalUnits units. Space that
// cannot form aligned power-of-two blocks is still usable: the initial
// free set decomposes the space greedily into maximal aligned blocks.
func New(cfg Config) (*Policy, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	p := &Policy{cfg: cfg, maxOrder: units.Log2(units.NextPowerOfTwo(cfg.TotalUnits))}
	p.orders = make([]*rbtree.Tree[int64, struct{}], p.maxOrder+1)
	for i := range p.orders {
		p.orders[i] = rbtree.New[int64, struct{}](func(a, b int64) bool { return a < b })
	}
	for addr := int64(0); addr < cfg.TotalUnits; {
		size := units.PrevPowerOfTwo(cfg.TotalUnits - addr)
		if addr != 0 {
			if lowBit := addr & -addr; lowBit < size {
				size = lowBit
			}
		}
		p.orders[units.Log2(size)].Set(addr, struct{}{})
		p.free += size
		addr += size
	}
	return p, nil
}

// Name implements alloc.Policy.
func (p *Policy) Name() string { return "buddy" }

// TotalUnits implements alloc.Policy.
func (p *Policy) TotalUnits() int64 { return p.cfg.TotalUnits }

// FreeUnits implements alloc.Policy.
func (p *Policy) FreeUnits() int64 { return p.free }

// FreeSpaceStats implements alloc.FreeSpaceReporter: free buddy blocks are
// the fragments (buddies already coalesce on free), the largest being the
// biggest non-empty order.
func (p *Policy) FreeSpaceStats() alloc.FreeSpaceStats {
	var st alloc.FreeSpaceStats
	for o, tree := range p.orders {
		if n := tree.Len(); n > 0 {
			st.Fragments += int64(n)
			st.LargestUnits = int64(1) << o
		}
	}
	return st
}

// allocBlock takes the lowest-addressed free block of exactly 1<<order
// units, splitting a larger block if necessary.
func (p *Policy) allocBlock(order int) (int64, error) {
	from := order
	for from <= p.maxOrder && p.orders[from].Len() == 0 {
		from++
	}
	if from > p.maxOrder {
		return 0, alloc.ErrNoSpace
	}
	addr, _, _ := p.orders[from].Min()
	p.orders[from].Delete(addr)
	// Split down, freeing the upper half at each level.
	for o := from - 1; o >= order; o-- {
		p.orders[o].Set(addr+int64(1)<<o, struct{}{})
	}
	p.free -= int64(1) << order
	p.stats.Allocs++
	return addr, nil
}

// freeBlock returns a block of 1<<order units at addr, coalescing with its
// buddy as long as the buddy is free.
func (p *Policy) freeBlock(addr int64, order int) {
	p.free += int64(1) << order
	p.stats.Frees++
	for order < p.maxOrder {
		buddy := addr ^ int64(1)<<order
		if !p.orders[order].Delete(buddy) {
			break
		}
		if buddy < addr {
			addr = buddy
		}
		order++
		p.stats.Coalesces++
	}
	p.orders[order].Set(addr, struct{}{})
}

// NewFile implements alloc.Policy. The buddy policy ignores the size hint:
// extent sizes are dictated purely by the doubling rule.
func (p *Policy) NewFile(int64) alloc.File {
	return &file{p: p}
}

// file carries a buddy file's allocation: an extent list whose sizes are
// powers of two summing (until the cap kicks in) to a power of two.
type file struct {
	p         *Policy
	extents   []alloc.Extent
	blocks    []block // physical blocks, in allocation order
	allocated int64
}

type block struct {
	addr  int64
	order int
}

func (f *file) Extents() []alloc.Extent { return f.extents }

func (f *file) AllocatedUnits() int64 { return f.allocated }

// DescriptorCount implements alloc.DescriptorCounter: one descriptor per
// extent; the doubling rule keeps this logarithmic in the file size.
func (f *file) DescriptorCount() int { return len(f.blocks) }

// nextExtentUnits returns the size of the next extent under the doubling
// rule for a file with the given current allocation.
func (f *file) nextExtentUnits(allocated int64) int64 {
	size := f.p.cfg.MinExtentUnits
	if allocated > size {
		size = units.NextPowerOfTwo(allocated)
	}
	if size > f.p.cfg.MaxExtentUnits {
		size = f.p.cfg.MaxExtentUnits
	}
	return size
}

// Grow implements alloc.File: it allocates doubling extents until at least
// min new units have been added. Nothing is committed until every extent
// has been acquired, so a failure leaves the allocation unchanged.
func (f *file) Grow(min int64) ([]alloc.Extent, error) {
	if min <= 0 {
		return nil, nil
	}
	var added []alloc.Extent
	var addedBlocks []block
	var got int64
	for got < min {
		size := f.nextExtentUnits(f.allocated + got)
		order := units.Log2(size)
		addr, err := f.p.allocBlock(order)
		if err != nil {
			for _, b := range addedBlocks {
				f.p.freeBlock(b.addr, b.order)
			}
			return nil, err
		}
		added = append(added, alloc.Extent{Start: addr, Len: size})
		addedBlocks = append(addedBlocks, block{addr, order})
		got += size
	}
	f.blocks = append(f.blocks, addedBlocks...)
	f.allocated += got
	for _, e := range added {
		f.extents = alloc.AppendExtent(f.extents, e)
	}
	return added, nil
}

// rebuildExtents reconstructs the merged extent list from the block list.
func (f *file) rebuildExtents() {
	f.extents = f.extents[:0]
	for _, b := range f.blocks {
		f.extents = alloc.AppendExtent(f.extents, alloc.Extent{Start: b.addr, Len: int64(1) << b.order})
	}
}

// TruncateTo implements alloc.File: whole blocks wholly beyond the target
// are freed (buddy blocks are atomic — a partially used block stays).
func (f *file) TruncateTo(target int64) {
	if target < 0 {
		target = 0
	}
	for len(f.blocks) > 0 {
		last := f.blocks[len(f.blocks)-1]
		size := int64(1) << last.order
		if f.allocated-size < target {
			break
		}
		f.p.freeBlock(last.addr, last.order)
		f.blocks = f.blocks[:len(f.blocks)-1]
		f.allocated -= size
	}
	f.rebuildExtents()
}
