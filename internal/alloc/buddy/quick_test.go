package buddy

import (
	"testing"
	"testing/quick"

	"rofs/internal/alloc"
	"rofs/internal/units"
)

// TestQuickBuddyInvariants drives the buddy allocator with arbitrary
// grow/truncate scripts via testing/quick and checks, after every
// operation: space conservation, extent validity, power-of-two block
// sizes, and size-alignment of every block.
func TestQuickBuddyInvariants(t *testing.T) {
	const total = 1 << 12
	prop := func(script []uint16) bool {
		p, err := New(Config{TotalUnits: total})
		if err != nil {
			return false
		}
		var files []*file
		for _, op := range script {
			arg := int64(op&0x3FF) + 1
			switch {
			case op&0x8000 == 0 || len(files) == 0: // grow (new or existing)
				var f *file
				if len(files) > 0 && op&0x4000 != 0 {
					f = files[int(op>>8)%len(files)]
				} else {
					f = p.NewFile(0).(*file)
					files = append(files, f)
				}
				if _, err := f.Grow(arg); err != nil && err != alloc.ErrNoSpace {
					return false
				}
			default: // truncate
				f := files[int(op>>8)%len(files)]
				f.TruncateTo(arg % (f.AllocatedUnits() + 1))
			}
			var used int64
			for _, f := range files {
				used += f.AllocatedUnits()
				for _, b := range f.blocks {
					size := int64(1) << b.order
					if !units.IsPowerOfTwo(size) || !units.IsAligned(b.addr, size) {
						return false
					}
				}
			}
			if used+p.FreeUnits() != total {
				return false
			}
		}
		var all []alloc.Extent
		for _, f := range files {
			all = append(all, f.Extents()...)
		}
		return alloc.Validate(all, total) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickCompactPreservesCoverage: for arbitrary (used, pieces) inputs,
// compactSizes always covers the request, stays within the cap where the
// budget allows, and returns descending power-of-two sizes.
func TestQuickCompactPreservesCoverage(t *testing.T) {
	prop := func(rawUsed uint32, rawPieces uint8) bool {
		used := int64(rawUsed%100000) + 1
		pieces := int(rawPieces%5) + 1
		sizes := compactSizes(used, 1, 1024, pieces)
		var sum int64
		prev := int64(1 << 62)
		for _, s := range sizes {
			if !units.IsPowerOfTwo(s) || s > 1024 || s > prev {
				return false
			}
			prev = s
			sum += s
		}
		if sum < used {
			return false
		}
		// Piece budget holds unless the cap forces more whole max-blocks.
		if len(sizes) > pieces {
			whole := 0
			for _, s := range sizes {
				if s == 1024 {
					whole++
				}
			}
			if whole < len(sizes)-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
