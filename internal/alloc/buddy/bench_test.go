package buddy

import (
	"testing"

	"rofs/internal/alloc"
)

// BenchmarkGrowTruncate measures the split/merge hot path through the
// public policy interface: growing a file to 1024 units forces a chain of
// doubling allocations splitting high-order blocks, and truncating to zero
// frees them all back, coalescing buddy pairs up the order tree.
func BenchmarkGrowTruncate(b *testing.B) {
	p, err := New(Config{TotalUnits: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	f := p.NewFile(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for f.AllocatedUnits() < 1024 {
			if _, err := f.Grow(1); err != nil {
				b.Fatal(err)
			}
		}
		f.TruncateTo(0)
	}
	b.StopTimer()
	f.TruncateTo(0)
	if p.FreeUnits() != 1<<20 {
		b.Fatalf("leaked units: %d free of %d", p.FreeUnits(), int64(1)<<20)
	}
}

// BenchmarkChurn interleaves many files growing and being truncated — the
// allocation test's population shape, where block sizes mix and frees land
// far from the most recent split.
func BenchmarkChurn(b *testing.B) {
	p, err := New(Config{TotalUnits: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	const nFiles = 64
	files := make([]alloc.File, nFiles)
	for i := range files {
		files[i] = p.NewFile(0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := files[i%nFiles]
		if f.AllocatedUnits() >= 512 {
			f.TruncateTo(0)
		} else if _, err := f.Grow(1); err != nil {
			b.Fatal(err)
		}
	}
}
