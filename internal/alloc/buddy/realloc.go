package buddy

import (
	"rofs/internal/units"
)

// This file implements Koch's background reallocator [KOCH87] — the piece
// the paper deliberately simulates *without* ("we consider only the
// allocation and deallocation algorithm", §4.1). In DTSS it ran nightly,
// shuffling extents so most files sat in at most three extents with under
// 4% internal fragmentation. The repository ships it as an extension so
// the ablation harness can quantify exactly what the paper left out.

// DefaultCompactExtents is Koch's target: "most files are allocated in 3
// extents".
const DefaultCompactExtents = 3

// Compact reallocates the file to a tight layout: at most maxExtents
// power-of-two blocks covering used units (rounded up as little as the
// piece limit allows). It returns false — leaving the file exactly as it
// was — when the free space cannot provide the target blocks.
//
// used must not exceed the current allocation. maxExtents < 1 selects
// DefaultCompactExtents.
func (f *file) Compact(used int64, maxExtents int) bool {
	if maxExtents < 1 {
		maxExtents = DefaultCompactExtents
	}
	if used < 0 {
		used = 0
	}
	if used > f.allocated {
		used = f.allocated
	}
	if used == 0 {
		f.TruncateTo(0)
		return true
	}
	target := compactSizes(used, f.p.cfg.MinExtentUnits, f.p.cfg.MaxExtentUnits, maxExtents)
	if sameSizes(target, f.blocks) {
		return true // already tight
	}

	// Free everything, then allocate the target layout. If that fails the
	// original multiset of block sizes is re-allocated — always possible,
	// since the just-freed space contains a free block of every original
	// size.
	old := make([]block, len(f.blocks))
	copy(old, f.blocks)
	for _, b := range old {
		f.p.freeBlock(b.addr, b.order)
	}
	newBlocks, ok := f.p.allocSet(target)
	if !ok {
		restored, rok := f.p.allocSet(sizesOf(old))
		if !rok {
			panic("buddy: reallocation rollback failed")
		}
		f.setBlocks(restored)
		return false
	}
	f.setBlocks(newBlocks)
	return true
}

// allocSet allocates one block per size (descending order given),
// returning ok=false — with everything released — if any fails.
func (p *Policy) allocSet(sizes []int64) ([]block, bool) {
	var got []block
	for _, size := range sizes {
		addr, err := p.allocBlock(units.Log2(size))
		if err != nil {
			for _, b := range got {
				p.freeBlock(b.addr, b.order)
			}
			return nil, false
		}
		got = append(got, block{addr, units.Log2(size)})
	}
	return got, true
}

func (f *file) setBlocks(bs []block) {
	f.blocks = bs
	f.allocated = 0
	for _, b := range bs {
		f.allocated += int64(1) << b.order
	}
	f.rebuildExtents()
}

func sizesOf(bs []block) []int64 {
	out := make([]int64, len(bs))
	for i, b := range bs {
		out[i] = int64(1) << b.order
	}
	return out
}

func sameSizes(sizes []int64, bs []block) bool {
	if len(sizes) != len(bs) {
		return false
	}
	// Both are descending by construction only for fresh compactions;
	// compare as multisets via counting orders (<= 63 distinct).
	var a, b [64]int
	for _, s := range sizes {
		a[units.Log2(s)]++
	}
	for _, blk := range bs {
		b[blk.order]++
	}
	return a == b
}

// compactSizes returns the descending power-of-two block sizes covering
// `used` units with at most maxPieces pieces: the binary decomposition of
// the (min-extent-rounded) size, with the smallest pieces merged upward
// until the piece budget holds. Every size is clamped to [min, max]; if
// the cap forces more than maxPieces pieces (a huge file), maxPieces is
// exceeded rather than the cap.
func compactSizes(used, minExt, maxExt int64, maxPieces int) []int64 {
	need := units.RoundUp(used, minExt)
	var sizes []int64
	// Whole max-extent blocks first.
	for need >= maxExt {
		sizes = append(sizes, maxExt)
		need -= maxExt
	}
	// Binary decomposition of the remainder, descending.
	for need > 0 {
		p := units.PrevPowerOfTwo(need)
		if p < minExt {
			p = minExt
		}
		sizes = append(sizes, p)
		if p >= need {
			break
		}
		need -= p
	}
	// Merge the two smallest pieces (round up) until within budget; whole
	// max-extent blocks cannot merge further.
	for len(sizes) > maxPieces {
		last := len(sizes) - 1
		if sizes[last-1] >= maxExt {
			break
		}
		merged := units.NextPowerOfTwo(sizes[last-1] + sizes[last])
		if merged > maxExt {
			merged = maxExt
		}
		sizes = sizes[:last-1]
		// Re-insert keeping descending order (merged may equal the
		// previous piece).
		i := len(sizes)
		for i > 0 && sizes[i-1] < merged {
			i--
		}
		sizes = append(sizes, 0)
		copy(sizes[i+1:], sizes[i:])
		sizes[i] = merged
	}
	return sizes
}
