// Package fixed implements the fixed-block baseline of the comparison
// section (§5): files are composed of fixed-size blocks (4K for the
// time-sharing comparison, 16K for transaction processing and
// supercomputing) allocated off a free list, with no bias "towards
// automatic striping or contiguous layout".
//
// Blocks are initially linked in address order — a fresh file system lays
// files out contiguously — but frees push blocks back on the *head* of the
// list, so as the system ages, logically sequential blocks of a file
// scatter across the disk exactly as in the V7 file system the paper
// describes [THOM78]. An AddressOrdered mode is provided for ablations.
package fixed

import (
	"fmt"

	"rofs/internal/alloc"
	"rofs/internal/container/rbtree"
)

// Order selects the free-list discipline.
type Order int

const (
	// LIFO reuses the most recently freed blocks first (the V7 behaviour;
	// default).
	LIFO Order = iota
	// AddressOrdered always allocates the lowest-addressed free block,
	// which preserves considerably more contiguity as the system ages.
	AddressOrdered
)

// Config parameterizes the policy. Sizes are in disk units.
type Config struct {
	TotalUnits int64
	BlockUnits int64 // e.g. 4 or 16 with 1K units
	Order      Order
}

// Policy is a fixed-block allocator. Create with New.
type Policy struct {
	cfg     Config
	nBlocks int64
	// LIFO mode: a stack of free block indices. Address mode: a tree.
	stack  []int64
	sorted *rbtree.Tree[int64, struct{}]
	free   int64 // free blocks
	stats  alloc.OpStats
}

// OpStats implements alloc.StatsReporter. Fixed blocks never coalesce.
func (p *Policy) OpStats() alloc.OpStats { return p.stats }

// New builds a policy; space that does not divide evenly into blocks is
// unusable, as in real fixed-block systems.
func New(cfg Config) (*Policy, error) {
	if cfg.TotalUnits <= 0 {
		return nil, fmt.Errorf("fixed: TotalUnits %d must be positive", cfg.TotalUnits)
	}
	if cfg.BlockUnits <= 0 {
		return nil, fmt.Errorf("fixed: BlockUnits %d must be positive", cfg.BlockUnits)
	}
	p := &Policy{cfg: cfg, nBlocks: cfg.TotalUnits / cfg.BlockUnits}
	if p.nBlocks == 0 {
		return nil, fmt.Errorf("fixed: no space for even one %d-unit block", cfg.BlockUnits)
	}
	p.free = p.nBlocks
	if cfg.Order == AddressOrdered {
		p.sorted = rbtree.New[int64, struct{}](func(a, b int64) bool { return a < b })
		for b := int64(0); b < p.nBlocks; b++ {
			p.sorted.Set(b, struct{}{})
		}
	} else {
		// Push in reverse so a fresh system pops ascending addresses.
		p.stack = make([]int64, 0, p.nBlocks)
		for b := p.nBlocks - 1; b >= 0; b-- {
			p.stack = append(p.stack, b)
		}
	}
	return p, nil
}

// Name implements alloc.Policy.
func (p *Policy) Name() string {
	return fmt.Sprintf("fixed(%du)", p.cfg.BlockUnits)
}

// TotalUnits implements alloc.Policy. Only whole blocks are usable.
func (p *Policy) TotalUnits() int64 { return p.nBlocks * p.cfg.BlockUnits }

// FreeUnits implements alloc.Policy.
func (p *Policy) FreeUnits() int64 { return p.free * p.cfg.BlockUnits }

// FreeSpaceStats implements alloc.FreeSpaceReporter: fixed blocks never
// coalesce, so every free block is its own fragment and the largest free
// piece is always one block (or zero when the disk is full).
func (p *Policy) FreeSpaceStats() alloc.FreeSpaceStats {
	st := alloc.FreeSpaceStats{Fragments: p.free}
	if p.free > 0 {
		st.LargestUnits = p.cfg.BlockUnits
	}
	return st
}

func (p *Policy) allocBlock() (int64, error) {
	if p.free == 0 {
		return 0, alloc.ErrNoSpace
	}
	var b int64
	if p.cfg.Order == AddressOrdered {
		b, _, _ = p.sorted.DeleteMin()
	} else {
		b = p.stack[len(p.stack)-1]
		p.stack = p.stack[:len(p.stack)-1]
	}
	p.free--
	p.stats.Allocs++
	return b, nil
}

func (p *Policy) freeBlock(b int64) {
	if p.cfg.Order == AddressOrdered {
		p.sorted.Set(b, struct{}{})
	} else {
		p.stack = append(p.stack, b)
	}
	p.free++
	p.stats.Frees++
}

// NewFile implements alloc.Policy; the block size is global, so the size
// hint is ignored.
func (p *Policy) NewFile(int64) alloc.File {
	return &file{p: p}
}

type file struct {
	p         *Policy
	blocks    []int64 // block indices in logical order
	extents   []alloc.Extent
	stale     bool
	allocated int64
}

func (f *file) Extents() []alloc.Extent {
	if f.stale {
		f.extents = f.extents[:0]
		bu := f.p.cfg.BlockUnits
		for _, b := range f.blocks {
			f.extents = alloc.AppendExtent(f.extents, alloc.Extent{Start: b * bu, Len: bu})
		}
		f.stale = false
	}
	return f.extents
}

func (f *file) AllocatedUnits() int64 { return f.allocated }

// DescriptorCount implements alloc.DescriptorCounter: fixed-block files
// need one pointer per block — the metadata burden [STON81] criticizes.
func (f *file) DescriptorCount() int { return len(f.blocks) }

// Grow implements alloc.File.
func (f *file) Grow(min int64) ([]alloc.Extent, error) {
	if min <= 0 {
		return nil, nil
	}
	bu := f.p.cfg.BlockUnits
	need := (min + bu - 1) / bu
	newBlocks := make([]int64, 0, need)
	for int64(len(newBlocks)) < need {
		b, err := f.p.allocBlock()
		if err != nil {
			for _, rb := range newBlocks {
				f.p.freeBlock(rb)
			}
			return nil, err
		}
		newBlocks = append(newBlocks, b)
	}
	f.blocks = append(f.blocks, newBlocks...)
	f.allocated += need * bu
	f.stale = true
	added := make([]alloc.Extent, 0, len(newBlocks))
	for _, b := range newBlocks {
		added = alloc.AppendExtent(added, alloc.Extent{Start: b * bu, Len: bu})
	}
	return added, nil
}

// TruncateTo implements alloc.File: whole blocks beyond the target are
// freed.
func (f *file) TruncateTo(target int64) {
	if target < 0 {
		target = 0
	}
	bu := f.p.cfg.BlockUnits
	keep := (target + bu - 1) / bu
	for int64(len(f.blocks)) > keep {
		b := f.blocks[len(f.blocks)-1]
		f.blocks = f.blocks[:len(f.blocks)-1]
		f.p.freeBlock(b)
		f.allocated -= bu
	}
	f.stale = true
}
