package fixed

import (
	"math/rand"
	"testing"

	"rofs/internal/alloc"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{TotalUnits: 0, BlockUnits: 4}); err == nil {
		t.Error("zero total accepted")
	}
	if _, err := New(Config{TotalUnits: 100, BlockUnits: 0}); err == nil {
		t.Error("zero block accepted")
	}
	if _, err := New(Config{TotalUnits: 3, BlockUnits: 4}); err == nil {
		t.Error("space smaller than one block accepted")
	}
}

func TestPartialBlockUnusable(t *testing.T) {
	p, err := New(Config{TotalUnits: 103, BlockUnits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalUnits() != 100 {
		t.Fatalf("TotalUnits = %d, want 100 (25 whole blocks)", p.TotalUnits())
	}
	if p.FreeUnits() != 100 {
		t.Fatalf("FreeUnits = %d", p.FreeUnits())
	}
}

func TestFreshSystemIsContiguous(t *testing.T) {
	for _, ord := range []Order{LIFO, AddressOrdered} {
		p, err := New(Config{TotalUnits: 1000, BlockUnits: 4, Order: ord})
		if err != nil {
			t.Fatal(err)
		}
		f := p.NewFile(0)
		if _, err := f.Grow(40); err != nil {
			t.Fatal(err)
		}
		ext := f.Extents()
		if len(ext) != 1 || ext[0] != (alloc.Extent{Start: 0, Len: 40}) {
			t.Fatalf("order %v: fresh allocation = %v, want one extent [0,+40)", ord, ext)
		}
	}
}

func TestGrowRoundsUpToBlocks(t *testing.T) {
	p, _ := New(Config{TotalUnits: 1000, BlockUnits: 4})
	f := p.NewFile(0)
	if _, err := f.Grow(1); err != nil {
		t.Fatal(err)
	}
	if f.AllocatedUnits() != 4 {
		t.Fatalf("allocated = %d, want one whole block", f.AllocatedUnits())
	}
}

func TestLIFOScattersAfterAging(t *testing.T) {
	p, _ := New(Config{TotalUnits: 4000, BlockUnits: 4, Order: LIFO})
	// Interleave-allocate two files, free one, then allocate a third: the
	// third file's blocks come back most-recently-freed-first, i.e. in
	// descending address order — discontiguous.
	a, b := p.NewFile(0), p.NewFile(0)
	for i := 0; i < 10; i++ {
		if _, err := a.Grow(4); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Grow(4); err != nil {
			t.Fatal(err)
		}
	}
	a.TruncateTo(0)
	c := p.NewFile(0)
	if _, err := c.Grow(40); err != nil {
		t.Fatal(err)
	}
	if len(c.Extents()) < 5 {
		t.Fatalf("aged LIFO allocation produced %d extents; expected scatter", len(c.Extents()))
	}
}

func TestAddressOrderedStaysCompact(t *testing.T) {
	p, _ := New(Config{TotalUnits: 4000, BlockUnits: 4, Order: AddressOrdered})
	a, b := p.NewFile(0), p.NewFile(0)
	for i := 0; i < 10; i++ {
		a.Grow(4)
		b.Grow(4)
	}
	a.TruncateTo(0)
	c := p.NewFile(0)
	if _, err := c.Grow(40); err != nil {
		t.Fatal(err)
	}
	// The freed blocks of a are the alternating low-address blocks; the
	// address-ordered allocator reuses them lowest-first, giving exactly
	// the scatter pattern of a's old blocks (10 extents) but starting at 0.
	if c.Extents()[0].Start != 0 {
		t.Fatalf("address-ordered did not reuse lowest block: %v", c.Extents()[0])
	}
}

func TestGrowFailureRollsBack(t *testing.T) {
	p, _ := New(Config{TotalUnits: 16, BlockUnits: 4})
	f := p.NewFile(0)
	if _, err := f.Grow(17); err != alloc.ErrNoSpace {
		t.Fatalf("Grow = %v, want ErrNoSpace", err)
	}
	if f.AllocatedUnits() != 0 || p.FreeUnits() != 16 {
		t.Fatal("rollback incomplete")
	}
}

func TestTruncate(t *testing.T) {
	p, _ := New(Config{TotalUnits: 1000, BlockUnits: 4})
	f := p.NewFile(0)
	f.Grow(40)
	f.TruncateTo(18) // keeps ceil(18/4)=5 blocks
	if f.AllocatedUnits() != 20 {
		t.Fatalf("allocated = %d, want 20", f.AllocatedUnits())
	}
	f.TruncateTo(0)
	if f.AllocatedUnits() != 0 || p.FreeUnits() != 1000 {
		t.Fatal("full truncate wrong")
	}
}

func TestRandomizedConservation(t *testing.T) {
	const total = 40000
	for _, ord := range []Order{LIFO, AddressOrdered} {
		p, _ := New(Config{TotalUnits: total, BlockUnits: 16, Order: ord})
		rng := rand.New(rand.NewSource(3))
		var files []alloc.File
		for step := 0; step < 3000; step++ {
			if rng.Intn(3) < 2 {
				var f alloc.File
				if len(files) > 0 && rng.Intn(2) == 0 {
					f = files[rng.Intn(len(files))]
				} else {
					f = p.NewFile(0)
					files = append(files, f)
				}
				if _, err := f.Grow(int64(rng.Intn(100) + 1)); err != nil && err != alloc.ErrNoSpace {
					t.Fatal(err)
				}
			} else if len(files) > 0 {
				f := files[rng.Intn(len(files))]
				f.TruncateTo(rng.Int63n(f.AllocatedUnits() + 1))
			}
			if step%300 == 0 {
				var used int64
				var all []alloc.Extent
				for _, f := range files {
					used += f.AllocatedUnits()
					all = append(all, f.Extents()...)
				}
				if used+p.FreeUnits() != p.TotalUnits() {
					t.Fatalf("order %v step %d: conservation violated", ord, step)
				}
				if err := alloc.Validate(all, p.TotalUnits()); err != nil {
					t.Fatalf("order %v step %d: %v", ord, step, err)
				}
			}
		}
	}
}
