// Package alloc defines the interface every allocation policy implements
// and the types shared between them. The four policies of the paper live
// in subpackages:
//
//   - buddy:  binary buddy allocation, extents double the file (§4.1)
//   - rbuddy: the restricted buddy system (§4.2)
//   - extent: extent-based first-fit / best-fit allocation (§4.3)
//   - fixed:  the fixed-block baseline of the comparison section (§5)
//
// All addresses and lengths are in *disk units* — the minimum transfer
// granule of the disk system (1K in the paper's configuration). The file
// system layer (internal/fs) converts between bytes and units and issues
// the actual disk traffic; policies only decide placement.
package alloc

import (
	"errors"
	"fmt"
)

// ErrNoSpace is returned when a policy cannot satisfy an allocation
// request. Policies are strict: a request either succeeds in full or the
// allocation state is left unchanged. The paper's harness reacts per test
// type — an allocation test ends at the first failure (§3), the throughput
// tests log a disk-full condition and reschedule the event (§2.2).
var ErrNoSpace = errors.New("alloc: no space")

// Extent is a contiguous allocation [Start, Start+Len) in disk units.
type Extent struct {
	Start, Len int64
}

// End returns the first unit past the extent.
func (e Extent) End() int64 { return e.Start + e.Len }

// String implements fmt.Stringer.
func (e Extent) String() string { return fmt.Sprintf("[%d,+%d)", e.Start, e.Len) }

// Policy is a disk allocation policy over a linear space of disk units.
// Implementations are single-threaded, like the simulator that drives
// them.
type Policy interface {
	// Name identifies the policy in reports, e.g. "rbuddy(5,g1,clustered)".
	Name() string
	// TotalUnits returns the size of the managed space.
	TotalUnits() int64
	// FreeUnits returns the unallocated space. External fragmentation at
	// first failure is FreeUnits()/TotalUnits() (§3).
	FreeUnits() int64
	// NewFile creates an empty per-file allocation handle. sizeHint is the
	// file type's AllocationSize parameter in units (Table 2), which the
	// extent policy uses to choose the file's extent-size range; other
	// policies may ignore it.
	NewFile(sizeHint int64) File
}

// File is the per-file allocation state a policy maintains: the ordered
// extent list plus whatever growth bookkeeping the policy needs (current
// block-size class, the file's extent size, ...).
type File interface {
	// Extents returns the file's allocation in logical order. The returned
	// slice is owned by the File and must not be mutated or retained across
	// further calls.
	Extents() []Extent
	// AllocatedUnits returns the total allocation.
	AllocatedUnits() int64
	// Grow extends the allocation by at least min units, returning the
	// extents added (in logical order). On ErrNoSpace the allocation is
	// unchanged.
	Grow(min int64) ([]Extent, error)
	// TruncateTo shrinks the allocation to the smallest policy-expressible
	// size >= units (policies that allocate whole blocks cannot split
	// them). TruncateTo(0) frees everything.
	TruncateTo(units int64)
}

// OpStats counts a policy's allocation operations since construction.
// Allocs and Frees count whole allocation primitives (blocks or extents)
// handed out and returned; Coalesces counts free-list or buddy merges —
// the policy's ongoing fight against external fragmentation, surfaced by
// the metrics registry.
type OpStats struct {
	Allocs, Frees, Coalesces int64
}

// StatsReporter is the optional interface policies implement to expose
// operation counts to the metrics registry.
type StatsReporter interface {
	OpStats() OpStats
}

// FreeSpaceStats describes the shape of a policy's free space — the decay
// the aging experiment tracks over simulated days of churn (Sears & van
// Ingen's free-space-fragmentation metric). Fragments counts the discrete
// free pieces the policy could hand out without coalescing beyond what its
// structures already do (free-list runs, free blocks per order/class);
// LargestUnits is the biggest single piece. A policy whose FreeUnits stays
// flat while Fragments climbs and LargestUnits shrinks is aging badly.
type FreeSpaceStats struct {
	Fragments    int64
	LargestUnits int64
}

// FreeSpaceReporter is the optional interface policies implement to expose
// free-space shape to the aging experiment and the metrics registry.
type FreeSpaceReporter interface {
	FreeSpaceStats() FreeSpaceStats
}

// DescriptorCounter is the optional interface policies implement to report
// how many layout descriptors a file's metadata must hold: one per block
// for the block-based policies, one per as-allocated extent for the extent
// policy. The file system's metadata accounting ([STON81]'s "excessive
// amounts of meta data" criticism, which the paper's introduction cites)
// is built on it.
type DescriptorCounter interface {
	DescriptorCount() int
}

// AppendExtent appends e to list, merging it into the last entry when the
// two are physically adjacent — shared by every policy so contiguous
// allocations present as single long extents to the I/O path.
func AppendExtent(list []Extent, e Extent) []Extent {
	if n := len(list); n > 0 && list[n-1].End() == e.Start {
		list[n-1].Len += e.Len
		return list
	}
	return append(list, e)
}

// Validate checks an extent list for the invariants every policy must
// maintain: positive lengths, units within [0, total), and no overlap
// between extents (logical order need not be physical order). It is used
// by tests and the fs layer's paranoia checks.
func Validate(list []Extent, total int64) error {
	type span struct{ s, e int64 }
	spans := make([]span, 0, len(list))
	for i, e := range list {
		if e.Len <= 0 {
			return fmt.Errorf("alloc: extent %d has non-positive length %d", i, e.Len)
		}
		if e.Start < 0 || e.End() > total {
			return fmt.Errorf("alloc: extent %d %v outside [0,%d)", i, e, total)
		}
		spans = append(spans, span{e.Start, e.End()})
	}
	// O(n²) is fine at validation call sites (tests, assertions).
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].s < spans[j].e && spans[j].s < spans[i].e {
				return fmt.Errorf("alloc: extents %d and %d overlap", i, j)
			}
		}
	}
	return nil
}

// Sum returns the total length of an extent list.
func Sum(list []Extent) int64 {
	var n int64
	for _, e := range list {
		n += e.Len
	}
	return n
}
