// Package rbuddy implements the restricted buddy system of §4.2 — the
// paper's primary contribution. The policy supports a small set of block
// sizes (e.g. 1K, 8K, 64K, 1M, 16M); as a file grows, so does the block
// size it allocates, governed by a grow-policy multiplier g: allocation
// moves from size a_i to a_{i+1} once the file holds g·a_{i+1} bytes in
// a_i-sized blocks. Logically sequential blocks are placed physically
// contiguously whenever possible, so even files built from small blocks
// can be read with few seeks.
//
// Free space is managed per size class with address-sorted sets (the
// paper's sorted circular free lists / top-level bitmap), with generalized
// buddy semantics: a block of size N always starts at a multiple of N,
// larger free blocks are split on demand, and whenever every sibling of a
// parent block is free the siblings coalesce back into the parent.
//
// A clustered configuration divides the disk into fixed bookkeeping
// regions (32M in the paper) and applies the paper's region-selection
// algorithm:
//
//  1. the optimal region — the region of the file's most recently
//     allocated block, or of its file descriptor, or (for descriptor
//     allocations) the region after the last satisfied request;
//  2. any region holding a block of the correct size;
//  3. the next region with available space (splitting a larger block).
//
// In the unclustered configuration every block is eligible at each step.
package rbuddy

import (
	"fmt"

	"rofs/internal/alloc"
	"rofs/internal/container/rbtree"
	"rofs/internal/units"
)

// Config parameterizes the policy. Sizes are in disk units.
type Config struct {
	TotalUnits int64
	// SizesUnits are the supported block sizes, ascending; each must
	// divide the next (the paper's configurations: {1K,8K}, {1K,8K,64K},
	// {1K,8K,64K,1M}, {1K,8K,64K,1M,16M}, expressed in units).
	SizesUnits []int64
	// GrowFactor is the grow-policy multiplier g (the paper evaluates 1
	// and 2; fractional factors such as 1.5 interpolate between them).
	// Defaults to 1.
	GrowFactor float64
	// Clustered enables bookkeeping regions.
	Clustered bool
	// RegionUnits is the bookkeeping region size (the paper's 32M, in
	// units). Required when Clustered; must be a multiple of the largest
	// block size.
	RegionUnits int64
}

func (c *Config) validate() error {
	if c.TotalUnits <= 0 {
		return fmt.Errorf("rbuddy: TotalUnits %d must be positive", c.TotalUnits)
	}
	if len(c.SizesUnits) == 0 {
		return fmt.Errorf("rbuddy: no block sizes")
	}
	prev := int64(0)
	for i, s := range c.SizesUnits {
		if s <= 0 {
			return fmt.Errorf("rbuddy: non-positive block size %d", s)
		}
		if i > 0 {
			if s <= prev {
				return fmt.Errorf("rbuddy: sizes not ascending at %d", i)
			}
			if s%prev != 0 {
				return fmt.Errorf("rbuddy: size %d does not divide %d", prev, s)
			}
		}
		prev = s
	}
	if c.GrowFactor == 0 {
		c.GrowFactor = 1
	}
	if c.GrowFactor < 1 {
		return fmt.Errorf("rbuddy: GrowFactor %g must be >= 1", c.GrowFactor)
	}
	if c.Clustered {
		maxSize := c.SizesUnits[len(c.SizesUnits)-1]
		if c.RegionUnits <= 0 {
			return fmt.Errorf("rbuddy: clustered configuration needs RegionUnits")
		}
		if c.RegionUnits%maxSize != 0 {
			return fmt.Errorf("rbuddy: RegionUnits %d not a multiple of the largest block %d",
				c.RegionUnits, maxSize)
		}
	}
	return nil
}

// Policy is a restricted buddy allocator. Create with New.
type Policy struct {
	cfg   Config
	sizes []int64
	// trees[c] holds the start addresses of free blocks of size sizes[c],
	// in address order — the paper's sorted free lists (and, for the
	// largest class, its top-level bitmap).
	trees []*rbtree.Tree[int64, struct{}]
	free  int64
	stats alloc.OpStats

	nRegions      int
	lastSatisfied int // region index of the last satisfied request
}

// OpStats implements alloc.StatsReporter.
func (p *Policy) OpStats() alloc.OpStats { return p.stats }

// New builds a policy over cfg.TotalUnits units, all free.
func New(cfg Config) (*Policy, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Policy{cfg: cfg, sizes: cfg.SizesUnits}
	p.trees = make([]*rbtree.Tree[int64, struct{}], len(p.sizes))
	for i := range p.trees {
		p.trees[i] = rbtree.New[int64, struct{}](func(a, b int64) bool { return a < b })
	}
	if cfg.Clustered {
		p.nRegions = int(units.CeilDiv(cfg.TotalUnits, cfg.RegionUnits))
	} else {
		p.nRegions = 1
	}
	// Cover the space greedily with maximal aligned blocks. Space smaller
	// than the smallest block (a sub-1K tail) is unusable.
	for addr := int64(0); addr+p.sizes[0] <= cfg.TotalUnits; {
		c := 0
		for n := len(p.sizes) - 1; n > 0; n-- {
			if addr%p.sizes[n] == 0 && addr+p.sizes[n] <= cfg.TotalUnits {
				c = n
				break
			}
		}
		p.trees[c].Set(addr, struct{}{})
		p.free += p.sizes[c]
		addr += p.sizes[c]
	}
	return p, nil
}

// Name implements alloc.Policy.
func (p *Policy) Name() string {
	mode := "unclustered"
	if p.cfg.Clustered {
		mode = "clustered"
	}
	return fmt.Sprintf("rbuddy(%d sizes,g%g,%s)", len(p.sizes), p.cfg.GrowFactor, mode)
}

// TotalUnits implements alloc.Policy.
func (p *Policy) TotalUnits() int64 { return p.cfg.TotalUnits }

// FreeUnits implements alloc.Policy.
func (p *Policy) FreeUnits() int64 { return p.free }

// FreeBlockCounts returns how many free blocks exist per size class — a
// diagnostic for the compactness the paper claims for this free map.
func (p *Policy) FreeBlockCounts() []int {
	out := make([]int, len(p.trees))
	for i, t := range p.trees {
		out[i] = t.Len()
	}
	return out
}

// FreeSpaceStats implements alloc.FreeSpaceReporter: free blocks across
// all size classes are the fragments, the largest being the biggest class
// with a free block.
func (p *Policy) FreeSpaceStats() alloc.FreeSpaceStats {
	var st alloc.FreeSpaceStats
	for c, t := range p.trees {
		if n := t.Len(); n > 0 {
			st.Fragments += int64(n)
			st.LargestUnits = p.sizes[c]
		}
	}
	return st
}

func (p *Policy) region(addr int64) int {
	if !p.cfg.Clustered {
		return 0
	}
	return int(addr / p.cfg.RegionUnits)
}

func (p *Policy) regionBounds(r int) (lo, hi int64) {
	if !p.cfg.Clustered {
		return 0, p.cfg.TotalUnits
	}
	lo = int64(r) * p.cfg.RegionUnits
	hi = lo + p.cfg.RegionUnits
	if hi > p.cfg.TotalUnits {
		hi = p.cfg.TotalUnits
	}
	return lo, hi
}

// findExact returns a free block of class c within [lo, hi), preferring
// the first block at address >= hint (then wrapping to lo). It does not
// remove the block.
func (p *Policy) findExact(c int, lo, hi, hint int64) (int64, bool) {
	tree := p.trees[c]
	scan := func(from, to int64) (int64, bool) {
		found, ok := int64(0), false
		tree.AscendFrom(from, func(k int64, _ struct{}) bool {
			if k < to {
				found, ok = k, true
			}
			return false
		})
		return found, ok
	}
	if hint > lo && hint < hi {
		if addr, ok := scan(hint, hi); ok {
			return addr, true
		}
	}
	return scan(lo, hi)
}

// findLarger returns a free block of the smallest class > c within
// [lo, hi), with the same hint preference.
func (p *Policy) findLarger(c int, lo, hi, hint int64) (int64, int, bool) {
	for s := c + 1; s < len(p.sizes); s++ {
		if addr, ok := p.findExact(s, lo, hi, hint); ok {
			return addr, s, true
		}
	}
	return 0, 0, false
}

// take removes a found block of class s and splits it down so that its
// lowest child of class c is allocated; the remaining siblings at each
// level become free blocks. It returns the allocated address.
func (p *Policy) take(addr int64, s, c int) int64 {
	if !p.trees[s].Delete(addr) {
		panic(fmt.Sprintf("rbuddy: take of absent block %d class %d", addr, s))
	}
	for l := s - 1; l >= c; l-- {
		count := p.sizes[l+1] / p.sizes[l]
		for k := int64(1); k < count; k++ {
			p.trees[l].Set(addr+k*p.sizes[l], struct{}{})
		}
	}
	p.free -= p.sizes[c]
	p.stats.Allocs++
	p.lastSatisfied = p.region(addr)
	return addr
}

// claimAt allocates the specific class-c block at addr, splitting a
// containing larger free block if necessary. It reports whether addr was
// obtainable. addr must be aligned to sizes[c].
func (p *Policy) claimAt(addr int64, c int) bool {
	if addr < 0 || addr+p.sizes[c] > p.cfg.TotalUnits {
		return false
	}
	if p.trees[c].Delete(addr) {
		p.free -= p.sizes[c]
		p.stats.Allocs++
		p.lastSatisfied = p.region(addr)
		return true
	}
	for s := c + 1; s < len(p.sizes); s++ {
		base := units.RoundDown(addr, p.sizes[s])
		if !p.trees[s].Delete(base) {
			continue
		}
		// Split down level by level, keeping the child containing addr and
		// freeing its siblings.
		for l := s - 1; l >= c; l-- {
			parent := units.RoundDown(addr, p.sizes[l+1])
			keep := units.RoundDown(addr, p.sizes[l])
			count := p.sizes[l+1] / p.sizes[l]
			for k := int64(0); k < count; k++ {
				if child := parent + k*p.sizes[l]; child != keep {
					p.trees[l].Set(child, struct{}{})
				}
			}
		}
		p.free -= p.sizes[c]
		p.stats.Allocs++
		p.lastSatisfied = p.region(addr)
		return true
	}
	return false
}

// allocBlock allocates one block of class c following the paper's region
// selection algorithm. lastEnd is the end address of the file's most
// recent block (0 when the file is empty) and fdRegion the region of its
// descriptor.
func (p *Policy) allocBlock(c int, lastEnd int64, fdRegion int) (int64, error) {
	size := p.sizes[c]
	// Step 0: contiguity — the next sequential block of this size. (When
	// the block size just grew, this is the next *aligned* block, which is
	// the Figure 3 seek the paper discusses.)
	if lastEnd > 0 {
		if cand := units.RoundUp(lastEnd, size); p.claimAt(cand, c) {
			return cand, nil
		}
	}
	if p.cfg.Clustered {
		r := fdRegion
		if lastEnd > 0 {
			r = p.region(lastEnd - 1)
		}
		lo, hi := p.regionBounds(r)
		// Step 1a: a block of the correct size in the optimal region.
		if addr, ok := p.findExact(c, lo, hi, lastEnd); ok {
			return p.take(addr, c, c), nil
		}
		// Step 1b: adequate contiguous space in the optimal region — split
		// a larger block, preferably the next sequential one.
		if addr, s, ok := p.findLarger(c, lo, hi, lastEnd); ok {
			return p.take(addr, s, c), nil
		}
		// Step 2: any region with a block of the correct size.
		if addr, ok := p.findExact(c, 0, p.cfg.TotalUnits, lastEnd); ok {
			return p.take(addr, c, c), nil
		}
		// Step 3: only now does any block become split.
		if addr, s, ok := p.findLarger(c, 0, p.cfg.TotalUnits, lastEnd); ok {
			return p.take(addr, s, c), nil
		}
		return 0, alloc.ErrNoSpace
	}
	// Unclustered: correct size anywhere, then split anywhere.
	if addr, ok := p.findExact(c, 0, p.cfg.TotalUnits, lastEnd); ok {
		return p.take(addr, c, c), nil
	}
	if addr, s, ok := p.findLarger(c, 0, p.cfg.TotalUnits, lastEnd); ok {
		return p.take(addr, s, c), nil
	}
	return 0, alloc.ErrNoSpace
}

// freeBlock returns a class-c block and coalesces complete sibling sets
// back into their parents, level by level.
func (p *Policy) freeBlock(addr int64, c int) {
	p.trees[c].Set(addr, struct{}{})
	p.free += p.sizes[c]
	p.stats.Frees++
	for c < len(p.sizes)-1 {
		parentSize := p.sizes[c+1]
		base := units.RoundDown(addr, parentSize)
		if base+parentSize > p.cfg.TotalUnits {
			break // a tail parent that can never be whole
		}
		count := parentSize / p.sizes[c]
		complete := true
		for k := int64(0); k < count; k++ {
			if !p.trees[c].Contains(base + k*p.sizes[c]) {
				complete = false
				break
			}
		}
		if !complete {
			break
		}
		for k := int64(0); k < count; k++ {
			p.trees[c].Delete(base + k*p.sizes[c])
		}
		addr = base
		c++
		p.stats.Coalesces++
		p.trees[c].Set(addr, struct{}{})
	}
}

// NewFile implements alloc.Policy. The restricted buddy policy sizes
// blocks by the grow policy alone, so the hint is ignored. For clustered
// configurations the file descriptor is placed in the region after the
// last satisfied request (the paper's "next region" rule).
func (p *Policy) NewFile(int64) alloc.File {
	f := &file{
		p:            p,
		unitsAtClass: make([]int64, len(p.sizes)),
	}
	if p.cfg.Clustered {
		f.fdRegion = (p.lastSatisfied + 1) % p.nRegions
		p.lastSatisfied = f.fdRegion
	}
	return f
}

type rblock struct {
	addr  int64
	class int
}

type file struct {
	p            *Policy
	blocks       []rblock
	extents      []alloc.Extent
	stale        bool
	allocated    int64
	unitsAtClass []int64
	level        int
	lastEnd      int64
	fdRegion     int
}

func (f *file) Extents() []alloc.Extent {
	if f.stale {
		f.extents = f.extents[:0]
		for _, b := range f.blocks {
			f.extents = alloc.AppendExtent(f.extents, alloc.Extent{Start: b.addr, Len: f.p.sizes[b.class]})
		}
		f.stale = false
	}
	return f.extents
}

func (f *file) AllocatedUnits() int64 { return f.allocated }

// BlockCount returns the number of blocks (before physical merging).
func (f *file) BlockCount() int { return len(f.blocks) }

// DescriptorCount implements alloc.DescriptorCounter: one descriptor per
// block; the grow policy bounds blocks per size class, so descriptors stay
// few even for huge files.
func (f *file) DescriptorCount() int { return len(f.blocks) }

// nextClass advances the grow policy: allocation moves up a size once the
// file holds g·a_{i+1} units in a_i blocks (§4.2). Unit counts and block
// sizes are far below 2^53, so the float comparison is exact for integer
// grow factors and well-defined for fractional ones.
func nextClass(level int, unitsAtClass []int64, sizes []int64, g float64) int {
	for level < len(sizes)-1 && float64(unitsAtClass[level]) >= g*float64(sizes[level+1]) {
		level++
	}
	return level
}

// Grow implements alloc.File: blocks of the grow-policy size are allocated
// until at least min units have been added. Nothing commits on failure.
func (f *file) Grow(min int64) ([]alloc.Extent, error) {
	if min <= 0 {
		return nil, nil
	}
	// Tentative state: committed only if every block is obtained.
	uac := make([]int64, len(f.unitsAtClass))
	copy(uac, f.unitsAtClass)
	level := f.level
	lastEnd := f.lastEnd
	var got int64
	var newBlocks []rblock
	for got < min {
		level = nextClass(level, uac, f.p.sizes, f.p.cfg.GrowFactor)
		addr, err := f.p.allocBlock(level, lastEnd, f.fdRegion)
		if err != nil {
			for _, b := range newBlocks {
				f.p.freeBlock(b.addr, b.class)
			}
			return nil, err
		}
		size := f.p.sizes[level]
		newBlocks = append(newBlocks, rblock{addr, level})
		uac[level] += size
		lastEnd = addr + size
		got += size
	}
	f.blocks = append(f.blocks, newBlocks...)
	copy(f.unitsAtClass, uac)
	f.level = level
	f.lastEnd = lastEnd
	f.allocated += got
	f.stale = true
	added := make([]alloc.Extent, 0, len(newBlocks))
	for _, b := range newBlocks {
		added = alloc.AppendExtent(added, alloc.Extent{Start: b.addr, Len: f.p.sizes[b.class]})
	}
	return added, nil
}

// TruncateTo implements alloc.File: whole blocks wholly beyond the target
// are freed, and the grow-policy level is recomputed from what remains.
func (f *file) TruncateTo(target int64) {
	if target < 0 {
		target = 0
	}
	for len(f.blocks) > 0 {
		last := f.blocks[len(f.blocks)-1]
		size := f.p.sizes[last.class]
		if f.allocated-size < target {
			break
		}
		f.p.freeBlock(last.addr, last.class)
		f.blocks = f.blocks[:len(f.blocks)-1]
		f.allocated -= size
		f.unitsAtClass[last.class] -= size
	}
	f.level = 0
	for i, u := range f.unitsAtClass {
		if u > 0 {
			f.level = i
		}
	}
	f.level = nextClass(f.level, f.unitsAtClass, f.p.sizes, f.p.cfg.GrowFactor)
	if len(f.blocks) == 0 {
		f.lastEnd = 0
	} else {
		last := f.blocks[len(f.blocks)-1]
		f.lastEnd = last.addr + f.p.sizes[last.class]
	}
	f.stale = true
}
