package rbuddy

import (
	"math/rand"
	"testing"

	"rofs/internal/alloc"
)

// sizes555 is the paper's 5-size configuration in 1K units.
var sizes5 = []int64{1, 8, 64, 1024, 16384}

func newPolicy(t *testing.T, cfg Config) *Policy {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func simple(t *testing.T, total int64, sizes []int64, g float64) *Policy {
	return newPolicy(t, Config{TotalUnits: total, SizesUnits: sizes, GrowFactor: g})
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{TotalUnits: 0, SizesUnits: []int64{1}},
		{TotalUnits: 100, SizesUnits: nil},
		{TotalUnits: 100, SizesUnits: []int64{8, 1}},
		{TotalUnits: 100, SizesUnits: []int64{2, 3}}, // 2 does not divide 3
		{TotalUnits: 100, SizesUnits: []int64{0, 8}},
		{TotalUnits: 100, SizesUnits: []int64{1, 8}, GrowFactor: -1},
		{TotalUnits: 100, SizesUnits: []int64{1, 8}, Clustered: true}, // no region size
		{TotalUnits: 100, SizesUnits: []int64{1, 8}, Clustered: true, RegionUnits: 12},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

func TestInitialCoverage(t *testing.T) {
	// 100 units with sizes {1,8}: 12 eight-blocks + 4 one-blocks = 100.
	p := simple(t, 100, []int64{1, 8}, 1)
	if p.FreeUnits() != 100 {
		t.Fatalf("FreeUnits = %d", p.FreeUnits())
	}
	counts := p.FreeBlockCounts()
	if counts[1] != 12 || counts[0] != 4 {
		t.Fatalf("initial free blocks = %v, want [4 12]", counts)
	}
}

func TestGrowPolicySequence(t *testing.T) {
	for _, tc := range []struct {
		g    float64
		want []int64 // sizes of the first blocks allocated
	}{
		{1, []int64{1, 1, 1, 1, 1, 1, 1, 1, 8, 8}},
		{1.5, []int64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 8}},
		{2, []int64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 8}},
	} {
		p := simple(t, 1<<16, []int64{1, 8, 64}, tc.g)
		f := p.NewFile(0).(*file)
		for range tc.want {
			if _, err := f.Grow(1); err != nil {
				t.Fatal(err)
			}
		}
		for i, b := range f.blocks {
			if got := p.sizes[b.class]; got != tc.want[i] {
				t.Fatalf("g=%g: block %d size %d, want %d", tc.g, i, got, tc.want[i])
			}
		}
	}
}

func TestContiguousAllocation(t *testing.T) {
	// On an empty disk, a growing file should be laid out contiguously
	// while block sizes stay aligned: 8×1 then 8×8 = one extent [0,72).
	p := simple(t, 1<<16, []int64{1, 8, 64}, 1)
	f := p.NewFile(0)
	for i := 0; i < 16; i++ {
		if _, err := f.Grow(1); err != nil {
			t.Fatal(err)
		}
	}
	ext := f.Extents()
	if len(ext) != 1 || ext[0] != (alloc.Extent{Start: 0, Len: 72}) {
		t.Fatalf("extents = %v, want one extent [0,+72)", ext)
	}
}

func TestFigure3GrowBreak(t *testing.T) {
	// The Figure 3 interaction: with g=1 and sizes {1,8,64}, a file holds
	// 8 + 64 = 72 units when the block size grows to 64 — but the next
	// aligned 64-block starts at 128, so the file pays a discontinuity.
	p := simple(t, 1<<16, []int64{1, 8, 64}, 1)
	f := p.NewFile(0)
	if _, err := f.Grow(73); err != nil { // forces the first 64-block
		t.Fatal(err)
	}
	ext := f.Extents()
	if len(ext) != 2 {
		t.Fatalf("extents = %v, want the Figure 3 split", ext)
	}
	if ext[0] != (alloc.Extent{Start: 0, Len: 72}) || ext[1] != (alloc.Extent{Start: 128, Len: 64}) {
		t.Fatalf("extents = %v, want [0,+72) and [128,+64)", ext)
	}
	// The skipped hole [72,128) must still be free.
	if p.FreeUnits() != 1<<16-72-64 {
		t.Fatalf("FreeUnits = %d", p.FreeUnits())
	}
}

func TestSplitLargerBlock(t *testing.T) {
	// All space starts as 64-blocks; a 1-unit allocation must split one,
	// leaving 7 one-blocks and 7 eight-blocks free inside it.
	p := simple(t, 64, []int64{1, 8, 64}, 1)
	f := p.NewFile(0)
	if _, err := f.Grow(1); err != nil {
		t.Fatal(err)
	}
	counts := p.FreeBlockCounts()
	if counts[0] != 7 || counts[1] != 7 || counts[2] != 0 {
		t.Fatalf("free blocks after split = %v, want [7 7 0]", counts)
	}
	if p.FreeUnits() != 63 {
		t.Fatalf("FreeUnits = %d", p.FreeUnits())
	}
}

func TestCoalescingRestoresLargeBlocks(t *testing.T) {
	p := simple(t, 128, []int64{1, 8, 64}, 1)
	var files []alloc.File
	for i := 0; i < 16; i++ {
		f := p.NewFile(0)
		if _, err := f.Grow(8); err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if p.FreeUnits() != 0 {
		t.Fatalf("free = %d after filling", p.FreeUnits())
	}
	for _, f := range files {
		f.TruncateTo(0)
	}
	counts := p.FreeBlockCounts()
	if counts[2] != 2 || counts[1] != 0 || counts[0] != 0 {
		t.Fatalf("free blocks after full release = %v, want [0 0 2]", counts)
	}
}

func TestStrictFailureDespiteFreeSpace(t *testing.T) {
	p := simple(t, 64, []int64{1, 8}, 1)
	// Pin every other 1-unit block so no 8-block can ever coalesce.
	var files []alloc.File
	for i := 0; i < 64; i++ {
		f := p.NewFile(0)
		if _, err := f.Grow(1); err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	for i := 0; i < 64; i += 2 {
		files[i].TruncateTo(0)
	}
	if p.FreeUnits() != 32 {
		t.Fatalf("free = %d", p.FreeUnits())
	}
	// A file needing an 8-block fails: half the disk is free but only in
	// fragmented 1-blocks.
	big := p.NewFile(0)
	if _, err := big.Grow(9); err != alloc.ErrNoSpace {
		t.Fatalf("Grow = %v, want ErrNoSpace", err)
	}
	if big.AllocatedUnits() != 0 {
		t.Fatal("failed Grow left allocation")
	}
}

func TestClusteredFdRegionsRotate(t *testing.T) {
	p := newPolicy(t, Config{
		TotalUnits:  4 * 64,
		SizesUnits:  []int64{1, 8, 64},
		GrowFactor:  1,
		Clustered:   true,
		RegionUnits: 64,
	})
	// Consecutive new files get consecutive regions (the "next region"
	// descriptor rule), so their first blocks land in different regions.
	a := p.NewFile(0).(*file)
	b := p.NewFile(0).(*file)
	c := p.NewFile(0).(*file)
	if a.fdRegion == b.fdRegion || b.fdRegion == c.fdRegion {
		t.Fatalf("fd regions %d,%d,%d did not rotate", a.fdRegion, b.fdRegion, c.fdRegion)
	}
	for _, f := range []*file{a, b, c} {
		if _, err := f.Grow(1); err != nil {
			t.Fatal(err)
		}
	}
	ra := p.region(a.blocks[0].addr)
	rb := p.region(b.blocks[0].addr)
	rc := p.region(c.blocks[0].addr)
	if ra == rb || rb == rc {
		t.Fatalf("first blocks in regions %d,%d,%d; want clustering to spread them", ra, rb, rc)
	}
}

func TestClusteredKeepsFileInRegion(t *testing.T) {
	p := newPolicy(t, Config{
		TotalUnits:  4 * 64,
		SizesUnits:  []int64{1, 8, 64},
		GrowFactor:  1,
		Clustered:   true,
		RegionUnits: 64,
	})
	f := p.NewFile(0).(*file)
	for i := 0; i < 8; i++ {
		if _, err := f.Grow(1); err != nil {
			t.Fatal(err)
		}
	}
	r := p.region(f.blocks[0].addr)
	for _, b := range f.blocks {
		if p.region(b.addr) != r {
			t.Fatalf("block at %d left region %d", b.addr, r)
		}
	}
}

func TestTruncateRecomputesLevel(t *testing.T) {
	p := simple(t, 1<<16, []int64{1, 8, 64}, 1)
	f := p.NewFile(0).(*file)
	if _, err := f.Grow(73); err != nil { // ends at level 2 (64-blocks)
		t.Fatal(err)
	}
	if f.level != 2 {
		t.Fatalf("level = %d, want 2", f.level)
	}
	f.TruncateTo(4) // back to a few 1-blocks
	if f.level != 0 {
		t.Fatalf("level after truncate = %d, want 0", f.level)
	}
	if f.AllocatedUnits() != 4 {
		t.Fatalf("allocated = %d", f.AllocatedUnits())
	}
	// Growing again resumes with 1-unit blocks.
	added, err := f.Grow(1)
	if err != nil {
		t.Fatal(err)
	}
	if added[0].Len != 1 {
		t.Fatalf("post-truncate block size %d, want 1", added[0].Len)
	}
}

func TestGrowFailureIsAtomic(t *testing.T) {
	p := simple(t, 64, []int64{1, 8}, 1)
	f := p.NewFile(0)
	if _, err := f.Grow(60); err != nil {
		t.Fatal(err)
	}
	free0 := p.FreeUnits()
	g := p.NewFile(0)
	if _, err := g.Grow(60); err != alloc.ErrNoSpace {
		t.Fatalf("Grow = %v", err)
	}
	if p.FreeUnits() != free0 {
		t.Fatalf("failed grow leaked space: %d -> %d", free0, p.FreeUnits())
	}
}

func TestPaperConfiguration(t *testing.T) {
	// The paper's full 5-size clustered configuration over 2.7G: exercise
	// a large file's growth through all five classes.
	p := newPolicy(t, Config{
		TotalUnits:  2764800,
		SizesUnits:  sizes5,
		GrowFactor:  1,
		Clustered:   true,
		RegionUnits: 32 * 1024, // 32M in 1K units
	})
	f := p.NewFile(0).(*file)
	if _, err := f.Grow(500 * 1024); err != nil { // a 500M file
		t.Fatal(err)
	}
	if f.level != 4 {
		t.Fatalf("level = %d, want 4 (16M blocks)", f.level)
	}
	// 8×1K + 8×8K + 16×64K + 16×1M + N×16M: block count stays small.
	if n := f.BlockCount(); n > 80 {
		t.Fatalf("500M file used %d blocks; expected well under 80", n)
	}
	if err := alloc.Validate(f.Extents(), p.TotalUnits()); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedConservation(t *testing.T) {
	for _, clustered := range []bool{false, true} {
		const total = 4096
		p := newPolicy(t, Config{
			TotalUnits:  total,
			SizesUnits:  []int64{1, 8, 64},
			GrowFactor:  1,
			Clustered:   clustered,
			RegionUnits: 512,
		})
		rng := rand.New(rand.NewSource(21))
		var files []alloc.File
		for step := 0; step < 4000; step++ {
			if rng.Intn(3) < 2 {
				var f alloc.File
				if len(files) > 0 && rng.Intn(2) == 0 {
					f = files[rng.Intn(len(files))]
				} else {
					f = p.NewFile(0)
					files = append(files, f)
				}
				if _, err := f.Grow(int64(rng.Intn(32) + 1)); err != nil && err != alloc.ErrNoSpace {
					t.Fatal(err)
				}
			} else if len(files) > 0 {
				f := files[rng.Intn(len(files))]
				f.TruncateTo(rng.Int63n(f.AllocatedUnits() + 1))
			}
			if step%250 == 0 {
				var used int64
				var all []alloc.Extent
				for _, f := range files {
					used += f.AllocatedUnits()
					all = append(all, f.Extents()...)
				}
				if used+p.FreeUnits() != total {
					t.Fatalf("clustered=%v step %d: used %d + free %d != %d",
						clustered, step, used, p.FreeUnits(), total)
				}
				if err := alloc.Validate(all, total); err != nil {
					t.Fatalf("clustered=%v step %d: %v", clustered, step, err)
				}
			}
		}
	}
}

func TestBlockAlignmentInvariant(t *testing.T) {
	p := simple(t, 1<<14, []int64{1, 8, 64, 512}, 2)
	rng := rand.New(rand.NewSource(2))
	var files []*file
	for i := 0; i < 30; i++ {
		f := p.NewFile(0).(*file)
		if _, err := f.Grow(int64(rng.Intn(600) + 1)); err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	for _, f := range files {
		for _, b := range f.blocks {
			size := p.sizes[b.class]
			if b.addr%size != 0 {
				t.Fatalf("block at %d size %d misaligned", b.addr, size)
			}
		}
	}
}
