package rbuddy

import (
	"testing"
	"testing/quick"

	"rofs/internal/alloc"
	"rofs/internal/units"
)

// TestQuickRBuddyInvariants drives the restricted buddy allocator with
// arbitrary grow/truncate scripts via testing/quick and checks, after
// every operation: space conservation, extent validity, that every block
// is one of the configured sizes, and that blocks are size-aligned — for
// both a clustered grow-factor-1 configuration and an unclustered
// fractional one.
func TestQuickRBuddyInvariants(t *testing.T) {
	const total = 1 << 12
	configs := []Config{
		{TotalUnits: total, SizesUnits: []int64{1, 8, 64}, GrowFactor: 1, Clustered: true, RegionUnits: 512},
		{TotalUnits: total, SizesUnits: []int64{1, 8, 64, 512}, GrowFactor: 1.5},
	}
	for _, cfg := range configs {
		prop := func(script []uint16) bool {
			p, err := New(cfg)
			if err != nil {
				return false
			}
			var files []*file
			for _, op := range script {
				arg := int64(op&0x3FF) + 1
				switch {
				case op&0x8000 == 0 || len(files) == 0: // grow (new or existing)
					var f *file
					if len(files) > 0 && op&0x4000 != 0 {
						f = files[int(op>>8)%len(files)]
					} else {
						f = p.NewFile(0).(*file)
						files = append(files, f)
					}
					if _, err := f.Grow(arg); err != nil && err != alloc.ErrNoSpace {
						return false
					}
				default: // truncate
					f := files[int(op>>8)%len(files)]
					f.TruncateTo(arg % (f.AllocatedUnits() + 1))
				}
				var used int64
				for _, f := range files {
					used += f.AllocatedUnits()
					for _, b := range f.blocks {
						size := p.sizes[b.class]
						if !units.IsAligned(b.addr, size) {
							return false
						}
					}
				}
				if used+p.FreeUnits() != total {
					return false
				}
			}
			var all []alloc.Extent
			for _, f := range files {
				all = append(all, f.Extents()...)
			}
			return alloc.Validate(all, total) == nil
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("config %+v: %v", cfg, err)
		}
	}
}

// TestQuickGrowPolicyMonotone: under arbitrary unit counts, the grow
// policy's size class never moves down and never skips past the
// configured ladder.
func TestQuickGrowPolicyMonotone(t *testing.T) {
	sizes := []int64{1, 8, 64, 512}
	prop := func(raw [4]uint16, level uint8) bool {
		uac := make([]int64, len(sizes))
		for i := range uac {
			uac[i] = int64(raw[i])
		}
		start := int(level) % len(sizes)
		next := nextClass(start, uac, sizes, 1)
		return next >= start && next < len(sizes)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
