package rbuddy

import (
	"testing"

	"rofs/internal/alloc"
)

// benchConfig is a 5-size restricted buddy space (units of 1K: 1K, 8K,
// 64K, 512K, 4M blocks over a 1G space), clustered into 32M regions —
// the paper's shape at reduced scale.
func benchConfig(clustered bool) Config {
	cfg := Config{
		TotalUnits: 1 << 20,
		SizesUnits: []int64{1, 8, 64, 512, 4096},
		GrowFactor: 1,
	}
	if clustered {
		cfg.Clustered = true
		cfg.RegionUnits = 32768
	}
	return cfg
}

// BenchmarkGrowTruncate measures the grow/coalesce hot path: each cycle
// walks a file up the block-size ladder (splitting larger blocks as
// classes empty) and truncates it back, coalescing the pieces.
func BenchmarkGrowTruncate(b *testing.B) {
	for _, mode := range []struct {
		name      string
		clustered bool
	}{
		{"clustered", true},
		{"unclustered", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			p, err := New(benchConfig(mode.clustered))
			if err != nil {
				b.Fatal(err)
			}
			f := p.NewFile(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for f.AllocatedUnits() < 1024 {
					if _, err := f.Grow(1); err != nil {
						b.Fatal(err)
					}
				}
				f.TruncateTo(0)
			}
			b.StopTimer()
			f.TruncateTo(0)
			if p.FreeUnits() != p.TotalUnits() {
				b.Fatalf("leaked units: %d free of %d", p.FreeUnits(), p.TotalUnits())
			}
		})
	}
}

// BenchmarkChurn interleaves a population of files growing and being
// truncated, so allocations hit the region-preference paths (optimal
// region, any region with the right size, next region with space) rather
// than always finding the last-split block.
func BenchmarkChurn(b *testing.B) {
	p, err := New(benchConfig(true))
	if err != nil {
		b.Fatal(err)
	}
	const nFiles = 64
	files := make([]alloc.File, nFiles)
	for i := range files {
		files[i] = p.NewFile(0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := files[i%nFiles]
		if f.AllocatedUnits() >= 512 {
			f.TruncateTo(0)
		} else if _, err := f.Grow(1); err != nil {
			b.Fatal(err)
		}
	}
}
