package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Analysis summarizes a trace produced by this package's writers via the
// core harness: per-drive activity from "seg" records and per-operation
// latency from "op" records. cmd/rofs-trace renders it.
type Analysis struct {
	Events   int64
	FirstMS  float64
	LastMS   float64
	Drives   []DriveSummary
	Ops      []OpSummary
	Unknown  int64 // lines with unrecognized kinds (skipped)
	BadLines int64 // malformed lines (skipped)
}

// DriveSummary aggregates one drive's "seg" records.
type DriveSummary struct {
	Drive      int
	Segments   int64
	Bytes      int64
	WriteBytes int64
	BusyMS     float64 // sum of service times
}

// OpSummary aggregates "op" records by kind.
type OpSummary struct {
	Kind      string
	Count     int64
	MeanLatMS float64
	MaxLatMS  float64
}

// Analyze parses a trace stream. Malformed lines are counted and skipped
// rather than failing the whole analysis — traces get truncated.
func Analyze(r io.Reader) (*Analysis, error) {
	a := &Analysis{FirstMS: -1}
	drives := map[int]*DriveSummary{}
	type opAcc struct {
		n   int64
		sum float64
		max float64
	}
	ops := map[string]*opAcc{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.SplitN(line, "\t", 3)
		if len(fields) != 3 {
			a.BadLines++
			continue
		}
		ts, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			a.BadLines++
			continue
		}
		a.Events++
		if a.FirstMS < 0 || ts < a.FirstMS {
			a.FirstMS = ts
		}
		if ts > a.LastMS {
			a.LastMS = ts
		}
		kv := parseKV(fields[2])
		switch fields[1] {
		case "seg":
			d, err1 := strconv.Atoi(kv["disk"])
			n, err2 := strconv.ParseInt(kv["n"], 10, 64)
			svc, err3 := strconv.ParseFloat(kv["svc"], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				a.BadLines++
				continue
			}
			ds := drives[d]
			if ds == nil {
				ds = &DriveSummary{Drive: d}
				drives[d] = ds
			}
			ds.Segments++
			ds.Bytes += n
			if strings.Contains(fields[2], " w ") {
				ds.WriteBytes += n
			}
			ds.BusyMS += svc
		case "op":
			kind := strings.Fields(fields[2])[0]
			lat, err := strconv.ParseFloat(kv["lat"], 64)
			if err != nil {
				a.BadLines++
				continue
			}
			acc := ops[kind]
			if acc == nil {
				acc = &opAcc{}
				ops[kind] = acc
			}
			acc.n++
			acc.sum += lat
			if lat > acc.max {
				acc.max = lat
			}
		default:
			a.Unknown++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	for _, ds := range drives {
		a.Drives = append(a.Drives, *ds)
	}
	sort.Slice(a.Drives, func(i, j int) bool { return a.Drives[i].Drive < a.Drives[j].Drive })
	for kind, acc := range ops {
		a.Ops = append(a.Ops, OpSummary{
			Kind:      kind,
			Count:     acc.n,
			MeanLatMS: acc.sum / float64(acc.n),
			MaxLatMS:  acc.max,
		})
	}
	sort.Slice(a.Ops, func(i, j int) bool { return a.Ops[i].Kind < a.Ops[j].Kind })
	return a, nil
}

// SpanMS returns the traced interval length.
func (a *Analysis) SpanMS() float64 {
	if a.FirstMS < 0 {
		return 0
	}
	return a.LastMS - a.FirstMS
}

// parseKV extracts k=v tokens from a detail field; bare tokens are
// ignored.
func parseKV(detail string) map[string]string {
	out := map[string]string{}
	for _, tok := range strings.Fields(detail) {
		if i := strings.IndexByte(tok, '='); i > 0 {
			out[tok[:i]] = tok[i+1:]
		}
	}
	return out
}
