package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Analysis summarizes a trace produced by this package's writers via the
// core harness: per-drive activity from "seg" records and per-operation
// latency from "op" records. cmd/rofs-trace renders it.
type Analysis struct {
	Events   int64
	FirstMS  float64
	LastMS   float64
	Drives   []DriveSummary
	Ops      []OpSummary
	Kinds    []KindSummary
	Unknown  int64 // lines with unrecognized kinds (skipped)
	BadLines int64 // malformed lines (skipped)
}

// DriveSummary aggregates one drive's "seg" records. The span-phase sums
// (Spans, WaitMS, SeekMS, RotMS, XferMS) come from span-enriched records —
// those carrying wait=/seek=/rot=/xfer= tokens — and stay zero for traces
// written before spans existed.
type DriveSummary struct {
	Drive      int
	Segments   int64
	Bytes      int64
	WriteBytes int64
	BusyMS     float64 // sum of service times

	Spans  int64   // segments with a full phase breakdown
	WaitMS float64 // queueing delay before service
	SeekMS float64 // head movement
	RotMS  float64 // rotational waits
	XferMS float64 // media transfer
}

// KindSummary aggregates every record of one kind: how many there were and
// the inter-arrival statistics of their timestamps (gaps between
// consecutive records of that kind, in stream order).
type KindSummary struct {
	Kind      string
	Count     int64
	FirstMS   float64
	LastMS    float64
	MeanGapMS float64 // 0 with fewer than two records
	MinGapMS  float64
	MaxGapMS  float64
}

// OpSummary aggregates "op" records by kind.
type OpSummary struct {
	Kind      string
	Count     int64
	MeanLatMS float64
	MaxLatMS  float64
}

// Analyze parses a trace stream. Malformed lines are counted and skipped
// rather than failing the whole analysis — traces get truncated.
func Analyze(r io.Reader) (*Analysis, error) {
	a := &Analysis{FirstMS: -1}
	drives := map[int]*DriveSummary{}
	type opAcc struct {
		n   int64
		sum float64
		max float64
	}
	ops := map[string]*opAcc{}
	type kindAcc struct {
		n              int64
		first, last    float64
		gapSum         float64
		gapMin, gapMax float64
		gaps           int64
	}
	kinds := map[string]*kindAcc{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.SplitN(line, "\t", 3)
		if len(fields) != 3 {
			a.BadLines++
			continue
		}
		ts, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			a.BadLines++
			continue
		}
		a.Events++
		if a.FirstMS < 0 || ts < a.FirstMS {
			a.FirstMS = ts
		}
		if ts > a.LastMS {
			a.LastMS = ts
		}
		ka := kinds[fields[1]]
		if ka == nil {
			ka = &kindAcc{first: ts}
			kinds[fields[1]] = ka
		} else {
			gap := ts - ka.last
			if gap < 0 {
				gap = 0 // out-of-order lines: clamp rather than skew the min
			}
			if ka.gaps == 0 || gap < ka.gapMin {
				ka.gapMin = gap
			}
			if gap > ka.gapMax {
				ka.gapMax = gap
			}
			ka.gapSum += gap
			ka.gaps++
		}
		ka.n++
		ka.last = ts
		kv := parseKV(fields[2])
		switch fields[1] {
		case "seg":
			d, err1 := strconv.Atoi(kv["disk"])
			n, err2 := strconv.ParseInt(kv["n"], 10, 64)
			svc, err3 := strconv.ParseFloat(kv["svc"], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				a.BadLines++
				continue
			}
			ds := drives[d]
			if ds == nil {
				ds = &DriveSummary{Drive: d}
				drives[d] = ds
			}
			ds.Segments++
			ds.Bytes += n
			if strings.Contains(fields[2], " w ") {
				ds.WriteBytes += n
			}
			ds.BusyMS += svc
			// Span-enriched records carry the lifecycle phases as extra
			// tokens; all four must parse for the record to count as a span.
			wait, e1 := strconv.ParseFloat(kv["wait"], 64)
			seek, e2 := strconv.ParseFloat(kv["seek"], 64)
			rot, e3 := strconv.ParseFloat(kv["rot"], 64)
			xfer, e4 := strconv.ParseFloat(kv["xfer"], 64)
			if e1 == nil && e2 == nil && e3 == nil && e4 == nil {
				ds.Spans++
				ds.WaitMS += wait
				ds.SeekMS += seek
				ds.RotMS += rot
				ds.XferMS += xfer
			}
		case "op":
			kind := strings.Fields(fields[2])[0]
			lat, err := strconv.ParseFloat(kv["lat"], 64)
			if err != nil {
				a.BadLines++
				continue
			}
			acc := ops[kind]
			if acc == nil {
				acc = &opAcc{}
				ops[kind] = acc
			}
			acc.n++
			acc.sum += lat
			if lat > acc.max {
				acc.max = lat
			}
		default:
			a.Unknown++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	for _, ds := range drives {
		a.Drives = append(a.Drives, *ds)
	}
	sort.Slice(a.Drives, func(i, j int) bool { return a.Drives[i].Drive < a.Drives[j].Drive })
	for kind, acc := range ops {
		a.Ops = append(a.Ops, OpSummary{
			Kind:      kind,
			Count:     acc.n,
			MeanLatMS: acc.sum / float64(acc.n),
			MaxLatMS:  acc.max,
		})
	}
	sort.Slice(a.Ops, func(i, j int) bool { return a.Ops[i].Kind < a.Ops[j].Kind })
	for kind, acc := range kinds {
		ks := KindSummary{Kind: kind, Count: acc.n, FirstMS: acc.first, LastMS: acc.last}
		if acc.gaps > 0 {
			ks.MeanGapMS = acc.gapSum / float64(acc.gaps)
			ks.MinGapMS = acc.gapMin
			ks.MaxGapMS = acc.gapMax
		}
		a.Kinds = append(a.Kinds, ks)
	}
	sort.Slice(a.Kinds, func(i, j int) bool { return a.Kinds[i].Kind < a.Kinds[j].Kind })
	return a, nil
}

// SpanMS returns the traced interval length.
func (a *Analysis) SpanMS() float64 {
	if a.FirstMS < 0 {
		return 0
	}
	return a.LastMS - a.FirstMS
}

// parseKV extracts k=v tokens from a detail field; bare tokens are
// ignored.
func parseKV(detail string) map[string]string {
	out := map[string]string{}
	for _, tok := range strings.Fields(detail) {
		if i := strings.IndexByte(tok, '='); i > 0 {
			out[tok[:i]] = tok[i+1:]
		}
	}
	return out
}
