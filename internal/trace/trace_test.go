package trace

import (
	"errors"
	"strings"
	"testing"
)

func TestRecordFormat(t *testing.T) {
	var sb strings.Builder
	tr := New(&sb)
	tr.Record(123.4567, "op", "read 8192")
	tr.Recordf(200, "seg", "disk=%d n=%d", 3, 4096)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0] != "123.457\top\tread 8192" {
		t.Fatalf("line 0 = %q", lines[0])
	}
	if lines[1] != "200.000\tseg\tdisk=3 n=4096" {
		t.Fatalf("line 1 = %q", lines[1])
	}
	if tr.Events() != 2 {
		t.Fatalf("Events = %d", tr.Events())
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(1, "x", "y")
	tr.Recordf(1, "x", "%d", 1)
	if tr.Events() != 0 {
		t.Fatal("nil tracer counted events")
	}
	if tr.Flush() != nil {
		t.Fatal("nil tracer Flush errored")
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk full")
	}
	f.after -= len(p)
	return len(p), nil
}

func TestStickyError(t *testing.T) {
	tr := New(&failWriter{after: 0})
	for i := 0; i < 10000; i++ { // overflow the bufio buffer to force a write
		tr.Record(float64(i), "k", strings.Repeat("x", 64))
	}
	if err := tr.Flush(); err == nil {
		t.Fatal("write error not surfaced")
	}
	n := tr.Events()
	tr.Record(1, "k", "more") // dropped after error
	if tr.Events() != n {
		t.Fatal("events counted after sticky error")
	}
}
