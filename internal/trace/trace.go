// Package trace records simulator events as tab-separated text: one line
// per event with the simulated timestamp, an event kind, and a free-form
// detail field. It exists for debugging simulations and for feeding the
// traces to external analysis ("applying the allocation policies to
// genuine workloads", the paper's §6, starts with being able to see
// synthetic ones).
//
// Format:
//
//	<time-ms>\t<kind>\t<detail>\n
package trace

import (
	"bufio"
	"fmt"
	"io"
)

// Tracer writes events. A nil *Tracer is valid and drops everything, so
// call sites need no guards.
type Tracer struct {
	w   *bufio.Writer
	n   int64
	err error
}

// New returns a tracer writing to w.
func New(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriter(w)}
}

// Record emits one event. Errors are sticky and surfaced by Flush.
func (t *Tracer) Record(nowMS float64, kind, detail string) {
	if t == nil || t.err != nil {
		return
	}
	if _, err := fmt.Fprintf(t.w, "%.3f\t%s\t%s\n", nowMS, kind, detail); err != nil {
		t.err = err
		return
	}
	t.n++
}

// Recordf is Record with formatting.
func (t *Tracer) Recordf(nowMS float64, kind, format string, args ...any) {
	if t == nil || t.err != nil {
		return
	}
	t.Record(nowMS, kind, fmt.Sprintf(format, args...))
}

// Events returns the number of events recorded.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	return t.n
}

// Flush drains buffers and returns the first write error, if any.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}
