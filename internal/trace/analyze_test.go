package trace

import (
	"strings"
	"testing"
)

const sampleTrace = `10.000	seg	disk=0 r start=0 n=24576 svc=16.670
12.000	seg	disk=1 w start=24576 n=8192 svc=20.000
30.000	op	read type=ts-small len=6144 lat=19.500
31.000	op	read type=ts-small len=4096 lat=10.500
40.000	op	extend type=ts-large len=98304 lat=25.000
garbage line
50.000	weird	whatever
60.000	seg	disk=0 r start=48000 n=1024 svc=oops
`

func TestAnalyze(t *testing.T) {
	a, err := Analyze(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if a.BadLines != 2 { // "garbage line" and the svc=oops seg
		t.Errorf("BadLines = %d, want 2", a.BadLines)
	}
	if a.Unknown != 1 {
		t.Errorf("Unknown = %d, want 1", a.Unknown)
	}
	if a.Events != 7 { // all well-formed lines, including the bad-svc seg
		t.Errorf("Events = %d", a.Events)
	}
	if a.FirstMS != 10 || a.LastMS != 60 || a.SpanMS() != 50 {
		t.Errorf("span = [%g, %g]", a.FirstMS, a.LastMS)
	}
	if len(a.Drives) != 2 {
		t.Fatalf("drives = %d", len(a.Drives))
	}
	d0, d1 := a.Drives[0], a.Drives[1]
	if d0.Drive != 0 || d0.Segments != 1 || d0.Bytes != 24576 || d0.WriteBytes != 0 {
		t.Errorf("drive 0 = %+v", d0)
	}
	if d1.Drive != 1 || d1.WriteBytes != 8192 || d1.BusyMS != 20 {
		t.Errorf("drive 1 = %+v", d1)
	}
	if len(a.Ops) != 2 {
		t.Fatalf("ops = %+v", a.Ops)
	}
	var read, extend OpSummary
	for _, o := range a.Ops {
		switch o.Kind {
		case "read":
			read = o
		case "extend":
			extend = o
		}
	}
	if read.Count != 2 || read.MeanLatMS != 15 || read.MaxLatMS != 19.5 {
		t.Errorf("read summary = %+v", read)
	}
	if extend.Count != 1 || extend.MeanLatMS != 25 {
		t.Errorf("extend summary = %+v", extend)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a, err := Analyze(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != 0 || a.SpanMS() != 0 || len(a.Drives) != 0 || len(a.Ops) != 0 {
		t.Fatalf("empty analysis = %+v", a)
	}
}

func TestAnalyzeRoundTripWithWriter(t *testing.T) {
	var sb strings.Builder
	tr := New(&sb)
	tr.Recordf(1, "seg", "disk=%d r start=%d n=%d svc=%.3f", 2, 100, 4096, 5.5)
	tr.Recordf(9, "op", "write type=x len=4096 lat=%.3f", 8.0)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if a.BadLines != 0 || a.Events != 2 {
		t.Fatalf("round trip analysis = %+v", a)
	}
	if a.Drives[0].Drive != 2 || a.Drives[0].BusyMS != 5.5 {
		t.Fatalf("drive summary = %+v", a.Drives[0])
	}
	if a.Ops[0].Kind != "write" || a.Ops[0].MeanLatMS != 8 {
		t.Fatalf("op summary = %+v", a.Ops[0])
	}
}
