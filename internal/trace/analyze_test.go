package trace

import (
	"strings"
	"testing"
)

const sampleTrace = `10.000	seg	disk=0 r start=0 n=24576 svc=16.670
12.000	seg	disk=1 w start=24576 n=8192 svc=20.000
30.000	op	read type=ts-small len=6144 lat=19.500
31.000	op	read type=ts-small len=4096 lat=10.500
40.000	op	extend type=ts-large len=98304 lat=25.000
garbage line
50.000	weird	whatever
60.000	seg	disk=0 r start=48000 n=1024 svc=oops
`

func TestAnalyze(t *testing.T) {
	a, err := Analyze(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if a.BadLines != 2 { // "garbage line" and the svc=oops seg
		t.Errorf("BadLines = %d, want 2", a.BadLines)
	}
	if a.Unknown != 1 {
		t.Errorf("Unknown = %d, want 1", a.Unknown)
	}
	if a.Events != 7 { // all well-formed lines, including the bad-svc seg
		t.Errorf("Events = %d", a.Events)
	}
	if a.FirstMS != 10 || a.LastMS != 60 || a.SpanMS() != 50 {
		t.Errorf("span = [%g, %g]", a.FirstMS, a.LastMS)
	}
	if len(a.Drives) != 2 {
		t.Fatalf("drives = %d", len(a.Drives))
	}
	d0, d1 := a.Drives[0], a.Drives[1]
	if d0.Drive != 0 || d0.Segments != 1 || d0.Bytes != 24576 || d0.WriteBytes != 0 {
		t.Errorf("drive 0 = %+v", d0)
	}
	if d1.Drive != 1 || d1.WriteBytes != 8192 || d1.BusyMS != 20 {
		t.Errorf("drive 1 = %+v", d1)
	}
	if len(a.Ops) != 2 {
		t.Fatalf("ops = %+v", a.Ops)
	}
	var read, extend OpSummary
	for _, o := range a.Ops {
		switch o.Kind {
		case "read":
			read = o
		case "extend":
			extend = o
		}
	}
	if read.Count != 2 || read.MeanLatMS != 15 || read.MaxLatMS != 19.5 {
		t.Errorf("read summary = %+v", read)
	}
	if extend.Count != 1 || extend.MeanLatMS != 25 {
		t.Errorf("extend summary = %+v", extend)
	}
}

func TestAnalyzeKinds(t *testing.T) {
	a, err := Analyze(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	// Kinds are sorted by name: op, seg, weird. The malformed-detail seg at
	// 60ms still counts toward the seg kind (the line itself parsed).
	if len(a.Kinds) != 3 {
		t.Fatalf("kinds = %+v", a.Kinds)
	}
	op, seg, weird := a.Kinds[0], a.Kinds[1], a.Kinds[2]
	if op.Kind != "op" || op.Count != 3 || op.FirstMS != 30 || op.LastMS != 40 {
		t.Errorf("op kind = %+v", op)
	}
	// op gaps: 31-30=1, 40-31=9 → mean 5, min 1, max 9.
	if op.MeanGapMS != 5 || op.MinGapMS != 1 || op.MaxGapMS != 9 {
		t.Errorf("op gaps = %+v", op)
	}
	if seg.Kind != "seg" || seg.Count != 3 || seg.FirstMS != 10 || seg.LastMS != 60 {
		t.Errorf("seg kind = %+v", seg)
	}
	// seg gaps: 2 and 48 → mean 25.
	if seg.MeanGapMS != 25 || seg.MinGapMS != 2 || seg.MaxGapMS != 48 {
		t.Errorf("seg gaps = %+v", seg)
	}
	if weird.Kind != "weird" || weird.Count != 1 {
		t.Errorf("weird kind = %+v", weird)
	}
	// A single record has no gaps: stats stay zero.
	if weird.MeanGapMS != 0 || weird.MinGapMS != 0 || weird.MaxGapMS != 0 {
		t.Errorf("weird gaps = %+v", weird)
	}
}

func TestAnalyzeOutOfOrderGapClamped(t *testing.T) {
	fixture := "10.000\tmark\ta\n" +
		"5.000\tmark\tb\n" + // earlier than its predecessor
		"20.000\tmark\tc\n"
	a, err := Analyze(strings.NewReader(fixture))
	if err != nil {
		t.Fatal(err)
	}
	m := a.Kinds[0]
	// Gaps: clamp(5-10)=0 and 20-5=15.
	if m.Count != 3 || m.MinGapMS != 0 || m.MaxGapMS != 15 || m.MeanGapMS != 7.5 {
		t.Errorf("mark kind = %+v", m)
	}
}

func TestAnalyzeSpans(t *testing.T) {
	// Two span-enriched segments for drive 0, one legacy segment (no phase
	// tokens) for drive 1, and one partially-enriched record that must NOT
	// count as a span.
	fixture := "10.000\tseg\tdisk=0 r start=0 n=1024 svc=10.000 wait=2.000 seek=3.000 rot=4.000 xfer=3.000\n" +
		"20.000\tseg\tdisk=0 w start=2048 n=512 svc=6.000 wait=0.500 seek=1.000 rot=2.000 xfer=3.000\n" +
		"30.000\tseg\tdisk=1 r start=0 n=4096 svc=8.000\n" +
		"40.000\tseg\tdisk=1 r start=4096 n=4096 svc=8.000 wait=1.000 seek=2.000\n"
	a, err := Analyze(strings.NewReader(fixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Drives) != 2 {
		t.Fatalf("drives = %+v", a.Drives)
	}
	d0, d1 := a.Drives[0], a.Drives[1]
	if d0.Spans != 2 || d0.WaitMS != 2.5 || d0.SeekMS != 4 || d0.RotMS != 6 || d0.XferMS != 6 {
		t.Errorf("drive 0 spans = %+v", d0)
	}
	// The legacy and partial records still count as segments, just not
	// spans.
	if d1.Segments != 2 || d1.Spans != 0 || d1.WaitMS != 0 {
		t.Errorf("drive 1 spans = %+v", d1)
	}
	if d0.Segments != 2 || d0.BusyMS != 16 || d0.WriteBytes != 512 {
		t.Errorf("drive 0 base fields = %+v", d0)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a, err := Analyze(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != 0 || a.SpanMS() != 0 || len(a.Drives) != 0 || len(a.Ops) != 0 {
		t.Fatalf("empty analysis = %+v", a)
	}
}

func TestAnalyzeRoundTripWithWriter(t *testing.T) {
	var sb strings.Builder
	tr := New(&sb)
	tr.Recordf(1, "seg", "disk=%d r start=%d n=%d svc=%.3f", 2, 100, 4096, 5.5)
	tr.Recordf(9, "op", "write type=x len=4096 lat=%.3f", 8.0)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if a.BadLines != 0 || a.Events != 2 {
		t.Fatalf("round trip analysis = %+v", a)
	}
	if a.Drives[0].Drive != 2 || a.Drives[0].BusyMS != 5.5 {
		t.Fatalf("drive summary = %+v", a.Drives[0])
	}
	if a.Ops[0].Kind != "write" || a.Ops[0].MeanLatMS != 8 {
		t.Fatalf("op summary = %+v", a.Ops[0])
	}
}
