package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceIDValidity(t *testing.T) {
	for _, id := range []string{"0123456789abcdef", "ffffffffffffffff", TraceIDFromUint64(42)} {
		if !ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = false, want true", id)
		}
	}
	for _, id := range []string{
		"", "short", "0123456789ABCDEF", // uppercase is rejected
		"0123456789abcdeg", "0123456789abcdef0", "xxxxxxxxxxxxxxxx",
	} {
		if ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = true, want false", id)
		}
	}
}

func TestRandomTraceIDWellFormedAndDistinct(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		id := RandomTraceID()
		if !ValidTraceID(id) {
			t.Fatalf("RandomTraceID() = %q, not well-formed", id)
		}
		if seen[id] {
			t.Fatalf("RandomTraceID repeated %q within 64 draws", id)
		}
		seen[id] = true
	}
}

func TestTraceIDFromUint64Deterministic(t *testing.T) {
	if got, want := TraceIDFromUint64(0xdeadbeef), "00000000deadbeef"; got != want {
		t.Errorf("TraceIDFromUint64 = %q, want %q", got, want)
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := TraceIDFrom(ctx); got != "" {
		t.Errorf("empty context trace = %q, want \"\"", got)
	}
	ctx = WithTraceID(ctx, "0123456789abcdef")
	if got := TraceIDFrom(ctx); got != "0123456789abcdef" {
		t.Errorf("trace round trip = %q", got)
	}
}

func TestAccessLoggerEmitsOneJSONRecord(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLogger(&buf)
	l.Log(AccessRecord{
		TraceID: "0123456789abcdef", Client: "127.0.0.1:1", Method: "POST",
		Path: "/v1/runs", Route: "submit", Status: 200, DurMS: 12.3456,
		RunID: "run-000001", Spec: "buddy/TS/app", SpecKey: "k",
		QueueMS: 1, RunMS: 10, Cached: true, Outcome: "done",
	})
	line := strings.TrimSpace(buf.String())
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("expected exactly one line, got %q", buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("record is not JSON: %v\n%s", err, line)
	}
	for key, want := range map[string]any{
		"msg": "access", "trace": "0123456789abcdef", "route": "submit",
		"run": "run-000001", "outcome": "done", "cached": true,
	} {
		if rec[key] != want {
			t.Errorf("record[%q] = %v, want %v", key, rec[key], want)
		}
	}
	if rec["dur_ms"].(float64) != 12.346 {
		t.Errorf("dur_ms = %v, want rounded 12.346", rec["dur_ms"])
	}
}

func TestNilAccessLoggerDrops(t *testing.T) {
	var l *AccessLogger
	l.Log(AccessRecord{TraceID: "x"}) // must not panic
	if NewAccessLogger(nil) != nil {
		t.Error("NewAccessLogger(nil) should return a nil (dropping) logger")
	}
}
