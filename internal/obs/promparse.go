package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one sample line of a Prometheus text exposition:
// name{labels} value.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Scrape is one parsed /metrics response. Types maps each metric family
// to its declared TYPE (counter, gauge, histogram, ...); histogram
// families contribute samples under <name>_bucket/_sum/_count.
type Scrape struct {
	Samples []PromSample
	Types   map[string]string
}

// ParseProm parses a Prometheus text-exposition document, validating
// every line: TYPE declarations, metric-name legality, label syntax,
// and numeric values. It implements the subset the repository's
// exporters emit (no HELP lines, no timestamps, no escaping beyond %q
// label values), and fails loudly on anything else — it doubles as the
// format test's checker.
func ParseProm(r io.Reader) (*Scrape, error) {
	sc := &Scrape{Types: make(map[string]string)}
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 64*1024), 16*1024*1024)
	lineNo := 0
	for br.Scan() {
		lineNo++
		line := br.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" {
				if !validMetricName(fields[2]) {
					return nil, fmt.Errorf("line %d: TYPE declares illegal metric name %q", lineNo, fields[2])
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				sc.Types[fields[2]] = fields[3]
				continue
			}
			continue // other comments are legal and ignored
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		sc.Samples = append(sc.Samples, s)
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	return sc, nil
}

// parseSampleLine decodes one `name{k="v",...} value` line.
func parseSampleLine(line string) (PromSample, error) {
	var s PromSample
	rest := line
	// Metric name runs to '{' or whitespace.
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = rest[:end]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("illegal metric name %q", s.Name)
	}
	rest = rest[end:]
	if strings.HasPrefix(rest, "{") {
		close := strings.Index(rest, "}")
		if close < 0 {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		labels, err := parseLabels(rest[1:close])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = rest[close+1:]
	}
	rest = strings.TrimSpace(rest)
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("sample %q needs exactly one value after the name", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels decodes `k="v",k2="v2"`. Values are Go-quoted strings
// (the exporter renders them with %q).
func parseLabels(s string) (map[string]string, error) {
	out := make(map[string]string)
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq <= 0 {
			return nil, fmt.Errorf("bad label pair near %q", s)
		}
		key := s[:eq]
		if !validLabelName(key) {
			return nil, fmt.Errorf("illegal label name %q", key)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("label %s value is not quoted", key)
		}
		val, rest, err := unquotePrefix(s)
		if err != nil {
			return nil, fmt.Errorf("label %s: %w", key, err)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("duplicate label %q", key)
		}
		out[key] = val
		s = strings.TrimPrefix(rest, ",")
	}
	return out, nil
}

// unquotePrefix consumes one leading Go-quoted string and returns its
// value plus the remainder.
func unquotePrefix(s string) (string, string, error) {
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++ // skip the escaped byte
			continue
		}
		if s[i] == '"' {
			val, err := strconv.Unquote(s[:i+1])
			return val, s[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value %q", s)
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Value returns the first sample with the given name, ignoring labels.
func (s *Scrape) Value(name string) (float64, bool) {
	for _, smp := range s.Samples {
		if smp.Name == name {
			return smp.Value, true
		}
	}
	return 0, false
}

// Scalars returns every non-bucket sample as a name → value map — the
// compact view rofs-load stores per scrape. Histogram _sum/_count
// scalars are included; _bucket series (which need their le label to
// mean anything) are not. Duplicate names keep the first sample.
func (s *Scrape) Scalars() map[string]float64 {
	out := make(map[string]float64, len(s.Samples))
	for _, smp := range s.Samples {
		if strings.HasSuffix(smp.Name, "_bucket") {
			continue
		}
		if _, ok := out[smp.Name]; !ok {
			out[smp.Name] = smp.Value
		}
	}
	return out
}

// CheckHistograms validates every declared histogram family: each
// _bucket series must be cumulative (non-decreasing as le rises), must
// end in an le="+Inf" bucket, and that bucket must equal the family's
// _count sample.
func (s *Scrape) CheckHistograms() error {
	for name, typ := range s.Types {
		if typ != "histogram" {
			continue
		}
		type bucket struct {
			le  float64
			inf bool
			n   float64
		}
		var buckets []bucket
		var count float64
		var haveCount bool
		for _, smp := range s.Samples {
			switch smp.Name {
			case name + "_bucket":
				le, ok := smp.Labels["le"]
				if !ok {
					return fmt.Errorf("histogram %s has a bucket without an le label", name)
				}
				if le == "+Inf" {
					buckets = append(buckets, bucket{inf: true, n: smp.Value})
					continue
				}
				v, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("histogram %s: bad le %q", name, le)
				}
				buckets = append(buckets, bucket{le: v, n: smp.Value})
			case name + "_count":
				count, haveCount = smp.Value, true
			}
		}
		if len(buckets) == 0 {
			return fmt.Errorf("histogram %s has no buckets", name)
		}
		if !haveCount {
			return fmt.Errorf("histogram %s has no _count", name)
		}
		// Exposition order is bucket order; verify le ascends and counts
		// are cumulative.
		if !sort.SliceIsSorted(buckets, func(i, j int) bool {
			if buckets[i].inf != buckets[j].inf {
				return buckets[j].inf
			}
			return buckets[i].le < buckets[j].le
		}) {
			return fmt.Errorf("histogram %s buckets are not in ascending le order", name)
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i].n < buckets[i-1].n {
				return fmt.Errorf("histogram %s is not cumulative: bucket %d count %g < %g",
					name, i, buckets[i].n, buckets[i-1].n)
			}
		}
		last := buckets[len(buckets)-1]
		if !last.inf {
			return fmt.Errorf("histogram %s does not end in an le=\"+Inf\" bucket", name)
		}
		if last.n != count {
			return fmt.Errorf("histogram %s: +Inf bucket %g != count %g", name, last.n, count)
		}
	}
	return nil
}
