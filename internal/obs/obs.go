// Package obs is the serving path's operational observability substrate:
// per-request trace IDs (minted at the rofs-server boundary, propagated
// via the X-Rofs-Trace-Id header and the context), structured JSON
// access-log records over log/slog, and a Prometheus text-exposition
// parser (promparse.go) used by the rofs-load harness and the format
// tests.
//
// The package is deliberately independent of the simulator: nothing in
// internal/sim, core, or disk imports it, so with logging and tracing
// off the hot loop is untouched — the golden Table 3 and the zero-alloc
// budgets hold by construction.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
)

// TraceHeader is the HTTP header carrying a request's trace ID, in both
// directions: clients may supply one (the server adopts it), and the
// server always echoes the effective ID on the response.
const TraceHeader = "X-Rofs-Trace-Id"

// TraceIDLen is the canonical trace ID length: 16 lowercase hex digits
// (64 random bits).
const TraceIDLen = 16

// ValidTraceID reports whether id is a well-formed trace ID: exactly
// TraceIDLen lowercase hex digits. The server replaces anything else
// with a freshly minted ID rather than letting arbitrary client strings
// into its logs.
func ValidTraceID(id string) bool {
	if len(id) != TraceIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// RandomTraceID mints a trace ID from crypto/rand — the server-side
// path, where unpredictability matters more than reproducibility.
func RandomTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID is
		// still well-formed if it somehow does.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// TraceIDFromUint64 renders a 64-bit value as a trace ID — the seeded
// path rofs-load uses so a -seed fixes the whole ID sequence.
func TraceIDFromUint64(v uint64) string {
	return fmt.Sprintf("%016x", v)
}

// ctxKey is the package's private context-key namespace.
type ctxKey int

const traceKey ctxKey = iota

// WithTraceID returns a context carrying the trace ID. The service
// client reads it back with TraceIDFrom and stamps the header on
// outgoing requests.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey, id)
}

// TraceIDFrom returns the context's trace ID, or "" when none is set.
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey).(string)
	return id
}
