package obs

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"time"
)

// AccessRecord is one finished HTTP request's structured log line. The
// serving layer fills the request-shaped fields for every request; the
// run-lifecycle fields (RunID onward) are present only on requests that
// carried a simulation, with Outcome distinguishing how it ended.
type AccessRecord struct {
	TraceID string
	Client  string // RemoteAddr of the caller
	Method  string
	Path    string
	Route   string // the mux route name ("submit", "status", ...)
	Status  int    // HTTP status written
	DurMS   float64

	// Run lifecycle (zero values when the request carried no run).
	RunID     string
	Spec      string // the Spec's human label
	SpecKey   string // the Spec's canonical cache key
	AdmitMS   float64
	QueueMS   float64
	RunMS     float64
	EncodeMS  float64
	Cached    bool
	Coalesced bool
	DiskHit   bool  // served from the disk result store, not simulated
	Followers int64 // duplicate submissions this run's result also served
	// Disposition names how the result was produced: "simulated",
	// "memory-hit", "coalesced", or "disk-hit".
	Disposition string
	Outcome     string
}

// AccessLogger writes one slog JSON record per AccessRecord. A nil
// *AccessLogger drops everything, mirroring the nil-receiver convention
// of internal/metrics and internal/trace, so the serving path needs no
// guards when logging is off.
type AccessLogger struct {
	log *slog.Logger
}

// NewAccessLogger returns a logger emitting JSON records to w. A nil
// writer returns a nil (dropping) logger.
func NewAccessLogger(w io.Writer) *AccessLogger {
	if w == nil {
		return nil
	}
	return &AccessLogger{log: slog.New(slog.NewJSONHandler(w, nil))}
}

// Log emits rec as one "access" record. slog handlers serialize
// concurrent writes, so the serving layer can call this from any
// handler goroutine.
func (l *AccessLogger) Log(rec AccessRecord) {
	if l == nil {
		return
	}
	attrs := make([]slog.Attr, 0, 16)
	attrs = append(attrs,
		slog.String("trace", rec.TraceID),
		slog.String("client", rec.Client),
		slog.String("method", rec.Method),
		slog.String("path", rec.Path),
		slog.String("route", rec.Route),
		slog.Int("status", rec.Status),
		slog.Float64("dur_ms", round3(rec.DurMS)),
	)
	if rec.RunID != "" {
		attrs = append(attrs,
			slog.String("run", rec.RunID),
			slog.String("spec", rec.Spec),
			slog.String("spec_key", rec.SpecKey),
			slog.Float64("admit_ms", round3(rec.AdmitMS)),
			slog.Float64("queue_ms", round3(rec.QueueMS)),
			slog.Float64("run_ms", round3(rec.RunMS)),
			slog.Float64("encode_ms", round3(rec.EncodeMS)),
			slog.Bool("cached", rec.Cached),
			slog.Bool("coalesced", rec.Coalesced),
			slog.Bool("disk_hit", rec.DiskHit),
			slog.Int64("followers", rec.Followers),
		)
		if rec.Disposition != "" {
			attrs = append(attrs, slog.String("disposition", rec.Disposition))
		}
	}
	if rec.Outcome != "" {
		attrs = append(attrs, slog.String("outcome", rec.Outcome))
	}
	l.log.LogAttrs(context.Background(), slog.LevelInfo, "access", attrs...)
}

// ReqInfo accumulates one in-flight request's AccessRecord. Handlers
// enrich it as the run lifecycle unfolds — possibly from executor
// goroutines the request is blocked on — so updates go through a mutex.
// A nil *ReqInfo drops updates, matching the AccessLogger convention.
type ReqInfo struct {
	mu  sync.Mutex
	rec AccessRecord
}

// NewReqInfo returns an accumulator seeded with the request-shaped
// fields the middleware knows up front.
func NewReqInfo(rec AccessRecord) *ReqInfo {
	return &ReqInfo{rec: rec}
}

// Update applies f to the record under the lock; nil receivers drop.
func (ri *ReqInfo) Update(f func(*AccessRecord)) {
	if ri == nil {
		return
	}
	ri.mu.Lock()
	f(&ri.rec)
	ri.mu.Unlock()
}

// Snapshot returns a copy of the accumulated record.
func (ri *ReqInfo) Snapshot() AccessRecord {
	if ri == nil {
		return AccessRecord{}
	}
	ri.mu.Lock()
	defer ri.mu.Unlock()
	return ri.rec
}

// round3 trims sub-microsecond noise so records stay greppable and
// stable-width.
func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}

// Since returns the elapsed wall time as fractional milliseconds — the
// unit every duration field in an AccessRecord uses.
func Since(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}
