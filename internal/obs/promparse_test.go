package obs

import (
	"strings"
	"testing"
)

const sampleExposition = `# TYPE rofs_service_runs_admitted counter
rofs_service_runs_admitted{component="rofs-server"} 3
# TYPE rofs_service_queue_depth gauge
rofs_service_queue_depth{component="rofs-server"} 0
# TYPE rofs_service_queue_wait_ms histogram
rofs_service_queue_wait_ms_bucket{component="rofs-server",le="1"} 1
rofs_service_queue_wait_ms_bucket{component="rofs-server",le="10"} 2
rofs_service_queue_wait_ms_bucket{component="rofs-server",le="+Inf"} 3
rofs_service_queue_wait_ms_sum{component="rofs-server"} 14.5
rofs_service_queue_wait_ms_count{component="rofs-server"} 3
`

func TestParsePromWellFormed(t *testing.T) {
	sc, err := ParseProm(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sc.Samples); got != 7 {
		t.Fatalf("parsed %d samples, want 7", got)
	}
	if sc.Types["rofs_service_queue_wait_ms"] != "histogram" {
		t.Errorf("histogram TYPE missing: %v", sc.Types)
	}
	v, ok := sc.Value("rofs_service_runs_admitted")
	if !ok || v != 3 {
		t.Errorf("Value(runs_admitted) = %v, %v", v, ok)
	}
	if err := sc.CheckHistograms(); err != nil {
		t.Errorf("CheckHistograms: %v", err)
	}
	scalars := sc.Scalars()
	if _, ok := scalars["rofs_service_queue_wait_ms_bucket"]; ok {
		t.Error("Scalars should exclude _bucket series")
	}
	if scalars["rofs_service_queue_wait_ms_count"] != 3 {
		t.Errorf("Scalars missing histogram count: %v", scalars)
	}
	if sc.Samples[0].Labels["component"] != "rofs-server" {
		t.Errorf("labels = %v", sc.Samples[0].Labels)
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	for name, doc := range map[string]string{
		"bad-name":        "9leading_digit 1\n",
		"no-value":        "rofs_ok\n",
		"two-values":      "rofs_ok 1 2\n",
		"bad-value":       "rofs_ok one\n",
		"bad-label":       `rofs_ok{0bad="x"} 1` + "\n",
		"unquoted-label":  `rofs_ok{a=b} 1` + "\n",
		"unclosed-labels": `rofs_ok{a="b" 1` + "\n",
		"duplicate-label": `rofs_ok{a="b",a="c"} 1` + "\n",
		"bad-type":        "# TYPE rofs_ok matrix\n",
		"bad-type-name":   "# TYPE 9bad counter\n",
		"unclosed-quote":  `rofs_ok{a="b} 1` + "\n",
	} {
		if _, err := ParseProm(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: ParseProm accepted %q", name, doc)
		}
	}
}

func TestCheckHistogramsCatchesViolations(t *testing.T) {
	for name, doc := range map[string]string{
		"non-cumulative": `# TYPE rofs_h histogram
rofs_h_bucket{le="1"} 5
rofs_h_bucket{le="2"} 3
rofs_h_bucket{le="+Inf"} 5
rofs_h_sum 1
rofs_h_count 5
`,
		"no-inf": `# TYPE rofs_h histogram
rofs_h_bucket{le="1"} 5
rofs_h_sum 1
rofs_h_count 5
`,
		"count-mismatch": `# TYPE rofs_h histogram
rofs_h_bucket{le="1"} 5
rofs_h_bucket{le="+Inf"} 5
rofs_h_sum 1
rofs_h_count 6
`,
		"unsorted-le": `# TYPE rofs_h histogram
rofs_h_bucket{le="2"} 1
rofs_h_bucket{le="1"} 1
rofs_h_bucket{le="+Inf"} 1
rofs_h_sum 1
rofs_h_count 1
`,
		"no-count": `# TYPE rofs_h histogram
rofs_h_bucket{le="+Inf"} 1
`,
	} {
		sc, err := ParseProm(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if err := sc.CheckHistograms(); err == nil {
			t.Errorf("%s: CheckHistograms accepted a broken histogram", name)
		}
	}
}
