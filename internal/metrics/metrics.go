// Package metrics is the simulator's per-run observability substrate: a
// registry of named counters, gauges, histograms, and simulated-time
// timelines, populated by instrumentation hooks in the engine, disk
// system, file system, allocators, and workload harness, and exported as
// JSON, CSV, or Prometheus text exposition (export.go).
//
// Two properties shape the design:
//
//   - Disabled must be free. Every handle type (*Counter, *Gauge, *Hist,
//     *Timeline) treats a nil receiver as a dropped metric, exactly like
//     trace.Tracer, so instrumented call sites need no guards and compile
//     to a nil check on the hot path. A nil *Registry likewise returns
//     nil handles. With metrics off the simulator's steady state performs
//     no metric work and allocates nothing (scripts/check_allocs.sh).
//
//   - Enabled must be bounded. With metrics on, per-event cost is integer
//     and float adds into preallocated handles; the only allocations are
//     amortized timeline-slice growth at the sampling interval (seconds
//     of simulated time apart) — bounded by run length, never per event.
//
// Timelines are driven by *simulated* time: the owner of the registry
// schedules a fixed-interval engine event that calls Sample, which runs
// every registered sampler. Wall time never appears in a bundle.
package metrics

import (
	"sort"

	"rofs/internal/stats"
)

// DefaultIntervalMS is the timeline sampling interval used when the
// caller does not choose one: one second of simulated time, matching the
// harness's throughput-tracker tick.
const DefaultIntervalMS = 1000

// Registry holds one run's metrics. Create with New; a nil *Registry is
// valid and drops everything.
type Registry struct {
	intervalMS float64
	labels     []Label

	counters  []*Counter
	gauges    []*Gauge
	hists     []*Hist
	timelines []*Timeline
	byName    map[string]any

	samplers []func(nowMS float64)
	samples  int64
}

// Label is one element of the run's identity (policy, workload, ...),
// attached to every exported metric.
type Label struct {
	Key, Value string
}

// New returns an empty registry sampling timelines every intervalMS of
// simulated time (DefaultIntervalMS when <= 0).
func New(intervalMS float64) *Registry {
	if intervalMS <= 0 {
		intervalMS = DefaultIntervalMS
	}
	return &Registry{intervalMS: intervalMS, byName: make(map[string]any)}
}

// IntervalMS returns the timeline sampling interval; 0 on a nil registry.
func (r *Registry) IntervalMS() float64 {
	if r == nil {
		return 0
	}
	return r.intervalMS
}

// SetLabel records one key of the run's identity, replacing an earlier
// value for the same key.
func (r *Registry) SetLabel(key, value string) {
	if r == nil {
		return
	}
	for i := range r.labels {
		if r.labels[i].Key == key {
			r.labels[i].Value = value
			return
		}
	}
	r.labels = append(r.labels, Label{key, value})
}

// Labels returns the run identity in insertion order.
func (r *Registry) Labels() []Label {
	if r == nil {
		return nil
	}
	return r.labels
}

// Counter returns the named counter, creating it on first use. Asking a
// nil registry returns a nil (dropping) handle. Registering a name twice
// with different metric kinds panics — it is always a wiring bug.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if h, ok := r.byName[name]; ok {
		return mustKind[*Counter](name, h)
	}
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	r.byName[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if h, ok := r.byName[name]; ok {
		return mustKind[*Gauge](name, h)
	}
	g := &Gauge{name: name}
	r.gauges = append(r.gauges, g)
	r.byName[name] = g
	return g
}

// Histogram returns the named histogram with the given bucket bounds,
// creating it on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Hist {
	if r == nil {
		return nil
	}
	if h, ok := r.byName[name]; ok {
		return mustKind[*Hist](name, h)
	}
	h := &Hist{name: name, bounds: bounds, h: stats.NewHistogram(bounds)}
	r.hists = append(r.hists, h)
	r.byName[name] = h
	return h
}

// Timeline returns the named timeline, creating it on first use. Points
// are appended either manually or by a sampler (TimelineFunc).
func (r *Registry) Timeline(name string) *Timeline {
	if r == nil {
		return nil
	}
	if h, ok := r.byName[name]; ok {
		return mustKind[*Timeline](name, h)
	}
	t := &Timeline{name: name}
	r.timelines = append(r.timelines, t)
	r.byName[name] = t
	return t
}

// TimelineFunc creates the named timeline and registers a sampler that
// appends fn() at every Sample call — the standard shape for quantities
// read off live simulator state (queue depths, fragmentation, heap
// depth).
func (r *Registry) TimelineFunc(name string, fn func() float64) *Timeline {
	if r == nil {
		return nil
	}
	t := r.Timeline(name)
	r.RegisterSampler(func(nowMS float64) { t.Append(nowMS, fn()) })
	return t
}

// RegisterSampler adds fn to the set run by Sample, in registration
// order.
func (r *Registry) RegisterSampler(fn func(nowMS float64)) {
	if r == nil {
		return
	}
	r.samplers = append(r.samplers, fn)
}

// Sample runs every registered sampler at simulated time nowMS. The
// registry's owner drives it from a fixed-interval engine event.
func (r *Registry) Sample(nowMS float64) {
	if r == nil {
		return
	}
	r.samples++
	for _, fn := range r.samplers {
		fn(nowMS)
	}
}

// Samples returns how many Sample calls have run.
func (r *Registry) Samples() int64 {
	if r == nil {
		return 0
	}
	return r.samples
}

// mustKind asserts a registered handle's kind, panicking with the name
// on mismatch.
func mustKind[T any](name string, h any) T {
	t, ok := h.(T)
	if !ok {
		panic("metrics: " + name + " already registered as a different kind")
	}
	return t
}

// sortedCounters returns the counters by name, for deterministic export.
func (r *Registry) sortedCounters() []*Counter {
	out := append([]*Counter(nil), r.counters...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (r *Registry) sortedGauges() []*Gauge {
	out := append([]*Gauge(nil), r.gauges...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (r *Registry) sortedHists() []*Hist {
	out := append([]*Hist(nil), r.hists...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (r *Registry) sortedTimelines() []*Timeline {
	out := append([]*Timeline(nil), r.timelines...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Counter is a monotonically increasing integer. A nil *Counter drops
// every update.
type Counter struct {
	name string
	v    int64
}

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil handle.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is a float64 that can be set or accumulated. A nil *Gauge drops
// every update.
type Gauge struct {
	name string
	v    float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Add accumulates delta — used for cumulative simulated-time totals
// (busy, seek, rotation, transfer milliseconds).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.v += delta
}

// Value returns the gauge; 0 on a nil handle.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Hist is a fixed-bucket histogram with a running sum, exportable as a
// Prometheus histogram. A nil *Hist drops every observation.
type Hist struct {
	name   string
	bounds []float64
	h      *stats.Histogram
	sum    float64
}

// Observe records one observation.
func (h *Hist) Observe(x float64) {
	if h == nil {
		return
	}
	h.h.Add(x)
	if x == x { // skip NaN in the sum, like the histogram's NaN bucket
		h.sum += x
	}
}

// Total returns the number of observations; 0 on a nil handle.
func (h *Hist) Total() int64 {
	if h == nil {
		return 0
	}
	return h.h.Total()
}

// Sum returns the sum of finite observations.
func (h *Hist) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Bounds returns the bucket upper bounds.
func (h *Hist) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// Counts returns the per-bucket counts (last entry: overflow).
func (h *Hist) Counts() []int64 {
	if h == nil {
		return nil
	}
	return h.h.Counts()
}

// Quantile returns an upper bound on the q-quantile.
func (h *Hist) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.h.Quantile(q)
}

// Name returns the histogram's registered name.
func (h *Hist) Name() string { return h.name }

// Point is one timeline sample: a value at a simulated time.
type Point struct {
	TMS float64 `json:"t"`
	V   float64 `json:"v"`
}

// Timeline is a series of (simulated time, value) samples. A nil
// *Timeline drops every append.
type Timeline struct {
	name   string
	points []Point
}

// Append records v at simulated time tMS.
func (t *Timeline) Append(tMS, v float64) {
	if t == nil {
		return
	}
	t.points = append(t.points, Point{tMS, v})
}

// Points returns the recorded series.
func (t *Timeline) Points() []Point {
	if t == nil {
		return nil
	}
	return t.points
}

// Last returns the most recent value, or 0 when empty.
func (t *Timeline) Last() float64 {
	if t == nil || len(t.points) == 0 {
		return 0
	}
	return t.points[len(t.points)-1].V
}

// Name returns the timeline's registered name.
func (t *Timeline) Name() string { return t.name }
