package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Format selects an export encoding.
type Format int

const (
	// JSON is the canonical bundle: one object holding labels, counters,
	// gauges, histograms (bounds + counts + sum), and full timelines.
	JSON Format = iota
	// CSV is a long-format table (kind,name,time_ms,key,value), one row
	// per scalar, bucket, or timeline point — the diff- and
	// spreadsheet-friendly view of the same registry.
	CSV
	// Prometheus is the text exposition format: counters and gauges as-is,
	// histograms as cumulative _bucket/_sum/_count series, timelines as a
	// gauge holding their last sample (Prometheus has no native series-in-
	// a-scrape; the full series lives in the JSON and CSV views).
	Prometheus
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case CSV:
		return "csv"
	case Prometheus:
		return "prom"
	default:
		return "json"
	}
}

// ParseFormat maps a -metrics-format flag value to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "json":
		return JSON, nil
	case "csv":
		return CSV, nil
	case "prom", "prometheus":
		return Prometheus, nil
	}
	return JSON, fmt.Errorf("metrics: unknown format %q (want json, csv, or prom)", s)
}

// Ext returns the conventional file extension for the format.
func (f Format) Ext() string {
	switch f {
	case CSV:
		return ".csv"
	case Prometheus:
		return ".prom"
	default:
		return ".json"
	}
}

// Write renders the registry to w in the given format. An empty (or nil)
// registry writes an empty-but-valid document.
func (r *Registry) Write(w io.Writer, f Format) error {
	switch f {
	case CSV:
		return r.writeCSV(w)
	case Prometheus:
		return r.writePrometheus(w)
	default:
		return r.writeJSON(w)
	}
}

// WriteFile renders the registry to path ("-" means stdout).
func (r *Registry) WriteFile(path string, f Format) error {
	if path == "-" {
		return r.Write(os.Stdout, f)
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(file, f); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// histJSON is a histogram's JSON shape.
type histJSON struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Total  int64     `json:"total"`
	Sum    float64   `json:"sum"`
}

// bundleJSON is the canonical JSON document.
type bundleJSON struct {
	Schema     string              `json:"schema"`
	Labels     map[string]string   `json:"labels"`
	IntervalMS float64             `json:"interval_ms"`
	Samples    int64               `json:"samples"`
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]float64  `json:"gauges"`
	Histograms map[string]histJSON `json:"histograms"`
	Timelines  map[string][]Point  `json:"timelines"`
}

// SchemaV1 identifies the JSON bundle layout.
const SchemaV1 = "rofs-metrics/v1"

func (r *Registry) writeJSON(w io.Writer) error {
	b := bundleJSON{
		Schema:     SchemaV1,
		Labels:     map[string]string{},
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]histJSON{},
		Timelines:  map[string][]Point{},
	}
	if r != nil {
		b.IntervalMS = r.intervalMS
		b.Samples = r.samples
		for _, l := range r.labels {
			b.Labels[l.Key] = l.Value
		}
		for _, c := range r.counters {
			b.Counters[c.name] = c.v
		}
		for _, g := range r.gauges {
			b.Gauges[g.name] = g.v
		}
		for _, h := range r.hists {
			b.Histograms[h.name] = histJSON{
				Bounds: h.bounds, Counts: h.Counts(), Total: h.Total(), Sum: h.sum,
			}
		}
		for _, t := range r.timelines {
			pts := t.points
			if pts == nil {
				pts = []Point{}
			}
			b.Timelines[t.name] = pts
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&b) // encoding/json sorts map keys: deterministic
}

// writeCSV emits the long format: kind,name,time_ms,key,value. Scalars
// leave time_ms and key empty; histogram rows carry the bucket's upper
// bound (or "+Inf"/"sum"/"count") in key; timeline rows carry the sample
// time in time_ms.
func (r *Registry) writeCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "name", "time_ms", "key", "value"}); err != nil {
		return err
	}
	if r != nil {
		for _, l := range sortedLabels(r.labels) {
			cw.Write([]string{"label", l.Key, "", "", l.Value})
		}
		for _, c := range r.sortedCounters() {
			cw.Write([]string{"counter", c.name, "", "", strconv.FormatInt(c.v, 10)})
		}
		for _, g := range r.sortedGauges() {
			cw.Write([]string{"gauge", g.name, "", "", ftoa(g.v)})
		}
		for _, h := range r.sortedHists() {
			counts := h.Counts()
			for i, n := range counts {
				key := "+Inf"
				if i < len(h.bounds) {
					key = ftoa(h.bounds[i])
				}
				cw.Write([]string{"hist", h.name, "", key, strconv.FormatInt(n, 10)})
			}
			cw.Write([]string{"hist", h.name, "", "sum", ftoa(h.sum)})
			cw.Write([]string{"hist", h.name, "", "count", strconv.FormatInt(h.Total(), 10)})
		}
		for _, t := range r.sortedTimelines() {
			for _, p := range t.points {
				cw.Write([]string{"timeline", t.name, ftoa(p.TMS), "", ftoa(p.V)})
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// writePrometheus emits the text exposition format with the run labels on
// every series and metric names sanitized to [a-zA-Z0-9_].
func (r *Registry) writePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	labels := promLabels(r.labels)
	var b strings.Builder
	for _, c := range r.sortedCounters() {
		name := promName(c.name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s%s %d\n", name, name, labels, c.v)
	}
	for _, g := range r.sortedGauges() {
		name := promName(g.name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s%s %s\n", name, name, labels, ftoa(g.v))
	}
	for _, t := range r.sortedTimelines() {
		// Last sample only; the series itself is a JSON/CSV concern.
		name := promName(t.name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s%s %s\n", name, name, labels, ftoa(t.Last()))
	}
	for _, h := range r.sortedHists() {
		name := promName(h.name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		counts := h.Counts()
		var cum int64
		for i, n := range counts {
			cum += n
			le := "+Inf"
			if i < len(h.bounds) {
				le = ftoa(h.bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", name, promLabelsWith(r.labels, "le", le), cum)
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", name, labels, ftoa(h.sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", name, labels, h.Total())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ftoa renders a float without trailing zeros ("1", "1.5", "0.001").
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promName maps a dotted metric name to a Prometheus-legal one.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("rofs_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders the run labels as a {k="v",...} block ("" if none).
func promLabels(labels []Label) string { return promLabelsWith(labels, "", "") }

func promLabelsWith(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, l := range sortedLabels(labels) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%s=%q", promLabelKey(l.Key), l.Value)
	}
	if extraKey != "" {
		if !first {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// promLabelKey sanitizes a label key like promName, without the prefix.
func promLabelKey(k string) string { return strings.TrimPrefix(promName(k), "rofs_") }

// sortedLabels returns the labels sorted by key for deterministic output.
func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	for i := 1; i < len(out); i++ { // tiny n: insertion sort, no extra imports
		for j := i; j > 0 && out[j].Key < out[j-1].Key; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
