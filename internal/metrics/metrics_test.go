package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := New(500)
	c := r.Counter("a.b")
	if c2 := r.Counter("a.b"); c2 != c {
		t.Fatal("second Counter call returned a different handle")
	}
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	g := r.Gauge("g")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge = %g, want 3", g.Value())
	}
	h := r.Histogram("h", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	if h.Total() != 2 || h.Sum() != 5.5 {
		t.Fatalf("hist total=%d sum=%g", h.Total(), h.Sum())
	}
	if h2 := r.Histogram("h", []float64{99}); h2 != h {
		t.Fatal("second Histogram call returned a different handle")
	}
	tl := r.Timeline("t")
	tl.Append(1000, 7)
	if tl.Last() != 7 || len(tl.Points()) != 1 {
		t.Fatalf("timeline = %+v", tl.Points())
	}
	if r.IntervalMS() != 500 {
		t.Fatalf("interval = %g", r.IntervalMS())
	}
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	// Every operation on a nil registry or nil handle must be a no-op.
	r.SetLabel("k", "v")
	r.Sample(0)
	r.RegisterSampler(func(float64) { t.Fatal("sampler ran on nil registry") })
	c := r.Counter("c")
	c.Inc()
	c.Add(10)
	if c != nil || c.Value() != 0 {
		t.Fatal("nil registry counter not dropping")
	}
	g := r.Gauge("g")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge not dropping")
	}
	h := r.Histogram("h", []float64{1})
	h.Observe(5)
	if h.Total() != 0 || h.Sum() != 0 || h.Counts() != nil || h.Quantile(0.5) != 0 {
		t.Fatal("nil hist not dropping")
	}
	tl := r.TimelineFunc("t", func() float64 { return 1 })
	tl.Append(0, 1)
	if tl.Points() != nil || tl.Last() != 0 {
		t.Fatal("nil timeline not dropping")
	}
	if r.Labels() != nil || r.Samples() != 0 || r.IntervalMS() != 0 {
		t.Fatal("nil registry accessors not zero")
	}
	// Export from nil must still produce a valid empty document.
	var sb strings.Builder
	if err := r.Write(&sb, JSON); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("nil registry JSON invalid: %v", err)
	}
	if doc["schema"] != SchemaV1 {
		t.Fatalf("schema = %v", doc["schema"])
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("reusing a counter name as a gauge did not panic")
		}
	}()
	r := New(0)
	r.Counter("x")
	r.Gauge("x")
}

func TestSamplingAndTimelineFunc(t *testing.T) {
	r := New(0)
	if r.IntervalMS() != DefaultIntervalMS {
		t.Fatalf("default interval = %g", r.IntervalMS())
	}
	v := 0.0
	tl := r.TimelineFunc("series", func() float64 { return v })
	v = 1
	r.Sample(1000)
	v = 2
	r.Sample(2000)
	pts := tl.Points()
	if len(pts) != 2 || pts[0] != (Point{1000, 1}) || pts[1] != (Point{2000, 2}) {
		t.Fatalf("points = %+v", pts)
	}
	if r.Samples() != 2 {
		t.Fatalf("samples = %d", r.Samples())
	}
}

func TestSetLabelReplaces(t *testing.T) {
	r := New(0)
	r.SetLabel("policy", "buddy")
	r.SetLabel("policy", "rbuddy")
	r.SetLabel("seed", "1")
	ls := r.Labels()
	if len(ls) != 2 || ls[0] != (Label{"policy", "rbuddy"}) {
		t.Fatalf("labels = %+v", ls)
	}
}

// fillRegistry populates one of every metric kind for the export tests.
func fillRegistry() *Registry {
	r := New(1000)
	r.SetLabel("policy", "rbuddy")
	r.SetLabel("seed", "42")
	r.Counter("disk.requests").Add(7)
	r.Gauge("sim.end_ms").Set(1234.5)
	h := r.Histogram("lat_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)
	tl := r.Timeline("util")
	tl.Append(1000, 50)
	tl.Append(2000, 75)
	r.Sample(1000)
	r.Sample(2000)
	return r
}

func TestExportJSON(t *testing.T) {
	r := fillRegistry()
	var sb strings.Builder
	if err := r.Write(&sb, JSON); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema     string             `json:"schema"`
		Labels     map[string]string  `json:"labels"`
		IntervalMS float64            `json:"interval_ms"`
		Samples    int64              `json:"samples"`
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Bounds []float64 `json:"bounds"`
			Counts []int64   `json:"counts"`
			Total  int64     `json:"total"`
			Sum    float64   `json:"sum"`
		} `json:"histograms"`
		Timelines map[string][]Point `json:"timelines"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != SchemaV1 || doc.IntervalMS != 1000 || doc.Samples != 2 {
		t.Fatalf("header = %+v", doc)
	}
	if doc.Labels["policy"] != "rbuddy" || doc.Counters["disk.requests"] != 7 {
		t.Fatalf("labels/counters = %+v %+v", doc.Labels, doc.Counters)
	}
	if doc.Gauges["sim.end_ms"] != 1234.5 {
		t.Fatalf("gauges = %+v", doc.Gauges)
	}
	h := doc.Histograms["lat_ms"]
	if h.Total != 3 || h.Sum != 105.5 || len(h.Counts) != 3 || h.Counts[2] != 1 {
		t.Fatalf("hist = %+v", h)
	}
	if tl := doc.Timelines["util"]; len(tl) != 2 || tl[1] != (Point{2000, 75}) {
		t.Fatalf("timeline = %+v", doc.Timelines)
	}
	// Deterministic: a second render is byte-identical.
	var sb2 strings.Builder
	r.Write(&sb2, JSON)
	if sb.String() != sb2.String() {
		t.Fatal("JSON export not deterministic")
	}
}

func TestExportCSV(t *testing.T) {
	r := fillRegistry()
	var sb strings.Builder
	if err := r.Write(&sb, CSV); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "kind,name,time_ms,key,value" {
		t.Fatalf("header = %q", lines[0])
	}
	for _, want := range []string{
		"label,policy,,,rbuddy",
		"counter,disk.requests,,,7",
		"gauge,sim.end_ms,,,1234.5",
		"hist,lat_ms,,+Inf,1",
		"hist,lat_ms,,sum,105.5",
		"hist,lat_ms,,count,3",
		"timeline,util,2000,,75",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("CSV missing row %q:\n%s", want, out)
		}
	}
}

func TestExportPrometheus(t *testing.T) {
	r := fillRegistry()
	var sb strings.Builder
	if err := r.Write(&sb, Prometheus); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE rofs_disk_requests counter",
		`rofs_disk_requests{policy="rbuddy",seed="42"} 7`,
		`rofs_sim_end_ms{policy="rbuddy",seed="42"} 1234.5`,
		"# TYPE rofs_lat_ms histogram",
		`rofs_lat_ms_bucket{policy="rbuddy",seed="42",le="1"} 1`,
		`rofs_lat_ms_bucket{policy="rbuddy",seed="42",le="10"} 2`,
		`rofs_lat_ms_bucket{policy="rbuddy",seed="42",le="+Inf"} 3`,
		`rofs_lat_ms_sum{policy="rbuddy",seed="42"} 105.5`,
		`rofs_lat_ms_count{policy="rbuddy",seed="42"} 3`,
		// Timeline exports its last sample as a gauge.
		`rofs_util{policy="rbuddy",seed="42"} 75`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("Prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestFormatsAgree checks the three exporters describe the same registry:
// the counter value, histogram count, and timeline's final sample must be
// readable from each encoding.
func TestFormatsAgree(t *testing.T) {
	r := fillRegistry()
	var j, c, p strings.Builder
	if err := r.Write(&j, JSON); err != nil {
		t.Fatal(err)
	}
	if err := r.Write(&c, CSV); err != nil {
		t.Fatal(err)
	}
	if err := r.Write(&p, Prometheus); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(j.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters["disk.requests"] != 7 {
		t.Fatalf("JSON counter = %d", doc.Counters["disk.requests"])
	}
	if !strings.Contains(c.String(), "counter,disk.requests,,,7\n") {
		t.Fatal("CSV disagrees on disk.requests")
	}
	if !strings.Contains(p.String(), "rofs_disk_requests{policy=\"rbuddy\",seed=\"42\"} 7\n") {
		t.Fatal("Prometheus disagrees on disk.requests")
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{
		"": JSON, "json": JSON, "csv": CSV, "prom": Prometheus,
		"Prometheus": Prometheus, " CSV ": CSV,
	} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat(xml) did not fail")
	}
	if JSON.Ext() != ".json" || CSV.Ext() != ".csv" || Prometheus.Ext() != ".prom" {
		t.Error("Ext mismatch")
	}
}
