package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// JSON encoding of workloads, so downstream users can run experiments on
// their own file populations (`rofsim -workload-file mine.json`) without
// recompiling. Field names follow the struct; sizes are byte counts;
// Pattern encodes as "sequential" or "random".

// MarshalJSON implements json.Marshaler.
func (p Pattern) MarshalJSON() ([]byte, error) {
	if p == Random {
		return []byte(`"random"`), nil
	}
	return []byte(`"sequential"`), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Pattern) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("workload: pattern must be a string: %w", err)
	}
	switch strings.ToLower(s) {
	case "sequential", "seq", "":
		*p = Sequential
	case "random", "rand":
		*p = Random
	default:
		return fmt.Errorf("workload: unknown pattern %q (want sequential or random)", s)
	}
	return nil
}

// FromJSON decodes and validates a workload. Unknown fields are rejected
// so typos in hand-written configs fail loudly.
func FromJSON(r io.Reader) (Workload, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var w Workload
	if err := dec.Decode(&w); err != nil {
		return Workload{}, fmt.Errorf("workload: decoding config: %w", err)
	}
	if err := w.Validate(); err != nil {
		return Workload{}, err
	}
	return w, nil
}

// ToJSON encodes a workload with indentation, the round-trip counterpart
// of FromJSON (use it to dump the built-in workloads as a starting point:
// `rofsim -dump-workload TS`).
func ToJSON(w io.Writer, wl Workload) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(wl)
}
