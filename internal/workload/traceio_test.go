package workload

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestImportTraceSimple(t *testing.T) {
	in := `
# a comment
0 read ts-small 3

2.5 - - 7
2.5 write
10 dealloc ts-large
11
`
	a, err := ImportTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []TraceOp{
		{AtMS: 0, Op: "read", Type: "ts-small", Client: 3},
		{AtMS: 2.5, Client: 7},
		{AtMS: 2.5, Op: "write"},
		{AtMS: 10, Op: "dealloc", Type: "ts-large"},
		{AtMS: 11},
	}
	if !reflect.DeepEqual(a.Trace, want) {
		t.Fatalf("got %+v, want %+v", a.Trace, want)
	}
	if a.EffectiveMode() != ArrivalsTrace {
		t.Fatalf("mode %q, want trace", a.EffectiveMode())
	}
}

func TestImportTraceBlkparse(t *testing.T) {
	in := `
  8,0    1        1     0.000000000  1234  Q   R 102400 + 8 [prog]
  8,0    1        2     0.000100000  1234  G   R 102400 + 8 [prog]
  8,0    1        3     0.001000000  5678  Q  WS 204800 + 16 [prog]
  8,0    0        4     0.002000000     9  Q FWS 0 [prog]
  8,0    0        5     0.003000000    11  Q   D 300000 + 8 [prog]
`
	a, err := ImportTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []TraceOp{
		{AtMS: 0, Op: "read", Client: 1234},
		{AtMS: 1, Op: "write", Client: 5678},
		{AtMS: 2, Op: "write", Client: 9},
		{AtMS: 3, Op: "dealloc", Client: 11},
	}
	if !reflect.DeepEqual(a.Trace, want) {
		t.Fatalf("got %+v, want %+v", a.Trace, want)
	}
}

func TestImportTraceErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "no operations"},
		{"comments only", "# nothing\n\n", "no operations"},
		{"bad timestamp", "abc read\n", "line 1"},
		{"nan", "NaN read\n", "not finite"},
		{"negative time", "-1 read\n", "negative timestamp"},
		{"out of order", "5 read\n4 read\n", "line 2"},
		{"unknown op", "0 chmod\n", "unknown op"},
		{"bad client", "0 read ts-small -2\n", "bad client"},
		{"too many columns", "0 read ts-small 1 extra\n", "too many columns"},
		{"blkparse short", "8,0 1 1 0.1\n", "at least 9"},
		{"blkparse bad sector", "8,0 1 1 0.1 10 Q R deadbeef + 8 [p]\n", "bad blkparse sector"},
		{"blkparse huge sector", "8,0 1 1 0.1 10 Q R 99999999999999999999 + 8 [p]\n", "bad blkparse sector"},
		{"blkparse overflow sector", "8,0 1 1 0.1 10 Q R 9223372036854775807 + 8 [p]\n", "overflows"},
		{"blkparse overflow span", "8,0 1 1 0.1 10 Q R 18014398509481983 + 9007199254740992 [p]\n", "overflows"},
		{"blkparse bad rwbs", "8,0 1 1 0.1 10 Q X 0 + 8 [p]\n", "unknown blkparse rwbs"},
		{"blkparse out of order", "8,0 1 1 0.2 10 Q R 0 + 8 [p]\n8,0 1 2 0.1 10 Q R 0 + 8 [p]\n", "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ImportTrace(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestImportTraceValidatesAgainstWorkload(t *testing.T) {
	a, err := ImportTrace(strings.NewReader("0 read ts-small\n1 write ts-large\n"))
	if err != nil {
		t.Fatal(err)
	}
	wl := TimeSharing()
	wl.Arrivals = a
	if err := wl.Validate(); err != nil {
		t.Fatalf("trace against TS types: %v", err)
	}
	bad, err := ImportTrace(strings.NewReader("0 read no-such-type\n"))
	if err != nil {
		t.Fatal(err)
	}
	wl.Arrivals = bad
	if err := wl.Validate(); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestResolveTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ops.trace")
	if err := os.WriteFile(path, []byte("0 read\n5 write\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	a := &Arrivals{TraceFile: path}
	if err := ResolveTraceFile(a); err != nil {
		t.Fatal(err)
	}
	if a.TraceFile != "" || len(a.Trace) != 2 || a.Mode != ArrivalsTrace {
		t.Fatalf("resolve left %+v", a)
	}
	// A workload carrying the resolved block validates end to end.
	wl := TimeSharing()
	wl.Arrivals = a
	if err := wl.Validate(); err != nil {
		t.Fatal(err)
	}

	// Unresolved references are rejected by Validate, not silently run.
	wl.Arrivals = &Arrivals{TraceFile: path}
	if err := wl.Validate(); err == nil || !strings.Contains(err.Error(), "trace_file") {
		t.Fatalf("unresolved trace_file validated: %v", err)
	}

	// Conflicting inline + file forms are rejected.
	both := &Arrivals{TraceFile: path, Trace: []TraceOp{{AtMS: 0}}}
	if err := ResolveTraceFile(both); err == nil {
		t.Fatal("trace_file alongside inline trace accepted")
	}
	// Explicit poisson mode cannot reference a trace file.
	pois := &Arrivals{Mode: ArrivalsPoisson, RatePerSec: 10, TraceFile: path}
	if err := ResolveTraceFile(pois); err == nil {
		t.Fatal("poisson trace_file accepted")
	}
	// Missing files fail loudly.
	gone := &Arrivals{TraceFile: filepath.Join(dir, "missing.trace")}
	if err := ResolveTraceFile(gone); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestExportTraceRejectsUnwritableFields(t *testing.T) {
	var buf bytes.Buffer
	for _, bad := range []*Arrivals{
		{Trace: []TraceOp{{Type: "two words"}}},
		{Trace: []TraceOp{{Type: "-"}}},
		{Trace: []TraceOp{{Op: "#x"}}},
	} {
		if err := ExportTrace(&buf, bad); err == nil {
			t.Fatalf("exported %+v", bad.Trace[0])
		}
	}
	if err := ExportTrace(&buf, nil); err == nil {
		t.Fatal("exported nil arrivals")
	}
}

// quickTrace wraps a generated trace for testing/quick.
type quickTrace struct{ ops []TraceOp }

// Generate implements quick.Generator: a random valid trace — sorted
// finite timestamps, ops and types from the accepted sets.
func (quickTrace) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(size+1)
	ops := make([]TraceOp, n)
	types := []string{"", "ts-small", "ts-large", "tp-relation", "x_1.z"}
	kinds := []string{"", "read", "write", "extend", "dealloc"}
	at := 0.0
	for i := range ops {
		switch r.Intn(4) {
		case 0:
			// long idle gaps, fractional ms
		case 1:
			at += math.Trunc(r.Float64() * 1e6)
		}
		at += r.Float64() * 10
		ops[i] = TraceOp{
			AtMS:   at,
			Op:     kinds[r.Intn(len(kinds))],
			Type:   types[r.Intn(len(types))],
			Client: r.Intn(1 << 20),
		}
	}
	return reflect.ValueOf(quickTrace{ops})
}

func TestTraceRoundTripProperty(t *testing.T) {
	prop := func(qt quickTrace) bool {
		in := &Arrivals{Mode: ArrivalsTrace, Trace: qt.ops}
		var buf bytes.Buffer
		if err := ExportTrace(&buf, in); err != nil {
			t.Logf("export: %v", err)
			return false
		}
		out, err := ImportTrace(&buf)
		if err != nil {
			t.Logf("re-import: %v", err)
			return false
		}
		return reflect.DeepEqual(out.Trace, in.Trace)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzImportTrace hardens the trace importer: arbitrary bytes must never
// panic, and any trace it accepts must survive an export → import round
// trip unchanged.
func FuzzImportTrace(f *testing.F) {
	f.Add("0 read ts-small 3\n2.5 - - 7\n10 dealloc\n")
	f.Add("8,0 1 1 0.000000000 1234 Q R 102400 + 8 [prog]\n")
	f.Add("8,0 1 1 0.001 9 Q FWS 0 [prog]\n")
	f.Add("# comment\n\n1e300 write\n")
	// Malformed columns.
	f.Add("0 read ts-small 1 extra\n")
	f.Add("8,0 1 1 0.1\n")
	f.Add("abc def\n")
	// Out-of-order timestamps.
	f.Add("5 read\n4 read\n")
	f.Add("8,0 1 1 0.2 10 Q R 0 + 8 [p]\n8,0 1 2 0.1 10 Q R 0 + 8 [p]\n")
	// Huge offsets.
	f.Add("8,0 1 1 0.1 10 Q R 9223372036854775807 + 8 [p]\n")
	f.Add("8,0 1 1 0.1 10 Q R 18014398509481983 + 9007199254740992 [p]\n")
	f.Add("1e309 read\nNaN write\n-0 read\n")
	f.Fuzz(func(t *testing.T, input string) {
		a, err := ImportTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(a.Trace) == 0 {
			t.Fatal("accepted a trace with no operations")
		}
		var buf bytes.Buffer
		if err := ExportTrace(&buf, a); err != nil {
			// Accepted inputs always have grammar-safe fields: ops come
			// from a fixed keyword set and types are single columns.
			t.Fatalf("accepted trace failed to export: %v", err)
		}
		b, err := ImportTrace(&buf)
		if err != nil {
			t.Fatalf("exported trace rejected: %v", err)
		}
		if !reflect.DeepEqual(a.Trace, b.Trace) {
			t.Fatal("round trip changed the trace")
		}
	})
}
