package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzFromJSON hardens the config parser against arbitrary input: it must
// never panic, and anything it accepts must validate and round-trip.
func FuzzFromJSON(f *testing.F) {
	var seed bytes.Buffer
	if err := ToJSON(&seed, TimeSharing()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"Name":"x","Types":[{"Name":"a","Files":1,"Users":1,"RWSizeBytes":1024,"ReadPct":100}]}`)
	f.Add(`{"Name":"x","Types":[]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(`{"Name":"x","Types":[{"Pattern":"zigzag"}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		w, err := FromJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted workloads must be valid and re-encodable.
		if err := w.Validate(); err != nil {
			t.Fatalf("FromJSON accepted an invalid workload: %v", err)
		}
		var buf bytes.Buffer
		if err := ToJSON(&buf, w); err != nil {
			t.Fatalf("accepted workload failed to re-encode: %v", err)
		}
		w2, err := FromJSON(&buf)
		if err != nil {
			t.Fatalf("re-encoded workload rejected: %v", err)
		}
		if len(w2.Types) != len(w.Types) || w2.Name != w.Name {
			t.Fatal("round trip lost structure")
		}
	})
}
