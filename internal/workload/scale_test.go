package workload

import (
	"testing"

	"rofs/internal/units"
)

func TestScaleCounts(t *testing.T) {
	w := TimeSharing().Scale(32, 1)
	full := TimeSharing()
	for i := range w.Types {
		want := full.Types[i].Files / 32
		if want < 1 {
			want = 1
		}
		if w.Types[i].Files != want {
			t.Errorf("%s: Files = %d, want %d", w.Types[i].Name, w.Types[i].Files, want)
		}
		if w.Types[i].InitialBytes != full.Types[i].InitialBytes {
			t.Errorf("%s: sizes should be untouched", w.Types[i].Name)
		}
	}
}

func TestScaleSizes(t *testing.T) {
	w := SuperComputer().Scale(1, 32)
	full := SuperComputer()
	for i := range w.Types {
		if w.Types[i].Files != full.Types[i].Files {
			t.Errorf("%s: counts should be untouched", w.Types[i].Name)
		}
		if w.Types[i].InitialBytes != full.Types[i].InitialBytes/32 {
			t.Errorf("%s: InitialBytes = %d", w.Types[i].Name, w.Types[i].InitialBytes)
		}
		if w.Types[i].AllocSizeBytes != max64(full.Types[i].AllocSizeBytes/32, units.KB) {
			t.Errorf("%s: AllocSizeBytes = %d", w.Types[i].Name, w.Types[i].AllocSizeBytes)
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestScaleFloors(t *testing.T) {
	w := Workload{Name: "t", Types: []FileType{{
		Name: "x", Files: 3, Users: 1, RWSizeBytes: 1024,
		InitialBytes: 2048, AllocSizeBytes: 512, ReadPct: 100,
	}}}
	s := w.Scale(10, 10)
	if s.Types[0].Files != 1 {
		t.Errorf("Files floored to %d, want 1", s.Types[0].Files)
	}
	if s.Types[0].InitialBytes != units.KB {
		t.Errorf("InitialBytes floored to %d, want 1K", s.Types[0].InitialBytes)
	}
	// Degenerate divisors are clamped.
	same := w.Scale(0, -5)
	if same.Types[0].Files != 3 || same.Types[0].InitialBytes != 2048 {
		t.Error("divisors < 1 should be identity")
	}
}

func TestScaleDoesNotAliasOriginal(t *testing.T) {
	w := TimeSharing()
	s := w.Scale(2, 1)
	s.Types[0].Files = 7
	if TimeSharing().Types[0].Files == 7 || w.Types[0].Files == 7 {
		t.Error("Scale shares backing array with the original")
	}
}

func TestExtendSizeDefault(t *testing.T) {
	ft := FileType{RWSizeBytes: 4096}
	if ft.ExtendSize() != 4096 {
		t.Error("ExtendSize should default to RWSizeBytes")
	}
	ft.ExtendBytes = 1024
	if ft.ExtendSize() != 1024 {
		t.Error("ExtendSize should use ExtendBytes when set")
	}
}

func TestInitialBytesSum(t *testing.T) {
	w := Workload{Types: []FileType{
		{Files: 10, InitialBytes: 100},
		{Files: 2, InitialBytes: 1000},
	}}
	if w.InitialBytes() != 3000 {
		t.Fatalf("InitialBytes = %d", w.InitialBytes())
	}
}

func TestPatternValues(t *testing.T) {
	// TP relations are the only Random type in the standard workloads.
	var randoms int
	for _, w := range []Workload{TimeSharing(), TransactionProcessing(), SuperComputer()} {
		for _, ft := range w.Types {
			if ft.Pattern == Random {
				randoms++
			}
		}
	}
	if randoms != 1 {
		t.Errorf("expected exactly the TP relations to be Random; got %d random types", randoms)
	}
}
