package workload

import "fmt"

// Compaction merge policies.
const (
	// CompactTiered merges a tier's segments into one segment of the next
	// tier whenever the tier reaches Fanout segments (size-tiered).
	CompactTiered = "tiered"
	// CompactLeveled keeps level L at no more than Fanout^(L+1) segments,
	// merging one victim segment down into the next level whenever a level
	// overflows (leveled).
	CompactLeveled = "leveled"
)

// Compaction arms the log-structured workload overlay: the foreground
// stream appends fixed-size segments sequentially (a write-optimized log,
// the design the paper's read-optimized systems are usually contrasted
// with), and a background merge-compaction engine folds segments together
// under a pluggable policy. Both the sequential segment writes and the
// merge I/O go through the real per-drive queues — merges as internal
// maintenance traffic, exactly like the rebuild engine — so compaction
// pressure is visible in queue waits and drive busy time rather than
// modeled abstractly.
type Compaction struct {
	// Policy is the merge policy: "tiered" (default) or "leveled".
	Policy string `json:"policy,omitempty"`
	// SegmentBytes is the log segment size (default 512K).
	SegmentBytes int64 `json:"segment_bytes,omitempty"`
	// FlushEveryMS is the foreground segment-write cadence in simulated
	// milliseconds (default 250).
	FlushEveryMS float64 `json:"flush_every_ms,omitempty"`
	// Fanout is the merge width: segments per tiered merge, or the level
	// size ratio for leveled (default 4).
	Fanout int `json:"fanout,omitempty"`
}

// EffectivePolicy resolves the default merge policy.
func (c *Compaction) EffectivePolicy() string {
	if c.Policy == "" {
		return CompactTiered
	}
	return c.Policy
}

// EffectiveSegmentBytes resolves the default segment size.
func (c *Compaction) EffectiveSegmentBytes() int64 {
	if c.SegmentBytes > 0 {
		return c.SegmentBytes
	}
	return 512 << 10
}

// EffectiveFlushEveryMS resolves the default flush cadence.
func (c *Compaction) EffectiveFlushEveryMS() float64 {
	if c.FlushEveryMS > 0 {
		return c.FlushEveryMS
	}
	return 250
}

// EffectiveFanout resolves the default merge width.
func (c *Compaction) EffectiveFanout() int {
	if c.Fanout > 0 {
		return c.Fanout
	}
	return 4
}

// Validate checks the compaction block.
func (c *Compaction) Validate(w *Workload) error {
	switch c.EffectivePolicy() {
	case CompactTiered, CompactLeveled:
	default:
		return fmt.Errorf("workload %q: unknown compaction policy %q (want %s or %s)",
			w.Name, c.Policy, CompactTiered, CompactLeveled)
	}
	if c.SegmentBytes < 0 {
		return fmt.Errorf("workload %q: compaction segment_bytes %d is negative", w.Name, c.SegmentBytes)
	}
	if c.FlushEveryMS < 0 {
		return fmt.Errorf("workload %q: compaction flush_every_ms %g is negative", w.Name, c.FlushEveryMS)
	}
	if c.Fanout < 0 || c.Fanout == 1 {
		return fmt.Errorf("workload %q: compaction fanout %d must be 0 (default) or >= 2", w.Name, c.Fanout)
	}
	return nil
}

// Key renders the block's identity for the runner's spec key (append-only
// vocabulary; see runner.Spec.Key).
func (c *Compaction) Key() string {
	return fmt.Sprintf("policy=%s|seg=%d|flush=%g|fanout=%d",
		c.EffectivePolicy(), c.EffectiveSegmentBytes(), c.EffectiveFlushEveryMS(), c.EffectiveFanout())
}
