package workload

import (
	"fmt"
	"strings"
)

// Arrival modes. A workload without an Arrivals block runs the paper's
// closed-loop per-user sessions (§2.2); with one, the same operation mix
// is driven by an open-loop arrival process instead — the request stream a
// front-end fleet sees, where load does not back off when the server slows
// down.
const (
	// ArrivalsPoisson draws exponential inter-arrival gaps at RatePerSec.
	ArrivalsPoisson = "poisson"
	// ArrivalsTrace replays the timestamped operations in Trace.
	ArrivalsTrace = "trace"
)

// Arrivals is the open-loop extension of the workload JSON schema: instead
// of closed-loop user streams (issue, wait, think, repeat), operations
// arrive from an external process — Poisson at a fixed rate, or a replayed
// trace of timestamped operations. Each arrival executes one operation of
// the workload's mix and completes independently; concurrency is whatever
// the arrival process creates, not a fixed user population.
type Arrivals struct {
	// Mode selects the process: "poisson" (default when RatePerSec > 0)
	// or "trace".
	Mode string `json:"mode,omitempty"`
	// RatePerSec is the Poisson arrival rate in operations per second of
	// simulated time.
	RatePerSec float64 `json:"rate_per_s,omitempty"`
	// Clients is the size of the client-key population arrivals are drawn
	// from (default 256). Routing layers use the key for affinity; a
	// single-instance run ignores it.
	Clients int `json:"clients,omitempty"`
	// Trace is the timestamped operation list for trace mode, replayed in
	// order. Timestamps must be non-decreasing.
	Trace []TraceOp `json:"trace,omitempty"`
	// TraceFile references a trace file on local disk (see ImportTrace for
	// the grammar). It is a CLI-side convenience: ResolveTraceFile loads it
	// into Trace before the workload is validated or run. The service
	// rejects requests that still carry one — servers do not read
	// client-local paths; inline the trace instead.
	TraceFile string `json:"trace_file,omitempty"`
}

// TraceOp is one replayed operation of a trace-mode arrival process.
type TraceOp struct {
	// AtMS is the arrival time in simulated milliseconds.
	AtMS float64 `json:"at_ms"`
	// Type names the file type the operation targets (empty: drawn from
	// the workload's user-weighted type mix).
	Type string `json:"type,omitempty"`
	// Op forces the operation ("read", "write", "extend", "dealloc";
	// empty: drawn from the type's operation ratios).
	Op string `json:"op,omitempty"`
	// Client is the arrival's client key (affinity routing).
	Client int `json:"client,omitempty"`
}

// EffectiveMode resolves the default mode from the populated fields.
func (a *Arrivals) EffectiveMode() string {
	if a.Mode != "" {
		return strings.ToLower(a.Mode)
	}
	if len(a.Trace) > 0 {
		return ArrivalsTrace
	}
	return ArrivalsPoisson
}

// EffectiveClients resolves the client-key population (default 256).
func (a *Arrivals) EffectiveClients() int {
	if a.Clients > 0 {
		return a.Clients
	}
	return 256
}

// Validate checks the arrival process against the workload's types.
func (a *Arrivals) Validate(w *Workload) error {
	if a.TraceFile != "" {
		return fmt.Errorf("workload %q: arrivals trace_file %q is unresolved — load it with -arrival-trace (or workload.ResolveTraceFile); only inline traces run", w.Name, a.TraceFile)
	}
	switch a.EffectiveMode() {
	case ArrivalsPoisson:
		if a.RatePerSec <= 0 {
			return fmt.Errorf("workload %q: poisson arrivals need rate_per_s > 0, got %g", w.Name, a.RatePerSec)
		}
		if len(a.Trace) > 0 {
			return fmt.Errorf("workload %q: poisson arrivals cannot carry a trace", w.Name)
		}
	case ArrivalsTrace:
		if len(a.Trace) == 0 {
			return fmt.Errorf("workload %q: trace arrivals need a non-empty trace", w.Name)
		}
		last := 0.0
		for i := range a.Trace {
			op := &a.Trace[i]
			if op.AtMS < last {
				return fmt.Errorf("workload %q: trace op %d at %g ms before previous %g ms", w.Name, i, op.AtMS, last)
			}
			last = op.AtMS
			if op.Type != "" && w.TypeIndex(op.Type) < 0 {
				return fmt.Errorf("workload %q: trace op %d names unknown type %q", w.Name, i, op.Type)
			}
			switch op.Op {
			case "", "read", "write", "extend", "dealloc":
			default:
				return fmt.Errorf("workload %q: trace op %d has unknown op %q", w.Name, i, op.Op)
			}
			if op.Client < 0 {
				return fmt.Errorf("workload %q: trace op %d has negative client", w.Name, i)
			}
		}
	default:
		return fmt.Errorf("workload %q: unknown arrival mode %q (want poisson or trace)", w.Name, a.Mode)
	}
	if a.Clients < 0 {
		return fmt.Errorf("workload %q: arrivals clients %d must be >= 0", w.Name, a.Clients)
	}
	return nil
}

// Key renders the arrival process's canonical identity for runner.Spec
// cache keys.
func (a *Arrivals) Key() string {
	mode := a.EffectiveMode()
	if mode == ArrivalsTrace {
		// Traces can be large; fold length plus first/last timestamps — two
		// traces agreeing on all three and the workload are the same run
		// for caching purposes only if the caller keeps trace files stable.
		first, last := 0.0, 0.0
		if n := len(a.Trace); n > 0 {
			first, last = a.Trace[0].AtMS, a.Trace[n-1].AtMS
		}
		return fmt.Sprintf("mode=trace|n=%d|first=%g|last=%g|clients=%d",
			len(a.Trace), first, last, a.EffectiveClients())
	}
	return fmt.Sprintf("mode=poisson|rate=%g|clients=%d", a.RatePerSec, a.EffectiveClients())
}

// TypeIndex returns the index of the named file type, or -1.
func (w *Workload) TypeIndex(name string) int {
	for i := range w.Types {
		if w.Types[i].Name == name {
			return i
		}
	}
	return -1
}
