package workload

import (
	"testing"

	"rofs/internal/units"
)

func TestStandardWorkloadsValidate(t *testing.T) {
	for _, w := range []Workload{TimeSharing(), TransactionProcessing(), SuperComputer()} {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestFileTypeValidation(t *testing.T) {
	base := func() FileType {
		return FileType{
			Name: "x", Files: 1, Users: 1, RWSizeBytes: 1024,
			ReadPct: 50, WritePct: 30, ExtendPct: 10,
		}
	}
	if err := (func() error { ft := base(); return ft.Validate() })(); err != nil {
		t.Fatalf("base type invalid: %v", err)
	}
	mutations := []func(*FileType){
		func(ft *FileType) { ft.Files = 0 },
		func(ft *FileType) { ft.Users = 0 },
		func(ft *FileType) { ft.ProcessTimeMS = -1 },
		func(ft *FileType) { ft.RWSizeBytes = 0 },
		func(ft *FileType) { ft.InitialBytes = -1 },
		func(ft *FileType) { ft.ReadPct = -1 },
		func(ft *FileType) { ft.ReadPct = 80; ft.WritePct = 30 },
		func(ft *FileType) { ft.DeletePct = 150 },
	}
	for i, m := range mutations {
		ft := base()
		m(&ft)
		if ft.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDeallocPct(t *testing.T) {
	ft := FileType{ReadPct: 60, WritePct: 15, ExtendPct: 15}
	if got := ft.DeallocPct(); got != 10 {
		t.Fatalf("DeallocPct = %g", got)
	}
}

func TestTSMatchesPaperProse(t *testing.T) {
	w := TimeSharing()
	if len(w.Types) != 2 {
		t.Fatalf("TS has %d types", len(w.Types))
	}
	small, large := w.Types[0], w.Types[1]
	if small.InitialBytes >= 8*units.KB || small.InitialBytes+small.InitialDevBytes > 8*units.KB {
		t.Errorf("small files (mean %d) must stay at or below the 8K threshold", small.InitialBytes)
	}
	if large.InitialBytes != 96*units.KB {
		t.Errorf("large mean size = %d, want 96K", large.InitialBytes)
	}
	// "Two-thirds of all requests are to these [small] files": same think
	// time, twice the users.
	if small.Users != 2*large.Users || small.ProcessTimeMS != large.ProcessTimeMS {
		t.Error("TS request ratio is not 2:1 small:large")
	}
	// Large files: 60r/15w/15e/5d/5t.
	if large.ReadPct != 60 || large.WritePct != 15 || large.ExtendPct != 15 {
		t.Error("TS large ratios wrong")
	}
	if large.DeallocPct() != 10 || large.DeletePct != 50 {
		t.Error("TS large deallocation split wrong")
	}
	// "An abundance of small files": they dominate both count and space.
	if small.Files < 10*large.Files {
		t.Error("TS small files should vastly outnumber large files")
	}
	smallBytes := int64(small.Files) * small.InitialBytes
	largeBytes := int64(large.Files) * large.InitialBytes
	if smallBytes <= 2*largeBytes {
		t.Error("TS small files should dominate space")
	}
	// The initial population must fit even under buddy's power-of-two
	// expansion (≈8K per small file) on the 2.7G array.
	total := int64(8) * 337 * units.MB
	worst := int64(small.Files)*8*units.KB + int64(large.Files)*128*units.KB
	if float64(worst)/float64(total) > 0.95 {
		t.Errorf("TS worst-case buddy expansion %.1f%% exceeds the 95%% ceiling",
			100*float64(worst)/float64(total))
	}
}

func TestTPMatchesPaperProse(t *testing.T) {
	w := TransactionProcessing()
	if len(w.Types) != 3 {
		t.Fatalf("TP has %d types", len(w.Types))
	}
	rel, app, sys := w.Types[0], w.Types[1], w.Types[2]
	if rel.Files != 10 || rel.InitialBytes != 210*units.MB {
		t.Error("TP relations wrong")
	}
	if rel.ReadPct != 60 || rel.WritePct != 30 || rel.ExtendPct != 7 || rel.DeallocPct() != 3 {
		t.Error("TP relation ratios wrong")
	}
	if rel.Pattern != Random {
		t.Error("TP relations must be randomly accessed")
	}
	if app.Files != 5 || app.InitialBytes != 5*units.MB || app.ExtendPct != 93 || app.ReadPct != 2 {
		t.Error("TP app logs wrong")
	}
	if sys.Files != 1 || sys.InitialBytes != 10*units.MB || sys.ExtendPct != 94 || sys.ReadPct != 5 {
		t.Error("TP system log wrong")
	}
}

func TestSCMatchesPaperProse(t *testing.T) {
	w := SuperComputer()
	large, med, small := w.Types[0], w.Types[1], w.Types[2]
	if large.Files != 1 || large.InitialBytes != 500*units.MB {
		t.Error("SC large wrong")
	}
	if med.Files != 15 || med.InitialBytes != 100*units.MB {
		t.Error("SC medium wrong")
	}
	if small.Files != 10 || small.InitialBytes != 10*units.MB {
		t.Error("SC small wrong")
	}
	if large.RWSizeBytes != 512*units.KB || small.RWSizeBytes != 32*units.KB {
		t.Error("SC burst sizes wrong")
	}
	for _, ft := range w.Types {
		if ft.ReadPct != 60 || ft.WritePct != 30 {
			t.Errorf("%s: read/write ratios wrong", ft.Name)
		}
		if ft.Pattern != Sequential {
			t.Errorf("%s: SC files are contiguous-burst (sequential)", ft.Name)
		}
	}
	if small.DeletePct != 100 {
		t.Error("SC small files are deleted, not truncated")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"TS", "ts", "TP", "tp", "SC", "sc"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestExtentRanges(t *testing.T) {
	// Spot-check against the paper's §4.3 tables.
	r, err := ExtentRanges("TS", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{units.KB, 8 * units.KB, units.MB}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("TS 3 ranges = %v", r)
		}
	}
	r, err = ExtentRanges("SC", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 5 || r[0] != 10*units.KB || r[4] != 16*units.MB {
		t.Fatalf("SC 5 ranges = %v", r)
	}
	for _, wl := range []string{"TS", "TP", "SC"} {
		for n := 1; n <= 5; n++ {
			r, err := ExtentRanges(wl, n)
			if err != nil || len(r) != n {
				t.Errorf("%s %d ranges: %v, %v", wl, n, r, err)
			}
			for i := 1; i < len(r); i++ {
				if r[i] <= r[i-1] {
					t.Errorf("%s %d ranges not ascending: %v", wl, n, r)
				}
			}
		}
	}
	if _, err := ExtentRanges("TS", 6); err == nil {
		t.Error("6 ranges accepted")
	}
	if _, err := ExtentRanges("xx", 1); err == nil {
		t.Error("unknown workload accepted")
	}
}
