package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Trace file grammar (see EXPERIMENTS.md "Aging, traces, and compaction").
//
// A trace file is line-oriented text. Blank lines and lines starting with
// '#' are skipped. Two record forms are accepted and may not be mixed with
// surprising results (the form is detected per line):
//
//   simple:   <at_ms> [op [type [client]]]
//       at_ms   non-negative finite float, milliseconds, non-decreasing
//       op      read | write | extend | dealloc | "-" (draw from the mix)
//       type    a workload file-type name, or "-" (draw from the mix)
//       client  non-negative integer client key (affinity routing)
//
//   blkparse: <maj,min> <cpu> <seq> <time_s> <pid> <action> <rwbs> <sector> [+ <nsectors> ...]
//       detected by the comma in the first column (the blktrace/blkparse
//       default output format). Only queue records (action "Q") are kept;
//       time is seconds and becomes at_ms, pid becomes the client key, and
//       the first R/W/D of rwbs (after any leading F for flush) maps to
//       read/write/dealloc. The sector and length columns are validated
//       (non-negative, no int64 byte-offset overflow) and then dropped —
//       the replay engine draws sizes from the workload's own mix.
//
// ExportTrace writes the canonical simple form; ImportTrace(ExportTrace(t))
// reproduces t exactly (the round-trip property test pins this).

// maxTraceLine bounds one line of a trace file; longer lines are malformed.
const maxTraceLine = 1 << 20

// ImportTrace parses a trace file into a trace-mode Arrivals block.
// Errors name the 1-based line they occurred on.
func ImportTrace(r io.Reader) (*Arrivals, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxTraceLine)
	var ops []TraceOp
	last := 0.0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		var (
			op  TraceOp
			ok  bool
			err error
		)
		if strings.Contains(fields[0], ",") {
			op, ok, err = parseBlkparse(fields)
		} else {
			op, err = parseSimple(fields)
			ok = true
		}
		if err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		if !ok {
			continue // blkparse record with a non-queue action
		}
		if op.AtMS < last {
			return nil, fmt.Errorf("trace line %d: timestamp %g ms before previous %g ms",
				line, op.AtMS, last)
		}
		last = op.AtMS
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return nil, fmt.Errorf("trace line %d: line longer than %d bytes", line+1, maxTraceLine)
		}
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("trace: no operations")
	}
	return &Arrivals{Mode: ArrivalsTrace, Trace: ops}, nil
}

// parseAtMS parses a millisecond timestamp column.
func parseAtMS(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad timestamp %q", s)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("timestamp %q is not finite", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative timestamp %g", v)
	}
	return v, nil
}

// parseSimple parses one record of the simple form.
func parseSimple(fields []string) (TraceOp, error) {
	if len(fields) > 4 {
		return TraceOp{}, fmt.Errorf("too many columns (%d, want at most 4: at_ms op type client)", len(fields))
	}
	at, err := parseAtMS(fields[0])
	if err != nil {
		return TraceOp{}, err
	}
	op := TraceOp{AtMS: at}
	if len(fields) > 1 && fields[1] != "-" {
		switch fields[1] {
		case "read", "write", "extend", "dealloc":
			op.Op = fields[1]
		default:
			return TraceOp{}, fmt.Errorf("unknown op %q (want read, write, extend, dealloc, or -)", fields[1])
		}
	}
	if len(fields) > 2 && fields[2] != "-" {
		if strings.HasPrefix(fields[2], "#") {
			return TraceOp{}, fmt.Errorf("bad type %q (cannot start with #)", fields[2])
		}
		op.Type = fields[2]
	}
	if len(fields) > 3 {
		c, err := strconv.Atoi(fields[3])
		if err != nil || c < 0 {
			return TraceOp{}, fmt.Errorf("bad client %q (want a non-negative integer)", fields[3])
		}
		op.Client = c
	}
	return op, nil
}

// parseBlkparse parses one blkparse-format record. ok is false for records
// that are well formed but filtered out (non-queue actions, no-payload rwbs).
func parseBlkparse(fields []string) (op TraceOp, ok bool, err error) {
	if len(fields) < 9 {
		return TraceOp{}, false, fmt.Errorf("blkparse record has %d columns, want at least 9", len(fields))
	}
	sec, err := strconv.ParseFloat(fields[3], 64)
	if err != nil || math.IsNaN(sec) || math.IsInf(sec, 0) || sec < 0 {
		return TraceOp{}, false, fmt.Errorf("bad blkparse time %q", fields[3])
	}
	pid, err := strconv.Atoi(fields[4])
	if err != nil || pid < 0 {
		return TraceOp{}, false, fmt.Errorf("bad blkparse pid %q", fields[4])
	}
	sector, err := strconv.ParseInt(fields[7], 10, 64)
	if err != nil || sector < 0 {
		return TraceOp{}, false, fmt.Errorf("bad blkparse sector %q", fields[7])
	}
	if sector > math.MaxInt64/512 {
		return TraceOp{}, false, fmt.Errorf("blkparse sector %d overflows a byte offset", sector)
	}
	if len(fields) >= 10 {
		if fields[8] != "+" {
			return TraceOp{}, false, fmt.Errorf("bad blkparse length marker %q (want +)", fields[8])
		}
		nsec, err := strconv.ParseInt(fields[9], 10, 64)
		if err != nil || nsec < 0 {
			return TraceOp{}, false, fmt.Errorf("bad blkparse sector count %q", fields[9])
		}
		if nsec > math.MaxInt64/512 || sector*512 > math.MaxInt64-nsec*512 {
			return TraceOp{}, false, fmt.Errorf("blkparse span %d+%d sectors overflows a byte offset", sector, nsec)
		}
	}
	if fields[5] != "Q" {
		return TraceOp{}, false, nil // keep only queue records
	}
	rwbs := strings.TrimPrefix(fields[6], "F")
	if rwbs == "" {
		return TraceOp{}, false, nil // pure flush: no data payload
	}
	var kind string
	switch rwbs[0] {
	case 'R':
		kind = "read"
	case 'W':
		kind = "write"
	case 'D':
		kind = "dealloc"
	case 'N':
		return TraceOp{}, false, nil // no payload
	default:
		return TraceOp{}, false, fmt.Errorf("unknown blkparse rwbs %q", fields[6])
	}
	ms := sec * 1000
	if math.IsInf(ms, 0) {
		return TraceOp{}, false, fmt.Errorf("blkparse time %g s overflows milliseconds", sec)
	}
	return TraceOp{AtMS: ms, Op: kind, Client: pid}, true, nil
}

// ExportTrace writes the arrivals' trace in the canonical simple form.
// Importing the output reproduces the trace exactly.
func ExportTrace(w io.Writer, a *Arrivals) error {
	if a == nil || len(a.Trace) == 0 {
		return fmt.Errorf("trace: nothing to export")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# rofs arrival trace: %d operations\n", len(a.Trace))
	fmt.Fprintf(bw, "# at_ms op type client\n")
	for i := range a.Trace {
		op := &a.Trace[i]
		if err := exportable(op.Op, "op"); err != nil {
			return fmt.Errorf("trace op %d: %w", i, err)
		}
		if err := exportable(op.Type, "type"); err != nil {
			return fmt.Errorf("trace op %d: %w", i, err)
		}
		fmt.Fprintf(bw, "%g %s %s %d\n", op.AtMS, orDash(op.Op), orDash(op.Type), op.Client)
	}
	return bw.Flush()
}

// exportable rejects field values the line grammar cannot carry.
func exportable(s, what string) error {
	if s == "-" || strings.HasPrefix(s, "#") || strings.ContainsAny(s, " \t\r\n") {
		return fmt.Errorf("%s %q cannot be written in trace file format", what, s)
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// LoadTraceFile reads and parses a trace file from disk.
func LoadTraceFile(path string) (*Arrivals, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	a, err := ImportTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	a.TraceFile = ""
	return a, nil
}

// ResolveTraceFile loads a TraceFile reference in place: the file's
// operations become the inline Trace and the path is cleared. Arrivals
// without a TraceFile (or nil arrivals) pass through untouched. It is the
// CLI-side step that turns `-arrival-trace <file>` into the inline form
// every other layer — the service in particular — requires.
func ResolveTraceFile(a *Arrivals) error {
	if a == nil || a.TraceFile == "" {
		return nil
	}
	if len(a.Trace) > 0 {
		return fmt.Errorf("arrivals: trace_file %q and an inline trace are mutually exclusive", a.TraceFile)
	}
	if a.EffectiveMode() == ArrivalsPoisson && a.Mode != "" {
		return fmt.Errorf("arrivals: trace_file %q set on %s-mode arrivals", a.TraceFile, a.Mode)
	}
	loaded, err := LoadTraceFile(a.TraceFile)
	if err != nil {
		return err
	}
	a.Trace = loaded.Trace
	a.TraceFile = ""
	if a.Mode == "" {
		a.Mode = ArrivalsTrace
	}
	return nil
}
