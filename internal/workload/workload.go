// Package workload defines the stochastic workload model of §2.2: file
// types (Table 2's parameters), the operation mix drawn from the
// read/write/extend/delete ratios, and the paper's three simulated
// environments — time sharing (TS), transaction processing (TP), and
// supercomputing (SC).
package workload

import (
	"fmt"

	"rofs/internal/units"
)

// Pattern selects how read/write offsets are chosen within a file.
type Pattern int

const (
	// Sequential advances a per-file cursor (the SC files are "read and
	// written in large contiguous bursts").
	Sequential Pattern = iota
	// Random draws uniform offsets (the TP relations are "randomly read").
	Random
)

// FileType describes one class of files — Table 2's parameters plus the
// access pattern the paper gives in prose.
type FileType struct {
	Name  string
	Files int // Number of Files
	Users int // Number of Users: parallel event streams

	ProcessTimeMS float64 // mean think time between a user's requests
	HitFreqMS     float64 // staggering of initial start times

	RWSizeBytes     int64 // mean read/write size
	RWDevBytes      int64 // its standard deviation
	ExtendBytes     int64 // bytes appended per extend (0: defaults to RWSizeBytes)
	AllocSizeBytes  int64 // mean extent size (extent-based systems)
	TruncateBytes   int64 // bytes removed per truncate
	InitialBytes    int64 // mean initial file size
	InitialDevBytes int64 // its deviation (uniform, §2.2)

	// Operation ratios in percent. Deallocations get the remainder
	// (100 - Read - Write - Extend); DeletePct is the share of
	// deallocations that are whole-file deletes rather than truncates
	// (Table 2's Delete Ratio).
	ReadPct   float64
	WritePct  float64
	ExtendPct float64
	DeletePct float64

	Pattern Pattern

	// HotSkew, when > 1, skews which file of the type each request hits:
	// files are ranked and chosen Zipf(s=HotSkew), modelling hot relations
	// in a database. Zero selects uniformly (the paper's model).
	HotSkew float64
}

// DeallocPct returns the percentage of operations that deallocate.
func (ft *FileType) DeallocPct() float64 {
	return 100 - ft.ReadPct - ft.WritePct - ft.ExtendPct
}

// ExtendSize returns the bytes an extend operation appends.
func (ft *FileType) ExtendSize() int64 {
	if ft.ExtendBytes > 0 {
		return ft.ExtendBytes
	}
	return ft.RWSizeBytes
}

// Validate checks the file type for consistency.
func (ft *FileType) Validate() error {
	switch {
	case ft.Files <= 0:
		return fmt.Errorf("workload %q: Files %d must be positive", ft.Name, ft.Files)
	case ft.Users <= 0:
		return fmt.Errorf("workload %q: Users %d must be positive", ft.Name, ft.Users)
	case ft.ProcessTimeMS < 0 || ft.HitFreqMS < 0:
		return fmt.Errorf("workload %q: negative timing parameters", ft.Name)
	case ft.RWSizeBytes <= 0:
		return fmt.Errorf("workload %q: RWSizeBytes %d must be positive", ft.Name, ft.RWSizeBytes)
	case ft.InitialBytes < 0 || ft.TruncateBytes < 0 || ft.AllocSizeBytes < 0:
		return fmt.Errorf("workload %q: negative size parameters", ft.Name)
	case ft.ReadPct < 0 || ft.WritePct < 0 || ft.ExtendPct < 0:
		return fmt.Errorf("workload %q: negative ratios", ft.Name)
	case ft.ReadPct+ft.WritePct+ft.ExtendPct > 100:
		return fmt.Errorf("workload %q: ratios exceed 100%%", ft.Name)
	case ft.DeletePct < 0 || ft.DeletePct > 100:
		return fmt.Errorf("workload %q: DeletePct %g out of range", ft.Name, ft.DeletePct)
	case ft.HotSkew != 0 && ft.HotSkew <= 1:
		return fmt.Errorf("workload %q: HotSkew %g must be 0 (uniform) or > 1", ft.Name, ft.HotSkew)
	}
	return nil
}

// Workload is a named set of file types, optionally driven by an
// open-loop arrival process instead of the default closed-loop user
// streams (see Arrivals).
type Workload struct {
	Name  string
	Types []FileType
	// Arrivals, when non-nil, replaces the closed-loop per-user sessions
	// with an open-loop arrival process (Poisson or trace). Closed-loop
	// runs leave it nil.
	Arrivals *Arrivals `json:"Arrivals,omitempty"`
	// Compact, when non-nil, overlays a log-structured segment stream with
	// background merge-compaction on the run (application test only).
	Compact *Compaction `json:"compact,omitempty"`
}

// Validate checks every file type.
func (w *Workload) Validate() error {
	if len(w.Types) == 0 {
		return fmt.Errorf("workload %q has no file types", w.Name)
	}
	for i := range w.Types {
		if err := w.Types[i].Validate(); err != nil {
			return err
		}
	}
	if w.Arrivals != nil {
		if err := w.Arrivals.Validate(w); err != nil {
			return err
		}
	}
	if w.Compact != nil {
		if err := w.Compact.Validate(w); err != nil {
			return err
		}
	}
	return nil
}

// KeyString renders the workload for runner.Spec cache keys. The Name/Types
// rendering is byte-identical to the pre-arrivals `%+v` of the two-field
// struct, so existing spec keys (and the spec_key golden) are preserved; an
// arrivals block appends its own term only when present.
func (w *Workload) KeyString() string {
	s := fmt.Sprintf("{Name:%s Types:%+v}", w.Name, w.Types)
	if w.Arrivals != nil {
		s += "|arrivals{" + w.Arrivals.Key() + "}"
	}
	if w.Compact != nil {
		s += "|compact{" + w.Compact.Key() + "}"
	}
	return s
}

// InitialBytes returns the expected total initial allocation.
func (w *Workload) InitialBytes() int64 {
	var total int64
	for _, ft := range w.Types {
		total += int64(ft.Files) * ft.InitialBytes
	}
	return total
}

// Scale returns a copy of the workload with file counts divided by
// countDiv and file sizes divided by sizeDiv (floored at one file / one
// unit-ish sizes). Benchmarks use it to run shape-preserving reduced
// instances on proportionally smaller disk systems; the full-scale
// experiments use the workloads as published.
func (w Workload) Scale(countDiv, sizeDiv int64) Workload {
	if countDiv < 1 {
		countDiv = 1
	}
	if sizeDiv < 1 {
		sizeDiv = 1
	}
	out := Workload{Name: w.Name, Types: make([]FileType, len(w.Types))}
	copy(out.Types, w.Types)
	for i := range out.Types {
		ft := &out.Types[i]
		ft.Files = int(int64(ft.Files) / countDiv)
		if ft.Files < 1 {
			ft.Files = 1
		}
		div := func(v int64) int64 {
			v /= sizeDiv
			if v < units.KB {
				v = units.KB
			}
			return v
		}
		ft.InitialBytes = div(ft.InitialBytes)
		ft.InitialDevBytes = ft.InitialDevBytes / sizeDiv
		ft.AllocSizeBytes = div(ft.AllocSizeBytes)
	}
	return out
}

// TimeSharing returns the TS workload of §2.2: "an abundance of small
// files ... which are created, read, and deleted", taking two-thirds of
// all requests, plus larger files (mean 96K) that are mostly read (60%)
// with 15% writes, 15% extends, 5% deletes and 5% truncates.
//
// The paper does not publish the file counts or size deviations; these
// are chosen so that (a) small files dominate both requests (2:1 via the
// user counts) and disk space, and (b) small files stay mostly below the
// 8K block-size threshold — both required to land the paper's published
// fragmentation magnitudes (buddy ≈18% internal from power-of-two
// rounding of 4–8K files, restricted buddy ≤6%). See EXPERIMENTS.md.
func TimeSharing() Workload {
	return Workload{
		Name: "TS",
		Types: []FileType{
			{
				Name:  "ts-small",
				Files: 295000,
				// Twice the users of the large type at the same think time
				// gives the small files two-thirds of all requests.
				Users:           20,
				ProcessTimeMS:   100,
				HitFreqMS:       100,
				RWSizeBytes:     6 * units.KB,
				RWDevBytes:      2 * units.KB,
				ExtendBytes:     1 * units.KB,
				AllocSizeBytes:  4 * units.KB,
				TruncateBytes:   1 * units.KB,
				InitialBytes:    6 * units.KB,
				InitialDevBytes: 2 * units.KB,
				// "Created, read, and deleted": small files never extend.
				ReadPct:   77,
				WritePct:  10,
				ExtendPct: 0,
				DeletePct: 90,
				Pattern:   Sequential,
			},
			{
				Name:            "ts-large",
				Files:           2000,
				Users:           10,
				ProcessTimeMS:   100,
				HitFreqMS:       100,
				RWSizeBytes:     8 * units.KB,
				RWDevBytes:      4 * units.KB,
				ExtendBytes:     8 * units.KB,
				AllocSizeBytes:  16 * units.KB,
				TruncateBytes:   8 * units.KB,
				InitialBytes:    96 * units.KB,
				InitialDevBytes: 32 * units.KB,
				ReadPct:         60,
				WritePct:        15,
				ExtendPct:       15,
				DeletePct:       50, // 5% deletes and 5% truncates
				Pattern:         Sequential,
			},
		},
	}
}

// TransactionProcessing returns the TP workload of §2.2: 10 large
// relations (210M) randomly read 60% / written 30% / extended 7% /
// truncated 3%, 5 application logs (5M, 93% extends) and one transaction
// log (10M, 94% extends, 5% reads for aborts).
func TransactionProcessing() Workload {
	return Workload{
		Name: "TP",
		Types: []FileType{
			{
				Name:            "tp-relation",
				Files:           10,
				Users:           32,
				ProcessTimeMS:   10,
				HitFreqMS:       10,
				RWSizeBytes:     8 * units.KB,
				RWDevBytes:      0,
				AllocSizeBytes:  16 * units.MB,
				TruncateBytes:   8 * units.KB,
				InitialBytes:    210 * units.MB,
				InitialDevBytes: 0,
				ReadPct:         60,
				WritePct:        30,
				ExtendPct:       7,
				DeletePct:       0, // the 3% deallocations are truncates
				Pattern:         Random,
			},
			{
				Name:            "tp-applog",
				Files:           5,
				Users:           5,
				ProcessTimeMS:   50,
				HitFreqMS:       50,
				RWSizeBytes:     8 * units.KB,
				RWDevBytes:      0,
				AllocSizeBytes:  100 * units.KB,
				TruncateBytes:   128 * units.KB,
				InitialBytes:    5 * units.MB,
				InitialDevBytes: 0,
				ReadPct:         2,
				WritePct:        0,
				ExtendPct:       93,
				DeletePct:       0,
				Pattern:         Sequential,
			},
			{
				Name:            "tp-syslog",
				Files:           1,
				Users:           1,
				ProcessTimeMS:   20,
				HitFreqMS:       20,
				RWSizeBytes:     8 * units.KB,
				RWDevBytes:      0,
				AllocSizeBytes:  512 * units.KB,
				TruncateBytes:   256 * units.KB,
				InitialBytes:    10 * units.MB,
				InitialDevBytes: 0,
				ReadPct:         5,
				WritePct:        0,
				ExtendPct:       94,
				DeletePct:       0,
				Pattern:         Sequential,
			},
		},
	}
}

// SuperComputer returns the SC workload of §2.2: one 500M file and fifteen
// 100M files read and written in 512K contiguous bursts (60% reads, 30%
// writes, 8% extends, 2% truncates), plus ten 10M files in 32K bursts that
// are periodically deleted and recreated (5% deletes).
func SuperComputer() Workload {
	return Workload{
		Name: "SC",
		Types: []FileType{
			{
				Name:            "sc-large",
				Files:           1,
				Users:           2,
				ProcessTimeMS:   20,
				HitFreqMS:       20,
				RWSizeBytes:     512 * units.KB,
				RWDevBytes:      0,
				AllocSizeBytes:  16 * units.MB,
				TruncateBytes:   512 * units.KB,
				InitialBytes:    500 * units.MB,
				InitialDevBytes: 0,
				ReadPct:         60,
				WritePct:        30,
				ExtendPct:       8,
				DeletePct:       0,
				Pattern:         Sequential,
			},
			{
				Name:            "sc-medium",
				Files:           15,
				Users:           15,
				ProcessTimeMS:   20,
				HitFreqMS:       20,
				RWSizeBytes:     512 * units.KB,
				RWDevBytes:      0,
				AllocSizeBytes:  1 * units.MB,
				TruncateBytes:   512 * units.KB,
				InitialBytes:    100 * units.MB,
				InitialDevBytes: 0,
				ReadPct:         60,
				WritePct:        30,
				ExtendPct:       8,
				DeletePct:       0,
				Pattern:         Sequential,
			},
			{
				Name:            "sc-small",
				Files:           10,
				Users:           5,
				ProcessTimeMS:   20,
				HitFreqMS:       20,
				RWSizeBytes:     32 * units.KB,
				RWDevBytes:      0,
				AllocSizeBytes:  512 * units.KB,
				TruncateBytes:   32 * units.KB,
				InitialBytes:    10 * units.MB,
				InitialDevBytes: 0,
				ReadPct:         60,
				WritePct:        30,
				ExtendPct:       5,
				DeletePct:       100, // 5% deletes, no truncates
				Pattern:         Sequential,
			},
		},
	}
}

// ByName returns one of the three standard workloads.
func ByName(name string) (Workload, error) {
	switch name {
	case "TS", "ts":
		return TimeSharing(), nil
	case "TP", "tp":
		return TransactionProcessing(), nil
	case "SC", "sc":
		return SuperComputer(), nil
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q (want TS, TP, or SC)", name)
}

// ExtentRanges returns the paper's extent-size range means for a workload
// and range count (the §4.3 tables), in bytes.
func ExtentRanges(workloadName string, n int) ([]int64, error) {
	ts := map[int][]int64{
		1: {4 * units.KB},
		2: {1 * units.KB, 8 * units.KB},
		3: {1 * units.KB, 8 * units.KB, 1 * units.MB},
		4: {1 * units.KB, 4 * units.KB, 8 * units.KB, 1 * units.MB},
		5: {1 * units.KB, 4 * units.KB, 8 * units.KB, 16 * units.KB, 1 * units.MB},
	}
	// The paper lists "10K, 512K, 1M, 10, 16M" for the 5-range TP/SC
	// configuration; the bare "10" is a typo for 10M.
	tpsc := map[int][]int64{
		1: {512 * units.KB},
		2: {512 * units.KB, 16 * units.MB},
		3: {512 * units.KB, 1 * units.MB, 16 * units.MB},
		4: {512 * units.KB, 1 * units.MB, 10 * units.MB, 16 * units.MB},
		5: {10 * units.KB, 512 * units.KB, 1 * units.MB, 10 * units.MB, 16 * units.MB},
	}
	var table map[int][]int64
	switch workloadName {
	case "TS", "ts":
		table = ts
	case "TP", "tp", "SC", "sc":
		table = tpsc
	default:
		return nil, fmt.Errorf("workload: unknown workload %q", workloadName)
	}
	r, ok := table[n]
	if !ok {
		return nil, fmt.Errorf("workload: no %d-range extent configuration", n)
	}
	return r, nil
}
