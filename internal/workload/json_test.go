package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	for _, w := range []Workload{TimeSharing(), TransactionProcessing(), SuperComputer()} {
		var buf bytes.Buffer
		if err := ToJSON(&buf, w); err != nil {
			t.Fatalf("%s: encode: %v", w.Name, err)
		}
		got, err := FromJSON(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", w.Name, err)
		}
		if got.Name != w.Name || len(got.Types) != len(w.Types) {
			t.Fatalf("%s: round trip lost structure", w.Name)
		}
		for i := range w.Types {
			if got.Types[i] != w.Types[i] {
				t.Fatalf("%s type %d: %+v != %+v", w.Name, i, got.Types[i], w.Types[i])
			}
		}
	}
}

func TestFromJSONHandWritten(t *testing.T) {
	cfg := `{
	  "Name": "custom",
	  "Types": [{
	    "Name": "logs",
	    "Files": 4,
	    "Users": 2,
	    "ProcessTimeMS": 50,
	    "HitFreqMS": 50,
	    "RWSizeBytes": 8192,
	    "InitialBytes": 1048576,
	    "ReadPct": 10,
	    "ExtendPct": 85,
	    "Pattern": "sequential"
	  }]
	}`
	w, err := FromJSON(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if w.Types[0].Files != 4 || w.Types[0].Pattern != Sequential {
		t.Fatalf("decoded %+v", w.Types[0])
	}
	if w.Types[0].DeallocPct() != 5 {
		t.Fatalf("DeallocPct = %g", w.Types[0].DeallocPct())
	}
}

func TestFromJSONRejectsUnknownFields(t *testing.T) {
	cfg := `{"Name": "x", "Types": [{"Name": "a", "Files": 1, "Users": 1,
	  "RWSizeBytes": 1024, "ReadPct": 100, "Typo": 7}]}`
	if _, err := FromJSON(strings.NewReader(cfg)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestFromJSONValidates(t *testing.T) {
	cfg := `{"Name": "x", "Types": [{"Name": "a", "Files": 0, "Users": 1,
	  "RWSizeBytes": 1024, "ReadPct": 100}]}`
	if _, err := FromJSON(strings.NewReader(cfg)); err == nil {
		t.Fatal("invalid workload accepted")
	}
	if _, err := FromJSON(strings.NewReader(`{`)); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}

func TestPatternJSON(t *testing.T) {
	var p Pattern
	for _, c := range []struct {
		in   string
		want Pattern
		ok   bool
	}{
		{`"random"`, Random, true},
		{`"RAND"`, Random, true},
		{`"sequential"`, Sequential, true},
		{`""`, Sequential, true},
		{`"zigzag"`, 0, false},
		{`7`, 0, false},
	} {
		err := p.UnmarshalJSON([]byte(c.in))
		if c.ok && (err != nil || p != c.want) {
			t.Errorf("UnmarshalJSON(%s) = %v, %v", c.in, p, err)
		}
		if !c.ok && err == nil {
			t.Errorf("UnmarshalJSON(%s) accepted", c.in)
		}
	}
}
