package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartZeroValueIsNoOp(t *testing.T) {
	stop, err := Start(Flags{})
	if err != nil {
		t.Fatalf("Start(zero) = %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop = %v", err)
	}
}

func TestStartWritesAllProfiles(t *testing.T) {
	dir := t.TempDir()
	f := Flags{
		CPUProfile: filepath.Join(dir, "cpu.out"),
		MemProfile: filepath.Join(dir, "mem.out"),
		Trace:      filepath.Join(dir, "trace.out"),
	}
	stop, err := Start(f)
	if err != nil {
		t.Fatalf("Start = %v", err)
	}
	// Burn a little work so the profilers have something to record.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatalf("stop = %v", err)
	}
	for _, p := range []string{f.CPUProfile, f.MemProfile, f.Trace} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartBadPathFails(t *testing.T) {
	if _, err := Start(Flags{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "x")}); err == nil {
		t.Fatal("Start with unwritable cpu profile path succeeded")
	}
}
