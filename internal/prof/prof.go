// Package prof wires Go's runtime profilers behind the conventional
// -cpuprofile / -memprofile / -trace command flags, so every binary in
// cmd/ exposes the same profiling surface with one Start/stop pair.
//
// Start begins CPU profiling and execution tracing immediately; the
// returned stop function ends them and writes the heap profile. The stop
// function must run before the process exits or the CPU profile and
// trace files are truncated — defer it at the top of main, and call it
// explicitly before any os.Exit path that should keep profiles.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags names the output files. Empty fields disable the corresponding
// profiler; the zero value makes Start a no-op.
type Flags struct {
	CPUProfile string // pprof CPU profile ("go tool pprof <bin> <file>")
	MemProfile string // heap profile written at stop time
	Trace      string // runtime execution trace ("go tool trace <file>")
}

// Start enables the requested profilers and returns the function that
// finishes them. On error, anything already started is stopped and the
// partial files are left behind.
func Start(f Flags) (stop func() error, err error) {
	var cpuFile, traceFile *os.File

	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}

	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("prof: %v", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			cleanup()
			return nil, fmt.Errorf("prof: start cpu profile: %v", err)
		}
	}
	if f.Trace != "" {
		traceFile, err = os.Create(f.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("prof: %v", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("prof: start trace: %v", err)
		}
	}

	memPath := f.MemProfile
	return func() error {
		cleanup()
		if memPath == "" {
			return nil
		}
		mf, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("prof: %v", err)
		}
		defer mf.Close()
		runtime.GC() // collect garbage so the heap profile shows live objects
		if err := pprof.WriteHeapProfile(mf); err != nil {
			return fmt.Errorf("prof: write heap profile: %v", err)
		}
		return nil
	}, nil
}
