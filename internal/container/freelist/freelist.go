// Package freelist tracks free runs of a linear address space — the
// free-space map behind the extent-based allocation policy (§4.3 of the
// paper), where an extent "may begin at any address" and freed extents
// are "coalesced with adjoining extents if they are free".
//
// The structure is an address-keyed treap augmented with the maximum run
// length per subtree, which makes exact first-fit (lowest address whose
// run is long enough) an O(log n) descent, plus a (length, address)
// red-black index for exact best-fit. All mutations keep both indexes and
// the aggregate free count in sync, and adjacent runs are coalesced
// eagerly so the map always holds maximal runs.
package freelist

import (
	"fmt"

	"rofs/internal/container/rbtree"
)

// Run is a free range [Addr, Addr+Len).
type Run struct {
	Addr, Len int64
}

type node struct {
	run         Run
	pri         uint64 // treap heap priority
	maxLen      int64  // max run length in this subtree
	left, right *node
}

func (n *node) fix() {
	n.maxLen = n.run.Len
	if n.left != nil && n.left.maxLen > n.maxLen {
		n.maxLen = n.left.maxLen
	}
	if n.right != nil && n.right.maxLen > n.maxLen {
		n.maxLen = n.right.maxLen
	}
}

// sizeKey orders the best-fit index by (length, address).
type sizeKey struct {
	len, addr int64
}

func sizeLess(a, b sizeKey) bool {
	if a.len != b.len {
		return a.len < b.len
	}
	return a.addr < b.addr
}

// T is a free-run map. Create with New.
type T struct {
	root      *node
	bySize    *rbtree.Tree[sizeKey, struct{}]
	free      int64
	count     int
	coalesces int64
	seed      uint64 // xorshift state for treap priorities
}

// New returns an empty map. Priorities are drawn from a deterministic
// generator so runs are reproducible.
func New() *T {
	return &T{
		bySize: rbtree.New[sizeKey, struct{}](sizeLess),
		seed:   0x9E3779B97F4A7C15,
	}
}

func (t *T) nextPri() uint64 {
	// xorshift64*
	t.seed ^= t.seed >> 12
	t.seed ^= t.seed << 25
	t.seed ^= t.seed >> 27
	return t.seed * 0x2545F4914F6CDD1D
}

// FreeUnits returns the total free space.
func (t *T) FreeUnits() int64 { return t.free }

// Runs returns the number of (maximal) free runs.
func (t *T) Runs() int { return t.count }

// Coalesces returns how many times Insert merged a run with an adjacent
// free neighbour (each Insert can count up to two merges).
func (t *T) Coalesces() int64 { return t.coalesces }

// MaxRun returns the length of the longest free run (0 when empty).
func (t *T) MaxRun() int64 {
	if t.root == nil {
		return 0
	}
	return t.root.maxLen
}

// Insert adds the free run [addr, addr+len), coalescing with neighbours.
// It panics if the run overlaps existing free space — freeing space twice
// is always an allocator bug.
func (t *T) Insert(addr, length int64) {
	if length <= 0 || addr < 0 {
		panic(fmt.Sprintf("freelist: bad run [%d,+%d)", addr, length))
	}
	// Coalesce with the predecessor and successor runs if adjacent.
	if prev, ok := t.floor(addr); ok {
		if prev.Addr+prev.Len > addr {
			panic(fmt.Sprintf("freelist: run [%d,+%d) overlaps free [%d,+%d)",
				addr, length, prev.Addr, prev.Len))
		}
		if prev.Addr+prev.Len == addr {
			t.remove(prev)
			addr, length = prev.Addr, prev.Len+length
			t.coalesces++
		}
	}
	if next, ok := t.ceiling(addr + 1); ok {
		if next.Addr < addr+length {
			panic(fmt.Sprintf("freelist: run [%d,+%d) overlaps free [%d,+%d)",
				addr, length, next.Addr, next.Len))
		}
		if next.Addr == addr+length {
			t.remove(next)
			length += next.Len
			t.coalesces++
		}
	}
	t.add(Run{addr, length})
}

// Alloc carves [addr, addr+len) out of free space. The range must be
// entirely free (it may be the interior of a run); used by policies that
// choose a specific placement, e.g. contiguous-next-block allocation.
func (t *T) Alloc(addr, length int64) {
	run, ok := t.containing(addr)
	if !ok || run.Addr+run.Len < addr+length {
		panic(fmt.Sprintf("freelist: Alloc [%d,+%d) not inside a free run", addr, length))
	}
	t.remove(run)
	if pre := addr - run.Addr; pre > 0 {
		t.add(Run{run.Addr, pre})
	}
	if post := run.Addr + run.Len - (addr + length); post > 0 {
		t.add(Run{addr + length, post})
	}
}

// Contains reports whether [addr, addr+len) is entirely free.
func (t *T) Contains(addr, length int64) bool {
	run, ok := t.containing(addr)
	return ok && run.Addr+run.Len >= addr+length
}

// ContainingRun returns the free run covering addr, if any.
func (t *T) ContainingRun(addr int64) (Run, bool) { return t.containing(addr) }

// FirstFit returns the lowest-addressed free run with length >= n.
func (t *T) FirstFit(n int64) (Run, bool) {
	cur := t.root
	for cur != nil {
		if cur.left != nil && cur.left.maxLen >= n {
			cur = cur.left
			continue
		}
		if cur.run.Len >= n {
			return cur.run, true
		}
		cur = cur.right
	}
	return Run{}, false
}

// BestFit returns the shortest free run with length >= n (lowest address
// on ties).
func (t *T) BestFit(n int64) (Run, bool) {
	k, _, ok := t.bySize.Ceiling(sizeKey{len: n, addr: -1 << 62})
	if !ok {
		return Run{}, false
	}
	return Run{Addr: k.addr, Len: k.len}, true
}

// NextFit returns the lowest-addressed free run with length >= n at
// address >= from, wrapping to the lowest overall if none follows from.
func (t *T) NextFit(n, from int64) (Run, bool) {
	if r, ok := t.firstFitFrom(t.root, n, from); ok {
		return r, true
	}
	return t.FirstFit(n)
}

func (t *T) firstFitFrom(cur *node, n, from int64) (Run, bool) {
	for cur != nil {
		if cur.run.Addr < from {
			cur = cur.right
			continue
		}
		if cur.left != nil && cur.left.maxLen >= n {
			if r, ok := t.firstFitFrom(cur.left, n, from); ok {
				return r, true
			}
		}
		if cur.run.Len >= n {
			return cur.run, true
		}
		cur = cur.right
	}
	return Run{}, false
}

// Ascend visits runs in address order until fn returns false.
func (t *T) Ascend(fn func(Run) bool) {
	var walk func(*node) bool
	walk = func(n *node) bool {
		if n == nil {
			return true
		}
		return walk(n.left) && fn(n.run) && walk(n.right)
	}
	walk(t.root)
}

// --- internal treap machinery ---

func (t *T) add(r Run) {
	t.root = t.insertNode(t.root, &node{run: r, pri: t.nextPri(), maxLen: r.Len})
	t.bySize.Set(sizeKey{r.Len, r.Addr}, struct{}{})
	t.free += r.Len
	t.count++
}

func (t *T) remove(r Run) {
	t.root = t.deleteNode(t.root, r.Addr)
	if !t.bySize.Delete(sizeKey{r.Len, r.Addr}) {
		panic(fmt.Sprintf("freelist: size index missing run [%d,+%d)", r.Addr, r.Len))
	}
	t.free -= r.Len
	t.count--
}

func (t *T) insertNode(cur, n *node) *node {
	if cur == nil {
		return n
	}
	if n.run.Addr == cur.run.Addr {
		panic(fmt.Sprintf("freelist: duplicate run address %d", n.run.Addr))
	}
	if n.run.Addr < cur.run.Addr {
		cur.left = t.insertNode(cur.left, n)
		if cur.left.pri > cur.pri {
			cur = rotateRight(cur)
		}
	} else {
		cur.right = t.insertNode(cur.right, n)
		if cur.right.pri > cur.pri {
			cur = rotateLeft(cur)
		}
	}
	cur.fix()
	return cur
}

func (t *T) deleteNode(cur *node, addr int64) *node {
	if cur == nil {
		panic(fmt.Sprintf("freelist: delete of absent address %d", addr))
	}
	switch {
	case addr < cur.run.Addr:
		cur.left = t.deleteNode(cur.left, addr)
	case addr > cur.run.Addr:
		cur.right = t.deleteNode(cur.right, addr)
	default:
		if cur.left == nil {
			return cur.right
		}
		if cur.right == nil {
			return cur.left
		}
		if cur.left.pri > cur.right.pri {
			cur = rotateRight(cur)
			cur.right = t.deleteNode(cur.right, addr)
		} else {
			cur = rotateLeft(cur)
			cur.left = t.deleteNode(cur.left, addr)
		}
	}
	cur.fix()
	return cur
}

func rotateRight(h *node) *node {
	x := h.left
	h.left = x.right
	x.right = h
	h.fix()
	x.fix()
	return x
}

func rotateLeft(h *node) *node {
	x := h.right
	h.right = x.left
	x.left = h
	h.fix()
	x.fix()
	return x
}

func (t *T) floor(addr int64) (Run, bool) {
	var best *node
	cur := t.root
	for cur != nil {
		if cur.run.Addr <= addr {
			best = cur
			cur = cur.right
		} else {
			cur = cur.left
		}
	}
	if best == nil {
		return Run{}, false
	}
	return best.run, true
}

func (t *T) ceiling(addr int64) (Run, bool) {
	var best *node
	cur := t.root
	for cur != nil {
		if cur.run.Addr >= addr {
			best = cur
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	if best == nil {
		return Run{}, false
	}
	return best.run, true
}

// containing returns the run that covers addr, if any.
func (t *T) containing(addr int64) (Run, bool) {
	r, ok := t.floor(addr)
	if !ok || r.Addr+r.Len <= addr {
		return Run{}, false
	}
	return r, true
}
