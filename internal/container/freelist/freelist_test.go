package freelist

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEmpty(t *testing.T) {
	fl := New()
	if fl.FreeUnits() != 0 || fl.Runs() != 0 || fl.MaxRun() != 0 {
		t.Fatal("empty list not empty")
	}
	if _, ok := fl.FirstFit(1); ok {
		t.Fatal("FirstFit on empty returned a run")
	}
	if _, ok := fl.BestFit(1); ok {
		t.Fatal("BestFit on empty returned a run")
	}
	if _, ok := fl.NextFit(1, 0); ok {
		t.Fatal("NextFit on empty returned a run")
	}
}

func TestInsertCoalescesBothSides(t *testing.T) {
	fl := New()
	fl.Insert(0, 10)
	fl.Insert(20, 10)
	if fl.Runs() != 2 {
		t.Fatalf("Runs = %d", fl.Runs())
	}
	fl.Insert(10, 10) // bridges the gap
	if fl.Runs() != 1 {
		t.Fatalf("Runs = %d after bridging insert", fl.Runs())
	}
	r, ok := fl.FirstFit(30)
	if !ok || r.Addr != 0 || r.Len != 30 {
		t.Fatalf("coalesced run = %+v", r)
	}
	if fl.FreeUnits() != 30 {
		t.Fatalf("FreeUnits = %d", fl.FreeUnits())
	}
}

func TestInsertCoalescesLeftOnly(t *testing.T) {
	fl := New()
	fl.Insert(0, 10)
	fl.Insert(10, 5)
	if fl.Runs() != 1 || fl.MaxRun() != 15 {
		t.Fatalf("Runs=%d MaxRun=%d", fl.Runs(), fl.MaxRun())
	}
}

func TestInsertOverlapPanics(t *testing.T) {
	for _, c := range []struct{ addr, len int64 }{{5, 3}, {0, 3}, {9, 5}} {
		fl := New()
		fl.Insert(0, 10)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("overlapping insert [%d,+%d) did not panic", c.addr, c.len)
				}
			}()
			fl.Insert(c.addr, c.len)
		}()
	}
}

func TestAllocInterior(t *testing.T) {
	fl := New()
	fl.Insert(0, 100)
	fl.Alloc(40, 20) // splits into [0,40) and [60,100)
	if fl.Runs() != 2 || fl.FreeUnits() != 80 {
		t.Fatalf("Runs=%d Free=%d", fl.Runs(), fl.FreeUnits())
	}
	if fl.Contains(40, 1) || fl.Contains(59, 1) {
		t.Fatal("allocated range still reported free")
	}
	if !fl.Contains(0, 40) || !fl.Contains(60, 40) {
		t.Fatal("remainders not free")
	}
}

func TestAllocWholeRun(t *testing.T) {
	fl := New()
	fl.Insert(10, 5)
	fl.Alloc(10, 5)
	if fl.Runs() != 0 || fl.FreeUnits() != 0 {
		t.Fatal("whole-run alloc left residue")
	}
}

func TestAllocOutsideFreePanics(t *testing.T) {
	fl := New()
	fl.Insert(0, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc beyond run did not panic")
		}
	}()
	fl.Alloc(5, 10)
}

func TestFirstFitIsLowestAddress(t *testing.T) {
	fl := New()
	fl.Insert(100, 5)
	fl.Insert(0, 3)
	fl.Insert(50, 10)
	r, ok := fl.FirstFit(4)
	if !ok || r.Addr != 50 {
		t.Fatalf("FirstFit(4) = %+v, want addr 50", r)
	}
	r, ok = fl.FirstFit(1)
	if !ok || r.Addr != 0 {
		t.Fatalf("FirstFit(1) = %+v, want addr 0", r)
	}
	if _, ok = fl.FirstFit(11); ok {
		t.Fatal("FirstFit(11) found a run")
	}
}

func TestBestFitIsSmallestSufficient(t *testing.T) {
	fl := New()
	fl.Insert(0, 100)
	fl.Insert(200, 7)
	fl.Insert(300, 5)
	r, ok := fl.BestFit(5)
	if !ok || r.Addr != 300 || r.Len != 5 {
		t.Fatalf("BestFit(5) = %+v, want [300,+5)", r)
	}
	r, ok = fl.BestFit(6)
	if !ok || r.Addr != 200 {
		t.Fatalf("BestFit(6) = %+v, want [200,+7)", r)
	}
	// Ties by length resolve to the lowest address.
	fl.Insert(150, 5)
	r, _ = fl.BestFit(5)
	if r.Addr != 150 {
		t.Fatalf("BestFit tie = %+v, want addr 150", r)
	}
}

func TestNextFitWraps(t *testing.T) {
	fl := New()
	fl.Insert(0, 10)
	fl.Insert(100, 10)
	r, ok := fl.NextFit(5, 50)
	if !ok || r.Addr != 100 {
		t.Fatalf("NextFit(5, 50) = %+v", r)
	}
	r, ok = fl.NextFit(5, 150) // nothing after 150: wraps to lowest
	if !ok || r.Addr != 0 {
		t.Fatalf("NextFit(5, 150) = %+v, want wrap to 0", r)
	}
	r, ok = fl.NextFit(5, 0)
	if !ok || r.Addr != 0 {
		t.Fatalf("NextFit(5, 0) = %+v", r)
	}
}

func TestContainingRun(t *testing.T) {
	fl := New()
	fl.Insert(10, 10)
	if r, ok := fl.ContainingRun(15); !ok || r.Addr != 10 {
		t.Fatalf("ContainingRun(15) = %+v, %v", r, ok)
	}
	if _, ok := fl.ContainingRun(20); ok {
		t.Fatal("ContainingRun(20) found a run past the end")
	}
	if _, ok := fl.ContainingRun(9); ok {
		t.Fatal("ContainingRun(9) found a run before the start")
	}
}

func TestAscendOrder(t *testing.T) {
	fl := New()
	for _, a := range []int64{500, 100, 300} {
		fl.Insert(a, 10)
	}
	var addrs []int64
	fl.Ascend(func(r Run) bool {
		addrs = append(addrs, r.Addr)
		return true
	})
	if len(addrs) != 3 || addrs[0] != 100 || addrs[1] != 300 || addrs[2] != 500 {
		t.Fatalf("Ascend order %v", addrs)
	}
}

// TestRandomizedAgainstReference drives the freelist with random alloc/free
// traffic and compares against a boolean-slice reference model.
func TestRandomizedAgainstReference(t *testing.T) {
	const space = 2000
	rng := rand.New(rand.NewSource(7))
	fl := New()
	free := make([]bool, space)
	fl.Insert(0, space)
	for i := range free {
		free[i] = true
	}

	refFreeCount := func() int64 {
		var n int64
		for _, f := range free {
			if f {
				n++
			}
		}
		return n
	}
	refRuns := func() []Run {
		var runs []Run
		i := 0
		for i < space {
			if !free[i] {
				i++
				continue
			}
			j := i
			for j < space && free[j] {
				j++
			}
			runs = append(runs, Run{int64(i), int64(j - i)})
			i = j
		}
		return runs
	}
	refFirstFit := func(n int64) (Run, bool) {
		for _, r := range refRuns() {
			if r.Len >= n {
				return r, true
			}
		}
		return Run{}, false
	}
	refBestFit := func(n int64) (Run, bool) {
		runs := refRuns()
		sort.Slice(runs, func(i, j int) bool {
			if runs[i].Len != runs[j].Len {
				return runs[i].Len < runs[j].Len
			}
			return runs[i].Addr < runs[j].Addr
		})
		for _, r := range runs {
			if r.Len >= n {
				return r, true
			}
		}
		return Run{}, false
	}

	for step := 0; step < 5000; step++ {
		n := int64(rng.Intn(16) + 1)
		if rng.Intn(2) == 0 {
			// Allocate via first- or best-fit, carving from the run start.
			var r Run
			var ok bool
			if rng.Intn(2) == 0 {
				r, ok = fl.FirstFit(n)
				wr, wok := refFirstFit(n)
				if ok != wok || (ok && r != wr) {
					t.Fatalf("step %d: FirstFit(%d) = %+v,%v want %+v,%v", step, n, r, ok, wr, wok)
				}
			} else {
				r, ok = fl.BestFit(n)
				wr, wok := refBestFit(n)
				if ok != wok || (ok && r != wr) {
					t.Fatalf("step %d: BestFit(%d) = %+v,%v want %+v,%v", step, n, r, ok, wr, wok)
				}
			}
			if ok {
				fl.Alloc(r.Addr, n)
				for i := r.Addr; i < r.Addr+n; i++ {
					free[i] = false
				}
			}
		} else {
			// Free a random currently-allocated range.
			start := rng.Intn(space)
			end := start
			for end < space && !free[end] && int64(end-start) < n {
				end++
			}
			if end > start {
				fl.Insert(int64(start), int64(end-start))
				for i := start; i < end; i++ {
					free[i] = true
				}
			}
		}
		if fl.FreeUnits() != refFreeCount() {
			t.Fatalf("step %d: FreeUnits = %d, want %d", step, fl.FreeUnits(), refFreeCount())
		}
		if step%250 == 0 {
			want := refRuns()
			var got []Run
			fl.Ascend(func(r Run) bool { got = append(got, r); return true })
			if len(got) != len(want) {
				t.Fatalf("step %d: %d runs, want %d", step, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("step %d: run %d = %+v, want %+v", step, i, got[i], want[i])
				}
			}
			if fl.Runs() != len(want) {
				t.Fatalf("step %d: Runs() = %d, want %d", step, fl.Runs(), len(want))
			}
		}
	}
}

func BenchmarkFirstFit(b *testing.B) {
	fl := New()
	rng := rand.New(rand.NewSource(3))
	// Build a fragmented map of ~10k runs.
	for i := int64(0); i < 10000; i++ {
		fl.Insert(i*20, int64(rng.Intn(10)+1))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fl.FirstFit(int64(rng.Intn(10) + 1))
	}
}
