package freelist

import "testing"

// FuzzOps drives the free-run map with arbitrary byte scripts: every two
// bytes encode one operation. Invariants checked after every step: free
// count matches the reference bitmap and no operation panics on valid
// input.
func FuzzOps(f *testing.F) {
	f.Add([]byte{0x01, 0x10, 0x81, 0x20})
	f.Add([]byte{0xFF, 0xFF, 0x00, 0x00, 0x42, 0x42})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, script []byte) {
		const space = 256
		fl := New()
		free := make([]bool, space)
		fl.Insert(0, space)
		for i := range free {
			free[i] = true
		}
		refFree := func() int64 {
			var n int64
			for _, b := range free {
				if b {
					n++
				}
			}
			return n
		}
		for i := 0; i+1 < len(script); i += 2 {
			op, arg := script[i], script[i+1]
			n := int64(op&0x0F) + 1
			if op&0x80 == 0 {
				// Allocate via best fit (exercises the size index).
				r, ok := fl.BestFit(n)
				if !ok {
					continue
				}
				fl.Alloc(r.Addr, n)
				for j := r.Addr; j < r.Addr+n; j++ {
					free[j] = false
				}
			} else {
				// Free a run of allocated units starting near arg.
				at := int(arg) % space
				end := at
				for end < space && !free[end] && int64(end-at) < n {
					end++
				}
				if end > at {
					fl.Insert(int64(at), int64(end-at))
					for j := at; j < end; j++ {
						free[j] = true
					}
				}
			}
			if fl.FreeUnits() != refFree() {
				t.Fatalf("step %d: free count %d != reference %d", i, fl.FreeUnits(), refFree())
			}
		}
		// Final structural pass: maximal, ordered runs.
		prevEnd := int64(-2)
		fl.Ascend(func(r Run) bool {
			if r.Addr <= prevEnd || r.Len <= 0 {
				t.Fatalf("non-maximal or disordered run %+v after end %d", r, prevEnd)
			}
			prevEnd = r.Addr + r.Len
			return true
		})
	})
}
