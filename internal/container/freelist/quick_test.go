package freelist

import (
	"testing"
	"testing/quick"
)

// buildFromOps replays a bounded operation script against both the
// freelist and a bitmap reference, returning false on any divergence —
// the testing/quick property driver for the structure.
func buildFromOps(script []uint16) bool {
	const space = 512
	fl := New()
	free := make([]bool, space)
	fl.Insert(0, space)
	for i := range free {
		free[i] = true
	}
	refFree := func() int64 {
		var n int64
		for _, f := range free {
			if f {
				n++
			}
		}
		return n
	}
	for _, op := range script {
		n := int64(op&0x0F) + 1 // 1..16 units
		switch {
		case op&0x8000 == 0: // allocate first-fit
			r, ok := fl.FirstFit(n)
			// Reference first fit.
			wantAddr, wantOK := int64(-1), false
			run := int64(0)
			start := int64(0)
			for i := 0; i <= space; i++ {
				if i < space && free[i] {
					if run == 0 {
						start = int64(i)
					}
					run++
				} else {
					if run >= n && !wantOK {
						wantAddr, wantOK = start, true
					}
					run = 0
				}
			}
			if ok != wantOK || (ok && r.Addr != wantAddr) {
				return false
			}
			if ok {
				fl.Alloc(r.Addr, n)
				for i := r.Addr; i < r.Addr+n; i++ {
					free[i] = false
				}
			}
		default: // free a range starting at a pseudo-random allocated unit
			at := int(op>>4) % space
			end := at
			for end < space && !free[end] && int64(end-at) < n {
				end++
			}
			if end > at {
				fl.Insert(int64(at), int64(end-at))
				for i := at; i < end; i++ {
					free[i] = true
				}
			}
		}
		if fl.FreeUnits() != refFree() {
			return false
		}
	}
	// Structural invariant: runs are maximal (no two adjacent).
	prevEnd := int64(-2)
	okRuns := true
	fl.Ascend(func(r Run) bool {
		if r.Addr <= prevEnd {
			okRuns = false
			return false
		}
		prevEnd = r.Addr + r.Len
		return true
	})
	return okRuns
}

func TestQuickFreelistMatchesReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(buildFromOps, cfg); err != nil {
		t.Error(err)
	}
}
