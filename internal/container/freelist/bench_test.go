package freelist

import "testing"

// fragmented builds a map of n free runs with varied lengths, separated
// by allocated gaps so neighbours never coalesce — the steady-state shape
// of an aged extent free map.
func fragmented(n int) *T {
	t := New()
	addr := int64(0)
	for i := 0; i < n; i++ {
		length := int64(1 + i%17)
		t.Insert(addr, length)
		addr += length + 3
	}
	return t
}

// BenchmarkFirstFit lives in freelist_test.go; the best-fit counterpart
// searches the (length, address) index instead of the treap.
func BenchmarkBestFit(b *testing.B) {
	t := fragmented(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.BestFit(int64(1 + i%17)); !ok {
			b.Fatal("no fit")
		}
	}
}

// BenchmarkAllocFreeCycle measures the full mutation path — search, carve,
// free with coalescing — for both placement disciplines.
func BenchmarkAllocFreeCycle(b *testing.B) {
	for _, mode := range []struct {
		name string
		pick func(t *T, n int64) (Run, bool)
	}{
		{"first-fit", (*T).FirstFit},
		{"best-fit", (*T).BestFit},
	} {
		b.Run(mode.name, func(b *testing.B) {
			t := fragmented(4096)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				need := int64(1 + i%9)
				r, ok := mode.pick(t, need)
				if !ok {
					b.Fatal("no fit")
				}
				t.Alloc(r.Addr, need)
				t.Insert(r.Addr, need)
			}
		})
	}
}

// BenchmarkInsertCoalesce measures freeing into both neighbours at once:
// carve three adjacent pieces out of one run, then free the middle last so
// the final Insert merges twice.
func BenchmarkInsertCoalesce(b *testing.B) {
	t := New()
	t.Insert(0, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Alloc(100, 30)
		t.Insert(100, 10)
		t.Insert(120, 10)
		t.Insert(110, 10)
	}
}
