// Package rbtree implements a generic left-leaning red-black tree
// (Sedgewick 2008): an ordered map with O(log n) insert, delete, lookup,
// and ordered navigation (floor, ceiling, min, max, range iteration).
//
// The allocation policies use it for free-space management: the extent
// policy keeps one tree keyed by address (for first-fit scans and boundary
// coalescing) and one keyed by (size, address) (for best-fit), and the
// restricted buddy policy keeps per-size free lists sorted by address.
package rbtree

// Tree is an ordered map from K to V. Create one with New; the zero value
// is not usable because it lacks a comparator.
type Tree[K, V any] struct {
	root *node[K, V]
	less func(a, b K) bool
	size int
}

type node[K, V any] struct {
	key         K
	val         V
	left, right *node[K, V]
	red         bool
}

// New returns an empty tree ordered by less.
func New[K, V any](less func(a, b K) bool) *Tree[K, V] {
	if less == nil {
		panic("rbtree: nil comparator")
	}
	return &Tree[K, V]{less: less}
}

// Len returns the number of keys in the tree.
func (t *Tree[K, V]) Len() int { return t.size }

func isRed[K, V any](n *node[K, V]) bool { return n != nil && n.red }

func rotateLeft[K, V any](h *node[K, V]) *node[K, V] {
	x := h.right
	h.right = x.left
	x.left = h
	x.red = h.red
	h.red = true
	return x
}

func rotateRight[K, V any](h *node[K, V]) *node[K, V] {
	x := h.left
	h.left = x.right
	x.right = h
	x.red = h.red
	h.red = true
	return x
}

func flipColors[K, V any](h *node[K, V]) {
	h.red = !h.red
	h.left.red = !h.left.red
	h.right.red = !h.right.red
}

func fixUp[K, V any](h *node[K, V]) *node[K, V] {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h
}

// Set inserts key with value v, replacing any existing value for key.
func (t *Tree[K, V]) Set(key K, v V) {
	t.root = t.insert(t.root, key, v)
	t.root.red = false
}

func (t *Tree[K, V]) insert(h *node[K, V], key K, v V) *node[K, V] {
	if h == nil {
		t.size++
		return &node[K, V]{key: key, val: v, red: true}
	}
	switch {
	case t.less(key, h.key):
		h.left = t.insert(h.left, key, v)
	case t.less(h.key, key):
		h.right = t.insert(h.right, key, v)
	default:
		h.val = v
	}
	return fixUp(h)
}

// Get returns the value stored for key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	n := t.root
	for n != nil {
		switch {
		case t.less(key, n.key):
			n = n.left
		case t.less(n.key, key):
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (t *Tree[K, V]) Contains(key K) bool {
	_, ok := t.Get(key)
	return ok
}

// Min returns the smallest key and its value.
func (t *Tree[K, V]) Min() (K, V, bool) {
	if t.root == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	n := t.root
	for n.left != nil {
		n = n.left
	}
	return n.key, n.val, true
}

// Max returns the largest key and its value.
func (t *Tree[K, V]) Max() (K, V, bool) {
	if t.root == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	n := t.root
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Ceiling returns the smallest key >= key and its value.
func (t *Tree[K, V]) Ceiling(key K) (K, V, bool) {
	var best *node[K, V]
	n := t.root
	for n != nil {
		if t.less(n.key, key) {
			n = n.right
		} else {
			best = n
			n = n.left
		}
	}
	if best == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	return best.key, best.val, true
}

// Floor returns the largest key <= key and its value.
func (t *Tree[K, V]) Floor(key K) (K, V, bool) {
	var best *node[K, V]
	n := t.root
	for n != nil {
		if t.less(key, n.key) {
			n = n.left
		} else {
			best = n
			n = n.right
		}
	}
	if best == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	return best.key, best.val, true
}

// Higher returns the smallest key strictly greater than key.
func (t *Tree[K, V]) Higher(key K) (K, V, bool) {
	var best *node[K, V]
	n := t.root
	for n != nil {
		if t.less(key, n.key) {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	return best.key, best.val, true
}

// Lower returns the largest key strictly less than key.
func (t *Tree[K, V]) Lower(key K) (K, V, bool) {
	var best *node[K, V]
	n := t.root
	for n != nil {
		if t.less(n.key, key) {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	if best == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	return best.key, best.val, true
}

// Delete removes key, reporting whether it was present.
func (t *Tree[K, V]) Delete(key K) bool {
	if !t.Contains(key) {
		return false
	}
	t.root = t.delete(t.root, key)
	if t.root != nil {
		t.root.red = false
	}
	t.size--
	return true
}

func moveRedLeft[K, V any](h *node[K, V]) *node[K, V] {
	flipColors(h)
	if isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight[K, V any](h *node[K, V]) *node[K, V] {
	flipColors(h)
	if isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

func minNode[K, V any](h *node[K, V]) *node[K, V] {
	for h.left != nil {
		h = h.left
	}
	return h
}

func deleteMin[K, V any](h *node[K, V]) *node[K, V] {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = deleteMin(h.left)
	return fixUp(h)
}

func (t *Tree[K, V]) delete(h *node[K, V], key K) *node[K, V] {
	if t.less(key, h.key) {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = t.delete(h.left, key)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if !t.less(h.key, key) && h.right == nil {
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if !t.less(h.key, key) && !t.less(key, h.key) {
			m := minNode(h.right)
			h.key, h.val = m.key, m.val
			h.right = deleteMin(h.right)
		} else {
			h.right = t.delete(h.right, key)
		}
	}
	return fixUp(h)
}

// DeleteMin removes and returns the smallest key and its value.
func (t *Tree[K, V]) DeleteMin() (K, V, bool) {
	k, v, ok := t.Min()
	if !ok {
		return k, v, false
	}
	t.root = deleteMin(t.root)
	if t.root != nil {
		t.root.red = false
	}
	t.size--
	return k, v, true
}

// Ascend calls fn for each key/value in ascending order until fn returns
// false.
func (t *Tree[K, V]) Ascend(fn func(k K, v V) bool) {
	t.ascend(t.root, fn)
}

func (t *Tree[K, V]) ascend(n *node[K, V], fn func(k K, v V) bool) bool {
	if n == nil {
		return true
	}
	if !t.ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return t.ascend(n.right, fn)
}

// AscendFrom calls fn for each key >= start in ascending order until fn
// returns false.
func (t *Tree[K, V]) AscendFrom(start K, fn func(k K, v V) bool) {
	t.ascendFrom(t.root, start, fn)
}

func (t *Tree[K, V]) ascendFrom(n *node[K, V], start K, fn func(k K, v V) bool) bool {
	if n == nil {
		return true
	}
	if t.less(n.key, start) {
		return t.ascendFrom(n.right, start, fn)
	}
	if !t.ascendFrom(n.left, start, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return t.ascendFrom(n.right, start, fn)
}

// Keys returns all keys in ascending order (for tests and debugging).
func (t *Tree[K, V]) Keys() []K {
	out := make([]K, 0, t.size)
	t.Ascend(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}
