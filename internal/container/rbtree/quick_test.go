package rbtree

import (
	"sort"
	"testing"
	"testing/quick"
)

// TestQuickInsertDeleteSorted drives the tree with arbitrary key scripts
// via testing/quick: after any interleaving of inserts and deletes, Keys()
// equals the sorted reference set and Len matches.
func TestQuickInsertDeleteSorted(t *testing.T) {
	prop := func(inserts []int16, deletes []int16) bool {
		tr := New[int16, struct{}](func(a, b int16) bool { return a < b })
		ref := map[int16]bool{}
		for _, k := range inserts {
			tr.Set(k, struct{}{})
			ref[k] = true
		}
		for _, k := range deletes {
			got := tr.Delete(k)
			want := ref[k]
			if got != want {
				return false
			}
			delete(ref, k)
		}
		if tr.Len() != len(ref) {
			return false
		}
		want := make([]int, 0, len(ref))
		for k := range ref {
			want = append(want, int(k))
		}
		sort.Ints(want)
		keys := tr.Keys()
		if len(keys) != len(want) {
			return false
		}
		for i := range want {
			if int(keys[i]) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickNavigationConsistency checks Floor/Ceiling/Higher/Lower against
// the sorted key list for arbitrary trees and probes.
func TestQuickNavigationConsistency(t *testing.T) {
	prop := func(keys []int16, probe int16) bool {
		tr := New[int16, struct{}](func(a, b int16) bool { return a < b })
		set := map[int16]bool{}
		for _, k := range keys {
			tr.Set(k, struct{}{})
			set[k] = true
		}
		sorted := make([]int16, 0, len(set))
		for k := range set {
			sorted = append(sorted, k)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

		check := func(got int16, gotOK bool, want int16, wantOK bool) bool {
			return gotOK == wantOK && (!wantOK || got == want)
		}
		var wc, wf, wh, wl int16
		var okc, okf, okh, okl bool
		for _, k := range sorted {
			if k >= probe && !okc {
				wc, okc = k, true
			}
			if k > probe && !okh {
				wh, okh = k, true
			}
			if k <= probe {
				wf, okf = k, true
			}
			if k < probe {
				wl, okl = k, true
			}
		}
		gc, _, oc := tr.Ceiling(probe)
		gf, _, of := tr.Floor(probe)
		gh, _, oh := tr.Higher(probe)
		gl, _, ol := tr.Lower(probe)
		return check(gc, oc, wc, okc) && check(gf, of, wf, okf) &&
			check(gh, oh, wh, okh) && check(gl, ol, wl, okl)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
