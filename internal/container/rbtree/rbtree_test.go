package rbtree

import (
	"math/rand"
	"sort"
	"testing"
)

func intTree() *Tree[int, string] {
	return New[int, string](func(a, b int) bool { return a < b })
}

func TestEmptyTree(t *testing.T) {
	tr := intTree()
	if tr.Len() != 0 {
		t.Fatal("empty tree has nonzero length")
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree returned ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree returned ok")
	}
	if _, _, ok := tr.Ceiling(0); ok {
		t.Fatal("Ceiling on empty tree returned ok")
	}
	if tr.Delete(1) {
		t.Fatal("Delete on empty tree returned true")
	}
	if _, _, ok := tr.DeleteMin(); ok {
		t.Fatal("DeleteMin on empty tree returned ok")
	}
}

func TestSetGetReplace(t *testing.T) {
	tr := intTree()
	tr.Set(5, "five")
	tr.Set(3, "three")
	tr.Set(7, "seven")
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if v, ok := tr.Get(3); !ok || v != "three" {
		t.Fatalf("Get(3) = %q, %v", v, ok)
	}
	tr.Set(3, "THREE")
	if tr.Len() != 3 {
		t.Fatal("replace changed length")
	}
	if v, _ := tr.Get(3); v != "THREE" {
		t.Fatalf("replace did not stick: %q", v)
	}
}

func TestNavigation(t *testing.T) {
	tr := intTree()
	for _, k := range []int{10, 20, 30, 40} {
		tr.Set(k, "")
	}
	check := func(name string, gotK int, gotOK bool, wantK int, wantOK bool) {
		t.Helper()
		if gotOK != wantOK || (wantOK && gotK != wantK) {
			t.Errorf("%s = (%d, %v), want (%d, %v)", name, gotK, gotOK, wantK, wantOK)
		}
	}
	k, _, ok := tr.Ceiling(15)
	check("Ceiling(15)", k, ok, 20, true)
	k, _, ok = tr.Ceiling(20)
	check("Ceiling(20)", k, ok, 20, true)
	k, _, ok = tr.Ceiling(41)
	check("Ceiling(41)", k, ok, 0, false)
	k, _, ok = tr.Floor(15)
	check("Floor(15)", k, ok, 10, true)
	k, _, ok = tr.Floor(10)
	check("Floor(10)", k, ok, 10, true)
	k, _, ok = tr.Floor(9)
	check("Floor(9)", k, ok, 0, false)
	k, _, ok = tr.Higher(20)
	check("Higher(20)", k, ok, 30, true)
	k, _, ok = tr.Higher(40)
	check("Higher(40)", k, ok, 0, false)
	k, _, ok = tr.Lower(20)
	check("Lower(20)", k, ok, 10, true)
	k, _, ok = tr.Lower(10)
	check("Lower(10)", k, ok, 0, false)
	k, _, ok = tr.Min()
	check("Min", k, ok, 10, true)
	k, _, ok = tr.Max()
	check("Max", k, ok, 40, true)
}

func TestDelete(t *testing.T) {
	tr := intTree()
	keys := []int{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	for _, k := range keys {
		tr.Set(k, "v")
	}
	if !tr.Delete(5) || tr.Contains(5) {
		t.Fatal("Delete(5) failed")
	}
	if tr.Delete(5) {
		t.Fatal("double delete returned true")
	}
	if tr.Len() != 9 {
		t.Fatalf("Len = %d after delete", tr.Len())
	}
	want := []int{0, 1, 2, 3, 4, 6, 7, 8, 9}
	got := tr.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

func TestDeleteMin(t *testing.T) {
	tr := intTree()
	for _, k := range []int{4, 2, 6} {
		tr.Set(k, "")
	}
	k, _, ok := tr.DeleteMin()
	if !ok || k != 2 || tr.Len() != 2 {
		t.Fatalf("DeleteMin = %d, %v, len %d", k, ok, tr.Len())
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := intTree()
	for i := 0; i < 10; i++ {
		tr.Set(i, "")
	}
	var seen []int
	tr.Ascend(func(k int, _ string) bool {
		seen = append(seen, k)
		return k < 4
	})
	if len(seen) != 5 || seen[4] != 4 {
		t.Fatalf("early stop visited %v", seen)
	}
}

func TestAscendFrom(t *testing.T) {
	tr := intTree()
	for i := 0; i < 20; i += 2 {
		tr.Set(i, "")
	}
	var seen []int
	tr.AscendFrom(7, func(k int, _ string) bool {
		seen = append(seen, k)
		return len(seen) < 3
	})
	want := []int{8, 10, 12}
	if len(seen) != 3 {
		t.Fatalf("AscendFrom visited %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("AscendFrom visited %v, want %v", seen, want)
		}
	}
}

// checkInvariants verifies red-black structural invariants: no red node has
// a red child, no right-leaning red links, and every root-to-leaf path has
// the same black height. Returns black height.
func checkInvariants(t *testing.T, n *node[int, string]) int {
	t.Helper()
	if n == nil {
		return 0
	}
	if isRed(n.right) {
		t.Fatal("right-leaning red link")
	}
	if isRed(n) && isRed(n.left) {
		t.Fatal("consecutive red links")
	}
	lh := checkInvariants(t, n.left)
	rh := checkInvariants(t, n.right)
	if lh != rh {
		t.Fatalf("black height mismatch: %d vs %d", lh, rh)
	}
	if !isRed(n) {
		lh++
	}
	return lh
}

// TestRandomizedAgainstReference drives the tree with random operations and
// compares every observable against a map + sorted slice reference model,
// checking structural invariants as it goes.
func TestRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := intTree()
	ref := map[int]string{}

	sortedKeys := func() []int {
		ks := make([]int, 0, len(ref))
		for k := range ref {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		return ks
	}

	for step := 0; step < 20000; step++ {
		k := rng.Intn(500)
		switch rng.Intn(3) {
		case 0, 1: // insert twice as often as delete so the tree grows
			v := "v"
			tr.Set(k, v)
			ref[k] = v
		case 2:
			got := tr.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("step %d: Delete(%d) = %v, want %v", step, k, got, want)
			}
			delete(ref, k)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, tr.Len(), len(ref))
		}
		if step%500 == 0 {
			if tr.root != nil && isRed(tr.root) {
				t.Fatal("red root")
			}
			checkInvariants(t, tr.root)
			keys := tr.Keys()
			want := sortedKeys()
			if len(keys) != len(want) {
				t.Fatalf("step %d: keys %v want %v", step, keys, want)
			}
			for i := range keys {
				if keys[i] != want[i] {
					t.Fatalf("step %d: keys differ at %d", step, i)
				}
			}
			// Spot-check navigation against the reference.
			probe := rng.Intn(520) - 10
			wantCeil, okWant := -1, false
			for _, rk := range want {
				if rk >= probe {
					wantCeil, okWant = rk, true
					break
				}
			}
			gotCeil, _, okGot := tr.Ceiling(probe)
			if okGot != okWant || (okWant && gotCeil != wantCeil) {
				t.Fatalf("step %d: Ceiling(%d) = (%d,%v), want (%d,%v)",
					step, probe, gotCeil, okGot, wantCeil, okWant)
			}
		}
	}
}

func BenchmarkTreeInsertDelete(b *testing.B) {
	tr := intTree()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := rng.Intn(1 << 20)
		tr.Set(k, "")
		if i%2 == 1 {
			tr.Delete(rng.Intn(1 << 20))
		}
	}
}
