// Package report renders the simulator's results the way the paper
// presents them: plain-text tables (Tables 1, 3, 4) and horizontal ASCII
// bar charts standing in for the bar graphs of Figures 1, 2, 4, 5, and 6.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.title != "" {
		fmt.Fprintf(w, "%s\n", t.title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as RFC-4180 CSV (header row first, no title),
// for feeding results to plotting pipelines.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// BarChart renders labelled horizontal bars — the textual stand-in for the
// paper's bar figures. Values are percentages (0-100 expected, clamped for
// display).
type BarChart struct {
	title string
	max   float64
	width int
	bars  []bar
}

type bar struct {
	label string
	value float64
}

// NewBarChart creates a chart scaled so that max fills width characters.
func NewBarChart(title string, max float64, width int) *BarChart {
	if max <= 0 {
		max = 100
	}
	if width <= 0 {
		width = 50
	}
	return &BarChart{title: title, max: max, width: width}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.bars = append(c.bars, bar{label, value})
}

// Gap inserts a blank separator row (between the paper's bar groups).
func (c *BarChart) Gap() {
	c.bars = append(c.bars, bar{label: ""})
}

// Render writes the chart to w.
func (c *BarChart) Render(w io.Writer) {
	if c.title != "" {
		fmt.Fprintf(w, "%s\n", c.title)
	}
	labelW := 0
	for _, b := range c.bars {
		if len(b.label) > labelW {
			labelW = len(b.label)
		}
	}
	for _, b := range c.bars {
		if b.label == "" {
			fmt.Fprintln(w)
			continue
		}
		v := b.value
		if v < 0 {
			v = 0
		}
		n := int(v/c.max*float64(c.width) + 0.5)
		if n > c.width {
			n = c.width
		}
		fmt.Fprintf(w, "  %s  %s %.1f%%\n", pad(b.label, labelW), strings.Repeat("#", n), b.value)
	}
}

// String renders the chart to a string.
func (c *BarChart) String() string {
	var b strings.Builder
	c.Render(&b)
	return b.String()
}
