package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Results", "Workload", "Internal", "External")
	tb.AddRow("SC", 43.1, 13.4)
	tb.AddRow("TP", 15.2, 9.0)
	out := tb.String()
	if !strings.Contains(out, "Results") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "Workload") || !strings.Contains(out, "----") {
		t.Error("missing header or separator")
	}
	if !strings.Contains(out, "43.1") || !strings.Contains(out, "9.0") {
		t.Errorf("missing values:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableColumnAlignment(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("longvalue", 1)
	tb.AddRow("x", 22)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// The B column starts at the same offset in both data rows.
	i1 := strings.Index(lines[2], "1")
	i2 := strings.Index(lines[3], "22")
	if i1 != i2 {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("Figure 6a", 100, 40)
	c.Add("buddy", 94.4)
	c.Gap()
	c.Add("fixed", 12.0)
	out := c.String()
	if !strings.Contains(out, "Figure 6a") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "94.4%") || !strings.Contains(out, "12.0%") {
		t.Errorf("missing values:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, bar, gap, bar
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	long := strings.Count(lines[1], "#")
	short := strings.Count(lines[3], "#")
	if long <= short || long > 40 {
		t.Errorf("bar lengths wrong: %d vs %d", long, short)
	}
}

func TestBarChartClamping(t *testing.T) {
	c := NewBarChart("", 100, 10)
	c.Add("over", 150)
	c.Add("neg", -5)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[0], "#") != 10 {
		t.Errorf("overflow bar not clamped:\n%s", out)
	}
	if strings.Contains(lines[1], "#") {
		t.Errorf("negative bar drew hashes:\n%s", out)
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("Title ignored in CSV", "A", "B")
	tb.AddRow("x,with,commas", 1.5)
	tb.AddRow("plain", 2)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %v", lines)
	}
	if lines[0] != "A,B" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `"x,with,commas",1.5` {
		t.Fatalf("row 1 = %q (commas must be quoted)", lines[1])
	}
	if strings.Contains(sb.String(), "Title") {
		t.Fatal("CSV must not contain the title")
	}
}

func TestDefaults(t *testing.T) {
	c := NewBarChart("t", 0, 0) // defaults kick in
	c.Add("x", 50)
	if !strings.Contains(c.String(), "#") {
		t.Error("default-scaled chart drew nothing")
	}
}
