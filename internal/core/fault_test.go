package core

import (
	"reflect"
	"testing"

	"rofs/internal/disk"
	"rofs/internal/fault"
	"rofs/internal/units"
)

// raid5SmallDisk returns the smallest non-degenerate RAID-5 array (four
// reduced drives) for fault tests.
func raid5SmallDisk() disk.Config {
	cfg := smallDisk()
	cfg.NDisks = 4
	cfg.Layout = disk.RAID5
	return cfg
}

func faultTestConfig() Config {
	return Config{
		Disk:     raid5SmallDisk(),
		Policy:   RBuddy(3, 1, true),
		Workload: scaledTS(),
		Seed:     3,
		MaxSimMS: 120_000,
		Faults: fault.Scenario{
			FailAtMS:          10_000,
			FailDrive:         1,
			TransientProb:     0.001,
			Rebuild:           true,
			RebuildChunkBytes: 4 * units.MB,
		},
	}
}

// TestDegradedAliasesPreFail pins the legacy Degraded flag as an exact
// alias for fault.Scenario.PreFail: the two spellings of "drive 0 failed
// before the run" must produce identical results.
func TestDegradedAliasesPreFail(t *testing.T) {
	base := Config{
		Disk:     raid5SmallDisk(),
		Policy:   RBuddy(3, 1, true),
		Workload: scaledTS(),
		Seed:     3,
		MaxSimMS: 30_000,
	}
	legacy := base
	legacy.Degraded = true
	viaFlag, err := RunApplication(legacy)
	if err != nil {
		t.Fatal(err)
	}
	scenario := base
	scenario.Faults = fault.Scenario{PreFail: true}
	viaScenario, err := RunApplication(scenario)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaFlag, viaScenario) {
		t.Errorf("Degraded and Faults.PreFail diverge:\nlegacy:   %+v\nscenario: %+v", viaFlag, viaScenario)
	}
}

// TestPreFailRejectsScheduledFailure: a pre-failed drive plus a scheduled
// failure of another drive would be a double failure — RAID-5 cannot
// survive it, so validation must reject the combination.
func TestPreFailRejectsScheduledFailure(t *testing.T) {
	s := fault.Scenario{PreFail: true, FailAtMS: 10_000, FailDrive: 1}
	if err := s.Validate(); err == nil {
		t.Fatal("PreFail + scheduled drive failure validated, want error")
	}
}

// TestFaultInjectorWiring runs a full fault scenario through the session:
// the result must carry a fault report with the failure, retries, and a
// completed rebuild.
func TestFaultInjectorWiring(t *testing.T) {
	res, err := RunApplication(faultTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Faults
	if fr == nil {
		t.Fatal("fault scenario ran but the result has no fault report")
	}
	if fr.DriveFailures != 1 {
		t.Errorf("drive failures = %d, want 1", fr.DriveFailures)
	}
	if fr.FirstFailureMS != 10_000 {
		t.Errorf("first failure at %g ms, want the scheduled 10000", fr.FirstFailureMS)
	}
	if fr.TransientErrors == 0 || fr.Retries == 0 {
		t.Errorf("no transient errors (%d) or retries (%d) at probability 0.001",
			fr.TransientErrors, fr.Retries)
	}
	if fr.DegradedMS <= 0 {
		t.Errorf("degraded time %g, want > 0", fr.DegradedMS)
	}
	if fr.Rebuilds != 1 {
		t.Errorf("rebuilds = %d, want 1 (degraded at end: %t)", fr.Rebuilds, fr.DegradedAtEnd)
	}
	if len(fr.Events) < 3 {
		t.Errorf("event log %v, want at least failed/rebuild-started/rebuild-done", fr.Events)
	}
	if res.Percent <= 0 {
		t.Errorf("throughput %.2f%%, want > 0 despite faults", res.Percent)
	}
}

// TestFaultFreeRunHasNoReport pins the disabled path: a zero scenario
// must leave the result's fault report nil.
func TestFaultFreeRunHasNoReport(t *testing.T) {
	cfg := faultTestConfig()
	cfg.Faults = fault.Scenario{}
	res, err := RunApplication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != nil {
		t.Errorf("fault-free run produced a fault report: %+v", res.Faults)
	}
}

// TestFaultRunDeterminism replays the full scenario: every field of the
// result — including the fault report and its event log — must match.
func TestFaultRunDeterminism(t *testing.T) {
	a, err := RunApplication(faultTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunApplication(faultTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed + scenario diverged:\n%+v\n%+v", a, b)
	}
}

// TestFaultsSkippedInAllocationTest: the allocation test has no timing
// engine, so the injector must not arm (and the run must succeed).
func TestFaultsSkippedInAllocationTest(t *testing.T) {
	cfg := faultTestConfig()
	if _, err := RunAllocation(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestFaultConfigRejected pins Config-level validation of bad scenarios.
func TestFaultConfigRejected(t *testing.T) {
	cfg := faultTestConfig()
	cfg.Faults.TransientProb = 2
	if _, err := RunApplication(cfg); err == nil {
		t.Error("TransientProb 2 accepted")
	}
	cfg = faultTestConfig()
	cfg.Disk.Layout = disk.Striped
	if _, err := RunApplication(cfg); err == nil {
		t.Error("drive-failure scenario accepted on a striped array")
	}
}
