package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"rofs/internal/ckpt"
)

// armedCfg returns a small closed-loop application config with verified
// checkpointing on a 10-second grid, collecting every boundary state
// into *states.
func armedCfg(states *[]ckpt.State, resume *ckpt.State) Config {
	return Config{
		Disk:     smallDisk(),
		Policy:   RBuddy(3, 1, true),
		Workload: scaledTS(),
		Seed:     3,
		MaxSimMS: 120_000,
		Checkpoint: &ckpt.Hook{
			EveryMS: 10_000,
			Key:     "core-ckpt-test",
			Sink: func(st ckpt.State) error {
				if states != nil {
					*states = append(*states, st)
				}
				return nil
			},
			Resume: resume,
		},
	}
}

// TestResumeEqualsUninterrupted is the core acceptance property: a run
// resumed from any quantized boundary finishes byte-identical to the
// uninterrupted armed run, and the boundary fingerprint verifies.
func TestResumeEqualsUninterrupted(t *testing.T) {
	var states []ckpt.State
	base, err := Run(armedCfg(&states, nil), Application)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) < 2 {
		t.Fatalf("run produced %d checkpoints, want >= 2 (ended at %g ms)", len(states), base.Stats.SimMS)
	}
	for _, st := range states {
		if st.SimMS != float64(st.Seq)*10_000 {
			t.Fatalf("boundary off the quantized grid: seq %d at %g ms", st.Seq, st.SimMS)
		}
	}

	// Resume from every recorded boundary — first, middle, last.
	for _, pick := range []int{0, len(states) / 2, len(states) - 1} {
		resume := states[pick]
		t.Run(fmt.Sprintf("seq%d", resume.Seq), func(t *testing.T) {
			resumed, err := Run(armedCfg(nil, &resume), Application)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base.Perf, resumed.Perf) {
				t.Errorf("resumed PerfResult differs:\nbase:    %+v\nresumed: %+v", base.Perf, resumed.Perf)
			}
			if base.Stats != resumed.Stats {
				t.Errorf("run stats differ: base %+v resumed %+v", base.Stats, resumed.Stats)
			}
		})
	}
}

// TestResumeDetectsDrift: a checkpoint whose fingerprint does not match
// the replay (here: taken under a different seed) must fail verification
// instead of silently producing different numbers.
func TestResumeDetectsDrift(t *testing.T) {
	var states []ckpt.State
	cfg := armedCfg(&states, nil)
	cfg.Seed = 99 // checkpoint under one seed...
	if _, err := Run(cfg, Application); err != nil {
		t.Fatal(err)
	}
	resume := states[0]
	_, err := Run(armedCfg(nil, &resume), Application) // ...replay under another
	if err == nil || !strings.Contains(err.Error(), "verification failed") {
		t.Fatalf("drifted resume: err = %v, want verification failure", err)
	}
}

// TestResumeGridDrift: resuming with a checkpoint from a different
// EveryMS grid must error (the boundary is never reached) rather than
// complete unverified.
func TestResumeGridDrift(t *testing.T) {
	var states []ckpt.State
	if _, err := Run(armedCfg(&states, nil), Application); err != nil {
		t.Fatal(err)
	}
	resume := states[len(states)-1]
	resume.Seq += 100 // a boundary this run will never reach
	_, err := Run(armedCfg(nil, &resume), Application)
	if err == nil || !strings.Contains(err.Error(), "without reaching") {
		t.Fatalf("unreached resume boundary: err = %v, want unreached-boundary failure", err)
	}
}

// TestCkptSequential covers the two-phase sequential test: the tick
// chain spans both phases on one engine, so boundaries stay on the
// quantized grid throughout.
func TestCkptSequential(t *testing.T) {
	cfgOf := func(states *[]ckpt.State, resume *ckpt.State) Config {
		cfg := armedCfg(states, resume)
		cfg.Workload = scaledSC()
		cfg.Seed = 5
		cfg.MaxSimMS = 60_000
		cfg.Checkpoint.EveryMS = 5_000
		return cfg
	}
	var states []ckpt.State
	base, err := Run(cfgOf(&states, nil), Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 {
		t.Fatalf("no checkpoints (ended at %g ms)", base.Stats.SimMS)
	}
	resume := states[len(states)/2]
	resumed, err := Run(cfgOf(nil, &resume), Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Perf, resumed.Perf) || base.Stats != resumed.Stats {
		t.Fatalf("sequential resume differs:\nbase:    %+v %+v\nresumed: %+v %+v",
			base.Perf, base.Stats, resumed.Perf, resumed.Stats)
	}
}
