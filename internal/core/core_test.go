package core

import (
	"testing"

	"rofs/internal/alloc/extent"
	"rofs/internal/disk"
	"rofs/internal/sim"
	"rofs/internal/units"
	"rofs/internal/workload"
)

// smallDisk returns a reduced array (2 drives ≈ 86M) so tests run fast;
// the workloads are scaled to match in the helpers below.
func smallDisk() disk.Config {
	cfg := disk.DefaultConfig()
	cfg.NDisks = 2
	cfg.Geometry.Cylinders = 200
	return cfg
}

func scaledTS() workload.Workload { return workload.TimeSharing().Scale(32, 1) }
func scaledTP() workload.Workload { return workload.TransactionProcessing().Scale(1, 32) }
func scaledSC() workload.Workload { return workload.SuperComputer().Scale(1, 32) }

// scaledRanges divides the paper's extent ranges to match scaled file
// sizes.
func scaledRanges(wl string, n int, div int64) []int64 {
	r, err := workload.ExtentRanges(wl, n)
	if err != nil {
		panic(err)
	}
	out := make([]int64, len(r))
	for i := range r {
		out[i] = r[i] / div
		if out[i] < units.KB {
			out[i] = units.KB
		}
	}
	return out
}

func TestPolicySpecNames(t *testing.T) {
	cases := []struct {
		spec PolicySpec
		want string
	}{
		{Buddy(), "buddy"},
		{RBuddy(5, 1, true), "rbuddy-5-g1-clus"},
		{RBuddy(2, 2, false), "rbuddy-2-g2-uncl"},
		{Extent(extent.FirstFit, []int64{units.KB}), "extent-first-fit-1r"},
		{Extent(extent.BestFit, []int64{units.KB, units.MB}), "extent-best-fit-2r"},
		{Fixed(4 * units.KB), "fixed-4K"},
	}
	for _, c := range cases {
		if got := c.spec.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestPolicySpecBuild(t *testing.T) {
	rng := sim.NewRNG(42)
	for _, spec := range []PolicySpec{
		Buddy(),
		RBuddy(5, 1, true),
		RBuddy(3, 2, false),
		Extent(extent.FirstFit, []int64{64 * units.KB}),
		Fixed(16 * units.KB),
	} {
		p, err := spec.Build(1<<20, units.KB, rng)
		if err != nil {
			t.Errorf("%s: %v", spec.Name(), err)
			continue
		}
		if p.TotalUnits() == 0 || p.FreeUnits() != p.TotalUnits() && spec.Kind != "fixed" {
			t.Errorf("%s: bad initial state", spec.Name())
		}
	}
	if _, err := (PolicySpec{Kind: "nope"}).Build(100, units.KB, rng); err == nil {
		t.Error("unknown kind accepted")
	}
	// Non-unit-multiple sizes are rejected.
	if _, err := (PolicySpec{Kind: "fixed", BlockBytes: 1500}).Build(100, units.KB, rng); err == nil {
		t.Error("non-multiple block size accepted")
	}
}

func TestRBuddyPanicsOnBadSizeCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RBuddy(1, ...) did not panic")
		}
	}()
	RBuddy(1, 1, true)
}

func TestAllocationTestAllPolicies(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec PolicySpec
	}{
		{"buddy", Buddy()},
		{"rbuddy", RBuddy(3, 1, true)},
		{"rbuddy-uncl", RBuddy(3, 2, false)},
		{"extent", Extent(extent.FirstFit, scaledRanges("TS", 3, 1))},
		{"fixed", Fixed(4 * units.KB)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunAllocation(Config{
				Disk:     smallDisk(),
				Policy:   tc.spec,
				Workload: scaledTS(),
				Seed:     1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Filled {
				t.Fatalf("disk never filled: %+v", res)
			}
			if res.InternalPct < 0 || res.InternalPct > 100 ||
				res.ExternalPct < 0 || res.ExternalPct > 100 {
				t.Fatalf("fragmentation out of range: %+v", res)
			}
			t.Logf("%s: internal=%.1f%% external=%.1f%% ops=%d",
				tc.name, res.InternalPct, res.ExternalPct, res.Ops)
		})
	}
}

func TestBuddyFragmentationWorstAsInPaper(t *testing.T) {
	// Table 3 vs Figures 1/4: buddy's internal fragmentation towers over
	// the restricted buddy and extent policies.
	frag := func(spec PolicySpec) float64 {
		res, err := RunAllocation(Config{
			Disk: smallDisk(), Policy: spec, Workload: scaledTS(), Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Filled {
			t.Fatalf("%s: did not fill", spec.Name())
		}
		return res.InternalPct
	}
	b := frag(Buddy())
	r := frag(RBuddy(5, 1, true))
	e := frag(Extent(extent.FirstFit, scaledRanges("TS", 3, 1)))
	t.Logf("internal frag: buddy=%.1f%% rbuddy=%.1f%% extent=%.1f%%", b, r, e)
	if b <= r || b <= e {
		t.Errorf("buddy internal frag %.1f%% should exceed rbuddy %.1f%% and extent %.1f%%", b, r, e)
	}
	if r > 12 {
		t.Errorf("rbuddy internal frag %.1f%%; paper keeps it in single digits", r)
	}
	if e > 10 {
		t.Errorf("extent internal frag %.1f%%; paper keeps it under ~5%%", e)
	}
}

func TestApplicationTestRuns(t *testing.T) {
	res, err := RunApplication(Config{
		Disk:     smallDisk(),
		Policy:   RBuddy(3, 1, true),
		Workload: scaledTS(),
		Seed:     3,
		MaxSimMS: 120_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Percent <= 0 || res.Percent > 110 {
		t.Fatalf("application throughput %.1f%% out of range (%+v)", res.Percent, res)
	}
	if res.Ops == 0 || res.Bytes == 0 {
		t.Fatalf("no work performed: %+v", res)
	}
	t.Logf("TS app: %.1f%% stable=%v windows=%d ops=%d", res.Percent, res.Stable, res.Windows, res.Ops)
}

func TestSequentialBeatsApplicationOnLargeFiles(t *testing.T) {
	// For the supercomputer workload, whole-file sequential transfers must
	// beat the application mix (paper: 94.4% vs 88.0% for buddy, and the
	// same ordering for every policy).
	cfg := Config{
		Disk:     smallDisk(),
		Policy:   RBuddy(5, 1, true),
		Workload: scaledSC(),
		Seed:     5,
		MaxSimMS: 180_000,
	}
	seq, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := RunApplication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SC: sequential=%.1f%% application=%.1f%%", seq.Percent, app.Percent)
	if seq.Percent < 50 {
		t.Errorf("SC sequential %.1f%%; expected high utilization", seq.Percent)
	}
	if seq.Percent < app.Percent {
		t.Errorf("sequential (%.1f%%) below application (%.1f%%)", seq.Percent, app.Percent)
	}
}

func TestTSSequentialIsSeekBound(t *testing.T) {
	// Paper Figure 6a: the time-sharing workload is seek-bound — it cannot
	// approach the bandwidth the large-file SC workload reaches. (The
	// scaled test disk has short seeks, so the assertion is relative; the
	// full-scale run in EXPERIMENTS.md lands near the paper's ~20%.)
	ts, err := RunSequential(Config{
		Disk:     smallDisk(),
		Policy:   RBuddy(5, 1, true),
		Workload: scaledTS(),
		Seed:     5,
		MaxSimMS: 120_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := RunSequential(Config{
		Disk:     smallDisk(),
		Policy:   RBuddy(5, 1, true),
		Workload: scaledSC(),
		Seed:     5,
		MaxSimMS: 120_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sequential: TS=%.1f%% SC=%.1f%%", ts.Percent, sc.Percent)
	if ts.Percent > 0.75*sc.Percent {
		t.Errorf("TS sequential %.1f%% not clearly below SC %.1f%%", ts.Percent, sc.Percent)
	}
}

func TestUtilizationStaysInBand(t *testing.T) {
	// §2.2/§3: measurement holds utilization between the bounds; extends
	// above the ceiling become truncates. Allow one 16M extent of
	// overshoot past the ceiling (an allocation granule).
	for _, tc := range []struct {
		name string
		spec PolicySpec
		wl   workload.Workload
	}{
		{"rbuddy-TS", RBuddy(5, 1, true), scaledTS()},
		{"extent-TP", Extent(extent.FirstFit, scaledRanges("TP", 3, 32)), scaledTP()},
		{"buddy-SC", Buddy(), scaledSC()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunApplication(Config{
				Disk:     smallDisk(),
				Policy:   tc.spec,
				Workload: tc.wl,
				Seed:     6,
				MaxSimMS: 60_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.FinalUtilization < 0.85 || res.FinalUtilization > 0.99 {
				t.Errorf("final utilization %.3f outside the measurement band",
					res.FinalUtilization)
			}
		})
	}
}

func TestExtentsPerFileReported(t *testing.T) {
	res, err := RunAllocation(Config{
		Disk:     smallDisk(),
		Policy:   Extent(extent.FirstFit, scaledRanges("TP", 1, 32)),
		Workload: scaledTP(),
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtentsPerFile <= 1 {
		t.Fatalf("ExtentsPerFile = %.1f; TP relations need many extents", res.ExtentsPerFile)
	}
	t.Logf("TP 1-range extents/file: %.1f", res.ExtentsPerFile)
}

func TestConfigValidation(t *testing.T) {
	bad := Config{
		Disk:      smallDisk(),
		Policy:    Buddy(),
		Workload:  scaledTS(),
		LowerUtil: 0.99,
		UpperUtil: 0.5,
	}
	if _, err := RunAllocation(bad); err == nil {
		t.Error("inverted utilization bounds accepted")
	}
	noTypes := Config{Disk: smallDisk(), Policy: Buddy(), Workload: workload.Workload{Name: "empty"}}
	if _, err := RunAllocation(noTypes); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Disk: smallDisk(), Policy: RBuddy(3, 1, true), Workload: scaledTS(), Seed: 9}
	a, err := RunAllocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAllocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
