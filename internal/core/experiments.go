package core

import (
	"fmt"
	"math"

	"rofs/internal/fault"
	"rofs/internal/fs"
)

// FragResult reports an allocation test (§3): fragmentation measured at
// the moment the first allocation request fails.
type FragResult struct {
	Policy   string
	Workload string
	// InternalPct is allocated-but-unused space as a percent of allocated
	// space; ExternalPct is free space as a percent of total space.
	InternalPct float64
	ExternalPct float64
	// Filled reports whether the disk actually filled; a false value means
	// the operation cap was hit first and the percentages describe the
	// final (not-full) state.
	Filled bool
	Ops    int64
	SimMS  float64
	// ExtentsPerFile is the average number of extents per file under the
	// extent policy (Table 4); zero for other policies.
	ExtentsPerFile float64
	// Meta is the metadata footprint at the end of the test under the
	// default inode/indirect model — the [STON81] comparison.
	Meta fs.MetaStats
}

// PerfResult reports a throughput test (§3).
type PerfResult struct {
	Policy   string
	Workload string
	// Percent is throughput as a percent of the disk system's maximum
	// sustained bandwidth — the paper's reporting unit.
	Percent float64
	// Stable reports whether the §2.2 stabilization rule was met before
	// the simulated-time cap; if not, Percent is the overall average.
	Stable     bool
	Windows    int
	SimMS      float64
	Bytes      int64
	Ops        int64
	AllocFails int64
	// Operation latency over the whole run (simulated milliseconds):
	// mean, and an upper bound on the 95th percentile from log-spaced
	// histogram buckets.
	MeanLatencyMS float64
	P95LatencyMS  float64
	// FinalUtilization is allocated/capacity at the end of the run; the
	// §2.2 bounds keep it inside [LowerUtil, UpperUtil] plus at most one
	// allocation granule of overshoot.
	FinalUtilization float64
	// Faults is the run's fault report — failures, degraded time, rebuild
	// progress, retries — present only when Config.Faults was enabled, so
	// fault-free results serialize exactly as before.
	Faults *fault.Report `json:",omitempty"`
	// Cluster is the fleet-level report — routing, admission, per-instance
	// results — present only for multi-instance cluster runs, so plain
	// results serialize exactly as before.
	Cluster *ClusterReport `json:",omitempty"`
	// Compaction is the log-structured overlay's report — segment flushes,
	// merges, write amplification — present only when the workload armed
	// one, so plain results serialize exactly as before.
	Compaction *CompactionReport `json:",omitempty"`
}

// RunAllocation performs the allocation test: initialization, then only
// extend/truncate/delete/create traffic until the first allocation failure
// (§3).
func RunAllocation(cfg Config) (FragResult, error) {
	out, err := Run(cfg, Allocation)
	return out.Frag, err
}

// allocation runs the §3 allocation test on a fresh session.
func (s *Instance) allocation() (FragResult, error) {
	res := FragResult{Policy: s.cfg.Policy.Name(), Workload: s.cfg.Workload.Name}
	if !s.initFiles() {
		s.scheduleUsers()
		s.eng.Run(math.Inf(1))
		if !s.diskFull {
			// Operation cap: report the current state, flagged.
			s.internal = s.fsys.InternalFragPct()
			s.external = s.fsys.ExternalFragPct()
		}
	}
	res.InternalPct = s.internal
	res.ExternalPct = s.external
	res.Filled = s.diskFull
	res.Ops = s.ops
	res.SimMS = s.fullAtMS
	res.ExtentsPerFile = s.extentsPerFile()
	res.Meta = s.fsys.MetaStats(fs.DefaultMetaModel())
	if err := s.fsys.Check(); err != nil {
		return res, fmt.Errorf("core: post-run fsck: %w", err)
	}
	if err := s.tracer.Flush(); err != nil {
		return res, fmt.Errorf("core: trace: %w", err)
	}
	return res, nil
}

// extentsPerFile averages the extent policy's as-allocated extent counts
// over all live files (Table 4).
func (s *Instance) extentsPerFile() float64 {
	type counter interface{ ExtentCount() int }
	var total, n int64
	for _, ts := range s.types {
		for _, f := range ts.files {
			if c, ok := f.Alloc().(counter); ok {
				total += int64(c.ExtentCount())
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// ReallocResult reports the effect of Koch's nightly reallocator on a
// filled buddy disk: fragmentation at the first failure, and again after
// every file has been compacted to at most three tight extents.
type ReallocResult struct {
	Before, After FragResult
	// Compacted and Failed count files the reallocator did and could not
	// tighten.
	Compacted, Failed int
}

// compacter is the reallocation hook the buddy policy's files implement.
type compacter interface {
	Compact(used int64, maxExtents int) bool
}

// RunAllocationWithReallocation performs the allocation test and then runs
// the [KOCH87] reallocator the paper excluded (§4.1), quantifying how much
// of the buddy system's fragmentation the nightly rearranger would win
// back. Policies without a reallocator yield After == Before.
func RunAllocationWithReallocation(cfg Config) (ReallocResult, error) {
	out, err := Run(cfg, AllocationRealloc)
	return out.Realloc, err
}

// allocationRealloc runs the allocation test followed by the reallocator.
func (s *Instance) allocationRealloc() (ReallocResult, error) {
	var res ReallocResult
	mk := func() FragResult {
		return FragResult{
			Policy:      s.cfg.Policy.Name(),
			Workload:    s.cfg.Workload.Name,
			InternalPct: s.fsys.InternalFragPct(),
			ExternalPct: s.fsys.ExternalFragPct(),
			Filled:      s.diskFull,
			Ops:         s.ops,
		}
	}
	if !s.initFiles() {
		s.scheduleUsers()
		s.eng.Run(math.Inf(1))
	}
	res.Before = mk()
	ub := s.fsys.UnitBytes()
	for _, ts := range s.types {
		for _, f := range ts.files {
			c, ok := f.Alloc().(compacter)
			if !ok {
				continue
			}
			used := (f.Length() + ub - 1) / ub
			if c.Compact(used, 0) {
				res.Compacted++
			} else {
				res.Failed++
			}
		}
	}
	res.After = mk()
	return res, nil
}

// perf shares the application/sequential flow: initialize, fill to the
// lower utilization bound, measure until stable or capped. The instance's
// kind at entry selects the test; a workload with an Arrivals block runs
// the measurement phase open-loop instead of scheduling user streams.
func (s *Instance) perf() (PerfResult, error) {
	kind := s.kind
	if s.cfg.Workload.Arrivals != nil {
		if kind == sequentialTest {
			return PerfResult{}, fmt.Errorf("core: open-loop arrivals drive the application test only (the sequential test's whole-file phases are inherently closed-loop)")
		}
		return s.perfOpenLoop()
	}
	res := PerfResult{Policy: s.cfg.Policy.Name(), Workload: s.cfg.Workload.Name}
	if s.initFiles() {
		return res, fmt.Errorf("core: disk filled during initialization (utilization target too high)")
	}
	s.fill()
	if kind == sequentialTest {
		// §3: "When the throughput has stabilized the throughput numbers
		// are recorded and the sequential test begins" — the sequential
		// test measures the state the application phase aged.
		s.kind = applicationTest
		s.startTracker()
		s.scheduleUsers()
		s.eng.Run(s.cfg.MaxSimMS)
		s.kind = sequentialTest
		s.startTracker()
	} else {
		s.startTracker()
		s.scheduleUsers()
	}
	end := s.eng.Run(s.eng.Now() + s.cfg.MaxSimMS)
	return s.perfTail(end)
}

// perfOpenLoop runs the measurement phase against the workload's arrival
// process: same initialization and fill, but operations arrive from the
// open-loop source instead of closed user streams. A trace run stops when
// the replay drains; a Poisson run stops at stabilization or the cap.
func (s *Instance) perfOpenLoop() (PerfResult, error) {
	res := PerfResult{Policy: s.cfg.Policy.Name(), Workload: s.cfg.Workload.Name}
	if err := s.PrimeThroughput(); err != nil {
		return res, err
	}
	s.startTracker()
	src, err := NewArrivalSource(s.eng, s.cfg.Seed, &s.cfg.Workload, s.Dispatch)
	if err != nil {
		return res, err
	}
	s.onOpDone = func(_ *Instance, _, _ float64) {
		if src.Exhausted() && s.inFlightOpen == 0 {
			s.eng.Stop()
		}
	}
	src.Start(s.eng.Now())
	end := s.eng.Run(s.eng.Now() + s.cfg.MaxSimMS)
	return s.perfTail(end)
}

// perfTail assembles the throughput-test result at end-of-run: tracker
// readout, latency summary, fault report, consistency check, trace flush.
// Plain runs, open-loop runs, and fleet members all share it.
func (s *Instance) perfTail(end float64) (PerfResult, error) {
	res := PerfResult{Policy: s.cfg.Policy.Name(), Workload: s.cfg.Workload.Name}
	res.Stable = s.tracker.Stable()
	if res.Stable {
		res.Percent = s.tracker.StablePercent()
	} else {
		res.Percent = s.tracker.OverallPercent(end)
	}
	res.Windows = s.tracker.Windows()
	res.SimMS = end
	res.Bytes = s.tracker.TotalBytes()
	res.Ops = s.ops
	res.AllocFails = s.allocFails
	res.MeanLatencyMS = s.latency.Mean()
	res.P95LatencyMS = s.latencyH.Quantile(0.95)
	res.FinalUtilization = s.fsys.Utilization()
	if s.inj != nil {
		res.Faults = s.inj.Report(end)
	}
	if s.comp != nil {
		cr := s.comp.report()
		res.Compaction = &cr
	}
	if err := s.fsys.Check(); err != nil {
		return res, fmt.Errorf("core: post-run fsck: %w", err)
	}
	if err := s.tracer.Flush(); err != nil {
		return res, fmt.Errorf("core: trace: %w", err)
	}
	return res, nil
}

// RunApplication performs the application performance test: the full
// workload mix at 90–95% utilization until throughput stabilizes (§3).
func RunApplication(cfg Config) (PerfResult, error) {
	out, err := Run(cfg, Application)
	return out.Perf, err
}

// RunSequential performs the sequential performance test: reads and writes
// only, each to an entire file (§3).
func RunSequential(cfg Config) (PerfResult, error) {
	out, err := Run(cfg, Sequential)
	return out.Perf, err
}
