// Package core is the experiment harness: it reproduces the paper's three
// evaluations (§3) — the allocation test that measures internal and
// external fragmentation at the first failed request, and the application
// and sequential throughput tests that hold disk utilization between 90%
// and 95% and run until the reported throughput stabilizes.
package core

import (
	"fmt"

	"rofs/internal/alloc"
	"rofs/internal/alloc/buddy"
	"rofs/internal/alloc/extent"
	"rofs/internal/alloc/fixed"
	"rofs/internal/alloc/rbuddy"
	"rofs/internal/sim"
	"rofs/internal/units"
)

// PolicySpec is a declarative description of an allocation policy
// configuration, turned into a live allocator per run. All sizes are in
// bytes; they are converted to disk units when the policy is built.
type PolicySpec struct {
	Kind string // "buddy", "rbuddy", "extent", or "fixed"

	// buddy
	MaxExtentBytes int64 // doubling cap; default 64M

	// rbuddy
	BlockSizes  []int64 // e.g. {1K, 8K, 64K, 1M, 16M}
	GrowFactor  float64 // the paper evaluates 1 and 2; fractions interpolate
	Clustered   bool
	RegionBytes int64 // default 32M

	// extent
	Fit        extent.Fit
	RangeMeans []int64 // extent-size range means

	// fixed
	BlockBytes int64 // 4K or 16K
	FixedOrder fixed.Order
}

// Buddy returns the §4.1 policy spec.
func Buddy() PolicySpec {
	return PolicySpec{Kind: "buddy", MaxExtentBytes: 64 * units.MB}
}

// RBuddy returns a §4.2 policy spec with the first nSizes of the paper's
// block-size ladder (1K, 8K, 64K, 1M, 16M).
func RBuddy(nSizes int, growFactor float64, clustered bool) PolicySpec {
	ladder := []int64{1 * units.KB, 8 * units.KB, 64 * units.KB, 1 * units.MB, 16 * units.MB}
	if nSizes < 2 || nSizes > len(ladder) {
		panic(fmt.Sprintf("core: rbuddy wants 2..5 sizes, got %d", nSizes))
	}
	return PolicySpec{
		Kind:        "rbuddy",
		BlockSizes:  ladder[:nSizes],
		GrowFactor:  growFactor,
		Clustered:   clustered,
		RegionBytes: 32 * units.MB,
	}
}

// Extent returns a §4.3 policy spec.
func Extent(fit extent.Fit, rangeMeans []int64) PolicySpec {
	return PolicySpec{Kind: "extent", Fit: fit, RangeMeans: rangeMeans}
}

// Fixed returns the §5 fixed-block baseline spec (V7-style LIFO free
// list).
func Fixed(blockBytes int64) PolicySpec {
	return PolicySpec{Kind: "fixed", BlockBytes: blockBytes}
}

// FixedOrdered returns a fixed-block spec with an address-ordered free
// list — the aging ablation's counterpoint to the V7 LIFO list.
func FixedOrdered(blockBytes int64) PolicySpec {
	return PolicySpec{Kind: "fixed", BlockBytes: blockBytes, FixedOrder: fixed.AddressOrdered}
}

// Name renders a short identifier for reports.
func (s PolicySpec) Name() string {
	switch s.Kind {
	case "buddy":
		return "buddy"
	case "rbuddy":
		mode := "uncl"
		if s.Clustered {
			mode = "clus"
		}
		return fmt.Sprintf("rbuddy-%d-g%g-%s", len(s.BlockSizes), s.GrowFactor, mode)
	case "extent":
		return fmt.Sprintf("extent-%s-%dr", s.Fit, len(s.RangeMeans))
	case "fixed":
		if s.FixedOrder == fixed.AddressOrdered {
			return fmt.Sprintf("fixed-%s-sorted", units.Format(s.BlockBytes))
		}
		return fmt.Sprintf("fixed-%s", units.Format(s.BlockBytes))
	default:
		return "unknown"
	}
}

// Build instantiates the policy over totalUnits disk units of unitBytes
// each. The RNG feeds the extent policy's size draws.
func (s PolicySpec) Build(totalUnits, unitBytes int64, rng *sim.RNG) (alloc.Policy, error) {
	toUnits := func(bytes int64, what string) (int64, error) {
		if bytes%unitBytes != 0 {
			return 0, fmt.Errorf("core: %s %d not a multiple of the %d-byte disk unit",
				what, bytes, unitBytes)
		}
		return bytes / unitBytes, nil
	}
	switch s.Kind {
	case "buddy":
		maxExt := s.MaxExtentBytes
		if maxExt == 0 {
			maxExt = 64 * units.MB
		}
		mu, err := toUnits(maxExt, "max extent")
		if err != nil {
			return nil, err
		}
		return buddy.New(buddy.Config{TotalUnits: totalUnits, MaxExtentUnits: mu})
	case "rbuddy":
		sizes := make([]int64, len(s.BlockSizes))
		for i, b := range s.BlockSizes {
			u, err := toUnits(b, "block size")
			if err != nil {
				return nil, err
			}
			sizes[i] = u
		}
		region := s.RegionBytes
		if region == 0 {
			region = 32 * units.MB
		}
		ru, err := toUnits(region, "region size")
		if err != nil {
			return nil, err
		}
		return rbuddy.New(rbuddy.Config{
			TotalUnits:  totalUnits,
			SizesUnits:  sizes,
			GrowFactor:  s.GrowFactor,
			Clustered:   s.Clustered,
			RegionUnits: ru,
		})
	case "extent":
		means := make([]int64, len(s.RangeMeans))
		for i, b := range s.RangeMeans {
			u := units.CeilDiv(b, unitBytes)
			means[i] = u
		}
		return extent.New(extent.Config{
			TotalUnits: totalUnits,
			Fit:        s.Fit,
			RangeMeans: means,
			RNG:        rng,
		})
	case "fixed":
		bu, err := toUnits(s.BlockBytes, "block size")
		if err != nil {
			return nil, err
		}
		return fixed.New(fixed.Config{TotalUnits: totalUnits, BlockUnits: bu, Order: s.FixedOrder})
	default:
		return nil, fmt.Errorf("core: unknown policy kind %q", s.Kind)
	}
}
