package core

import (
	"bytes"
	"strings"
	"testing"

	"rofs/internal/metrics"
	"rofs/internal/trace"
)

// metricsConfig is the short TS/rbuddy run used across the metrics tests.
func metricsConfig(seed int64) Config {
	return Config{
		Disk:     smallDisk(),
		Policy:   RBuddy(3, 1, true),
		Workload: scaledTS(),
		Seed:     seed,
		MaxSimMS: 30_000,
	}
}

func TestMetricsBundleFromRun(t *testing.T) {
	cfg := metricsConfig(4)
	reg := metrics.New(1000)
	cfg.Metrics = reg
	out, err := Run(cfg, Application)
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics != reg {
		t.Fatal("Outcome.Metrics is not the configured registry")
	}

	// Identity labels.
	labels := map[string]string{}
	for _, l := range reg.Labels() {
		labels[l.Key] = l.Value
	}
	if labels["policy"] != "rbuddy-3-g1-clus" || labels["test"] != "app" || labels["seed"] != "4" {
		t.Fatalf("labels = %v", labels)
	}

	// Request-latency histogram is populated and consistent with the
	// request counter.
	lat := reg.Histogram("disk.request_latency_ms", nil)
	reqs := reg.Counter("disk.requests").Value()
	if reqs == 0 || lat.Total() != reqs {
		t.Fatalf("requests=%d latency observations=%d", reqs, lat.Total())
	}
	if reg.Histogram("disk.queue_wait_ms", nil).Total() == 0 {
		t.Fatal("queue-wait histogram empty")
	}
	if reg.Histogram("core.latency_ms", nil).Total() == 0 {
		t.Fatal("core latency histogram empty")
	}

	// Per-drive utilization timelines: one per drive, sampled over the
	// 30-second run, values in [0, 100].
	for i := 0; i < cfg.Disk.NDisks; i++ {
		name := "disk.drive." + string(rune('0'+i)) + ".util_pct"
		pts := reg.Timeline(name).Points()
		if len(pts) < 2 {
			t.Fatalf("%s has %d points, want a sampled series", name, len(pts))
		}
		for _, p := range pts {
			if p.V < 0 || p.V > 100 {
				t.Fatalf("%s sample out of range: %+v", name, p)
			}
		}
	}

	// Fragmentation timelines exist and end at plausible values.
	util := reg.Timeline("frag.utilization").Points()
	if len(util) < 2 {
		t.Fatalf("frag.utilization has %d points", len(util))
	}
	if last := util[len(util)-1].V; last <= 0 || last > 1 {
		t.Fatalf("final utilization = %g", last)
	}

	// Finalize gauges: drive service-time decomposition sums to busy time.
	busy := reg.Gauge("disk.drive.0.busy_ms").Value()
	parts := reg.Gauge("disk.drive.0.seek_ms").Value() +
		reg.Gauge("disk.drive.0.rot_ms").Value() +
		reg.Gauge("disk.drive.0.xfer_ms").Value()
	if busy <= 0 {
		t.Fatal("drive 0 never busy")
	}
	if diff := busy - parts; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("busy=%g but seek+rot+xfer=%g", busy, parts)
	}

	// Allocator operation counts flow through the StatsReporter hook.
	if reg.Counter("alloc.allocs").Value() == 0 {
		t.Fatal("no allocator ops recorded")
	}
	if reg.Counter("fs.creates").Value() == 0 || reg.Counter("core.ops.read").Value() == 0 {
		t.Fatal("fs/core counters empty")
	}
}

func TestMetricsRunsAreDeterministic(t *testing.T) {
	render := func() string {
		cfg := metricsConfig(4)
		cfg.Metrics = metrics.New(1000)
		if _, err := Run(cfg, Application); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := cfg.Metrics.Write(&sb, metrics.JSON); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if render() != render() {
		t.Fatal("identical metrics-on runs produced different bundles")
	}
}

func TestMetricsOffIsNil(t *testing.T) {
	out, err := Run(metricsConfig(4), Application)
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics != nil {
		t.Fatal("metrics-off run produced a registry")
	}
}

// TestSpansInTrace checks the trace's seg records carry the lifecycle
// phases and that the analyzer's span sums agree with the decomposition
// invariant wait+svc with svc = seek+rot+xfer.
func TestSpansInTrace(t *testing.T) {
	var buf bytes.Buffer
	cfg := metricsConfig(4)
	cfg.TraceWriter = &buf
	if _, err := Run(cfg, Application); err != nil {
		t.Fatal(err)
	}
	a, err := trace.Analyze(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Drives) == 0 {
		t.Fatal("no drives in trace")
	}
	for _, d := range a.Drives {
		if d.Spans != d.Segments {
			t.Fatalf("drive %d: %d spans for %d segments", d.Drive, d.Spans, d.Segments)
		}
		// Each record's fields round to 3 decimals independently, so the
		// per-record mismatch is bounded by 0.002ms.
		sum := d.SeekMS + d.RotMS + d.XferMS
		tol := 0.002 * float64(d.Spans)
		if diff := d.BusyMS - sum; diff > tol || diff < -tol {
			t.Fatalf("drive %d: busy %g != seek+rot+xfer %g", d.Drive, d.BusyMS, sum)
		}
		if d.WaitMS < 0 {
			t.Fatalf("drive %d: negative wait %g", d.Drive, d.WaitMS)
		}
	}
	// The analyzer's kind summaries see both record kinds.
	kinds := map[string]bool{}
	for _, k := range a.Kinds {
		kinds[k.Kind] = true
	}
	if !kinds["seg"] || !kinds["op"] {
		t.Fatalf("kinds = %+v", a.Kinds)
	}
}
