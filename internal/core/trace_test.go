package core

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestTraceCapturesOpsAndSegments(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{
		Disk:        smallDisk(),
		Policy:      RBuddy(3, 1, true),
		Workload:    scaledTS(),
		Seed:        4,
		MaxSimMS:    30_000,
		TraceWriter: &buf,
	}
	res, err := RunApplication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations ran")
	}
	var ops, segs int64
	kinds := map[string]bool{}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lastTime float64
	for sc.Scan() {
		fields := strings.SplitN(sc.Text(), "\t", 3)
		if len(fields) != 3 {
			t.Fatalf("malformed trace line %q", sc.Text())
		}
		ts, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("bad timestamp in %q", sc.Text())
		}
		if ts < lastTime-1e-3 {
			// op completions and seg starts interleave but never go
			// backwards beyond rounding.
			t.Fatalf("trace time went backwards: %g after %g", ts, lastTime)
		}
		lastTime = ts
		switch fields[1] {
		case "op":
			ops++
			kinds[strings.Fields(fields[2])[0]] = true
		case "seg":
			segs++
			if !strings.Contains(fields[2], "disk=") || !strings.Contains(fields[2], "svc=") {
				t.Fatalf("malformed seg detail %q", fields[2])
			}
		default:
			t.Fatalf("unknown trace kind %q", fields[1])
		}
	}
	if ops == 0 || segs == 0 {
		t.Fatalf("trace missing events: ops=%d segs=%d", ops, segs)
	}
	// The TS mix must show reads, writes, and deallocations.
	for _, k := range []string{"read", "write", "dealloc"} {
		if !kinds[k] {
			t.Errorf("trace never saw a %s op (kinds: %v)", k, kinds)
		}
	}
}

func TestLatencyReported(t *testing.T) {
	res, err := RunApplication(Config{
		Disk:     smallDisk(),
		Policy:   RBuddy(3, 1, true),
		Workload: scaledTS(),
		Seed:     4,
		MaxSimMS: 30_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLatencyMS <= 0 {
		t.Fatalf("MeanLatencyMS = %g", res.MeanLatencyMS)
	}
	if res.P95LatencyMS < res.MeanLatencyMS {
		t.Fatalf("p95 %g below mean %g", res.P95LatencyMS, res.MeanLatencyMS)
	}
}
