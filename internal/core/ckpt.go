package core

import (
	"fmt"

	"rofs/internal/ckpt"
	"rofs/internal/sim"
)

// startCkptTick schedules the self-rescheduling boundary event that
// drives verified checkpoint/resume on a plain run (a fleet's
// Deployment owns the grid instead and nils the members' hooks, the
// same ownership split as Metrics). Like the metrics tick, the boundary
// event is part of the armed run's event sequence: an armed run is its
// own deterministic variant of the spec, keyed separately by the
// runner.
func (s *Instance) startCkptTick() {
	h := s.cfg.Checkpoint
	if h == nil || h.EveryMS <= 0 {
		return
	}
	var tick sim.Handler
	tick = func(now float64) {
		s.ckptSeq++
		st := s.checkpointState(now)
		if !s.ckptBoundary(st) {
			return
		}
		s.eng.After(h.EveryMS, tick)
	}
	s.eng.After(h.EveryMS, tick)
}

// ckptBoundary processes one sealed boundary state: verify against the
// resume target when this is its boundary, then hand it to the sink.
// It reports whether the run should keep checkpointing (false after a
// failed verification, which also stops the engine — continuing a
// replay that diverged would fabricate results).
func (s *Instance) ckptBoundary(st ckpt.State) bool {
	h := s.cfg.Checkpoint
	if r := h.Resume; r != nil && st.Seq == r.Seq {
		if err := ckpt.Verify(st, *r); err != nil {
			s.ckptErr = fmt.Errorf("core: resume verification failed: %w", err)
			s.eng.Stop()
			return false
		}
		s.ckptVerified = true
	}
	if h.Sink != nil {
		if err := h.Sink(st); err != nil && s.ckptErr == nil {
			// Persistence failure does not invalidate the simulation;
			// record it so the caller knows resume coverage was lost.
			s.ckptErr = fmt.Errorf("core: checkpoint at %g ms not persisted: %w", st.SimMS, err)
		}
	}
	return true
}

// checkpointState fingerprints a plain (single-instance) run at the
// boundary time now.
func (s *Instance) checkpointState(now float64) ckpt.State {
	h := s.cfg.Checkpoint
	st := ckpt.State{
		Schema:    ckpt.Schema,
		SpecKey:   h.Key,
		Label:     h.Label,
		Seq:       s.ckptSeq,
		SimMS:     now,
		Events:    s.eng.Fired(),
		Instances: []ckpt.InstanceState{s.CheckpointState()},
	}
	st.Seal()
	return st
}

// CheckpointState fingerprints this instance alone — the building block
// a fleet Deployment folds into its boundary state.
func (s *Instance) CheckpointState() ckpt.InstanceState {
	return ckpt.InstanceState{
		Index:       s.idx,
		Seed:        s.seed,
		Draws:       s.rng.Draws(),
		Ops:         s.ops,
		AllocFails:  s.allocFails,
		Utilization: s.fsys.Utilization(),
		Files:       int64(s.fsys.Files()),
	}
}

// ckptFinish folds checkpoint-layer failures into a finished run's
// error: a boundary error (failed verification, lost persistence)
// surfaces directly; a run that ended without ever reaching its resume
// boundary means the configuration drifted (e.g. a different
// -checkpoint-every grid) and the "resumed" result would be
// unverified.
func (s *Instance) ckptFinish(err error) error {
	if err != nil {
		return err
	}
	if s.ckptErr != nil {
		return s.ckptErr
	}
	h := s.cfg.Checkpoint
	if h != nil && h.Resume != nil && !s.ckptVerified && !s.canceled {
		return fmt.Errorf("core: run ended at %g ms without reaching the resume checkpoint (seq %d at %g ms) — checkpoint grid or config drifted",
			s.eng.Now(), h.Resume.Seq, h.Resume.SimMS)
	}
	return err
}
