package core

// Fleet-level result types live in core (like fault.Report on PerfResult)
// so PerfResult can carry them without importing the cluster package that
// fills them in — cluster imports core, never the reverse.

// ClusterReport summarizes a multi-instance fleet run: admission and
// routing outcomes, balance across instances, and each member's own
// result. It rides on PerfResult.Cluster only for fleet runs, so
// single-instance results serialize exactly as before.
type ClusterReport struct {
	// Instances is the fleet size.
	Instances int `json:"instances"`
	// Routing and Admission name the policies the run used.
	Routing   string `json:"routing"`
	Admission string `json:"admission,omitempty"`

	// Arrivals counts offered open-loop requests; Admitted and Rejected
	// split them at the admission policy. Closed-loop fleets (per-instance
	// user populations, nothing to route) leave all three zero.
	Arrivals int64 `json:"arrivals,omitempty"`
	Admitted int64 `json:"admitted,omitempty"`
	Rejected int64 `json:"rejected,omitempty"`
	// RejectPct is Rejected as a percent of Arrivals.
	RejectPct float64 `json:"reject_pct"`

	// UtilSkew is the fleet's load-balance figure: the busiest instance's
	// completed operations divided by the per-instance mean (1.0 = perfect
	// balance; N = everything landed on one of N instances).
	UtilSkew float64 `json:"util_skew"`

	// PerInstance holds each member's result, indexed by fleet slot.
	PerInstance []InstancePerf `json:"per_instance"`
}

// InstancePerf is one fleet member's slice of a ClusterReport.
type InstancePerf struct {
	Index int `json:"index"`
	// Routed counts arrivals the router sent here (open-loop fleets only).
	Routed int64 `json:"routed,omitempty"`
	Ops    int64 `json:"ops"`
	// Percent is the member's throughput as a percent of its own disk
	// system's maximum bandwidth — the paper's reporting unit, per member.
	Percent       float64 `json:"percent"`
	Stable        bool    `json:"stable"`
	MeanLatencyMS float64 `json:"mean_latency_ms"`
	P95LatencyMS  float64 `json:"p95_latency_ms"`
	Utilization   float64 `json:"utilization"`
	// Faulted marks the member the run's fault scenario targeted.
	Faulted bool `json:"faulted,omitempty"`
}
