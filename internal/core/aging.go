package core

import (
	"fmt"

	"rofs/internal/alloc"
	"rofs/internal/sim"
)

// agingSamples is how many free-space snapshots an aging run takes across
// its horizon; with multi-day horizons each sample covers roughly an hour
// of simulated churn.
const agingSamples = 64

// AgingSample is one free-space snapshot of an aging run: the §3
// fragmentation quantities, the free-space shape (Sears & van Ingen's
// free-space-fragmentation metric), and the live object-size distribution
// the fragmentation is measured against.
type AgingSample struct {
	// SimMS is the simulated time of the snapshot.
	SimMS float64
	// Utilization, InternalPct, ExternalPct are the §3 quantities.
	Utilization float64
	InternalPct float64
	ExternalPct float64
	// FreeFragments counts the policy's discrete free pieces;
	// LargestFreeUnits is the biggest one (zero when the policy does not
	// report free-space shape).
	FreeFragments    int64
	LargestFreeUnits int64
	// Files and MeanFileBytes summarize the live object-size distribution.
	Files         int64
	MeanFileBytes float64
	// Ops and AllocFails are cumulative at the snapshot.
	Ops        int64
	AllocFails int64
}

// AgingResult reports an aging run: the sampled free-space decay timeline
// plus end-of-run totals.
type AgingResult struct {
	Policy   string
	Workload string
	SimMS    float64
	Ops      int64
	// AllocFails counts §2.2 disk-full conditions survived along the way.
	AllocFails int64
	Samples    []AgingSample
}

// Final returns the last sample (the end-of-run free-space state).
func (r *AgingResult) Final() AgingSample {
	if n := len(r.Samples); n > 0 {
		return r.Samples[n-1]
	}
	return AgingSample{}
}

// RunAging performs the aging test: initialization, fill to the lower
// utilization bound, then create/grow/truncate/delete churn held inside
// the utilization band for MaxSimMS of simulated time, sampling the
// free-space shape along the way.
func RunAging(cfg Config) (AgingResult, error) {
	out, err := Run(cfg, Aging)
	return out.Aging, err
}

// aging runs the long-horizon churn on a fresh space-only instance.
func (s *Instance) aging() (AgingResult, error) {
	res := AgingResult{Policy: s.cfg.Policy.Name(), Workload: s.cfg.Workload.Name}
	if s.initFiles() {
		return res, fmt.Errorf("core: disk filled during initialization (utilization target too high)")
	}
	s.fill()
	if s.canceled {
		return res, nil
	}
	s.sampleAging(&res, s.eng.Now())
	interval := s.cfg.MaxSimMS / agingSamples
	if interval <= 0 {
		interval = 1
	}
	var tick sim.Handler
	tick = func(now float64) {
		s.sampleAging(&res, now)
		s.eng.After(interval, tick)
	}
	s.eng.After(interval, tick)
	s.scheduleUsers()
	end := s.eng.Run(s.eng.Now() + s.cfg.MaxSimMS)
	res.SimMS = end
	res.Ops = s.ops
	res.AllocFails = s.allocFails
	if err := s.fsys.Check(); err != nil {
		return res, fmt.Errorf("core: post-run fsck: %w", err)
	}
	if err := s.tracer.Flush(); err != nil {
		return res, fmt.Errorf("core: trace: %w", err)
	}
	return res, nil
}

// sampleAging appends one free-space snapshot.
func (s *Instance) sampleAging(res *AgingResult, now float64) {
	smp := AgingSample{
		SimMS:       now,
		Utilization: s.fsys.Utilization(),
		InternalPct: s.fsys.InternalFragPct(),
		ExternalPct: s.fsys.ExternalFragPct(),
		Files:       int64(s.fsys.Files()),
		Ops:         s.ops,
		AllocFails:  s.allocFails,
	}
	if fr, ok := s.fsys.Policy().(alloc.FreeSpaceReporter); ok {
		st := fr.FreeSpaceStats()
		smp.FreeFragments = st.Fragments
		smp.LargestFreeUnits = st.LargestUnits
	}
	if smp.Files > 0 {
		smp.MeanFileBytes = float64(s.fsys.UsedBytes()) / float64(smp.Files)
	}
	res.Samples = append(res.Samples, smp)
}
