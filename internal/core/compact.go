package core

import (
	"rofs/internal/disk"
	"rofs/internal/metrics"
	"rofs/internal/sim"
	"rofs/internal/workload"
)

// The compaction overlay models the write-optimized design the paper's
// read-optimized systems are contrasted with: a log-structured segment
// stream. The foreground log appends one fixed-size segment per flush
// interval as an ordinary (fault-visible) sequential write, and a
// background merge-compaction engine folds segments together under a
// pluggable policy — size-tiered or leveled. Merge I/O is submitted as
// internal maintenance traffic, exactly like the rebuild engine's
// reconstruction: it competes through the real per-drive queues and busy
// time (so the workload's own operations feel it as queue wait) but is
// excluded from throughput and latency accounting.
//
// The overlay shares the drives' unit address space with the file system
// but not its allocator: like rebuild I/O, segments address raw disk
// units, so the overlay perturbs timing — seeks, queueing, bandwidth —
// without touching allocation state. Everything is cadence-driven and
// drawn from no RNG, so an armed run is deterministic and an unarmed run
// is untouched (no events, no metrics series, no spec-key term).

// CompactionReport summarizes the overlay's activity over a run.
type CompactionReport struct {
	// Policy is the merge policy ("tiered" or "leveled").
	Policy string
	// Segments is the number of foreground segment flushes.
	Segments int64
	// Merges is the number of background merge operations.
	Merges int64
	// FlushBytes is the foreground log volume; MergeReadBytes and
	// MergeWriteBytes are the background merge volume.
	FlushBytes      int64
	MergeReadBytes  int64
	MergeWriteBytes int64
	// WriteAmp is total bytes written (flush + merge) over flush bytes —
	// the overlay's write amplification.
	WriteAmp float64
	// Live is the final number of live segments per tier (tiered) or
	// level (leveled).
	Live []int64
}

// Merge folds another instance's report into r — the fleet result path,
// which sums volumes, concatenates per-tier live counts element-wise,
// and re-derives the amplification from the merged totals.
func (r *CompactionReport) Merge(o *CompactionReport) {
	if r.Policy == "" {
		r.Policy = o.Policy
	}
	r.Segments += o.Segments
	r.Merges += o.Merges
	r.FlushBytes += o.FlushBytes
	r.MergeReadBytes += o.MergeReadBytes
	r.MergeWriteBytes += o.MergeWriteBytes
	for len(r.Live) < len(o.Live) {
		r.Live = append(r.Live, 0)
	}
	for i, n := range o.Live {
		r.Live[i] += n
	}
	if r.FlushBytes > 0 {
		r.WriteAmp = float64(r.FlushBytes+r.MergeWriteBytes) / float64(r.FlushBytes)
	}
}

// compactor is the per-instance overlay engine.
type compactor struct {
	s      *Instance
	policy string
	// segUnits is the foreground segment size in disk units; a tier-t
	// segment of the tiered policy covers segUnits·fanout^t units.
	segUnits int64
	flushMS  float64
	fanout   int64

	units   int64 // drive address space (wrap limit)
	cursor  int64 // next append position
	started bool  // the flush cadence is armed at most once

	// starts[t] holds the start unit of every live segment at tier/level
	// t, in age order — merge inputs are the oldest.
	starts  [][]int64
	merging bool

	flushes, merges                             int64
	flushBytes, mergeReadBytes, mergeWriteBytes int64

	mFlushes, mMerges           *metrics.Counter
	mFlushB, mMergeRB, mMergeWB *metrics.Counter
}

// newCompactor builds the overlay state (no events yet — start arms the
// flush cadence when measurement begins) and registers its metrics series,
// which therefore exist only on armed runs.
func newCompactor(s *Instance) *compactor {
	cc := s.cfg.Workload.Compact
	c := &compactor{
		s:       s,
		policy:  cc.EffectivePolicy(),
		flushMS: cc.EffectiveFlushEveryMS(),
		fanout:  int64(cc.EffectiveFanout()),
		units:   s.dsys.Units(),
	}
	c.segUnits = (cc.EffectiveSegmentBytes() + s.dsys.UnitBytes() - 1) / s.dsys.UnitBytes()
	if c.segUnits < 1 {
		c.segUnits = 1
	}
	if c.segUnits > c.units {
		c.segUnits = c.units
	}
	if reg := s.cfg.Metrics; reg != nil {
		c.mFlushes = reg.Counter("compact.flushes")
		c.mMerges = reg.Counter("compact.merges")
		c.mFlushB = reg.Counter("compact.flush_bytes")
		c.mMergeRB = reg.Counter("compact.merge_read_bytes")
		c.mMergeWB = reg.Counter("compact.merge_write_bytes")
		reg.TimelineFunc("compact.live_segments", func() float64 {
			var n int64
			for _, tier := range c.starts {
				n += int64(len(tier))
			}
			return float64(n)
		})
	}
	return c
}

// start arms the foreground flush cadence. Re-arming (a second
// measurement phase) is a no-op: the cadence never stops.
func (c *compactor) start(now float64) {
	if c.started {
		return
	}
	c.started = true
	var tick sim.Handler
	tick = func(now float64) {
		c.flush(now)
		c.s.eng.After(c.flushMS, tick)
	}
	c.s.eng.After(c.flushMS, tick)
}

// place claims a contiguous run of n units at the append cursor, wrapping
// to the start of the address space when the tail would overflow.
func (c *compactor) place(n int64) int64 {
	if n > c.units {
		n = c.units
	}
	if c.cursor+n > c.units {
		c.cursor = 0
	}
	start := c.cursor
	c.cursor += n
	return start
}

// flush appends one foreground log segment: a sequential write through
// the normal queues, fault-visible like any workload write.
func (c *compactor) flush(now float64) {
	n := c.segUnits
	start := c.place(n)
	c.flushes++
	c.flushBytes += n * c.s.dsys.UnitBytes()
	c.mFlushes.Inc()
	c.mFlushB.Add(n * c.s.dsys.UnitBytes())
	c.s.dsys.Submit(&disk.Request{
		Runs:  []disk.Run{{Start: start, Len: n}},
		Write: true,
		Done: func(now float64) {
			c.tierAppend(0, start)
			c.maybeMerge(now)
		},
	})
}

// tierAppend records a live segment at tier t.
func (c *compactor) tierAppend(t int, start int64) {
	for len(c.starts) <= t {
		c.starts = append(c.starts, nil)
	}
	c.starts[t] = append(c.starts[t], start)
}

// tierSegUnits is the size of one tier-t segment in units: merges widen
// tiered segments by fanout per tier, while leveled segments stay
// log-sized.
func (c *compactor) tierSegUnits(t int) int64 {
	n := c.segUnits
	if c.policy == workload.CompactTiered {
		for i := 0; i < t; i++ {
			if n > c.units/c.fanout {
				return c.units // clamp: wider than the disk
			}
			n *= c.fanout
		}
	}
	return n
}

// maybeMerge starts at most one background merge; the completion handler
// re-checks, so a backlog drains one merge at a time.
func (c *compactor) maybeMerge(now float64) {
	if c.merging {
		return
	}
	switch c.policy {
	case workload.CompactTiered:
		c.maybeMergeTiered(now)
	case workload.CompactLeveled:
		c.maybeMergeLeveled(now)
	}
}

// maybeMergeTiered merges the lowest tier holding fanout segments into
// one segment of the next tier: read them all, write the union.
func (c *compactor) maybeMergeTiered(now float64) {
	for t := 0; t < len(c.starts); t++ {
		if int64(len(c.starts[t])) < c.fanout {
			continue
		}
		in := c.starts[t][:c.fanout]
		inUnits := c.tierSegUnits(t)
		reads := make([]disk.Run, len(in))
		for i, st := range in {
			reads[i] = disk.Run{Start: st, Len: inUnits}
		}
		outUnits := c.tierSegUnits(t + 1)
		outStart := c.place(outUnits)
		c.starts[t] = append(c.starts[t][:0], c.starts[t][c.fanout:]...)
		c.runMerge(now, t+1, outStart, reads, outUnits)
		return
	}
}

// maybeMergeLeveled merges one victim segment of the shallowest
// overflowing level (level L holds fanout^(L+1) segments) with its
// overlapping segments one level down, rewriting them all.
func (c *compactor) maybeMergeLeveled(now float64) {
	cap := c.fanout
	for t := 0; t < len(c.starts); t++ {
		if int64(len(c.starts[t])) > cap {
			victim := c.starts[t][0]
			c.starts[t] = append(c.starts[t][:0], c.starts[t][1:]...)
			overlap := c.fanout
			if t+1 < len(c.starts) && int64(len(c.starts[t+1])) < overlap {
				overlap = int64(len(c.starts[t+1]))
			} else if t+1 >= len(c.starts) {
				overlap = 0
			}
			reads := make([]disk.Run, 0, overlap+1)
			reads = append(reads, disk.Run{Start: victim, Len: c.segUnits})
			for i := int64(0); i < overlap; i++ {
				reads = append(reads, disk.Run{Start: c.starts[t+1][0], Len: c.segUnits})
				c.starts[t+1] = append(c.starts[t+1][:0], c.starts[t+1][1:]...)
			}
			// The rewritten run lands contiguously in the next level; each
			// input segment re-enters the level's age order.
			outUnits := (overlap + 1) * c.segUnits
			if outUnits > c.units {
				outUnits = c.units
			}
			outStart := c.place(outUnits)
			for i := int64(0); i < outUnits/c.segUnits; i++ {
				c.tierAppend(t+1, outStart+i*c.segUnits)
			}
			c.runMergeRuns(now, outStart, reads, outUnits)
			return
		}
		if cap > c.units { // int64-overflow guard; such a level never fills
			return
		}
		cap *= c.fanout
	}
}

// runMerge performs a tiered merge: internal reads of every input, then
// one internal write of the merged segment, then bookkeeping.
func (c *compactor) runMerge(now float64, outTier int, outStart int64, reads []disk.Run, outUnits int64) {
	c.merging = true
	c.s.dsys.Submit(&disk.Request{
		Runs:     reads,
		Internal: true,
		Done: func(now float64) {
			c.s.dsys.Submit(&disk.Request{
				Runs:     []disk.Run{{Start: outStart, Len: outUnits}},
				Write:    true,
				Internal: true,
				Done: func(now float64) {
					c.tierAppend(outTier, outStart)
					c.finishMerge(now, reads, outUnits)
				},
			})
		},
	})
}

// runMergeRuns is the leveled variant: bookkeeping for the outputs was
// done up front (they re-enter their level individually).
func (c *compactor) runMergeRuns(now float64, outStart int64, reads []disk.Run, outUnits int64) {
	c.merging = true
	c.s.dsys.Submit(&disk.Request{
		Runs:     reads,
		Internal: true,
		Done: func(now float64) {
			c.s.dsys.Submit(&disk.Request{
				Runs:     []disk.Run{{Start: outStart, Len: outUnits}},
				Write:    true,
				Internal: true,
				Done: func(now float64) {
					c.finishMerge(now, reads, outUnits)
				},
			})
		},
	})
}

// finishMerge credits the merge volume and looks for the next merge.
func (c *compactor) finishMerge(now float64, reads []disk.Run, outUnits int64) {
	ub := c.s.dsys.UnitBytes()
	var readUnits int64
	for _, r := range reads {
		readUnits += r.Len
	}
	c.merges++
	c.mergeReadBytes += readUnits * ub
	c.mergeWriteBytes += outUnits * ub
	c.mMerges.Inc()
	c.mMergeRB.Add(readUnits * ub)
	c.mMergeWB.Add(outUnits * ub)
	c.merging = false
	c.maybeMerge(now)
}

// report assembles the end-of-run summary.
func (c *compactor) report() CompactionReport {
	r := CompactionReport{
		Policy:          c.policy,
		Segments:        c.flushes,
		Merges:          c.merges,
		FlushBytes:      c.flushBytes,
		MergeReadBytes:  c.mergeReadBytes,
		MergeWriteBytes: c.mergeWriteBytes,
		Live:            make([]int64, len(c.starts)),
	}
	for t, tier := range c.starts {
		r.Live[t] = int64(len(tier))
	}
	if c.flushBytes > 0 {
		r.WriteAmp = float64(c.flushBytes+c.mergeWriteBytes) / float64(c.flushBytes)
	}
	return r
}
