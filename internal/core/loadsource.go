package core

import (
	"fmt"

	"rofs/internal/sim"
	"rofs/internal/stats"
	"rofs/internal/workload"
)

// This file is the load-source half of the core refactor: the closed-loop
// per-user sessions of §2.2 (scheduleUsers in instance.go, unchanged) get a
// sibling — an open-loop arrival process that models the request stream a
// front-end fleet sees, where offered load does not back off when the
// server slows down. A single-instance run drives its own Instance through
// Dispatch; a cluster Deployment interposes admission and routing between
// the source and N instances.

// arrivalSeedSalt offsets the arrival process's dedicated RNG from the run
// seed, so enabling open-loop arrivals never perturbs the workload's own
// draw sequence (file picks, sizes, offsets).
const arrivalSeedSalt = 0x41525256 // "ARRV"

// Arrival is one open-loop request, resolved by the ArrivalSource: the
// workload type index it targets, an optional forced operation (-1: drawn
// from the type's operation mix at dispatch), and the client key affinity
// routing hashes. Only the source constructs these.
type Arrival struct {
	Type   int
	Op     int // opKind value, or -1
	Client int
}

// ArrivalSink receives each arrival as it occurs in simulated time.
type ArrivalSink func(now float64, a Arrival)

// ArrivalSource schedules an open-loop arrival process into an engine:
// Poisson arrivals at a fixed rate, or a replayed timestamped trace. It
// draws from a dedicated RNG stream and feeds a sink — directly an
// Instance for plain runs, a cluster Deployment's admission/routing front
// end for fleets. The hot path allocates nothing: one self-rescheduling
// handler emits every arrival.
type ArrivalSource struct {
	eng     *sim.Engine
	rng     *sim.RNG
	mode    string
	gapMS   float64 // poisson mean inter-arrival gap
	clients int
	weights []float64 // per-type arrival weights (the types' user counts)
	sink    ArrivalSink

	// Trace replay state: operations pre-resolved to type/op indices.
	trace []Arrival
	atMS  []float64
	next  int
	base  float64

	emitted int64
	fire    sim.Handler
}

// NewArrivalSource builds the source for a workload's Arrivals block. The
// seed is the run (or instance) seed; the dedicated salt keeps the arrival
// stream independent of the workload stream.
func NewArrivalSource(eng *sim.Engine, seed int64, wl *workload.Workload, sink ArrivalSink) (*ArrivalSource, error) {
	spec := wl.Arrivals
	if spec == nil {
		return nil, fmt.Errorf("core: workload %q has no arrivals block", wl.Name)
	}
	if err := spec.Validate(wl); err != nil {
		return nil, err
	}
	s := &ArrivalSource{
		eng:     eng,
		rng:     sim.NewRNG(seed + arrivalSeedSalt),
		mode:    spec.EffectiveMode(),
		clients: spec.EffectiveClients(),
		sink:    sink,
	}
	s.weights = make([]float64, len(wl.Types))
	for i := range wl.Types {
		s.weights[i] = float64(wl.Types[i].Users)
	}
	switch s.mode {
	case workload.ArrivalsPoisson:
		s.gapMS = 1000 / spec.RatePerSec
	case workload.ArrivalsTrace:
		s.trace = make([]Arrival, len(spec.Trace))
		s.atMS = make([]float64, len(spec.Trace))
		for i := range spec.Trace {
			op := &spec.Trace[i]
			s.atMS[i] = op.AtMS
			a := Arrival{Type: -1, Op: -1, Client: op.Client}
			if op.Type != "" {
				a.Type = wl.TypeIndex(op.Type)
			}
			switch op.Op {
			case "read":
				a.Op = int(opRead)
			case "write":
				a.Op = int(opWrite)
			case "extend":
				a.Op = int(opExtend)
			case "dealloc":
				a.Op = int(opDealloc)
			}
			s.trace[i] = a
		}
	}
	s.fire = s.emit
	return s, nil
}

// Start schedules the first arrival. Trace timestamps are relative to the
// start time (measurement begins after initialization and fill, well past
// simulated time zero).
func (s *ArrivalSource) Start(now float64) {
	s.base = now
	switch s.mode {
	case workload.ArrivalsPoisson:
		s.eng.After(s.rng.Exp(s.gapMS), s.fire)
	case workload.ArrivalsTrace:
		if len(s.trace) > 0 {
			s.eng.At(s.base+s.atMS[0], s.fire)
		}
	}
}

// emit delivers one arrival and schedules the next.
func (s *ArrivalSource) emit(now float64) {
	var a Arrival
	if s.mode == workload.ArrivalsTrace {
		a = s.trace[s.next]
		s.next++
	} else {
		a = Arrival{Type: -1, Op: -1}
	}
	if a.Type < 0 {
		a.Type = s.rng.Pick(s.weights)
	}
	if s.mode == workload.ArrivalsPoisson {
		a.Client = s.rng.Intn(s.clients)
	}
	s.emitted++
	s.sink(now, a)
	switch s.mode {
	case workload.ArrivalsPoisson:
		s.eng.After(s.rng.Exp(s.gapMS), s.fire)
	case workload.ArrivalsTrace:
		if s.next < len(s.trace) {
			s.eng.At(s.base+s.atMS[s.next], s.fire)
		}
	}
}

// Emitted returns how many arrivals the source has delivered.
func (s *ArrivalSource) Emitted() int64 { return s.emitted }

// Exhausted reports whether a trace source has replayed every operation.
// Poisson sources never exhaust.
func (s *ArrivalSource) Exhausted() bool {
	return s.mode == workload.ArrivalsTrace && s.next >= len(s.trace)
}

// Dispatch injects one open-loop arrival into the instance: a pooled
// operation executes it against a file of the arrival's type and releases
// itself on completion (see userOp.complete). Steady state allocates
// nothing — the free list reaches the arrival process's peak concurrency
// and stays there.
func (s *Instance) Dispatch(now float64, a Arrival) {
	var u *userOp
	if n := len(s.freeOps); n > 0 {
		u = s.freeOps[n-1]
		s.freeOps = s.freeOps[:n-1]
	} else {
		u = newUserOp(s, nil)
		u.open = true
	}
	u.ts = s.types[a.Type]
	u.forced = opKind(a.Op)
	s.inFlightOpen++
	s.doOp(u)
}

// --- Exported fleet surface -------------------------------------------------
//
// A cluster Deployment assembles N instances — each on its own engine —
// and drives them through the methods below; a plain Run never needs
// them.
//
// Concurrency contract: an Instance is single-goroutine state. The
// Deployment's executor confines each instance (and its engine) to one
// worker goroutine per window, with barriers between windows handing
// ownership back to the coordinator; callbacks installed via SetOnStable
// and SetOnOpDone run on the instance's worker and must only touch the
// instance's own slot in coordinator-preallocated per-index storage.
// Nothing in this package locks, and nothing needs to.

// NewInstance builds one fleet member in the shared engine: fleet slot idx,
// RNG stream Seed + idx·stride (slot 0 draws identically to a plain run).
func NewInstance(cfg Config, kind TestKind, eng *sim.Engine, idx int) (*Instance, error) {
	tk, err := kindState(kind)
	if err != nil {
		return nil, err
	}
	return newInstance(cfg, tk, eng, idx)
}

// kindState maps the exported TestKind to the instance-level test state.
func kindState(kind TestKind) (testKind, error) {
	switch kind {
	case Allocation, AllocationRealloc:
		return allocationTest, nil
	case Application:
		return applicationTest, nil
	case Sequential:
		return sequentialTest, nil
	case Aging:
		return agingTest, nil
	default:
		return 0, fmt.Errorf("core: unknown test kind %d", int(kind))
	}
}

// PrimeThroughput runs the initialization phases of a throughput test:
// create and grow the file population, then fill to the lower utilization
// bound. It fails if the disk fills during initialization.
func (s *Instance) PrimeThroughput() error {
	if s.initFiles() {
		return fmt.Errorf("core: disk filled during initialization (utilization target too high)")
	}
	s.fill()
	return nil
}

// StartMeasurement arms throughput tracking and the stabilization tick.
func (s *Instance) StartMeasurement() { s.startTracker() }

// ScheduleUsers starts the closed-loop per-user event streams.
func (s *Instance) ScheduleUsers() { s.scheduleUsers() }

// SetOnStable installs the fleet stabilization callback (see onStable).
func (s *Instance) SetOnStable(fn func()) { s.onStable = fn }

// SetOnOpDone installs the open-loop completion callback: it fires once
// per dispatched arrival with the completion time and the operation's
// latency in simulated milliseconds.
func (s *Instance) SetOnOpDone(fn func(in *Instance, now, latencyMS float64)) {
	s.onOpDone = fn
}

// Index returns the instance's fleet slot.
func (s *Instance) Index() int { return s.idx }

// MaxSimMS returns the resolved simulated-time cap (Config.MaxSimMS after
// defaulting) — the horizon a Deployment runs the shared engine to.
func (s *Instance) MaxSimMS() float64 { return s.cfg.MaxSimMS }

// NewLatencyHistogram builds an empty histogram over the same bucket
// bounds every instance's latency histogram uses, so fleet-level merges
// and central latency accounting share the core's quantile resolution.
func NewLatencyHistogram() *stats.Histogram { return stats.NewHistogram(latencyBounds) }

// InFlight returns the number of dispatched open-loop operations not yet
// completed — the live load a router's snapshots observe.
func (s *Instance) InFlight() int { return s.inFlightOpen }

// Ops returns the operations completed so far.
func (s *Instance) Ops() int64 { return s.ops }

// Utilization returns the file system's current allocated/capacity ratio.
func (s *Instance) Utilization() float64 { return s.fsys.Utilization() }

// Stable reports whether the instance's throughput has stabilized.
func (s *Instance) Stable() bool {
	return s.tracker != nil && s.tracker.Stable()
}

// Canceled reports whether Config.Cancel fired during this instance's run.
func (s *Instance) Canceled() bool { return s.canceled }

// Result assembles the instance's throughput-test result for a run that
// ended at simulated time end, including the post-run consistency check
// and trace flush.
func (s *Instance) Result(end float64) (PerfResult, error) {
	return s.perfTail(end)
}

// MergeLatency folds this instance's per-operation latency into fleet-level
// accumulators (the histogram must share latencyBounds, which all
// instances do).
func (s *Instance) MergeLatency(w *stats.Welford, h *stats.Histogram) {
	w.Merge(&s.latency)
	if s.latencyH != nil {
		h.Merge(s.latencyH)
	}
}
