package core

import (
	"errors"
	"fmt"

	"rofs/internal/metrics"
)

// TestKind selects one of the §3 tests for a declarative run — the
// exported counterpart of the session-level test kinds, used by the
// runner's Spec layer.
type TestKind int

const (
	// Allocation is the §3 allocation test (fragmentation at the first
	// failed request).
	Allocation TestKind = iota
	// Application is the §3 application performance test.
	Application
	// Sequential is the §3 sequential performance test.
	Sequential
	// AllocationRealloc is the allocation test followed by Koch's nightly
	// reallocator (§4.1's excluded rearranger).
	AllocationRealloc
	// Aging is the long-horizon fragmentation-decay test: create / grow /
	// truncate / delete churn held inside the §2.2 utilization band for
	// days of simulated time, with the free-space shape sampled along the
	// way (Sears & van Ingen's aging methodology). Like the allocation
	// test it measures space, not time, so it runs without disk timing.
	Aging
)

// String implements fmt.Stringer with short identifiers for reports.
func (k TestKind) String() string {
	switch k {
	case Allocation:
		return "alloc"
	case Application:
		return "app"
	case Sequential:
		return "seq"
	case AllocationRealloc:
		return "realloc"
	case Aging:
		return "aging"
	default:
		return fmt.Sprintf("TestKind(%d)", int(k))
	}
}

// ErrCanceled is returned by a run stopped through Config.Cancel before
// its natural termination. Results accompanying it are partial.
var ErrCanceled = errors.New("core: run canceled")

// RunStats reports engine-level counters for one run — the cost of the
// simulation itself, as opposed to the simulated system's results.
type RunStats struct {
	// SimMS is the simulated time reached when the run ended.
	SimMS float64
	// Events is the number of simulator events fired.
	Events uint64
}

// Outcome is the tagged union a declarative Run produces: exactly one of
// Frag, Perf, or Realloc is meaningful, selected by Kind.
type Outcome struct {
	Kind    TestKind
	Frag    FragResult    // Allocation
	Perf    PerfResult    // Application, Sequential
	Realloc ReallocResult // AllocationRealloc
	Aging   AgingResult   // Aging
	Stats   RunStats
	// Metrics is the run's registry (Config.Metrics, finalized); nil when
	// metrics were disabled.
	Metrics *metrics.Registry
}

// Run performs one test of the given kind — the single entry point behind
// RunAllocation, RunApplication, RunSequential, and
// RunAllocationWithReallocation, exposing the engine's run statistics
// alongside the result.
func Run(cfg Config, kind TestKind) (Outcome, error) {
	out := Outcome{Kind: kind}
	var s *Instance
	var err error
	switch kind {
	case Allocation:
		if s, err = newInstance(cfg, allocationTest, nil, 0); err == nil {
			out.Frag, err = s.allocation()
		}
	case Application:
		if s, err = newInstance(cfg, applicationTest, nil, 0); err == nil {
			out.Perf, err = s.perf()
		}
	case Sequential:
		if s, err = newInstance(cfg, sequentialTest, nil, 0); err == nil {
			out.Perf, err = s.perf()
		}
	case AllocationRealloc:
		if s, err = newInstance(cfg, allocationTest, nil, 0); err == nil {
			out.Realloc, err = s.allocationRealloc()
		}
	case Aging:
		if s, err = newInstance(cfg, agingTest, nil, 0); err == nil {
			out.Aging, err = s.aging()
		}
	default:
		return out, fmt.Errorf("core: unknown test kind %d", int(kind))
	}
	if s != nil {
		out.Stats = RunStats{SimMS: s.eng.Now(), Events: s.eng.Fired()}
		s.finalizeMetrics()
		out.Metrics = cfg.Metrics
		err = s.ckptFinish(err)
		if err == nil && s.canceled {
			err = ErrCanceled
		}
	}
	return out, err
}
