package core

import (
	"fmt"
	"strconv"

	"rofs/internal/alloc"
	"rofs/internal/fs"
	"rofs/internal/metrics"
	"rofs/internal/sim"
)

// wireMetrics attaches the session's simulator stack to the run's metrics
// registry: identity labels, per-layer handles, the timeline samplers, and
// the operation-mix counters. With Config.Metrics nil every handle stays
// nil and the instrumentation points reduce to nil checks; the sampling
// tick is never scheduled, so a metrics-off run fires exactly the same
// event sequence as before the registry existed.
func (s *Instance) wireMetrics(kind testKind) {
	reg := s.cfg.Metrics
	if reg == nil {
		return
	}
	reg.SetLabel("policy", s.cfg.Policy.Name())
	reg.SetLabel("workload", s.cfg.Workload.Name)
	reg.SetLabel("test", [...]string{"alloc", "app", "seq", "aging"}[kind])
	reg.SetLabel("seed", strconv.FormatInt(s.cfg.Seed, 10))

	s.dsys.SetMetrics(reg)
	s.fsys.SetMetrics(reg)

	for op, name := range opNames {
		s.mOps[op] = reg.Counter("core.ops." + name)
	}
	s.mAllocFails = reg.Counter("core.alloc_fails")
	s.mLatency = reg.Histogram("core.latency_ms", latencyBounds)

	// Engine timelines: cumulative events fired and instantaneous heap
	// depth at each sampling instant.
	reg.TimelineFunc("sim.events", func() float64 { return float64(s.eng.Fired()) })
	reg.TimelineFunc("sim.heap_depth", func() float64 { return float64(s.eng.Pending()) })

	// Fragmentation timelines — the §3 quantities as they evolve, not just
	// at first failure.
	reg.TimelineFunc("frag.internal_pct", s.fsys.InternalFragPct)
	reg.TimelineFunc("frag.external_pct", s.fsys.ExternalFragPct)
	reg.TimelineFunc("frag.utilization", s.fsys.Utilization)

	// Free-space-shape timelines, only on the aging test — other kinds'
	// bundles keep their existing series set byte for byte.
	if kind == agingTest {
		if fr, ok := s.fsys.Policy().(alloc.FreeSpaceReporter); ok {
			reg.TimelineFunc("frag.free_fragments", func() float64 {
				return float64(fr.FreeSpaceStats().Fragments)
			})
			reg.TimelineFunc("frag.largest_free_units", func() float64 {
				return float64(fr.FreeSpaceStats().LargestUnits)
			})
		}
	}

	// Fault timelines, only when a scenario is armed — fault-free bundles
	// keep their pre-fault series set.
	if s.inj != nil {
		reg.TimelineFunc("fault.degraded", func() float64 {
			if s.dsys.Degraded() {
				return 1
			}
			return 0
		})
		reg.TimelineFunc("fault.rebuilding", func() float64 {
			if s.dsys.Rebuilding() {
				return 1
			}
			return 0
		})
	}

	// Per-drive queue depth and utilization (busy time over elapsed time).
	// One shared StatsInto buffer keeps the per-sample cost to a single
	// bounded refill.
	nd := s.cfg.Disk.NDisks
	depth := make([]*metrics.Timeline, nd)
	util := make([]*metrics.Timeline, nd)
	for i := 0; i < nd; i++ {
		depth[i] = reg.Timeline(fmt.Sprintf("disk.drive.%d.queue_depth", i))
		util[i] = reg.Timeline(fmt.Sprintf("disk.drive.%d.util_pct", i))
	}
	reg.RegisterSampler(func(nowMS float64) {
		s.driveBuf = s.dsys.StatsInto(s.driveBuf)
		for i, ds := range s.driveBuf {
			depth[i].Append(nowMS, float64(ds.QueueLen))
			u := 0.0
			if nowMS > 0 {
				u = 100 * ds.BusyMS / nowMS
			}
			util[i].Append(nowMS, u)
		}
	})
}

// startMetricsTick schedules the self-rescheduling engine event that
// drives timeline sampling at the registry's interval of *simulated* time.
// It is only scheduled when metrics are enabled, so a metrics-off run's
// event sequence — and therefore its seeded results — is untouched.
func (s *Instance) startMetricsTick() {
	reg := s.cfg.Metrics
	if reg == nil {
		return
	}
	interval := reg.IntervalMS()
	var tick sim.Handler
	tick = func(now float64) {
		reg.Sample(now)
		s.eng.After(interval, tick)
	}
	s.eng.After(interval, tick)
}

// finalizeMetrics captures the end-of-run scalars: per-drive service-time
// decomposition, allocator operation counts, metadata footprint, engine
// high-water marks, and workload shape. Called once from Run after the
// test completes (also on error paths that produced a session).
func (s *Instance) finalizeMetrics() {
	reg := s.cfg.Metrics
	if reg == nil {
		return
	}
	reg.Gauge("sim.events_fired").Set(float64(s.eng.Fired()))
	reg.Gauge("sim.heap_max").Set(float64(s.eng.MaxPending()))
	reg.Gauge("sim.end_ms").Set(s.eng.Now())

	for i, ds := range s.dsys.Stats() {
		p := fmt.Sprintf("disk.drive.%d.", i)
		reg.Gauge(p + "busy_ms").Set(ds.BusyMS)
		reg.Gauge(p + "seek_ms").Set(ds.SeekMS)
		reg.Gauge(p + "rot_ms").Set(ds.RotMS)
		reg.Gauge(p + "xfer_ms").Set(ds.TransferMS)
		reg.Gauge(p + "seeks").Set(float64(ds.Seeks))
		reg.Gauge(p + "bytes_read").Set(float64(ds.BytesRead))
		reg.Gauge(p + "bytes_written").Set(float64(ds.BytesWritten))
	}

	if sr, ok := s.fsys.Policy().(alloc.StatsReporter); ok {
		st := sr.OpStats()
		reg.Counter("alloc.allocs").Add(st.Allocs)
		reg.Counter("alloc.frees").Add(st.Frees)
		reg.Counter("alloc.coalesces").Add(st.Coalesces)
	}

	meta := s.fsys.MetaStats(fs.DefaultMetaModel())
	reg.Gauge("fs.meta_bytes").Set(float64(meta.MetaBytes))
	reg.Gauge("fs.files").Set(float64(s.fsys.Files()))
	reg.Gauge("frag.final_internal_pct").Set(s.fsys.InternalFragPct())
	reg.Gauge("frag.final_external_pct").Set(s.fsys.ExternalFragPct())
	reg.Gauge("frag.final_utilization").Set(s.fsys.Utilization())

	var users, types float64
	for _, ft := range s.cfg.Workload.Types {
		users += float64(ft.Users)
		types++
	}
	reg.Gauge("workload.users").Set(users)
	reg.Gauge("workload.types").Set(types)

	reg.Gauge("core.ops_total").Set(float64(s.ops))

	if s.kind == agingTest {
		if fr, ok := s.fsys.Policy().(alloc.FreeSpaceReporter); ok {
			st := fr.FreeSpaceStats()
			reg.Gauge("frag.final_free_fragments").Set(float64(st.Fragments))
			reg.Gauge("frag.final_largest_free_units").Set(float64(st.LargestUnits))
		}
	}

	if s.inj != nil {
		fst := s.dsys.FaultStats(s.eng.Now())
		reg.Gauge("fault.drive_failures").Set(float64(fst.DriveFailures))
		reg.Gauge("fault.transient_errors").Set(float64(fst.TransientErrors))
		reg.Gauge("fault.rebuild_bytes").Set(float64(fst.RebuildBytes))
		reg.Gauge("fault.rebuild_segments").Set(float64(fst.RebuildSegments))
		reg.Gauge("fault.degraded_ms").Set(fst.DegradedMS)
		rst := s.fsys.RetryStats()
		reg.Gauge("fault.retries").Set(float64(rst.Retries))
		reg.Gauge("fault.permanent_errors").Set(float64(rst.PermanentErrors))
	}

	// A final sample closes every timeline at the run's end time, so a run
	// shorter than one interval still exports non-empty series.
	reg.Sample(s.eng.Now())
}
