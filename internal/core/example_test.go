package core_test

import (
	"fmt"

	"rofs/internal/core"
	"rofs/internal/disk"
	"rofs/internal/workload"
)

// tinyDisk keeps the examples fast: two short drives (≈86M).
func tinyDisk() disk.Config {
	cfg := disk.DefaultConfig()
	cfg.NDisks = 2
	cfg.Geometry.Cylinders = 200
	return cfg
}

// ExampleRunAllocation measures fragmentation at the first failed request
// — the paper's §3 allocation test — for the restricted buddy policy on a
// reduced time-sharing workload.
func ExampleRunAllocation() {
	res, err := core.RunAllocation(core.Config{
		Disk:     tinyDisk(),
		Policy:   core.RBuddy(5, 1, true),
		Workload: workload.TimeSharing().Scale(32, 1),
		Seed:     42,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("filled=%v internal=%.1f%% external=%.1f%%\n",
		res.Filled, res.InternalPct, res.ExternalPct)
	// Output:
	// filled=true internal=6.4% external=0.1%
}

// ExampleRunSequential runs the §3 sequential test: after the application
// phase ages the disk, every operation reads or writes an entire file.
func ExampleRunSequential() {
	res, err := core.RunSequential(core.Config{
		Disk:     tinyDisk(),
		Policy:   core.RBuddy(5, 1, true),
		Workload: workload.SuperComputer().Scale(1, 32),
		Seed:     42,
		MaxSimMS: 60_000,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Large files on big multiblock allocations stream near the array's
	// full bandwidth.
	fmt.Printf("high=%v\n", res.Percent > 80)
	// Output:
	// high=true
}

// ExamplePolicySpec_Name shows the policy naming scheme used throughout
// the reports.
func ExamplePolicySpec_Name() {
	fmt.Println(core.Buddy().Name())
	fmt.Println(core.RBuddy(5, 1, true).Name())
	fmt.Println(core.Fixed(4096).Name())
	// Output:
	// buddy
	// rbuddy-5-g1-clus
	// fixed-4K
}
