package core

import (
	"testing"

	"rofs/internal/alloc/extent"
)

func TestRunAllocationWithReallocation(t *testing.T) {
	res, err := RunAllocationWithReallocation(Config{
		Disk:     smallDisk(),
		Policy:   Buddy(),
		Workload: scaledTS(),
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Before.Filled {
		t.Fatal("disk never filled before reallocation")
	}
	if res.Compacted == 0 {
		t.Fatal("nothing compacted")
	}
	// Koch: the rearranger brings buddy internal fragmentation under ~4%.
	if res.After.InternalPct >= res.Before.InternalPct {
		t.Fatalf("reallocation did not help: %.1f%% -> %.1f%%",
			res.Before.InternalPct, res.After.InternalPct)
	}
	if res.After.InternalPct > 4 {
		t.Fatalf("post-reallocation internal %.1f%%, Koch reports <4%%", res.After.InternalPct)
	}
	// The reclaimed space reappears as free space.
	if res.After.ExternalPct <= res.Before.ExternalPct {
		t.Fatal("compaction should free space")
	}
	t.Logf("int %.1f->%.1f ext %.1f->%.1f compacted=%d failed=%d",
		res.Before.InternalPct, res.After.InternalPct,
		res.Before.ExternalPct, res.After.ExternalPct, res.Compacted, res.Failed)
}

func TestReallocationNoopForPoliciesWithoutCompactor(t *testing.T) {
	res, err := RunAllocationWithReallocation(Config{
		Disk:     smallDisk(),
		Policy:   Extent(extent.FirstFit, scaledRanges("TS", 3, 1)),
		Workload: scaledTS(),
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compacted != 0 || res.Failed != 0 {
		t.Fatal("extent files should not be compacted")
	}
	if res.After.InternalPct != res.Before.InternalPct {
		t.Fatal("no-op reallocation changed fragmentation")
	}
}

func TestFixedOrderedSpec(t *testing.T) {
	spec := FixedOrdered(4096)
	if spec.Name() != "fixed-4K-sorted" {
		t.Fatalf("Name = %q", spec.Name())
	}
	res, err := RunAllocation(Config{
		Disk:     smallDisk(),
		Policy:   spec,
		Workload: scaledTS(),
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Filled {
		t.Fatal("address-ordered fixed policy never filled")
	}
}

func TestHotSkewSelection(t *testing.T) {
	// A skewed TP variant runs and completes (exercises pickFile's Zipf
	// path); its throughput is positive.
	wl := scaledTP()
	wl.Types[0].HotSkew = 2.0
	res, err := RunApplication(Config{
		Disk:     smallDisk(),
		Policy:   RBuddy(5, 1, true),
		Workload: wl,
		Seed:     11,
		MaxSimMS: 30_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Percent <= 0 {
		t.Fatal("skewed run produced no throughput")
	}
}

func TestDegradedConfigRejectedOnStriped(t *testing.T) {
	_, err := RunApplication(Config{
		Disk:     smallDisk(), // striped
		Policy:   RBuddy(5, 1, true),
		Workload: scaledTS(),
		Seed:     1,
		Degraded: true,
	})
	if err == nil {
		t.Fatal("degraded mode accepted on a striped array")
	}
}
