package core

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"rofs/internal/ckpt"
	"rofs/internal/disk"
	"rofs/internal/fault"
	"rofs/internal/fs"
	"rofs/internal/metrics"
	"rofs/internal/sim"
	"rofs/internal/stats"
	"rofs/internal/trace"
	"rofs/internal/units"
	"rofs/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	Disk     disk.Config
	Policy   PolicySpec
	Workload workload.Workload
	Seed     int64

	// Utilization bounds of §3 (defaults 0.90 / 0.95): measurement starts
	// at LowerUtil; extends above UpperUtil become truncates.
	LowerUtil, UpperUtil float64

	// Stabilization rule of §2.2 (defaults: 10 s windows, 0.1 percentage
	// points, 3 consecutive windows).
	WindowMS      float64
	TolerancePct  float64
	StableWindows int

	// MaxSimMS caps a throughput run that never stabilizes (default 600 s
	// simulated); the overall average is reported instead.
	MaxSimMS float64

	// MaxOps caps an allocation test that never fills the disk (default
	// 20 million operations).
	MaxOps int64

	// ChunkBytes is the streaming chunk for whole-file transfers in the
	// sequential test (default 2M).
	ChunkBytes int64

	// TraceWriter, when set, receives a tab-separated event trace: one
	// "op" record per completed operation and one "seg" record per disk
	// segment serviced (see internal/trace).
	TraceWriter io.Writer

	// Metrics, when set, collects the run's counters, gauges, histograms,
	// and simulated-time timelines (see internal/metrics). Nil — the
	// default — disables all metric work; enabling metrics schedules the
	// sampling tick into the engine, so a metrics-on run's event sequence
	// (still deterministic per seed) differs from a metrics-off run's.
	Metrics *metrics.Registry

	// Degraded fails drive 0 before the run (RAID-5 only): reads
	// reconstruct from the survivors, writes update parity alone.
	Degraded bool

	// Faults, when enabled, injects the declared fault scenario into the
	// run: seeded drive failures, transient media errors, hot-spare
	// rebuild, and bounded retry-with-backoff (see internal/fault). It
	// applies to the timing tests only — the allocation test measures
	// space, not time, and ignores it. The fault RNG is dedicated, so
	// enabling faults never perturbs the workload's draw sequence.
	Faults fault.Scenario

	// Cancel, when non-nil, is polled between operations: once it is
	// closed the run stops early and reports ErrCanceled. It is how the
	// runner's pool propagates context cancellation and timeouts into a
	// simulation without threading a context through the hot path.
	Cancel <-chan struct{}

	// Checkpoint, when non-nil with a positive EveryMS, arms verified
	// checkpoint/resume: a boundary event fires every EveryMS of
	// simulated time, fingerprints the run, and feeds the hook (see
	// internal/ckpt). Like Metrics, arming schedules engine events, so
	// an armed run's event sequence differs from an unarmed one's — the
	// runner folds the grid into the cache key.
	Checkpoint *ckpt.Hook
}

func (c *Config) setDefaults() error {
	if c.Disk.NDisks == 0 {
		c.Disk = disk.DefaultConfig()
	}
	if err := c.Disk.Validate(); err != nil {
		return err
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Degraded {
		// Legacy alias: Degraded predates the fault layer and always meant
		// "drive 0 dead before the run". It now just sets the scenario's
		// PreFail path, so there is exactly one mechanism that fails drives.
		c.Faults.PreFail = true
		c.Faults.FailDrive = 0
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.LowerUtil == 0 {
		c.LowerUtil = 0.90
	}
	if c.UpperUtil == 0 {
		c.UpperUtil = 0.95
	}
	if c.LowerUtil <= 0 || c.UpperUtil <= c.LowerUtil || c.UpperUtil > 1 {
		return fmt.Errorf("core: bad utilization bounds [%g, %g]", c.LowerUtil, c.UpperUtil)
	}
	if c.WindowMS == 0 {
		c.WindowMS = 10_000
	}
	if c.TolerancePct == 0 {
		c.TolerancePct = 0.1
	}
	if c.StableWindows == 0 {
		c.StableWindows = 3
	}
	if c.MaxSimMS == 0 {
		c.MaxSimMS = 600_000
	}
	if c.MaxOps == 0 {
		c.MaxOps = 20_000_000
	}
	if c.ChunkBytes == 0 {
		// The read-optimized policies stream large transfers (read-ahead /
		// write-behind across big blocks). The fixed-block baseline "does
		// not bias towards automatic striping or contiguous layout" (§5):
		// it issues one block at a time, so concurrent streams interleave
		// at block granularity.
		if c.Policy.Kind == "fixed" && c.Policy.BlockBytes > 0 {
			c.ChunkBytes = c.Policy.BlockBytes
		} else {
			c.ChunkBytes = 2 * units.MB
		}
	}
	return nil
}

// testKind selects which of the §3 tests an instance runs.
type testKind int

const (
	allocationTest testKind = iota
	applicationTest
	sequentialTest
	agingTest
)

// spaceOnly reports whether the kind measures space rather than time: the
// disk system is detached (operations complete immediately), latency is
// meaningless, and faults — a timing phenomenon — do not apply.
func (k testKind) spaceOnly() bool {
	return k == allocationTest || k == agingTest
}

// Instance is one live simulated file server: disk array, allocation
// policy, file system, and the per-file-type populations — everything
// that was the old one-run "session", minus the assumption that it owns
// the engine. A plain run drives one Instance on a private engine; a
// cluster Deployment drives N of them inside one shared engine, each with
// its own RNG stream derived from Seed and the instance index.
type Instance struct {
	cfg  Config
	kind testKind
	idx  int   // instance index within a fleet (0 for plain runs)
	seed int64 // effective seed (Config.Seed + idx stride)

	eng  *sim.Engine
	rng  *sim.RNG
	dsys *disk.System
	fsys *fs.FileSystem
	inj  *fault.Injector // nil unless Config.Faults is enabled

	types   []*typeState
	tracker *stats.ThroughputTracker
	tracer  *trace.Tracer

	comp *compactor // log-structured overlay; nil unless armed

	ops        int64
	allocFails int64
	latency    stats.Welford    // per-operation completion latency (ms)
	latencyH   *stats.Histogram // for tail quantiles
	pickBuf    [4]float64       // weight scratch for pickOp (no per-op slice)

	// Open-loop dispatch state: pooled arrival operations and the live
	// count a router's load snapshots read. Closed-loop runs never touch
	// these.
	freeOps      []*userOp
	inFlightOpen int
	onOpDone     func(in *Instance, now, latencyMS float64)

	// onStable, when non-nil, replaces the default stop-the-engine
	// reaction to throughput stabilization — a fleet stops only when every
	// instance is stable, so the Deployment installs a counter here.
	onStable func()

	// Metrics handles (nil when Config.Metrics is nil; see metrics.go).
	mOps        [len(opNames)]*metrics.Counter
	mAllocFails *metrics.Counter
	mLatency    *metrics.Hist
	driveBuf    []disk.DriveStats // sampler scratch
	// Allocation-test termination state.
	diskFull bool
	fullAtMS float64
	internal float64
	external float64

	// canceled records that Config.Cancel fired mid-run.
	canceled bool

	// Checkpoint state (see ckpt.go): boundary ordinal, first boundary
	// error, and whether the resume target verified.
	ckptSeq      int64
	ckptErr      error
	ckptVerified bool
}

// checkCancel polls Config.Cancel every strideth call (counted by *n); on
// cancellation it records the fact, stops the engine, and reports true.
func (s *Instance) checkCancel(n int64, stride int64) bool {
	if s.canceled {
		return true
	}
	if s.cfg.Cancel == nil || n%stride != 0 {
		return false
	}
	select {
	case <-s.cfg.Cancel:
		s.canceled = true
		s.eng.Stop()
		return true
	default:
		return false
	}
}

type typeState struct {
	ft    workload.FileType
	files []*fs.File
	zipf  *rand.Zipf // hot-file selector when ft.HotSkew > 1
}

// pickFile selects the file a request targets: uniform (the paper's
// model), or Zipf-ranked when the type declares hot files.
func (s *Instance) pickFile(ts *typeState) *fs.File {
	if ts.ft.HotSkew > 1 && len(ts.files) > 1 {
		if ts.zipf == nil {
			ts.zipf = s.rng.NewZipf(ts.ft.HotSkew, 1<<30)
		}
		return ts.files[int(ts.zipf.Uint64()%uint64(len(ts.files)))]
	}
	return ts.files[s.rng.Intn(len(ts.files))]
}

// latencyBounds are the histogram bucket boundaries (ms) used for
// operation-latency quantiles: roughly log-spaced from one rotation to
// minutes.
var latencyBounds = []float64{5, 10, 20, 35, 50, 75, 100, 150, 250, 400, 650,
	1000, 2000, 4000, 8000, 16000, 32000, 64000, 120000}

// instanceSeedStride separates fleet members' RNG streams: instance i
// seeds at Seed + i*stride. A large odd constant keeps nearby base seeds'
// fleets from colliding; index 0 leaves Seed untouched, so a plain run and
// fleet member 0 draw identical streams.
const instanceSeedStride = 1_000_003

// newInstance builds the simulator stack for fleet slot idx on the given
// engine (nil: the instance owns a fresh engine, the plain-run case).
// Throughput tests attach the disk system to the file system; the
// allocation test runs without disk timing (operations complete
// immediately) since it measures space, not time.
func newInstance(cfg Config, kind testKind, eng *sim.Engine, idx int) (*Instance, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if eng == nil {
		eng = &sim.Engine{}
	}
	seed := cfg.Seed + int64(idx)*instanceSeedStride
	s := &Instance{cfg: cfg, kind: kind, idx: idx, seed: seed, eng: eng, rng: sim.NewRNG(seed)}
	if !kind.spaceOnly() {
		s.latencyH = stats.NewHistogram(latencyBounds)
	}
	dsys, err := disk.New(cfg.Disk, s.eng)
	if err != nil {
		return nil, err
	}
	s.dsys = dsys
	if cfg.Faults.PreFail {
		// The one way to start a run with a dead drive: the legacy
		// Config.Degraded flag is folded into Faults.PreFail by setDefaults.
		if err := dsys.FailDrive(cfg.Faults.FailDrive); err != nil {
			return nil, err
		}
	}
	if cfg.TraceWriter != nil {
		s.tracer = trace.New(cfg.TraceWriter)
		// Span-enriched "seg" records: the original fields stay in place
		// (old analyzers parse them unchanged), the lifecycle phases ride
		// along as extra k=v tokens.
		dsys.SetSpanTrace(func(sp disk.Span) {
			op := "r"
			if sp.Write {
				op = "w"
			}
			s.tracer.Recordf(sp.StartMS, "seg",
				"disk=%d %s start=%d n=%d svc=%.3f wait=%.3f seek=%.3f rot=%.3f xfer=%.3f",
				sp.Disk, op, sp.Start, sp.N, sp.ServiceMS,
				sp.WaitMS, sp.SeekMS, sp.RotMS, sp.XferMS)
		})
	}
	policy, err := cfg.Policy.Build(dsys.Units(), dsys.UnitBytes(), s.rng)
	if err != nil {
		return nil, err
	}
	attached := dsys
	if kind.spaceOnly() {
		attached = nil
	}
	fsys, err := fs.New(policy, attached, dsys.UnitBytes())
	if err != nil {
		return nil, err
	}
	s.fsys = fsys
	if cfg.Faults.Enabled() && !kind.spaceOnly() {
		inj, err := fault.NewInjector(cfg.Faults, seed, dsys, fsys)
		if err != nil {
			return nil, err
		}
		s.inj = inj
	}
	if cfg.Workload.Compact != nil {
		// The overlay needs real drive traffic and a throughput phase; the
		// space-only and sequential kinds have neither use for it.
		if kind != applicationTest {
			return nil, fmt.Errorf("core: compaction overlay requires the application test, not the %s test",
				[...]string{"alloc", "app", "seq", "aging"}[kind])
		}
		s.comp = newCompactor(s)
	}
	s.wireMetrics(kind)
	s.startMetricsTick()
	s.startCkptTick()
	return s, nil
}

// drawInitialSize samples a file's initial size: uniform around the
// type's mean (§2.2), rounded to whole disk units — the granularity the
// simulated file sizes live at, like the sector-granular sizes of the
// paper's simulator.
func (s *Instance) drawInitialSize(ft *workload.FileType) int64 {
	size := s.rng.SizeUniform(float64(ft.InitialBytes), float64(ft.InitialDevBytes), 0)
	return units.RoundUp(size, s.fsys.UnitBytes())
}

// initFiles runs the paper's second initialization phase: each file is
// created and grown to a size drawn uniformly around its type's initial
// size (§2.2). It reports whether the disk filled during initialization.
func (s *Instance) initFiles() bool {
	for i := range s.cfg.Workload.Types {
		ft := s.cfg.Workload.Types[i]
		ts := &typeState{ft: ft}
		for n := 0; n < ft.Files; n++ {
			f := s.fsys.Create(ft.AllocSizeBytes)
			size := s.drawInitialSize(&ft)
			if err := f.Allocate(size); err != nil {
				s.markFull(0)
				return true
			}
			if ft.Pattern == workload.Sequential && f.Length() > 0 {
				f.SetCursor(s.rng.Int63n(f.Length()))
			}
			ts.files = append(ts.files, f)
		}
		s.types = append(s.types, ts)
	}
	return false
}

// fill pushes utilization up to the lower measurement bound by growing
// randomly chosen files without disk traffic — the §3 precondition that
// "the disks are at least 90% full" when measurement begins.
func (s *Instance) fill() {
	target := s.cfg.LowerUtil
	for n := int64(1); s.fsys.Utilization() < target; n++ {
		if s.checkCancel(n, 512) {
			return
		}
		ts := s.types[s.rng.Intn(len(s.types))]
		f := ts.files[s.rng.Intn(len(ts.files))]
		grow := ts.ft.AllocSizeBytes
		if grow <= 0 {
			grow = ts.ft.RWSizeBytes
		}
		if err := f.Allocate(grow); err != nil {
			return // cannot fill further; run with what we have
		}
	}
}

// markFull records the allocation-test termination state: fragmentation is
// measured "as soon as the first allocation request fails" (§3).
func (s *Instance) markFull(now float64) {
	if s.diskFull {
		return
	}
	s.diskFull = true
	s.fullAtMS = now
	s.internal = s.fsys.InternalFragPct()
	s.external = s.fsys.ExternalFragPct()
	s.eng.Stop()
}

// scheduleUsers creates the per-type event streams (the paper's first
// initialization phase): each of the type's Users streams fires first at a
// time uniform in [0, Users·HitFrequency] and then ProcessTime-spaced.
func (s *Instance) scheduleUsers() {
	for _, ts := range s.types {
		horizon := float64(ts.ft.Users) * ts.ft.HitFreqMS
		for u := 0; u < ts.ft.Users; u++ {
			uo := newUserOp(s, ts)
			s.eng.At(s.rng.Uniform(0, math.Max(horizon, 1)), uo.fire)
		}
	}
}

// userOp is one user stream's reusable operation state. A user stream is
// strictly sequential — issue an operation, wait for its completion, think,
// issue the next — so each stream owns exactly one in-flight operation and
// one of these structs for the session's lifetime. Its continuations are
// built once at creation and recycled through the engine's completion
// path, replacing the per-operation closure chains doOp/stream used to
// capture: steady-state operation dispatch allocates nothing.
type userOp struct {
	s  *Instance
	ts *typeState

	// In-flight operation state.
	f        *fs.File
	op       opKind
	issued   float64 // clock at issue, for latency accounting
	pos, end int64   // streaming-transfer window [pos, end)
	inFlight int64   // bytes of the chunk (or extend) at the disk
	write    bool

	// Open-loop arrivals reuse the same struct through the instance's free
	// list: open marks the mode (complete releases instead of
	// rescheduling), forced carries a trace-dictated operation (-1: draw
	// from the mix). Closed-loop streams never read either field.
	open   bool
	forced opKind

	// Continuations, built once per user: fire issues the next operation;
	// chunkDone advances a streaming transfer; extendDone completes an
	// extend's write-out.
	fire       sim.Handler
	chunkDone  func(now float64)
	extendDone func(now float64)
}

// newUserOp builds a user stream's operation state and its continuations.
func newUserOp(s *Instance, ts *typeState) *userOp {
	u := &userOp{s: s, ts: ts, forced: -1}
	u.fire = func(float64) { s.doOp(u) }
	u.chunkDone = u.onChunk
	u.extendDone = u.onExtend
	return u
}

// opNames label operations in the event trace.
var opNames = [...]string{"read", "write", "extend", "dealloc", "create"}

// complete finishes the in-flight operation at simulated time now — trace
// record, latency accounting, and the think-time reschedule, in the same
// order the former closure chain composed them.
func (u *userOp) complete(now float64) {
	s := u.s
	if s.tracer != nil {
		s.tracer.Recordf(now, "op", "%s type=%s len=%d lat=%.3f",
			opNames[u.op], u.ts.ft.Name, u.f.Length(), now-u.issued)
	}
	s.mOps[u.op].Inc()
	if !s.kind.spaceOnly() {
		s.latency.Add(now - u.issued)
		if s.latencyH != nil {
			s.latencyH.Add(now - u.issued)
		}
		s.mLatency.Observe(now - u.issued)
	}
	if u.open {
		// Open-loop arrival: no think-time reschedule — release the op to
		// the free list and notify the dispatcher (load source or cluster
		// deployment) that a slot drained.
		lat := now - u.issued
		u.f = nil
		s.inFlightOpen--
		s.freeOps = append(s.freeOps, u)
		if s.onOpDone != nil {
			s.onOpDone(s, now, lat)
		}
		return
	}
	s.eng.After(s.rng.Exp(u.ts.ft.ProcessTimeMS), u.fire)
}

// startStream begins a chunked transfer of [off, off+n) — the pipeline of
// chunk-sized requests issued back to back that models read-ahead /
// write-behind (large chunks for the multiblock policies, one block for
// the fixed baseline, so concurrent streams interleave at block
// granularity and pay Figure 6's seeks). A zero-length transfer completes
// immediately.
func (u *userOp) startStream(off, n int64, write bool) {
	if n <= 0 {
		u.complete(u.s.eng.Now())
		return
	}
	u.pos, u.end, u.write = off, off+n, write
	u.issueChunk()
}

// issueChunk submits the next chunk of the in-flight transfer.
func (u *userOp) issueChunk() {
	chunk := u.s.cfg.ChunkBytes
	if u.pos+chunk > u.end {
		chunk = u.end - u.pos
	}
	u.inFlight = chunk
	if u.write {
		u.f.Write(u.pos, chunk, u.chunkDone)
	} else {
		u.f.Read(u.pos, chunk, u.chunkDone)
	}
}

// onChunk is the chunk-completion continuation: feed the throughput
// tracker as bytes move (not in one lump per operation), then issue the
// next chunk or complete the operation.
func (u *userOp) onChunk(now float64) {
	if s := u.s; s.tracker != nil {
		s.tracker.Record(now, u.inFlight)
	}
	u.pos += u.inFlight
	if u.pos >= u.end {
		u.complete(now)
	} else {
		u.issueChunk()
	}
}

// onExtend is the extend completion: the appended bytes were issued as one
// request and feed the tracker as one transfer.
func (u *userOp) onExtend(now float64) {
	if s := u.s; s.tracker != nil {
		s.tracker.Record(now, u.inFlight)
	}
	u.complete(now)
}

// opKind enumerates the simulated operations.
type opKind int

const (
	opRead opKind = iota
	opWrite
	opExtend
	opDealloc
	opCreate
)

// pickOp draws an operation for the session's test kind: the allocation
// test performs "only the extend, truncate, delete, and create operations
// in the proportion as expressed by the file type parameters" (§3); the
// sequential test performs only reads and writes.
func (s *Instance) pickOp(ft *workload.FileType) opKind {
	switch s.kind {
	case allocationTest, agingTest:
		// "Only the extend, truncate, delete, and create operations in the
		// proportion as expressed by the file type parameters" (§3).
		// Creates run at the delete rate and add brand-new files, so the
		// population — and with it the disk — grows until the first
		// request fails, while deletes and truncates age the free space.
		dealloc := ft.DeallocPct()
		del := dealloc * ft.DeletePct / 100
		if ft.ExtendPct == 0 && dealloc == 0 {
			return opExtend // a type that never allocates still drives growth
		}
		s.pickBuf[0], s.pickBuf[1], s.pickBuf[2] = ft.ExtendPct, dealloc, del
		switch s.rng.Pick(s.pickBuf[:3]) {
		case 0:
			return opExtend
		case 1:
			return opDealloc // split into truncate vs delete in doOp
		default:
			return opCreate
		}
	case sequentialTest:
		rw := ft.ReadPct + ft.WritePct
		if rw == 0 {
			return opRead
		}
		s.pickBuf[0], s.pickBuf[1] = ft.ReadPct, ft.WritePct
		if s.rng.Pick(s.pickBuf[:2]) == 0 {
			return opRead
		}
		return opWrite
	default:
		s.pickBuf[0], s.pickBuf[1], s.pickBuf[2], s.pickBuf[3] =
			ft.ReadPct, ft.WritePct, ft.ExtendPct, ft.DeallocPct()
		switch s.rng.Pick(s.pickBuf[:4]) {
		case 0:
			return opRead
		case 1:
			return opWrite
		case 2:
			return opExtend
		default:
			return opDealloc
		}
	}
}

// doOp executes one operation for a random file of the user's type; the
// user's continuations carry it to its simulated completion.
func (s *Instance) doOp(u *userOp) {
	s.ops++
	if s.kind.spaceOnly() && s.ops > s.cfg.MaxOps {
		s.eng.Stop()
		return
	}
	if s.checkCancel(s.ops, 512) {
		return
	}
	ts := u.ts
	ft := &ts.ft
	u.issued = s.eng.Now()
	f := s.pickFile(ts)
	var op opKind
	if u.open && u.forced >= 0 {
		op = u.forced // trace-dictated operation
	} else {
		op = s.pickOp(ft)
	}

	// Reads and writes of an empty file become extends; the file was
	// deleted earlier and regrows.
	if (op == opRead || op == opWrite) && f.Length() == 0 {
		op = opExtend
	}
	// The §2.2 band keeping ("the disk utilization is kept between N and
	// M while measurements are being taken"): an extend above the ceiling
	// becomes a truncate, and a deallocation below the floor becomes an
	// extend.
	if s.kind != allocationTest {
		switch util := s.fsys.Utilization(); {
		case (op == opExtend || op == opCreate) && util > s.cfg.UpperUtil:
			// Creates are in the mix only on the aging test, whose churn
			// must stay inside the band instead of growing until full.
			op = opDealloc
		case op == opDealloc && util < s.cfg.LowerUtil:
			op = opExtend
		}
	}
	u.f, u.op = f, op

	switch op {
	case opRead, opWrite:
		if s.kind == sequentialTest {
			u.startStream(0, f.Length(), op == opWrite)
			return
		}
		size := s.rng.SizeNormal(float64(ft.RWSizeBytes), float64(ft.RWDevBytes), 1)
		if size > f.Length() {
			size = f.Length()
		}
		off := s.offsetFor(ft, f, size)
		u.startStream(off, size, op == opWrite)
	case opExtend:
		size := ft.ExtendSize()
		if s.kind == allocationTest {
			if err := f.Allocate(size); err != nil {
				s.markFull(s.eng.Now())
				return
			}
			u.complete(s.eng.Now())
			return
		}
		if s.kind == agingTest {
			// Aging churns space without disk timing; a failed grow is the
			// §2.2 disk-full condition — log it and carry on, the band
			// keeping above pulls utilization back down.
			if err := f.Allocate(size); err != nil {
				s.allocFails++
				s.mAllocFails.Inc()
			}
			u.complete(s.eng.Now())
			return
		}
		u.inFlight = size
		if err := f.Extend(size, u.extendDone); err != nil {
			s.allocFails++ // disk full: log and reschedule (§2.2)
			s.mAllocFails.Inc()
			u.complete(s.eng.Now())
		}
	case opCreate:
		nf := s.fsys.Create(ft.AllocSizeBytes)
		size := s.drawInitialSize(ft)
		if err := nf.Allocate(size); err != nil {
			if s.kind != agingTest {
				s.markFull(s.eng.Now())
				return
			}
			s.allocFails++
			s.mAllocFails.Inc()
			nf.Delete()
			u.complete(s.eng.Now())
			return
		}
		ts.files = append(ts.files, nf)
		u.complete(s.eng.Now())
	case opDealloc:
		if s.rng.Float64()*100 < ft.DeletePct {
			f.Recreate()
			size := s.drawInitialSize(ft)
			if err := f.Allocate(size); err != nil {
				if s.kind == allocationTest {
					s.markFull(s.eng.Now())
					return
				}
				s.allocFails++
				s.mAllocFails.Inc()
			}
		} else {
			f.Truncate(ft.TruncateBytes)
		}
		u.complete(s.eng.Now())
	}
}

// offsetFor picks the read/write offset: uniform over size-aligned pages
// for random-pattern files (a database reads aligned pages, which also
// keeps an 8K access inside one stripe unit), cursor-advancing for
// sequential ones.
func (s *Instance) offsetFor(ft *workload.FileType, f *fs.File, size int64) int64 {
	if f.Length() <= size {
		return 0
	}
	if ft.Pattern == workload.Random {
		pages := f.Length() / size
		return s.rng.Int63n(pages) * size
	}
	off := f.Cursor()
	if off+size > f.Length() {
		off = 0
	}
	f.SetCursor(off + size)
	return off
}

// startTracker arms throughput measurement and the 1-second tick that
// closes idle windows and stops the run at stabilization. Starting a new
// tracker supersedes any previous phase's tick chain.
func (s *Instance) startTracker() {
	tr := stats.NewThroughputTracker(
		s.cfg.WindowMS, s.dsys.MaxBandwidth(), s.cfg.TolerancePct, s.cfg.StableWindows)
	s.tracker = tr
	tr.Start(s.eng.Now())
	if s.comp != nil {
		s.comp.start(s.eng.Now())
	}
	var tick sim.Handler
	tick = func(now float64) {
		if s.tracker != tr {
			return // a later measurement phase owns the tick now
		}
		tr.Tick(now)
		if tr.Stable() {
			// Plain runs stop the engine; a fleet member instead reports to
			// its Deployment, which stops only when every instance is stable.
			if s.onStable != nil {
				s.onStable()
			} else {
				s.eng.Stop()
			}
			return
		}
		s.eng.After(1000, tick)
	}
	s.eng.After(1000, tick)
}
