// Package sim provides the event-driven simulation engine and the seeded
// random distributions behind the paper's stochastic workload model (§2).
//
// The engine is a classic discrete-event loop: a priority queue of events
// ordered by simulated time (milliseconds, float64), a clock that jumps to
// each event's firing time, and a run loop with pluggable stop conditions.
// Everything is deterministic for a fixed seed: ties in firing time are
// broken by scheduling order.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Handler is an event callback. It runs with the clock set to the event's
// firing time and may schedule further events.
type Handler func(now float64)

type event struct {
	at  float64
	seq uint64
	fn  Handler
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now     float64
	seq     uint64
	queue   eventHeap
	stopped bool
	fired   uint64
}

// Now returns the current simulated time in milliseconds.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events fired so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to fire at absolute simulated time at. Scheduling in the
// past panics — it always indicates a modelling bug.
func (e *Engine) At(at float64, fn Handler) {
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %.3f before now %.3f", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to fire delay milliseconds from now.
func (e *Engine) After(delay float64, fn Handler) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %.3f", delay))
	}
	e.At(e.now+delay, fn)
}

// Stop makes Run return after the currently firing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run fires events in time order until the queue drains, Stop is called,
// or the clock passes untilMS (exclusive; pass +Inf for no limit). It
// returns the simulated time at exit. A NaN horizon panics — every
// comparison against NaN is false, so the horizon would silently never
// bound the run; like past scheduling, it always indicates a modelling
// bug.
func (e *Engine) Run(untilMS float64) float64 {
	if math.IsNaN(untilMS) {
		panic("sim: Run horizon is NaN")
	}
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > untilMS {
			// Leave the event queued; advance the clock to the horizon so
			// repeated Run calls with growing horizons behave sensibly.
			e.now = untilMS
			return e.now
		}
		heap.Pop(&e.queue)
		e.now = next.at
		e.fired++
		next.fn(e.now)
	}
	return e.now
}

// Drain discards all pending events (used between experiment phases).
func (e *Engine) Drain() {
	e.queue = e.queue[:0]
}
