// Package sim provides the event-driven simulation engine and the seeded
// random distributions behind the paper's stochastic workload model (§2).
//
// The engine is a classic discrete-event loop: a priority queue of events
// ordered by simulated time (milliseconds, float64), a clock that jumps to
// each event's firing time, and a run loop with pluggable stop conditions.
// Everything is deterministic for a fixed seed: ties in firing time are
// broken by scheduling order.
//
// The queue is a value-typed 4-ary min-heap ordered by (time, seq). Events
// are stored by value in one backing array, so scheduling an event performs
// no per-event heap allocation and firing one performs no interface boxing
// — the steady-state event loop allocates nothing. Because (time, seq) is a
// total order, pop order is independent of heap shape and arity: results
// are byte-identical to the earlier container/heap implementation.
package sim

import (
	"fmt"
	"math"
)

// Handler is an event callback. It runs with the clock set to the event's
// firing time and may schedule further events.
type Handler func(now float64)

type event struct {
	at  float64
	seq uint64
	fn  Handler
}

// less orders events by firing time, ties broken by scheduling order. It
// defines a total order, so the heap's pop sequence is unique.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now        float64
	seq        uint64
	queue      []event // 4-ary min-heap by (at, seq)
	stopped    bool
	fired      uint64
	maxPending int
}

// Now returns the current simulated time in milliseconds.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events fired so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.queue) }

// MaxPending returns the deepest the event heap has ever been — the
// engine's high-water mark, surfaced by the metrics registry.
func (e *Engine) MaxPending() int { return e.maxPending }

// At schedules fn to fire at absolute simulated time at. Scheduling in the
// past panics — it always indicates a modelling bug.
func (e *Engine) At(at float64, fn Handler) {
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %.3f before now %.3f", at, e.now))
	}
	e.seq++
	e.push(event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to fire delay milliseconds from now.
func (e *Engine) After(delay float64, fn Handler) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %.3f", delay))
	}
	e.At(e.now+delay, fn)
}

// push appends ev and sifts it up. The loop moves parents down into the
// hole rather than swapping, so each level costs one copy.
func (e *Engine) push(ev event) {
	q := append(e.queue, ev)
	if len(q) > e.maxPending {
		e.maxPending = len(q)
	}
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !less(&ev, &q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = ev
	e.queue = q
}

// pop removes and returns the minimum event, zeroing the vacated slot so
// the backing array does not pin the fired handler.
func (e *Engine) pop() event {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = event{}
	q = q[:n]
	e.queue = q
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			m := c
			hi := c + 4
			if hi > n {
				hi = n
			}
			for j := c + 1; j < hi; j++ {
				if less(&q[j], &q[m]) {
					m = j
				}
			}
			if !less(&q[m], &last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	return top
}

// Stop makes Run return after the currently firing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run fires events in time order until the queue drains, Stop is called,
// or the clock passes untilMS (exclusive; pass +Inf for no limit). It
// returns the simulated time at exit. A NaN horizon panics — every
// comparison against NaN is false, so the horizon would silently never
// bound the run; like past scheduling, it always indicates a modelling
// bug.
func (e *Engine) Run(untilMS float64) float64 {
	if math.IsNaN(untilMS) {
		panic("sim: Run horizon is NaN")
	}
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > untilMS {
			// Leave the event queued; advance the clock to the horizon so
			// repeated Run calls with growing horizons behave sensibly.
			e.now = untilMS
			return e.now
		}
		ev := e.pop()
		e.now = ev.at
		e.fired++
		ev.fn(e.now)
	}
	return e.now
}

// RunUntil fires events in time order through untilMS inclusive and then
// advances the clock to exactly untilMS, even if the queue drained earlier
// or never held an event in the window. It is the windowed-run entry point
// for conservative-lookahead parallel execution: a coordinator advances a
// set of engines window by window, and every engine must land on the same
// boundary so cross-engine exchanges (routed arrivals, load snapshots,
// metrics samples) happen at one well-defined simulated time. Stop still
// exits immediately, leaving the clock at the stopping event (the caller
// observes the early exit via the return value). Like Run, a NaN horizon
// panics; so does a horizon before now — a coordinator must only move
// time forward.
func (e *Engine) RunUntil(untilMS float64) float64 {
	if math.IsNaN(untilMS) {
		panic("sim: RunUntil horizon is NaN")
	}
	if untilMS < e.now {
		panic(fmt.Sprintf("sim: RunUntil horizon %.3f before now %.3f", untilMS, e.now))
	}
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > untilMS {
			break
		}
		ev := e.pop()
		e.now = ev.at
		e.fired++
		ev.fn(e.now)
	}
	if !e.stopped {
		e.now = untilMS
	}
	return e.now
}

// Drain discards all pending events (used between experiment phases). The
// backing array is zeroed before truncation so it does not keep the
// discarded events' handlers — and whatever state they captured —
// reachable across phases.
func (e *Engine) Drain() {
	for i := range e.queue {
		e.queue[i] = event{}
	}
	e.queue = e.queue[:0]
}
