package sim

import (
	"math"
	"testing"
)

func TestUniformRange(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := g.Uniform(5, 15)
		if v < 5 || v >= 15 {
			t.Fatalf("Uniform out of range: %g", v)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	g := NewRNG(1)
	if v := g.Uniform(3, 3); v != 3 {
		t.Fatalf("Uniform(3,3) = %g", v)
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(2)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		v := g.Exp(30)
		if v < 0 {
			t.Fatalf("Exp returned negative %g", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-30) > 0.5 {
		t.Fatalf("Exp mean = %g, want ~30", mean)
	}
	if g.Exp(0) != 0 {
		t.Fatal("Exp(0) != 0")
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(3)
	var sum, sumSq float64
	n := 200000
	for i := 0; i < n; i++ {
		v := g.Normal(100, 10)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean-100) > 0.2 {
		t.Fatalf("Normal mean = %g", mean)
	}
	if math.Abs(sd-10) > 0.2 {
		t.Fatalf("Normal sd = %g", sd)
	}
}

func TestSizeNormalTruncation(t *testing.T) {
	g := NewRNG(4)
	for i := 0; i < 10000; i++ {
		v := g.SizeNormal(8192, 4096, 1024)
		if v < 1024 {
			t.Fatalf("SizeNormal below min: %d", v)
		}
	}
	// Pathological: mean far below min should clamp, not spin.
	if v := g.SizeNormal(-1e9, 1, 512); v != 512 {
		t.Fatalf("pathological SizeNormal = %d, want clamp to 512", v)
	}
}

func TestSizeUniformTruncation(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := g.SizeUniform(8192, 4096, 1)
		if v < 4096-1 || v > 8192+4096+1 {
			t.Fatalf("SizeUniform out of range: %d", v)
		}
	}
	if v := g.SizeUniform(0, 0, 100); v != 100 {
		t.Fatalf("SizeUniform min clamp = %d", v)
	}
}

func TestPickProportions(t *testing.T) {
	g := NewRNG(6)
	weights := []float64{60, 30, 7, 3} // the TP relation op mix
	counts := make([]int, len(weights))
	n := 100000
	for i := 0; i < n; i++ {
		counts[g.Pick(weights)]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / float64(n) * 100
		if math.Abs(got-w) > 1.0 {
			t.Fatalf("Pick index %d: %.2f%%, want ~%g%%", i, got, w)
		}
	}
}

func TestPickZeroWeightNeverChosen(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if g.Pick([]float64{1, 0, 1}) == 1 {
			t.Fatal("Pick chose a zero-weight index")
		}
	}
}

func TestPickPanics(t *testing.T) {
	g := NewRNG(8)
	for _, w := range [][]float64{{0, 0}, {-1, 2}, {}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pick(%v) did not panic", w)
				}
			}()
			g.Pick(w)
		}()
	}
}

func TestZipfSkewsLow(t *testing.T) {
	g := NewRNG(13)
	z := g.NewZipf(2.0, 1<<20)
	if z == nil {
		t.Fatal("NewZipf returned nil for valid parameters")
	}
	var zeros, total int
	for i := 0; i < 20000; i++ {
		if z.Uint64() == 0 {
			zeros++
		}
		total++
	}
	// Zipf(s=2) puts the majority of mass on rank 0.
	if frac := float64(zeros) / float64(total); frac < 0.4 {
		t.Fatalf("rank-0 fraction %.2f; expected heavy skew", frac)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(11), NewRNG(11)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}
