package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestHeapStressMatchesSortedOrder drives the 4-ary heap through a random
// interleaving of pushes and pops and checks the fire order against a
// reference sort by (time, seq).
func TestHeapStressMatchesSortedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var e Engine
	type key struct {
		at  float64
		seq int
	}
	var scheduled []key
	var fired []key
	n := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 40; i++ {
			// Coarse times force deep seq tie-break chains.
			at := e.Now() + float64(rng.Intn(25))
			k := key{at, n}
			n++
			scheduled = append(scheduled, k)
			e.At(at, func(float64) { fired = append(fired, k) })
		}
		// Fire a random prefix by walking the horizon forward.
		e.Run(e.Now() + float64(rng.Intn(25)))
	}
	e.Run(math.Inf(1))
	sort.SliceStable(scheduled, func(i, j int) bool {
		if scheduled[i].at != scheduled[j].at {
			return scheduled[i].at < scheduled[j].at
		}
		return scheduled[i].seq < scheduled[j].seq
	})
	if len(fired) != len(scheduled) {
		t.Fatalf("fired %d of %d events", len(fired), len(scheduled))
	}
	for i := range fired {
		if fired[i] != scheduled[i] {
			t.Fatalf("fire order diverges at %d: got %v want %v", i, fired[i], scheduled[i])
		}
	}
}

// TestHorizonExactEventFires pins the boundary semantics: an event at
// exactly the horizon fires (the horizon is exclusive only beyond it).
func TestHorizonExactEventFires(t *testing.T) {
	var e Engine
	fired := 0
	e.At(50, func(float64) { fired++ })
	e.At(math.Nextafter(50, math.Inf(1)), func(float64) { fired++ })
	if end := e.Run(50); end != 50 {
		t.Fatalf("clock at %g, want 50", end)
	}
	if fired != 1 {
		t.Fatalf("fired %d events at the horizon, want exactly the at-horizon one", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
}

// TestReentrantSchedulingSameTime checks that a handler scheduling another
// event at the current time fires it within the same batch, after all
// previously scheduled same-time events (seq order).
func TestReentrantSchedulingSameTime(t *testing.T) {
	var e Engine
	var order []string
	e.At(10, func(now float64) {
		order = append(order, "a")
		e.At(now, func(float64) { order = append(order, "a-child") })
	})
	e.At(10, func(float64) { order = append(order, "b") })
	e.Run(math.Inf(1))
	want := []string{"a", "b", "a-child"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestReentrantSchedulingDeepChain checks a handler chain that reschedules
// itself at the current time for many steps — the hot-loop shape where the
// heap repeatedly shrinks and regrows within one batch.
func TestReentrantSchedulingDeepChain(t *testing.T) {
	var e Engine
	steps := 0
	var chain Handler
	chain = func(now float64) {
		steps++
		if steps < 10_000 {
			e.At(now, chain)
		}
	}
	e.At(1, chain)
	if end := e.Run(math.Inf(1)); end != 1 {
		t.Fatalf("clock moved to %g during a same-time chain", end)
	}
	if steps != 10_000 {
		t.Fatalf("chain ran %d steps", steps)
	}
}

// TestStopMidBatch checks Stop called from inside a batch of same-time
// events: the remaining events of the batch stay queued and fire on the
// next Run.
func TestStopMidBatch(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(7, func(float64) {
			order = append(order, i)
			if i == 1 {
				e.Stop()
			}
		})
	}
	e.Run(math.Inf(1))
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("pre-stop order %v", order)
	}
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d after mid-batch stop", e.Pending())
	}
	// Run resumes the batch where Stop cut it.
	e.Run(math.Inf(1))
	if len(order) != 5 {
		t.Fatalf("post-resume order %v", order)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("batch resumed out of order: %v", order)
		}
	}
}

// TestDrainReleasesHandlers proves Drain does not pin discarded events'
// handlers: the truncated backing array must hold no Handler references,
// or state captured by between-phase closures would stay live until the
// array is overwritten (the leak this white-box check guards against).
func TestDrainReleasesHandlers(t *testing.T) {
	var e Engine
	for i := 0; i < 100; i++ {
		payload := make([]byte, 1<<10)
		e.At(float64(i), func(float64) { _ = payload })
	}
	e.Drain()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Drain", e.Pending())
	}
	backing := e.queue[:cap(e.queue)]
	for i := range backing {
		if backing[i].fn != nil {
			t.Fatalf("Drain left a handler pinned at backing slot %d", i)
		}
	}
}

// TestPopReleasesHandlers is the same guard for the normal fire path: a
// fired event's slot in the backing array must not keep its handler alive.
func TestPopReleasesHandlers(t *testing.T) {
	var e Engine
	for i := 0; i < 64; i++ {
		e.At(float64(i), func(float64) {})
	}
	e.Run(math.Inf(1))
	backing := e.queue[:cap(e.queue)]
	for i := range backing {
		if backing[i].fn != nil {
			t.Fatalf("fired event left a handler pinned at backing slot %d", i)
		}
	}
}

// BenchmarkEngineSelfFire is the minimal hot loop: one event in flight
// rescheduling itself — the shape of a simulated user stream. Steady state
// must not allocate.
func BenchmarkEngineSelfFire(b *testing.B) {
	var e Engine
	remaining := b.N
	var fire Handler
	fire = func(float64) {
		remaining--
		if remaining > 0 {
			e.After(1, fire)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.At(0, fire)
	e.Run(math.Inf(1))
}

// BenchmarkEngineDepth256 keeps 256 concurrent event streams in the queue
// — the deep-queue shape of a full application test (20+ users × per-drive
// service completions), where heap arity matters.
func BenchmarkEngineDepth256(b *testing.B) {
	var e Engine
	const depth = 256
	remaining := b.N
	rng := NewRNG(1)
	var fire Handler
	fire = func(float64) {
		remaining--
		if remaining > 0 {
			e.After(rng.Exp(10), fire)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < depth; i++ {
		e.At(rng.Exp(10), fire)
	}
	e.Run(math.Inf(1))
}
