package sim

import (
	"fmt"
	"math/rand"
)

// RNG bundles the seeded random distributions the workload model draws
// from: uniform start times, normal read/write and extent sizes (Table 2:
// mean + deviation), and exponential inter-request think times (§2.2).
// Every simulation owns exactly one RNG so runs are reproducible.
//
// The generator counts its primitive draws (Draws) so a checkpoint can
// record stream position and a resumed replay can verify it reproduced
// the same sequence. Zipf draws go through rand.Zipf's own consumption
// and are not counted; they remain deterministic per seed regardless.
type RNG struct {
	r     *rand.Rand
	draws uint64
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Uniform draws uniformly from [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic(fmt.Sprintf("sim: uniform range [%g, %g) inverted", lo, hi))
	}
	g.draws++
	return lo + g.r.Float64()*(hi-lo)
}

// Exp draws from an exponential distribution with the given mean. A mean
// of zero returns zero (a file type with no think time).
func (g *RNG) Exp(mean float64) float64 {
	if mean < 0 {
		panic(fmt.Sprintf("sim: negative exponential mean %g", mean))
	}
	if mean == 0 {
		return 0
	}
	g.draws++
	return g.r.ExpFloat64() * mean
}

// Normal draws from N(mean, dev).
func (g *RNG) Normal(mean, dev float64) float64 {
	g.draws++
	return g.r.NormFloat64()*dev + mean
}

// SizeNormal draws a byte size from N(mean, dev) truncated below at min and
// rounded to a whole number of bytes. The paper's size parameters (rw
// size, extent size, initial size) are all "mean + deviation" draws that
// must come out positive.
func (g *RNG) SizeNormal(mean, dev float64, min int64) int64 {
	if min < 1 {
		min = 1
	}
	for i := 0; i < 64; i++ {
		v := int64(g.Normal(mean, dev) + 0.5)
		if v >= min {
			return v
		}
	}
	// Pathological parameters (dev >> mean): clamp rather than spin.
	return min
}

// SizeUniform draws a byte size uniformly from [mean-dev, mean+dev]
// truncated below at min — the paper's initialization phase selects file
// sizes "from a uniform distribution with mean equal to initial size and
// deviation of initial deviation" (§2.2).
func (g *RNG) SizeUniform(mean, dev float64, min int64) int64 {
	v := int64(g.Uniform(mean-dev, mean+dev) + 0.5)
	if v < min {
		return min
	}
	return v
}

// Intn draws uniformly from [0, n).
func (g *RNG) Intn(n int) int {
	g.draws++
	return g.r.Intn(n)
}

// Int63n draws uniformly from [0, n).
func (g *RNG) Int63n(n int64) int64 {
	g.draws++
	return g.r.Int63n(n)
}

// Float64 draws uniformly from [0, 1).
func (g *RNG) Float64() float64 {
	g.draws++
	return g.r.Float64()
}

// Draws returns the number of primitive draws made so far — a cheap
// fingerprint of stream position for checkpoint verification.
func (g *RNG) Draws() uint64 { return g.draws }

// NewZipf returns a Zipf-distributed generator over [0, imax] with
// parameter s > 1 (larger s = more skew), sharing this RNG's stream so
// runs stay reproducible. It returns nil for invalid parameters.
func (g *RNG) NewZipf(s float64, imax uint64) *rand.Zipf {
	return rand.NewZipf(g.r, s, 1, imax)
}

// Pick selects an index with probability proportional to weights[i].
// Weights must be non-negative with a positive sum.
func (g *RNG) Pick(weights []float64) int {
	var sum float64
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("sim: negative weight %g at %d", w, i))
		}
		sum += w
	}
	if sum <= 0 {
		panic("sim: Pick with zero total weight")
	}
	g.draws++
	x := g.r.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
