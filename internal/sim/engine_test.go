package sim

import (
	"math"
	"testing"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	var e Engine
	var order []int
	e.At(30, func(float64) { order = append(order, 3) })
	e.At(10, func(float64) { order = append(order, 1) })
	e.At(20, func(float64) { order = append(order, 2) })
	end := e.Run(math.Inf(1))
	if end != 30 {
		t.Fatalf("end time = %g", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order %v", order)
	}
	if e.Fired() != 3 {
		t.Fatalf("Fired = %d", e.Fired())
	}
}

func TestEngineTiesBreakBySchedulingOrder(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(float64) { order = append(order, i) })
	}
	e.Run(math.Inf(1))
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order %v", order)
		}
	}
}

func TestEngineEventsScheduleEvents(t *testing.T) {
	var e Engine
	var times []float64
	var chain Handler
	chain = func(now float64) {
		times = append(times, now)
		if now < 50 {
			e.After(10, chain)
		}
	}
	e.At(10, chain)
	e.Run(math.Inf(1))
	want := []float64{10, 20, 30, 40, 50}
	if len(times) != len(want) {
		t.Fatalf("times %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times %v, want %v", times, want)
		}
	}
}

func TestEngineHorizon(t *testing.T) {
	var e Engine
	fired := 0
	e.At(10, func(float64) { fired++ })
	e.At(100, func(float64) { fired++ })
	end := e.Run(50)
	if fired != 1 {
		t.Fatalf("fired %d events before horizon", fired)
	}
	if end != 50 {
		t.Fatalf("clock at %g, want horizon 50", end)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	// Resuming with a later horizon fires the remaining event.
	end = e.Run(math.Inf(1))
	if fired != 2 || end != 100 {
		t.Fatalf("resume: fired=%d end=%g", fired, end)
	}
}

func TestEngineStop(t *testing.T) {
	var e Engine
	fired := 0
	e.At(1, func(float64) { fired++; e.Stop() })
	e.At(2, func(float64) { fired++ })
	e.Run(math.Inf(1))
	if fired != 1 {
		t.Fatalf("Stop did not halt the loop: fired=%d", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after stop", e.Pending())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(10, func(now float64) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(now-1, func(float64) {})
	})
	e.Run(math.Inf(1))
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func(float64) {})
}

func TestEngineDrain(t *testing.T) {
	var e Engine
	e.At(1, func(float64) {})
	e.At(2, func(float64) {})
	e.Drain()
	if e.Pending() != 0 {
		t.Fatal("Drain left events queued")
	}
	if end := e.Run(math.Inf(1)); end != 0 {
		t.Fatalf("Run after drain moved clock to %g", end)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []float64 {
		var e Engine
		g := NewRNG(99)
		var times []float64
		var chain Handler
		chain = func(now float64) {
			times = append(times, now)
			if len(times) < 100 {
				e.After(g.Exp(5), chain)
			}
		}
		e.At(0, chain)
		e.Run(math.Inf(1))
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestRunRejectsNaNHorizon(t *testing.T) {
	var e Engine
	e.At(5, func(float64) {})
	defer func() {
		if recover() == nil {
			t.Fatal("Run(NaN) did not panic")
		}
		if e.Pending() != 1 {
			t.Fatal("Run(NaN) consumed events")
		}
	}()
	// NaN compares false against everything, so an unguarded horizon
	// would silently drain the whole queue.
	e.Run(math.NaN())
}

func TestRunUntilAdvancesClockOnDrain(t *testing.T) {
	var e Engine
	fired := 0
	e.At(10, func(float64) { fired++ })
	// Run leaves the clock at the last event when the queue drains;
	// RunUntil must land exactly on the boundary regardless.
	end := e.RunUntil(50)
	if fired != 1 {
		t.Fatalf("fired %d events, want 1", fired)
	}
	if end != 50 || e.Now() != 50 {
		t.Fatalf("clock at %g, want boundary 50", e.Now())
	}
	// An empty window still moves the clock.
	if end = e.RunUntil(75); end != 75 {
		t.Fatalf("empty window: clock at %g, want 75", end)
	}
}

func TestRunUntilInclusiveBoundary(t *testing.T) {
	var e Engine
	fired := 0
	e.At(50, func(float64) { fired++ })
	e.At(50.5, func(float64) { fired++ })
	if end := e.RunUntil(50); end != 50 || fired != 1 {
		t.Fatalf("boundary event: fired=%d end=%g, want 1 at 50", fired, end)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want the post-boundary event queued", e.Pending())
	}
	if end := e.RunUntil(60); end != 60 || fired != 2 {
		t.Fatalf("next window: fired=%d end=%g", fired, end)
	}
}

func TestRunUntilStopExitsEarly(t *testing.T) {
	var e Engine
	fired := 0
	e.At(10, func(float64) { fired++; e.Stop() })
	e.At(20, func(float64) { fired++ })
	if end := e.RunUntil(100); end != 10 || fired != 1 {
		t.Fatalf("Stop: fired=%d end=%g, want 1 at 10", fired, end)
	}
	// A later RunUntil resumes past the stop.
	if end := e.RunUntil(100); end != 100 || fired != 2 {
		t.Fatalf("resume: fired=%d end=%g", fired, end)
	}
}

func TestRunUntilMatchesRunSchedule(t *testing.T) {
	// The same workload driven in one Run call and in fixed windows must
	// fire the identical event sequence — windowing is invisible to
	// handlers.
	drive := func(windowed bool) []float64 {
		var e Engine
		var log []float64
		var chain Handler
		n := 0
		chain = func(now float64) {
			log = append(log, now)
			if n++; n < 40 {
				e.After(7.3, chain)
			}
		}
		e.At(1, chain)
		if windowed {
			for b := 25.0; e.Pending() > 0; b += 25 {
				e.RunUntil(b)
			}
		} else {
			e.Run(1e9)
		}
		return log
	}
	one, win := drive(false), drive(true)
	if len(one) != len(win) {
		t.Fatalf("fired %d vs %d events", len(one), len(win))
	}
	for i := range one {
		if one[i] != win[i] {
			t.Fatalf("event %d at %g (windowed) vs %g (single run)", i, win[i], one[i])
		}
	}
}

func TestRunUntilRejectsBackwardHorizon(t *testing.T) {
	var e Engine
	e.At(10, func(float64) {})
	e.RunUntil(50)
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil into the past did not panic")
		}
	}()
	e.RunUntil(25)
}
