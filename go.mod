module rofs

go 1.22
