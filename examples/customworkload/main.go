// Customworkload: define your own workload — here a mail-spool server:
// millions of small messages churned constantly plus a handful of large
// mailbox archives — and evaluate which allocation policy suits it. This
// is the "applying the allocation policies to genuine workloads" the
// paper's conclusion calls for, with the workload supplied as data.
//
// The same definition can be exported as JSON and replayed with the CLI:
//
//	go run ./examples/customworkload -dump > mail.json
//	go run ./cmd/rofsim -workload-file mail.json -policy rbuddy -test alloc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rofs/internal/alloc/extent"
	"rofs/internal/core"
	"rofs/internal/disk"
	"rofs/internal/report"
	"rofs/internal/units"
	"rofs/internal/workload"
)

// mailServer is the custom workload: message files (4K mean, heavy
// create/delete churn) and mailbox archives (2M, append-mostly).
func mailServer() workload.Workload {
	return workload.Workload{
		Name: "MAIL",
		Types: []workload.FileType{
			{
				Name:            "message",
				Files:           8500,
				Users:           16,
				ProcessTimeMS:   50,
				HitFreqMS:       50,
				RWSizeBytes:     4 * units.KB,
				RWDevBytes:      2 * units.KB,
				AllocSizeBytes:  4 * units.KB,
				TruncateBytes:   1 * units.KB,
				InitialBytes:    4 * units.KB,
				InitialDevBytes: 2 * units.KB,
				ReadPct:         70,
				WritePct:        10,
				ExtendPct:       0,
				DeletePct:       95, // messages are delivered, read, deleted
				Pattern:         workload.Sequential,
			},
			{
				Name:            "archive",
				Files:           12,
				Users:           4,
				ProcessTimeMS:   80,
				HitFreqMS:       80,
				RWSizeBytes:     64 * units.KB,
				RWDevBytes:      16 * units.KB,
				ExtendBytes:     64 * units.KB,
				AllocSizeBytes:  256 * units.KB,
				TruncateBytes:   256 * units.KB,
				InitialBytes:    2 * units.MB,
				InitialDevBytes: 512 * units.KB,
				ReadPct:         40,
				WritePct:        10,
				ExtendPct:       45, // append-mostly
				DeletePct:       0,
				Pattern:         workload.Sequential,
			},
		},
	}
}

func main() {
	dump := flag.Bool("dump", false, "print the workload as JSON and exit")
	flag.Parse()
	wl := mailServer()
	if *dump {
		if err := workload.ToJSON(os.Stdout, wl); err != nil {
			log.Fatal(err)
		}
		return
	}

	// A small 2-drive array sized so the mail spool starts around 80%.
	dcfg := disk.DefaultConfig()
	dcfg.NDisks = 2
	dcfg.Geometry.Cylinders = 200

	policies := []core.PolicySpec{
		core.RBuddy(3, 1, true),
		core.Extent(extent.FirstFit, []int64{4 * units.KB, 256 * units.KB}),
		core.Fixed(4 * units.KB),
	}
	frag := report.NewTable("Mail server: fragmentation at disk full",
		"Policy", "Internal%", "External%", "Metadata % of data")
	perf := report.NewTable("Mail server: throughput (% of max)",
		"Policy", "Application", "Sequential", "Mean op latency (ms)")
	for _, p := range policies {
		cfg := core.Config{Disk: dcfg, Policy: p, Workload: wl, Seed: 7, MaxSimMS: 120_000}
		fr, err := core.RunAllocation(cfg)
		if err != nil {
			log.Fatal(err)
		}
		frag.AddRow(p.Name(), fr.InternalPct, fr.ExternalPct,
			fmt.Sprintf("%.2f", fr.Meta.MetaPctOfData))
		app, err := core.RunApplication(cfg)
		if err != nil {
			log.Fatal(err)
		}
		seq, err := core.RunSequential(cfg)
		if err != nil {
			log.Fatal(err)
		}
		perf.AddRow(p.Name(), app.Percent, seq.Percent, app.MeanLatencyMS)
	}
	frag.Render(os.Stdout)
	fmt.Println()
	perf.Render(os.Stdout)
}
