// Transaction processing: the paper's TP study — ten large relations
// randomly read and written in 8K pages plus append-only logs. This
// example compares the four §5 policies on TP and then demonstrates the
// §6 prediction that RAID-5 "will reduce the small write performance".
//
//	go run ./examples/transaction
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"rofs/internal/core"
	"rofs/internal/experiments"
	"rofs/internal/report"
)

func coreApp(cfg core.Config) (float64, error) {
	res, err := core.RunApplication(cfg)
	return res.Percent, err
}

func coreSeq(cfg core.Config) (float64, error) {
	res, err := core.RunSequential(cfg)
	return res.Percent, err
}

func main() {
	sc := experiments.BenchScale()

	// The §5 comparison on TP (a Figure 6 slice): all policies are
	// limited by the random 8K reads/writes in application mode, but the
	// multiblock policies pull far ahead sequentially.
	specs, err := sc.Figure6Policies("TP")
	if err != nil {
		log.Fatal(err)
	}
	wl, err := sc.Workload("TP")
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("TP: comparative performance (% of max throughput)",
		"Policy", "Application", "Sequential")
	for _, p := range specs {
		cfg := sc.Config(p, wl)
		app, err := coreApp(cfg)
		if err != nil {
			log.Fatal(err)
		}
		seq, err := coreSeq(cfg)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(p.Name(), app, seq)
	}
	t.Render(os.Stdout)
	fmt.Println()

	// The RAID ablation: small random writes pay read-modify-write.
	cells, err := experiments.AblationRAID(context.Background(), nil, sc, "TP")
	if err != nil {
		log.Fatal(err)
	}
	chart := report.NewBarChart("TP application throughput by disk-system layout", 40, 40)
	for _, c := range cells {
		chart.Add(c.Name(), c.AppPct)
	}
	chart.Render(os.Stdout)
	fmt.Println("\nPlain striping wins for TP: every redundant layout taxes the 8K random writes.")
}
