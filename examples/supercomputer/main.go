// Supercomputer: the paper's SC study — one 500M file and fifteen 100M
// files streamed in 512K bursts. Large multiblock allocations let the
// array run near its full bandwidth; this example shows the block-size
// sensitivity of §4.2 (Figure 2a), the buddy system's advantage from its
// huge doubling extents (§5), and the stripe-unit sweep from the §6
// future-work list.
//
//	go run ./examples/supercomputer
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"rofs/internal/core"
	"rofs/internal/experiments"
	"rofs/internal/report"
	"rofs/internal/units"
)

func main() {
	sc := experiments.BenchScale()
	wl, err := sc.Workload("SC")
	if err != nil {
		log.Fatal(err)
	}

	// Figure 2a slice: application throughput rises with the number of
	// supported block sizes — big files want big blocks.
	chart := report.NewBarChart("SC application throughput vs block sizes (rbuddy, g=1, clustered)", 100, 40)
	for _, n := range []int{2, 3, 4, 5} {
		res, err := core.RunApplication(sc.Config(core.RBuddy(n, 1, true), wl))
		if err != nil {
			log.Fatal(err)
		}
		chart.Add(fmt.Sprintf("%d sizes", n), res.Percent)
	}
	chart.Render(os.Stdout)
	fmt.Println()

	// The §5 comparison: buddy's 64M extents shine here.
	specs, err := sc.Figure6Policies("SC")
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("SC: comparative performance (% of max throughput)",
		"Policy", "Application", "Sequential")
	for _, p := range specs {
		cfg := sc.Config(p, wl)
		app, err := core.RunApplication(cfg)
		if err != nil {
			log.Fatal(err)
		}
		seq, err := core.RunSequential(cfg)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(p.Name(), app.Percent, seq.Percent)
	}
	t.Render(os.Stdout)
	fmt.Println()

	// Ablation A2: stripe-unit sensitivity.
	cells, err := experiments.AblationStripeUnit(context.Background(), nil, sc, "SC")
	if err != nil {
		log.Fatal(err)
	}
	st := report.NewTable("SC: stripe-unit sweep (rbuddy-5-g1-clus)",
		"Stripe unit", "Application%", "Sequential%")
	for _, c := range cells {
		st.AddRow(units.Format(c.StripeBytes), c.AppPct, c.SeqPct)
	}
	st.Render(os.Stdout)
}
