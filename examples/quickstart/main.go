// Quickstart: build the simulator stack by hand — disk array, allocation
// policy, file system — create a file, do some I/O, and run one canned
// experiment. Start here to see how the pieces fit together.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"rofs/internal/alloc/rbuddy"
	"rofs/internal/core"
	"rofs/internal/disk"
	"rofs/internal/experiments"
	"rofs/internal/fs"
	"rofs/internal/sim"
	"rofs/internal/units"
)

func main() {
	// 1. An event-driven simulation engine and the paper's Table 1 disk
	//    array: eight CDC Wren IV drives striped in 24K units, 2.8 G.
	eng := &sim.Engine{}
	dsys, err := disk.New(disk.DefaultConfig(), eng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disk system: %d drives, %s, max sustained %.1f M/s\n",
		dsys.Config().NDisks, units.Format(dsys.CapacityBytes()),
		dsys.MaxBandwidth()*1000/1e6)

	// 2. The paper's selected restricted buddy policy: block sizes
	//    1K..16M, grow factor 1, clustered into 32M regions (§4.2).
	policy, err := rbuddy.New(rbuddy.Config{
		TotalUnits:  dsys.Units(),
		SizesUnits:  []int64{1, 8, 64, 1024, 16384},
		GrowFactor:  1,
		Clustered:   true,
		RegionUnits: 32 * 1024,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. A file system binding the two.
	fsys, err := fs.New(policy, dsys, dsys.UnitBytes())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Create a 100M file and read it back sequentially.
	f := fsys.Create(16 * units.MB)
	if err := f.Allocate(100 * units.MB); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file: %s in %d extents (restricted buddy keeps growth contiguous)\n",
		units.Format(f.Length()), len(f.Alloc().Extents()))

	var doneAt float64
	f.ReadChunked(0, f.Length(), 2*units.MB, func(now float64) { doneAt = now })
	eng.Run(math.Inf(1))
	rate := float64(f.Length()) / doneAt // bytes per ms
	fmt.Printf("sequential read: 100M in %.2f s = %.1f M/s (%.0f%% of the array's sustained bandwidth)\n",
		doneAt/1000, rate*1000/1e6, 100*rate/dsys.MaxBandwidth())

	// 5. The same machinery, driven by the experiment harness: the
	//    supercomputer workload's sequential test at reduced scale.
	sc := experiments.BenchScale()
	wl, err := sc.Workload("SC")
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.RunSequential(sc.Config(core.RBuddy(5, 1, true), wl))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SC sequential test (reduced scale): %.1f%% of maximum throughput\n", res.Percent)
}
