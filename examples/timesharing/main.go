// Timesharing: the paper's TS deep dive. Small files dominate a
// software-development file system; this example reproduces the §4.2
// observations about the restricted buddy policy on that workload:
//
//   - fragmentation stays small but grows with more/bigger block sizes
//     and shrinks with grow factor 2 (Figure 1e/1f);
//
//   - clustering helps sequential throughput because seek time dominates
//     small-file transfers (Figure 2f);
//
//   - the buddy system pays ~3× the internal fragmentation (Table 3).
//
//     go run ./examples/timesharing
package main

import (
	"fmt"
	"log"
	"os"

	"rofs/internal/core"
	"rofs/internal/experiments"
	"rofs/internal/report"
)

func main() {
	sc := experiments.BenchScale()
	wl, err := sc.Workload("TS")
	if err != nil {
		log.Fatal(err)
	}

	// Figure 1f slice: internal fragmentation across the grow-policy and
	// block-size grid (clustered).
	frag := report.NewTable("TS internal fragmentation, restricted buddy (clustered)",
		"Block sizes", "g=1", "g=2")
	for _, n := range []int{2, 3, 4, 5} {
		var cells [2]float64
		for i, g := range []float64{1, 2} {
			res, err := core.RunAllocation(sc.Config(core.RBuddy(n, g, true), wl))
			if err != nil {
				log.Fatal(err)
			}
			cells[i] = res.InternalPct
		}
		frag.AddRow(n, cells[0], cells[1])
	}
	frag.Render(os.Stdout)
	fmt.Println()

	// Figure 2f slice: clustering's effect on sequential throughput.
	chart := report.NewBarChart("TS sequential throughput (5 sizes, g=1)", 100, 40)
	for _, clustered := range []bool{true, false} {
		res, err := core.RunSequential(sc.Config(core.RBuddy(5, 1, clustered), wl))
		if err != nil {
			log.Fatal(err)
		}
		label := "unclustered"
		if clustered {
			label = "clustered"
		}
		chart.Add(label, res.Percent)
	}
	chart.Render(os.Stdout)
	fmt.Println()

	// Table 3 contrast: buddy vs the selected restricted buddy.
	cmp := report.NewTable("TS fragmentation: buddy vs restricted buddy",
		"Policy", "Internal%", "External%")
	for _, p := range []core.PolicySpec{core.Buddy(), core.RBuddy(5, 1, true)} {
		res, err := core.RunAllocation(sc.Config(p, wl))
		if err != nil {
			log.Fatal(err)
		}
		cmp.AddRow(p.Name(), res.InternalPct, res.ExternalPct)
	}
	cmp.Render(os.Stdout)
}
